// Adaptive synchronization: when should you prefer the Good Samaritan
// Protocol over the Trapdoor Protocol?
//
// Both protocols must be configured for the worst-case disruption budget
// t. The Trapdoor Protocol pays for that budget no matter how calm the
// band actually is; the Good Samaritan Protocol adapts to the *actual*
// disruption t' and finishes in O(t'·log³N) rounds when devices start
// together. This example sweeps t' and prints both protocols'
// synchronization times — reproducing the crossover that motivates
// Section 7 of the paper.
//
// Run it: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"sort"

	"wsync"
)

const (
	nodes   = 2
	nBound  = 16
	fBand   = 256
	tBudget = 128 // worst-case budget both protocols must tolerate
	trials  = 3
)

func median(xs []uint64) uint64 {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return xs[len(xs)/2]
}

// measure runs one protocol against a jammer that disrupts only the t'
// lowest frequencies and returns the median worst-node sync time.
func measure(p wsync.Protocol, tPrime int) uint64 {
	times := make([]uint64, 0, trials)
	for s := uint64(0); s < trials; s++ {
		res, err := wsync.Run(wsync.Config{
			Protocol:     p,
			Nodes:        nodes,
			N:            nBound,
			F:            fBand,
			T:            tBudget,
			Adversary:    "fixed",
			JammedPrefix: tPrime,
			Seed:         1 + s,
			MaxRounds:    1 << 23,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.AllSynced {
			log.Fatalf("%s did not synchronize at t'=%d", p, tPrime)
		}
		times = append(times, res.MaxSyncLocal)
	}
	return median(times)
}

func main() {
	fmt.Printf("F=%d frequencies, worst-case budget t=%d, %d devices, N=%d\n",
		fBand, tBudget, nodes, nBound)
	fmt.Printf("the jammer actually disrupts only t' frequencies:\n\n")
	fmt.Printf("%6s  %18s  %18s  %s\n", "t'", "Trapdoor (rounds)", "Samaritan (rounds)", "faster")
	for _, tPrime := range []int{1, 2, 4, 8, 16} {
		td := measure(wsync.Trapdoor, tPrime)
		gs := measure(wsync.GoodSamaritan, tPrime)
		faster := "Trapdoor"
		if gs < td {
			faster = "Samaritan"
		}
		fmt.Printf("%6d  %18d  %18d  %s\n", tPrime, td, gs, faster)
	}
	fmt.Println("\nthe Trapdoor Protocol's runtime is oblivious to the real interference;")
	fmt.Println("the Good Samaritan Protocol tracks it (Theorem 18: O(t'·log³N)) and")
	fmt.Println("wins when the band is much calmer than the worst case it must survive.")
}
