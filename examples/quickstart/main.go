// Quickstart: synchronize eight devices on a jammed eight-frequency band
// with the Trapdoor Protocol and print when each device committed to the
// shared round numbering.
package main

import (
	"fmt"
	"log"

	"wsync"
)

func main() {
	res, err := wsync.Run(wsync.Config{
		Protocol:  wsync.Trapdoor,
		Nodes:     8,       // devices activated
		N:         64,      // known bound on participants
		F:         8,       // frequencies in the band
		T:         2,       // adversary may jam up to 2 per round
		Adversary: "fixed", // jams frequencies 1 and 2 forever
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("synchronized: %v   leaders: %d   properties OK: %v\n",
		res.AllSynced, res.Leaders, res.PropertiesOK)
	fmt.Printf("slowest device took %d rounds after its activation\n\n", res.MaxSyncLocal)
	fmt.Println("device  activated  committed at round")
	for i := range res.SyncRound {
		fmt.Printf("  %2d    %6d     %d\n", i, res.Activated[i], res.SyncRound[i])
	}
	fmt.Printf("\nmedium: %d transmissions, %d deliveries, %d collisions, %d jammed\n",
		res.Transmissions, res.Deliveries, res.Collisions, res.JammedLosses)
}
