// Rendezvous on whitespace: before devices can synchronize they must find
// each other — meet on a common channel of a band where some channels are
// blocked (the setting of the paper's Theorem 4 lower bound, and of
// Azar et al.'s optimal whitespace synchronization strategies).
//
// This example plays the game three ways on a 16-channel band:
//
//  1. an open band — two radios spreading over the optimal width meet in
//     a handful of rounds;
//  2. the same band with a greedy jammer blocking the 4 likeliest meeting
//     channels every round — the Ft/(F−t) lower bound bites;
//  3. six staggered devices, two of them with per-device receive
//     interference (Mask), that must ALL meet — pairwise meetings chain
//     the group together.
package main

import (
	"fmt"
	"log"

	"wsync"
)

func main() {
	// 1. Open band: the Azar-optimal spreading width is min(F, 2t); with
	// no jammer it degenerates to camping near channel 1.
	open, err := wsync.RunRendezvous(wsync.RendezvousConfig{
		F:     16,
		Width: 4,
		Seed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("open band:        met in round %d\n", open.FirstMeet)

	// 2. Greedy jammer: every round it blocks the 4 channels where the
	// parties are likeliest to meet — the Theorem 4 adversary.
	jammed, err := wsync.RunRendezvous(wsync.RendezvousConfig{
		F:      16,
		T:      4,
		Jammer: "greedy",
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy jammer:    met in round %d (width %d beats t=4 on F=16)\n",
		jammed.FirstMeet, 8)

	// 3. Six devices, staggered wakes, per-device interference: a Mask
	// jams a device's own RECEPTIONS on those channels (local noise — the
	// device still transmits there, and nobody else is affected). Devices
	// 0 and 1 each lose part of the played band [1..8]; the run ends when
	// the meeting graph connects everyone anyway.
	group, err := wsync.RunRendezvous(wsync.RendezvousConfig{
		Parties: 6,
		F:       16,
		Width:   8,
		T:       2,
		Jammer:  "random",
		Masks:   [][]int{{1, 2, 3}, {4, 5}},
		Stagger: 4,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("6-party meshing:  first meeting round %d, all connected in round %d (%d meetings)\n",
		group.FirstMeet, group.AllMet, group.Meetings)
}
