// Replicated log: Section 8 of the paper observes that "a leader combined
// with a common round view simplifies consensus, maintaining replicated
// state, and the collection and distribution of messages".
//
// This example demonstrates exactly that: five devices on a jammed band
// first synchronize with the Trapdoor Protocol (electing a leader as a
// side effect), then the leader replicates a command log to everyone.
// Retransmission over the synchronized rounds is the only recovery
// mechanism needed; committed prefixes stay identical on every device
// throughout.
//
// Run it: go run ./examples/replicated_log
package main

import (
	"fmt"
	"log"

	"wsync"
)

const (
	members = 5
	fBand   = 8
	tBudget = 2
	nBound  = 32
	seed    = 9
)

func main() {
	commands := []uint64{0xCAFE, 0xBEEF, 0xF00D, 0xD00D, 0xFACE, 0xDEED}

	nodes := make([]*wsync.ReplicatedLogNode, members)
	res, err := wsync.Run(wsync.Config{
		Nodes:         members,
		F:             fBand,
		T:             tBudget,
		Adversary:     "random",
		Seed:          seed,
		MaxRounds:     60000,
		RunFullBudget: true,
		NewAgent: func(id int, activation uint64, r *wsync.Rand) wsync.Agent {
			n, err := wsync.NewReplicatedTrapdoorNode(
				wsync.ReplicatedLogConfig{
					Members:  members,
					F:        fBand,
					Commands: commands,
					Settle:   300,
				},
				wsync.TrapdoorParams{N: nBound, F: fBand, T: tBudget},
				r,
			)
			if err != nil {
				log.Fatal(err)
			}
			nodes[id] = n
			return n
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("synchronization: all synced = %v, properties OK = %v, leaders = %d\n",
		res.AllSynced, res.PropertiesOK, res.Leaders)

	fmt.Printf("\nreplication of %d commands over %d rounds on a band with %d/%d frequencies jammed:\n\n",
		len(commands), res.Rounds, tBudget, fBand)
	fmt.Println("device  role      committed  log")
	allOK := true
	for i, n := range nodes {
		role := "follower"
		if n.IsLeader() {
			role = "leader"
		}
		fmt.Printf("  %2d    %-8s  %d/%d       %x\n", i, role, n.CommitIndex(), len(commands), n.Log())
		if n.CommitIndex() != len(commands) {
			allOK = false
		}
		for k, v := range n.Log() {
			if v != commands[k] {
				allOK = false
			}
		}
	}
	if allOK {
		fmt.Println("\nevery device committed the identical log — replicated state on a jammed")
		fmt.Println("ad hoc radio band, built from nothing but wireless synchronization.")
	} else {
		fmt.Println("\nreplication incomplete; increase MaxRounds or try another seed")
	}
}
