// Jammed hopping: the paper's motivating application (Section 1).
// Bluetooth-style devices avoid a jammer by pseudorandom frequency
// hopping — but hopping only works if every device derives the hop from
// the same round number.
//
// This example runs the same data-distribution workload twice on a
// staggered ad hoc network under a random jammer:
//
//   - WITHOUT synchronization, each device hops on its own local round
//     counter. The counters are misaligned, so sender and receivers rarely
//     meet: goodput ≈ 1/F.
//   - WITH the Trapdoor Protocol first establishing a global round
//     numbering, everyone hops together: goodput ≈ (F−t)/F · sendRate.
//
// Run it: go run ./examples/jammed_hopping
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"wsync"
)

const (
	numNodes  = 6
	fBand     = 8
	tBudget   = 2
	nBound    = 64
	seed      = 7
	dataSpan  = 4000 // rounds of the measurement window
	settle    = 800  // rounds after own sync before entering data mode
	groupKey  = 0x5ca1ab1e
	sendProb  = 0.9
	maxRounds = 200000
)

// hop derives the shared hopping frequency for a round number.
func hop(round uint64) int {
	x := round ^ groupKey
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return 1 + int(x%uint64(fBand))
}

// hoppingAgent synchronizes with an embedded Trapdoor node, then switches
// to frequency-hopped data exchange driven by the agreed round numbers.
// With sync disabled it hops on its local round counter instead.
type hoppingAgent struct {
	id       int
	sync     wsync.Agent // nil in the unsynchronized variant
	r        *wsync.Rand
	isSender bool // unsynchronized variant: fixed sender

	syncedAt  uint64 // local round of commitment
	delivered int
	sent      int
}

func (h *hoppingAgent) Step(local uint64) wsync.Action {
	var round uint64
	var inData bool
	if h.sync == nil {
		// Unsynchronized: data mode immediately, hopping on local rounds.
		round = local
		inData = true
	} else {
		act := h.sync.Step(local)
		out := h.sync.Output()
		if !out.Synced {
			return act
		}
		if h.syncedAt == 0 {
			h.syncedAt = local
		}
		if local-h.syncedAt < settle {
			return act // keep running the protocol while others catch up
		}
		round = out.Value
		inData = true
	}
	if !inData {
		return wsync.Action{Freq: 1}
	}
	f := hop(round)
	sender := h.isSender
	if h.sync != nil {
		lr, ok := h.sync.(wsync.LeaderReporter)
		sender = ok && lr.IsLeader()
	}
	if sender && h.r.Bernoulli(sendProb) {
		payload := make([]byte, 8)
		binary.BigEndian.PutUint64(payload, round)
		h.sent++
		return wsync.Action{
			Freq:     f,
			Transmit: true,
			Msg:      wsync.Message{Kind: wsync.KindData, Payload: payload},
		}
	}
	return wsync.Action{Freq: f}
}

func (h *hoppingAgent) Deliver(m wsync.Message) {
	if m.Kind == wsync.KindData {
		h.delivered++
		return
	}
	if h.sync != nil {
		h.sync.Deliver(m)
	}
}

func (h *hoppingAgent) Output() wsync.Output {
	if h.sync == nil {
		return wsync.Output{Value: 0, Synced: false}
	}
	return h.sync.Output()
}

// runWorkload executes one variant and returns (packets sent, mean packets
// received per listener).
func runWorkload(withSync bool) (int, float64) {
	agents := make([]*hoppingAgent, numNodes)
	cfg := wsync.Config{
		Nodes:         numNodes,
		F:             fBand,
		T:             tBudget,
		Adversary:     "random",
		Activation:    "staggered",
		ActivationGap: 120, // devices arrive over ~600 rounds
		Seed:          seed,
		MaxRounds:     maxRounds,
		NewAgent: func(id int, activation uint64, r *wsync.Rand) wsync.Agent {
			h := &hoppingAgent{id: id, r: r, isSender: id == 0}
			if withSync {
				node, err := wsync.NewTrapdoorNode(
					wsync.TrapdoorParams{N: nBound, F: fBand, T: tBudget}, r)
				if err != nil {
					log.Fatal(err)
				}
				h.sync = node
			}
			agents[id] = h
			return h
		},
	}
	// Fixed horizon: protocol phase + measurement window.
	cfg.MaxRounds = uint64(dataSpan) + 12000
	cfg.RunFullBudget = true
	res, err := wsync.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	_ = res

	sent := 0
	received := 0
	listeners := 0
	for _, a := range agents {
		sent += a.sent
		sender := a.isSender
		if a.sync != nil {
			lr, ok := a.sync.(wsync.LeaderReporter)
			sender = ok && lr.IsLeader()
		}
		if !sender {
			received += a.delivered
			listeners++
		}
	}
	if listeners == 0 {
		return sent, 0
	}
	return sent, float64(received) / float64(listeners)
}

func main() {
	fmt.Printf("frequency-hopped data distribution on F=%d frequencies, %d jammed/round\n",
		fBand, tBudget)
	fmt.Printf("%d devices arrive staggered; the sender broadcasts on hop(round)\n\n", numNodes)

	sentNo, gotNo := runWorkload(false)
	fmt.Printf("WITHOUT synchronization (hopping on local counters):\n")
	fmt.Printf("  sender transmitted %5d packets; mean received per listener: %8.1f (%.1f%%)\n\n",
		sentNo, gotNo, pct(gotNo, sentNo))

	sentYes, gotYes := runWorkload(true)
	fmt.Printf("WITH Trapdoor synchronization first (hopping on the shared numbering):\n")
	fmt.Printf("  sender transmitted %5d packets; mean received per listener: %8.1f (%.1f%%)\n\n",
		sentYes, gotYes, pct(gotYes, sentYes))

	if sentYes > 0 && sentNo > 0 && pct(gotYes, sentYes) > pct(gotNo, sentNo) {
		fmt.Println("synchronized hopping delivers an order of magnitude more data —")
		fmt.Println("the common round numbering is what makes coordinated hopping possible.")
	}
}

func pct(got float64, sent int) float64 {
	if sent == 0 {
		return 0
	}
	return 100 * got / float64(sent)
}
