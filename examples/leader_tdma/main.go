// Leader-driven census and TDMA: Section 1 of the paper motivates a common
// round numbering by what it unlocks — counting the participants,
// assigning slots, electing a leader without manual designation.
//
// This example builds all three on top of the Trapdoor Protocol:
//
//  1. SYNC    — the protocol elects a leader and establishes global rounds.
//  2. CENSUS  — frames derived from the shared numbering: member devices
//     answer on a per-round hopping frequency; the leader collects their
//     identifiers.
//  3. ROSTER  — the leader broadcasts the sorted roster; every device
//     learns its TDMA slot index.
//  4. TDMA    — each global round belongs to exactly one device (round mod
//     slots); owners transmit without a single collision.
//
// Run it: go run ./examples/leader_tdma
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sort"

	"wsync"
)

const (
	numNodes  = 5
	fBand     = 8
	tBudget   = 1
	nBound    = 32
	seed      = 11
	settle    = 600 // rounds after own sync before starting the census
	censusLen = 1200
	rosterLen = 600
	tdmaLen   = 1000
	maxRounds = 20000
	appKey    = 0xfeedface
)

func hop(round uint64) int {
	x := round ^ appKey
	x ^= x >> 31
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 29
	return 1 + int(x%uint64(fBand))
}

// phase boundaries in rounds-after-sync (own clock; the shared numbering
// makes these boundaries globally consistent once everyone synchronized).
type phase int

const (
	phaseSync phase = iota
	phaseCensus
	phaseRoster
	phaseTDMA
)

func phaseOf(sinceSync uint64) phase {
	switch {
	case sinceSync < settle:
		return phaseSync
	case sinceSync < settle+censusLen:
		return phaseCensus
	case sinceSync < settle+censusLen+rosterLen:
		return phaseRoster
	default:
		return phaseTDMA
	}
}

type tdmaAgent struct {
	id   int
	sync wsync.Agent
	r    *wsync.Rand
	uid  uint64

	syncedAt uint64 // global round number at commitment (from output value)
	synced   bool

	// leader state
	census map[uint64]bool

	// member state
	slot     int // -1 until roster received
	slots    int
	sent     int
	received int
	myUIDHit bool
}

func newTDMAAgent(id int, r *wsync.Rand) *tdmaAgent {
	node, err := wsync.NewTrapdoorNode(wsync.TrapdoorParams{N: nBound, F: fBand, T: tBudget}, r)
	if err != nil {
		log.Fatal(err)
	}
	return &tdmaAgent{
		id:     id,
		sync:   node,
		r:      r,
		uid:    uint64(id + 1), // application-level address (say, a MAC)
		census: make(map[uint64]bool),
		slot:   -1,
	}
}

func (a *tdmaAgent) isLeader() bool {
	lr, ok := a.sync.(wsync.LeaderReporter)
	return ok && lr.IsLeader()
}

func (a *tdmaAgent) Step(local uint64) wsync.Action {
	act := a.sync.Step(local)
	out := a.sync.Output()
	if !out.Synced {
		return act
	}
	if !a.synced {
		a.synced = true
		a.syncedAt = out.Value
	}
	round := out.Value
	since := round - a.syncedAt
	f := hop(round)

	switch phaseOf(since) {
	case phaseSync:
		return act // keep spreading the numbering

	case phaseCensus:
		if a.isLeader() {
			a.census[a.uid] = true // the leader counts itself
			return wsync.Action{Freq: f}
		}
		// Members answer with a small random backoff to avoid collisions.
		if a.r.Bernoulli(2.0 / numNodes) {
			payload := make([]byte, 9)
			payload[0] = 'H'
			binary.BigEndian.PutUint64(payload[1:], a.uid)
			return wsync.Action{Freq: f, Transmit: true,
				Msg: wsync.Message{Kind: wsync.KindData, Payload: payload}}
		}
		return wsync.Action{Freq: f}

	case phaseRoster:
		if a.isLeader() {
			roster := a.sortedRoster()
			// The leader assigns its own slot directly; it will never
			// receive its own broadcast.
			a.slots = len(roster)
			for i, uid := range roster {
				if uid == a.uid {
					a.slot = i
				}
			}
			payload := make([]byte, 1+8*len(roster))
			payload[0] = 'R'
			for i, uid := range roster {
				binary.BigEndian.PutUint64(payload[1+8*i:], uid)
			}
			if a.r.Bernoulli(0.5) {
				return wsync.Action{Freq: f, Transmit: true,
					Msg: wsync.Message{Kind: wsync.KindData, Payload: payload}}
			}
		}
		return wsync.Action{Freq: f}

	default: // phaseTDMA
		if a.slots > 0 && a.slot >= 0 && int(round)%a.slots == a.slot {
			payload := make([]byte, 9)
			payload[0] = 'D'
			binary.BigEndian.PutUint64(payload[1:], a.uid)
			a.sent++
			return wsync.Action{Freq: f, Transmit: true,
				Msg: wsync.Message{Kind: wsync.KindData, Payload: payload}}
		}
		return wsync.Action{Freq: f}
	}
}

func (a *tdmaAgent) sortedRoster() []uint64 {
	roster := make([]uint64, 0, len(a.census))
	for uid := range a.census {
		roster = append(roster, uid)
	}
	sort.Slice(roster, func(i, j int) bool { return roster[i] < roster[j] })
	return roster
}

func (a *tdmaAgent) Deliver(m wsync.Message) {
	if m.Kind != wsync.KindData {
		a.sync.Deliver(m)
		return
	}
	if len(m.Payload) == 0 {
		return
	}
	switch m.Payload[0] {
	case 'H':
		if a.isLeader() && len(m.Payload) == 9 {
			a.census[binary.BigEndian.Uint64(m.Payload[1:])] = true
		}
	case 'R':
		roster := make([]uint64, 0, (len(m.Payload)-1)/8)
		for i := 1; i+8 <= len(m.Payload); i += 8 {
			roster = append(roster, binary.BigEndian.Uint64(m.Payload[i:]))
		}
		a.slots = len(roster)
		for i, uid := range roster {
			if uid == a.uid {
				a.slot = i
				a.myUIDHit = true
			}
		}
	case 'D':
		a.received++
	}
}

func (a *tdmaAgent) Output() wsync.Output { return a.sync.Output() }

func main() {
	agents := make([]*tdmaAgent, numNodes)
	res, err := wsync.Run(wsync.Config{
		Nodes:         numNodes,
		F:             fBand,
		T:             tBudget,
		Adversary:     "random",
		Activation:    "staggered",
		ActivationGap: 40,
		Seed:          seed,
		MaxRounds:     maxRounds,
		RunFullBudget: true,
		NewAgent: func(id int, activation uint64, r *wsync.Rand) wsync.Agent {
			agents[id] = newTDMAAgent(id, r)
			return agents[id]
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	var leader *tdmaAgent
	for _, a := range agents {
		if a.isLeader() {
			leader = a
		}
	}
	fmt.Printf("phase 1 — SYNC:   all %d devices synchronized: %v (rounds: %d)\n",
		numNodes, res.AllSynced, res.Rounds)
	if leader == nil {
		fmt.Println("no leader elected; try another seed")
		return
	}
	fmt.Printf("phase 2 — CENSUS: leader (device %d) counted %d/%d devices\n",
		leader.id, len(leader.census), numNodes)

	assigned := 0
	for _, a := range agents {
		if a.slot >= 0 || a.isLeader() {
			assigned++
		}
	}
	fmt.Printf("phase 3 — ROSTER: %d/%d devices know their TDMA slot\n", assigned, numNodes)
	fmt.Println("          slot assignments:")
	for _, a := range agents {
		fmt.Printf("            device %d (uid %d): slot %d of %d\n", a.id, a.uid, a.slot, a.slots)
	}

	sent, received := 0, 0
	for _, a := range agents {
		sent += a.sent
		received += a.received
	}
	fmt.Printf("phase 4 — TDMA:   %d slot-owned transmissions, %d receptions\n", sent, received)
	fmt.Println("\ncollision-free slotted communication, bootstrapped from nothing but a")
	fmt.Println("shared band, a jammer, and the wireless synchronization protocol.")
}
