package baseline

import (
	"wsync/internal/core"
	"wsync/internal/freqdist"
	"wsync/internal/msg"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

// Wakeup is the no-competition baseline. See the package comment.
type Wakeup struct {
	n   int // participant bound (power of two)
	f   int
	r   *rng.Rand
	uid uint64
	age uint64

	dist      freqdist.Uniform
	out       core.OutputState
	adopted   bool // adopted someone else's numbering
	committed bool // committed to its own numbering ("leader")

	// arena is non-nil for arena-built nodes and doubles as the batch
	// cohort key: one slab, one cohort.
	arena *WakeupArena
}

var (
	_ sim.Agent           = (*Wakeup)(nil)
	_ sim.BatchAgent      = (*Wakeup)(nil)
	_ sim.BroadcastProber = (*Wakeup)(nil)
	_ sim.LeaderReporter  = (*Wakeup)(nil)
)

// NewWakeup returns a wake-up baseline node for a system of at most n
// participants on f frequencies.
func NewWakeup(n, f int, r *rng.Rand) *Wakeup {
	if n < 2 {
		n = 2
	}
	return &Wakeup{
		n:    freqdist.NextPow2(n),
		f:    f,
		r:    r,
		uid:  core.NewUID(r, n),
		dist: freqdist.NewUniform(1, f),
	}
}

// WakeupArena pools Wakeup construction for one engine run: count slots in
// one contiguous slab, with the participant-bound arithmetic done once.
// NewAgent draws exactly what NewWakeup draws from the node's rng stream
// (the UID bound is the clamped, not-yet-rounded n — preserved here so
// arena-built runs are bit-identical to NewWakeup-built runs). Arena-built
// nodes form one batch cohort (the arena pointer is the cohort key).
type WakeupArena struct {
	uidN  int // NewUID bound: clamped to >= 2, not rounded to a power of two
	n     int // participant bound (power of two)
	f     int
	nodes []Wakeup
}

// NewWakeupArena returns an arena with count slots for a system of at most
// n participants on f frequencies.
func NewWakeupArena(n, f, count int) *WakeupArena {
	if n < 2 {
		n = 2
	}
	return &WakeupArena{
		uidN:  n,
		n:     freqdist.NextPow2(n),
		f:     f,
		nodes: make([]Wakeup, count),
	}
}

// NewAgent constructs node id in its arena slot; it has the signature of
// sim.Config.NewAgent and performs no allocation.
func (a *WakeupArena) NewAgent(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
	w := &a.nodes[id]
	*w = Wakeup{
		n:     a.n,
		f:     a.f,
		r:     r,
		uid:   core.NewUID(r, a.uidN),
		dist:  freqdist.NewUniform(1, a.f),
		arena: a,
	}
	return w
}

func (w *Wakeup) lg() int {
	lg := freqdist.CeilLog2(w.n)
	if lg < 1 {
		lg = 1
	}
	return lg
}

// rampLen is the number of rounds after which a silent node assumes
// leadership: lg N epochs of lg N rounds each.
func (w *Wakeup) rampLen() uint64 {
	lg := uint64(w.lg())
	return lg * lg
}

// prob returns the ramped broadcast probability 2^e/(2N), epoch length
// lg N, capped at 1/2.
func (w *Wakeup) prob() float64 {
	lg := w.lg()
	e := int(w.age-1)/lg + 1
	if e > lg {
		e = lg
	}
	return float64(uint64(1)<<uint(e)) / (2 * float64(w.n))
}

// BroadcastProb implements sim.BroadcastProber.
func (w *Wakeup) BroadcastProb() float64 {
	if w.adopted {
		return 0
	}
	if w.committed {
		return 0.5
	}
	return w.prob()
}

// Step implements sim.Agent. It is a thin wrapper over the packed step —
// the single implementation both dispatch paths share, which is what makes
// batch and per-node stepping byte-identical by construction.
func (w *Wakeup) Step(local uint64) sim.Action {
	var a sim.Action
	f, tx := w.step(local, &a.Msg)
	a.Freq, a.Transmit = int(f), tx
	return a
}

// Cohort implements sim.BatchAgent: arena-built nodes batch per arena;
// directly constructed nodes opt out.
func (w *Wakeup) Cohort() any {
	if w.arena == nil {
		return nil
	}
	return w.arena
}

// StepBatch implements sim.BatchAgent: one devirtualized loop over the
// cohort's slab, writing straight into the engine's action arrays. Message
// payloads are written only for transmitters.
func (w *Wakeup) StepBatch(ids []int, locals []uint64, actFreq []int32, actTx []bool, actMsg []msg.Message) {
	nodes := w.arena.nodes
	for j, id := range ids {
		f, tx := nodes[id].step(locals[j], &actMsg[id])
		actFreq[id] = f
		actTx[id] = tx
	}
}

// step advances the node one local round, writing the outgoing message via
// m only when it transmits.
func (w *Wakeup) step(local uint64, m *msg.Message) (freq int32, transmit bool) {
	w.age = local
	w.out.Tick()
	if w.adopted {
		return int32(w.dist.Sample(w.r)), false
	}
	if !w.committed && w.age > w.rampLen() {
		// Heard nobody for the whole ramp: assume leadership.
		w.committed = true
		w.out.Adopt(w.age)
	}
	p := w.prob()
	if w.committed {
		p = 0.5
	}
	f := int32(w.dist.Sample(w.r))
	if w.r.Bernoulli(p) {
		*m = msg.Message{
			Kind:   msg.KindLeader,
			TS:     msg.Timestamp{Age: w.age, UID: w.uid},
			Round:  w.age, // proposed numbering: the sender's age
			Scheme: w.uid,
		}
		return f, true
	}
	return f, false
}

// Deliver implements sim.Agent: adopt the first larger timestamp's
// numbering unless already settled.
func (w *Wakeup) Deliver(m msg.Message) {
	if w.adopted || w.committed || m.Kind != msg.KindLeader {
		return
	}
	if (msg.Timestamp{Age: w.age, UID: w.uid}).Less(m.TS) {
		w.adopted = true
		w.out.Adopt(m.Round)
	}
}

// Output implements sim.Agent.
func (w *Wakeup) Output() sim.Output {
	if !w.out.Synced() {
		return sim.Output{}
	}
	return sim.Output{Value: w.out.Value(), Synced: true}
}

// IsLeader reports whether the node committed to its own numbering.
func (w *Wakeup) IsLeader() bool { return w.committed }

// SingleFreq is the wake-up baseline confined to one frequency. It
// demonstrates that without frequency diversity, a single jammed channel
// defeats synchronization entirely.
type SingleFreq struct {
	inner *Wakeup
}

var (
	_ sim.Agent           = (*SingleFreq)(nil)
	_ sim.BroadcastProber = (*SingleFreq)(nil)
	_ sim.LeaderReporter  = (*SingleFreq)(nil)
)

// NewSingleFreq returns a single-frequency baseline node.
func NewSingleFreq(n int, r *rng.Rand) *SingleFreq {
	return &SingleFreq{inner: NewWakeup(n, 1, r)}
}

// Step forwards to the wake-up logic, forcing frequency 1.
func (s *SingleFreq) Step(local uint64) sim.Action {
	a := s.inner.Step(local)
	a.Freq = 1
	return a
}

// Deliver forwards to the wake-up logic.
func (s *SingleFreq) Deliver(m msg.Message) { s.inner.Deliver(m) }

// Output forwards to the wake-up logic.
func (s *SingleFreq) Output() sim.Output { return s.inner.Output() }

// IsLeader forwards to the wake-up logic.
func (s *SingleFreq) IsLeader() bool { return s.inner.IsLeader() }

// BroadcastProb forwards to the wake-up logic.
func (s *SingleFreq) BroadcastProb() float64 { return s.inner.BroadcastProb() }

// RoundRobin is a deterministic baseline: frequency and role are pure
// functions of (age, uid). In each frame of F rounds a node hops across
// all frequencies; frames alternate between transmitting and listening,
// with the order decided by the identifier's parity. After SelfCommitFrames
// silent frames it assumes leadership.
type RoundRobin struct {
	f   int
	uid uint64
	age uint64
	out core.OutputState

	adopted   bool
	committed bool

	// arena is non-nil for arena-built nodes and doubles as the batch
	// cohort key: one slab, one cohort.
	arena *RoundRobinArena
}

// SelfCommitFrames is the number of 2F-round frames a RoundRobin node
// waits before assuming leadership.
const SelfCommitFrames = 8

var (
	_ sim.Agent          = (*RoundRobin)(nil)
	_ sim.BatchAgent     = (*RoundRobin)(nil)
	_ sim.LeaderReporter = (*RoundRobin)(nil)
)

// NewRoundRobin returns a deterministic baseline node. The identifier is
// still drawn randomly (the only randomness, mirroring a MAC address).
func NewRoundRobin(n, f int, r *rng.Rand) *RoundRobin {
	return &RoundRobin{f: f, uid: core.NewUID(r, n)}
}

// RoundRobinArena pools RoundRobin construction for one engine run.
// NewAgent draws exactly what NewRoundRobin draws (the UID bound n is used
// raw, as the constructor uses it), so arena-built runs are bit-identical;
// arena-built nodes form one batch cohort (the arena pointer is the key).
type RoundRobinArena struct {
	n     int
	f     int
	nodes []RoundRobin
}

// NewRoundRobinArena returns an arena with count slots for a system of at
// most n participants on f frequencies.
func NewRoundRobinArena(n, f, count int) *RoundRobinArena {
	return &RoundRobinArena{n: n, f: f, nodes: make([]RoundRobin, count)}
}

// NewAgent constructs node id in its arena slot; it has the signature of
// sim.Config.NewAgent and performs no allocation.
func (a *RoundRobinArena) NewAgent(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
	rr := &a.nodes[id]
	*rr = RoundRobin{f: a.f, uid: core.NewUID(r, a.n), arena: a}
	return rr
}

// Step implements sim.Agent. It is a thin wrapper over the packed step —
// the single implementation both dispatch paths share, which is what makes
// batch and per-node stepping byte-identical by construction.
func (rr *RoundRobin) Step(local uint64) sim.Action {
	var a sim.Action
	f, tx := rr.step(local, &a.Msg)
	a.Freq, a.Transmit = int(f), tx
	return a
}

// Cohort implements sim.BatchAgent: arena-built nodes batch per arena;
// directly constructed nodes opt out.
func (rr *RoundRobin) Cohort() any {
	if rr.arena == nil {
		return nil
	}
	return rr.arena
}

// StepBatch implements sim.BatchAgent: one devirtualized loop over the
// cohort's slab, writing straight into the engine's action arrays. Message
// payloads are written only for transmitters.
func (rr *RoundRobin) StepBatch(ids []int, locals []uint64, actFreq []int32, actTx []bool, actMsg []msg.Message) {
	nodes := rr.arena.nodes
	for j, id := range ids {
		f, tx := nodes[id].step(locals[j], &actMsg[id])
		actFreq[id] = f
		actTx[id] = tx
	}
}

// step advances the node one local round, writing the outgoing message via
// m only when it transmits.
func (rr *RoundRobin) step(local uint64, m *msg.Message) (freq int32, transmit bool) {
	rr.age = local
	rr.out.Tick()
	f := int32(1 + (rr.age+rr.uid)%uint64(rr.f))
	if rr.adopted {
		return f, false
	}
	if !rr.committed && rr.age > uint64(2*SelfCommitFrames*rr.f) {
		rr.committed = true
		rr.out.Adopt(rr.age)
	}
	frame := (rr.age / uint64(rr.f)) & 1
	sendFrame := rr.uid & 1
	if frame == sendFrame {
		round := rr.age
		if rr.committed {
			round = rr.out.Value()
		}
		*m = msg.Message{
			Kind:   msg.KindLeader,
			TS:     msg.Timestamp{Age: rr.age, UID: rr.uid},
			Round:  round,
			Scheme: rr.uid,
		}
		return f, true
	}
	return f, false
}

// Deliver implements sim.Agent.
func (rr *RoundRobin) Deliver(m msg.Message) {
	if rr.adopted || rr.committed || m.Kind != msg.KindLeader {
		return
	}
	if (msg.Timestamp{Age: rr.age, UID: rr.uid}).Less(m.TS) {
		rr.adopted = true
		rr.out.Adopt(m.Round)
	}
}

// Output implements sim.Agent.
func (rr *RoundRobin) Output() sim.Output {
	if !rr.out.Synced() {
		return sim.Output{}
	}
	return sim.Output{Value: rr.out.Value(), Synced: true}
}

// IsLeader reports whether the node committed to its own numbering.
func (rr *RoundRobin) IsLeader() bool { return rr.committed }
