package baseline

import (
	"testing"

	"wsync/internal/adversary"
	"wsync/internal/msg"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

func wakeupConfig(n, f, t int, adv sim.Adversary, seed uint64, maxRounds uint64) *sim.Config {
	return &sim.Config{
		F:    f,
		T:    t,
		Seed: seed,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return NewWakeup(16, f, r)
		},
		Schedule:  sim.Simultaneous{Count: n},
		Adversary: adv,
		MaxRounds: maxRounds,
	}
}

func TestWakeupSyncsWithoutDisruption(t *testing.T) {
	cfg := wakeupConfig(4, 4, 0, nil, 1, 50000)
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSynced {
		t.Fatalf("wakeup did not sync: %+v", res.Stats)
	}
	if res.Leaders < 1 {
		t.Fatal("no self-committed leader")
	}
}

func TestWakeupAdoptRules(t *testing.T) {
	w := NewWakeup(16, 4, rng.New(3))
	w.Step(5)
	// Smaller timestamp: ignored.
	w.Deliver(msg.Message{Kind: msg.KindLeader, TS: msg.Timestamp{Age: 1, UID: 0}, Round: 9})
	if w.Output().Synced {
		t.Fatal("adopted smaller timestamp")
	}
	// Larger timestamp: adopted.
	w.Deliver(msg.Message{Kind: msg.KindLeader, TS: msg.Timestamp{Age: 50, UID: 0}, Round: 50})
	out := w.Output()
	if !out.Synced || out.Value != 50 {
		t.Fatalf("output = %+v, want synced 50", out)
	}
	if w.IsLeader() {
		t.Fatal("adopted node reports leadership")
	}
	// Terminal: later claims are ignored.
	w.Step(6)
	w.Deliver(msg.Message{Kind: msg.KindLeader, TS: msg.Timestamp{Age: 90, UID: 0}, Round: 900})
	if w.Output().Value != 51 {
		t.Fatalf("output = %d, want 51", w.Output().Value)
	}
}

func TestWakeupSelfCommit(t *testing.T) {
	w := NewWakeup(16, 4, rng.New(4))
	for r := uint64(1); r <= w.rampLen()+1; r++ {
		w.Step(r)
	}
	if !w.IsLeader() {
		t.Fatal("silent node did not self-commit")
	}
	if !w.Output().Synced {
		t.Fatal("committed node not synced")
	}
	if w.BroadcastProb() != 0.5 {
		t.Fatalf("committed BroadcastProb = %v", w.BroadcastProb())
	}
}

func TestSingleFreqAlwaysFreqOne(t *testing.T) {
	s := NewSingleFreq(8, rng.New(5))
	for r := uint64(1); r <= 100; r++ {
		if a := s.Step(r); a.Freq != 1 {
			t.Fatalf("round %d: freq = %d", r, a.Freq)
		}
	}
}

func TestSingleFreqDefeatedByJamming(t *testing.T) {
	cfg := &sim.Config{
		F:    4,
		T:    1,
		Seed: 6,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return NewSingleFreq(8, r)
		},
		Schedule:  sim.Simultaneous{Count: 2},
		Adversary: adversary.NewPrefix(4, 1), // jams frequency 1 forever
		MaxRounds: 5000,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Deliveries != 0 {
		t.Fatalf("deliveries = %d on a jammed single channel", res.Stats.Deliveries)
	}
	// Nodes self-commit to conflicting schemes; nobody adopts anybody.
	if res.Leaders != 2 {
		t.Fatalf("leaders = %d, want 2 (both stranded)", res.Leaders)
	}
}

func TestRoundRobinDeterministicFreqPattern(t *testing.T) {
	rr := NewRoundRobin(8, 4, rng.New(7))
	seen := map[int]bool{}
	for r := uint64(1); r <= 4; r++ {
		a := rr.Step(r)
		if a.Freq < 1 || a.Freq > 4 {
			t.Fatalf("freq %d out of range", a.Freq)
		}
		seen[a.Freq] = true
	}
	if len(seen) != 4 {
		t.Fatalf("hopped over %d frequencies in one frame, want 4", len(seen))
	}
}

func TestRoundRobinSyncsCleanChannel(t *testing.T) {
	cfg := &sim.Config{
		F:    4,
		T:    0,
		Seed: 8,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return NewRoundRobin(8, 4, r)
		},
		Schedule:  sim.Simultaneous{Count: 2},
		MaxRounds: 10000,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSynced {
		t.Fatalf("round robin did not sync: %+v", res.Stats)
	}
}

func TestRoundRobinAdopt(t *testing.T) {
	rr := NewRoundRobin(8, 4, rng.New(9))
	rr.Step(1)
	rr.Deliver(msg.Message{Kind: msg.KindLeader, TS: msg.Timestamp{Age: 99, UID: 1}, Round: 200})
	out := rr.Output()
	if !out.Synced || out.Value != 200 {
		t.Fatalf("output = %+v", out)
	}
	if rr.IsLeader() {
		t.Fatal("adopted node reports leadership")
	}
}

// TestWakeupAgreementCanFail documents the baseline's flaw: with staggered
// groups out of earshot (heavy jamming), multiple nodes self-commit to
// different schemes. We engineer it deterministically: two nodes, all but
// one frequency jammed, and the sole survivor frequency also jammed — both
// nodes self-commit independently.
func TestWakeupAgreementCanFail(t *testing.T) {
	cfg := wakeupConfig(2, 2, 1, adversary.NewPrefix(2, 1), 10, 3000)
	// Jam frequency 1 of 2: some messages still flow on 2, so instead use
	// the single-freq variant to force total silence.
	cfg.NewAgent = func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
		return NewSingleFreq(8, r)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Leaders != 2 {
		t.Fatalf("leaders = %d, want 2 conflicting self-commits", res.Leaders)
	}
}
