package baseline

import (
	"reflect"
	"testing"

	"wsync/internal/rng"
	"wsync/internal/sim"
)

// TestArenasMatchDirectConstruction pins the arena contract for both
// baseline protocols: arena-built runs (which also exercise the
// batch-stepping path) are bit-identical to constructor-built runs (which
// step per node), and to arena-built runs with batching disabled. The
// Wakeup arena must preserve NewWakeup's exact UID bound (clamped but not
// rounded to a power of two).
func TestArenasMatchDirectConstruction(t *testing.T) {
	const n, f = 24, 8
	run := func(seed uint64, newAgent func(sim.NodeID, uint64, *rng.Rand) sim.Agent, noBatch bool) *sim.Result {
		res, err := sim.Run(&sim.Config{
			F:         f,
			Seed:      seed,
			NewAgent:  newAgent,
			Schedule:  sim.Staggered{Count: n, Gap: 2},
			MaxRounds: 20000,
			NoBatch:   noBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	protos := []struct {
		name   string
		direct func(sim.NodeID, uint64, *rng.Rand) sim.Agent
		arena  func() func(sim.NodeID, uint64, *rng.Rand) sim.Agent
	}{
		{
			name: "wakeup",
			direct: func(id sim.NodeID, act uint64, r *rng.Rand) sim.Agent {
				return NewWakeup(n, f, r)
			},
			arena: func() func(sim.NodeID, uint64, *rng.Rand) sim.Agent {
				return NewWakeupArena(n, f, n).NewAgent
			},
		},
		{
			name: "roundrobin",
			direct: func(id sim.NodeID, act uint64, r *rng.Rand) sim.Agent {
				return NewRoundRobin(n, f, r)
			},
			arena: func() func(sim.NodeID, uint64, *rng.Rand) sim.Agent {
				return NewRoundRobinArena(n, f, n).NewAgent
			},
		},
	}
	for _, tc := range protos {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				direct := run(seed, tc.direct, false)
				pooled := run(seed, tc.arena(), false)
				pooledNoBatch := run(seed, tc.arena(), true)
				if !reflect.DeepEqual(direct, pooled) {
					t.Fatalf("seed %d: arena result differs from direct construction", seed)
				}
				if !reflect.DeepEqual(direct, pooledNoBatch) {
					t.Fatalf("seed %d: NoBatch arena result differs from direct construction", seed)
				}
			}
		})
	}
}
