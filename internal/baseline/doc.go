// Package baseline implements comparison protocols for the experiment
// harness. None of them is from the paper; each isolates one design
// decision of the paper's protocols by removing it:
//
//   - Wakeup: a wake-up–style protocol with the Trapdoor probability ramp
//     but no knockout competition: every node announces its own numbering,
//     adopts the first larger-timestamped numbering it hears, and simply
//     assumes leadership after its ramp if it heard nobody. It is fast but
//     offers no single-leader guarantee, so agreement can fail —
//     demonstrating why the Trapdoor's competition exists.
//   - SingleFreq: the same protocol confined to frequency 1. Without
//     disruption it synchronizes; with any jammer covering frequency 1 it
//     livelocks — demonstrating why multiple frequencies are necessary
//     (the Theorem 4 intuition).
//   - RoundRobin: a deterministic hopping protocol (frequency and
//     transmit/listen role derived from local age and identifier). A
//     sweeping jammer can track it and identical-parity populations can
//     deadlock — demonstrating why randomization matters.
package baseline
