package trace

import (
	"bytes"
	"strings"
	"testing"

	"wsync/internal/churn"
	"wsync/internal/freqset"
	"wsync/internal/multihop"
	"wsync/internal/rng"
	"wsync/internal/sim"
	"wsync/internal/trapdoor"
)

func record(round uint64, disrupted []int, actions []sim.ActionRecord,
	deliveries []sim.Delivery, outputs []sim.Output) *sim.RoundRecord {
	return &sim.RoundRecord{
		Round:      round,
		Disrupted:  freqset.FromSlice(8, disrupted),
		Actions:    actions,
		Deliveries: deliveries,
		Outputs:    outputs,
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(3)
	for i := uint64(1); i <= 5; i++ {
		r.ObserveRound(record(i, nil, nil, nil, []sim.Output{{}}))
	}
	rounds := r.Rounds()
	if len(rounds) != 3 {
		t.Fatalf("retained %d rounds, want 3", len(rounds))
	}
	for i, want := range []uint64{3, 4, 5} {
		if rounds[i].Number != want {
			t.Fatalf("rounds[%d].Number = %d, want %d", i, rounds[i].Number, want)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d", r.Total())
	}
}

func TestRecorderDeepCopies(t *testing.T) {
	r := NewRecorder(2)
	actions := []sim.ActionRecord{{Node: 0, Freq: 3, Transmit: true}}
	rec := record(1, []int{2}, actions, nil, []sim.Output{{}})
	r.ObserveRound(rec)
	actions[0].Freq = 7 // engine reuses its buffers
	if got := r.Rounds()[0].Actions[0].Freq; got != 3 {
		t.Fatalf("recorded action mutated to freq %d", got)
	}
}

func TestRenderSymbols(t *testing.T) {
	r := NewRecorder(4)
	// Round 1: node 0 transmits to node 1; node 2 listens in silence.
	r.ObserveRound(record(1, []int{5},
		[]sim.ActionRecord{
			{Node: 0, Freq: 3, Transmit: true},
			{Node: 1, Freq: 3},
			{Node: 2, Freq: 6},
		},
		[]sim.Delivery{{From: 0, To: 1, Freq: 3}},
		[]sim.Output{{}, {Value: 9, Synced: true}, {}},
	))
	// Round 2: node 0 transmits into the void; node 3 still inactive.
	r.ObserveRound(record(2, nil,
		[]sim.ActionRecord{
			{Node: 0, Freq: 2, Transmit: true},
			{Node: 1, Freq: 4},
			{Node: 2, Freq: 6},
		},
		nil,
		[]sim.Output{{}, {Value: 10, Synced: true}, {}},
	))
	var buf bytes.Buffer
	if err := r.Render(&buf, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"T3", "r3*", ".6", "x2", "~", "{5}"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRecorder(2).Render(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no rounds") {
		t.Fatalf("empty render = %q", buf.String())
	}
}

func TestFirstSyncMarkerOnlyOnce(t *testing.T) {
	r := NewRecorder(4)
	for i := uint64(1); i <= 3; i++ {
		synced := i >= 2
		r.ObserveRound(record(i, nil,
			[]sim.ActionRecord{{Node: 0, Freq: 1}},
			nil,
			[]sim.Output{{Value: i, Synced: synced}},
		))
	}
	var buf bytes.Buffer
	if err := r.Render(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "*"); got != 2 {
		// One in the legend, one in round 2's cell.
		t.Fatalf("marker count = %d, want 2:\n%s", got, buf.String())
	}
}

// TestRecorderOnMultihopChurnedRun pins the multihop observer hook: a
// Recorder attached via multihop.Config.Observers sees every round of a
// churned-topology run and renders the same timeline on every execution
// of the same config — the determinism contract extended to the
// debugging view.
func TestRecorderOnMultihopChurnedRun(t *testing.T) {
	const nodes = 9
	run := func() (string, *multihop.Result, *Recorder) {
		t.Helper()
		p := trapdoor.Params{N: 16, F: 4, T: 0}
		base := multihop.Grid(3, 3)
		rec := NewRecorder(12)
		res, err := multihop.Run(&multihop.Config{
			F:        p.F,
			Seed:     11,
			Topology: base,
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				return multihop.MustNewRelay(p, r)
			},
			Churn:     churn.NewFlip(base, 0.2, 13),
			MaxRounds: 4000,
			Observers: []sim.Observer{rec},
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.Render(&buf, nodes); err != nil {
			t.Fatal(err)
		}
		return buf.String(), res, rec
	}

	out1, res1, rec1 := run()
	out2, res2, _ := run()
	if out1 != out2 {
		t.Errorf("two identical churned runs rendered different timelines:\n--- first ---\n%s--- second ---\n%s", out1, out2)
	}
	if res1.Rounds != res2.Rounds || res1.ChurnEdges != res2.ChurnEdges {
		t.Errorf("results differ across identical runs: %+v vs %+v", res1, res2)
	}
	if res1.ChurnRounds == 0 {
		t.Error("the run never churned; the test exercises nothing")
	}
	if rec1.Total() != int(res1.Rounds) {
		t.Errorf("recorder saw %d rounds, run had %d", rec1.Total(), res1.Rounds)
	}
	if !strings.Contains(out1, "n8") {
		t.Errorf("timeline missing the last node column:\n%s", out1)
	}
}

func TestMinimumCap(t *testing.T) {
	r := NewRecorder(0)
	r.ObserveRound(record(1, nil, nil, nil, []sim.Output{}))
	r.ObserveRound(record(2, nil, nil, nil, []sim.Output{}))
	if got := len(r.Rounds()); got != 1 {
		t.Fatalf("retained %d, want 1", got)
	}
}
