package trace

import (
	"fmt"
	"io"
	"strings"

	"wsync/internal/sim"
)

// Round is one retained round of activity.
type Round struct {
	Number     uint64
	Disrupted  []int
	Actions    []sim.ActionRecord
	Deliveries []sim.Delivery
	Outputs    []sim.Output
}

// Recorder retains the most recent Cap rounds of a run. It implements
// sim.Observer and deep-copies everything, since the engine reuses record
// storage.
type Recorder struct {
	cap   int
	ring  []Round
	next  int
	total int

	firstSync []uint64 // per node: round of first non-⊥ output
}

var _ sim.Observer = (*Recorder)(nil)

// NewRecorder retains the last capRounds rounds (minimum 1).
func NewRecorder(capRounds int) *Recorder {
	if capRounds < 1 {
		capRounds = 1
	}
	return &Recorder{cap: capRounds, ring: make([]Round, 0, capRounds)}
}

// ObserveRound implements sim.Observer.
func (r *Recorder) ObserveRound(rec *sim.RoundRecord) {
	if r.firstSync == nil {
		r.firstSync = make([]uint64, len(rec.Outputs))
	}
	for i, out := range rec.Outputs {
		if out.Synced && r.firstSync[i] == 0 {
			r.firstSync[i] = rec.Round
		}
	}
	round := Round{
		Number:     rec.Round,
		Disrupted:  append([]int(nil), rec.Disrupted.Slice()...),
		Actions:    append([]sim.ActionRecord(nil), rec.Actions...),
		Deliveries: append([]sim.Delivery(nil), rec.Deliveries...),
		Outputs:    append([]sim.Output(nil), rec.Outputs...),
	}
	if len(r.ring) < r.cap {
		r.ring = append(r.ring, round)
	} else {
		r.ring[r.next] = round
	}
	r.next = (r.next + 1) % r.cap
	r.total++
}

// Rounds returns the retained window in chronological order.
func (r *Recorder) Rounds() []Round {
	if len(r.ring) < r.cap {
		out := make([]Round, len(r.ring))
		copy(out, r.ring)
		return out
	}
	out := make([]Round, 0, r.cap)
	for i := 0; i < r.cap; i++ {
		out = append(out, r.ring[(r.next+i)%r.cap])
	}
	return out
}

// Total returns how many rounds were observed in all.
func (r *Recorder) Total() int { return r.total }

// cell renders node i's activity in the round.
func cell(round *Round, i int, firstSync uint64) string {
	var act *sim.ActionRecord
	for a := range round.Actions {
		if round.Actions[a].Node == sim.NodeID(i) {
			act = &round.Actions[a]
			break
		}
	}
	if act == nil {
		return "~"
	}
	received := false
	for _, d := range round.Deliveries {
		if d.To == sim.NodeID(i) {
			received = true
			break
		}
	}
	var s string
	switch {
	case act.Transmit && delivered(round, i):
		s = fmt.Sprintf("T%d", act.Freq)
	case act.Transmit:
		s = fmt.Sprintf("x%d", act.Freq)
	case received:
		s = fmt.Sprintf("r%d", act.Freq)
	default:
		s = fmt.Sprintf(".%d", act.Freq)
	}
	if firstSync == round.Number {
		s += "*"
	}
	return s
}

// delivered reports whether node i's transmission reached anyone this
// round.
func delivered(round *Round, i int) bool {
	for _, d := range round.Deliveries {
		if d.From == sim.NodeID(i) {
			return true
		}
	}
	return false
}

// Render writes the retained window as an aligned timeline for the given
// number of nodes.
func (r *Recorder) Render(w io.Writer, nodes int) error {
	rounds := r.Rounds()
	if len(rounds) == 0 {
		_, err := io.WriteString(w, "trace: no rounds recorded\n")
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: last %d of %d rounds (T=tx heard, x=tx lost, r=received, .=silence, ~=inactive, *=first output)\n",
		len(rounds), r.total)
	fmt.Fprintf(&b, "%7s  %-12s", "round", "jammed")
	for i := 0; i < nodes; i++ {
		fmt.Fprintf(&b, "  %-5s", fmt.Sprintf("n%d", i))
	}
	b.WriteByte('\n')
	for idx := range rounds {
		round := &rounds[idx]
		jam := "{}"
		if len(round.Disrupted) > 0 {
			parts := make([]string, len(round.Disrupted))
			for i, f := range round.Disrupted {
				parts[i] = fmt.Sprintf("%d", f)
			}
			jam = "{" + strings.Join(parts, ",") + "}"
		}
		fmt.Fprintf(&b, "%7d  %-12s", round.Number, jam)
		for i := 0; i < nodes; i++ {
			var fs uint64
			if i < len(r.firstSync) {
				fs = r.firstSync[i]
			}
			fmt.Fprintf(&b, "  %-5s", cell(round, i, fs))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
