// Package trace records simulation activity and renders it as a compact
// ASCII timeline — the debugging view for protocol executions. Attach a
// Recorder as a sim.Observer and render the retained window afterwards:
//
//	round  jammed  n0    n1    n2
//	  41   {1,2}   T3    r3    .5
//
// T3 = transmitted on frequency 3, r3 = received on frequency 3,
// .5 = listened on frequency 5 and heard nothing, x3 = transmitted into a
// collision, ~ = inactive. A trailing * marks the round in which the node
// first output a round number.
//
// Both engines feed it: attach the Recorder through sim.Config.Observers
// for single-hop runs or multihop.Config.Observers for multi-hop ones —
// including churned topologies, where the timeline shows deliveries
// coming and going as edges flip.
package trace
