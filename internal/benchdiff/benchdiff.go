// Package benchdiff compares two wsync-bench/v1 artifacts experiment by
// experiment and decides whether the newer run regressed. It is the engine
// behind `wexp benchdiff old.json new.json`, which CI runs against the
// previous main-branch artifact on every push (docs/BENCH_FORMAT.md,
// "Comparing artifacts: benchdiff").
//
// Two axes are compared per experiment id: wall time (elapsed_ms, higher is
// worse) and throughput (node_rounds_per_s, lower is worse). Both are
// volatile fields — the comparison is about the performance trajectory, not
// the determinism contract — so benchdiff guards against noise with a
// configurable relative threshold and an absolute wall-time floor below
// which entries are informational only. Artifacts normalized by
// `wexp merge -zero-volatile` have both axes zeroed; against such a base
// every entry is ungated and the comparison degrades to the id-coverage
// check, by design.
package benchdiff

import (
	"fmt"
	"io"
	"text/tabwriter"

	"wsync/internal/shard"
	"wsync/internal/stats"
)

// DefaultThresholdPct is the regression gate applied when Options leaves
// ThresholdPct zero: an experiment regresses when it got more than 25%
// slower on either axis.
const DefaultThresholdPct = 25.0

// DefaultMinElapsedMS is the noise floor applied when Options leaves
// MinElapsedMS zero: entries whose wall time is below 20ms in both
// artifacts carry too little signal to gate on.
const DefaultMinElapsedMS = 20

// Options configures a comparison.
type Options struct {
	// ThresholdPct is the relative regression gate in percent (0 means
	// DefaultThresholdPct): an experiment regresses when elapsed_ms grew
	// by more than this, or node_rounds_per_s fell by more than this.
	ThresholdPct float64
	// MinElapsedMS is the absolute noise floor in milliseconds (0 means
	// DefaultMinElapsedMS): an axis is gated only when at least one side
	// of the comparison spent that long. Sub-floor entries still appear
	// in the delta table, marked ungated.
	MinElapsedMS int64
}

func (o Options) thresholdPct() float64 {
	if o.ThresholdPct == 0 {
		return DefaultThresholdPct
	}
	return o.ThresholdPct
}

func (o Options) minElapsedMS() int64 {
	if o.MinElapsedMS == 0 {
		return DefaultMinElapsedMS
	}
	return o.MinElapsedMS
}

// Delta is one experiment's comparison across the two artifacts.
type Delta struct {
	ID string

	OldElapsedMS int64
	NewElapsedMS int64
	// ElapsedPct is the relative wall-time change in percent; positive
	// means the new run is slower. Meaningful only when ElapsedGated.
	ElapsedPct float64
	// ElapsedGated reports whether the wall-time axis was eligible for
	// gating: the old value is nonzero and at least one side reached the
	// noise floor.
	ElapsedGated bool

	OldNodeRoundsPerSec float64
	NewNodeRoundsPerSec float64
	// ThroughputPct is the relative node-rounds/s change in percent;
	// negative means the new run is slower. Meaningful only when
	// ThroughputGated.
	ThroughputPct float64
	// ThroughputGated reports whether the throughput axis was eligible
	// for gating: both values are nonzero and the entry reached the
	// noise floor.
	ThroughputGated bool

	// Regressed is true when a gated axis moved past the threshold in
	// the slow direction.
	Regressed bool
}

// Result is the outcome of a Compare.
type Result struct {
	Deltas []Delta
	// Missing lists ids present in the old artifact but absent from the
	// new one, in the old artifact's order. A missing id is a failure:
	// an experiment silently dropping out of the sweep is exactly the
	// kind of coverage loss the comparison exists to catch.
	Missing []string
	// Extra lists ids present only in the new artifact, in its order.
	// Extras are reported but not a failure — a growing sweep is fine.
	Extra []string
}

// Regressions returns the ids of regressed experiments, in table order.
func (r *Result) Regressions() []string {
	var ids []string
	for _, d := range r.Deltas {
		if d.Regressed {
			ids = append(ids, d.ID)
		}
	}
	return ids
}

// Failed reports whether the comparison should gate a build: any
// regressed experiment or any missing id.
func (r *Result) Failed() bool {
	return len(r.Missing) > 0 || len(r.Regressions()) > 0
}

// Compare diffs two decoded artifacts under the given options. Entries are
// matched by table id; the delta table follows the old artifact's
// experiment order. Entries without a table are ignored on both sides
// (shard.Merge rejects them anyway).
func Compare(oldRep, newRep *shard.Report, opt Options) *Result {
	threshold := opt.thresholdPct()
	floor := opt.minElapsedMS()

	newByID := make(map[string]shard.Entry)
	var newOrder []string
	for _, e := range newRep.Experiments {
		if e.Table == nil {
			continue
		}
		if _, dup := newByID[e.Table.ID]; !dup {
			newByID[e.Table.ID] = e
			newOrder = append(newOrder, e.Table.ID)
		}
	}

	res := &Result{}
	seen := make(map[string]bool)
	for _, oe := range oldRep.Experiments {
		if oe.Table == nil {
			continue
		}
		id := oe.Table.ID
		if seen[id] {
			continue
		}
		seen[id] = true
		ne, ok := newByID[id]
		if !ok {
			res.Missing = append(res.Missing, id)
			continue
		}

		d := Delta{
			ID:                  id,
			OldElapsedMS:        oe.ElapsedMS,
			NewElapsedMS:        ne.ElapsedMS,
			OldNodeRoundsPerSec: oe.NodeRoundsPerSec,
			NewNodeRoundsPerSec: ne.NodeRoundsPerSec,
		}
		atFloor := oe.ElapsedMS >= floor || ne.ElapsedMS >= floor
		if oe.ElapsedMS > 0 && atFloor {
			d.ElapsedGated = true
			d.ElapsedPct = 100 * float64(ne.ElapsedMS-oe.ElapsedMS) / float64(oe.ElapsedMS)
		}
		if oe.NodeRoundsPerSec > 0 && ne.NodeRoundsPerSec > 0 && atFloor {
			d.ThroughputGated = true
			d.ThroughputPct = 100 * (ne.NodeRoundsPerSec - oe.NodeRoundsPerSec) / oe.NodeRoundsPerSec
		}
		d.Regressed = (d.ElapsedGated && d.ElapsedPct > threshold) ||
			(d.ThroughputGated && d.ThroughputPct < -threshold)
		res.Deltas = append(res.Deltas, d)
	}
	for _, id := range newOrder {
		if !seen[id] {
			res.Extra = append(res.Extra, id)
		}
	}
	return res
}

// Format renders the delta table: one row per compared experiment, a
// summary line annotating the delta distributions with p50/p95 (via
// stats.Summarize), and the missing/extra/regression report. The verdict
// column distinguishes ok, REGRESSED, and "-" (no gated axis).
func (r *Result) Format(w io.Writer, opt Options) {
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "id\told_ms\tnew_ms\tΔms\told_nr/s\tnew_nr/s\tΔnr/s\tverdict")
	var elapsedPcts, nrsPcts []float64
	for _, d := range r.Deltas {
		ems, nrs := "-", "-"
		if d.ElapsedGated {
			ems = fmt.Sprintf("%+.1f%%", d.ElapsedPct)
			elapsedPcts = append(elapsedPcts, d.ElapsedPct)
		}
		if d.ThroughputGated {
			nrs = fmt.Sprintf("%+.1f%%", d.ThroughputPct)
			nrsPcts = append(nrsPcts, d.ThroughputPct)
		}
		verdict := "-"
		switch {
		case d.Regressed:
			verdict = "REGRESSED"
		case d.ElapsedGated || d.ThroughputGated:
			verdict = "ok"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%.3g\t%.3g\t%s\t%s\n",
			d.ID, d.OldElapsedMS, d.NewElapsedMS, ems,
			d.OldNodeRoundsPerSec, d.NewNodeRoundsPerSec, nrs, verdict)
	}
	tw.Flush()

	if s := stats.Summarize(elapsedPcts); s.N > 0 {
		fmt.Fprintf(w, "elapsed Δ: p50 %+.1f%%, p95 %+.1f%% over %d gated experiments\n", s.Median, s.P95, s.N)
	}
	if s := stats.Summarize(nrsPcts); s.N > 0 {
		fmt.Fprintf(w, "node-rounds/s Δ: p50 %+.1f%%, p95 %+.1f%% over %d gated experiments\n", s.Median, s.P95, s.N)
	}
	if len(elapsedPcts) == 0 && len(nrsPcts) == 0 {
		fmt.Fprintln(w, "no gated axes (volatile fields zeroed or below the noise floor); id coverage checked only")
	}

	if len(r.Extra) > 0 {
		fmt.Fprintf(w, "extra in new artifact (not gated): %v\n", r.Extra)
	}
	if len(r.Missing) > 0 {
		fmt.Fprintf(w, "MISSING from new artifact: %v\n", r.Missing)
	}
	if reg := r.Regressions(); len(reg) > 0 {
		fmt.Fprintf(w, "REGRESSED beyond %.0f%%: %v\n", opt.thresholdPct(), reg)
	}
}
