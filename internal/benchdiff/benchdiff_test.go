package benchdiff

import (
	"strings"
	"testing"

	"wsync/internal/harness"
	"wsync/internal/shard"
)

// report builds a minimal wsync-bench/v1 artifact with one entry per
// (id, elapsed_ms, node_rounds_per_s) triple.
func report(entries ...shard.Entry) *shard.Report {
	return &shard.Report{Schema: shard.Schema, Experiments: entries}
}

func entry(id string, elapsedMS int64, nrs float64) shard.Entry {
	return shard.Entry{
		Table:            &harness.Table{ID: id, Columns: []string{"c"}, Rows: [][]string{{"v"}}},
		ElapsedMS:        elapsedMS,
		NodeRoundsPerSec: nrs,
	}
}

func TestIdenticalArtifactsPass(t *testing.T) {
	old := report(entry("T1", 500, 1e6), entry("X1", 900, 2e6))
	res := Compare(old, report(entry("T1", 500, 1e6), entry("X1", 900, 2e6)), Options{})
	if res.Failed() {
		t.Fatalf("identical artifacts failed: regressions %v, missing %v", res.Regressions(), res.Missing)
	}
	if len(res.Missing) != 0 || len(res.Extra) != 0 {
		t.Fatalf("missing %v, extra %v on identical inputs", res.Missing, res.Extra)
	}
	for _, d := range res.Deltas {
		if d.ElapsedPct != 0 || d.ThroughputPct != 0 {
			t.Errorf("%s: nonzero delta on identical inputs: %+v", d.ID, d)
		}
	}
}

// TestInjectedRegressionFails pins the core gate: a synthetic 2x slowdown
// on one experiment must fail the comparison and name exactly that id.
func TestInjectedRegressionFails(t *testing.T) {
	old := report(entry("T1", 500, 1e6), entry("X1", 900, 2e6))
	regressed := report(entry("T1", 1000, 5e5), entry("X1", 900, 2e6))
	res := Compare(old, regressed, Options{})
	if !res.Failed() {
		t.Fatal("2x slowdown not flagged")
	}
	if got := res.Regressions(); len(got) != 1 || got[0] != "T1" {
		t.Fatalf("regressions = %v, want [T1]", got)
	}
}

// TestThroughputOnlyRegression: node-rounds/s collapsing flags even when
// elapsed stays within threshold (the experiment might have silently done
// less work per unit time while its wall clock moved little).
func TestThroughputOnlyRegression(t *testing.T) {
	old := report(entry("T4", 500, 1e6))
	res := Compare(old, report(entry("T4", 520, 5e5)), Options{})
	if got := res.Regressions(); len(got) != 1 || got[0] != "T4" {
		t.Fatalf("regressions = %v, want [T4]", got)
	}
}

func TestThresholdConfigurable(t *testing.T) {
	old := report(entry("T1", 500, 1e6))
	mild := report(entry("T1", 650, 1e6)) // +30%
	if res := Compare(old, mild, Options{ThresholdPct: 50}); res.Failed() {
		t.Errorf("+30%% failed under a 50%% threshold: %v", res.Regressions())
	}
	if res := Compare(old, mild, Options{ThresholdPct: 10}); !res.Failed() {
		t.Error("+30% passed under a 10% threshold")
	}
}

// TestNoiseFloor: entries below the wall-time floor on both sides are
// never gated, however large the relative change.
func TestNoiseFloor(t *testing.T) {
	old := report(entry("F1", 2, 1e6))
	res := Compare(old, report(entry("F1", 8, 1e5)), Options{MinElapsedMS: 20})
	if res.Failed() {
		t.Fatalf("sub-floor entry gated: %v", res.Regressions())
	}
	if d := res.Deltas[0]; d.ElapsedGated || d.ThroughputGated {
		t.Errorf("sub-floor entry marked gated: %+v", d)
	}
}

// TestZeroedBaseDegradesToCoverage: against a -zero-volatile artifact both
// axes are zero, so nothing is gated but id coverage is still enforced.
func TestZeroedBaseDegradesToCoverage(t *testing.T) {
	zeroed := report(entry("T1", 0, 0), entry("X1", 0, 0))
	fresh := report(entry("T1", 99999, 1), entry("X1", 10, 1e6))
	if res := Compare(zeroed, fresh, Options{}); res.Failed() {
		t.Fatalf("zeroed base gated: regressions %v, missing %v", res.Regressions(), res.Missing)
	}
	missingOne := report(entry("T1", 99999, 1))
	res := Compare(zeroed, missingOne, Options{})
	if !res.Failed() || len(res.Missing) != 1 || res.Missing[0] != "X1" {
		t.Fatalf("missing id not caught against zeroed base: %+v", res)
	}
}

// TestMissingAndExtraIDs: ids dropping out fail; ids appearing are
// reported but pass.
func TestMissingAndExtraIDs(t *testing.T) {
	old := report(entry("T1", 500, 1e6), entry("X1", 900, 2e6))
	res := Compare(old, report(entry("T1", 500, 1e6), entry("R9", 100, 1e6)), Options{})
	if len(res.Missing) != 1 || res.Missing[0] != "X1" {
		t.Fatalf("missing = %v, want [X1]", res.Missing)
	}
	if len(res.Extra) != 1 || res.Extra[0] != "R9" {
		t.Fatalf("extra = %v, want [R9]", res.Extra)
	}
	if !res.Failed() {
		t.Fatal("missing id did not fail the comparison")
	}
	onlyExtra := Compare(report(entry("T1", 500, 1e6)), report(entry("T1", 500, 1e6), entry("R9", 1, 1)), Options{})
	if onlyExtra.Failed() {
		t.Fatal("extra-only artifact failed")
	}
}

// TestFormatNamesRegression pins the human-readable report: the offending
// id appears on a REGRESSED row and in the final regression line, and the
// p50/p95 summary renders.
func TestFormatNamesRegression(t *testing.T) {
	old := report(entry("T1", 500, 1e6), entry("X1", 900, 2e6))
	res := Compare(old, report(entry("T1", 1200, 4e5), entry("X1", 900, 2e6)), Options{})
	var sb strings.Builder
	res.Format(&sb, Options{})
	out := sb.String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "T1") {
		t.Errorf("report does not name the regression:\n%s", out)
	}
	if !strings.Contains(out, "p50") || !strings.Contains(out, "p95") {
		t.Errorf("report missing p50/p95 summary:\n%s", out)
	}
}
