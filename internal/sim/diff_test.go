package sim

import (
	"fmt"
	"testing"

	"wsync/internal/freqset"
	"wsync/internal/rng"
)

// diff_test.go differentially tests the two medium resolvers: the legacy
// O(F + N) scan (MediumScan) is the oracle, the frequency-indexed fast
// path (MediumIndexed) the implementation under test. Every observable —
// per-round action, delivery, clear-frequency and output records, the
// disrupted sets, and the final Result — must be bit-identical over
// randomized schedules, populations, and adversaries.

// traceRecord is a deep copy of one RoundRecord (the engine reuses the
// record's backing storage, so observers must copy what they retain).
type traceRecord struct {
	round      uint64
	disrupted  []int
	actions    []ActionRecord
	deliveries []Delivery
	clear      []int
	outputs    []Output
	weights    []float64
}

// traceObserver retains a deep copy of every round.
type traceObserver struct {
	rounds []traceRecord
}

func (o *traceObserver) ObserveRound(rec *RoundRecord) {
	tr := traceRecord{
		round:      rec.Round,
		disrupted:  rec.Disrupted.Slice(),
		actions:    append([]ActionRecord(nil), rec.Actions...),
		deliveries: append([]Delivery(nil), rec.Deliveries...),
		clear:      append([]int(nil), rec.Clear...),
		outputs:    append([]Output(nil), rec.Outputs...),
	}
	if rec.Weights != nil {
		tr.weights = append([]float64(nil), rec.Weights...)
	}
	o.rounds = append(o.rounds, tr)
}

// diffTraces returns a description of the first divergence, or "".
func diffTraces(a, b *traceObserver) string {
	if len(a.rounds) != len(b.rounds) {
		return fmt.Sprintf("round count %d vs %d", len(a.rounds), len(b.rounds))
	}
	for k := range a.rounds {
		ra, rb := a.rounds[k], b.rounds[k]
		if ra.round != rb.round {
			return fmt.Sprintf("record %d: round %d vs %d", k, ra.round, rb.round)
		}
		if !intsEqual(ra.disrupted, rb.disrupted) {
			return fmt.Sprintf("round %d: disrupted %v vs %v", ra.round, ra.disrupted, rb.disrupted)
		}
		if len(ra.actions) != len(rb.actions) {
			return fmt.Sprintf("round %d: %d vs %d actions", ra.round, len(ra.actions), len(rb.actions))
		}
		for j := range ra.actions {
			if ra.actions[j] != rb.actions[j] {
				return fmt.Sprintf("round %d action %d: %+v vs %+v", ra.round, j, ra.actions[j], rb.actions[j])
			}
		}
		if len(ra.deliveries) != len(rb.deliveries) {
			return fmt.Sprintf("round %d: %d vs %d deliveries", ra.round, len(ra.deliveries), len(rb.deliveries))
		}
		for j := range ra.deliveries {
			if ra.deliveries[j] != rb.deliveries[j] {
				return fmt.Sprintf("round %d delivery %d: %+v vs %+v", ra.round, j, ra.deliveries[j], rb.deliveries[j])
			}
		}
		if !intsEqual(ra.clear, rb.clear) {
			return fmt.Sprintf("round %d: clear %v vs %v", ra.round, ra.clear, rb.clear)
		}
		for j := range ra.outputs {
			if ra.outputs[j] != rb.outputs[j] {
				return fmt.Sprintf("round %d output %d: %+v vs %+v", ra.round, j, ra.outputs[j], rb.outputs[j])
			}
		}
		if len(ra.weights) != len(rb.weights) {
			return fmt.Sprintf("round %d: weights %d vs %d", ra.round, len(ra.weights), len(rb.weights))
		}
		for j := range ra.weights {
			if ra.weights[j] != rb.weights[j] {
				return fmt.Sprintf("round %d weight %d: %v vs %v", ra.round, j, ra.weights[j], rb.weights[j])
			}
		}
	}
	return ""
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffSchedule draws a randomized schedule shape for one differential case.
func diffSchedule(r *rng.Rand, n int) Schedule {
	switch r.IntRange(0, 3) {
	case 0:
		return Simultaneous{Count: n}
	case 1:
		return Staggered{Count: n, Gap: uint64(r.IntRange(1, 5))}
	case 2:
		groups := r.IntRange(1, 3)
		return Burst{Groups: groups, GroupSize: (n + groups - 1) / groups, Gap: uint64(r.IntRange(1, 9))}
	default:
		return RandomWindow(n, uint64(r.IntRange(1, 40)), r.Uint64())
	}
}

// TestMediumDifferential runs the scan oracle and the indexed fast path
// over randomized configurations and asserts identical traces and results.
func TestMediumDifferential(t *testing.T) {
	master := rng.New(0xd1ff)
	cases := 60
	if testing.Short() {
		cases = 20
	}
	for c := 0; c < cases; c++ {
		r := master.Split(uint64(c))
		n := r.IntRange(2, 40)
		f := r.IntRange(2, 24)
		tBudget := r.IntRange(0, f-1)
		seed := r.Uint64()
		advSeed := r.Uint64()
		sched := diffSchedule(r, n)
		probe := r.Bool()
		runToMax := r.Bool()

		mk := func(medium MediumPath, ob Observer) *Config {
			cfg := &Config{
				F:    f,
				T:    tBudget,
				Seed: seed,
				NewAgent: func(id NodeID, activation uint64, rr *rng.Rand) Agent {
					return &randomAgent{r: rr, f: f}
				},
				Schedule:       sched,
				MaxRounds:      200,
				RunToMaxRounds: runToMax,
				ProbeWeights:   probe,
				Observers:      []Observer{ob},
				Medium:         medium,
			}
			if tBudget > 0 {
				cfg.Adversary = &randomAdv{f: f, t: tBudget, r: rng.New(advSeed)}
			}
			return cfg
		}

		scanTrace := &traceObserver{}
		scanRes, err := Run(mk(MediumScan, scanTrace))
		if err != nil {
			t.Fatalf("case %d: scan: %v", c, err)
		}
		idxTrace := &traceObserver{}
		idxRes, err := Run(mk(MediumIndexed, idxTrace))
		if err != nil {
			t.Fatalf("case %d: indexed: %v", c, err)
		}

		if d := diffTraces(scanTrace, idxTrace); d != "" {
			t.Fatalf("case %d (n=%d F=%d t=%d sched=%T): trace divergence: %s",
				c, n, f, tBudget, sched, d)
		}
		if !resultsEqual(scanRes, idxRes) {
			t.Fatalf("case %d: results differ:\nscan:    %+v\nindexed: %+v",
				c, scanRes.Stats, idxRes.Stats)
		}
		if scanRes.Stats.NodeRounds == 0 {
			t.Fatalf("case %d: NodeRounds not counted", c)
		}
	}
}

// TestMediumDifferentialConcurrent pins the indexed path under the
// round-barrier concurrent engine against the sequential scan oracle.
func TestMediumDifferentialConcurrent(t *testing.T) {
	for _, workers := range []int{0, 1, 3} {
		mk := func(medium MediumPath, w int) *Config {
			return &Config{
				F:    6,
				T:    2,
				Seed: 0xbeef,
				NewAgent: func(id NodeID, activation uint64, r *rng.Rand) Agent {
					return &randomAgent{r: r, f: 6}
				},
				Schedule:       Explicit{Rounds: []uint64{9, 3, 7, 1, 1, 5, 2, 20, 4, 6}},
				Adversary:      &fixedAdversary{set: freqset.FromSlice(6, []int{2, 5})},
				MaxRounds:      160,
				RunToMaxRounds: true,
				Workers:        w,
				Medium:         medium,
			}
		}
		seq, err := Run(mk(MediumScan, 0))
		if err != nil {
			t.Fatal(err)
		}
		conc, err := RunConcurrent(mk(MediumIndexed, workers))
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(seq, conc) {
			t.Fatalf("workers=%d: concurrent indexed differs from sequential scan:\n%+v\n%+v",
				workers, seq.Stats, conc.Stats)
		}
	}
}

// TestMergeActiveOutOfOrder exercises the merge path of the active list:
// an Explicit schedule that activates a high index before a low one must
// still record actions in ascending node order.
func TestMergeActiveOutOfOrder(t *testing.T) {
	var order [][]NodeID
	ob := funcObs(func(rec *RoundRecord) {
		ids := make([]NodeID, len(rec.Actions))
		for i, a := range rec.Actions {
			ids[i] = a.Node
		}
		order = append(order, ids)
	})
	cfg := &Config{
		F:    2,
		Seed: 1,
		NewAgent: func(id NodeID, activation uint64, r *rng.Rand) Agent {
			return &funcAgent{}
		},
		Schedule:       Explicit{Rounds: []uint64{3, 1, 2}},
		MaxRounds:      3,
		RunToMaxRounds: true,
		Observers:      []Observer{ob},
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	want := [][]NodeID{{1}, {1, 2}, {0, 1, 2}}
	for r, ids := range want {
		if len(order[r]) != len(ids) {
			t.Fatalf("round %d: actions %v, want %v", r+1, order[r], ids)
		}
		for i := range ids {
			if order[r][i] != ids[i] {
				t.Fatalf("round %d: actions %v, want ascending %v", r+1, order[r], ids)
			}
		}
	}
}
