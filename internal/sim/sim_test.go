package sim

import (
	"testing"

	"wsync/internal/freqset"
	"wsync/internal/msg"
	"wsync/internal/rng"
)

// scriptedAgent replays a fixed list of actions, repeating the last one
// forever, and records everything delivered to it. It syncs (outputting
// SyncValue, then incrementing) as soon as it receives any message.
type scriptedAgent struct {
	script    []Action
	delivered []msg.Message
	out       Output
}

func (a *scriptedAgent) Step(local uint64) Action {
	if a.out.Synced {
		a.out.Value++
	}
	idx := int(local) - 1
	if idx >= len(a.script) {
		idx = len(a.script) - 1
	}
	return a.script[idx]
}

func (a *scriptedAgent) Deliver(m msg.Message) {
	a.delivered = append(a.delivered, m.Clone())
	if !a.out.Synced {
		a.out = Output{Value: 100, Synced: true}
	}
}

func (a *scriptedAgent) Output() Output { return a.out }

func tx(freq int, uid uint64) Action {
	return Action{Freq: freq, Transmit: true, Msg: msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{UID: uid}}}
}

func listen(freq int) Action { return Action{Freq: freq} }

// fixedAdversary always disrupts the same frequencies.
type fixedAdversary struct{ set *freqset.Set }

func (f *fixedAdversary) Disrupt(round uint64, hist *History) *freqset.Set { return f.set }

// scriptConfig builds a config whose node i runs script[i].
func scriptConfig(f, t int, scripts [][]Action) (*Config, []*scriptedAgent) {
	agents := make([]*scriptedAgent, len(scripts))
	cfg := &Config{
		F:    f,
		T:    t,
		Seed: 1,
		NewAgent: func(id NodeID, activation uint64, r *rng.Rand) Agent {
			a := &scriptedAgent{script: scripts[id]}
			agents[id] = a
			return a
		},
		Schedule:       Simultaneous{Count: len(scripts)},
		MaxRounds:      8,
		RunToMaxRounds: true,
	}
	return cfg, agents
}

func TestSingleTransmitterDelivers(t *testing.T) {
	cfg, agents := scriptConfig(4, 0, [][]Action{
		{tx(2, 42)},
		{listen(2)},
		{listen(3)},
	})
	cfg.MaxRounds = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(agents[1].delivered) != 1 {
		t.Fatalf("listener on freq 2 got %d messages, want 1", len(agents[1].delivered))
	}
	if agents[1].delivered[0].TS.UID != 42 {
		t.Fatalf("wrong message delivered: %+v", agents[1].delivered[0])
	}
	if len(agents[2].delivered) != 0 {
		t.Fatal("listener on freq 3 received a message")
	}
	if len(agents[0].delivered) != 0 {
		t.Fatal("transmitter received its own message")
	}
	if res.Stats.Deliveries != 1 || res.Stats.Transmissions != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestCollisionBlocksDelivery(t *testing.T) {
	cfg, agents := scriptConfig(4, 0, [][]Action{
		{tx(2, 1)},
		{tx(2, 2)},
		{listen(2)},
	})
	cfg.MaxRounds = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(agents[2].delivered) != 0 {
		t.Fatal("listener received during collision")
	}
	if res.Stats.Collisions != 1 {
		t.Fatalf("Collisions = %d, want 1", res.Stats.Collisions)
	}
	if res.Stats.ClearBroadcasts != 0 {
		t.Fatal("collision counted as clear broadcast")
	}
}

func TestDisruptionBlocksDelivery(t *testing.T) {
	cfg, agents := scriptConfig(4, 1, [][]Action{
		{tx(2, 1)},
		{listen(2)},
	})
	cfg.MaxRounds = 1
	cfg.Adversary = &fixedAdversary{set: freqset.FromSlice(4, []int{2})}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(agents[1].delivered) != 0 {
		t.Fatal("listener received on disrupted frequency")
	}
	if res.Stats.DisruptedLosses != 1 {
		t.Fatalf("DisruptedLosses = %d, want 1", res.Stats.DisruptedLosses)
	}
	if res.FirstClear != 0 {
		t.Fatal("disrupted broadcast counted as clear")
	}
}

func TestDisruptionOnOtherFreqDoesNotBlock(t *testing.T) {
	cfg, agents := scriptConfig(4, 1, [][]Action{
		{tx(2, 1)},
		{listen(2)},
	})
	cfg.MaxRounds = 1
	cfg.Adversary = &fixedAdversary{set: freqset.FromSlice(4, []int{3})}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(agents[1].delivered) != 1 {
		t.Fatal("delivery blocked by disruption of a different frequency")
	}
}

func TestClearBroadcastWithoutListeners(t *testing.T) {
	// A clear broadcast happens even when nobody listens (Theorem 1's
	// event is about the transmitter being alone and undisrupted).
	cfg, _ := scriptConfig(4, 0, [][]Action{
		{tx(1, 1)},
		{tx(2, 2)},
	})
	cfg.MaxRounds = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstClear != 1 {
		t.Fatalf("FirstClear = %d, want 1", res.FirstClear)
	}
	if res.Stats.ClearBroadcasts != 2 {
		t.Fatalf("ClearBroadcasts = %d, want 2", res.Stats.ClearBroadcasts)
	}
}

func TestActivationTiming(t *testing.T) {
	var locals [][]uint64
	cfg := &Config{
		F:    2,
		Seed: 1,
		NewAgent: func(id NodeID, activation uint64, r *rng.Rand) Agent {
			locals = append(locals, nil)
			idx := len(locals) - 1
			return &funcAgent{step: func(local uint64) Action {
				locals[idx] = append(locals[idx], local)
				return listen(1)
			}}
		},
		Schedule:       Explicit{Rounds: []uint64{1, 3}},
		MaxRounds:      4,
		RunToMaxRounds: true,
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if got := locals[0]; len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("node 0 local rounds = %v", got)
	}
	if got := locals[1]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("node 1 local rounds = %v (activated round 3)", got)
	}
}

// funcAgent adapts closures to the Agent interface.
type funcAgent struct {
	step    func(local uint64) Action
	deliver func(m msg.Message)
	output  func() Output
}

func (a *funcAgent) Step(local uint64) Action {
	if a.step == nil {
		return Action{Freq: 1}
	}
	return a.step(local)
}

func (a *funcAgent) Deliver(m msg.Message) {
	if a.deliver != nil {
		a.deliver(m)
	}
}

func (a *funcAgent) Output() Output {
	if a.output == nil {
		return Output{}
	}
	return a.output()
}

func TestSyncBookkeeping(t *testing.T) {
	cfg, _ := scriptConfig(4, 0, [][]Action{
		{tx(1, 7)},
		{listen(2), listen(1)}, // receives in round 2
	})
	cfg.MaxRounds = 5
	cfg.RunToMaxRounds = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SyncRound[1] != 2 {
		t.Fatalf("SyncRound[1] = %d, want 2", res.SyncRound[1])
	}
	if res.SyncRound[0] != 0 {
		t.Fatalf("SyncRound[0] = %d, want 0 (never synced)", res.SyncRound[0])
	}
	if res.SyncLocal(1) != 2 {
		t.Fatalf("SyncLocal(1) = %d, want 2", res.SyncLocal(1))
	}
	if res.AllSynced {
		t.Fatal("AllSynced true with unsynced node")
	}
	if res.MaxSyncLocal != 2 {
		t.Fatalf("MaxSyncLocal = %d, want 2", res.MaxSyncLocal)
	}
}

func TestDefaultStopRule(t *testing.T) {
	// Two nodes that sync each other in round 1: run should stop then.
	cfg, _ := scriptConfig(4, 0, [][]Action{
		{tx(1, 7), listen(1)},
		{listen(1), tx(1, 8)},
	})
	cfg.RunToMaxRounds = false
	cfg.MaxRounds = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 syncs in round 1; node 0 in round 2.
	if res.Stats.Rounds != 2 {
		t.Fatalf("run lasted %d rounds, want 2", res.Stats.Rounds)
	}
	if !res.AllSynced || res.HitMaxRounds {
		t.Fatalf("result = %+v", res)
	}
}

func TestStopWhen(t *testing.T) {
	cfg, _ := scriptConfig(4, 0, [][]Action{{tx(1, 1)}})
	cfg.MaxRounds = 100
	cfg.StopWhen = func(h *History) bool { return h.EverClear }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (stop on first clear)", res.Stats.Rounds)
	}
}

func TestHitMaxRounds(t *testing.T) {
	cfg, _ := scriptConfig(4, 0, [][]Action{{listen(1)}})
	cfg.MaxRounds = 3
	cfg.RunToMaxRounds = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HitMaxRounds || res.Stats.Rounds != 3 {
		t.Fatalf("result = %+v", res)
	}
}

func TestConfigValidation(t *testing.T) {
	base := func() *Config {
		return &Config{
			F:        2,
			T:        1,
			NewAgent: func(NodeID, uint64, *rng.Rand) Agent { return &funcAgent{} },
			Schedule: Simultaneous{Count: 1},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero F", func(c *Config) { c.F = 0 }},
		{"negative T", func(c *Config) { c.T = -1 }},
		{"T >= F", func(c *Config) { c.T = 2 }},
		{"nil NewAgent", func(c *Config) { c.NewAgent = nil }},
		{"nil Schedule", func(c *Config) { c.Schedule = nil }},
		{"empty schedule", func(c *Config) { c.Schedule = Simultaneous{Count: 0} }},
		{"activation round 0", func(c *Config) { c.Schedule = Explicit{Rounds: []uint64{0}} }},
	}
	for _, c := range cases {
		cfg := base()
		c.mutate(cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted invalid config", c.name)
		}
	}
}

func TestAdversaryBudgetPanics(t *testing.T) {
	cfg, _ := scriptConfig(4, 1, [][]Action{{listen(1)}})
	cfg.Adversary = &fixedAdversary{set: freqset.FromSlice(4, []int{1, 2})}
	defer func() {
		if recover() == nil {
			t.Fatal("over-budget adversary did not panic")
		}
	}()
	_, _ = Run(cfg)
}

func TestBadFrequencyPanics(t *testing.T) {
	cfg, _ := scriptConfig(4, 0, [][]Action{{listen(9)}})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range frequency did not panic")
		}
	}()
	_, _ = Run(cfg)
}

// countingObserver verifies observers see every round with coherent data.
type countingObserver struct {
	rounds     int
	deliveries int
	lastRound  uint64
}

func (o *countingObserver) ObserveRound(rec *RoundRecord) {
	o.rounds++
	o.deliveries += len(rec.Deliveries)
	if rec.Round != o.lastRound+1 {
		panic("observer saw non-consecutive rounds")
	}
	o.lastRound = rec.Round
}

func TestObserver(t *testing.T) {
	cfg, _ := scriptConfig(4, 0, [][]Action{
		{tx(1, 1)},
		{listen(1)},
	})
	cfg.MaxRounds = 5
	cfg.RunToMaxRounds = true
	ob := &countingObserver{}
	cfg.Observers = []Observer{ob}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if ob.rounds != 5 {
		t.Fatalf("observer saw %d rounds, want 5", ob.rounds)
	}
	if ob.deliveries != 5 {
		t.Fatalf("observer saw %d deliveries, want 5", ob.deliveries)
	}
}

// randomAgent exercises the node RNG so determinism tests are meaningful.
// It transmits with probability 1/2 on a random frequency and syncs on
// first reception.
type randomAgent struct {
	r   *rng.Rand
	f   int
	out Output
}

func (a *randomAgent) Step(local uint64) Action {
	if a.out.Synced {
		a.out.Value++
	}
	act := Action{Freq: a.r.IntRange(1, a.f)}
	if a.r.Bool() {
		act.Transmit = true
		act.Msg = msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{Age: local}}
	}
	return act
}

func (a *randomAgent) Deliver(m msg.Message) {
	if !a.out.Synced {
		a.out = Output{Value: 1, Synced: true}
	}
}

func (a *randomAgent) Output() Output { return a.out }

func randomConfig(seed uint64, workers int) *Config {
	return &Config{
		F:    6,
		T:    2,
		Seed: seed,
		NewAgent: func(id NodeID, activation uint64, r *rng.Rand) Agent {
			return &randomAgent{r: r, f: 6}
		},
		Schedule:       Staggered{Count: 20, Gap: 2},
		Adversary:      &fixedAdversary{set: freqset.FromSlice(6, []int{1, 2})},
		MaxRounds:      300,
		RunToMaxRounds: true,
		Workers:        workers,
	}
}

func resultsEqual(a, b *Result) bool {
	if a.Stats != b.Stats || a.AllSynced != b.AllSynced ||
		a.MaxSyncLocal != b.MaxSyncLocal || a.FirstClear != b.FirstClear ||
		a.Leaders != b.Leaders || a.HitMaxRounds != b.HitMaxRounds {
		return false
	}
	for i := range a.SyncRound {
		if a.SyncRound[i] != b.SyncRound[i] || a.Activated[i] != b.Activated[i] {
			return false
		}
	}
	return true
}

func TestDeterminism(t *testing.T) {
	r1, err := Run(randomConfig(99, 0))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(randomConfig(99, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(r1, r2) {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", r1, r2)
	}
	r3, err := Run(randomConfig(100, 0))
	if err != nil {
		t.Fatal(err)
	}
	if resultsEqual(r1, r3) {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 7} {
		seq, err := Run(randomConfig(7, 0))
		if err != nil {
			t.Fatal(err)
		}
		conc, err := RunConcurrent(randomConfig(7, workers))
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(seq, conc) {
			t.Fatalf("workers=%d: concurrent result differs from sequential:\n%+v\n%+v",
				workers, seq.Stats, conc.Stats)
		}
	}
}

func TestConcurrentEarlyStop(t *testing.T) {
	cfg := randomConfig(5, 0)
	cfg.RunToMaxRounds = false
	// All nodes sync quickly with F=6, T=2; both engines must agree.
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := randomConfig(5, 0)
	cfg2.RunToMaxRounds = false
	conc, err := RunConcurrent(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(seq, conc) {
		t.Fatalf("early-stop mismatch: %+v vs %+v", seq.Stats, conc.Stats)
	}
}

func TestSchedules(t *testing.T) {
	s := Simultaneous{Count: 3}
	if s.N() != 3 || s.ActivationRound(0) != 1 || s.ActivationRound(2) != 1 {
		t.Fatal("Simultaneous misbehaves")
	}
	s2 := Simultaneous{Count: 2, Round: 5}
	if s2.ActivationRound(1) != 5 {
		t.Fatal("Simultaneous with explicit round misbehaves")
	}
	st := Staggered{Count: 4, Start: 2, Gap: 3}
	if st.ActivationRound(0) != 2 || st.ActivationRound(3) != 11 {
		t.Fatal("Staggered misbehaves")
	}
	st0 := Staggered{Count: 2, Gap: 1}
	if st0.ActivationRound(0) != 1 {
		t.Fatal("Staggered default start should be 1")
	}
	ex := Explicit{Rounds: []uint64{4, 2}}
	if ex.N() != 2 || ex.ActivationRound(1) != 2 {
		t.Fatal("Explicit misbehaves")
	}
	rw := RandomWindow(50, 10, 3)
	if rw.N() != 50 {
		t.Fatal("RandomWindow count wrong")
	}
	for i := 0; i < 50; i++ {
		r := rw.ActivationRound(i)
		if r < 1 || r > 10 {
			t.Fatalf("RandomWindow round %d out of [1..10]", r)
		}
	}
	rw2 := RandomWindow(50, 10, 3)
	for i := 0; i < 50; i++ {
		if rw.ActivationRound(i) != rw2.ActivationRound(i) {
			t.Fatal("RandomWindow not deterministic by seed")
		}
	}
}

func BenchmarkEngineSequential(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(randomConfig(uint64(i), 0)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineConcurrent(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunConcurrent(randomConfig(uint64(i), 4)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWireFidelityDelivery(t *testing.T) {
	// Protocols must survive the codec round-trip; full-stack runs with
	// WireFidelity exercise exactly what fits in a radio slot.
	cfg, agents := scriptConfig(4, 0, [][]Action{
		{tx(2, 42)},
		{listen(2)},
	})
	cfg.MaxRounds = 1
	cfg.WireFidelity = true
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(agents[1].delivered) != 1 || agents[1].delivered[0].TS.UID != 42 {
		t.Fatalf("wire-fidelity delivery = %+v", agents[1].delivered)
	}
}

func TestWireFidelityRejectsUnencodable(t *testing.T) {
	// A message with an invalid kind cannot be serialized; the engine
	// flags the protocol bug loudly.
	bad := Action{Freq: 1, Transmit: true, Msg: msg.Message{Kind: msg.Kind(99)}}
	cfg, _ := scriptConfig(2, 0, [][]Action{
		{bad},
		{listen(1)},
	})
	cfg.MaxRounds = 1
	cfg.WireFidelity = true
	defer func() {
		if recover() == nil {
			t.Fatal("unencodable message not flagged")
		}
	}()
	_, _ = Run(cfg)
}

func TestBurstSchedule(t *testing.T) {
	b := Burst{Groups: 3, GroupSize: 2, Gap: 10}
	if b.N() != 6 {
		t.Fatalf("N = %d", b.N())
	}
	want := []uint64{1, 1, 11, 11, 21, 21}
	for i, w := range want {
		if got := b.ActivationRound(i); got != w {
			t.Fatalf("ActivationRound(%d) = %d, want %d", i, got, w)
		}
	}
	if (Burst{Groups: 1}).ActivationRound(0) != 1 {
		t.Fatal("degenerate burst should activate at round 1")
	}
}
