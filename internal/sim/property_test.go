package sim

import (
	"testing"
	"testing/quick"

	"wsync/internal/freqset"
	"wsync/internal/msg"
	"wsync/internal/rng"
)

// replayAgent plays a fixed per-round action sequence.
type replayAgent struct {
	plan []Action
}

func (a *replayAgent) Step(local uint64) Action {
	idx := int(local-1) % len(a.plan)
	return a.plan[idx]
}
func (a *replayAgent) Deliver(msg.Message) {}
func (a *replayAgent) Output() Output      { return Output{} }

// mediumOracle recomputes delivery semantics independently from the
// engine: node i receives in a round iff it listens on a frequency with
// exactly one transmitter that is not jammed.
func mediumOracle(f int, actions []ActionRecord, disrupted *freqset.Set) map[NodeID]NodeID {
	txCount := make(map[int]int)
	txFrom := make(map[int]NodeID)
	for _, a := range actions {
		if a.Transmit {
			txCount[a.Freq]++
			txFrom[a.Freq] = a.Node
		}
	}
	out := make(map[NodeID]NodeID)
	for _, a := range actions {
		if a.Transmit {
			continue
		}
		if txCount[a.Freq] == 1 && !disrupted.Contains(a.Freq) {
			out[a.Node] = txFrom[a.Freq]
		}
	}
	return out
}

// oracleObserver cross-checks every round against the oracle.
type oracleObserver struct {
	f    int
	fail string
}

func (o *oracleObserver) ObserveRound(rec *RoundRecord) {
	want := mediumOracle(o.f, rec.Actions, rec.Disrupted)
	if len(want) != len(rec.Deliveries) {
		o.fail = "delivery count mismatch"
		return
	}
	for _, d := range rec.Deliveries {
		if from, ok := want[d.To]; !ok || from != d.From {
			o.fail = "delivery endpoint mismatch"
			return
		}
	}
}

// Property: for arbitrary random plans and jamming patterns, the engine's
// deliveries match the independent medium oracle in every round.
func TestQuickMediumSemantics(t *testing.T) {
	prop := func(seed uint64, nRaw, fRaw, tRaw uint8) bool {
		n := int(nRaw%6) + 2
		f := int(fRaw%6) + 2
		tBudget := int(tRaw) % f
		r := rng.New(seed)

		plans := make([][]Action, n)
		for i := range plans {
			plan := make([]Action, 8)
			for j := range plan {
				plan[j] = Action{Freq: r.IntRange(1, f), Transmit: r.Bool()}
				if plan[j].Transmit {
					plan[j].Msg = msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{UID: uint64(i)}}
				}
			}
			plans[i] = plan
		}

		ob := &oracleObserver{f: f}
		cfg := &Config{
			F:    f,
			T:    tBudget,
			Seed: seed,
			NewAgent: func(id NodeID, activation uint64, rr *rng.Rand) Agent {
				return &replayAgent{plan: plans[id]}
			},
			Schedule:       Staggered{Count: n, Gap: 1},
			MaxRounds:      24,
			RunToMaxRounds: true,
			Observers:      []Observer{ob},
		}
		if tBudget > 0 {
			cfg.Adversary = &randomAdv{f: f, t: tBudget, r: rng.New(seed + 1)}
		}
		if _, err := Run(cfg); err != nil {
			return false
		}
		return ob.fail == ""
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// randomAdv is a small inline random jammer for property tests.
type randomAdv struct {
	f, t int
	r    *rng.Rand
	set  *freqset.Set
}

func (a *randomAdv) Disrupt(round uint64, h *History) *freqset.Set {
	if a.set == nil {
		a.set = freqset.New(a.f)
	}
	a.set.Clear()
	for _, idx := range a.r.SampleK(a.f, a.t) {
		a.set.Add(idx + 1)
	}
	return a.set
}

// Property: the concurrent engine matches the sequential engine for random
// configurations (stats and sync rounds), including with weight probing.
func TestQuickConcurrentParity(t *testing.T) {
	prop := func(seed uint64, nRaw, fRaw, workersRaw uint8) bool {
		n := int(nRaw%10) + 2
		f := int(fRaw%6) + 2
		workers := int(workersRaw % 5) // 0 = per-node
		mk := func() *Config {
			return &Config{
				F:    f,
				T:    1,
				Seed: seed,
				NewAgent: func(id NodeID, activation uint64, r *rng.Rand) Agent {
					return &randomAgent{r: r, f: f}
				},
				Schedule:       Staggered{Count: n, Gap: 2},
				Adversary:      &randomAdv{f: f, t: 1, r: rng.New(seed + 9)},
				MaxRounds:      120,
				RunToMaxRounds: true,
				ProbeWeights:   true,
				Workers:        workers,
			}
		}
		seq, err := Run(mk())
		if err != nil {
			return false
		}
		conc, err := RunConcurrent(mk())
		if err != nil {
			return false
		}
		return resultsEqual(seq, conc)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: adversary budgets are respected in every round (the engine
// panics otherwise), and nodes never receive their own transmissions.
func TestQuickNoSelfDelivery(t *testing.T) {
	prop := func(seed uint64) bool {
		bad := false
		ob := funcObs(func(rec *RoundRecord) {
			for _, d := range rec.Deliveries {
				if d.From == d.To {
					bad = true
				}
			}
		})
		cfg := &Config{
			F:    4,
			T:    1,
			Seed: seed,
			NewAgent: func(id NodeID, activation uint64, r *rng.Rand) Agent {
				return &randomAgent{r: r, f: 4}
			},
			Schedule:       Simultaneous{Count: 5},
			Adversary:      &randomAdv{f: 4, t: 1, r: rng.New(seed)},
			MaxRounds:      60,
			RunToMaxRounds: true,
			Observers:      []Observer{ob},
		}
		if _, err := Run(cfg); err != nil {
			return false
		}
		return !bad
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

type funcObs func(rec *RoundRecord)

func (f funcObs) ObserveRound(rec *RoundRecord) { f(rec) }
