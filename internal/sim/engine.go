package sim

import (
	"fmt"
	"sync/atomic"

	"wsync/internal/freqset"
	"wsync/internal/medium"
	"wsync/internal/msg"
	"wsync/internal/rng"
)

// totalNodeRounds accumulates active node-rounds over every completed run
// in this process. It exists for throughput accounting: wexp samples
// TotalNodeRounds around each experiment to derive the node-rounds/s
// figure recorded in the wsync-bench/v1 report.
var totalNodeRounds atomic.Uint64

// TotalNodeRounds returns the process-wide count of active node-rounds
// executed by completed engine runs (sequential and concurrent). The count
// is deterministic for a deterministic workload: it never depends on
// scheduling or parallelism.
func TotalNodeRounds() uint64 { return totalNodeRounds.Load() }

// engine holds the state shared by the sequential and concurrent run modes.
// The two modes differ only in how per-node Step and Deliver calls are
// dispatched; resolution of the medium is identical and order-independent.
type engine struct {
	cfg *Config
	n   int

	agents        []Agent    // nil until activation
	activation    []uint64   // per node
	agentRNG      []rng.Rand // one contiguous slab, pre-split at build
	maxActivation uint64

	// batch groups awake nodes into same-constructor cohorts (BatchAgent);
	// the sequential round loop steps each cohort with one devirtualized
	// StepBatch call and falls back to per-node Step for the rest.
	batch *BatchCohorts

	// Per-node action state in struct-of-arrays layout: the medium
	// resolvers' classification loops touch only the packed frequency and
	// transmit-flag arrays (5 bytes per node instead of a ~100-byte Action
	// with its embedded message), and the message payload is copied only
	// for transmitters — a stale actMsg entry is never read, because
	// delivery resolution consults it only for nodes with actTx set this
	// round.
	actFreq []int32       // per node: this round's frequency choice
	actTx   []bool        // per node: transmitting (vs listening) this round
	actMsg  []msg.Message // per node: payload, valid only for transmitters
	active  []bool        // per node

	// act tracks activation buckets and the sorted awake list; med is the
	// shared frequency-indexed resolver (internal/medium) on its
	// complete-graph fast path. Together they make per-round activation
	// and medium resolution cost O(awake), not O(F + N).
	act *medium.Activation
	med *medium.Resolver

	// pending delivery per node for the current round; pendingList names
	// the nodes with hasPending set, in ascending order.
	pending     []msg.Message
	hasPending  []bool
	pendingList []int

	// per-frequency scratch (index 1..F) used only by the legacy scan
	// resolver, which sweeps all of [1..F] every round; the indexed path
	// keeps its frequency state inside med. Allocated lazily on the first
	// scan round, so the default indexed path pays no O(F) setup memory.
	txCount []int
	txFrom  []NodeID

	emptySet *freqset.Set

	hist History
	rec  RoundRecord
	res  Result

	syncedCount    int
	activatedCount int
}

func newEngine(cfg *Config) (*engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Schedule.N()
	e := &engine{
		cfg:        cfg,
		n:          n,
		agents:     make([]Agent, n),
		activation: make([]uint64, n),
		agentRNG:   make([]rng.Rand, n),
		actFreq:    make([]int32, n),
		actTx:      make([]bool, n),
		actMsg:     make([]msg.Message, n),
		active:     make([]bool, n),
		pending:    make([]msg.Message, n),
		hasPending: make([]bool, n),
		emptySet:   freqset.New(cfg.F),
		batch:      NewBatchCohorts(n, cfg.NoBatch),
	}
	master := rng.New(cfg.Seed)
	for i := 0; i < n; i++ {
		e.activation[i] = cfg.Schedule.ActivationRound(i)
		master.SplitInto(uint64(i), &e.agentRNG[i])
	}
	e.act = medium.NewActivation(e.activation)
	e.maxActivation = e.act.Max()
	e.med = medium.NewResolver(cfg.F, n, nil)
	e.hist = History{
		F:         cfg.F,
		Activated: make([]uint64, n),
		Received:  make([]bool, n),
	}
	e.rec = RoundRecord{
		Disrupted:  e.emptySet,
		Actions:    make([]ActionRecord, 0, n),
		Deliveries: make([]Delivery, 0, n),
		Clear:      make([]int, 0, 4),
		Outputs:    make([]Output, n),
	}
	if cfg.ProbeWeights {
		e.rec.Weights = make([]float64, n)
	}
	e.res = Result{
		SyncRound: make([]uint64, n),
		Activated: make([]uint64, n),
	}
	copy(e.res.Activated, e.activation)
	return e, nil
}

func (e *engine) maxRounds() uint64 {
	if e.cfg.MaxRounds > 0 {
		return e.cfg.MaxRounds
	}
	return DefaultMaxRounds
}

// activateRound brings up any nodes scheduled for round r. It is used by
// the sequential engine; the concurrent engine constructs agents inside
// workers and calls noteActivations instead.
func (e *engine) activateRound(r uint64) {
	for _, i := range e.act.Wake(r) {
		e.active[i] = true
		a := e.cfg.NewAgent(NodeID(i), r, &e.agentRNG[i])
		e.agents[i] = a
		e.batch.Add(i, a)
		e.hist.Activated[i] = r
		e.activatedCount++
	}
}

// noteActivations performs the activation bookkeeping for round r without
// constructing agents or flipping the active flags (RunConcurrent's workers
// do both, in parallel, per owned node).
func (e *engine) noteActivations(r uint64) {
	for _, i := range e.act.Wake(r) {
		e.hist.Activated[i] = r
		e.activatedCount++
	}
}

// resolve applies the medium semantics for round r given e.actions for all
// active nodes, filling e.rec and the pending delivery buffers. disrupted
// is the adversary's validated set. The two implementations are
// bit-identical in every observable (records, stats, delivery order); see
// MediumPath.
func (e *engine) resolve(r uint64, disrupted *freqset.Set) {
	rec := &e.rec
	rec.Round = r
	rec.Disrupted = disrupted
	rec.Actions = rec.Actions[:0]
	rec.Deliveries = rec.Deliveries[:0]
	rec.Clear = rec.Clear[:0]

	// Only nodes on pendingList can have hasPending set, so clearing them
	// is equivalent to the legacy full sweep over all N.
	for _, i := range e.pendingList {
		e.hasPending[i] = false
	}
	e.pendingList = e.pendingList[:0]
	e.res.Stats.NodeRounds += uint64(len(e.act.Active()))

	if e.cfg.Medium == MediumScan {
		e.resolveScan(r, disrupted)
	} else {
		e.resolveIndexed(r, disrupted)
	}

	if e.res.FirstClear != 0 && !e.hist.EverClear {
		e.hist.EverClear = true
		e.hist.FirstClear = e.res.FirstClear
	}
}

// badFreq flags a protocol choosing an out-of-range frequency: a bug in
// the protocol, surfaced loudly.
func (e *engine) badFreq(i int, freq int) {
	panic(fmt.Sprintf("sim: node %d chose frequency %d outside [1..%d]", i, freq, e.cfg.F))
}

// resolveScan is the legacy medium resolver: every round it zeroes and
// classifies all F frequency slots and walks all N schedule slots twice.
// It is kept verbatim as the differential-testing oracle for the indexed
// path.
func (e *engine) resolveScan(r uint64, disrupted *freqset.Set) {
	rec := &e.rec
	if e.txCount == nil {
		e.txCount = make([]int, e.cfg.F+1)
		e.txFrom = make([]NodeID, e.cfg.F+1)
	}
	for f := 1; f <= e.cfg.F; f++ {
		e.txCount[f] = 0
	}
	for i := 0; i < e.n; i++ {
		if !e.active[i] {
			continue
		}
		f, tx := int(e.actFreq[i]), e.actTx[i]
		if f < 1 || f > e.cfg.F {
			e.badFreq(i, f)
		}
		rec.Actions = append(rec.Actions, ActionRecord{Node: NodeID(i), Freq: f, Transmit: tx})
		if tx {
			e.txCount[f]++
			e.txFrom[f] = NodeID(i)
			e.res.Stats.Transmissions++
		}
	}

	// Classify frequencies and queue deliveries.
	for f := 1; f <= e.cfg.F; f++ {
		switch {
		case e.txCount[f] == 0:
		case e.txCount[f] >= 2:
			e.res.Stats.Collisions++
		case disrupted.Contains(f):
			e.res.Stats.DisruptedLosses++
		default:
			rec.Clear = append(rec.Clear, f)
			e.res.Stats.ClearBroadcasts++
			if e.res.FirstClear == 0 {
				e.res.FirstClear = r
			}
		}
	}

	// Queue deliveries to listeners on clear single-transmitter channels.
	for i := 0; i < e.n; i++ {
		if !e.active[i] || e.actTx[i] {
			continue
		}
		f := int(e.actFreq[i])
		if e.txCount[f] == 1 && !disrupted.Contains(f) {
			e.queueDelivery(i, f, e.txFrom[f])
		}
	}
}

// resolveIndexed is the frequency-indexed fast path: one pass over the
// awake nodes feeds the shared resolver (internal/medium) on its
// complete-graph path, then only the frequencies actually touched this
// round are classified and re-zeroed. Per-round cost is
// O(active · log active) (the log is the touched-frequency sort that
// preserves the scan path's ascending Clear order) — independent of F
// and N.
func (e *engine) resolveIndexed(r uint64, disrupted *freqset.Set) {
	rec := &e.rec
	med := e.med
	for _, i := range e.act.Active() {
		f, tx := int(e.actFreq[i]), e.actTx[i]
		if f < 1 || f > e.cfg.F {
			e.badFreq(i, f)
		}
		rec.Actions = append(rec.Actions, ActionRecord{Node: NodeID(i), Freq: f, Transmit: tx})
		if tx {
			med.Transmit(i, f)
			e.res.Stats.Transmissions++
		} else {
			med.Listen(i)
		}
	}

	// Classify the touched frequencies in ascending order, matching the
	// scan path's [1..F] sweep bit for bit. The branch-free classify
	// appends clear frequencies to rec.Clear (which is [:0] at entry).
	var nCol, nJam int
	rec.Clear, nCol, nJam = med.ClassifyTouched(disrupted, rec.Clear)
	e.res.Stats.Collisions += uint64(nCol)
	e.res.Stats.DisruptedLosses += uint64(nJam)
	e.res.Stats.ClearBroadcasts += uint64(len(rec.Clear))
	if e.res.FirstClear == 0 && len(rec.Clear) > 0 {
		e.res.FirstClear = r
	}

	// Queue deliveries to listeners on clear single-transmitter channels;
	// listeners were collected in ascending node order.
	for _, i := range med.Listeners() {
		f := int(e.actFreq[i])
		if med.Count(f) == 1 && !disrupted.Contains(f) {
			e.queueDelivery(i, f, NodeID(med.From(f)))
		}
	}

	med.Reset()
}

// queueDelivery records the successful reception of frequency f's lone
// transmission (by node from) at listener i.
func (e *engine) queueDelivery(i int, f int, from NodeID) {
	e.pending[i] = e.deliverable(from)
	e.hasPending[i] = true
	e.pendingList = append(e.pendingList, i)
	e.hist.Received[i] = true
	e.rec.Deliveries = append(e.rec.Deliveries, Delivery{From: from, To: NodeID(i), Freq: f})
	e.res.Stats.Deliveries++
}

// deliverable returns the message node `from` transmitted this round,
// optionally forced through the wire codec.
func (e *engine) deliverable(from NodeID) msg.Message {
	m := e.actMsg[from]
	if !e.cfg.WireFidelity {
		return m
	}
	data, err := msg.Encode(m)
	if err != nil {
		panic(fmt.Sprintf("sim: node %d transmitted unencodable message: %v", from, err))
	}
	decoded, err := msg.Decode(data)
	if err != nil {
		panic(fmt.Sprintf("sim: wire round-trip failed for node %d: %v", from, err))
	}
	return decoded
}

// recordOutputs stores post-round outputs and updates sync bookkeeping.
// Inactive nodes' entries stay the zero Output they were allocated with
// (nodes never deactivate), so only awake nodes need visiting.
func (e *engine) recordOutputs(r uint64) {
	for _, i := range e.act.Active() {
		out := e.agents[i].Output()
		e.rec.Outputs[i] = out
		if out.Synced && e.res.SyncRound[i] == 0 {
			e.res.SyncRound[i] = r
			e.syncedCount++
		}
	}
}

// finishRound validates the adversary's set, runs observers, and reports
// whether the run should stop after round r.
func (e *engine) observeAndCheckStop(r uint64) bool {
	e.res.Stats.Rounds = r
	e.hist.Completed = r
	e.hist.Last = &e.rec
	for _, ob := range e.cfg.Observers {
		ob.ObserveRound(&e.rec)
	}
	if e.cfg.StopWhen != nil && e.cfg.StopWhen(&e.hist) {
		return true
	}
	if e.cfg.RunToMaxRounds {
		return false
	}
	return r >= e.maxActivation && e.syncedCount == e.n
}

// probeWeight records node i's pre-Step broadcast probability when weight
// probing is enabled.
func (e *engine) probeWeight(i int) {
	if e.rec.Weights == nil {
		return
	}
	e.rec.Weights[i] = 0
	if bp, ok := e.agents[i].(BroadcastProber); ok {
		e.rec.Weights[i] = bp.BroadcastProb()
	}
}

// disruptedSet obtains and validates the adversary's choice for round r.
func (e *engine) disruptedSet(r uint64) *freqset.Set {
	if e.cfg.Adversary == nil {
		return e.emptySet
	}
	s := e.cfg.Adversary.Disrupt(r, &e.hist)
	if s == nil {
		return e.emptySet
	}
	if s.Len() > e.cfg.T {
		panic(fmt.Sprintf("sim: adversary disrupted %d frequencies, budget is %d", s.Len(), e.cfg.T))
	}
	return s
}

// finalize fills the summary fields of the result.
func (e *engine) finalize(hitMax bool) *Result {
	e.res.HitMaxRounds = hitMax
	e.res.AllSynced = e.syncedCount == e.n && e.activatedCount == e.n
	for i := 0; i < e.n; i++ {
		if e.res.SyncRound[i] != 0 {
			local := e.res.SyncRound[i] - e.activation[i] + 1
			if local > e.res.MaxSyncLocal {
				e.res.MaxSyncLocal = local
			}
		}
	}
	for i := 0; i < e.n; i++ {
		if lr, ok := e.agents[i].(LeaderReporter); ok && lr.IsLeader() {
			e.res.Leaders++
		}
	}
	totalNodeRounds.Add(e.res.Stats.NodeRounds)
	return &e.res
}

// stepAgent advances node i for global round r and stores its choice in
// the struct-of-arrays action state. The message payload is copied only
// for transmitters; listeners' stale entries are never read.
func (e *engine) stepAgent(i int, r uint64) {
	a := e.agents[i].Step(r - e.activation[i] + 1)
	e.actFreq[i] = int32(a.Freq)
	e.actTx[i] = a.Transmit
	if a.Transmit {
		e.actMsg[i] = a.Msg
	}
}

// runRound executes one sequential round end to end — activation, the
// adversary, agent steps, medium resolution, deliveries, and output
// bookkeeping — and reports whether the run should stop. After warm-up
// (all nodes awake, every reused buffer at its high-water capacity) a
// round performs zero heap allocations; TestSteadyStateAllocs pins this.
func (e *engine) runRound(r uint64) (stop bool) {
	e.activateRound(r)
	disrupted := e.disruptedSet(r)
	if e.rec.Weights != nil {
		for _, i := range e.act.Active() {
			e.probeWeight(i)
		}
	}
	e.batch.StepBatches(r, e.activation, e.actFreq, e.actTx, e.actMsg)
	for _, i := range e.batch.Solo() {
		e.stepAgent(i, r)
	}
	e.resolve(r, disrupted)
	for _, i := range e.pendingList {
		e.agents[i].Deliver(e.pending[i])
	}
	e.recordOutputs(r)
	return e.observeAndCheckStop(r)
}

// Run executes the simulation sequentially and returns its result. It
// returns an error only for invalid configurations; model violations by
// protocols or adversaries (out-of-range frequencies, over-budget
// disruption) panic, as they are programming errors.
func Run(cfg *Config) (*Result, error) {
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	limit := e.maxRounds()
	for r := uint64(1); r <= limit; r++ {
		if e.runRound(r) {
			return e.finalize(false), nil
		}
	}
	return e.finalize(true), nil
}
