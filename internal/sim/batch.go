package sim

import "wsync/internal/msg"

// BatchAgent is optionally implemented by agents that can advance a whole
// cohort of same-constructor instances in one call, writing directly into
// the engine's struct-of-arrays action state. The engine groups awake nodes
// into cohorts by the Cohort key at activation and calls StepBatch once per
// cohort per round instead of making one virtual Step call (plus an Action
// copy) per node.
//
// Implementations must be observationally identical to calling Step on each
// cohort member in ascending id order: same frequency and transmit choices,
// same message payloads for transmitters, and — critically — the same
// per-node rng draws. The engines' differential tests
// (TestBatchStepMatchesPerNode) pin this byte for byte.
type BatchAgent interface {
	Agent
	// Cohort returns the key that decides which agents batch together: two
	// agents advance in the same StepBatch call iff their Cohort values
	// compare equal as interfaces. Returning nil opts the agent out of
	// batching (it is stepped through the per-node fallback). Arena-built
	// agents return their arena pointer, so one cohort is exactly one slab.
	Cohort() any
	// StepBatch advances every node in ids (ascending) for its local round
	// locals[j], storing node ids[j]'s choice at actFreq[ids[j]] and
	// actTx[ids[j]], and writing actMsg[ids[j]] only when it transmits —
	// stale message entries are never read by the resolver.
	StepBatch(ids []int, locals []uint64, actFreq []int32, actTx []bool, actMsg []msg.Message)
}

// batchCohort is one group of agents that advance together. rep is any
// member; StepBatch is dispatched through it.
type batchCohort struct {
	key    any
	rep    BatchAgent
	ids    []int
	locals []uint64
}

// BatchCohorts maintains the cohort grouping for one engine run. Cohort
// membership is static — nodes never deactivate and never change cohort —
// so the grouping is computed incrementally at activation and each member
// list is kept sorted, preserving the per-node step order inside a cohort.
// Nodes whose agent does not batch (or that opted out) land on the solo
// list, also sorted, and are stepped through the per-node fallback.
//
// It is shared by the single-hop and multihop engines; both use it only on
// their sequential paths (RunConcurrent steps per node inside workers).
type BatchCohorts struct {
	n       int
	disable bool
	cohorts []batchCohort
	solo    []int
}

// NewBatchCohorts returns an empty grouping over n nodes. With disable set,
// every node lands on the solo list — the Config.NoBatch escape hatch and
// the per-node leg of the differential tests.
func NewBatchCohorts(n int, disable bool) *BatchCohorts {
	return &BatchCohorts{n: n, disable: disable, solo: make([]int, 0, n)}
}

// Add routes newly activated node i, with agent a, to its cohort (creating
// one for an unseen key) or to the solo list. Call it once per node, at
// activation.
func (b *BatchCohorts) Add(i int, a Agent) {
	if !b.disable {
		if ba, ok := a.(BatchAgent); ok {
			if key := ba.Cohort(); key != nil {
				for ci := range b.cohorts {
					c := &b.cohorts[ci]
					if c.key == key {
						c.ids = insertSorted(c.ids, i)
						c.locals = append(c.locals, 0)
						return
					}
				}
				b.cohorts = append(b.cohorts, batchCohort{
					key:    key,
					rep:    ba,
					ids:    append(make([]int, 0, b.n), i),
					locals: make([]uint64, 1, b.n),
				})
				return
			}
		}
	}
	b.solo = insertSorted(b.solo, i)
}

// StepBatches advances every cohort for global round r: one StepBatch call
// per cohort, with per-member local rounds derived from activation.
func (b *BatchCohorts) StepBatches(r uint64, activation []uint64, actFreq []int32, actTx []bool, actMsg []msg.Message) {
	for ci := range b.cohorts {
		c := &b.cohorts[ci]
		for j, id := range c.ids {
			c.locals[j] = r - activation[id] + 1
		}
		c.rep.StepBatch(c.ids, c.locals, actFreq, actTx, actMsg)
	}
}

// Solo returns the nodes outside every cohort, ascending. The engine steps
// them per node after the batched cohorts.
func (b *BatchCohorts) Solo() []int { return b.solo }

// insertSorted inserts x into ascending slice s. Schedules overwhelmingly
// wake nodes in index order, so the append fast path covers almost every
// call; the shift handles explicit schedules that wake a low index late.
func insertSorted(s []int, x int) []int {
	if n := len(s); n == 0 || s[n-1] < x {
		return append(s, x)
	}
	s = append(s, x)
	j := len(s) - 1
	for j > 0 && s[j-1] > x {
		s[j] = s[j-1]
		j--
	}
	s[j] = x
	return s
}
