package sim

import "sync"

// phase identifies the two barrier-separated parts of a round executed by
// worker goroutines.
type phase int

const (
	phaseStep phase = iota + 1
	phaseDeliver
)

type workerCmd struct {
	phase phase
	round uint64
}

// RunConcurrent executes the simulation with node agents distributed over
// worker goroutines (cfg.Workers of them; 0 means one per node, the
// goroutine-per-agent mapping). The execution is deterministic and produces
// exactly the same Result as Run for the same Config: agents only ever
// touch per-node state, and medium resolution happens on the coordinating
// goroutine between two barriers.
//
// cfg.NewAgent may be invoked from worker goroutines, concurrently for
// distinct node IDs.
func RunConcurrent(cfg *Config) (*Result, error) {
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 || workers > e.n {
		workers = e.n
	}

	outScratch := make([]Output, e.n)
	cmds := make([]chan workerCmd, workers)
	done := make(chan struct{}, workers)
	var wg sync.WaitGroup

	runWorker := func(w int, cmdC chan workerCmd) {
		defer wg.Done()
		// Worker w owns nodes i with i % workers == w. All slices are
		// indexed per node, so writes are disjoint across workers; the
		// channel operations order them against the coordinator's reads.
		for cmd := range cmdC {
			switch cmd.phase {
			case phaseStep:
				for i := w; i < e.n; i += workers {
					if !e.active[i] {
						if e.activation[i] != cmd.round {
							continue
						}
						e.active[i] = true
						e.agents[i] = e.cfg.NewAgent(NodeID(i), cmd.round, &e.agentRNG[i])
					}
					e.probeWeight(i)
					e.stepAgent(i, cmd.round)
				}
			case phaseDeliver:
				for i := w; i < e.n; i += workers {
					if !e.active[i] {
						continue
					}
					if e.hasPending[i] {
						e.agents[i].Deliver(e.pending[i])
					}
					outScratch[i] = e.agents[i].Output()
				}
			}
			done <- struct{}{}
		}
	}

	for w := 0; w < workers; w++ {
		cmds[w] = make(chan workerCmd)
		wg.Add(1)
		go runWorker(w, cmds[w])
	}
	stopWorkers := func() {
		for _, c := range cmds {
			close(c)
		}
		wg.Wait()
	}
	defer stopWorkers()

	barrier := func(cmd workerCmd) {
		for _, c := range cmds {
			c <- cmd
		}
		for range cmds {
			<-done
		}
	}

	limit := e.maxRounds()
	for r := uint64(1); r <= limit; r++ {
		// Activation bookkeeping happens here so the adversary's history
		// view and the resolver's active list are current; agent
		// construction and the active flags happen in workers.
		e.noteActivations(r)
		disrupted := e.disruptedSet(r)
		barrier(workerCmd{phase: phaseStep, round: r})
		e.resolve(r, disrupted)
		barrier(workerCmd{phase: phaseDeliver, round: r})
		for _, i := range e.act.Active() {
			out := outScratch[i]
			e.rec.Outputs[i] = out
			if out.Synced && e.res.SyncRound[i] == 0 {
				e.res.SyncRound[i] = r
				e.syncedCount++
			}
		}
		if e.observeAndCheckStop(r) {
			return e.finalize(false), nil
		}
	}
	return e.finalize(true), nil
}
