package sim

import "wsync/internal/rng"

// Simultaneous activates Count nodes in the same round (Round; 0 means
// round 1). This is the "good execution" pattern the Good Samaritan
// protocol is optimistic about, and the weak-adversary pattern of the
// Theorem 1 lower bound.
type Simultaneous struct {
	Count int
	Round uint64
}

var _ Schedule = Simultaneous{}

// N returns the node count.
func (s Simultaneous) N() int { return s.Count }

// ActivationRound returns the common activation round.
func (s Simultaneous) ActivationRound(int) uint64 {
	if s.Round == 0 {
		return 1
	}
	return s.Round
}

// Staggered activates node i in round Start + i*Gap, modeling devices that
// come together in an ad hoc manner at a fixed rate.
type Staggered struct {
	Count int
	Start uint64
	Gap   uint64
}

var _ Schedule = Staggered{}

// N returns the node count.
func (s Staggered) N() int { return s.Count }

// ActivationRound returns Start + i*Gap (Start 0 means 1).
func (s Staggered) ActivationRound(i int) uint64 {
	start := s.Start
	if start == 0 {
		start = 1
	}
	return start + uint64(i)*s.Gap
}

// Explicit activates node i at Rounds[i].
type Explicit struct {
	Rounds []uint64
}

var _ Schedule = Explicit{}

// N returns the node count.
func (s Explicit) N() int { return len(s.Rounds) }

// ActivationRound returns the configured round for node i.
func (s Explicit) ActivationRound(i int) uint64 { return s.Rounds[i] }

// RandomWindow returns a schedule that activates n nodes at rounds drawn
// independently and uniformly from [1..window], determined by seed. It
// models uncoordinated ad hoc arrival.
func RandomWindow(n int, window uint64, seed uint64) Explicit {
	r := rng.New(seed)
	rounds := make([]uint64, n)
	for i := range rounds {
		rounds[i] = 1 + r.Uint64()%window
	}
	return Explicit{Rounds: rounds}
}

// Burst activates nodes in groups: Groups bursts of GroupSize nodes, the
// bursts separated by Gap rounds. It models fleets of devices switched on
// together (a conference room, a pallet of sensors) joining an existing
// network — the arrival pattern that maximizes instantaneous contention.
type Burst struct {
	Groups    int
	GroupSize int
	Gap       uint64
}

var _ Schedule = Burst{}

// N returns Groups × GroupSize.
func (b Burst) N() int { return b.Groups * b.GroupSize }

// ActivationRound places node i in burst i / GroupSize.
func (b Burst) ActivationRound(i int) uint64 {
	if b.GroupSize <= 0 {
		return 1
	}
	return 1 + uint64(i/b.GroupSize)*b.Gap
}
