// Package sim implements the disrupted radio network model of Section 2 of
// the paper as a discrete-event, round-synchronous simulator.
//
// The model: time divides into rounds. In each round every active node
// selects one of F frequencies and either transmits or listens. An
// interference adversary disrupts up to t < F frequencies per round,
// choosing based only on the protocol and the execution through the
// previous round. A listener on frequency f receives a message iff exactly
// one node transmitted on f and f is not disrupted; there is no collision
// detection, and transmitters learn nothing about the outcome of their
// transmission. Nodes are activated at schedule-determined rounds and run
// local round counters starting at activation.
//
// The package provides two engines over the same Config: Run executes nodes
// sequentially in one goroutine; RunConcurrent gives every node agent its
// own goroutine synchronized by round barriers. Both are deterministic
// given the same Config and produce identical Results, which a test
// verifies; the concurrent engine exists because node agents map naturally
// onto goroutines and it parallelizes expensive per-node work.
//
// Orthogonally to the engine choice, Config.Medium selects how the shared
// medium is resolved each round. The default frequency-indexed path —
// activation buckets, the sorted awake list, and per-frequency indexing
// shared with the multi-hop engine through internal/medium, used here on
// its complete-graph fast path — buckets broadcasters and listeners by
// frequency using only the awake nodes, so a round costs O(active)
// independent of F and N: the property that makes the -full sweep grids
// (N up to 16384, F up to 128) tractable. The legacy full-scan resolver
// (MediumScan) survives as a differential-testing oracle;
// TestMediumDifferential proves the two paths bit-identical in every
// observable over randomized schedules.
package sim
