package sim

import (
	"testing"

	"wsync/internal/freqset"
	"wsync/internal/msg"
	"wsync/internal/rng"
)

// alloc_test.go pins the tentpole property of the engine's hot path: a
// steady-state round — after every node has activated and every reusable
// buffer has grown to its working size — performs zero heap allocations.
// The test is white-box (package sim) because the unit under test is
// engine.runRound, not the public Run wrapper; it cannot use package
// adversary (which imports sim), so it carries a local random jammer
// mirroring adversary.Random.

// allocJammer is adversary.Random re-implemented without the import
// cycle: a fresh uniform t-subset per round, drawn allocation-free via
// rng.SampleKInto into a reused scratch buffer.
type allocJammer struct {
	f, t    int
	r       *rng.Rand
	set     *freqset.Set
	scratch []int
}

func (a *allocJammer) Disrupt(uint64, *History) *freqset.Set {
	a.set.Clear()
	a.scratch = a.r.SampleKInto(a.f, a.t, a.scratch)
	for _, idx := range a.scratch {
		a.set.Add(idx + 1)
	}
	return a.set
}

// steadyAgent transmits with probability 1/2 on a random frequency and
// never syncs, so a driven round exercises the step, resolve, deliver,
// and output-recording paths indefinitely. Its message carries no slices
// — payload-bearing protocols own their buffers; the engine's obligation
// is only to not allocate on its own account.
type steadyAgent struct {
	r     *rng.Rand
	f     int
	heard uint64
	arena *steadyArena
}

func (a *steadyAgent) step(local uint64, m *msg.Message) (int32, bool) {
	f := int32(a.r.IntRange(1, a.f))
	if a.r.Bool() {
		*m = msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{Age: local}}
		return f, true
	}
	return f, false
}

func (a *steadyAgent) Step(local uint64) Action {
	var act Action
	f, tx := a.step(local, &act.Msg)
	act.Freq, act.Transmit = int(f), tx
	return act
}

func (a *steadyAgent) Deliver(msg.Message) { a.heard++ }
func (a *steadyAgent) Output() Output      { return Output{} }

func (a *steadyAgent) Cohort() any {
	if a.arena == nil || a.arena.solo {
		return nil
	}
	return a.arena
}

func (a *steadyAgent) StepBatch(ids []int, locals []uint64, actFreq []int32, actTx []bool, actMsg []msg.Message) {
	nodes := a.arena.nodes
	for j, id := range ids {
		f, tx := nodes[id].step(locals[j], &actMsg[id])
		actFreq[id] = f
		actTx[id] = tx
	}
}

// steadyArena mirrors the protocol arenas: slab construction with no
// per-activation allocation. With solo set, its agents opt out of batching
// (Cohort() nil) so the per-node fallback's activation path is pinned too.
type steadyArena struct {
	f     int
	solo  bool
	nodes []steadyAgent
}

func (a *steadyArena) NewAgent(id NodeID, activation uint64, r *rng.Rand) Agent {
	nd := &a.nodes[id]
	*nd = steadyAgent{r: r, f: a.f, arena: a}
	return nd
}

// allocSchedule activates node i in round s[i].
type allocSchedule []uint64

func (s allocSchedule) N() int                       { return len(s) }
func (s allocSchedule) ActivationRound(i int) uint64 { return s[i] }

// allocCompleteGraph is an explicit complete graph: semantically the same
// medium as the resolver's nil-graph fast path, but forcing graph-mode
// resolution, so swapping between it and nil exercises SetGraph without
// changing any result.
type allocCompleteGraph struct {
	adj [][]int
}

func newAllocCompleteGraph(n int) *allocCompleteGraph {
	g := &allocCompleteGraph{adj: make([][]int, n)}
	for i := range g.adj {
		for j := 0; j < n; j++ {
			if j != i {
				g.adj[i] = append(g.adj[i], j)
			}
		}
	}
	return g
}

func (g *allocCompleteGraph) N() int                { return len(g.adj) }
func (g *allocCompleteGraph) Neighbors(i int) []int { return g.adj[i] }

// TestSteadyStateAllocs drives the single-hop round loop past warm-up on
// both medium paths and requires exactly zero allocations per round. The
// churned variant additionally swaps the resolver's graph every round
// (complete graph in, nil back out) — the single-hop half of the
// dynamic-topology contract: per-round SetGraph swaps on a live engine
// are allocation-free once warm.
func TestSteadyStateAllocs(t *testing.T) {
	for _, path := range []struct {
		name  string
		m     MediumPath
		churn bool
	}{{name: "indexed", m: MediumIndexed}, {name: "scan", m: MediumScan},
		{name: "churned", m: MediumIndexed, churn: true}} {
		t.Run(path.name, func(t *testing.T) {
			const f, jam, n = 16, 4, 64
			cfg := &Config{
				F:    f,
				T:    jam,
				Seed: 7,
				NewAgent: func(id NodeID, activation uint64, r *rng.Rand) Agent {
					return &steadyAgent{r: r, f: f}
				},
				Adversary: &allocJammer{
					f: f, t: jam, r: rng.New(99), set: freqset.New(f),
					scratch: make([]int, 0, jam),
				},
				RunToMaxRounds: true,
				Medium:         path.m,
			}
			cfg.Schedule = Simultaneous{Count: n}
			e, err := newEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Warm-up: activate everyone and let every growable buffer
			// (active list, touched/listener/pending lists, the round
			// record) reach its working capacity.
			var complete *allocCompleteGraph
			if path.churn {
				complete = newAllocCompleteGraph(n)
			}
			r := uint64(0)
			for ; r < 64; r++ {
				if path.churn {
					if r%2 == 0 {
						e.med.SetGraph(complete)
					} else {
						e.med.SetGraph(nil)
					}
				}
				e.runRound(r + 1)
			}
			allocs := testing.AllocsPerRun(100, func() {
				r++
				if path.churn {
					if r%2 == 0 {
						e.med.SetGraph(complete)
					} else {
						e.med.SetGraph(nil)
					}
				}
				e.runRound(r)
			})
			if allocs != 0 {
				t.Fatalf("steady-state round allocates %.1f objects, want 0", allocs)
			}
		})
	}
}

// TestActivationRoundAllocs extends the zero-alloc contract to activation
// rounds: with arena-built agents (rng states pre-split into the engine's
// slab, construction into arena slots), a round that wakes new nodes
// allocates nothing either. Warm-up activates the bulk of the population;
// four stragglers then activate inside the measured window, exercising
// Wake, arena construction, and cohort insertion (batch variant) or the
// sorted solo list (solo variant) under AllocsPerRun.
func TestActivationRoundAllocs(t *testing.T) {
	const f, jam, n = 16, 4, 64
	for _, tc := range []struct {
		name string
		solo bool
	}{{name: "batch"}, {name: "solo", solo: true}} {
		t.Run(tc.name, func(t *testing.T) {
			sched := make(allocSchedule, n)
			for i := range sched {
				sched[i] = 1
			}
			// Stragglers activate at rounds 72..102, inside the window.
			sched[n-4], sched[n-3], sched[n-2], sched[n-1] = 72, 82, 92, 102
			arena := &steadyArena{f: f, solo: tc.solo, nodes: make([]steadyAgent, n)}
			cfg := &Config{
				F:        f,
				T:        jam,
				Seed:     7,
				NewAgent: arena.NewAgent,
				Adversary: &allocJammer{
					f: f, t: jam, r: rng.New(99), set: freqset.New(f),
					scratch: make([]int, 0, jam),
				},
				RunToMaxRounds: true,
				Schedule:       sched,
			}
			e, err := newEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := uint64(0)
			for ; r < 64; r++ {
				e.runRound(r + 1)
			}
			allocs := testing.AllocsPerRun(100, func() {
				r++
				e.runRound(r)
			})
			if allocs != 0 {
				t.Fatalf("activation-inclusive round allocates %.1f objects, want 0", allocs)
			}
			if e.activatedCount != n {
				t.Fatalf("only %d of %d nodes activated; the window missed the stragglers", e.activatedCount, n)
			}
		})
	}
}
