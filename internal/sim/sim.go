package sim

import (
	"errors"
	"fmt"

	"wsync/internal/freqset"
	"wsync/internal/msg"
	"wsync/internal/rng"
)

// NodeID identifies a node; IDs are dense indices 0..N-1.
type NodeID int

// Action is a node's choice for one round: a frequency in [1..F] and
// whether to transmit (with the given message) or listen.
type Action struct {
	Freq     int
	Transmit bool
	Msg      msg.Message
}

// Output is a node's per-round output in N⊥ (Section 3, Validity): either
// ⊥ (Synced == false) or a round number.
type Output struct {
	Value  uint64
	Synced bool
}

// Agent is one node's protocol instance. The engine calls Step exactly once
// per round while the node is active, then Deliver at most once (only if
// the node listened and a message arrived), then Output.
//
// Agents are driven by a single goroutine at a time and need no internal
// locking.
type Agent interface {
	// Step returns the node's action for its local round (1-based; local
	// round 1 is the activation round).
	Step(localRound uint64) Action
	// Deliver hands the node a received message. The message is a value
	// copy; retaining slices requires Clone.
	Deliver(m msg.Message)
	// Output returns the node's current output (called after delivery).
	Output() Output
}

// BroadcastProber is optionally implemented by agents that can report the
// probability with which their next Step would transmit. The broadcast
// weight monitor (Lemma 9 experiments) uses it.
type BroadcastProber interface {
	BroadcastProb() float64
}

// LeaderReporter is optionally implemented by agents that can report
// whether they became a leader; experiment harnesses use it to verify
// leader uniqueness.
type LeaderReporter interface {
	IsLeader() bool
}

// Schedule determines when each node is activated. Implementations must be
// deterministic: the engine queries them once at startup.
type Schedule interface {
	// N returns the number of nodes that will ever be activated.
	N() int
	// ActivationRound returns the 1-based global round in which node i is
	// activated.
	ActivationRound(i int) uint64
}

// Adversary chooses the disrupted frequencies each round. Disrupt is called
// once per round, before node actions are resolved, and may consult the
// execution history through the previous round. The returned set must
// contain at most the configured t frequencies; the engine validates this.
//
// The returned set is owned by the adversary and read by the engine during
// the round only.
type Adversary interface {
	Disrupt(round uint64, hist *History) *freqset.Set
}

// RoundRecord describes one completed round. Records handed to observers
// and adversaries are only valid during the call; the engine reuses their
// backing storage.
type RoundRecord struct {
	Round     uint64
	Disrupted *freqset.Set
	// Actions lists the choices of all nodes active this round.
	Actions []ActionRecord
	// Deliveries lists successful receptions.
	Deliveries []Delivery
	// Clear lists frequencies on which exactly one node transmitted and
	// which were not disrupted — the "clear broadcast" event whose first
	// occurrence the Theorem 1 lower bound reasons about.
	Clear []int
	// Outputs holds the post-round output of every node (indexed by
	// NodeID); inactive nodes report ⊥.
	Outputs []Output
	// Weights holds each node's pre-Step broadcast probability when
	// Config.ProbeWeights is set and the agent implements BroadcastProber;
	// nil otherwise. The paper's broadcast weight W(r) is the sum over
	// active nodes (Definition 7).
	Weights []float64
}

// ActionRecord is one node's recorded action.
type ActionRecord struct {
	Node     NodeID
	Freq     int
	Transmit bool
}

// Delivery is one successful message reception.
type Delivery struct {
	From NodeID
	To   NodeID
	Freq int
}

// History is the execution record available to adaptive adversaries and to
// stop conditions. It holds the last completed round's record plus
// cumulative per-node information, which matches what the adversaries in
// this repository need without retaining the full execution.
type History struct {
	// F is the number of frequencies.
	F int
	// Completed is the number of completed rounds.
	Completed uint64
	// Last is the record of the most recently completed round; nil before
	// the first round completes.
	Last *RoundRecord
	// Activated[i] is node i's activation round (0 if not yet active).
	Activated []uint64
	// Received[i] reports whether node i has ever received a message.
	Received []bool
	// EverClear reports whether any clear broadcast has occurred.
	EverClear bool
	// FirstClear is the round of the first clear broadcast (0 if none).
	FirstClear uint64
}

// Observer is notified after every round. Observers run on the engine
// goroutine; the record is valid only during the call.
type Observer interface {
	ObserveRound(rec *RoundRecord)
}

// Stats aggregates medium-level counters over a run.
type Stats struct {
	Rounds          uint64 // rounds executed
	NodeRounds      uint64 // active node-rounds executed (Σ over rounds of awake nodes)
	Transmissions   uint64 // node-round transmissions
	Collisions      uint64 // (round, freq) pairs with >= 2 transmitters
	DisruptedLosses uint64 // single-transmitter (round, freq) pairs lost to disruption
	Deliveries      uint64 // successful receptions (listener count)
	ClearBroadcasts uint64 // (round, freq) pairs with a clear broadcast
}

// Result is the outcome of one simulation run.
type Result struct {
	Stats Stats
	// AllSynced reports whether every activated node committed an output.
	AllSynced bool
	// SyncRound[i] is the global round in which node i first produced a
	// non-⊥ output, or 0 if it never did.
	SyncRound []uint64
	// Activated[i] is node i's activation round.
	Activated []uint64
	// MaxSyncLocal is the maximum over nodes of (SyncRound - activation
	// round + 1): the paper's notion of a node's synchronization time. It
	// is 0 when no node synchronized and counts only synchronized nodes.
	MaxSyncLocal uint64
	// FirstClear is the global round of the first clear broadcast, 0 if
	// none occurred.
	FirstClear uint64
	// Leaders is the number of agents reporting IsLeader at the end.
	Leaders int
	// HitMaxRounds reports that the run stopped at the round limit.
	HitMaxRounds bool
}

// SyncLocal returns node i's synchronization time in local rounds, or 0 if
// it never synchronized.
func (r *Result) SyncLocal(i int) uint64 {
	if r.SyncRound[i] == 0 {
		return 0
	}
	return r.SyncRound[i] - r.Activated[i] + 1
}

// MediumPath selects the implementation the engine uses to resolve the
// shared medium each round. Both paths implement the identical Section 2
// semantics and produce bit-identical Results, RoundRecords, and Stats for
// any Config (TestMediumDifferential asserts this over randomized
// schedules); they differ only in cost.
type MediumPath int

const (
	// MediumIndexed is the default frequency-indexed fast path: each round
	// it buckets broadcasters and listeners by frequency using only the
	// nodes that are actually awake, so per-round resolution work is
	// O(active) instead of O(F + N). This is what makes the -full sweep
	// grids (N up to 16384, F up to 128) tractable.
	MediumIndexed MediumPath = iota
	// MediumScan is the legacy resolver: a full scan over all F
	// frequencies and all N schedule slots every round. It is retained as
	// the differential-testing oracle for MediumIndexed and as the
	// baseline of the BenchmarkEngineThroughput regression metric.
	MediumScan
)

// Config describes one simulation.
type Config struct {
	// F is the number of frequencies (>= 1).
	F int
	// T is the adversary's per-round disruption budget (0 <= T < F).
	T int
	// Seed seeds all randomness; identical configs with identical seeds
	// yield identical executions.
	Seed uint64
	// NewAgent constructs node i's protocol instance. The provided Rand is
	// the node's private stream.
	NewAgent func(id NodeID, activation uint64, r *rng.Rand) Agent
	// Schedule determines activation times.
	Schedule Schedule
	// Adversary picks disrupted frequencies; nil means no disruption.
	Adversary Adversary
	// MaxRounds bounds the run; 0 means DefaultMaxRounds.
	MaxRounds uint64
	// Observers are notified after each round.
	Observers []Observer
	// StopWhen, if non-nil, is evaluated after each round and stops the
	// run when it returns true. It is checked in addition to the default
	// all-synced stop rule.
	StopWhen func(h *History) bool
	// RunToMaxRounds disables the default stop rule (all nodes activated
	// and synchronized); use with StopWhen or MaxRounds for experiments
	// that measure events other than synchronization.
	RunToMaxRounds bool
	// ProbeWeights asks the engine to record each agent's BroadcastProb
	// before stepping it, exposing the paper's broadcast weight W(r) to
	// observers via RoundRecord.Weights.
	ProbeWeights bool
	// WireFidelity makes every delivered message round-trip through the
	// binary codec (msg.Encode/msg.Decode), guaranteeing that protocols
	// depend only on what actually fits in a radio slot. Encoding failures
	// panic: a protocol emitting unencodable messages is a bug.
	WireFidelity bool
	// Workers sets the number of worker goroutines used by RunConcurrent;
	// 0 means one goroutine per node.
	Workers int
	// Medium selects the medium-resolution path; the zero value is the
	// frequency-indexed fast path. MediumScan forces the legacy O(F + N)
	// scan, which exists as a differential-testing oracle.
	Medium MediumPath
	// NoBatch disables cohort batch-stepping (BatchAgent), forcing every
	// agent through the per-node Step fallback. Results are bit-identical
	// either way (TestBatchStepMatchesPerNode pins this); the flag exists
	// as the differential-testing oracle and for dispatch-cost benchmarks.
	NoBatch bool
}

// DefaultMaxRounds bounds runs whose Config leaves MaxRounds zero.
const DefaultMaxRounds = 1 << 22

// Validate checks the configuration, returning an error describing the
// first problem found.
func (c *Config) Validate() error {
	switch {
	case c.F < 1:
		return fmt.Errorf("sim: F = %d, need F >= 1", c.F)
	case c.T < 0 || c.T >= c.F:
		return fmt.Errorf("sim: T = %d, need 0 <= T < F = %d", c.T, c.F)
	case c.NewAgent == nil:
		return errors.New("sim: NewAgent is required")
	case c.Schedule == nil:
		return errors.New("sim: Schedule is required")
	case c.Schedule.N() < 1:
		return errors.New("sim: schedule activates no nodes")
	}
	for i := 0; i < c.Schedule.N(); i++ {
		if c.Schedule.ActivationRound(i) < 1 {
			return fmt.Errorf("sim: node %d has activation round %d, need >= 1",
				i, c.Schedule.ActivationRound(i))
		}
	}
	return nil
}
