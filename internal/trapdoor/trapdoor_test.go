package trapdoor

import (
	"math"
	"testing"

	"wsync/internal/adversary"
	"wsync/internal/core"
	"wsync/internal/msg"
	"wsync/internal/props"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{N: 8, F: 0, T: 0},
		{N: 8, F: 4, T: -1},
		{N: 8, F: 4, T: 4},
		{N: 8, F: 4, T: 1, LeaderTxProb: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
	good := Params{N: 8, F: 4, T: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestFPrime(t *testing.T) {
	cases := []struct{ f, t, want int }{
		{8, 2, 4}, // 2t < F
		{8, 6, 8}, // 2t > F
		{8, 4, 8}, // 2t == F
		{8, 0, 1}, // no disruption: one channel suffices
		{1, 0, 1},
	}
	for _, c := range cases {
		p := Params{N: 8, F: c.f, T: c.t}
		if got := p.FPrime(); got != c.want {
			t.Errorf("FPrime(F=%d, T=%d) = %d, want %d", c.f, c.t, got, c.want)
		}
	}
}

// TestScheduleMatchesFigure1 verifies the generated epoch table against the
// structure printed in Figure 1 of the paper: lgN epochs, the first lgN−1
// of length Θ(F'/(F'−t)·logN) with probabilities 1/N, 2/N, ..., 1/4, and a
// final epoch of length Θ(F'²/(F'−t)·logN) with probability 1/2.
func TestScheduleMatchesFigure1(t *testing.T) {
	p := Params{N: 16, F: 8, T: 2, CEpoch: 4, CFinal: 4}
	rows := p.Schedule()
	lg := p.LgN()
	if lg != 4 || len(rows) != 4 {
		t.Fatalf("lgN = %d, rows = %d, want 4", lg, len(rows))
	}
	// Probabilities: 2^e/(2N) = 1/16, 2/16, 4/16, 8/16.
	wantProb := []float64{1.0 / 16, 2.0 / 16, 4.0 / 16, 8.0 / 16}
	for i, row := range rows {
		if math.Abs(row.Prob-wantProb[i]) > 1e-12 {
			t.Errorf("epoch %d prob = %v, want %v", row.Epoch, row.Prob, wantProb[i])
		}
	}
	if rows[lg-1].Prob != 0.5 {
		t.Errorf("final epoch prob = %v, want 0.5", rows[lg-1].Prob)
	}
	// Lengths: F'=4, F'−t=2 → regular 4·2·4 = 32, final 4·8·4 = 128.
	for i := 0; i < lg-1; i++ {
		if rows[i].Length != 32 {
			t.Errorf("epoch %d length = %d, want 32", rows[i].Epoch, rows[i].Length)
		}
	}
	if rows[lg-1].Length != 128 {
		t.Errorf("final epoch length = %d, want 128", rows[lg-1].Length)
	}
	if got, want := p.TotalRounds(), uint64(3*32+128); got != want {
		t.Errorf("TotalRounds = %d, want %d", got, want)
	}
}

func TestBroadcastProbClamps(t *testing.T) {
	p := Params{N: 16, F: 8, T: 2}
	if p.BroadcastProb(0) != p.BroadcastProb(1) {
		t.Error("epoch below 1 not clamped")
	}
	if p.BroadcastProb(99) != 0.5 {
		t.Errorf("epoch above lgN = %v, want 0.5", p.BroadcastProb(99))
	}
}

func TestNDefaultsToPowerOfTwo(t *testing.T) {
	p := Params{N: 20, F: 4, T: 1}.withDefaults()
	if p.N != 32 {
		t.Fatalf("N = %d, want 32", p.N)
	}
	p2 := Params{N: 0, F: 4, T: 1}.withDefaults()
	if p2.N != 2 {
		t.Fatalf("N = %d, want 2 (minimum)", p2.N)
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(Params{N: 8, F: 0}, rng.New(1)); err == nil {
		t.Fatal("New accepted invalid params")
	}
}

func TestKnockoutRule(t *testing.T) {
	p := Params{N: 8, F: 4, T: 1}
	n := MustNew(p, rng.New(1))
	n.Step(5) // age 5
	// Smaller timestamp: no knockout.
	n.Deliver(msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{Age: 3, UID: 1}})
	if n.Role() != core.RoleContender {
		t.Fatal("knocked out by smaller timestamp")
	}
	// Equal age, smaller uid: no knockout.
	n.Deliver(msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{Age: 5, UID: 0}})
	if n.Role() != core.RoleContender {
		t.Fatal("knocked out by smaller uid")
	}
	// Larger timestamp: knockout.
	n.Deliver(msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{Age: 9, UID: 1}})
	if n.Role() != core.RoleKnockedOut {
		t.Fatal("not knocked out by larger timestamp")
	}
	// Knocked-out nodes only listen.
	for i := 0; i < 50; i++ {
		if a := n.Step(uint64(6 + i)); a.Transmit {
			t.Fatal("knocked-out node transmitted")
		}
	}
	if n.BroadcastProb() != 0 {
		t.Fatal("knocked-out node reports nonzero weight")
	}
}

func TestAdoptLeaderNumbering(t *testing.T) {
	p := Params{N: 8, F: 4, T: 1}
	n := MustNew(p, rng.New(1))
	n.Step(1)
	if out := n.Output(); out.Synced {
		t.Fatal("synced before hearing a leader")
	}
	n.Deliver(msg.Message{Kind: msg.KindLeader, TS: msg.Timestamp{Age: 50, UID: 9}, Round: 1234, Scheme: 9})
	out := n.Output()
	if !out.Synced || out.Value != 1234 {
		t.Fatalf("output = %+v, want synced 1234", out)
	}
	// Next round increments.
	n.Step(2)
	if got := n.Output().Value; got != 1235 {
		t.Fatalf("next round output = %d, want 1235", got)
	}
	// Synced nodes listen only.
	for i := 0; i < 50; i++ {
		if a := n.Step(uint64(3 + i)); a.Transmit {
			t.Fatal("synced node transmitted")
		}
	}
}

func TestContenderBecomesLeaderAlone(t *testing.T) {
	p := Params{N: 4, F: 4, T: 1}
	n := MustNew(p, rng.New(7))
	total := p.TotalRounds()
	for r := uint64(1); r <= total+1; r++ {
		n.Step(r)
	}
	if !n.IsLeader() {
		t.Fatalf("lone contender not leader after %d rounds", total+1)
	}
	out := n.Output()
	if !out.Synced {
		t.Fatal("leader not synced")
	}
	// Leader outputs its age as the round number.
	if out.Value != total+1 {
		t.Fatalf("leader output = %d, want %d", out.Value, total+1)
	}
	if n.BroadcastProb() != 0.5 {
		t.Fatalf("leader BroadcastProb = %v, want 0.5", n.BroadcastProb())
	}
}

func TestLeaderDefersToOlderLeader(t *testing.T) {
	p := Params{N: 4, F: 4, T: 1}
	n := MustNew(p, rng.New(7))
	total := p.TotalRounds()
	for r := uint64(1); r <= total+1; r++ {
		n.Step(r)
	}
	if !n.IsLeader() {
		t.Fatal("setup: node must be leader")
	}
	// A younger leader's message is ignored.
	n.Deliver(msg.Message{Kind: msg.KindLeader, TS: msg.Timestamp{Age: 1, UID: 0}, Round: 77, Scheme: 5})
	if !n.IsLeader() {
		t.Fatal("leader deferred to younger leader")
	}
	// An older leader's message wins.
	n.Deliver(msg.Message{Kind: msg.KindLeader, TS: msg.Timestamp{Age: 1 << 40, UID: 0}, Round: 77, Scheme: 5})
	if n.IsLeader() {
		t.Fatal("leader did not defer to older leader")
	}
	if got := n.Output().Value; got != 77 {
		t.Fatalf("output = %d, want 77 after deferring", got)
	}
}

// runConfig builds a simulation of the protocol.
func runConfig(p Params, sched sim.Schedule, adv sim.Adversary, seed uint64, maxRounds uint64) *sim.Config {
	return &sim.Config{
		F:    p.F,
		T:    p.T,
		Seed: seed,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return MustNew(p, r)
		},
		Schedule:  sched,
		Adversary: adv,
		MaxRounds: maxRounds,
	}
}

func TestTwoNodesSync(t *testing.T) {
	p := Params{N: 4, F: 4, T: 1}
	cfg := runConfig(p, sim.Simultaneous{Count: 2}, adversary.NewPrefix(4, 1), 3, 20000)
	check := props.NewChecker(2)
	cfg.Observers = []sim.Observer{check}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSynced {
		t.Fatalf("nodes did not sync: %+v", res)
	}
	if !check.OK() {
		t.Fatalf("property violations: %v", check.Violations())
	}
	if res.Leaders != 1 {
		t.Fatalf("leaders = %d, want 1", res.Leaders)
	}
}

func TestManyNodesSyncUnderJamming(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	p := Params{N: 64, F: 8, T: 3}
	for seed := uint64(0); seed < 5; seed++ {
		cfg := runConfig(p, sim.Simultaneous{Count: 16}, adversary.NewPrefix(8, 3), seed, 200000)
		check := props.NewChecker(16)
		cfg.Observers = []sim.Observer{check}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllSynced {
			t.Fatalf("seed %d: not all synced (rounds=%d)", seed, res.Stats.Rounds)
		}
		if !check.OK() {
			t.Fatalf("seed %d: violations: %v", seed, check.Violations())
		}
		if res.Leaders != 1 {
			t.Fatalf("seed %d: leaders = %d", seed, res.Leaders)
		}
	}
}

func TestStaggeredActivationOldestWins(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	p := Params{N: 32, F: 6, T: 2}
	wins := 0
	const trials = 5
	for seed := uint64(0); seed < trials; seed++ {
		var first *Node
		cfg := &sim.Config{
			F:    p.F,
			T:    p.T,
			Seed: seed,
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				n := MustNew(p, r)
				if id == 0 {
					first = n
				}
				return n
			},
			Schedule:  sim.Staggered{Count: 8, Gap: 40},
			Adversary: adversary.NewRandom(p.F, p.T, seed+1000),
			MaxRounds: 400000,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllSynced {
			t.Fatalf("seed %d: not synced", seed)
		}
		if first.IsLeader() {
			wins++
		}
	}
	// The earliest-activated node has the largest timestamp and should
	// essentially always win.
	if wins < trials-1 {
		t.Fatalf("first node won only %d/%d times", wins, trials)
	}
}

func TestRandomWindowActivationProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	p := Params{N: 32, F: 6, T: 2}
	cfg := runConfig(p, sim.RandomWindow(12, 300, 5), adversary.NewSweep(6, 2, 1), 11, 400000)
	check := props.NewChecker(12)
	cfg.Observers = []sim.Observer{check}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSynced || !check.OK() || res.Leaders != 1 {
		t.Fatalf("res=%+v violations=%v", res, check.Violations())
	}
}

func TestRuntimeWithinTheoryEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	// MaxSyncLocal should be within a modest constant of the Theorem 10
	// bound: F/(F−t)·lg²N + Ft/(F−t)·lgN.
	p := Params{N: 64, F: 8, T: 2}
	lg := float64(p.LgN())
	f, tt := float64(p.F), float64(p.T)
	theory := f/(f-tt)*lg*lg + f*tt/(f-tt)*lg
	worst := uint64(0)
	for seed := uint64(0); seed < 5; seed++ {
		cfg := runConfig(p, sim.Simultaneous{Count: 8}, adversary.NewPrefix(8, 2), seed, 1000000)
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllSynced {
			t.Fatalf("seed %d: not synced", seed)
		}
		if res.MaxSyncLocal > worst {
			worst = res.MaxSyncLocal
		}
	}
	if float64(worst) > 60*theory {
		t.Fatalf("sync took %d rounds, theory envelope %f", worst, theory)
	}
}

func TestCommitThresholdDelaysOutput(t *testing.T) {
	p := Params{N: 8, F: 4, T: 1, FaultTolerant: true, CommitThreshold: 3}
	n := MustNew(p, rng.New(2))
	n.Step(1)
	lead := msg.Message{Kind: msg.KindLeader, TS: msg.Timestamp{Age: 90, UID: 4}, Round: 500, Scheme: 4}
	n.Deliver(lead)
	if n.Output().Synced {
		t.Fatal("committed after 1 message with threshold 3")
	}
	n.Step(2)
	lead.Round = 501
	n.Deliver(lead)
	if n.Output().Synced {
		t.Fatal("committed after 2 messages with threshold 3")
	}
	n.Step(3)
	lead.Round = 502
	n.Deliver(lead)
	out := n.Output()
	if !out.Synced || out.Value != 502 {
		t.Fatalf("output = %+v, want synced 502", out)
	}
}

func TestFaultTolerantRestart(t *testing.T) {
	p := Params{N: 4, F: 4, T: 1, FaultTolerant: true, LeaderTimeout: 10}
	n := MustNew(p, rng.New(3))
	n.Step(1)
	n.Deliver(msg.Message{Kind: msg.KindLeader, TS: msg.Timestamp{Age: 90, UID: 4}, Round: 500, Scheme: 4})
	if !n.Output().Synced {
		t.Fatal("did not commit")
	}
	// Silence for more than LeaderTimeout rounds forces a restart.
	for r := uint64(2); r <= 14; r++ {
		n.Step(r)
	}
	if n.Role() != core.RoleContender {
		t.Fatalf("role = %v, want contender after leader silence", n.Role())
	}
	if n.Restarts() != 1 {
		t.Fatalf("Restarts = %d, want 1", n.Restarts())
	}
	// Output survives the restart (Synch Commit) and keeps incrementing.
	if out := n.Output(); !out.Synced || out.Value != 513 {
		t.Fatalf("output = %+v, want synced 513", out)
	}
}

func TestFaultTolerantLeaderContinuesNumbering(t *testing.T) {
	p := Params{N: 2, F: 4, T: 1, FaultTolerant: true, LeaderTimeout: 10}
	n := MustNew(p, rng.New(4))
	n.Step(1)
	n.Deliver(msg.Message{Kind: msg.KindLeader, TS: msg.Timestamp{Age: 90, UID: 4}, Round: 500, Scheme: 4})
	// Force restart, then run the node alone until it becomes leader.
	r := uint64(2)
	for ; n.Role() != core.RoleLeader; r++ {
		n.Step(r)
		if r > 1_000_000 {
			t.Fatal("node never became leader")
		}
	}
	// The new leader must continue the adopted numbering: output value is
	// 500 + (r-1) - 1 rounds elapsed since adoption at round 1.
	want := 500 + (r - 1) - 1
	if got := n.Output().Value; got != want {
		t.Fatalf("restarted leader output = %d, want %d (continuing old scheme)", got, want)
	}
}

func TestConcurrentEngineRunsTrapdoor(t *testing.T) {
	p := Params{N: 16, F: 6, T: 2}
	mk := func() *sim.Config {
		return runConfig(p, sim.Simultaneous{Count: 6}, adversary.NewPrefix(6, 2), 21, 100000)
	}
	seq, err := sim.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	conc, err := sim.RunConcurrent(mk())
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats != conc.Stats || seq.MaxSyncLocal != conc.MaxSyncLocal {
		t.Fatalf("engines disagree: %+v vs %+v", seq.Stats, conc.Stats)
	}
}

// TestBurstArrival synchronizes under burst activation: two waves of
// contenders joining 200 rounds apart, the worst instantaneous-contention
// pattern.
func TestBurstArrival(t *testing.T) {
	p := Params{N: 32, F: 8, T: 2}
	cfg := runConfig(p, sim.Burst{Groups: 2, GroupSize: 4, Gap: 200},
		adversary.NewPrefix(8, 2), 23, 400000)
	check := props.NewChecker(8)
	cfg.Observers = []sim.Observer{check}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSynced || !check.OK() || res.Leaders != 1 {
		t.Fatalf("burst arrival failed: synced=%v violations=%d leaders=%d",
			res.AllSynced, check.Count(), res.Leaders)
	}
}
