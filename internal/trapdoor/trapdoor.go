package trapdoor

import (
	"fmt"

	"wsync/internal/core"
	"wsync/internal/freqdist"
	"wsync/internal/msg"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

// Params configures the Trapdoor Protocol. The zero value is not valid;
// use at least N and F, and call Validate (done by New) to catch mistakes.
type Params struct {
	// N is the known upper bound on the number of participants (>= 2; it
	// is rounded up to a power of two, as the paper assumes).
	N int
	// F is the number of frequencies and T the adversary's disruption
	// budget (0 <= T < F).
	F int
	T int

	// CEpoch scales the regular epoch length ℓE = CEpoch·⌈F'/(F'−T)⌉·lgN;
	// 0 means DefaultCEpoch. The paper leaves the Θ-constant open.
	CEpoch int
	// CFinal scales the final epoch length ℓE+ = CFinal·⌈F'²/(F'−T)⌉·lgN;
	// 0 means DefaultCFinal.
	CFinal int
	// LeaderTxProb is the leader's per-round announcement probability;
	// 0 means 1/2 (the paper's value).
	LeaderTxProb float64

	// FaultTolerant enables the Section 8 crash-tolerance extension.
	FaultTolerant bool
	// LeaderTimeout is the number of local rounds without hearing the
	// leader after which a fault-tolerant node restarts the competition;
	// 0 means the paper's Ω(F'²/(F'−t)·logN) default.
	LeaderTimeout uint64
	// CommitThreshold is the number of leader messages a fault-tolerant
	// node must hear before committing its output; 0 means 1 (commit on
	// first message), the paper's non-fault-tolerant behavior.
	CommitThreshold int

	// AblationNoKnockout disables the trapdoor knockout rule. With it set,
	// every surviving contender becomes a leader, demonstrating why the
	// competition is what makes Agreement hold (experiment X4).
	AblationNoKnockout bool
}

// Defaults for the Θ-constants. They are tuned so that agreement holds with
// high probability across the experiment grid in EXPERIMENTS.md; the final
// epoch in particular needs enough rounds for the eventual winner to knock
// out every runner-up even when only F'−t = 1 channel is usable.
const (
	DefaultCEpoch = 6
	DefaultCFinal = 6
)

// withDefaults returns p with zero fields replaced by defaults.
func (p Params) withDefaults() Params {
	if p.CEpoch == 0 {
		p.CEpoch = DefaultCEpoch
	}
	if p.CFinal == 0 {
		p.CFinal = DefaultCFinal
	}
	if p.LeaderTxProb == 0 {
		p.LeaderTxProb = 0.5
	}
	if p.CommitThreshold == 0 {
		p.CommitThreshold = 1
	}
	if p.N < 2 {
		p.N = 2
	}
	p.N = freqdist.NextPow2(p.N)
	if p.FaultTolerant && p.LeaderTimeout == 0 {
		fp := p.FPrime()
		p.LeaderTimeout = 8 * uint64(ceilDiv(fp*fp, fp-p.T)) * uint64(p.LgN())
	}
	return p
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.F < 1 {
		return fmt.Errorf("trapdoor: F = %d, need >= 1", p.F)
	}
	if p.T < 0 || p.T >= p.F {
		return fmt.Errorf("trapdoor: T = %d, need 0 <= T < F = %d", p.T, p.F)
	}
	if p.LeaderTxProb < 0 || p.LeaderTxProb > 1 {
		return fmt.Errorf("trapdoor: LeaderTxProb = %v out of [0,1]", p.LeaderTxProb)
	}
	return nil
}

// FPrime returns F' = min(F, 2T), clamped to at least 1 (T = 0 would
// otherwise make it zero; one frequency suffices when nothing is jammed).
func (p Params) FPrime() int {
	fp := 2 * p.T
	if fp > p.F {
		fp = p.F
	}
	if fp < 1 {
		fp = 1
	}
	return fp
}

// LgN returns the number of epochs, lg of the (power-of-two) participant
// bound, at least 1.
func (p Params) LgN() int {
	n := freqdist.NextPow2(p.N)
	lg := freqdist.CeilLog2(n)
	if lg < 1 {
		lg = 1
	}
	return lg
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// EpochLen returns ℓE, the length of epochs 1..lgN−1 (Figure 1).
func (p Params) EpochLen() uint64 {
	q := p.withDefaults()
	fp := q.FPrime()
	return uint64(q.CEpoch) * uint64(ceilDiv(fp, fp-q.T)) * uint64(q.LgN())
}

// FinalEpochLen returns ℓE+, the length of the last epoch (Figure 1).
func (p Params) FinalEpochLen() uint64 {
	q := p.withDefaults()
	fp := q.FPrime()
	return uint64(q.CFinal) * uint64(ceilDiv(fp*fp, fp-q.T)) * uint64(q.LgN())
}

// BroadcastProb returns the contender broadcast probability for epoch e
// (1-based): 2^e/(2N), which is 1/N, 2/N, ..., 1/4, 1/2 as in Figure 1.
func (p Params) BroadcastProb(e int) float64 {
	q := p.withDefaults()
	lg := q.LgN()
	if e < 1 {
		e = 1
	}
	if e > lg {
		e = lg
	}
	return float64(uint64(1)<<uint(e)) / (2 * float64(q.N))
}

// EffectiveLeaderTimeout returns the leader-silence timeout after defaults
// are applied (meaningful in fault-tolerant mode).
func (p Params) EffectiveLeaderTimeout() uint64 {
	return p.withDefaults().LeaderTimeout
}

// TotalRounds returns the competition's worst-case length: the sum of all
// epoch lengths. Theorem 10's bound is this plus the leader's announcement
// time.
func (p Params) TotalRounds() uint64 {
	lg := p.LgN()
	return uint64(lg-1)*p.EpochLen() + p.FinalEpochLen()
}

// ScheduleRow describes one epoch for schedule tables (Figure 1).
type ScheduleRow struct {
	Epoch  int
	Length uint64
	Prob   float64
}

// Schedule returns the full epoch table, reproducing Figure 1.
func (p Params) Schedule() []ScheduleRow {
	lg := p.LgN()
	rows := make([]ScheduleRow, lg)
	for e := 1; e <= lg; e++ {
		length := p.EpochLen()
		if e == lg {
			length = p.FinalEpochLen()
		}
		rows[e-1] = ScheduleRow{Epoch: e, Length: length, Prob: p.BroadcastProb(e)}
	}
	return rows
}

// Node is one Trapdoor Protocol participant. It implements sim.Agent,
// sim.BroadcastProber and sim.LeaderReporter. Nodes are not safe for
// concurrent use; the engine drives each from one goroutine at a time.
type Node struct {
	p    Params
	r    *rng.Rand
	dist freqdist.Uniform // uniform over [1..F']

	uid  uint64
	age  uint64
	role core.Role
	out  core.OutputState

	epoch      int
	epochRound uint64

	scheme       uint64
	leaderHeard  int    // leader messages received (for CommitThreshold)
	lastLeader   uint64 // local round when a leader was last heard
	everRestarts int

	// arena is non-nil for arena-built nodes and doubles as the batch
	// cohort key: one slab, one cohort.
	arena *Arena
}

var (
	_ sim.Agent           = (*Node)(nil)
	_ sim.BatchAgent      = (*Node)(nil)
	_ sim.BroadcastProber = (*Node)(nil)
	_ sim.LeaderReporter  = (*Node)(nil)
)

// New returns a fresh contender. It returns an error for invalid
// parameters.
func New(p Params, r *rng.Rand) (*Node, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	return &Node{
		p:          p,
		r:          r,
		dist:       freqdist.NewUniform(1, p.FPrime()),
		uid:        core.NewUID(r, p.N),
		role:       core.RoleContender,
		epoch:      1,
		epochRound: 0,
	}, nil
}

// MustNew is New for callers with static parameters; it panics on error.
func MustNew(p Params, r *rng.Rand) *Node {
	n, err := New(p, r)
	if err != nil {
		panic(err)
	}
	return n
}

// Arena pools Node construction for one engine run: count slots laid out in
// one contiguous slab, with parameters validated and defaulted once. Its
// NewAgent matches sim.Config.NewAgent and draws exactly what New draws from
// the node's rng stream, so arena-built runs are bit-identical to
// MustNew-built runs; slot i is only ever touched by node i, so the arena is
// safe under RunConcurrent's disjoint node ownership. Arena-built nodes form
// one batch cohort (the arena pointer is the cohort key).
type Arena struct {
	p     Params
	nodes []Node
}

// NewArena returns an arena with count slots for parameters p. It returns
// an error for invalid parameters.
func NewArena(p Params, count int) (*Arena, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Arena{p: p.withDefaults(), nodes: make([]Node, count)}, nil
}

// MustNewArena is NewArena for callers with static parameters.
func MustNewArena(p Params, count int) *Arena {
	a, err := NewArena(p, count)
	if err != nil {
		panic(err)
	}
	return a
}

// NewAgent constructs node id in its arena slot; it has the signature of
// sim.Config.NewAgent and performs no allocation.
func (a *Arena) NewAgent(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
	nd := &a.nodes[id]
	*nd = Node{
		p:     a.p,
		r:     r,
		dist:  freqdist.NewUniform(1, a.p.FPrime()),
		uid:   core.NewUID(r, a.p.N),
		role:  core.RoleContender,
		epoch: 1,
		arena: a,
	}
	return nd
}

// UID returns the node's identifier (visible for tests and tools).
func (n *Node) UID() uint64 { return n.uid }

// Scheme returns the adopted numbering scheme's identifier (the deciding
// leader's UID); meaningful once the node is synced.
func (n *Node) Scheme() uint64 { return n.scheme }

// Role returns the node's current role.
func (n *Node) Role() core.Role { return n.role }

// Restarts returns how many times the fault-tolerant extension restarted
// the competition on this node.
func (n *Node) Restarts() int { return n.everRestarts }

// IsLeader reports whether the node won the competition.
func (n *Node) IsLeader() bool { return n.role == core.RoleLeader }

// timestamp returns the node's current timestamp (ra, uid).
func (n *Node) timestamp() msg.Timestamp {
	return msg.Timestamp{Age: n.age, UID: n.uid}
}

// epochLen returns the length of epoch e.
func (n *Node) epochLen(e int) uint64 {
	if e == n.p.LgN() {
		return n.p.FinalEpochLen()
	}
	return n.p.EpochLen()
}

// BroadcastProb reports the probability that the upcoming Step transmits.
func (n *Node) BroadcastProb() float64 {
	switch n.role {
	case core.RoleContender:
		e := n.epoch
		if n.epochRound >= n.epochLen(e) && e < n.p.LgN() {
			e++
		}
		return n.p.BroadcastProb(e)
	case core.RoleLeader:
		return n.p.LeaderTxProb
	default:
		return 0
	}
}

// restart re-enters the competition after a leader timeout (fault-tolerant
// mode only). The output state is preserved: a node that committed keeps
// counting rounds in the old numbering, and will re-announce that numbering
// if it wins.
func (n *Node) restart() {
	n.role = core.RoleContender
	n.epoch = 1
	n.epochRound = 0
	n.leaderHeard = 0
	n.lastLeader = n.age
	n.everRestarts++
}

// Step implements sim.Agent. It is a thin wrapper over the packed step —
// the single implementation both dispatch paths share, which is what makes
// batch and per-node stepping byte-identical by construction.
func (n *Node) Step(local uint64) sim.Action {
	var a sim.Action
	f, tx := n.step(local, &a.Msg)
	a.Freq, a.Transmit = int(f), tx
	return a
}

// Cohort implements sim.BatchAgent: arena-built nodes batch per arena;
// directly constructed nodes opt out.
func (n *Node) Cohort() any {
	if n.arena == nil {
		return nil
	}
	return n.arena
}

// StepBatch implements sim.BatchAgent: one devirtualized loop over the
// cohort's slab, writing straight into the engine's action arrays. Message
// payloads are written only for transmitters.
func (n *Node) StepBatch(ids []int, locals []uint64, actFreq []int32, actTx []bool, actMsg []msg.Message) {
	nodes := n.arena.nodes
	for j, id := range ids {
		f, tx := nodes[id].step(locals[j], &actMsg[id])
		actFreq[id] = f
		actTx[id] = tx
	}
}

// step advances the node one local round, writing the outgoing message via
// m only when it transmits.
func (n *Node) step(local uint64, m *msg.Message) (freq int32, transmit bool) {
	n.age = local
	n.out.Tick()

	if n.p.FaultTolerant && (n.role == core.RoleSynced || n.role == core.RoleKnockedOut) {
		if n.age-n.lastLeader > n.p.LeaderTimeout {
			n.restart()
		}
	}

	switch n.role {
	case core.RoleContender:
		// Advance epochs; surviving the last one wins the competition.
		for n.epochRound >= n.epochLen(n.epoch) {
			n.epochRound -= n.epochLen(n.epoch)
			n.epoch++
			if n.epoch > n.p.LgN() {
				n.becomeLeader()
				return n.leaderStep(m)
			}
		}
		n.epochRound++
		f := int32(n.dist.Sample(n.r))
		if n.r.Bernoulli(n.p.BroadcastProb(n.epoch)) {
			*m = msg.Message{Kind: msg.KindContender, TS: n.timestamp()}
			return f, true
		}
		return f, false

	case core.RoleLeader:
		return n.leaderStep(m)

	default: // knocked out, synced: listen on a random competition channel
		return int32(n.dist.Sample(n.r)), false
	}
}

// becomeLeader promotes the node: it decides the numbering scheme. If it
// already adopted a numbering (fault-tolerant restart), it continues that
// scheme rather than inventing a new one.
func (n *Node) becomeLeader() {
	n.role = core.RoleLeader
	if !n.out.Synced() {
		n.scheme = n.uid
		n.out.Adopt(n.age)
	}
}

// leaderStep announces the numbering with probability LeaderTxProb.
func (n *Node) leaderStep(m *msg.Message) (freq int32, transmit bool) {
	f := int32(n.dist.Sample(n.r))
	if n.r.Bernoulli(n.p.LeaderTxProb) {
		*m = msg.Message{
			Kind:   msg.KindLeader,
			TS:     n.timestamp(),
			Round:  n.out.Value(),
			Scheme: n.scheme,
		}
		return f, true
	}
	return f, false
}

// Deliver implements sim.Agent.
func (n *Node) Deliver(m msg.Message) {
	switch m.Kind {
	case msg.KindLeader:
		n.deliverLeader(m)
	case msg.KindContender:
		if n.p.AblationNoKnockout {
			return
		}
		if n.role == core.RoleContender && n.timestamp().Less(m.TS) {
			n.role = core.RoleKnockedOut
			n.lastLeader = n.age // start the leader-silence clock
		}
	default:
		// Samaritan/data messages do not occur in pure Trapdoor runs.
	}
}

// deliverLeader adopts a leader's numbering, honoring the commit threshold
// in fault-tolerant mode. A leader hearing a larger-timestamped leader
// defers to it (a corner the analysis makes unlikely, but the
// implementation must resolve deterministically).
func (n *Node) deliverLeader(m msg.Message) {
	if n.role == core.RoleLeader {
		if !n.timestamp().Less(m.TS) {
			return
		}
		// Defer to the older leader.
	}
	n.lastLeader = n.age
	n.leaderHeard++
	n.role = core.RoleSynced
	n.scheme = m.Scheme
	if n.leaderHeard >= n.p.CommitThreshold || n.out.Synced() {
		n.out.Adopt(m.Round)
	}
}

// Output implements sim.Agent.
func (n *Node) Output() sim.Output {
	if !n.out.Synced() {
		return sim.Output{}
	}
	return sim.Output{Value: n.out.Value(), Synced: true}
}
