package trapdoor

import (
	"fmt"
	"testing"

	"wsync/internal/adversary"
	"wsync/internal/props"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

// TestSoakGrid runs the Trapdoor Protocol across a grid of system sizes,
// jamming levels, activation patterns and adversaries, asserting all five
// problem properties and leader uniqueness on every combination. This is
// the repository's broadest correctness net; it is skipped under -short.
func TestSoakGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("soak grid")
	}
	type grid struct {
		nBound, active, f, tJam int
		sched                   string
		adv                     string
	}
	var cases []grid
	for _, size := range []struct{ nBound, active int }{{16, 4}, {64, 12}, {256, 24}} {
		for _, band := range []struct{ f, tJam int }{{4, 1}, {8, 3}, {8, 7}, {16, 8}} {
			for _, sched := range []string{"simultaneous", "staggered"} {
				for _, adv := range []string{"fixed", "random", "sweep"} {
					cases = append(cases, grid{size.nBound, size.active, band.f, band.tJam, sched, adv})
				}
			}
		}
	}
	// Liveness (AllSynced) is a probability-1 property: hard assertion.
	// Agreement and leader uniqueness hold "with high probability" (error
	// ~1/N per run), so the grid gets a failure budget of three times the
	// expected failure count instead of a per-point hard assertion.
	expectedFailures := 0.0
	for _, c := range cases {
		expectedFailures += 1 / float64(c.nBound)
	}
	budget := int(3*expectedFailures) + 1

	type outcome struct {
		name string
		bad  bool
	}
	results := make([]outcome, len(cases))
	for i, c := range cases {
		i, c := i, c
		name := fmt.Sprintf("N%d_n%d_F%d_t%d_%s_%s", c.nBound, c.active, c.f, c.tJam, c.sched, c.adv)
		results[i].name = name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := Params{N: c.nBound, F: c.f, T: c.tJam}
			var sched sim.Schedule = sim.Simultaneous{Count: c.active}
			if c.sched == "staggered" {
				sched = sim.Staggered{Count: c.active, Gap: 17}
			}
			adv, err := adversary.New(c.adv, c.f, c.tJam, uint64(i))
			if err != nil {
				t.Fatal(err)
			}
			check := props.NewChecker(c.active)
			cfg := &sim.Config{
				F:    c.f,
				T:    c.tJam,
				Seed: uint64(1000 + i),
				NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
					return MustNew(p, r)
				},
				Schedule:  sched,
				Adversary: adv,
				MaxRounds: 1 << 22,
				Observers: []sim.Observer{check},
			}
			res, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllSynced {
				t.Fatalf("not synced after %d rounds (liveness is probability 1)", res.Stats.Rounds)
			}
			if !check.Live() {
				t.Fatal("liveness check failed")
			}
			if !check.OK() || res.Leaders != 1 {
				results[i].bad = true
				t.Logf("w.h.p. failure: leaders=%d violations=%d", res.Leaders, check.Count())
			}
		})
	}
	t.Cleanup(func() {
		failures := 0
		for _, r := range results {
			if r.bad {
				failures++
				t.Logf("grid failure at %s", r.name)
			}
		}
		if failures > budget {
			t.Errorf("%d w.h.p. failures across %d grid points, budget %d (expected ~%.1f)",
				failures, len(cases), budget, expectedFailures)
		}
	})
}

// TestMassCrashLiveness crashes every node except one mid-run; the lone
// fault-tolerant survivor must still end up leading and outputting.
func TestMassCrashLiveness(t *testing.T) {
	p := Params{N: 16, F: 6, T: 2, FaultTolerant: true, LeaderTimeout: 200}
	const n = 5
	crashAt := p.TotalRounds() / 2 // mid-competition
	var survivor *Node
	cfg := &sim.Config{
		F:    p.F,
		T:    p.T,
		Seed: 11,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			node := MustNew(p, r)
			if id == n-1 {
				survivor = node
				return node
			}
			return &adversary.CrashAgent{Inner: node, CrashAt: crashAt}
		},
		Schedule:       sim.Simultaneous{Count: n},
		Adversary:      adversary.NewPrefix(p.F, p.T),
		MaxRounds:      crashAt + 30*p.TotalRounds(),
		RunToMaxRounds: true,
	}
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if !survivor.IsLeader() {
		t.Fatalf("lone survivor role = %v, want leader", survivor.Role())
	}
	if !survivor.Output().Synced {
		t.Fatal("lone survivor has no output")
	}
}
