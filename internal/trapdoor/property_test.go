package trapdoor

import (
	"testing"
	"testing/quick"

	"wsync/internal/msg"
	"wsync/internal/rng"
)

// Property: for arbitrary valid parameters the Figure 1 schedule is well
// formed — lgN rows, non-decreasing probabilities capped at 1/2, positive
// lengths, and a final epoch at least as long as the regular ones.
func TestQuickScheduleWellFormed(t *testing.T) {
	prop := func(nRaw uint16, fRaw, tRaw uint8) bool {
		n := int(nRaw%2048) + 2
		f := int(fRaw%32) + 1
		tj := 0
		if f > 1 {
			tj = int(tRaw) % f
		}
		p := Params{N: n, F: f, T: tj}
		if err := p.Validate(); err != nil {
			return false
		}
		rows := p.Schedule()
		if len(rows) != p.LgN() {
			return false
		}
		prev := 0.0
		for i, row := range rows {
			if row.Length < 1 {
				return false
			}
			if row.Prob < prev || row.Prob > 0.5 {
				return false
			}
			prev = row.Prob
			if i < len(rows)-1 && row.Length != p.EpochLen() {
				return false
			}
		}
		if rows[len(rows)-1].Prob != 0.5 {
			return false
		}
		// The final epoch is Θ(F') times longer than regular epochs; for
		// F' = 1 (t = 0) the constants make it legitimately shorter.
		if p.FPrime() >= 2 && rows[len(rows)-1].Length < p.EpochLen() {
			return false
		}
		total := p.TotalRounds()
		want := uint64(p.LgN()-1)*p.EpochLen() + p.FinalEpochLen()
		return total == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a node's transmission behavior matches its declared
// BroadcastProb: listening-only roles never transmit, and leaders and
// contenders transmit with roughly the declared frequency.
func TestQuickBroadcastProbConsistency(t *testing.T) {
	prop := func(seed uint64) bool {
		p := Params{N: 8, F: 6, T: 2}
		n := MustNew(p, rng.New(seed))
		// Drive the node through its whole competition; at every step the
		// declared probability must be in [0, 1] and zero whenever the
		// action cannot transmit.
		total := p.TotalRounds() + 50
		for r := uint64(1); r <= total; r++ {
			prob := n.BroadcastProb()
			if prob < 0 || prob > 1 {
				return false
			}
			act := n.Step(r)
			if prob == 0 && act.Transmit {
				return false
			}
		}
		return n.IsLeader() // lone contender always wins
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: knocked-out and synced nodes never transmit, for arbitrary
// delivery orders.
func TestQuickSilentRolesStaySilent(t *testing.T) {
	prop := func(seed uint64, knock bool) bool {
		p := Params{N: 8, F: 6, T: 2}
		n := MustNew(p, rng.New(seed))
		n.Step(1)
		if knock {
			n.Deliver(kMsg(1 << 30))
		} else {
			n.Deliver(lMsg(500))
		}
		for r := uint64(2); r < 120; r++ {
			if act := n.Step(r); act.Transmit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// kMsg builds a contender message with the given age (helper for property
// tests).
func kMsg(age uint64) msg.Message {
	return msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{Age: age, UID: 1}}
}

// lMsg builds a leader message carrying the given round number.
func lMsg(round uint64) msg.Message {
	return msg.Message{
		Kind:   msg.KindLeader,
		TS:     msg.Timestamp{Age: 1 << 20, UID: 2},
		Round:  round,
		Scheme: 2,
	}
}
