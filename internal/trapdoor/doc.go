// Package trapdoor implements the Trapdoor Protocol of Section 6 of the
// paper, the near-optimal randomized solution to the wireless
// synchronization problem.
//
// The protocol runs a competition among contenders. Every node proceeds
// through lg N epochs with geometrically increasing broadcast probability
// (Figure 1): in each round of epoch e it picks a frequency uniformly from
// [1..F'], F' = min(F, 2t), and transmits its timestamp (ra, uid) with
// probability 2^e/(2N), listening otherwise. A contender that hears a
// larger timestamp is knocked out — it falls through the trapdoor and
// merely listens from then on. A contender that survives all lg N epochs
// becomes the leader, chooses the round numbering (its own local age), and
// announces it each round with probability 1/2 on a random frequency in
// [1..F']. Any node hearing a leader adopts the numbering and commits.
//
// With high probability exactly one node — the one with the maximum
// timestamp, i.e. the earliest activated — becomes leader, and every node
// synchronizes within O(F/(F−t)·log²N + Ft/(F−t)·logN) rounds (Theorem 10).
//
// The package also implements the crash-fault-tolerant variant sketched in
// Section 8: nodes delay committing until they have heard several leader
// messages, and any node that goes too long without hearing its leader
// restarts the competition, re-electing a leader that continues the old
// numbering if it had adopted it.
package trapdoor
