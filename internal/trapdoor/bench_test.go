package trapdoor

import (
	"testing"

	"wsync/internal/rng"
)

// BenchmarkNodeStep measures the per-round cost of one contender.
func BenchmarkNodeStep(b *testing.B) {
	n := MustNew(Params{N: 1024, F: 16, T: 4}, rng.New(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Step(uint64(i%1000) + 1)
	}
}

// BenchmarkSchedule measures schedule-table generation.
func BenchmarkSchedule(b *testing.B) {
	p := Params{N: 1 << 20, F: 64, T: 30}
	for i := 0; i < b.N; i++ {
		if len(p.Schedule()) == 0 {
			b.Fatal("empty schedule")
		}
	}
}
