package shard

import (
	"reflect"
	"testing"
)

// TestPlanEdges is the table-driven edge grid: K=1, K equal to and
// greater than the point count, the empty selection, and error cases.
func TestPlanEdges(t *testing.T) {
	ids := []string{"A", "B", "C"}
	cases := []struct {
		name  string
		ids   []string
		k     int
		costs map[string]int64
		want  [][]string
		err   bool
	}{
		{
			name: "K=1 is the identity partition",
			ids:  ids, k: 1,
			want: [][]string{{"A", "B", "C"}},
		},
		{
			name: "uniform costs round-robin",
			ids:  ids, k: 2,
			want: [][]string{{"A", "C"}, {"B"}},
		},
		{
			name: "K equal to point count",
			ids:  ids, k: 3,
			want: [][]string{{"A"}, {"B"}, {"C"}},
		},
		{
			name: "K greater than point count leaves shards empty",
			ids:  ids, k: 5,
			want: [][]string{{"A"}, {"B"}, {"C"}, {}, {}},
		},
		{
			name: "empty selection",
			ids:  []string{}, k: 3,
			want: [][]string{{}, {}, {}},
		},
		{
			name: "nil selection",
			ids:  nil, k: 2,
			want: [][]string{{}, {}},
		},
		{
			name: "heavy point isolated by LPT",
			ids:  []string{"A", "B", "C", "D"}, k: 2,
			costs: map[string]int64{"A": 100, "B": 1, "C": 1, "D": 1},
			want:  [][]string{{"A"}, {"B", "C", "D"}},
		},
		{
			name: "zero or missing costs fall back to the mean",
			ids:  []string{"A", "B", "C"}, k: 3,
			// A=30 known; B and C fall back to mean(30)=30: one each.
			costs: map[string]int64{"A": 30, "B": 0},
			want:  [][]string{{"A"}, {"B"}, {"C"}},
		},
		{
			name: "K=0 rejected",
			ids:  ids, k: 0, err: true,
		},
		{
			name: "negative K rejected",
			ids:  ids, k: -3, err: true,
		},
		{
			name: "duplicate id rejected",
			ids:  []string{"A", "B", "A"}, k: 2, err: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := Plan(c.ids, c.k, c.costs)
			if c.err {
				if err == nil {
					t.Fatalf("Plan = %v, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, c.want) {
				t.Fatalf("Plan = %v, want %v", got, c.want)
			}
		})
	}
}

// TestPlanStability pins the planner's determinism contract across K:
// for every K the partition is exact (each id in exactly one shard, in
// selection order), repeated invocations agree, and the assignment never
// depends on map iteration order.
func TestPlanStability(t *testing.T) {
	ids := []string{"F1", "T1", "T4", "T10a", "T10b", "X7", "X8", "R1", "R2", "R3"}
	costs := map[string]int64{"X7": 900, "T10a": 400, "R3": 250, "F1": 1, "T1": 40}
	for k := 1; k <= len(ids)+2; k++ {
		first, err := Plan(ids, k, costs)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if len(first) != k {
			t.Fatalf("K=%d: %d shards", k, len(first))
		}
		// Exact cover, selection order preserved within each shard.
		pos := map[string]int{}
		for i, id := range ids {
			pos[id] = i
		}
		seen := map[string]bool{}
		for s, shardIDs := range first {
			for i, id := range shardIDs {
				if seen[id] {
					t.Fatalf("K=%d: %s assigned twice", k, id)
				}
				seen[id] = true
				if i > 0 && pos[shardIDs[i-1]] > pos[id] {
					t.Fatalf("K=%d shard %d: order %v breaks selection order", k, s, shardIDs)
				}
			}
		}
		if len(seen) != len(ids) {
			t.Fatalf("K=%d: covered %d of %d ids", k, len(seen), len(ids))
		}
		// Re-planning is bit-stable.
		for trial := 0; trial < 5; trial++ {
			again, err := Plan(ids, k, costs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("K=%d: plan unstable:\n%v\n%v", k, first, again)
			}
		}
	}
}

// TestPlanBalance sanity-checks LPT quality: with cost estimates, no
// shard carries more than the theoretical LPT bound of 4/3·OPT + max.
func TestPlanBalance(t *testing.T) {
	ids := make([]string, 20)
	costs := map[string]int64{}
	var total int64
	for i := range ids {
		ids[i] = string(rune('a' + i))
		c := int64(10 + 97*i%311)
		costs[ids[i]] = c
		total += c
	}
	const k = 4
	plan, err := Plan(ids, k, costs)
	if err != nil {
		t.Fatal(err)
	}
	var maxLoad int64
	for _, shardIDs := range plan {
		var load int64
		for _, id := range shardIDs {
			load += costs[id]
		}
		if load > maxLoad {
			maxLoad = load
		}
	}
	// Loose LPT bound: makespan ≤ total/k + max single cost.
	var maxCost int64
	for _, c := range costs {
		if c > maxCost {
			maxCost = c
		}
	}
	if bound := total/k + maxCost; maxLoad > bound {
		t.Fatalf("max load %d exceeds LPT bound %d (plan %v)", maxLoad, bound, plan)
	}
}

func TestFallbackCost(t *testing.T) {
	if got := fallbackCost([]string{"A", "B"}, nil); got != 1 {
		t.Fatalf("no estimates: fallback = %d, want 1", got)
	}
	if got := fallbackCost([]string{"A", "B", "C"}, map[string]int64{"A": 10, "B": 20, "Z": 999}); got != 15 {
		t.Fatalf("fallback = %d, want mean 15 over the selection only", got)
	}
}
