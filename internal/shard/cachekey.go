package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// PointKey names one experiment's sweep point in the result-cache
// address space: the grid tier qualified by the experiment id. The tier
// is part of the key because -quick and -full select different grids
// for the same id, so their tables are different deterministic values.
func PointKey(quick, full bool, experimentID string) string {
	tier := "default"
	switch {
	case full:
		tier = "full"
	case quick:
		tier = "quick"
	}
	return tier + "/" + experimentID
}

// CacheKey returns the content address of one experiment's result under
// the wsync-bench/v1 determinism contract. Everything outside the
// volatile fields is a pure function of the tuple
//
//	(schema, seed, point key, trials)
//
// where trials is the effective (post-defaulting) repetition count and
// the point key is the tier-qualified experiment id (PointKey) — so a
// result computed once can be served to every later request for the
// same tuple without recompute. The address is the hex SHA-256 of the
// canonical tuple encoding; docs/BENCH_FORMAT.md ("The wsyncd job
// service") documents it as the cache's wire-visible key.
func CacheKey(schema string, seed uint64, effectiveTrials int, quick, full bool, experimentID string) string {
	canon := fmt.Sprintf("%s|seed=%d|trials=%d|point=%s",
		schema, seed, effectiveTrials, PointKey(quick, full, experimentID))
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}

// Replan is the daemon's partial re-plan: given the experiment ids still
// pending (typically the unfinished remainder of a job after a worker
// was lost), it returns the slice of that work one newly idle worker
// should take when k workers are live — the first shard of a fresh
// cost-balanced Plan over only the pending ids. Successive calls as
// workers come free, with completed and leased ids removed from pending,
// drain the pool without any worker ever waiting on a static partition.
func Replan(pending []string, k int, costs map[string]int64) ([]string, error) {
	if k < 1 {
		k = 1
	}
	plan, err := Plan(pending, k, costs)
	if err != nil {
		return nil, err
	}
	return plan[0], nil
}
