// Package shard plans, stamps, and merges distributed sweep runs: the
// machinery behind `wexp -shards K -shard-index i`, `wexp merge`, and
// `wexp -dispatch K` (see docs/BENCH_FORMAT.md, "Sharding").
//
// The unit of sharding is the experiment: the wsync-bench/v1 report is
// merge-friendly exactly at experiment-id granularity (tables are keyed
// by id; duplicate ids with differing tables are an envelope mismatch),
// and per-trial seeds depend only on (seed, sweep-point key, trial), so
// an experiment produces the same table no matter which machine runs it.
//
// Plan partitions a selection of experiment ids into K shards with a
// deterministic longest-processing-time greedy: points are weighted by
// cost estimates (typically prior elapsed_ms via CostsFromReport, with a
// uniform fallback when no estimate exists) and assigned heaviest-first
// to the least-loaded shard. The partition is a pure function of
// (selection, K, costs) — every worker computes the full plan and takes
// its slice, so no coordination is needed beyond sharing the flags.
//
// Merge is the inverse: it unions shard artifacts back into the report an
// unsharded run would have produced — envelopes must agree on schema,
// seed, trials, and tier; duplicate ids collapse only when their tables
// are identical; per-shard elapsed_ms values are preserved, never summed;
// and experiments come out in catalogue order (wexp -list). Merging the
// K shard artifacts of a run is byte-identical to the unsharded report
// for any K once the volatile fields are zeroed (ZeroVolatile), which
// TestShardMergeIdentity in cmd/wexp and CI's shard-smoke job enforce.
package shard
