package shard

import (
	"bytes"
	"strings"
	"testing"

	"wsync/internal/harness"
)

// rep builds a small report with one single-row table per id.
func testReport(ids ...string) *Report {
	r := &Report{
		Schema:          Schema,
		Trials:          3,
		EffectiveTrials: 3,
		Seed:            7,
		Experiments:     []Entry{},
	}
	for i, id := range ids {
		r.Experiments = append(r.Experiments, Entry{
			Table: &harness.Table{
				ID:      id,
				Title:   "test " + id,
				Columns: []string{"x"},
				Rows:    [][]string{{id}},
			},
			ElapsedMS: int64(10 * (i + 1)),
		})
	}
	return r
}

// TestMergeUnionCatalogueOrder: shards holding disjoint experiment sets
// merge into one report in catalogue (wexp -list) order, regardless of
// which shard held what, with per-shard elapsed_ms preserved.
func TestMergeUnionCatalogueOrder(t *testing.T) {
	a := testReport("X7", "F1") // deliberately out of catalogue order
	b := testReport("T4")
	merged, err := Merge([]*Report{a, b})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range merged.Experiments {
		got = append(got, e.Table.ID)
	}
	want := []string{"F1", "T4", "X7"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("merged order = %v, want %v", got, want)
	}
	// elapsed_ms comes from the shard that ran the experiment, unsummed.
	for _, e := range merged.Experiments {
		if e.ElapsedMS == 0 || e.ElapsedMS > 20 {
			t.Fatalf("%s elapsed = %d, want the per-shard value", e.Table.ID, e.ElapsedMS)
		}
	}
	if merged.Shard != nil {
		t.Fatal("merged report kept shard metadata")
	}
	if merged.Parallelism != 0 || merged.EffectiveParallelism != 0 {
		t.Fatal("merged report kept a parallelism value")
	}
	if merged.Seed != 7 || merged.Trials != 3 || merged.EffectiveTrials != 3 {
		t.Fatalf("envelope lost: %+v", merged)
	}
}

// TestMergeUnknownIDsSortAfterCatalogue: ids the catalogue doesn't know
// sort after it, lexically, so merging stays total.
func TestMergeUnknownIDsSortAfterCatalogue(t *testing.T) {
	merged, err := Merge([]*Report{testReport("ZZ9", "F1", "AA1")})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range merged.Experiments {
		got = append(got, e.Table.ID)
	}
	if strings.Join(got, ",") != "F1,AA1,ZZ9" {
		t.Fatalf("order = %v", got)
	}
}

func TestMergeRejectsMismatches(t *testing.T) {
	base := func() *Report { return testReport("F1") }
	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"seed", func(r *Report) { r.Seed = 8 }, "seed"},
		{"trials", func(r *Report) { r.Trials = 4 }, "trials"},
		{"effective trials", func(r *Report) { r.EffectiveTrials = 20 }, "effective_trials"},
		{"quick", func(r *Report) { r.Quick = true }, "quick"},
		{"full", func(r *Report) { r.Full = true }, "full"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			other := base()
			c.mutate(other)
			_, err := Merge([]*Report{base(), other})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %s", err, c.want)
			}
		})
	}
}

// TestMergeDuplicateIDs: identical duplicates collapse (first entry's
// elapsed_ms wins); differing duplicates are rejected.
func TestMergeDuplicateIDs(t *testing.T) {
	a, b := testReport("F1"), testReport("F1")
	b.Experiments[0].ElapsedMS = 999
	merged, err := Merge([]*Report{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Experiments) != 1 || merged.Experiments[0].ElapsedMS != 10 {
		t.Fatalf("identical duplicate did not collapse to the first entry: %+v", merged.Experiments)
	}

	b.Experiments[0].Table.Rows = [][]string{{"different"}}
	if _, err := Merge([]*Report{a, b}); err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Fatalf("differing duplicate accepted: %v", err)
	}
}

// TestMergeShardSetCompleteness: when inputs carry shard metadata, the
// merge refuses partial sets — a lost machine's artifact must not vanish
// into a schema-valid but truncated report.
func TestMergeShardSetCompleteness(t *testing.T) {
	selection := []string{"F1", "T4", "L2", "X7"}
	stamped := func(ids []string, count, index int) *Report {
		r := testReport(ids...)
		r.Shard = &Meta{Count: count, Index: index, IDs: ids, Selection: selection}
		return r
	}

	s0 := stamped([]string{"F1", "T4"}, 3, 0)
	s1 := stamped([]string{"L2"}, 3, 1)
	s2 := stamped([]string{"X7"}, 3, 2)

	if _, err := Merge([]*Report{s0, s1, s2}); err != nil {
		t.Fatalf("complete set rejected: %v", err)
	}
	_, err := Merge([]*Report{s0, s1})
	if err == nil || !strings.Contains(err.Error(), "missing indexes [2]") {
		t.Fatalf("partial set: err = %v, want missing index 2", err)
	}
	if _, err := Merge([]*Report{s0}); err == nil {
		t.Fatal("single shard of three accepted")
	}
	// Duplicate index is fine as long as the set is covered (identical
	// tables collapse).
	if _, err := Merge([]*Report{s0, s0, s1, s2}); err != nil {
		t.Fatalf("covered set with duplicate shard rejected: %v", err)
	}
	// Counts must agree.
	other := stamped([]string{"R1"}, 2, 1)
	if _, err := Merge([]*Report{s0, s1, s2, other}); err == nil || !strings.Contains(err.Error(), "of 2") {
		t.Fatalf("mixed counts: err = %v", err)
	}
	// Malformed metadata is rejected outright.
	bad := stamped([]string{"R2"}, 3, 3)
	if _, err := Merge([]*Report{bad}); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	// Workers invoked over different -run selections: the envelope
	// agrees, the indexes cover, but the plans partitioned different
	// sweeps — rejected by the selection cross-check.
	t1 := stamped([]string{"L2"}, 3, 1)
	t1.Shard.Selection = []string{"F1", "T4", "L2"}
	if _, err := Merge([]*Report{s0, t1, s2}); err == nil || !strings.Contains(err.Error(), "selection") {
		t.Fatalf("mismatched selections: err = %v", err)
	}
	// A shard that ran something other than its plan is rejected.
	drifted := stamped([]string{"L2"}, 3, 1)
	drifted.Shard.IDs = []string{"R1"}
	if _, err := Merge([]*Report{s0, drifted, s2}); err == nil {
		t.Fatal("plan/run drift accepted")
	}
	// A complete set whose plans don't reassemble the selection (e.g.
	// workers on different planner versions) is rejected.
	gap := stamped([]string{"X7"}, 3, 2)
	gap.Shard.Selection = append(selection[:len(selection):len(selection)], "R3")
	g0, g1 := stamped([]string{"F1", "T4"}, 3, 0), stamped([]string{"L2"}, 3, 1)
	g0.Shard.Selection, g1.Shard.Selection = gap.Shard.Selection, gap.Shard.Selection
	if _, err := Merge([]*Report{g0, g1, gap}); err == nil {
		t.Fatal("planned/selection gap accepted")
	}
	// Unsharded inputs stay unconstrained.
	if _, err := Merge([]*Report{testReport("F1"), testReport("T4")}); err != nil {
		t.Fatalf("unsharded merge rejected: %v", err)
	}
}

func TestMergeDegenerate(t *testing.T) {
	if _, err := Merge(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
	if _, err := Merge([]*Report{{Schema: Schema, Experiments: []Entry{{Table: nil}}}}); err == nil {
		t.Fatal("table-less entry accepted")
	}
	// Merging only empty shards (K larger than the selection) is legal.
	merged, err := Merge([]*Report{testReport(), testReport()})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Experiments) != 0 {
		t.Fatalf("experiments = %+v", merged.Experiments)
	}
}

// TestEncodeDecodeRoundTrip pins the byte-stability the sharded-vs-
// unsharded comparison rests on: decode∘encode is the identity on
// encoded reports.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := testReport("F1", "T4")
	r.Shard = &Meta{Count: 3, Index: 1, IDs: []string{"F1", "T4"}, Selection: []string{"F1", "T4"}}
	var first bytes.Buffer
	if err := r.Encode(&first); err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(first.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Shard == nil || decoded.Shard.Count != 3 || decoded.Shard.Index != 1 {
		t.Fatalf("shard metadata lost: %+v", decoded.Shard)
	}
	var second bytes.Buffer
	if err := decoded.Encode(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round trip changed bytes:\n%s\nvs\n%s", first.String(), second.String())
	}
}

func TestDecodeRejectsOtherSchemas(t *testing.T) {
	if _, err := Decode([]byte(`{"schema":"wsync-bench/v2"}`)); err == nil {
		t.Fatal("v2 accepted")
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestZeroVolatile(t *testing.T) {
	r := testReport("F1")
	r.Parallelism = 4
	r.EffectiveParallelism = 8
	r.ZeroVolatile()
	if r.Parallelism != 0 || r.EffectiveParallelism != 0 || r.Experiments[0].ElapsedMS != 0 {
		t.Fatalf("volatile fields survived: %+v", r)
	}
	if r.Seed != 7 || r.Experiments[0].Table.ID != "F1" {
		t.Fatal("non-volatile fields were touched")
	}
}

func TestCostsFromReport(t *testing.T) {
	r := testReport("F1", "T4")
	r.Experiments[0].ElapsedMS = 0 // sub-millisecond experiment
	r.Experiments = append(r.Experiments, Entry{Table: nil, ElapsedMS: 5})
	costs := CostsFromReport(r)
	if costs["F1"] != 1 {
		t.Fatalf("F1 cost = %d, want clamp to 1", costs["F1"])
	}
	if costs["T4"] != 20 {
		t.Fatalf("T4 cost = %d, want 20", costs["T4"])
	}
	if len(costs) != 2 {
		t.Fatalf("costs = %v, want 2 entries", costs)
	}
}
