package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"wsync/internal/harness"
)

// Schema is the report version this package decodes, stamps, and merges.
// It must stay equal to reportSchema in cmd/wexp — CI's docs job greps
// both files and TestReportSchemaMatchesShardPackage pins the pair.
const Schema = "wsync-bench/v1"

// Report is the wsync-bench/v1 envelope (docs/BENCH_FORMAT.md is the
// spec). Field order mirrors the emitted key order: wexp -json and
// Encode must produce byte-identical documents for equal content, which
// is what makes the sharded-vs-unsharded byte comparison meaningful.
type Report struct {
	Schema               string `json:"schema"`
	Trials               int    `json:"trials"`
	EffectiveTrials      int    `json:"effective_trials"`
	Seed                 uint64 `json:"seed"`
	Quick                bool   `json:"quick"`
	Full                 bool   `json:"full"`
	Parallelism          int    `json:"parallelism"`
	EffectiveParallelism int    `json:"effective_parallelism"`
	// Shard is present only on artifacts produced by a sharded worker
	// run; merged and unsharded reports omit it.
	Shard       *Meta   `json:"shard,omitempty"`
	Experiments []Entry `json:"experiments"`
}

// Entry pairs one experiment's table with its wall time and throughput.
// node_rounds is the number of active node-rounds the experiment's
// simulations executed — a deterministic function of the sweep identity,
// inside the determinism contract. node_rounds_per_s derives from the wall
// time and is volatile, like elapsed_ms.
type Entry struct {
	Table            *harness.Table `json:"table"`
	ElapsedMS        int64          `json:"elapsed_ms"`
	NodeRounds       uint64         `json:"node_rounds"`
	NodeRoundsPerSec float64        `json:"node_rounds_per_s"`
}

// Meta stamps a shard artifact with its place in the partition: which
// 1-of-Count slice this worker ran, exactly which experiment ids the
// planner assigned it (empty when Count exceeds the selection size),
// and the full selection the plan partitioned. Selection lets the merge
// engine reject artifacts whose workers were invoked over different
// -run lists — the envelope alone cannot see that mismatch.
type Meta struct {
	Count     int      `json:"count"`
	Index     int      `json:"index"`
	IDs       []string `json:"ids"`
	Selection []string `json:"selection"`
}

// Decode parses a wsync-bench/v1 document, rejecting other schema
// versions.
func Decode(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("shard: decoding report: %w", err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("shard: unsupported schema %q (want %q)", r.Schema, Schema)
	}
	return &r, nil
}

// ReadFile reads and decodes one report artifact.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	r, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Encode writes the report exactly as wexp -json does — two-space indent
// and a trailing newline — so artifacts from either path byte-compare.
func (r *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ZeroVolatile zeroes the fields docs/BENCH_FORMAT.md documents as
// outside the determinism contract — elapsed_ms, node_rounds_per_s,
// parallelism, and effective_parallelism — leaving a pure function of
// (schema, seed, trials, tier, experiment set) suitable for byte
// comparison. node_rounds is deterministic and survives.
func (r *Report) ZeroVolatile() {
	r.Parallelism = 0
	r.EffectiveParallelism = 0
	for i := range r.Experiments {
		r.Experiments[i].ElapsedMS = 0
		r.Experiments[i].NodeRoundsPerSec = 0
	}
}

// CostsFromReport extracts per-experiment cost estimates for Plan from a
// prior run's wall times: id → elapsed_ms, clamped to at least 1 so a
// sub-millisecond experiment still counts as work. Duplicate ids keep
// the larger estimate.
func CostsFromReport(r *Report) map[string]int64 {
	costs := make(map[string]int64, len(r.Experiments))
	for _, e := range r.Experiments {
		if e.Table == nil {
			continue
		}
		c := e.ElapsedMS
		if c < 1 {
			c = 1
		}
		if c > costs[e.Table.ID] {
			costs[e.Table.ID] = c
		}
	}
	return costs
}
