package shard

import (
	"strings"
	"testing"
)

// TestCacheKeyTuple pins the cache address as a function of exactly the
// documented tuple (schema, seed, point key, trials): equal tuples
// collide, and moving any single element — including the tier half of
// the point key — produces a distinct address.
func TestCacheKeyTuple(t *testing.T) {
	base := CacheKey(Schema, 7, 20, false, false, "T10a")
	if base != CacheKey(Schema, 7, 20, false, false, "T10a") {
		t.Fatal("identical tuples hash to different keys")
	}
	if len(base) != 64 || strings.ToLower(base) != base {
		t.Fatalf("key %q is not lowercase hex sha-256", base)
	}
	variants := map[string]string{
		"schema":  CacheKey("wsync-bench/v999", 7, 20, false, false, "T10a"),
		"seed":    CacheKey(Schema, 8, 20, false, false, "T10a"),
		"trials":  CacheKey(Schema, 7, 21, false, false, "T10a"),
		"quick":   CacheKey(Schema, 7, 20, true, false, "T10a"),
		"full":    CacheKey(Schema, 7, 20, false, true, "T10a"),
		"point":   CacheKey(Schema, 7, 20, false, false, "T10b"),
		"swapped": CacheKey(Schema, 7, 20, false, false, "T10a "),
	}
	seen := map[string]string{base: "base"}
	for name, key := range variants {
		if prev, dup := seen[key]; dup {
			t.Errorf("tuple variant %q collides with %q", name, prev)
		}
		seen[key] = name
	}
}

// TestPointKeyTiers pins the tier qualifier: the three tiers address
// disjoint key spaces for the same experiment id, and Full wins when
// both flags are set (mirroring harness.Options, where Full overrides).
func TestPointKeyTiers(t *testing.T) {
	cases := []struct {
		quick, full bool
		want        string
	}{
		{false, false, "default/X9"},
		{true, false, "quick/X9"},
		{false, true, "full/X9"},
		{true, true, "full/X9"},
	}
	for _, c := range cases {
		if got := PointKey(c.quick, c.full, "X9"); got != c.want {
			t.Errorf("PointKey(%v, %v) = %q, want %q", c.quick, c.full, got, c.want)
		}
	}
}

// TestReplan checks the partial re-plan helper: the returned slice is a
// subset of pending in selection order, roughly 1/k of it by cost, the
// whole pool when k = 1 (or fewer), and empty input yields empty output
// rather than an error.
func TestReplan(t *testing.T) {
	pending := []string{"A", "B", "C", "D", "E", "F"}
	got, err := Replan(pending, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Replan k=3 over 6 uniform ids = %v, want 2 ids", got)
	}
	idx := map[string]int{}
	for i, id := range pending {
		idx[id] = i
	}
	for i := 1; i < len(got); i++ {
		if idx[got[i-1]] >= idx[got[i]] {
			t.Fatalf("Replan broke selection order: %v", got)
		}
	}

	all, err := Replan(pending, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(pending) {
		t.Fatalf("Replan k=1 = %v, want all of %v", all, pending)
	}
	if under, err := Replan(pending, 0, nil); err != nil || len(under) != len(pending) {
		t.Fatalf("Replan k=0 = %v, %v; want the k=1 behavior", under, err)
	}

	none, err := Replan(nil, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("Replan of empty pool = %v, want empty", none)
	}

	if _, err := Replan([]string{"A", "A"}, 2, nil); err == nil {
		t.Fatal("Replan accepted a duplicate id")
	}
}
