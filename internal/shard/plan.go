package shard

import (
	"fmt"
	"sort"
)

// Plan partitions a selection of experiment ids into k shards and
// returns, for each shard, its assigned ids in selection order. The
// partition is exact (every id lands in exactly one shard) and a pure
// function of (ids, k, costs): every worker of a sharded run computes
// the same plan from the shared flags and takes its own slice.
//
// Balancing is longest-processing-time greedy: points are weighted by
// costs[id] (a prior run's elapsed_ms, see CostsFromReport) and
// assigned heaviest-first to the least-loaded shard. Ids without a
// positive cost estimate — including every id when costs is nil — get
// the uniform fallback: the mean of the known estimates, or 1 when
// there are none. With uniform costs the plan degenerates to
// round-robin over the selection. Ties (equal costs, equal loads) break
// by selection position and lowest shard index, so the plan never
// depends on map iteration order.
//
// k must be at least 1; k larger than the selection leaves the excess
// shards empty. A duplicate id is an error: the merge engine collapses
// duplicate experiment ids, so a sharded run of a selection with
// repeats could not reproduce the unsharded report.
func Plan(ids []string, k int, costs map[string]int64) ([][]string, error) {
	if k < 1 {
		return nil, fmt.Errorf("shard: shard count %d, want at least 1", k)
	}
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("shard: duplicate experiment %q in selection", id)
		}
		seen[id] = true
	}

	fallback := fallbackCost(ids, costs)
	type point struct {
		idx  int
		cost int64
	}
	points := make([]point, len(ids))
	for i, id := range ids {
		c := costs[id]
		if c < 1 {
			c = fallback
		}
		points[i] = point{idx: i, cost: c}
	}
	// Stable sort: equal costs keep selection order, so the uniform case
	// assigns round-robin and the plan is reproducible.
	sort.SliceStable(points, func(i, j int) bool { return points[i].cost > points[j].cost })

	loads := make([]int64, k)
	assign := make([]int, len(ids))
	for _, p := range points {
		s := 0
		for w := 1; w < k; w++ {
			if loads[w] < loads[s] {
				s = w
			}
		}
		assign[p.idx] = s
		loads[s] += p.cost
	}

	out := make([][]string, k)
	for s := range out {
		out[s] = []string{}
	}
	for i, id := range ids {
		out[assign[i]] = append(out[assign[i]], id)
	}
	return out, nil
}

// fallbackCost is the uniform estimate for ids the costs map doesn't
// cover: the mean of the known estimates over the selection, so a new
// experiment is assumed average-sized rather than free, or 1 when no
// estimates exist at all.
func fallbackCost(ids []string, costs map[string]int64) int64 {
	var sum, n int64
	for _, id := range ids {
		if c := costs[id]; c > 0 {
			sum += c
			n++
		}
	}
	if n == 0 {
		return 1
	}
	f := sum / n
	if f < 1 {
		f = 1
	}
	return f
}
