package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"wsync/internal/harness"
)

// Merge unions shard artifacts back into the single report an unsharded
// run would have produced, implementing the merge semantics documented
// in docs/BENCH_FORMAT.md:
//
//   - Envelopes must agree on schema, seed, trials, effective_trials,
//     quick, and full; any disagreement means the artifacts came from
//     different sweeps and the merge is rejected.
//   - Experiments are keyed by table id. Duplicate ids whose tables are
//     byte-identical and whose node_rounds agree collapse to one entry
//     (the first occurrence's volatile elapsed_ms and node_rounds_per_s
//     win); duplicate ids with differing tables or node_rounds are
//     rejected.
//   - elapsed_ms values are preserved per shard, never summed: wall
//     times from different machines are not comparable.
//   - The merged experiments array is in catalogue order (wexp -list),
//     the order an unsharded run of the full selection executes in; ids
//     unknown to the catalogue sort after it, lexically.
//   - When inputs carry shard metadata, the set must be complete: one
//     artifact for every index of one shard count. A partial set would
//     otherwise merge silently into a schema-valid report missing part
//     of the sweep — the metadata exists exactly to catch the lost
//     machine.
//
// The merged envelope carries no shard metadata and zeroes both
// parallelism fields — no single worker count describes a multi-machine
// run, and docs/BENCH_FORMAT.md already scopes them out of the
// determinism contract.
func Merge(reps []*Report) (*Report, error) {
	if len(reps) == 0 {
		return nil, fmt.Errorf("shard: nothing to merge")
	}
	base := reps[0]
	for i, r := range reps[1:] {
		if msg := envelopeMismatch(base, r); msg != "" {
			return nil, fmt.Errorf("shard: report %d does not merge with report 0: %s", i+1, msg)
		}
	}
	if err := checkShardSet(reps); err != nil {
		return nil, err
	}

	merged := make(map[string]Entry)
	var order []string
	for ri, r := range reps {
		for _, e := range r.Experiments {
			if e.Table == nil {
				return nil, fmt.Errorf("shard: report %d has an entry without a table", ri)
			}
			id := e.Table.ID
			prev, ok := merged[id]
			if !ok {
				merged[id] = e
				order = append(order, id)
				continue
			}
			same, err := tablesEqual(prev.Table, e.Table)
			if err != nil {
				return nil, err
			}
			if !same {
				return nil, fmt.Errorf("shard: experiment %s: conflicting tables across reports (envelope mismatch upstream?)", id)
			}
			// node_rounds is deterministic, so duplicates of the same sweep
			// must agree on it exactly as they do on the table bytes.
			if prev.NodeRounds != e.NodeRounds {
				return nil, fmt.Errorf("shard: experiment %s: conflicting node_rounds across reports (%d vs %d)", id, prev.NodeRounds, e.NodeRounds)
			}
		}
	}
	sortCatalogue(order)

	out := &Report{
		Schema:          base.Schema,
		Trials:          base.Trials,
		EffectiveTrials: base.EffectiveTrials,
		Seed:            base.Seed,
		Quick:           base.Quick,
		Full:            base.Full,
		Experiments:     make([]Entry, 0, len(order)),
	}
	for _, id := range order {
		out.Experiments = append(out.Experiments, merged[id])
	}
	return out, nil
}

// checkShardSet enforces consistency and completeness over the inputs'
// shard metadata. If any report was produced by a sharded worker:
// every stamped report must have run exactly its planned ids, all
// stamped reports must agree on the shard count and on the selection
// their plans partitioned (workers invoked over different -run lists
// produce a gap the envelope cannot see), the inputs must cover every
// index 0..Count-1, and the planned ids must union back to the
// selection. Reports without metadata (unsharded or already-merged
// artifacts) are unconstrained.
func checkShardSet(reps []*Report) error {
	count := 0
	var selection []string
	covered := make(map[int]bool)
	planned := make(map[string]bool)
	for ri, r := range reps {
		m := r.Shard
		if m == nil {
			continue
		}
		if m.Count < 1 || m.Index < 0 || m.Index >= m.Count {
			return fmt.Errorf("shard: report %d has malformed shard metadata (index %d of %d)", ri, m.Index, m.Count)
		}
		if len(r.Experiments) != len(m.IDs) {
			return fmt.Errorf("shard: report %d ran %d experiments but was planned %d (%v)", ri, len(r.Experiments), len(m.IDs), m.IDs)
		}
		for i, e := range r.Experiments {
			if e.Table != nil && e.Table.ID != m.IDs[i] {
				return fmt.Errorf("shard: report %d ran %s where its plan says %s", ri, e.Table.ID, m.IDs[i])
			}
		}
		if count == 0 {
			count = m.Count
			selection = m.Selection
		} else {
			if m.Count != count {
				return fmt.Errorf("shard: report %d is shard %d of %d, other inputs are of %d", ri, m.Index, m.Count, count)
			}
			if !equalStrings(m.Selection, selection) {
				return fmt.Errorf("shard: report %d was planned over a different selection (%v vs %v)", ri, m.Selection, selection)
			}
		}
		covered[m.Index] = true
		for _, id := range m.IDs {
			planned[id] = true
		}
	}
	if count == 0 {
		return nil
	}
	if len(covered) != count {
		var missing []int
		for i := 0; i < count; i++ {
			if !covered[i] {
				missing = append(missing, i)
			}
		}
		return fmt.Errorf("shard: incomplete shard set: %d of %d shards present, missing indexes %v", len(covered), count, missing)
	}
	// A complete set's plans must reassemble the selection exactly —
	// anything else means the workers ran different planner versions.
	if len(planned) != len(selection) {
		return fmt.Errorf("shard: complete shard set plans %d experiments, selection has %d", len(planned), len(selection))
	}
	for _, id := range selection {
		if !planned[id] {
			return fmt.Errorf("shard: selected experiment %s is in no shard's plan", id)
		}
	}
	return nil
}

// equalStrings reports element-wise equality of two string slices.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// envelopeMismatch names the first field on which two envelopes disagree
// about sweep identity, or returns "" when they merge cleanly.
func envelopeMismatch(a, b *Report) string {
	switch {
	case a.Schema != b.Schema:
		return fmt.Sprintf("schema %q vs %q", a.Schema, b.Schema)
	case a.Seed != b.Seed:
		return fmt.Sprintf("seed %d vs %d", a.Seed, b.Seed)
	case a.Trials != b.Trials:
		return fmt.Sprintf("trials %d vs %d", a.Trials, b.Trials)
	case a.EffectiveTrials != b.EffectiveTrials:
		return fmt.Sprintf("effective_trials %d vs %d", a.EffectiveTrials, b.EffectiveTrials)
	case a.Quick != b.Quick:
		return fmt.Sprintf("quick %v vs %v", a.Quick, b.Quick)
	case a.Full != b.Full:
		return fmt.Sprintf("full %v vs %v", a.Full, b.Full)
	}
	return ""
}

// tablesEqual compares two tables through their canonical JSON form, the
// same bytes the report emits, so "identical" means what a consumer
// diffing artifacts would see.
func tablesEqual(a, b *harness.Table) (bool, error) {
	aj, err := json.Marshal(a)
	if err != nil {
		return false, fmt.Errorf("shard: %w", err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		return false, fmt.Errorf("shard: %w", err)
	}
	return bytes.Equal(aj, bj), nil
}

// sortCatalogue orders experiment ids the way an unsharded full run
// executes them: catalogue (presentation) order first, unknown ids after
// in lexical order.
func sortCatalogue(ids []string) {
	rank := make(map[string]int)
	for i, id := range harness.IDs() {
		rank[id] = i
	}
	unknown := len(rank)
	sort.SliceStable(ids, func(i, j int) bool {
		ri, ok := rank[ids[i]]
		if !ok {
			ri = unknown
		}
		rj, ok := rank[ids[j]]
		if !ok {
			rj = unknown
		}
		if ri != rj {
			return ri < rj
		}
		return ids[i] < ids[j]
	})
}
