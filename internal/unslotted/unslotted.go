package unslotted

import (
	"errors"
	"fmt"

	"wsync/internal/freqset"
	"wsync/internal/msg"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

// Config describes an unslotted simulation. Time advances in half-slots;
// a node's protocol round k occupies half-slots [2k+φ, 2k+1+φ] of global
// time, where φ ∈ {0, 1} is the node's phase.
type Config struct {
	// F is the number of frequencies; T the adversary budget per
	// half-slot.
	F int
	T int
	// Seed drives all randomness.
	Seed uint64
	// NewAgent constructs node i's protocol (an ordinary slotted agent).
	NewAgent func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent
	// N is the number of nodes.
	N int
	// Phase returns node i's phase parity (0 or 1); nil means all zero.
	// Random phases model unsynchronized clocks.
	Phase func(i int) int
	// ActivationRound returns node i's activation in protocol rounds
	// (>= 1); nil means all activate in round 1.
	ActivationRound func(i int) uint64
	// Adversary jams up to T frequencies per half-slot; nil means none.
	// It sees the half-slot index as the round number.
	Adversary sim.Adversary
	// MaxRounds bounds the run in protocol rounds (0 = sim default).
	MaxRounds uint64
	// StopWhenAllSynced ends the run once every node reports a non-⊥
	// output (default behavior; set RunToMax to disable).
	RunToMax bool
}

// Result reports an unslotted run.
type Result struct {
	// Rounds is the number of protocol rounds executed (half-slots / 2).
	Rounds uint64
	// AllSynced reports whether every node committed.
	AllSynced bool
	// SyncRound[i] is the local protocol round at which node i first
	// output a number (0 = never).
	SyncRound []uint64
	// Leaders counts agents reporting leadership at the end.
	Leaders int
	// Deliveries counts successful protocol-message receptions.
	Deliveries uint64
	// HitMaxRounds reports that the budget ran out.
	HitMaxRounds bool
}

// RandomPhases returns a Phase function drawing each node's parity
// uniformly from seed.
func RandomPhases(n int, seed uint64) func(i int) int {
	r := rng.New(seed)
	phases := make([]int, n)
	for i := range phases {
		phases[i] = r.Intn(2)
	}
	return func(i int) int { return phases[i] }
}

func (c *Config) validate() error {
	switch {
	case c.F < 1:
		return fmt.Errorf("unslotted: F = %d", c.F)
	case c.T < 0 || c.T >= c.F:
		return fmt.Errorf("unslotted: T = %d out of [0, F)", c.T)
	case c.N < 1:
		return errors.New("unslotted: N < 1")
	case c.NewAgent == nil:
		return errors.New("unslotted: NewAgent required")
	}
	return nil
}

// nodeState is the engine's per-node bookkeeping.
type nodeState struct {
	agent      sim.Agent
	phase      uint64
	activation uint64 // protocol round of activation
	active     bool

	action sim.Action // current round's action (spans two half-slots)
	midway bool       // true during the second half-slot of a round
	got    bool       // received something this round already
	gotMsg msg.Message
	local  uint64 // current local protocol round
	synced bool
	syncAt uint64
}

// Run executes the unslotted simulation.
func Run(c *Config) (*Result, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	maxRounds := c.MaxRounds
	if maxRounds == 0 {
		maxRounds = sim.DefaultMaxRounds
	}

	master := rng.New(c.Seed)
	nodes := make([]nodeState, c.N)
	for i := range nodes {
		nodes[i].activation = 1
		if c.ActivationRound != nil {
			nodes[i].activation = c.ActivationRound(i)
			if nodes[i].activation < 1 {
				return nil, fmt.Errorf("unslotted: node %d activation %d", i, nodes[i].activation)
			}
		}
		if c.Phase != nil {
			p := c.Phase(i)
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("unslotted: node %d phase %d not in {0,1}", i, p)
			}
			nodes[i].phase = uint64(p)
		}
	}

	res := &Result{SyncRound: make([]uint64, c.N)}
	txCount := make([]int, c.F+1)
	txFrom := make([]int, c.F+1)
	empty := freqset.New(c.F)
	hist := &sim.History{F: c.F, Activated: make([]uint64, c.N), Received: make([]bool, c.N)}

	// Half-slot loop. Node i's protocol round k (1-based local) starts at
	// half-slot 2*(activation+k-1) + phase - 1 in 1-based global
	// half-slots.
	limit := 2*maxRounds + 2
	for hs := uint64(1); hs <= limit; hs++ {
		// Phase A: start rounds / refresh actions.
		for i := range nodes {
			n := &nodes[i]
			// Global protocol round r covers half-slots [2r-1+φ, 2r+φ].
			// Node starts its local round when (hs - φ) is odd.
			if (hs-n.phase)%2 == 1 {
				globalRound := (hs - n.phase + 1) / 2
				if !n.active {
					if globalRound < n.activation {
						continue
					}
					if globalRound == n.activation {
						n.active = true
						n.agent = c.NewAgent(sim.NodeID(i), globalRound, master.Split(uint64(i)))
						hist.Activated[i] = globalRound
					}
				}
				if n.active {
					// Deliver the previous round's reception before
					// starting the new round.
					n.finishRound()
					n.local = globalRound - n.activation + 1
					n.action = n.agent.Step(n.local)
					if n.action.Freq < 1 || n.action.Freq > c.F {
						panic(fmt.Sprintf("unslotted: node %d chose frequency %d", i, n.action.Freq))
					}
					n.midway = false
					n.got = false
				}
			} else if n.active {
				n.midway = true
			}
		}

		// Adversary jams this half-slot.
		disrupted := empty
		if c.Adversary != nil {
			if s := c.Adversary.Disrupt(hs, hist); s != nil {
				if s.Len() > c.T {
					panic(fmt.Sprintf("unslotted: adversary jammed %d > %d", s.Len(), c.T))
				}
				disrupted = s
			}
		}

		// Phase B: resolve the medium for this half-slot.
		for f := 1; f <= c.F; f++ {
			txCount[f] = 0
		}
		for i := range nodes {
			n := &nodes[i]
			if n.active && n.action.Transmit {
				txCount[n.action.Freq]++
				txFrom[n.action.Freq] = i
			}
		}
		for i := range nodes {
			n := &nodes[i]
			if !n.active || n.action.Transmit || n.got {
				continue
			}
			f := n.action.Freq
			if txCount[f] == 1 && !disrupted.Contains(f) && txFrom[f] != i {
				n.got = true
				n.gotMsg = nodes[txFrom[f]].action.Msg
				hist.Received[i] = true
				res.Deliveries++
			}
		}
		hist.Completed = hs

		// Check termination at even half-slots (round boundaries for
		// phase-0 nodes; close enough for bookkeeping).
		if hs%2 == 0 {
			res.Rounds = hs / 2
			if !c.RunToMax && allSynced(nodes, res) {
				finish(nodes, res)
				return res, nil
			}
		}
	}
	res.HitMaxRounds = true
	finish(nodes, res)
	return res, nil
}

// finishRound delivers the pending reception and records outputs at the
// boundary between two of the node's rounds.
func (n *nodeState) finishRound() {
	if n.agent == nil || n.local == 0 {
		return
	}
	if n.got {
		n.agent.Deliver(n.gotMsg)
		n.got = false
	}
	if out := n.agent.Output(); out.Synced && !n.synced {
		n.synced = true
		n.syncAt = n.local
	}
}

// allSynced polls outputs mid-run; a node is synced once its agent reports
// a non-⊥ output.
func allSynced(nodes []nodeState, res *Result) bool {
	for i := range nodes {
		n := &nodes[i]
		if !n.active {
			return false
		}
		if !n.synced {
			if out := n.agent.Output(); out.Synced {
				n.synced = true
				n.syncAt = n.local
			} else {
				return false
			}
		}
	}
	return true
}

// finish finalizes the result summary.
func finish(nodes []nodeState, res *Result) {
	res.AllSynced = true
	for i := range nodes {
		n := &nodes[i]
		if n.agent != nil && n.got {
			n.agent.Deliver(n.gotMsg)
			n.got = false
		}
		if n.agent != nil && !n.synced {
			if out := n.agent.Output(); out.Synced {
				n.synced = true
				n.syncAt = n.local
			}
		}
		if !n.synced {
			res.AllSynced = false
		}
		res.SyncRound[i] = n.syncAt
		if n.agent != nil {
			if lr, ok := n.agent.(sim.LeaderReporter); ok && lr.IsLeader() {
				res.Leaders++
			}
		}
	}
}
