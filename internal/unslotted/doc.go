// Package unslotted implements the slotted→unslotted transformation
// sketched in Section 8 of the paper ("Unsynchronized rounds").
//
// The paper's model assumes all nodes agree on round boundaries. In
// reality, devices' clocks are phase-shifted. The classical fix (going
// back to the ALOHA slotting argument, [1] in the paper) costs a constant
// factor: subdivide time into half-slots, let every protocol round occupy
// two consecutive half-slots of the node's local clock, and transmit each
// message in both half-slots. Any receiver's round then fully contains at
// least one half-slot of any concurrent transmission, so a message that
// would have been received in the slotted model is received here too —
// at twice the slot cost.
//
// This package provides an engine with exactly those semantics: nodes have
// arbitrary phase parities, the adversary jams up to t frequencies per
// half-slot, and unmodified sim.Agent protocols run on top. A test
// verifies that with all phases equal the engine reproduces the slotted
// semantics, and the integration tests show the Trapdoor Protocol
// synchronizing across phase-shifted nodes unchanged.
package unslotted
