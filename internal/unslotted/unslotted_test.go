package unslotted

import (
	"testing"

	"wsync/internal/adversary"
	"wsync/internal/msg"
	"wsync/internal/rng"
	"wsync/internal/sim"
	"wsync/internal/trapdoor"
)

// fixedAgent transmits (or listens) on one frequency forever and syncs on
// first reception.
type fixedAgent struct {
	freq     int
	transmit bool
	uid      uint64
	got      []msg.Message
	out      sim.Output
}

func (a *fixedAgent) Step(local uint64) sim.Action {
	if a.out.Synced {
		a.out.Value++
	}
	act := sim.Action{Freq: a.freq}
	if a.transmit {
		act.Transmit = true
		act.Msg = msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{Age: local, UID: a.uid}}
	}
	return act
}

func (a *fixedAgent) Deliver(m msg.Message) {
	a.got = append(a.got, m.Clone())
	if !a.out.Synced {
		a.out = sim.Output{Value: 1, Synced: true}
	}
}

func (a *fixedAgent) Output() sim.Output { return a.out }

// pairConfig builds sender(node 0) → receiver(node 1) on freq 2.
func pairConfig(phases func(int) int, adv sim.Adversary, t int) (*Config, []*fixedAgent) {
	agents := make([]*fixedAgent, 2)
	cfg := &Config{
		F:    4,
		T:    t,
		Seed: 1,
		N:    2,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			a := &fixedAgent{freq: 2, transmit: id == 0, uid: uint64(id)}
			agents[id] = a
			return a
		},
		Phase:     phases,
		Adversary: adv,
		MaxRounds: 10,
		RunToMax:  true,
	}
	return cfg, agents
}

func TestAlignedDelivery(t *testing.T) {
	cfg, agents := pairConfig(nil, nil, 0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One delivery per protocol round, not per half-slot.
	if len(agents[1].got) == 0 {
		t.Fatal("aligned receiver got nothing")
	}
	if res.Deliveries != uint64(len(agents[1].got)) {
		t.Fatalf("deliveries %d vs messages %d", res.Deliveries, len(agents[1].got))
	}
	if res.Deliveries > res.Rounds {
		t.Fatalf("%d deliveries in %d rounds — double-counted half-slots", res.Deliveries, res.Rounds)
	}
}

func TestPhaseShiftedDelivery(t *testing.T) {
	// Receiver shifted by one half-slot: the doubled transmission still
	// reaches it (the transformation's whole point).
	cfg, agents := pairConfig(func(i int) int { return i }, nil, 0)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(agents[1].got) == 0 {
		t.Fatal("phase-shifted receiver got nothing")
	}
}

func TestPhaseShiftedCollision(t *testing.T) {
	// Two phase-shifted senders on the same frequency: once both are up,
	// every half-slot carries both transmissions, so the listener hears
	// nothing. Only the very first half-slot (before the phase-1 sender
	// starts) can deliver.
	cfg := &Config{
		F:    4,
		Seed: 2,
		N:    3,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			if id == 2 {
				return &fixedAgent{freq: 2}
			}
			return &fixedAgent{freq: 2, transmit: true, uid: uint64(id)}
		},
		Phase:     func(i int) int { return i % 2 },
		MaxRounds: 10,
		RunToMax:  true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deliveries > 1 {
		t.Fatalf("deliveries = %d, want <= 1 (startup edge only) under constant collision", res.Deliveries)
	}
}

func TestJammingPerHalfSlot(t *testing.T) {
	cfg, agents := pairConfig(nil, adversary.NewFixed(4, []int{2}), 1)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(agents[1].got) != 0 {
		t.Fatal("delivery on a fully jammed frequency")
	}
}

func TestValidation(t *testing.T) {
	base := func() *Config {
		return &Config{
			F: 4, N: 1,
			NewAgent: func(sim.NodeID, uint64, *rng.Rand) sim.Agent { return &fixedAgent{freq: 1} },
		}
	}
	cases := []func(*Config){
		func(c *Config) { c.F = 0 },
		func(c *Config) { c.T = 4 },
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.NewAgent = nil },
		func(c *Config) { c.Phase = func(int) int { return 2 } },
		func(c *Config) { c.ActivationRound = func(int) uint64 { return 0 } },
	}
	for i, mutate := range cases {
		cfg := base()
		mutate(cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRandomPhases(t *testing.T) {
	p1 := RandomPhases(100, 5)
	p2 := RandomPhases(100, 5)
	zeros := 0
	for i := 0; i < 100; i++ {
		v := p1(i)
		if v != p2(i) {
			t.Fatal("RandomPhases not deterministic")
		}
		if v != 0 && v != 1 {
			t.Fatalf("phase %d", v)
		}
		if v == 0 {
			zeros++
		}
	}
	if zeros < 20 || zeros > 80 {
		t.Fatalf("%d/100 zero phases — not balanced", zeros)
	}
}

func TestActivationDelay(t *testing.T) {
	var locals []uint64
	cfg := &Config{
		F: 2, N: 1, Seed: 3,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return &funcAgent{fn: func(local uint64) sim.Action {
				locals = append(locals, local)
				return sim.Action{Freq: 1}
			}}
		},
		ActivationRound: func(int) uint64 { return 3 },
		MaxRounds:       5,
		RunToMax:        true,
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(locals) == 0 || locals[0] != 1 {
		t.Fatalf("locals = %v, want starting at 1 from activation round 3", locals)
	}
}

type funcAgent struct{ fn func(uint64) sim.Action }

func (a *funcAgent) Step(local uint64) sim.Action { return a.fn(local) }
func (a *funcAgent) Deliver(msg.Message)          {}
func (a *funcAgent) Output() sim.Output           { return sim.Output{} }

// TestTrapdoorSynchronizesUnslotted is the Section 8 claim: the slotted
// protocol runs unchanged on phase-shifted clocks with constant-factor
// cost.
func TestTrapdoorSynchronizesUnslotted(t *testing.T) {
	p := trapdoor.Params{N: 16, F: 6, T: 2}
	for seed := uint64(0); seed < 3; seed++ {
		cfg := &Config{
			F:    p.F,
			T:    p.T,
			Seed: seed,
			N:    4,
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				return trapdoor.MustNew(p, r)
			},
			Phase:     RandomPhases(4, seed+50),
			Adversary: adversary.NewPrefix(p.F, p.T),
			MaxRounds: 200000,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllSynced {
			t.Fatalf("seed %d: phase-shifted trapdoor did not synchronize (rounds=%d)", seed, res.Rounds)
		}
		if res.Leaders != 1 {
			t.Fatalf("seed %d: leaders = %d", seed, res.Leaders)
		}
	}
}

// TestUnslottedCostConstantFactor compares sync time against the slotted
// engine: the transformation should cost roughly 1-2x in protocol rounds
// (each round just takes two half-slots).
func TestUnslottedCostConstantFactor(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical comparison")
	}
	p := trapdoor.Params{N: 16, F: 6, T: 2}
	slotted := func(seed uint64) uint64 {
		cfg := &sim.Config{
			F: p.F, T: p.T, Seed: seed,
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				return trapdoor.MustNew(p, r)
			},
			Schedule:  sim.Simultaneous{Count: 4},
			Adversary: adversary.NewPrefix(p.F, p.T),
			MaxRounds: 200000,
		}
		res, err := sim.Run(cfg)
		if err != nil || !res.AllSynced {
			t.Fatalf("slotted run failed: %v", err)
		}
		return res.MaxSyncLocal
	}
	unslottedRounds := func(seed uint64) uint64 {
		cfg := &Config{
			F: p.F, T: p.T, Seed: seed, N: 4,
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				return trapdoor.MustNew(p, r)
			},
			Phase:     RandomPhases(4, seed+50),
			Adversary: adversary.NewPrefix(p.F, p.T),
			MaxRounds: 200000,
		}
		res, err := Run(cfg)
		if err != nil || !res.AllSynced {
			t.Fatalf("unslotted run failed: %v", err)
		}
		max := uint64(0)
		for _, s := range res.SyncRound {
			if s > max {
				max = s
			}
		}
		return max
	}
	var sTot, uTot uint64
	const trials = 5
	for seed := uint64(0); seed < trials; seed++ {
		sTot += slotted(seed)
		uTot += unslottedRounds(seed + 100)
	}
	ratio := float64(uTot) / float64(sTot)
	// Protocol rounds should be comparable; wall-clock (half-slots) is 2x.
	if ratio > 3 || ratio < 0.3 {
		t.Fatalf("unslotted/slotted protocol-round ratio = %.2f, want O(1)", ratio)
	}
}

// TestZeroPhaseMatchesSlottedEngine: with all phases zero the unslotted
// engine must reproduce the slotted engine's execution exactly — same
// agent streams, same deliveries, same local synchronization rounds.
func TestZeroPhaseMatchesSlottedEngine(t *testing.T) {
	p := trapdoor.Params{N: 16, F: 6, T: 2}
	const n = 4
	for seed := uint64(0); seed < 5; seed++ {
		slotted, err := sim.Run(&sim.Config{
			F: p.F, T: p.T, Seed: seed,
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				return trapdoor.MustNew(p, r)
			},
			Schedule:  sim.Simultaneous{Count: n},
			Adversary: adversary.NewPrefix(p.F, p.T),
			MaxRounds: 100000,
		})
		if err != nil {
			t.Fatal(err)
		}
		uns, err := Run(&Config{
			F: p.F, T: p.T, Seed: seed, N: n,
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				return trapdoor.MustNew(p, r)
			},
			Adversary: adversary.NewPrefix(p.F, p.T),
			MaxRounds: 100000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !uns.AllSynced {
			t.Fatalf("seed %d: unslotted did not sync", seed)
		}
		for i := 0; i < n; i++ {
			if want, got := slotted.SyncLocal(i), uns.SyncRound[i]; want != got {
				t.Fatalf("seed %d node %d: slotted sync at local %d, unslotted at %d",
					seed, i, want, got)
			}
		}
		if slotted.Stats.Deliveries != uns.Deliveries {
			t.Fatalf("seed %d: deliveries %d vs %d", seed, slotted.Stats.Deliveries, uns.Deliveries)
		}
	}
}
