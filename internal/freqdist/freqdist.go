package freqdist

import (
	"fmt"

	"wsync/internal/rng"
)

// Dist is a probability distribution over frequencies [1..Max()].
type Dist interface {
	// Sample draws a frequency.
	Sample(r *rng.Rand) int
	// Prob returns the probability of drawing f; zero outside the support.
	Prob(f int) float64
	// Max returns the largest frequency with nonzero probability.
	Max() int
}

// Uniform is the uniform distribution over [Lo..Hi].
type Uniform struct {
	Lo, Hi int
}

var _ Dist = Uniform{}

// NewUniform returns the uniform distribution over [lo..hi]. It panics if
// the range is empty or starts below 1.
func NewUniform(lo, hi int) Uniform {
	if lo < 1 || hi < lo {
		panic(fmt.Sprintf("freqdist: invalid uniform range [%d..%d]", lo, hi))
	}
	return Uniform{Lo: lo, Hi: hi}
}

// Sample draws a frequency uniformly from [Lo..Hi].
func (u Uniform) Sample(r *rng.Rand) int { return r.IntRange(u.Lo, u.Hi) }

// Prob returns 1/(Hi-Lo+1) inside the range and 0 outside.
func (u Uniform) Prob(f int) float64 {
	if f < u.Lo || f > u.Hi {
		return 0
	}
	return 1 / float64(u.Hi-u.Lo+1)
}

// Max returns Hi.
func (u Uniform) Max() int { return u.Hi }

// Point is the degenerate distribution concentrated on a single frequency.
// The single-frequency baseline uses it.
type Point struct {
	F int
}

var _ Dist = Point{}

// Sample returns the fixed frequency.
func (p Point) Sample(r *rng.Rand) int { return p.F }

// Prob returns 1 at the fixed frequency, 0 elsewhere.
func (p Point) Prob(f int) float64 {
	if f == p.F {
		return 1
	}
	return 0
}

// Max returns the fixed frequency.
func (p Point) Max() int { return p.F }

// Mixture draws from one of several component distributions with the given
// weights. The Good Samaritan epochs use a 50/50 mixture of a narrow and a
// wide uniform range.
type Mixture struct {
	components []Dist
	weights    []float64
	cumulative []float64
	max        int
}

var _ Dist = (*Mixture)(nil)

// NewMixture returns a mixture of the given components with the given
// weights. Weights must be positive and are normalized to sum to one. It
// panics on empty or mismatched input; these indicate programming errors in
// protocol construction, which is done once at node activation.
func NewMixture(components []Dist, weights []float64) *Mixture {
	if len(components) == 0 || len(components) != len(weights) {
		panic("freqdist: mixture needs matching non-empty components and weights")
	}
	total := 0.0
	for _, w := range weights {
		if w <= 0 {
			panic("freqdist: mixture weights must be positive")
		}
		total += w
	}
	m := &Mixture{
		components: make([]Dist, len(components)),
		weights:    make([]float64, len(weights)),
		cumulative: make([]float64, len(weights)),
	}
	copy(m.components, components)
	acc := 0.0
	for i, w := range weights {
		m.weights[i] = w / total
		acc += w / total
		m.cumulative[i] = acc
		if components[i].Max() > m.max {
			m.max = components[i].Max()
		}
	}
	m.cumulative[len(m.cumulative)-1] = 1 // guard against rounding
	return m
}

// Sample draws a component by weight, then a frequency from it.
func (m *Mixture) Sample(r *rng.Rand) int {
	x := r.Float64()
	for i, c := range m.cumulative {
		if x < c {
			return m.components[i].Sample(r)
		}
	}
	return m.components[len(m.components)-1].Sample(r)
}

// Prob returns the weighted sum of component probabilities at f.
func (m *Mixture) Prob(f int) float64 {
	p := 0.0
	for i, c := range m.components {
		p += m.weights[i] * c.Prob(f)
	}
	return p
}

// Max returns the largest frequency any component can produce.
func (m *Mixture) Max() int { return m.max }

// Special is the Good Samaritan special-round distribution over [1..F]:
// draw d uniformly from [1..L] where L = ⌈lg F⌉, then draw f uniformly from
// [1..min(2^d, F)]. Small frequencies are geometrically favored, which lets
// a special-round sender find receivers regardless of which super-epoch
// (and hence which prefix [1..2^k]) they confine themselves to.
type Special struct {
	f int
	l int
}

var _ Dist = Special{}

// NewSpecial returns the special-round distribution over [1..f]. It panics
// if f < 1.
func NewSpecial(f int) Special {
	if f < 1 {
		panic("freqdist: Special needs F >= 1")
	}
	return Special{f: f, l: CeilLog2(f)}
}

// Sample draws d ~ U[1..L], then f ~ U[1..min(2^d, F)].
func (s Special) Sample(r *rng.Rand) int {
	if s.f == 1 {
		return 1
	}
	d := r.IntRange(1, s.l)
	hi := 1 << uint(d)
	if hi > s.f {
		hi = s.f
	}
	return r.IntRange(1, hi)
}

// Prob returns the exact point probability: the average over d of the
// uniform probability on [1..min(2^d, F)] restricted to f.
func (s Special) Prob(f int) float64 {
	if f < 1 || f > s.f {
		return 0
	}
	if s.f == 1 {
		return 1
	}
	p := 0.0
	for d := 1; d <= s.l; d++ {
		hi := 1 << uint(d)
		if hi > s.f {
			hi = s.f
		}
		if f <= hi {
			p += 1 / float64(hi)
		}
	}
	return p / float64(s.l)
}

// Max returns F.
func (s Special) Max() int { return s.f }

// CeilLog2 returns ⌈log2(n)⌉ for n ≥ 1, and 0 for n ≤ 1. The protocols use
// it for epoch counts (lg N) and super-epoch counts (lg F).
func CeilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	l := 0
	v := 1
	for v < n {
		v <<= 1
		l++
	}
	return l
}

// NextPow2 returns the smallest power of two >= n, and 1 for n <= 1.
func NextPow2(n int) int {
	return 1 << uint(CeilLog2(n))
}
