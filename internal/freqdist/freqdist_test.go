package freqdist

import (
	"math"
	"testing"
	"testing/quick"

	"wsync/internal/rng"
)

// probSum sums Prob over the full support plus a margin; it should be 1.
func probSum(t *testing.T, d Dist) float64 {
	t.Helper()
	sum := 0.0
	for f := 0; f <= d.Max()+2; f++ {
		p := d.Prob(f)
		if p < 0 {
			t.Fatalf("Prob(%d) = %v < 0", f, p)
		}
		sum += p
	}
	return sum
}

// checkEmpirical draws from d and compares frequencies against Prob.
func checkEmpirical(t *testing.T, d Dist, draws int) {
	t.Helper()
	r := rng.New(12345)
	counts := make(map[int]int)
	for i := 0; i < draws; i++ {
		f := d.Sample(r)
		if f < 1 || f > d.Max() {
			t.Fatalf("Sample returned %d outside [1..%d]", f, d.Max())
		}
		counts[f]++
	}
	for f := 1; f <= d.Max(); f++ {
		want := d.Prob(f)
		got := float64(counts[f]) / float64(draws)
		// Tolerance: 5 standard deviations of the binomial proportion plus
		// a small absolute floor for near-zero cells.
		tol := 5*math.Sqrt(want*(1-want)/float64(draws)) + 0.002
		if math.Abs(got-want) > tol {
			t.Errorf("freq %d: empirical %.4f vs Prob %.4f (tol %.4f)", f, got, want, tol)
		}
	}
}

func TestUniform(t *testing.T) {
	u := NewUniform(3, 7)
	if got := probSum(t, u); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Prob sums to %v", got)
	}
	if u.Prob(2) != 0 || u.Prob(8) != 0 {
		t.Fatal("Prob nonzero outside range")
	}
	if u.Prob(5) != 0.2 {
		t.Fatalf("Prob(5) = %v, want 0.2", u.Prob(5))
	}
	if u.Max() != 7 {
		t.Fatalf("Max = %d", u.Max())
	}
	checkEmpirical(t, u, 50000)
}

func TestUniformSingleton(t *testing.T) {
	u := NewUniform(4, 4)
	r := rng.New(1)
	for i := 0; i < 50; i++ {
		if u.Sample(r) != 4 {
			t.Fatal("singleton uniform sampled wrong value")
		}
	}
	if u.Prob(4) != 1 {
		t.Fatalf("Prob(4) = %v", u.Prob(4))
	}
}

func TestUniformPanics(t *testing.T) {
	for _, c := range []struct{ lo, hi int }{{0, 5}, {3, 2}, {-1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewUniform(%d,%d) did not panic", c.lo, c.hi)
				}
			}()
			NewUniform(c.lo, c.hi)
		}()
	}
}

func TestPoint(t *testing.T) {
	p := Point{F: 3}
	if got := probSum(t, p); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Prob sums to %v", got)
	}
	if p.Sample(rng.New(1)) != 3 {
		t.Fatal("Point sampled wrong value")
	}
}

func TestMixture(t *testing.T) {
	m := NewMixture(
		[]Dist{NewUniform(1, 2), NewUniform(1, 8)},
		[]float64{1, 1},
	)
	if m.Max() != 8 {
		t.Fatalf("Max = %d", m.Max())
	}
	if got := probSum(t, m); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Prob sums to %v", got)
	}
	// f=1: 0.5*0.5 + 0.5*0.125 = 0.3125
	if got := m.Prob(1); math.Abs(got-0.3125) > 1e-12 {
		t.Fatalf("Prob(1) = %v, want 0.3125", got)
	}
	// f=5: 0.5*0 + 0.5*0.125 = 0.0625
	if got := m.Prob(5); math.Abs(got-0.0625) > 1e-12 {
		t.Fatalf("Prob(5) = %v, want 0.0625", got)
	}
	checkEmpirical(t, m, 80000)
}

func TestMixtureNormalizesWeights(t *testing.T) {
	m := NewMixture([]Dist{NewUniform(1, 1), NewUniform(2, 2)}, []float64{3, 1})
	if got := m.Prob(1); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Prob(1) = %v, want 0.75", got)
	}
}

func TestMixturePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"empty", func() { NewMixture(nil, nil) }},
		{"mismatch", func() { NewMixture([]Dist{NewUniform(1, 2)}, []float64{1, 2}) }},
		{"nonpositive", func() { NewMixture([]Dist{NewUniform(1, 2)}, []float64{0}) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: did not panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestSpecialSmallF(t *testing.T) {
	s := NewSpecial(1)
	if s.Sample(rng.New(1)) != 1 {
		t.Fatal("Special over F=1 must return 1")
	}
	if s.Prob(1) != 1 {
		t.Fatalf("Prob(1) = %v", s.Prob(1))
	}
}

func TestSpecialSumsToOne(t *testing.T) {
	for _, f := range []int{2, 3, 4, 7, 8, 16, 31, 32, 100} {
		s := NewSpecial(f)
		if got := probSum(t, s); math.Abs(got-1) > 1e-9 {
			t.Errorf("F=%d: Prob sums to %v", f, got)
		}
	}
}

func TestSpecialFavorsSmallFrequencies(t *testing.T) {
	s := NewSpecial(64)
	if s.Prob(1) <= s.Prob(32) {
		t.Fatalf("Prob(1)=%v should exceed Prob(32)=%v", s.Prob(1), s.Prob(32))
	}
	// Monotone non-increasing across doubling boundaries.
	prev := s.Prob(1)
	for _, f := range []int{2, 4, 8, 16, 32, 64} {
		p := s.Prob(f)
		if p > prev+1e-12 {
			t.Fatalf("Prob(%d)=%v exceeds Prob at previous boundary %v", f, p, prev)
		}
		prev = p
	}
}

func TestSpecialEmpirical(t *testing.T) {
	checkEmpirical(t, NewSpecial(16), 100000)
	checkEmpirical(t, NewSpecial(12), 100000) // non-power-of-two F
}

// The paper's Figure 2 closed form: for special rounds the probability of
// choosing frequency f is proportional to 2^(⌊lg(F/f)⌋+1) - 1 over 2F·lgF
// (for power-of-two F). Our derivation P[f] = (1/L)·Σ_d 1/min(2^d,F) is the
// exact version; check they agree in ordering terms: the ratio of Prob(1)
// to Prob(F) should be about 2^L - 1 ... L-dependent; at minimum, check the
// geometric decay pattern: Prob halves (approximately) at each doubling.
func TestSpecialGeometricDecay(t *testing.T) {
	s := NewSpecial(64)
	for _, f := range []int{2, 4, 8, 16, 32} {
		lo := s.Prob(f)
		hi := s.Prob(f * 2)
		if hi <= 0 || lo/hi < 1.2 {
			t.Errorf("Prob(%d)/Prob(%d) = %v, want clear decay", f, 2*f, lo/hi)
		}
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{
		-5: 0, 0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1023: 10, 1024: 10, 1025: 11,
	}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for n, want := range cases {
		if got := NextPow2(n); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: every distribution's Prob is a valid pmf over its support.
func TestQuickSpecialPMF(t *testing.T) {
	f := func(fRaw uint8) bool {
		F := int(fRaw%200) + 1
		s := NewSpecial(F)
		sum := 0.0
		for fr := 1; fr <= F; fr++ {
			p := s.Prob(fr)
			if p < 0 || p > 1 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: samples always land in [1..Max].
func TestQuickSampleInSupport(t *testing.T) {
	f := func(seed uint64, fRaw uint8) bool {
		F := int(fRaw%100) + 1
		r := rng.New(seed)
		dists := []Dist{NewSpecial(F), NewUniform(1, F)}
		for _, d := range dists {
			for i := 0; i < 20; i++ {
				v := d.Sample(r)
				if v < 1 || v > d.Max() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSpecialSample(b *testing.B) {
	s := NewSpecial(64)
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Sample(r)
	}
}
