// Package freqdist provides the frequency-selection distributions used by
// the synchronization protocols.
//
// Each distribution exposes both a sampler (used by protocol agents) and the
// exact point probability Prob(f) (used by the Theorem-4 greedy adversary
// and by tests that validate samplers against their closed forms). All
// distributions range over the 1-based frequencies [1..Max()].
package freqdist
