package core

import (
	"fmt"

	"wsync/internal/rng"
)

// Role is a node's state within a synchronization protocol.
type Role uint8

// Roles. Contender, Leader and KnockedOut appear in the Trapdoor Protocol;
// Samaritan, Passive and Fallback appear in the Good Samaritan Protocol;
// Synced is terminal in both.
const (
	RoleContender Role = iota + 1
	RoleKnockedOut
	RoleLeader
	RoleSamaritan
	RolePassive
	RoleFallback
	RoleSynced
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleContender:
		return "contender"
	case RoleKnockedOut:
		return "knocked-out"
	case RoleLeader:
		return "leader"
	case RoleSamaritan:
		return "samaritan"
	case RolePassive:
		return "passive"
	case RoleFallback:
		return "fallback"
	case RoleSynced:
		return "synced"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// UIDSpread is the c in the paper's footnote 4: identifiers are drawn
// uniformly from [1 .. UIDSpread·N²], making collisions polynomially
// unlikely.
const UIDSpread = 16

// NewUID draws a fresh unique identifier for a node in a system with at
// most n participants (footnote 4 of the paper).
func NewUID(r *rng.Rand, n int) uint64 {
	if n < 1 {
		n = 1
	}
	limit := uint64(UIDSpread) * uint64(n) * uint64(n)
	return 1 + r.Uint64()%limit
}

// OutputState implements a node's per-round output in N⊥ with the
// commit-then-increment discipline the problem demands: ⊥ until Adopt,
// then the adopted value, incrementing by exactly one per round.
//
// Protocol usage: call Tick at the top of every Step; call Adopt when a
// numbering is learned (value is the number for the current round); call
// Output after deliveries to report the round's output.
type OutputState struct {
	synced bool
	value  uint64
}

// Tick advances the output by one round. Call it exactly once at the top
// of every Step; an Adopt later in the same round overwrites the value.
func (o *OutputState) Tick() {
	if o.synced {
		o.value++
	}
}

// Adopt commits the numbering: v is the round number for the current
// round. Later Adopts simply re-align the value (used by leader heartbeats
// in the fault-tolerant extension, where the leader's scheme is already
// ours); they never revert to ⊥.
func (o *OutputState) Adopt(v uint64) {
	o.synced = true
	o.value = v
}

// Synced reports whether the node has committed (non-⊥ output).
func (o *OutputState) Synced() bool { return o.synced }

// Value returns the current round number; meaningful only when Synced.
func (o *OutputState) Value() uint64 { return o.value }
