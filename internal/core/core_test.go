package core

import (
	"strings"
	"testing"
	"testing/quick"

	"wsync/internal/rng"
)

func TestRoleString(t *testing.T) {
	cases := map[Role]string{
		RoleContender:  "contender",
		RoleKnockedOut: "knocked-out",
		RoleLeader:     "leader",
		RoleSamaritan:  "samaritan",
		RolePassive:    "passive",
		RoleFallback:   "fallback",
		RoleSynced:     "synced",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
	if !strings.HasPrefix(Role(88).String(), "role(") {
		t.Error("unknown role String malformed")
	}
}

func TestNewUIDRange(t *testing.T) {
	r := rng.New(1)
	const n = 32
	limit := uint64(UIDSpread) * n * n
	for i := 0; i < 5000; i++ {
		uid := NewUID(r, n)
		if uid < 1 || uid > limit {
			t.Fatalf("uid %d outside [1..%d]", uid, limit)
		}
	}
}

func TestNewUIDCollisionsRare(t *testing.T) {
	r := rng.New(2)
	const n = 1024
	seen := make(map[uint64]bool, n)
	collisions := 0
	for i := 0; i < n; i++ {
		uid := NewUID(r, n)
		if seen[uid] {
			collisions++
		}
		seen[uid] = true
	}
	// Expected collisions ~ n²/(2·16·n²) = 1/32; allow a couple.
	if collisions > 2 {
		t.Fatalf("%d collisions among %d UIDs", collisions, n)
	}
}

func TestNewUIDDegenerateN(t *testing.T) {
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		uid := NewUID(r, 0)
		if uid < 1 || uid > UIDSpread {
			t.Fatalf("uid %d for n=0", uid)
		}
	}
}

func TestOutputStateBottomUntilAdopt(t *testing.T) {
	var o OutputState
	for i := 0; i < 5; i++ {
		o.Tick()
		if o.Synced() {
			t.Fatal("synced before Adopt")
		}
	}
}

func TestOutputStateAdoptThenIncrement(t *testing.T) {
	var o OutputState
	o.Tick()
	o.Adopt(100) // round 1 output: 100
	if !o.Synced() || o.Value() != 100 {
		t.Fatalf("after adopt: synced=%v value=%d", o.Synced(), o.Value())
	}
	o.Tick() // round 2
	if o.Value() != 101 {
		t.Fatalf("round 2 value = %d, want 101", o.Value())
	}
	o.Tick() // round 3
	if o.Value() != 102 {
		t.Fatalf("round 3 value = %d, want 102", o.Value())
	}
}

func TestOutputStateReAdoptAligns(t *testing.T) {
	var o OutputState
	o.Tick()
	o.Adopt(50)
	o.Tick()    // 51
	o.Adopt(51) // heartbeat confirming the same scheme
	if o.Value() != 51 {
		t.Fatalf("value = %d after aligned re-adopt", o.Value())
	}
	o.Tick()
	if o.Value() != 52 {
		t.Fatalf("value = %d, want 52", o.Value())
	}
}

// Property: after Adopt(v) and k Ticks, the value is v+k and the state
// stays synced (Correctness and Synch Commit).
func TestQuickOutputProgression(t *testing.T) {
	f := func(v uint64, kRaw uint8) bool {
		if v > 1<<62 {
			v %= 1 << 62
		}
		k := uint64(kRaw)
		var o OutputState
		o.Tick()
		o.Adopt(v)
		for i := uint64(0); i < k; i++ {
			o.Tick()
			if !o.Synced() {
				return false
			}
		}
		return o.Value() == v+k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
