// Package core provides the building blocks shared by the paper's
// synchronization protocols: node roles, unique identifiers, and the
// round-number output state machine that realizes the problem's Validity,
// Synch Commit, and Correctness properties.
//
// The two protocol packages (internal/trapdoor and internal/samaritan)
// compose these pieces; they differ in how a node earns the right to decide
// the numbering (the competition), not in how numbering is represented.
package core
