package adversary

import (
	"wsync/internal/freqset"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

// None never disrupts.
type None struct{}

var _ sim.Adversary = None{}

// Disrupt returns nil, meaning no frequencies are disrupted.
func (None) Disrupt(uint64, *sim.History) *freqset.Set { return nil }

// Fixed disrupts the same set every round.
type Fixed struct {
	set *freqset.Set
}

var _ sim.Adversary = (*Fixed)(nil)

// NewFixed returns an adversary that always disrupts the given frequencies
// (each in [1..f]).
func NewFixed(f int, freqs []int) *Fixed {
	return &Fixed{set: freqset.FromSlice(f, freqs)}
}

// NewPrefix returns the weak adversary of Theorem 1: it disrupts
// frequencies 1..t in every round.
func NewPrefix(f, t int) *Fixed {
	freqs := make([]int, t)
	for i := range freqs {
		freqs[i] = i + 1
	}
	return NewFixed(f, freqs)
}

// Disrupt returns the fixed set.
func (a *Fixed) Disrupt(uint64, *sim.History) *freqset.Set { return a.set }

// Random disrupts a fresh uniform t-subset of [1..F] each round. It is an
// oblivious adversary: its choices depend only on its seed, never on the
// execution.
type Random struct {
	f, t    int
	r       *rng.Rand
	set     *freqset.Set
	scratch []int
}

var _ sim.Adversary = (*Random)(nil)

// NewRandom returns a Random adversary over [1..f] disrupting t frequencies
// per round, driven by seed.
func NewRandom(f, t int, seed uint64) *Random {
	return &Random{f: f, t: t, r: rng.New(seed), set: freqset.New(f), scratch: make([]int, 0, t)}
}

// Disrupt returns a fresh uniform t-subset. The sample buffer is reused
// across rounds, so a steady-state Disrupt performs no heap allocation.
func (a *Random) Disrupt(uint64, *sim.History) *freqset.Set {
	a.set.Clear()
	a.scratch = a.r.SampleKInto(a.f, a.t, a.scratch)
	for _, idx := range a.scratch {
		a.set.Add(idx + 1)
	}
	return a.set
}

// Sweep disrupts a window of t consecutive frequencies that slides by Step
// each round, wrapping around the band.
type Sweep struct {
	f, t, step int
	set        *freqset.Set
}

var _ sim.Adversary = (*Sweep)(nil)

// NewSweep returns a sweeping jammer over [1..f] with window t advancing by
// step each round (step defaults to 1 when <= 0).
func NewSweep(f, t, step int) *Sweep {
	if step <= 0 {
		step = 1
	}
	return &Sweep{f: f, t: t, step: step, set: freqset.New(f)}
}

// Disrupt returns the current window.
func (a *Sweep) Disrupt(round uint64, _ *sim.History) *freqset.Set {
	a.set.Clear()
	base := int((round - 1) % uint64(a.f) * uint64(a.step) % uint64(a.f))
	for i := 0; i < a.t; i++ {
		a.set.Add((base+i)%a.f + 1)
	}
	return a.set
}

// Bursty jams a random t-subset for On rounds, then is silent for Off
// rounds, repeating. It models intermittent interference.
type Bursty struct {
	inner   *Random
	on, off uint64
	empty   *freqset.Set
}

var _ sim.Adversary = (*Bursty)(nil)

// NewBursty returns a bursty jammer with the given on/off period lengths
// (each forced to >= 1).
func NewBursty(f, t int, on, off uint64, seed uint64) *Bursty {
	if on == 0 {
		on = 1
	}
	if off == 0 {
		off = 1
	}
	return &Bursty{inner: NewRandom(f, t, seed), on: on, off: off, empty: freqset.New(f)}
}

// Disrupt jams during the on-phase of each on+off cycle.
func (a *Bursty) Disrupt(round uint64, h *sim.History) *freqset.Set {
	if (round-1)%(a.on+a.off) < a.on {
		return a.inner.Disrupt(round, h)
	}
	return a.empty
}

// Reactive disrupts the t frequencies that carried the most transmissions
// in the previous round (ties broken toward lower frequencies), which is
// the strongest history-based strategy expressible without knowing the
// current round's choices. It is adaptive but legal in the model.
type Reactive struct {
	f, t int
	set  *freqset.Set
	cnt  []int
}

var _ sim.Adversary = (*Reactive)(nil)

// NewReactive returns a reactive jammer over [1..f] with budget t.
func NewReactive(f, t int) *Reactive {
	return &Reactive{f: f, t: t, set: freqset.New(f), cnt: make([]int, f+1)}
}

// Disrupt jams the t busiest frequencies of the previous round.
func (a *Reactive) Disrupt(_ uint64, h *sim.History) *freqset.Set {
	a.set.Clear()
	if h.Last == nil {
		// No history yet: jam the low prefix.
		for i := 1; i <= a.t; i++ {
			a.set.Add(i)
		}
		return a.set
	}
	for f := 1; f <= a.f; f++ {
		a.cnt[f] = 0
	}
	for _, act := range h.Last.Actions {
		if act.Transmit {
			a.cnt[act.Freq]++
		}
	}
	for k := 0; k < a.t; k++ {
		best, bestCnt := 0, -1
		for f := 1; f <= a.f; f++ {
			if !a.set.Contains(f) && a.cnt[f] > bestCnt {
				best, bestCnt = f, a.cnt[f]
			}
		}
		a.set.Add(best)
	}
	return a.set
}

// Stalker adaptively jams the frequencies where the most nodes LISTENED in
// the previous round — the legal history-based strategy that maximally
// starves receivers. It complements Reactive (which targets transmitters):
// against protocols whose listeners cluster (narrow-band phases of the
// Good Samaritan protocol), Stalker is the harsher of the two.
type Stalker struct {
	f, t int
	set  *freqset.Set
	cnt  []int
}

var _ sim.Adversary = (*Stalker)(nil)

// NewStalker returns a listener-targeting jammer over [1..f] with budget t.
func NewStalker(f, t int) *Stalker {
	return &Stalker{f: f, t: t, set: freqset.New(f), cnt: make([]int, f+1)}
}

// Disrupt jams the t most-listened-on frequencies of the previous round.
func (a *Stalker) Disrupt(_ uint64, h *sim.History) *freqset.Set {
	a.set.Clear()
	if h.Last == nil {
		for i := 1; i <= a.t; i++ {
			a.set.Add(i)
		}
		return a.set
	}
	for f := 1; f <= a.f; f++ {
		a.cnt[f] = 0
	}
	for _, act := range h.Last.Actions {
		if !act.Transmit {
			a.cnt[act.Freq]++
		}
	}
	for k := 0; k < a.t; k++ {
		best, bestCnt := 0, -1
		for f := 1; f <= a.f; f++ {
			if !a.set.Contains(f) && a.cnt[f] > bestCnt {
				best, bestCnt = f, a.cnt[f]
			}
		}
		a.set.Add(best)
	}
	return a.set
}

// LowPrefix jams frequencies 1..t' where t' may be below the budget t; it
// is the adversary used in the Good Samaritan "good execution" experiments
// (at most t' < t frequencies disrupted, and the jammed set overlaps the
// protocol's preferred low band).
type LowPrefix struct {
	set *freqset.Set
}

var _ sim.Adversary = (*LowPrefix)(nil)

// NewLowPrefix returns an adversary that always jams 1..tPrime over [1..f].
func NewLowPrefix(f, tPrime int) *LowPrefix {
	freqs := make([]int, tPrime)
	for i := range freqs {
		freqs[i] = i + 1
	}
	return &LowPrefix{set: freqset.FromSlice(f, freqs)}
}

// Disrupt returns the fixed low prefix.
func (a *LowPrefix) Disrupt(uint64, *sim.History) *freqset.Set { return a.set }
