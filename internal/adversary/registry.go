package adversary

import (
	"fmt"

	"wsync/internal/sim"
)

// New constructs an adversary by name; the CLI tools and the public API use
// it. Recognized names: "none", "fixed" (jams 1..t), "random", "sweep",
// "bursty", "reactive". The budget t is the number of frequencies jammed
// per round.
func New(name string, f, t int, seed uint64) (sim.Adversary, error) {
	if t < 0 || t >= f {
		return nil, fmt.Errorf("adversary: budget t=%d out of range for F=%d", t, f)
	}
	switch name {
	case "", "none":
		return None{}, nil
	case "fixed", "prefix":
		return NewPrefix(f, t), nil
	case "random":
		return NewRandom(f, t, seed), nil
	case "sweep":
		return NewSweep(f, t, 1), nil
	case "bursty":
		return NewBursty(f, t, 16, 16, seed), nil
	case "reactive":
		return NewReactive(f, t), nil
	case "stalker":
		return NewStalker(f, t), nil
	default:
		return nil, fmt.Errorf("adversary: unknown adversary %q", name)
	}
}

// Names lists the adversaries New recognizes.
func Names() []string {
	return []string{"none", "fixed", "random", "sweep", "bursty", "reactive", "stalker"}
}
