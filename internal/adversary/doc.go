// Package adversary implements interference adversaries for the disrupted
// radio network model.
//
// The model grants the adversary up to t disrupted frequencies per round,
// chosen with knowledge of the protocol and of the execution through the
// previous round (Section 2). This package provides the adversaries used by
// the paper's arguments and by the experiments:
//
//   - None: no disruption (a baseline sanity adversary).
//   - Fixed: a static set, e.g. frequencies 1..t — the "weak adversary" of
//     the Theorem 1 lower bound.
//   - Random: a fresh uniform t-subset each round; oblivious, as required
//     by the Good Samaritan analysis.
//   - Sweep: a sliding window of t consecutive frequencies, a classic
//     scanning jammer.
//   - Bursty: alternates jamming and silence, modeling intermittent
//     interference (microwave ovens, co-located protocols).
//   - Reactive: adaptively jams the frequencies that carried the most
//     transmissions in the previous round — legal in the model because it
//     only uses completed history.
//   - LowPrefix: jams the t' lowest frequencies; the natural worst case
//     for the Good Samaritan protocol's low-frequency optimism.
//
// All adversaries are deterministic given their construction parameters
// (Random and Bursty take explicit seeds), keeping simulations reproducible.
package adversary
