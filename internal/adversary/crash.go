package adversary

import (
	"wsync/internal/msg"
	"wsync/internal/sim"
)

// CrashAgent wraps a protocol agent and kills it at a scheduled local
// round, modeling the crash faults discussed in Section 8. A crashed node
// stops transmitting and stops updating its output (it parks listening on
// frequency 1 and reports ⊥), which is indistinguishable on the medium from
// the node leaving.
type CrashAgent struct {
	// Inner is the wrapped protocol instance.
	Inner sim.Agent
	// CrashAt is the local round at the start of which the node dies; 0
	// means never.
	CrashAt uint64

	crashed bool
}

var _ sim.Agent = (*CrashAgent)(nil)

// Step forwards to the inner agent until the crash round.
func (c *CrashAgent) Step(local uint64) sim.Action {
	if c.CrashAt != 0 && local >= c.CrashAt {
		c.crashed = true
	}
	if c.crashed {
		return sim.Action{Freq: 1}
	}
	return c.Inner.Step(local)
}

// Deliver forwards to the inner agent unless crashed.
func (c *CrashAgent) Deliver(m msg.Message) {
	if !c.crashed {
		c.Inner.Deliver(m)
	}
}

// Output reports ⊥ once crashed; a dead node produces no outputs.
func (c *CrashAgent) Output() sim.Output {
	if c.crashed {
		return sim.Output{}
	}
	return c.Inner.Output()
}

// Crashed reports whether the node has crashed.
func (c *CrashAgent) Crashed() bool { return c.crashed }

// IsLeader forwards leader reporting for uncrashed nodes so experiment
// accounting ignores dead leaders.
func (c *CrashAgent) IsLeader() bool {
	if c.crashed {
		return false
	}
	if lr, ok := c.Inner.(sim.LeaderReporter); ok {
		return lr.IsLeader()
	}
	return false
}

// BroadcastProb forwards weight probing; crashed nodes have weight zero.
func (c *CrashAgent) BroadcastProb() float64 {
	if c.crashed {
		return 0
	}
	if bp, ok := c.Inner.(sim.BroadcastProber); ok {
		return bp.BroadcastProb()
	}
	return 0
}
