package adversary

import (
	"testing"

	"wsync/internal/msg"
	"wsync/internal/rng"
	"wsync/internal/sim"
	"wsync/internal/trapdoor"
)

func TestNone(t *testing.T) {
	if got := (None{}).Disrupt(1, nil); got != nil {
		t.Fatalf("None disrupted %v", got)
	}
}

func TestPrefix(t *testing.T) {
	a := NewPrefix(8, 3)
	s := a.Disrupt(1, nil)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	for f := 1; f <= 3; f++ {
		if !s.Contains(f) {
			t.Fatalf("prefix missing %d", f)
		}
	}
	if s.Contains(4) {
		t.Fatal("prefix contains 4")
	}
	// Same set every round.
	if !a.Disrupt(99, nil).Equal(s) {
		t.Fatal("prefix varies across rounds")
	}
}

// TestRandomDisruptAllocs pins the reused sample buffer: after the first
// draw, Disrupt performs no heap allocation. Random sits inside the
// engines' zero-alloc round loop (TestSteadyStateAllocs in internal/sim
// and internal/multihop), so a regression here breaks that contract too.
func TestRandomDisruptAllocs(t *testing.T) {
	a := NewRandom(16, 4, 7)
	r := uint64(0)
	a.Disrupt(1, nil)
	allocs := testing.AllocsPerRun(100, func() {
		r++
		a.Disrupt(r, nil)
	})
	if allocs != 0 {
		t.Fatalf("Disrupt allocates %.1f objects per round, want 0", allocs)
	}
}

func TestPrefixZero(t *testing.T) {
	if got := NewPrefix(8, 0).Disrupt(1, nil).Len(); got != 0 {
		t.Fatalf("empty prefix has Len %d", got)
	}
}

func TestRandom(t *testing.T) {
	a := NewRandom(16, 4, 7)
	seen := make(map[string]bool)
	for r := uint64(1); r <= 50; r++ {
		s := a.Disrupt(r, nil)
		if s.Len() != 4 {
			t.Fatalf("round %d: Len = %d, want 4", r, s.Len())
		}
		for _, f := range s.Slice() {
			if f < 1 || f > 16 {
				t.Fatalf("round %d: frequency %d out of range", r, f)
			}
		}
		seen[s.String()] = true
	}
	if len(seen) < 10 {
		t.Fatalf("random adversary produced only %d distinct sets in 50 rounds", len(seen))
	}
	// Determinism by seed.
	b1, b2 := NewRandom(16, 4, 9), NewRandom(16, 4, 9)
	for r := uint64(1); r <= 20; r++ {
		if !b1.Disrupt(r, nil).Equal(b2.Disrupt(r, nil)) {
			t.Fatal("random adversary not deterministic by seed")
		}
	}
}

func TestSweep(t *testing.T) {
	a := NewSweep(6, 2, 1)
	s1 := a.Disrupt(1, nil)
	if !s1.Contains(1) || !s1.Contains(2) || s1.Len() != 2 {
		t.Fatalf("round 1 window = %v", s1.Slice())
	}
	s2 := a.Disrupt(2, nil)
	if !s2.Contains(2) || !s2.Contains(3) {
		t.Fatalf("round 2 window = %v", s2.Slice())
	}
	// Wraps around the band.
	s6 := a.Disrupt(6, nil)
	if !s6.Contains(6) || !s6.Contains(1) {
		t.Fatalf("round 6 window = %v", s6.Slice())
	}
}

func TestBursty(t *testing.T) {
	a := NewBursty(8, 2, 3, 2, 1)
	for r := uint64(1); r <= 10; r++ {
		s := a.Disrupt(r, nil)
		inOn := (r-1)%5 < 3
		if inOn && s.Len() != 2 {
			t.Fatalf("round %d: expected jamming, got %v", r, s.Slice())
		}
		if !inOn && s.Len() != 0 {
			t.Fatalf("round %d: expected silence, got %v", r, s.Slice())
		}
	}
}

func TestReactive(t *testing.T) {
	a := NewReactive(6, 2)
	// No history: jams the low prefix.
	s := a.Disrupt(1, &sim.History{F: 6})
	if !s.Contains(1) || !s.Contains(2) {
		t.Fatalf("initial reactive set = %v", s.Slice())
	}
	// With history: jams the busiest previous-round frequencies.
	h := &sim.History{
		F: 6,
		Last: &sim.RoundRecord{
			Actions: []sim.ActionRecord{
				{Node: 0, Freq: 5, Transmit: true},
				{Node: 1, Freq: 5, Transmit: true},
				{Node: 2, Freq: 3, Transmit: true},
				{Node: 3, Freq: 2, Transmit: false},
			},
		},
	}
	s = a.Disrupt(2, h)
	if !s.Contains(5) || !s.Contains(3) {
		t.Fatalf("reactive set = %v, want {3, 5}", s.Slice())
	}
}

func TestLowPrefix(t *testing.T) {
	a := NewLowPrefix(16, 3)
	s := a.Disrupt(4, nil)
	if s.Len() != 3 || !s.Contains(1) || !s.Contains(3) || s.Contains(4) {
		t.Fatalf("low prefix = %v", s.Slice())
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		a, err := New(name, 8, 2, 1)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		s := a.Disrupt(1, &sim.History{F: 8})
		if s != nil && s.Len() > 2 {
			t.Errorf("New(%q) exceeded budget: %v", name, s.Slice())
		}
	}
	if _, err := New("nosuch", 8, 2, 1); err == nil {
		t.Error("unknown adversary accepted")
	}
	if _, err := New("fixed", 8, 8, 1); err == nil {
		t.Error("t >= F accepted")
	}
	if _, err := New("", 8, 0, 1); err != nil {
		t.Errorf("empty name should mean none: %v", err)
	}
}

// stubAgent counts interactions for the crash wrapper test.
type stubAgent struct {
	steps, delivers int
	leader          bool
}

func (s *stubAgent) Step(local uint64) sim.Action {
	s.steps++
	return sim.Action{Freq: 2, Transmit: true}
}
func (s *stubAgent) Deliver(msg.Message)    { s.delivers++ }
func (s *stubAgent) Output() sim.Output     { return sim.Output{Value: 9, Synced: true} }
func (s *stubAgent) IsLeader() bool         { return s.leader }
func (s *stubAgent) BroadcastProb() float64 { return 0.5 }

func TestCrashAgent(t *testing.T) {
	inner := &stubAgent{leader: true}
	c := &CrashAgent{Inner: inner, CrashAt: 3}

	a := c.Step(1)
	if !a.Transmit || inner.steps != 1 {
		t.Fatal("pre-crash Step not forwarded")
	}
	c.Deliver(msg.Message{})
	if inner.delivers != 1 {
		t.Fatal("pre-crash Deliver not forwarded")
	}
	if out := c.Output(); !out.Synced || out.Value != 9 {
		t.Fatal("pre-crash Output not forwarded")
	}
	if !c.IsLeader() || c.BroadcastProb() != 0.5 {
		t.Fatal("pre-crash reporting not forwarded")
	}

	_ = c.Step(2)
	a = c.Step(3) // crash
	if a.Transmit {
		t.Fatal("crashed node transmitted")
	}
	if !c.Crashed() {
		t.Fatal("Crashed() false after crash round")
	}
	c.Deliver(msg.Message{})
	if inner.delivers != 1 {
		t.Fatal("post-crash Deliver forwarded")
	}
	if out := c.Output(); out.Synced {
		t.Fatal("crashed node produced output")
	}
	if c.IsLeader() || c.BroadcastProb() != 0 {
		t.Fatal("crashed node still reports leadership/weight")
	}
	if inner.steps != 2 {
		t.Fatalf("inner steps = %d, want 2", inner.steps)
	}
}

func TestCrashAgentNeverCrashes(t *testing.T) {
	inner := &stubAgent{}
	c := &CrashAgent{Inner: inner}
	for r := uint64(1); r <= 100; r++ {
		_ = c.Step(r)
	}
	if c.Crashed() {
		t.Fatal("CrashAt=0 agent crashed")
	}
	if inner.steps != 100 {
		t.Fatalf("inner steps = %d", inner.steps)
	}
}

func TestStalker(t *testing.T) {
	a := NewStalker(6, 2)
	// No history: low prefix.
	s := a.Disrupt(1, &sim.History{F: 6})
	if !s.Contains(1) || !s.Contains(2) {
		t.Fatalf("initial stalker set = %v", s.Slice())
	}
	// With history: jams where the listeners were.
	h := &sim.History{
		F: 6,
		Last: &sim.RoundRecord{
			Actions: []sim.ActionRecord{
				{Node: 0, Freq: 4, Transmit: false},
				{Node: 1, Freq: 4, Transmit: false},
				{Node: 2, Freq: 6, Transmit: false},
				{Node: 3, Freq: 2, Transmit: true}, // transmitter: ignored
			},
		},
	}
	s = a.Disrupt(2, h)
	if !s.Contains(4) || !s.Contains(6) {
		t.Fatalf("stalker set = %v, want {4, 6}", s.Slice())
	}
	if s.Contains(2) {
		t.Fatal("stalker jammed a transmitter-only frequency")
	}
}

// TestStalkerDoesNotPreventSync: even the listener-targeting jammer cannot
// stop the Trapdoor Protocol (its budget is still t < F).
func TestStalkerDoesNotPreventSync(t *testing.T) {
	p := trapdoor.Params{N: 16, F: 8, T: 3}
	cfg := &sim.Config{
		F:    p.F,
		T:    p.T,
		Seed: 8,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return trapdoor.MustNew(p, r)
		},
		Schedule:  sim.Simultaneous{Count: 4},
		Adversary: NewStalker(p.F, p.T),
		MaxRounds: 1 << 21,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSynced {
		t.Fatalf("stalker prevented synchronization (%d rounds)", res.Stats.Rounds)
	}
}
