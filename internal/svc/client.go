package svc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"wsync/internal/shard"
)

// Client speaks the wsyncd wire protocol. The zero HTTP field uses
// http.DefaultClient.
type Client struct {
	Base string // server base URL, e.g. http://127.0.0.1:8080
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// call POSTs (or GETs, when in is nil and method says so) one JSON
// round trip, decoding the response into out. Non-2xx responses become
// errors carrying the server's message.
func (c *Client) call(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("svc: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, strings.TrimSuffix(c.Base, "/")+path, body)
	if err != nil {
		return fmt.Errorf("svc: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("svc: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("svc: %s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(msg)))
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("svc: decoding %s response: %w", path, err)
	}
	return nil
}

// Submit submits a sweep and returns its job id.
func (c *Client) Submit(req SubmitRequest) (*SubmitResponse, error) {
	var out SubmitResponse
	if err := c.call(http.MethodPost, "/v1/jobs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Status fetches a job's state (including the merged report once done).
func (c *Client) Status(jobID string) (*JobStatus, error) {
	var out JobStatus
	if err := c.call(http.MethodGet, "/v1/jobs/"+jobID, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Poll registers worker and asks for an assignment; nil means no work.
func (c *Client) Poll(worker string) (*Assignment, error) {
	var out PollResponse
	if err := c.call(http.MethodPost, "/v1/poll", PollRequest{Worker: worker}, &out); err != nil {
		return nil, err
	}
	return out.Assignment, nil
}

// Push returns completed entries and reports the job's state after.
func (c *Client) Push(worker, jobID string, entries []shard.Entry) (string, error) {
	var out PushResponse
	err := c.call(http.MethodPost, "/v1/push", PushRequest{Worker: worker, JobID: jobID, Entries: entries}, &out)
	if err != nil {
		return "", err
	}
	return out.State, nil
}
