package svc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"wsync/internal/shard"
)

// Client speaks the wsyncd wire protocol. The zero HTTP field uses
// http.DefaultClient.
type Client struct {
	Base string // server base URL, e.g. http://127.0.0.1:8080
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// call POSTs (or GETs, when in is nil and method says so) one JSON
// round trip, decoding the response into out. Non-2xx responses become
// errors carrying the server's message.
func (c *Client) call(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("svc: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, strings.TrimSuffix(c.Base, "/")+path, body)
	if err != nil {
		return fmt.Errorf("svc: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("svc: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return statusError(method, path, resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("svc: decoding %s response: %w", path, err)
	}
	return nil
}

// Submit submits a sweep and returns its job id.
func (c *Client) Submit(req SubmitRequest) (*SubmitResponse, error) {
	var out SubmitResponse
	if err := c.call(http.MethodPost, "/v1/jobs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Status fetches a job's state (including the merged report once done).
func (c *Client) Status(jobID string) (*JobStatus, error) {
	var out JobStatus
	if err := c.call(http.MethodGet, "/v1/jobs/"+jobID, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Poll registers worker and asks for an assignment; nil means no work.
func (c *Client) Poll(worker string) (*Assignment, error) {
	var out PollResponse
	if err := c.call(http.MethodPost, "/v1/poll", PollRequest{Worker: worker}, &out); err != nil {
		return nil, err
	}
	return out.Assignment, nil
}

// Push returns completed entries and reports the job's state after.
func (c *Client) Push(worker, jobID string, entries []shard.Entry) (string, error) {
	var out PushResponse
	err := c.call(http.MethodPost, "/v1/push", PushRequest{Worker: worker, JobID: jobID, Entries: entries}, &out)
	if err != nil {
		return "", err
	}
	return out.State, nil
}

// APIError is a non-2xx server answer, distinguishable from transport
// failures so callers can tell "the server said no" (permanent) from
// "the server is unreachable" (retry).
type APIError struct {
	StatusCode int
	Method     string
	Path       string
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("svc: %s %s: %d: %s", e.Method, e.Path, e.StatusCode, e.Message)
}

func statusError(method, path string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return &APIError{
		StatusCode: resp.StatusCode,
		Method:     method,
		Path:       path,
		Message:    strings.TrimSpace(string(msg)),
	}
}

// permanentErr reports whether err is a server verdict no retry can
// change (any 4xx — unknown job, bad cursor).
func permanentErr(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode/100 == 4
}

// errStreamTruncated marks an SSE stream that ended before the job's
// terminal event — a server drain or connection loss, worth a retry.
var errStreamTruncated = errors.New("svc: event stream ended before a terminal event")

// Events follows a job's SSE event stream, invoking fn for each event
// in order, starting after the given cursor. It returns nil once a
// terminal event (state done or failed) has been delivered, ctx.Err()
// on cancellation, errStreamTruncated if the server ended the stream
// early (drain), or a transport/API error. Callers wanting automatic
// fallback use Watch instead.
func (c *Client) Events(ctx context.Context, jobID string, after int, fn func(JobEvent)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(c.Base, "/")+"/v1/jobs/"+jobID+"/events?after="+strconv.Itoa(after), nil)
	if err != nil {
		return fmt.Errorf("svc: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("svc: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return statusError(http.MethodGet, "/v1/jobs/"+jobID+"/events", resp)
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/event-stream") {
		// A server predating the events endpoint (or a proxy rewriting it)
		// answered with JSON; treat as truncation so Watch falls back.
		return errStreamTruncated
	}
	terminal := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		case line == "":
			if len(data) == 0 {
				continue
			}
			var ev JobEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				return fmt.Errorf("svc: decoding event: %w", err)
			}
			data = data[:0]
			fn(ev)
			if ev.State != StateRunning {
				terminal = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("svc: reading event stream: %w", err)
	}
	if terminal {
		return nil
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return errStreamTruncated
}

// EventsLongPoll fetches the events after the cursor, letting the
// server hold the request up to wait when none are pending yet.
func (c *Client) EventsLongPoll(ctx context.Context, jobID string, after int, wait time.Duration) ([]JobEvent, error) {
	q := url.Values{}
	q.Set("after", strconv.Itoa(after))
	q.Set("wait", wait.String())
	path := "/v1/jobs/" + jobID + "/events"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(c.Base, "/")+path+"?"+q.Encode(), nil)
	if err != nil {
		return nil, fmt.Errorf("svc: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("svc: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, statusError(http.MethodGet, path, resp)
	}
	var out EventsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("svc: decoding %s response: %w", path, err)
	}
	return out.Events, nil
}

// Watch follows a job to its terminal state, invoking fn for every
// event exactly once, in sequence order. It prefers the SSE stream and
// falls back to long-polling when streaming fails, retrying transport
// errors with jittered exponential backoff; the ?after cursor makes the
// switchover seamless. Returns nil after a terminal event, ctx.Err()
// on cancellation, or the first permanent (4xx) error.
func (c *Client) Watch(ctx context.Context, jobID string, fn func(JobEvent)) error {
	after := 0
	terminal := false
	deliver := func(ev JobEvent) {
		if ev.Seq <= after {
			return
		}
		after = ev.Seq
		if ev.State != StateRunning {
			terminal = true
		}
		fn(ev)
	}
	backoff := Backoff{Base: 200 * time.Millisecond, Max: 5 * time.Second}
	sseBroken := false
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var err error
		if !sseBroken {
			err = c.Events(ctx, jobID, after, deliver)
			if err == nil {
				return nil
			}
			if errors.Is(err, errStreamTruncated) {
				// The stream worked but ended early (server drain): retry
				// streaming rather than downgrading to polling.
				if terminal {
					return nil
				}
			} else {
				sseBroken = true
			}
		} else {
			var evs []JobEvent
			evs, err = c.EventsLongPoll(ctx, jobID, after, 25*time.Second)
			if err == nil {
				for _, ev := range evs {
					deliver(ev)
				}
				if terminal {
					return nil
				}
				backoff.Reset()
				continue
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if permanentErr(err) {
			return err
		}
		t := time.NewTimer(backoff.Next())
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}
