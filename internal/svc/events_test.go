package svc_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"wsync/internal/svc"
)

// TestEventStreamEndToEnd is the SSE acceptance path: a watched job
// emits its transitions in order — "submitted" first, a terminal "done"
// last, sequence numbers strictly increasing — and the terminal event
// agrees with what GET /v1/jobs/{id} reports.
func TestEventStreamEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	_, client := startServer(t, svc.Options{Log: testLogger(t)})
	startWorker(t, client, "w1")

	sub, err := client.Submit(svc.SubmitRequest{Seed: 11, Trials: 1, Quick: true, Run: []string{"F1", "L2"}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	var events []svc.JobEvent
	if err := client.Watch(ctx, sub.JobID, func(ev svc.JobEvent) {
		events = append(events, ev)
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("watch returned without delivering any events")
	}
	if events[0].Kind != svc.EventSubmitted {
		t.Errorf("first event kind = %q, want %q", events[0].Kind, svc.EventSubmitted)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("event sequence not increasing: %d after %d", events[i].Seq, events[i-1].Seq)
		}
	}
	last := events[len(events)-1]
	if last.Kind != svc.EventDone || last.State != svc.StateDone {
		t.Fatalf("terminal event = %+v, want kind done", last)
	}
	for _, ev := range events[:len(events)-1] {
		if ev.State != svc.StateRunning {
			t.Fatalf("non-terminal event %+v carries terminal state", ev)
		}
	}
	st, err := client.Status(sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != last.State || st.Done != last.Done || st.Total != last.Total || st.Retries != last.Retries {
		t.Errorf("terminal event %+v disagrees with status %+v", last, st)
	}
}

// TestEventsLongPoll pins the fallback transport: the ?after cursor
// dedups, a satisfied cursor blocks until the wait elapses, and a
// cached (instantly terminal) job delivers submitted+done in one round.
func TestEventsLongPoll(t *testing.T) {
	_, client := startServer(t, svc.Options{})
	sub, err := client.Submit(svc.SubmitRequest{Seed: 21, Trials: 1, Quick: true, Run: []string{"F1"}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	evs, err := client.EventsLongPoll(ctx, sub.JobID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != svc.EventSubmitted || evs[0].Seq != 1 {
		t.Fatalf("after=0 events = %+v, want one submitted event with seq 1", evs)
	}

	// Cursor at the tip: nothing arrives, the wait elapses, empty answer.
	start := time.Now()
	evs, err = client.EventsLongPoll(ctx, sub.JobID, 1, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 0 {
		t.Fatalf("tip cursor returned events: %+v", evs)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Error("long poll returned before the wait elapsed")
	}

	if _, err := client.EventsLongPoll(ctx, "nope", 0, 0); err == nil || !strings.Contains(err.Error(), "no such job") {
		t.Errorf("unknown job err = %v", err)
	}
}

// TestWatchUnknownJobIsPermanent pins that Watch fails fast on a 404
// instead of retrying forever.
func TestWatchUnknownJobIsPermanent(t *testing.T) {
	_, client := startServer(t, svc.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := client.Watch(ctx, "nope", func(svc.JobEvent) {})
	if err == nil || ctx.Err() != nil {
		t.Fatalf("watch err = %v (ctx %v), want a prompt 404", err, ctx.Err())
	}
	if !strings.Contains(err.Error(), "404") {
		t.Errorf("err %v does not carry the status", err)
	}
}

// TestHealthzDraining pins the drain protocol: 200 ok before, 503 with
// a "draining" JSON body after BeginDrain, and open event streams end
// so a graceful shutdown is not held hostage by a subscriber.
func TestHealthzDraining(t *testing.T) {
	s, client := startServer(t, svc.Options{})

	get := func() (int, svc.Health) {
		t.Helper()
		resp, err := http.Get(client.Base + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h svc.Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	if code, h := get(); code != http.StatusOK || h.Status != svc.HealthOK {
		t.Fatalf("healthz before drain = %d %+v, want 200 ok", code, h)
	}

	// A live SSE subscriber on a running job.
	sub, err := client.Submit(svc.SubmitRequest{Seed: 31, Trials: 1, Quick: true, Run: []string{"F1"}})
	if err != nil {
		t.Fatal(err)
	}
	streamDone := make(chan error, 1)
	go func() {
		streamDone <- client.Events(context.Background(), sub.JobID, 0, func(svc.JobEvent) {})
	}()
	// Give the stream a moment to attach before draining.
	time.Sleep(50 * time.Millisecond)

	s.BeginDrain()
	if code, h := get(); code != http.StatusServiceUnavailable || h.Status != svc.HealthDraining {
		t.Fatalf("healthz after drain = %d %+v, want 503 draining", code, h)
	}
	select {
	case err := <-streamDone:
		if err == nil {
			t.Error("stream on a running job ended nil; want a truncation error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream did not end after BeginDrain")
	}
}

// TestMetricsEndpoint pins that the server's registry is mounted on the
// job mux and counts submissions without any worker involvement.
func TestMetricsEndpoint(t *testing.T) {
	_, client := startServer(t, svc.Options{})
	if _, err := client.Submit(svc.SubmitRequest{Seed: 41, Trials: 1, Quick: true, Run: []string{"F1"}}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(client.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"wsync_jobs_submitted_total 1",
		"wsync_jobs_running 1",
		"wsync_cache_misses_total 1",
		"# TYPE wsync_push_latency_seconds histogram",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}
