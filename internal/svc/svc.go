// Package svc implements the wsyncd job service: an HTTP/JSON control
// plane that serves benchmark sweeps over the sharding machinery in
// internal/shard.
//
// A client submits a sweep (seed, trials, tier, experiment selection)
// and gets a job id; workers register by polling, receive experiment
// assignments carved from the pending pool with shard.Replan, run them
// through internal/harness, and push back per-experiment entries. The
// server folds entries into the job and, when the selection is covered,
// assembles the final wsync-bench/v1 report through shard.Merge — so a
// served sweep is byte-identical (after ZeroVolatile) to the report an
// unsharded `wexp -json` run would emit.
//
// Three properties make the service always-on rather than a one-shot
// dispatcher:
//
//   - Retry/re-plan: a worker that misses its heartbeat deadline has its
//     unfinished experiments returned to the pending pool with
//     exponential backoff and re-planned across the surviving workers;
//     a bounded number of attempts per experiment turns a persistent
//     failure into a failed job with a diagnostic instead of a hang.
//   - Content-addressed result cache: every completed entry is stored
//     under shard.CacheKey(schema, seed, point key, trials); a
//     resubmitted sweep is served from cache without touching a worker,
//     and overlapping sweeps share work at experiment granularity.
//   - Cost feedback: each entry's elapsed_ms updates the server's cost
//     table, so later plans balance partitions by observed wall time —
//     the `-plan-costs` loop, closed automatically.
//
// The wire protocol (all request and response bodies are JSON) is:
//
//	POST /v1/jobs                SubmitRequest  -> SubmitResponse
//	GET  /v1/jobs/{id}                          -> JobStatus
//	GET  /v1/jobs/{id}/events                   -> SSE stream or EventsResponse
//	POST /v1/poll                PollRequest    -> PollResponse
//	POST /v1/push                PushRequest    -> PushResponse
//	GET  /v1/healthz                            -> Health (503 while draining)
//	GET  /metrics                               -> Prometheus text exposition
//
// The events endpoint streams job-state transitions: Server-Sent Events
// when the client sends Accept: text/event-stream, a long-poll JSON
// round otherwise, both resumable through the ?after=<seq> cursor.
// docs/BENCH_FORMAT.md ("The wsyncd job service") is the job-protocol
// spec; docs/OBSERVABILITY.md covers metrics, logs, and the event wire
// format.
package svc

import "wsync/internal/shard"

// SubmitRequest describes one sweep: the identity tuple of the
// determinism contract. Run is the experiment selection in catalogue
// order terms (empty means the full catalogue); unknown ids are
// rejected at submit time.
type SubmitRequest struct {
	Seed   uint64   `json:"seed"`
	Trials int      `json:"trials"`
	Quick  bool     `json:"quick"`
	Full   bool     `json:"full"`
	Run    []string `json:"run,omitempty"`
}

// SubmitResponse acknowledges a job. Cached counts the experiments
// served immediately from the content-addressed cache; when Cached ==
// Total the job is already done and no worker will be involved.
type SubmitResponse struct {
	JobID  string `json:"job_id"`
	Total  int    `json:"total"`
	Cached int    `json:"cached"`
}

// Job states reported by JobStatus.
const (
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobStatus is the polling view of a job. Report is present only in
// state "done"; Error only in state "failed". Retries counts experiment
// re-plans caused by workers missing their heartbeat deadline.
type JobStatus struct {
	JobID   string        `json:"job_id"`
	State   string        `json:"state"`
	Total   int           `json:"total"`
	Done    int           `json:"done"`
	Cached  int           `json:"cached"`
	Retries int           `json:"retries"`
	Error   string        `json:"error,omitempty"`
	Report  *shard.Report `json:"report,omitempty"`
}

// PollRequest registers (or heartbeats) a worker and asks for work.
type PollRequest struct {
	Worker string `json:"worker"`
}

// Assignment is one unit of work: run IDs under the job's sweep options
// and push the entries back. The id list is a shard.Replan slice of the
// job's pending pool — roughly 1/live-workers of it by estimated cost.
type Assignment struct {
	JobID  string   `json:"job_id"`
	IDs    []string `json:"ids"`
	Seed   uint64   `json:"seed"`
	Trials int      `json:"trials"`
	Quick  bool     `json:"quick"`
	Full   bool     `json:"full"`
}

// PollResponse carries an assignment, or nothing when no work is ready
// (the worker sleeps one poll interval and asks again).
type PollResponse struct {
	Assignment *Assignment `json:"assignment,omitempty"`
}

// PushRequest returns completed entries for a job. Entries from a
// worker the server had presumed dead are accepted and collapse against
// the re-planned copies when identical — determinism makes duplicates
// harmless; a conflicting duplicate fails the job loudly instead.
type PushRequest struct {
	Worker  string        `json:"worker"`
	JobID   string        `json:"job_id"`
	Entries []shard.Entry `json:"entries"`
}

// PushResponse reports the job state after folding the pushed entries,
// so a worker learns immediately when its job finished or failed.
type PushResponse struct {
	State string `json:"state"`
}

// Event kinds carried by JobEvent.Kind, in the order a healthy job
// emits them: submitted, zero or more progress/replan, then exactly one
// of done or failed.
const (
	EventSubmitted = "submitted"
	EventProgress  = "progress"
	EventReplan    = "replan"
	EventDone      = "done"
	EventFailed    = "failed"
)

// JobEvent is one entry in a job's transition log, served by
// GET /v1/jobs/{id}/events. Seq is 1-based and strictly increasing per
// job; passing the last seen Seq as ?after resumes the stream without
// duplicates. Events deliberately omit the report — at a terminal event
// the client fetches it once via GET /v1/jobs/{id}.
type JobEvent struct {
	Seq     int    `json:"seq"`
	Kind    string `json:"kind"`
	JobID   string `json:"job_id"`
	State   string `json:"state"`
	Done    int    `json:"done"`
	Total   int    `json:"total"`
	Cached  int    `json:"cached"`
	Retries int    `json:"retries"`
	Error   string `json:"error,omitempty"`
}

// EventsResponse is the long-poll form of the events endpoint: all
// events after the cursor, possibly empty if the wait elapsed first.
type EventsResponse struct {
	Events []JobEvent `json:"events"`
}

// Health statuses reported by GET /v1/healthz.
const (
	HealthOK       = "ok"
	HealthDraining = "draining"
)

// Health is the healthz body. Status "draining" rides a 503 so plain
// HTTP health checks fail the instance while the body tells humans (and
// the daemon-smoke script) that it is finishing, not crashed.
type Health struct {
	Status string `json:"status"`
}
