package svc_test

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"

	"wsync/internal/harness"
	"wsync/internal/shard"
	"wsync/internal/svc"

	"net/http/httptest"
)

// testLogger adapts t.Logf into a slog.Logger so service logs land in
// the test output.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testWriter{t}, nil))
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// startServer builds a Server plus its httptest front end and returns a
// client. Cleanup stops both.
func startServer(t *testing.T, opts svc.Options) (*svc.Server, *svc.Client) {
	t.Helper()
	s := svc.NewServer(opts)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, &svc.Client{Base: hs.URL}
}

// startWorker runs one RunWorker goroutine; cleanup cancels and joins
// it, so no worker outlives its test (the node-round counters the
// entries derive from are process-global, and a stray worker computing
// concurrently with a direct run would corrupt both).
func startWorker(t *testing.T, client *svc.Client, name string) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- svc.RunWorker(ctx, svc.WorkerOptions{
			Server:       client.Base,
			Name:         name,
			PollInterval: 10 * time.Millisecond,
			Parallelism:  1,
			Log:          testLogger(t),
		})
	}()
	var once bool
	stop = func() {
		if once {
			return
		}
		once = true
		cancel()
		if err := <-done; err != nil {
			t.Errorf("worker %s: %v", name, err)
		}
	}
	t.Cleanup(stop)
	return stop
}

// directReport computes the report an unsharded `wexp -json` run of the
// same sweep would produce (volatile fields aside). Must not run while
// a worker is computing — both derive node_rounds from process-global
// counters.
func directReport(t *testing.T, req svc.SubmitRequest) *shard.Report {
	t.Helper()
	opt := harness.Options{Trials: req.Trials, Seed: req.Seed, Quick: req.Quick, Full: req.Full, Parallelism: 1}
	rep := &shard.Report{
		Schema:          shard.Schema,
		Trials:          req.Trials,
		EffectiveTrials: opt.EffectiveTrials(),
		Seed:            req.Seed,
		Quick:           req.Quick,
		Full:            req.Full,
		Experiments:     []shard.Entry{},
	}
	for _, id := range req.Run {
		e, ok := harness.ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		tbl, err := e.Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		rep.Experiments = append(rep.Experiments, shard.Entry{Table: tbl})
	}
	return rep
}

// encodeZeroed renders a report with the volatile fields zeroed — the
// byte-comparison form of docs/BENCH_FORMAT.md.
func encodeZeroed(t *testing.T, rep *shard.Report) []byte {
	t.Helper()
	rep.ZeroVolatile()
	var buf bytes.Buffer
	if err := rep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// waitForState polls the job until it leaves "running" or the deadline
// passes.
func waitForState(t *testing.T, client *svc.Client, jobID string, timeout time.Duration) *svc.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := client.Status(jobID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != svc.StateRunning || time.Now().After(deadline) {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobServiceEndToEnd is the acceptance path in miniature: a
// submitted sweep served by one worker merges byte-identical (after
// ZeroVolatile) to the unsharded report; immediate resubmission is
// served entirely from the content-addressed cache with no worker
// involvement; and a different seed misses the cache.
func TestJobServiceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	req := svc.SubmitRequest{Seed: 3, Trials: 1, Quick: true, Run: []string{"F1", "L2"}}
	// Direct report first — the worker must be idle while this computes.
	want := encodeZeroed(t, directReport(t, req))

	_, client := startServer(t, svc.Options{})
	stopWorker := startWorker(t, client, "w1")

	sub, err := client.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Total != 2 || sub.Cached != 0 {
		t.Fatalf("submit = %+v, want total 2, cached 0", sub)
	}
	st := waitForState(t, client, sub.JobID, 60*time.Second)
	if st.State != svc.StateDone {
		t.Fatalf("job state = %s (err %q), want done", st.State, st.Error)
	}
	if got := encodeZeroed(t, st.Report); !bytes.Equal(got, want) {
		t.Fatalf("served report differs from unsharded run:\n--- served ---\n%s\n--- direct ---\n%s", got, want)
	}

	// No worker may be needed for the resubmission: stop it first.
	stopWorker()
	sub2, err := client.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if sub2.Cached != sub2.Total {
		t.Fatalf("resubmission: cached %d of %d, want all from cache", sub2.Cached, sub2.Total)
	}
	st2, err := client.Status(sub2.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != svc.StateDone {
		t.Fatalf("cached job state = %s, want done without any worker", st2.State)
	}
	if got := encodeZeroed(t, st2.Report); !bytes.Equal(got, want) {
		t.Fatal("cache-served report differs from the first serving")
	}

	// The cache key includes the seed: a different seed is a miss.
	miss := req
	miss.Seed = 4
	sub3, err := client.Submit(miss)
	if err != nil {
		t.Fatal(err)
	}
	if sub3.Cached != 0 {
		t.Fatalf("different seed hit the cache (%d of %d)", sub3.Cached, sub3.Total)
	}

	// A selection submitted out of catalogue order is still served in
	// catalogue order — Merge's ordering contract.
	rev := svc.SubmitRequest{Seed: 3, Trials: 1, Quick: true, Run: []string{"L2", "F1"}}
	sub4, err := client.Submit(rev)
	if err != nil {
		t.Fatal(err)
	}
	if sub4.Cached != 2 {
		t.Fatalf("reversed selection: cached %d, want 2", sub4.Cached)
	}
	st4, err := client.Status(sub4.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if got := st4.Report.Experiments; len(got) != 2 || got[0].Table.ID != "F1" || got[1].Table.ID != "L2" {
		t.Fatalf("reversed selection not served in catalogue order")
	}
}

// TestKilledWorkerReplan pins retry/re-plan: a worker takes the whole
// job and goes silent; after its heartbeat deadline the experiments are
// re-planned onto a live worker and the job still completes with a
// report identical to the direct run.
func TestKilledWorkerReplan(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	req := svc.SubmitRequest{Seed: 5, Trials: 1, Quick: true, Run: []string{"F1", "L2"}}
	want := encodeZeroed(t, directReport(t, req))

	_, client := startServer(t, svc.Options{
		HeartbeatTimeout: time.Second,
		RetryBase:        time.Millisecond,
		MaxAttempts:      5,
		Log:              testLogger(t),
	})

	sub, err := client.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// The staller is the only live worker, so it is assigned the entire
	// pending pool — then never pushes and never polls again.
	a, err := client.Poll("staller")
	if err != nil {
		t.Fatal(err)
	}
	if a == nil || len(a.IDs) != 2 {
		t.Fatalf("staller assignment = %+v, want both experiments", a)
	}

	startWorker(t, client, "survivor")
	st := waitForState(t, client, sub.JobID, 90*time.Second)
	if st.State != svc.StateDone {
		t.Fatalf("job state = %s (err %q), want done after re-plan", st.State, st.Error)
	}
	if st.Retries == 0 {
		t.Fatal("job completed without any retries; the staller's lease never expired")
	}
	if got := encodeZeroed(t, st.Report); !bytes.Equal(got, want) {
		t.Fatal("re-planned report differs from the unsharded run")
	}
}

// TestAttemptsExhaustedFailsJob pins the retry bound: when every
// assignment dies, the job fails with a diagnostic naming the
// experiment instead of retrying forever.
func TestAttemptsExhaustedFailsJob(t *testing.T) {
	_, client := startServer(t, svc.Options{
		HeartbeatTimeout: 50 * time.Millisecond,
		RetryBase:        time.Millisecond,
		MaxAttempts:      1,
	})
	sub, err := client.Submit(svc.SubmitRequest{Seed: 1, Trials: 1, Quick: true, Run: []string{"F1"}})
	if err != nil {
		t.Fatal(err)
	}
	if a, err := client.Poll("doomed"); err != nil || a == nil {
		t.Fatalf("poll = %+v, %v", a, err)
	}
	st := waitForState(t, client, sub.JobID, 10*time.Second)
	if st.State != svc.StateFailed {
		t.Fatalf("job state = %s, want failed after exhausting attempts", st.State)
	}
	if !strings.Contains(st.Error, "F1") || !strings.Contains(st.Error, "doomed") {
		t.Fatalf("failure diagnostic %q does not name the experiment and worker", st.Error)
	}
}

// TestConflictingPushFailsJob pins the determinism cross-check: two
// workers pushing different results for the same experiment is a bug
// somewhere, and the job fails loudly rather than silently keeping one.
func TestConflictingPushFailsJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	e, _ := harness.ByID("F1")
	tbl, err := e.Run(harness.Options{Trials: 1, Quick: true, Seed: 9, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	good := shard.Entry{Table: tbl, ElapsedMS: 1, NodeRounds: 42}
	bad := shard.Entry{Table: tbl, ElapsedMS: 2, NodeRounds: 43} // node_rounds is deterministic: a mismatch is a conflict

	_, client := startServer(t, svc.Options{})
	sub, err := client.Submit(svc.SubmitRequest{Seed: 9, Trials: 1, Quick: true, Run: []string{"F1", "L2"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Poll("wa"); err != nil {
		t.Fatal(err)
	}
	if state, err := client.Push("wa", sub.JobID, []shard.Entry{good}); err != nil || state != svc.StateRunning {
		t.Fatalf("first push: state %q, err %v", state, err)
	}
	// Identical duplicate (volatile fields differ) collapses harmlessly.
	dup := good
	dup.ElapsedMS = 99
	if state, err := client.Push("wb", sub.JobID, []shard.Entry{dup}); err != nil || state != svc.StateRunning {
		t.Fatalf("identical duplicate push: state %q, err %v", state, err)
	}
	// Conflicting duplicate fails the job.
	if state, err := client.Push("wc", sub.JobID, []shard.Entry{bad}); err != nil || state != svc.StateFailed {
		t.Fatalf("conflicting push: state %q, err %v; want failed", state, err)
	}
	st, err := client.Status(sub.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.Error, "conflicting results") {
		t.Fatalf("error %q does not name the conflict", st.Error)
	}
}

// TestSubmitValidation pins the submit-time rejections.
func TestSubmitValidation(t *testing.T) {
	_, client := startServer(t, svc.Options{})
	cases := []struct {
		req  svc.SubmitRequest
		want string
	}{
		{svc.SubmitRequest{Quick: true, Full: true}, "mutually exclusive"},
		{svc.SubmitRequest{Run: []string{"ZZZ"}}, "unknown experiment"},
		{svc.SubmitRequest{Run: []string{"F1", "F1"}}, "duplicate experiment"},
	}
	for _, c := range cases {
		if _, err := client.Submit(c.req); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Submit(%+v) err = %v, want mention of %q", c.req, err, c.want)
		}
	}
	if _, err := client.Status("nope"); err == nil || !strings.Contains(err.Error(), "no such job") {
		t.Errorf("Status(nope) err = %v", err)
	}
}
