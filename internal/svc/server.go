package svc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"wsync/internal/harness"
	"wsync/internal/shard"
)

// Options tunes the server's failure detector and retry policy. The
// zero value means the defaults noted on each field.
type Options struct {
	// HeartbeatTimeout is how long a worker may hold an assignment
	// without checking in (a poll or push is a heartbeat) before the
	// server presumes it dead and re-plans its unfinished experiments.
	// Default 15s.
	HeartbeatTimeout time.Duration
	// RetryBase is the backoff unit for re-planned experiments: after
	// attempt k fails, the experiment is not reassigned for
	// RetryBase << (k-1). Default 1s.
	RetryBase time.Duration
	// MaxAttempts bounds assignments per experiment; exceeding it fails
	// the whole job with a diagnostic naming the experiment. Default 3.
	MaxAttempts int
	// Logf, if non-nil, receives one line per state transition
	// (assignment, push, expiry, completion).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 15 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	return o
}

// pendingPoint is one experiment awaiting assignment. notBefore
// implements retry backoff: the point is invisible to polls until then.
type pendingPoint struct {
	id        string
	notBefore time.Time
}

// lease is one outstanding assignment. ids shrinks as the worker pushes
// entries back; an expired lease returns whatever remains to pending.
type lease struct {
	worker   string
	jobID    string
	ids      []string
	deadline time.Time
}

// job is the server-side state of one submitted sweep.
type job struct {
	id        string
	spec      SubmitRequest
	selection []string
	effTrials int

	pending  []pendingPoint
	attempts map[string]int // id -> times assigned
	entries  map[string]shard.Entry
	cached   int
	retries  int

	state  string
	errMsg string
	report *shard.Report
}

// Server is the wsyncd control plane. All state lives in memory behind
// one mutex — the workload is a handful of workers polling at human
// timescales, not a hot path.
type Server struct {
	opts Options

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // job ids in submit order: polls drain the oldest runnable job first
	nextJob int
	cache   map[string]shard.Entry // shard.CacheKey -> completed entry
	costs   map[string]int64       // experiment id -> last observed elapsed_ms (plan feedback)
	workers map[string]time.Time   // worker name -> last heartbeat
	leases  []*lease

	done    chan struct{}
	sweeper sync.WaitGroup
}

// NewServer builds a server and starts its expiry sweeper. Call Close
// to stop it.
func NewServer(opts Options) *Server {
	s := &Server{
		opts:    opts.withDefaults(),
		jobs:    make(map[string]*job),
		cache:   make(map[string]shard.Entry),
		costs:   make(map[string]int64),
		workers: make(map[string]time.Time),
		done:    make(chan struct{}),
	}
	tick := s.opts.HeartbeatTimeout / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	s.sweeper.Add(1)
	go func() {
		defer s.sweeper.Done()
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-s.done:
				return
			case now := <-t.C:
				s.expire(now)
			}
		}
	}()
	return s
}

// Close stops the expiry sweeper. In-memory state stays readable.
func (s *Server) Close() {
	close(s.done)
	s.sweeper.Wait()
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /v1/poll", s.handlePoll)
	mux.HandleFunc("POST /v1/push", s.handlePush)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Quick && req.Full {
		http.Error(w, "quick and full are mutually exclusive", http.StatusBadRequest)
		return
	}
	selection := req.Run
	if len(selection) == 0 {
		selection = harness.IDs()
	}
	seen := make(map[string]bool, len(selection))
	for _, id := range selection {
		if _, ok := harness.ByID(id); !ok {
			http.Error(w, fmt.Sprintf("unknown experiment %q", id), http.StatusBadRequest)
			return
		}
		if seen[id] {
			http.Error(w, fmt.Sprintf("duplicate experiment %q", id), http.StatusBadRequest)
			return
		}
		seen[id] = true
	}
	opt := harness.Options{Trials: req.Trials, Seed: req.Seed, Quick: req.Quick, Full: req.Full}
	effTrials := opt.EffectiveTrials()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextJob++
	j := &job{
		id:        fmt.Sprintf("j%d", s.nextJob),
		spec:      req,
		selection: selection,
		effTrials: effTrials,
		attempts:  make(map[string]int, len(selection)),
		entries:   make(map[string]shard.Entry, len(selection)),
		state:     StateRunning,
	}
	// Seed from the content-addressed cache before anything reaches a
	// worker: a hit is a finished experiment, whatever job computed it.
	now := time.Now()
	for _, id := range selection {
		key := shard.CacheKey(shard.Schema, req.Seed, effTrials, req.Quick, req.Full, id)
		if e, ok := s.cache[key]; ok {
			j.entries[id] = e
			j.cached++
			continue
		}
		j.pending = append(j.pending, pendingPoint{id: id, notBefore: now})
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if len(j.entries) == len(j.selection) {
		s.finalize(j)
	}
	s.logf("svc: job %s submitted: %d experiments, %d from cache", j.id, len(selection), j.cached)
	writeJSON(w, http.StatusOK, SubmitResponse{JobID: j.id, Total: len(selection), Cached: j.cached})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	st := JobStatus{
		JobID:   j.id,
		State:   j.state,
		Total:   len(j.selection),
		Done:    len(j.entries),
		Cached:  j.cached,
		Retries: j.retries,
		Error:   j.errMsg,
	}
	if j.state == StateDone {
		st.Report = j.report
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Worker == "" {
		http.Error(w, "worker name required", http.StatusBadRequest)
		return
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.heartbeat(req.Worker, now)

	for _, jobID := range s.order {
		j := s.jobs[jobID]
		if j.state != StateRunning {
			continue
		}
		ready := make([]string, 0, len(j.pending))
		for _, p := range j.pending {
			if !p.notBefore.After(now) {
				ready = append(ready, p.id)
			}
		}
		if len(ready) == 0 {
			continue
		}
		chunk, err := shard.Replan(ready, s.liveWorkers(now), s.costs)
		if err != nil {
			// Replan rejects only malformed pools; a job that produces one
			// is a server bug, surfaced as a failed job rather than a hang.
			s.fail(j, fmt.Sprintf("re-plan: %v", err))
			continue
		}
		take := make(map[string]bool, len(chunk))
		for _, id := range chunk {
			take[id] = true
			j.attempts[id]++
		}
		kept := j.pending[:0]
		for _, p := range j.pending {
			if !take[p.id] {
				kept = append(kept, p)
			}
		}
		j.pending = kept
		s.leases = append(s.leases, &lease{
			worker:   req.Worker,
			jobID:    j.id,
			ids:      chunk,
			deadline: now.Add(s.opts.HeartbeatTimeout),
		})
		s.logf("svc: job %s: assigned %v to worker %s", j.id, chunk, req.Worker)
		writeJSON(w, http.StatusOK, PollResponse{Assignment: &Assignment{
			JobID:  j.id,
			IDs:    chunk,
			Seed:   j.spec.Seed,
			Trials: j.spec.Trials,
			Quick:  j.spec.Quick,
			Full:   j.spec.Full,
		}})
		return
	}
	writeJSON(w, http.StatusOK, PollResponse{})
}

func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	var req PushRequest
	if !readJSON(w, r, &req) {
		return
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Worker != "" {
		s.heartbeat(req.Worker, now)
	}
	j, ok := s.jobs[req.JobID]
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	for _, e := range req.Entries {
		if e.Table == nil {
			s.fail(j, fmt.Sprintf("worker %s pushed an entry without a table", req.Worker))
			break
		}
		id := e.Table.ID
		if prev, dup := j.entries[id]; dup {
			// A presumed-dead worker finishing late collides with the
			// re-planned copy; determinism says they must be identical.
			if same, err := entriesEqual(prev, e); err != nil {
				s.fail(j, fmt.Sprintf("experiment %s: %v", id, err))
				break
			} else if !same {
				s.fail(j, fmt.Sprintf("experiment %s: conflicting results from workers (determinism violation)", id))
				break
			}
			continue
		}
		j.entries[id] = e
		key := shard.CacheKey(shard.Schema, j.spec.Seed, j.effTrials, j.spec.Quick, j.spec.Full, id)
		s.cache[key] = e
		// Observed wall time feeds the next plan — the -plan-costs loop.
		cost := e.ElapsedMS
		if cost < 1 {
			cost = 1
		}
		s.costs[id] = cost
		s.releaseLeased(req.Worker, j.id, id)
	}
	if j.state == StateRunning && len(j.entries) == len(j.selection) {
		s.finalize(j)
	}
	s.logf("svc: job %s: worker %s pushed %d entries (%d/%d done, state %s)",
		j.id, req.Worker, len(req.Entries), len(j.entries), len(j.selection), j.state)
	writeJSON(w, http.StatusOK, PushResponse{State: j.state})
}

// heartbeat records a sign of life from the worker and extends its
// outstanding lease deadlines: any poll or push proves the worker is
// alive, so an in-flight assignment only needs each single experiment —
// pushed incrementally — to land within the heartbeat window.
func (s *Server) heartbeat(worker string, now time.Time) {
	s.workers[worker] = now
	for _, l := range s.leases {
		if l.worker == worker {
			l.deadline = now.Add(s.opts.HeartbeatTimeout)
		}
	}
}

// liveWorkers counts workers heard from within the heartbeat window
// (at least 1: the poller asking is alive by definition).
func (s *Server) liveWorkers(now time.Time) int {
	live := 0
	for _, seen := range s.workers {
		if now.Sub(seen) <= s.opts.HeartbeatTimeout {
			live++
		}
	}
	if live < 1 {
		live = 1
	}
	return live
}

// releaseLeased removes one completed id from the worker's lease on the
// job, dropping the lease when it empties.
func (s *Server) releaseLeased(worker, jobID, id string) {
	kept := s.leases[:0]
	for _, l := range s.leases {
		if l.worker == worker && l.jobID == jobID {
			ids := l.ids[:0]
			for _, lid := range l.ids {
				if lid != id {
					ids = append(ids, lid)
				}
			}
			l.ids = ids
			if len(l.ids) == 0 {
				continue
			}
		}
		kept = append(kept, l)
	}
	s.leases = kept
}

// expire is the failure detector: leases past their deadline return
// their unfinished experiments to the pending pool with exponential
// backoff, or fail the job once an experiment exhausts its attempts.
func (s *Server) expire(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.leases[:0]
	for _, l := range s.leases {
		if l.deadline.After(now) {
			kept = append(kept, l)
			continue
		}
		j := s.jobs[l.jobID]
		if j == nil || j.state != StateRunning {
			continue
		}
		for _, id := range l.ids {
			if _, done := j.entries[id]; done {
				continue
			}
			if j.attempts[id] >= s.opts.MaxAttempts {
				s.fail(j, fmt.Sprintf(
					"experiment %s failed %d attempts; worker %s missed its heartbeat deadline",
					id, j.attempts[id], l.worker))
				break
			}
			backoff := s.opts.RetryBase << (j.attempts[id] - 1)
			j.pending = append(j.pending, pendingPoint{id: id, notBefore: now.Add(backoff)})
			j.retries++
			s.logf("svc: job %s: worker %s presumed dead; re-planning %s (attempt %d, backoff %v)",
				j.id, l.worker, id, j.attempts[id], backoff)
		}
	}
	s.leases = kept
}

// finalize assembles the completed job's report: entries in selection
// order run through shard.Merge, which validates them and imposes the
// catalogue order an unsharded run would have produced.
func (s *Server) finalize(j *job) {
	rep := &shard.Report{
		Schema:          shard.Schema,
		Trials:          j.spec.Trials,
		EffectiveTrials: j.effTrials,
		Seed:            j.spec.Seed,
		Quick:           j.spec.Quick,
		Full:            j.spec.Full,
		Experiments:     make([]shard.Entry, 0, len(j.selection)),
	}
	for _, id := range j.selection {
		rep.Experiments = append(rep.Experiments, j.entries[id])
	}
	merged, err := shard.Merge([]*shard.Report{rep})
	if err != nil {
		s.fail(j, fmt.Sprintf("assembling report: %v", err))
		return
	}
	j.report = merged
	j.state = StateDone
	s.logf("svc: job %s done (%d experiments, %d cached, %d retries)",
		j.id, len(j.selection), j.cached, j.retries)
}

func (s *Server) fail(j *job, msg string) {
	if j.state != StateRunning {
		return
	}
	j.state = StateFailed
	j.errMsg = msg
	s.logf("svc: job %s failed: %s", j.id, msg)
}

// entriesEqual compares two entries on their deterministic fields —
// canonical table JSON and node_rounds — ignoring the volatile wall
// time and throughput.
func entriesEqual(a, b shard.Entry) (bool, error) {
	if a.NodeRounds != b.NodeRounds {
		return false, nil
	}
	aj, err := json.Marshal(a.Table)
	if err != nil {
		return false, err
	}
	bj, err := json.Marshal(b.Table)
	if err != nil {
		return false, err
	}
	return bytes.Equal(aj, bj), nil
}
