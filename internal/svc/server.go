package svc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wsync/internal/harness"
	"wsync/internal/obs"
	"wsync/internal/shard"
)

// Options tunes the server's failure detector and retry policy. The
// zero value means the defaults noted on each field.
type Options struct {
	// HeartbeatTimeout is how long a worker may hold an assignment
	// without checking in (a poll or push is a heartbeat) before the
	// server presumes it dead and re-plans its unfinished experiments.
	// Default 15s.
	HeartbeatTimeout time.Duration
	// RetryBase is the backoff unit for re-planned experiments: after
	// attempt k fails, the experiment is not reassigned for
	// RetryBase << (k-1). Default 1s.
	RetryBase time.Duration
	// MaxAttempts bounds assignments per experiment; exceeding it fails
	// the whole job with a diagnostic naming the experiment. Default 3.
	MaxAttempts int
	// Log receives one structured record per state transition
	// (assignment, push, expiry, completion), each carrying job- and
	// worker-scoped attributes. Nil discards them.
	Log *slog.Logger
	// Metrics is the registry the server registers its wsync_* metrics
	// in (docs/OBSERVABILITY.md catalogues them); nil means a private
	// registry, reachable through Server.Metrics.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 15 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Log == nil {
		o.Log = discardLogger()
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// discardLogger builds a logger that drops everything (slog has no
// ready-made discard handler at this module's Go floor).
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

// serverMetrics is the wsync_* metric set; docs/OBSERVABILITY.md is the
// catalogue.
type serverMetrics struct {
	jobsSubmitted  *obs.Counter
	jobsCompleted  *obs.Counter
	jobsFailed     *obs.Counter
	jobsRunning    *obs.Gauge
	leasesGranted  *obs.Counter
	heartbeats     *obs.Counter
	replans        *obs.Counter
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheConflicts *obs.Counter
	entriesPushed  *obs.Counter
	nodeRounds     *obs.Counter
	pushLatency    *obs.Histogram
	inflight       *obs.GaugeVec
	subscribers    *obs.Gauge
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	return serverMetrics{
		jobsSubmitted:  reg.Counter("wsync_jobs_submitted_total", "Jobs accepted by POST /v1/jobs."),
		jobsCompleted:  reg.Counter("wsync_jobs_completed_total", "Jobs that reached state done."),
		jobsFailed:     reg.Counter("wsync_jobs_failed_total", "Jobs that reached state failed."),
		jobsRunning:    reg.Gauge("wsync_jobs_running", "Jobs currently in state running."),
		leasesGranted:  reg.Counter("wsync_leases_granted_total", "Assignments handed to polling workers."),
		heartbeats:     reg.Counter("wsync_heartbeats_total", "Worker signs of life (every poll and push)."),
		replans:        reg.Counter("wsync_replans_total", "Experiments re-planned after a worker missed its heartbeat deadline."),
		cacheHits:      reg.Counter("wsync_cache_hits_total", "Experiments served from the content-addressed result cache at submit."),
		cacheMisses:    reg.Counter("wsync_cache_misses_total", "Experiments that missed the cache at submit and entered the pending pool."),
		cacheConflicts: reg.Counter("wsync_cache_conflicts_total", "Pushed entries conflicting with an already-recorded result (determinism violations)."),
		entriesPushed:  reg.Counter("wsync_entries_pushed_total", "Completed experiment entries accepted from workers."),
		nodeRounds:     reg.Counter("wsync_node_rounds_total", "Engine node-rounds reported by accepted entries (the deterministic work measure of docs/BENCH_FORMAT.md)."),
		pushLatency:    reg.Histogram("wsync_push_latency_seconds", "POST /v1/push handling latency.", obs.DefTimeBuckets),
		inflight:       reg.GaugeVec("wsync_worker_inflight", "Experiments currently leased, per worker.", "worker"),
		subscribers:    reg.Gauge("wsync_event_subscribers", "Open SSE event streams."),
	}
}

// pendingPoint is one experiment awaiting assignment. notBefore
// implements retry backoff: the point is invisible to polls until then.
type pendingPoint struct {
	id        string
	notBefore time.Time
}

// lease is one outstanding assignment. ids shrinks as the worker pushes
// entries back; an expired lease returns whatever remains to pending.
type lease struct {
	worker   string
	jobID    string
	ids      []string
	deadline time.Time
}

// job is the server-side state of one submitted sweep.
type job struct {
	id        string
	spec      SubmitRequest
	selection []string
	effTrials int

	pending  []pendingPoint
	attempts map[string]int // id -> times assigned
	entries  map[string]shard.Entry
	cached   int
	retries  int

	state  string
	errMsg string
	report *shard.Report

	// events is the append-only transition log served by
	// GET /v1/jobs/{id}/events; notify is closed and replaced on every
	// append, waking blocked streams (SSE and long-poll alike).
	events []JobEvent
	notify chan struct{}
}

// Server is the wsyncd control plane. All state lives in memory behind
// one mutex — the workload is a handful of workers polling at human
// timescales, not a hot path.
type Server struct {
	opts Options
	log  *slog.Logger
	met  serverMetrics

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // job ids in submit order: polls drain the oldest runnable job first
	nextJob int
	cache   map[string]shard.Entry // shard.CacheKey -> completed entry
	costs   map[string]int64       // experiment id -> last observed elapsed_ms (plan feedback)
	workers map[string]time.Time   // worker name -> last heartbeat
	leases  []*lease

	draining atomic.Bool
	drainCh  chan struct{}
	done     chan struct{}
	sweeper  sync.WaitGroup
}

// NewServer builds a server and starts its expiry sweeper. Call Close
// to stop it.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		log:     opts.Log,
		met:     newServerMetrics(opts.Metrics),
		jobs:    make(map[string]*job),
		cache:   make(map[string]shard.Entry),
		costs:   make(map[string]int64),
		workers: make(map[string]time.Time),
		drainCh: make(chan struct{}),
		done:    make(chan struct{}),
	}
	tick := s.opts.HeartbeatTimeout / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	s.sweeper.Add(1)
	go func() {
		defer s.sweeper.Done()
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-s.done:
				return
			case now := <-t.C:
				s.expire(now)
			}
		}
	}()
	return s
}

// Close stops the expiry sweeper and ends open event streams.
// In-memory state stays readable.
func (s *Server) Close() {
	close(s.done)
	s.sweeper.Wait()
}

// Metrics returns the registry holding the server's wsync_* metrics,
// for mounting on additional endpoints (the -debug-addr mux).
func (s *Server) Metrics() *obs.Registry { return s.opts.Metrics }

// BeginDrain marks the server as draining: GET /v1/healthz starts
// answering 503 so load balancers and smoke scripts can tell "finishing"
// from "down", and open event streams are ended so an
// http.Server.Shutdown can complete. Job state is untouched — workers
// may keep pushing until the listener closes.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
		s.log.Info("draining: healthz now 503, event streams closing")
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/poll", s.handlePoll)
	mux.HandleFunc("POST /v1/push", s.handlePush)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.Handle("GET /metrics", s.opts.Metrics.Handler())
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, Health{Status: HealthDraining})
		return
	}
	writeJSON(w, http.StatusOK, Health{Status: HealthOK})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// emit appends one event to the job's transition log and wakes every
// blocked stream. Callers hold s.mu.
func (s *Server) emit(j *job, kind string) {
	j.events = append(j.events, JobEvent{
		Seq:     len(j.events) + 1,
		Kind:    kind,
		JobID:   j.id,
		State:   j.state,
		Done:    len(j.entries),
		Total:   len(j.selection),
		Cached:  j.cached,
		Retries: j.retries,
		Error:   j.errMsg,
	})
	close(j.notify)
	j.notify = make(chan struct{})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Quick && req.Full {
		http.Error(w, "quick and full are mutually exclusive", http.StatusBadRequest)
		return
	}
	selection := req.Run
	if len(selection) == 0 {
		selection = harness.IDs()
	}
	seen := make(map[string]bool, len(selection))
	for _, id := range selection {
		if _, ok := harness.ByID(id); !ok {
			http.Error(w, fmt.Sprintf("unknown experiment %q", id), http.StatusBadRequest)
			return
		}
		if seen[id] {
			http.Error(w, fmt.Sprintf("duplicate experiment %q", id), http.StatusBadRequest)
			return
		}
		seen[id] = true
	}
	opt := harness.Options{Trials: req.Trials, Seed: req.Seed, Quick: req.Quick, Full: req.Full}
	effTrials := opt.EffectiveTrials()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextJob++
	j := &job{
		id:        fmt.Sprintf("j%d", s.nextJob),
		spec:      req,
		selection: selection,
		effTrials: effTrials,
		attempts:  make(map[string]int, len(selection)),
		entries:   make(map[string]shard.Entry, len(selection)),
		state:     StateRunning,
		notify:    make(chan struct{}),
	}
	// Seed from the content-addressed cache before anything reaches a
	// worker: a hit is a finished experiment, whatever job computed it.
	now := time.Now()
	for _, id := range selection {
		key := shard.CacheKey(shard.Schema, req.Seed, effTrials, req.Quick, req.Full, id)
		if e, ok := s.cache[key]; ok {
			j.entries[id] = e
			j.cached++
			continue
		}
		j.pending = append(j.pending, pendingPoint{id: id, notBefore: now})
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.met.jobsSubmitted.Inc()
	s.met.jobsRunning.Inc()
	s.met.cacheHits.Add(uint64(j.cached))
	s.met.cacheMisses.Add(uint64(len(selection) - j.cached))
	s.emit(j, EventSubmitted)
	if len(j.entries) == len(j.selection) {
		s.finalize(j)
	}
	s.log.Info("job submitted", "job", j.id, "experiments", len(selection), "cached", j.cached)
	writeJSON(w, http.StatusOK, SubmitResponse{JobID: j.id, Total: len(selection), Cached: j.cached})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	st := JobStatus{
		JobID:   j.id,
		State:   j.state,
		Total:   len(j.selection),
		Done:    len(j.entries),
		Cached:  j.cached,
		Retries: j.retries,
		Error:   j.errMsg,
	}
	if j.state == StateDone {
		st.Report = j.report
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Worker == "" {
		http.Error(w, "worker name required", http.StatusBadRequest)
		return
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.heartbeat(req.Worker, now)

	for _, jobID := range s.order {
		j := s.jobs[jobID]
		if j.state != StateRunning {
			continue
		}
		ready := make([]string, 0, len(j.pending))
		for _, p := range j.pending {
			if !p.notBefore.After(now) {
				ready = append(ready, p.id)
			}
		}
		if len(ready) == 0 {
			continue
		}
		chunk, err := shard.Replan(ready, s.liveWorkers(now), s.costs)
		if err != nil {
			// Replan rejects only malformed pools; a job that produces one
			// is a server bug, surfaced as a failed job rather than a hang.
			s.fail(j, fmt.Sprintf("re-plan: %v", err))
			continue
		}
		take := make(map[string]bool, len(chunk))
		for _, id := range chunk {
			take[id] = true
			j.attempts[id]++
		}
		kept := j.pending[:0]
		for _, p := range j.pending {
			if !take[p.id] {
				kept = append(kept, p)
			}
		}
		j.pending = kept
		s.leases = append(s.leases, &lease{
			worker:   req.Worker,
			jobID:    j.id,
			ids:      chunk,
			deadline: now.Add(s.opts.HeartbeatTimeout),
		})
		s.met.leasesGranted.Inc()
		s.updateInflight(req.Worker)
		s.log.Info("lease granted", "job", j.id, "worker", req.Worker, "ids", chunk)
		writeJSON(w, http.StatusOK, PollResponse{Assignment: &Assignment{
			JobID:  j.id,
			IDs:    chunk,
			Seed:   j.spec.Seed,
			Trials: j.spec.Trials,
			Quick:  j.spec.Quick,
			Full:   j.spec.Full,
		}})
		return
	}
	writeJSON(w, http.StatusOK, PollResponse{})
}

func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		s.met.pushLatency.Observe(time.Since(start).Seconds())
	}()
	var req PushRequest
	if !readJSON(w, r, &req) {
		return
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Worker != "" {
		s.heartbeat(req.Worker, now)
	}
	j, ok := s.jobs[req.JobID]
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	folded := 0
	for _, e := range req.Entries {
		if e.Table == nil {
			s.fail(j, fmt.Sprintf("worker %s pushed an entry without a table", req.Worker))
			break
		}
		id := e.Table.ID
		if prev, dup := j.entries[id]; dup {
			// A presumed-dead worker finishing late collides with the
			// re-planned copy; determinism says they must be identical.
			if same, err := entriesEqual(prev, e); err != nil {
				s.fail(j, fmt.Sprintf("experiment %s: %v", id, err))
				break
			} else if !same {
				s.met.cacheConflicts.Inc()
				s.fail(j, fmt.Sprintf("experiment %s: conflicting results from workers (determinism violation)", id))
				break
			}
			continue
		}
		j.entries[id] = e
		key := shard.CacheKey(shard.Schema, j.spec.Seed, j.effTrials, j.spec.Quick, j.spec.Full, id)
		s.cache[key] = e
		// Observed wall time feeds the next plan — the -plan-costs loop.
		cost := e.ElapsedMS
		if cost < 1 {
			cost = 1
		}
		s.costs[id] = cost
		s.met.entriesPushed.Inc()
		s.met.nodeRounds.Add(e.NodeRounds)
		folded++
		s.releaseLeased(req.Worker, j.id, id)
	}
	if req.Worker != "" {
		s.updateInflight(req.Worker)
	}
	if j.state == StateRunning && len(j.entries) == len(j.selection) {
		s.finalize(j)
	} else if folded > 0 && j.state == StateRunning {
		s.emit(j, EventProgress)
	}
	s.log.Info("entries pushed", "job", j.id, "worker", req.Worker,
		"entries", len(req.Entries), "done", len(j.entries), "total", len(j.selection), "state", j.state)
	writeJSON(w, http.StatusOK, PushResponse{State: j.state})
}

// handleEvents serves the job's transition log: Server-Sent Events when
// the client asks for text/event-stream (and the connection can flush),
// a long-poll JSON round otherwise. The ?after=N cursor (last seen
// sequence number) makes both forms resumable; docs/OBSERVABILITY.md
// specifies the wire format.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	after := 0
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "after must be a non-negative integer", http.StatusBadRequest)
			return
		}
		after = n
	}
	flusher, canFlush := w.(http.Flusher)
	if wantsSSE(r) && canFlush {
		s.serveSSE(w, r, flusher, id, after)
		return
	}
	s.serveLongPoll(w, r, id, after)
}

func wantsSSE(r *http.Request) bool {
	for _, accept := range r.Header.Values("Accept") {
		if strings.Contains(accept, "text/event-stream") {
			return true
		}
	}
	return false
}

// jobEvents snapshots the events after the cursor plus the current
// notify channel and terminal flag.
func (s *Server) jobEvents(id string, after int) (evs []JobEvent, notify <-chan struct{}, terminal, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, found := s.jobs[id]
	if !found {
		return nil, nil, false, false
	}
	if after < len(j.events) {
		evs = append(evs, j.events[after:]...)
	}
	return evs, j.notify, j.state != StateRunning, true
}

func (s *Server) serveSSE(w http.ResponseWriter, r *http.Request, flusher http.Flusher, id string, after int) {
	evs, notify, terminal, ok := s.jobEvents(id, after)
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	s.met.subscribers.Inc()
	defer s.met.subscribers.Dec()
	for {
		for _, ev := range evs {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			// "id:" carries the cursor for Last-Event-ID-style resumption;
			// "event:" names the transition kind for addEventListener use.
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data); err != nil {
				return
			}
			after = ev.Seq
		}
		flusher.Flush()
		if terminal {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			return
		case <-s.done:
			return
		case <-notify:
		}
		evs, notify, terminal, ok = s.jobEvents(id, after)
		if !ok {
			return
		}
	}
}

// longPollMaxWait caps the server-side block of a long-poll round.
const longPollMaxWait = time.Minute

func (s *Server) serveLongPoll(w http.ResponseWriter, r *http.Request, id string, after int) {
	wait := 25 * time.Second
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			http.Error(w, "wait must be a non-negative duration", http.StatusBadRequest)
			return
		}
		wait = d
	}
	if wait > longPollMaxWait {
		wait = longPollMaxWait
	}
	evs, notify, terminal, ok := s.jobEvents(id, after)
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	if len(evs) == 0 && !terminal && wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-r.Context().Done():
			return
		case <-s.drainCh:
		case <-s.done:
		case <-t.C:
		case <-notify:
		}
		evs, _, _, ok = s.jobEvents(id, after)
		if !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
	}
	if evs == nil {
		evs = []JobEvent{}
	}
	writeJSON(w, http.StatusOK, EventsResponse{Events: evs})
}

// heartbeat records a sign of life from the worker and extends its
// outstanding lease deadlines: any poll or push proves the worker is
// alive, so an in-flight assignment only needs each single experiment —
// pushed incrementally — to land within the heartbeat window.
func (s *Server) heartbeat(worker string, now time.Time) {
	s.met.heartbeats.Inc()
	s.workers[worker] = now
	for _, l := range s.leases {
		if l.worker == worker {
			l.deadline = now.Add(s.opts.HeartbeatTimeout)
		}
	}
}

// liveWorkers counts workers heard from within the heartbeat window
// (at least 1: the poller asking is alive by definition).
func (s *Server) liveWorkers(now time.Time) int {
	live := 0
	for _, seen := range s.workers {
		if now.Sub(seen) <= s.opts.HeartbeatTimeout {
			live++
		}
	}
	if live < 1 {
		live = 1
	}
	return live
}

// updateInflight recomputes the per-worker in-flight gauge from the
// lease table. Callers hold s.mu.
func (s *Server) updateInflight(worker string) {
	n := 0
	for _, l := range s.leases {
		if l.worker == worker {
			n += len(l.ids)
		}
	}
	s.met.inflight.With(worker).Set(int64(n))
}

// releaseLeased removes one completed id from the worker's lease on the
// job, dropping the lease when it empties.
func (s *Server) releaseLeased(worker, jobID, id string) {
	kept := s.leases[:0]
	for _, l := range s.leases {
		if l.worker == worker && l.jobID == jobID {
			ids := l.ids[:0]
			for _, lid := range l.ids {
				if lid != id {
					ids = append(ids, lid)
				}
			}
			l.ids = ids
			if len(l.ids) == 0 {
				continue
			}
		}
		kept = append(kept, l)
	}
	s.leases = kept
}

// expire is the failure detector: leases past their deadline return
// their unfinished experiments to the pending pool with exponential
// backoff, or fail the job once an experiment exhausts its attempts.
func (s *Server) expire(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.leases[:0]
	for _, l := range s.leases {
		if l.deadline.After(now) {
			kept = append(kept, l)
			continue
		}
		s.met.inflight.With(l.worker).Set(0)
		j := s.jobs[l.jobID]
		if j == nil || j.state != StateRunning {
			continue
		}
		replanned := false
		for _, id := range l.ids {
			if _, done := j.entries[id]; done {
				continue
			}
			if j.attempts[id] >= s.opts.MaxAttempts {
				s.fail(j, fmt.Sprintf(
					"experiment %s failed %d attempts; worker %s missed its heartbeat deadline",
					id, j.attempts[id], l.worker))
				break
			}
			backoff := s.opts.RetryBase << (j.attempts[id] - 1)
			j.pending = append(j.pending, pendingPoint{id: id, notBefore: now.Add(backoff)})
			j.retries++
			replanned = true
			s.met.replans.Inc()
			s.log.Warn("worker presumed dead; experiment re-planned",
				"job", j.id, "worker", l.worker, "experiment", id,
				"attempt", j.attempts[id], "backoff", backoff)
		}
		if replanned && j.state == StateRunning {
			s.emit(j, EventReplan)
		}
	}
	s.leases = kept
}

// finalize assembles the completed job's report: entries in selection
// order run through shard.Merge, which validates them and imposes the
// catalogue order an unsharded run would have produced.
func (s *Server) finalize(j *job) {
	rep := &shard.Report{
		Schema:          shard.Schema,
		Trials:          j.spec.Trials,
		EffectiveTrials: j.effTrials,
		Seed:            j.spec.Seed,
		Quick:           j.spec.Quick,
		Full:            j.spec.Full,
		Experiments:     make([]shard.Entry, 0, len(j.selection)),
	}
	for _, id := range j.selection {
		rep.Experiments = append(rep.Experiments, j.entries[id])
	}
	merged, err := shard.Merge([]*shard.Report{rep})
	if err != nil {
		s.fail(j, fmt.Sprintf("assembling report: %v", err))
		return
	}
	j.report = merged
	j.state = StateDone
	s.met.jobsCompleted.Inc()
	s.met.jobsRunning.Dec()
	s.emit(j, EventDone)
	s.log.Info("job done", "job", j.id,
		"experiments", len(j.selection), "cached", j.cached, "retries", j.retries)
}

func (s *Server) fail(j *job, msg string) {
	if j.state != StateRunning {
		return
	}
	j.state = StateFailed
	j.errMsg = msg
	s.met.jobsFailed.Inc()
	s.met.jobsRunning.Dec()
	s.emit(j, EventFailed)
	s.log.Error("job failed", "job", j.id, "error", msg)
}

// entriesEqual compares two entries on their deterministic fields —
// canonical table JSON and node_rounds — ignoring the volatile wall
// time and throughput.
func entriesEqual(a, b shard.Entry) (bool, error) {
	if a.NodeRounds != b.NodeRounds {
		return false, nil
	}
	aj, err := json.Marshal(a.Table)
	if err != nil {
		return false, err
	}
	bj, err := json.Marshal(b.Table)
	if err != nil {
		return false, err
	}
	return bytes.Equal(aj, bj), nil
}
