package svc

import (
	"math/rand"
	"time"
)

// Backoff produces jittered exponential delays for idle polling and
// transport-failure retries. The sequence doubles from Base up to Max;
// each delay is drawn uniformly from [d/2, d) ("equal jitter"), which
// keeps the expected wait near 3d/4 while decorrelating a fleet of
// workers that all went idle at the same instant — the thundering-herd
// fix for the old fixed 500 ms poll loop.
//
// The zero value works (Base defaults to 100 ms, Max to 32×Base). Not
// safe for concurrent use; each loop owns its own Backoff.
type Backoff struct {
	// Base is the first (pre-jitter) delay. <= 0 means 100 ms.
	Base time.Duration
	// Max caps the pre-jitter delay. <= 0 means 32×Base.
	Max time.Duration
	// Rand returns a uniform sample in [0, 1); nil means math/rand.
	// Injectable so tests can pin the jitter.
	Rand func() float64

	n int
}

// Next returns the next delay in the sequence and advances it.
func (b *Backoff) Next() time.Duration {
	base := b.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 32 * base
	}
	d := base
	for i := 0; i < b.n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	b.n++
	rnd := b.Rand
	if rnd == nil {
		rnd = rand.Float64
	}
	return d/2 + time.Duration(rnd()*float64(d/2))
}

// Reset returns the sequence to Base. Loops call it on success — an
// assignment for the worker poll, a delivered event batch for the
// client watch — so backoff only grows through consecutive dry spells.
func (b *Backoff) Reset() { b.n = 0 }
