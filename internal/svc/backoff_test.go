package svc_test

import (
	"testing"
	"time"

	"wsync/internal/svc"
)

// TestBackoffSequence pins the deterministic skeleton (jitter forced to
// its upper edge): doubling from Base, capped at Max, back to Base
// after Reset.
func TestBackoffSequence(t *testing.T) {
	b := svc.Backoff{
		Base: 100 * time.Millisecond,
		Max:  400 * time.Millisecond,
		Rand: func() float64 { return 0.999999 },
	}
	approx := func(got, want time.Duration) bool {
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff < time.Millisecond
	}
	for i, want := range []time.Duration{100, 200, 400, 400, 400} {
		if got := b.Next(); !approx(got, want*time.Millisecond) {
			t.Errorf("Next #%d = %v, want ~%v", i, got, want*time.Millisecond)
		}
	}
	b.Reset()
	if got := b.Next(); !approx(got, 100*time.Millisecond) {
		t.Errorf("Next after Reset = %v, want ~100ms", got)
	}
}

// TestBackoffJitterRange pins the equal-jitter window: every delay
// lands in [d/2, d).
func TestBackoffJitterRange(t *testing.T) {
	for _, r := range []float64{0, 0.25, 0.5, 0.999999} {
		b := svc.Backoff{Base: 100 * time.Millisecond, Rand: func() float64 { return r }}
		got := b.Next()
		if got < 50*time.Millisecond || got >= 100*time.Millisecond {
			t.Errorf("Rand=%v: Next = %v, outside [50ms, 100ms)", r, got)
		}
	}
}

// TestBackoffZeroValue pins that the zero value is usable.
func TestBackoffZeroValue(t *testing.T) {
	var b svc.Backoff
	for i := 0; i < 20; i++ {
		d := b.Next()
		if d <= 0 || d > 3200*time.Millisecond {
			t.Fatalf("zero-value Next #%d = %v", i, d)
		}
	}
}
