package svc

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"wsync/internal/harness"
	"wsync/internal/multihop"
	"wsync/internal/obs"
	"wsync/internal/rendezvous"
	"wsync/internal/shard"
	"wsync/internal/sim"
)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Server is the wsyncd base URL.
	Server string
	// Name identifies this worker to the server; it must be unique among
	// concurrently polling workers (the failure detector is per name).
	Name string
	// PollInterval seeds the idle backoff: the first empty poll sleeps
	// about this long and consecutive empty polls double it (with
	// jitter) up to MaxPollInterval. Default 500ms.
	PollInterval time.Duration
	// MaxPollInterval caps the idle backoff. Default 16×PollInterval.
	MaxPollInterval time.Duration
	// Parallelism is the trial-runner worker count passed to the harness
	// (0 = one per CPU). Results are bit-identical at any setting.
	Parallelism int
	// Log receives one record per assignment, push, and error, each
	// carrying worker/job attributes. Nil discards them.
	Log *slog.Logger
	// Metrics is the registry for the wsync_worker_* metrics; nil means
	// a private registry (counted but unexposed).
	Metrics *obs.Registry
}

// workerMetrics is the wsync_worker_* metric set; docs/OBSERVABILITY.md
// is the catalogue.
type workerMetrics struct {
	polls       *obs.Counter
	pollErrors  *obs.Counter
	assignments *obs.Counter
	experiments *obs.Counter
	expFailures *obs.Counter
	pushErrors  *obs.Counter
	nodeRounds  *obs.Counter
	expSeconds  *obs.Histogram
	busy        *obs.Gauge
}

func newWorkerMetrics(reg *obs.Registry) workerMetrics {
	return workerMetrics{
		polls:       reg.Counter("wsync_worker_polls_total", "Poll requests sent to the server."),
		pollErrors:  reg.Counter("wsync_worker_poll_errors_total", "Poll requests that failed in transport."),
		assignments: reg.Counter("wsync_worker_assignments_total", "Assignments received."),
		experiments: reg.Counter("wsync_worker_experiments_total", "Experiments run to completion."),
		expFailures: reg.Counter("wsync_worker_experiment_failures_total", "Experiments whose Run returned an error."),
		pushErrors:  reg.Counter("wsync_worker_push_errors_total", "Entry pushes that failed in transport."),
		nodeRounds:  reg.Counter("wsync_worker_node_rounds_total", "Engine node-rounds executed, sampled as deltas of the process-global atomic counters (docs/BENCH_FORMAT.md)."),
		expSeconds:  reg.Histogram("wsync_worker_experiment_seconds", "Wall time per experiment.", obs.DefTimeBuckets),
		busy:        reg.Gauge("wsync_worker_busy", "1 while running an assignment, 0 while idle."),
	}
}

// nodeRoundsTotal sums the per-engine node-round counters, mirroring
// wexp: sampled around each experiment, the delta is that experiment's
// deterministic node_rounds figure. Experiments run serially within a
// worker, so the delta is exact.
func nodeRoundsTotal() uint64 {
	return sim.TotalNodeRounds() + multihop.TotalNodeRounds() + rendezvous.TotalNodeRounds()
}

// RunWorker polls the server for assignments, runs them through the
// harness, and pushes the entries back, until ctx is cancelled (which
// returns nil) or an assignment names an experiment this binary does
// not know (a version skew error worth dying loudly for). Transport
// errors are logged and retried — a worker outlives server restarts.
// Idle and error sleeps use jittered exponential backoff, reset the
// moment an assignment arrives, so an idle fleet spreads its polls
// instead of thundering in lockstep.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.Name == "" {
		return fmt.Errorf("svc: worker name required")
	}
	interval := opts.PollInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	maxInterval := opts.MaxPollInterval
	if maxInterval <= 0 {
		maxInterval = 16 * interval
	}
	log := opts.Log
	if log == nil {
		log = discardLogger()
	}
	log = log.With("worker", opts.Name)
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	met := newWorkerMetrics(reg)
	client := &Client{Base: opts.Server}
	backoff := Backoff{Base: interval, Max: maxInterval}

	sleep := func() bool {
		t := time.NewTimer(backoff.Next())
		defer t.Stop()
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
			return true
		}
	}

	for {
		if ctx.Err() != nil {
			return nil
		}
		met.polls.Inc()
		a, err := client.Poll(opts.Name)
		if err != nil {
			met.pollErrors.Inc()
			log.Warn("poll failed", "error", err)
			if !sleep() {
				return nil
			}
			continue
		}
		if a == nil {
			if !sleep() {
				return nil
			}
			continue
		}
		backoff.Reset()
		met.assignments.Inc()
		met.busy.Set(1)
		log.Info("assignment received", "job", a.JobID, "ids", a.IDs)
		opt := harness.Options{
			Trials:      a.Trials,
			Seed:        a.Seed,
			Quick:       a.Quick,
			Full:        a.Full,
			Parallelism: opts.Parallelism,
		}
		for _, id := range a.IDs {
			if ctx.Err() != nil {
				met.busy.Set(0)
				return nil
			}
			e, ok := harness.ByID(id)
			if !ok {
				met.busy.Set(0)
				return fmt.Errorf("svc: worker %s assigned unknown experiment %q (server/worker version skew?)", opts.Name, id)
			}
			nrBefore := nodeRoundsTotal()
			start := time.Now()
			tbl, err := e.Run(opt)
			if err != nil {
				// An experiment failing deterministically would fail on every
				// worker; letting the lease expire is worse than telling the
				// operator. Log and skip the push for this id — the server's
				// attempt bound turns persistent failure into a failed job
				// with a diagnostic.
				met.expFailures.Inc()
				log.Error("experiment failed", "job", a.JobID, "experiment", id, "error", err)
				continue
			}
			elapsed := time.Since(start)
			nodeRounds := nodeRoundsTotal() - nrBefore
			met.experiments.Inc()
			met.nodeRounds.Add(nodeRounds)
			met.expSeconds.Observe(elapsed.Seconds())
			var nrPerSec float64
			if s := elapsed.Seconds(); s > 0 {
				nrPerSec = float64(nodeRounds) / s
			}
			// Push each entry as it completes: the push doubles as a
			// heartbeat (the server extends this worker's lease deadlines),
			// so a long assignment only needs every single experiment — not
			// the whole chunk — to finish within the heartbeat window. It
			// also narrows the re-plan after a crash to the truly lost work.
			state, err := client.Push(opts.Name, a.JobID, []shard.Entry{{
				Table:            tbl,
				ElapsedMS:        elapsed.Round(time.Millisecond).Milliseconds(),
				NodeRounds:       nodeRounds,
				NodeRoundsPerSec: nrPerSec,
			}})
			if err != nil {
				met.pushErrors.Inc()
				log.Warn("push failed", "job", a.JobID, "experiment", id, "error", err)
				continue
			}
			log.Info("entry pushed", "job", a.JobID, "experiment", id, "job_state", state)
		}
		met.busy.Set(0)
	}
}
