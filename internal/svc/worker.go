package svc

import (
	"context"
	"fmt"
	"time"

	"wsync/internal/harness"
	"wsync/internal/multihop"
	"wsync/internal/rendezvous"
	"wsync/internal/shard"
	"wsync/internal/sim"
)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Server is the wsyncd base URL.
	Server string
	// Name identifies this worker to the server; it must be unique among
	// concurrently polling workers (the failure detector is per name).
	Name string
	// PollInterval is the idle sleep between polls. Default 500ms.
	PollInterval time.Duration
	// Parallelism is the trial-runner worker count passed to the harness
	// (0 = one per CPU). Results are bit-identical at any setting.
	Parallelism int
	// Logf, if non-nil, receives one line per assignment and push.
	Logf func(format string, args ...any)
}

// nodeRoundsTotal sums the per-engine node-round counters, mirroring
// wexp: sampled around each experiment, the delta is that experiment's
// deterministic node_rounds figure. Experiments run serially within a
// worker, so the delta is exact.
func nodeRoundsTotal() uint64 {
	return sim.TotalNodeRounds() + multihop.TotalNodeRounds() + rendezvous.TotalNodeRounds()
}

// RunWorker polls the server for assignments, runs them through the
// harness, and pushes the entries back, until ctx is cancelled (which
// returns nil) or an assignment names an experiment this binary does
// not know (a version skew error worth dying loudly for). Transport
// errors are logged and retried — a worker outlives server restarts.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.Name == "" {
		return fmt.Errorf("svc: worker name required")
	}
	interval := opts.PollInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client := &Client{Base: opts.Server}

	sleep := func() bool {
		t := time.NewTimer(interval)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
			return true
		}
	}

	for {
		if ctx.Err() != nil {
			return nil
		}
		a, err := client.Poll(opts.Name)
		if err != nil {
			logf("svc: worker %s: poll: %v", opts.Name, err)
			if !sleep() {
				return nil
			}
			continue
		}
		if a == nil {
			if !sleep() {
				return nil
			}
			continue
		}
		logf("svc: worker %s: job %s: running %v", opts.Name, a.JobID, a.IDs)
		opt := harness.Options{
			Trials:      a.Trials,
			Seed:        a.Seed,
			Quick:       a.Quick,
			Full:        a.Full,
			Parallelism: opts.Parallelism,
		}
		for _, id := range a.IDs {
			if ctx.Err() != nil {
				return nil
			}
			e, ok := harness.ByID(id)
			if !ok {
				return fmt.Errorf("svc: worker %s assigned unknown experiment %q (server/worker version skew?)", opts.Name, id)
			}
			nrBefore := nodeRoundsTotal()
			start := time.Now()
			tbl, err := e.Run(opt)
			if err != nil {
				// An experiment failing deterministically would fail on every
				// worker; letting the lease expire is worse than telling the
				// operator. Log and skip the push for this id — the server's
				// attempt bound turns persistent failure into a failed job
				// with a diagnostic.
				logf("svc: worker %s: job %s: %s: %v", opts.Name, a.JobID, id, err)
				continue
			}
			elapsed := time.Since(start)
			nodeRounds := nodeRoundsTotal() - nrBefore
			var nrPerSec float64
			if s := elapsed.Seconds(); s > 0 {
				nrPerSec = float64(nodeRounds) / s
			}
			// Push each entry as it completes: the push doubles as a
			// heartbeat (the server extends this worker's lease deadlines),
			// so a long assignment only needs every single experiment — not
			// the whole chunk — to finish within the heartbeat window. It
			// also narrows the re-plan after a crash to the truly lost work.
			state, err := client.Push(opts.Name, a.JobID, []shard.Entry{{
				Table:            tbl,
				ElapsedMS:        elapsed.Round(time.Millisecond).Milliseconds(),
				NodeRounds:       nodeRounds,
				NodeRoundsPerSec: nrPerSec,
			}})
			if err != nil {
				logf("svc: worker %s: push %s: %v", opts.Name, id, err)
				continue
			}
			logf("svc: worker %s: job %s: pushed %s (job %s)", opts.Name, a.JobID, id, state)
		}
	}
}
