package lowerbound

import (
	"fmt"

	"wsync/internal/rng"
)

// NoSingleton throws m balls independently into len(probs) bins according
// to the given distribution and reports whether no bin received exactly one
// ball — the event Lemma 2 lower-bounds. probs must be non-negative and sum
// to 1 (within tolerance); it panics otherwise, since distributions are
// constructed by experiment code.
func NoSingleton(m int, probs []float64, r *rng.Rand) bool {
	validateDist(probs)
	return noSingleton(m, buildCDF(probs), make([]int, len(probs)), r)
}

// noSingleton is the shared inner loop: throw m balls via the precomputed
// CDF, reusing the caller's counts buffer.
func noSingleton(m int, cdf []float64, counts []int, r *rng.Rand) bool {
	for i := range counts {
		counts[i] = 0
	}
	for b := 0; b < m; b++ {
		counts[sampleCDF(cdf, r)]++
	}
	for _, c := range counts {
		if c == 1 {
			return false
		}
	}
	return true
}

func validateDist(probs []float64) {
	sum := 0.0
	for _, p := range probs {
		if p < 0 {
			panic(fmt.Sprintf("lowerbound: negative probability %v", p))
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		panic(fmt.Sprintf("lowerbound: probabilities sum to %v", sum))
	}
}

// buildCDF returns the running partial sums of probs. The sums accumulate
// left to right — the exact float additions the historical per-ball linear
// scan performed — so sampleCDF draws are bit-identical to the scan's.
func buildCDF(probs []float64) []float64 {
	cdf := make([]float64, len(probs))
	acc := 0.0
	for i, p := range probs {
		acc += p
		cdf[i] = acc
	}
	return cdf
}

// sampleCDF draws a bin: the smallest i with x < cdf[i], falling back to
// the last bin when rounding leaves x beyond the final partial sum. The
// binary search is exact because probs are non-negative, so cdf is
// non-decreasing; it replaces the per-ball linear scan that dominated
// EstimateNoSingleton.
func sampleCDF(cdf []float64, r *rng.Rand) int {
	x := r.Float64()
	lo, hi := 0, len(cdf)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cdf[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(cdf) {
		lo = len(cdf) - 1
	}
	return lo
}

// EstimateNoSingleton estimates P[no bin receives exactly one ball] over
// the given number of trials. The CDF and the counts buffer are built once
// and shared across trials — this is the inner loop of the Lemma 2
// experiments.
func EstimateNoSingleton(m int, probs []float64, trials int, seed uint64) float64 {
	validateDist(probs)
	cdf := buildCDF(probs)
	counts := make([]int, len(probs))
	r := rng.New(seed)
	hit := 0
	for i := 0; i < trials; i++ {
		if noSingleton(m, cdf, counts, r) {
			hit++
		}
	}
	return float64(hit) / float64(trials)
}

// Lemma2Distribution builds a distribution over s+1 bins that satisfies the
// lemma's hypothesis: p_1 <= ... <= p_{s+1} and p_{s+1} >= 1/2. The first s
// bins share mass (1 - pLast) in a geometric profile determined by decay
// (decay = 1 gives equal shares).
func Lemma2Distribution(s int, pLast, decay float64) []float64 {
	if s < 0 || pLast < 0.5 || pLast > 1 || decay <= 0 || decay > 1 {
		panic("lowerbound: invalid Lemma2Distribution parameters")
	}
	probs := make([]float64, s+1)
	probs[s] = pLast
	if s == 0 {
		probs[0] = 1
		return probs
	}
	rest := 1 - pLast
	weight := 0.0
	w := 1.0
	for i := 0; i < s; i++ {
		weight += w
		w *= decay
	}
	w = 1.0
	for i := s - 1; i >= 0; i-- {
		probs[i] = rest * w / weight
		w *= decay
	}
	return probs
}
