package lowerbound

import (
	"fmt"

	"wsync/internal/rng"
)

// NoSingleton throws m balls independently into len(probs) bins according
// to the given distribution and reports whether no bin received exactly one
// ball — the event Lemma 2 lower-bounds. probs must be non-negative and sum
// to 1 (within tolerance); it panics otherwise, since distributions are
// constructed by experiment code.
func NoSingleton(m int, probs []float64, r *rng.Rand) bool {
	validateDist(probs)
	counts := make([]int, len(probs))
	for b := 0; b < m; b++ {
		counts[sampleDist(probs, r)]++
	}
	for _, c := range counts {
		if c == 1 {
			return false
		}
	}
	return true
}

func validateDist(probs []float64) {
	sum := 0.0
	for _, p := range probs {
		if p < 0 {
			panic(fmt.Sprintf("lowerbound: negative probability %v", p))
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		panic(fmt.Sprintf("lowerbound: probabilities sum to %v", sum))
	}
}

func sampleDist(probs []float64, r *rng.Rand) int {
	x := r.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if x < acc {
			return i
		}
	}
	return len(probs) - 1
}

// EstimateNoSingleton estimates P[no bin receives exactly one ball] over
// the given number of trials.
func EstimateNoSingleton(m int, probs []float64, trials int, seed uint64) float64 {
	r := rng.New(seed)
	hit := 0
	for i := 0; i < trials; i++ {
		if NoSingleton(m, probs, r) {
			hit++
		}
	}
	return float64(hit) / float64(trials)
}

// Lemma2Distribution builds a distribution over s+1 bins that satisfies the
// lemma's hypothesis: p_1 <= ... <= p_{s+1} and p_{s+1} >= 1/2. The first s
// bins share mass (1 - pLast) in a geometric profile determined by decay
// (decay = 1 gives equal shares).
func Lemma2Distribution(s int, pLast, decay float64) []float64 {
	if s < 0 || pLast < 0.5 || pLast > 1 || decay <= 0 || decay > 1 {
		panic("lowerbound: invalid Lemma2Distribution parameters")
	}
	probs := make([]float64, s+1)
	probs[s] = pLast
	if s == 0 {
		probs[0] = 1
		return probs
	}
	rest := 1 - pLast
	weight := 0.0
	w := 1.0
	for i := 0; i < s; i++ {
		weight += w
		w *= decay
	}
	w = 1.0
	for i := s - 1; i >= 0; i-- {
		probs[i] = rest * w / weight
		w *= decay
	}
	return probs
}
