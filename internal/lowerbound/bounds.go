package lowerbound

import "math"

// log2 clamps its argument so the evaluators behave at tiny parameters.
func log2(x float64) float64 {
	if x < 2 {
		x = 2
	}
	return math.Log2(x)
}

// Theorem1Rounds evaluates Ω(log²N / ((F−t)·loglogN)), the regular-protocol
// lower bound, without its constant.
func Theorem1Rounds(n, f, t float64) float64 {
	lg := log2(n)
	ll := log2(lg)
	if ll < 1 {
		ll = 1
	}
	if f-t < 1 {
		return math.Inf(1)
	}
	return lg * lg / ((f - t) * ll)
}

// Theorem4Rounds evaluates Ω(Ft/(F−t) · log(1/ε)), the general two-node
// lower bound, without its constant.
func Theorem4Rounds(f, t, eps float64) float64 {
	if f-t < 1 || eps <= 0 || eps >= 1 {
		return math.Inf(1)
	}
	// The bound degenerates at t = 0 (nothing to jam): rendezvous on F
	// channels still needs Ω(F·log(1/ε)/F) = Ω(log 1/ε) rounds; keep the
	// formula's spirit with t clamped to 1.
	if t < 1 {
		t = 1
	}
	return f * t / (f - t) * math.Log(1/eps)
}

// Theorem5Rounds evaluates the combined lower bound of Theorem 5 with
// ε = 1/N.
func Theorem5Rounds(n, f, t float64) float64 {
	return Theorem1Rounds(n, f, t) + Theorem4Rounds(f, t, 1/math.Max(n, 2))
}

// Theorem10Rounds evaluates the Trapdoor Protocol's upper bound
// O(F/(F−t)·log²N + Ft/(F−t)·logN) without its constant.
func Theorem10Rounds(n, f, t float64) float64 {
	if f-t < 1 {
		return math.Inf(1)
	}
	lg := log2(n)
	return f/(f-t)*lg*lg + f*t/(f-t)*lg
}

// Theorem18GoodRounds evaluates the Good Samaritan good-execution bound
// O(t'·log³N) without its constant (t' clamped to 1).
func Theorem18GoodRounds(n, tPrime float64) float64 {
	if tPrime < 1 {
		tPrime = 1
	}
	lg := log2(n)
	return tPrime * lg * lg * lg
}

// Theorem18GeneralRounds evaluates the Good Samaritan general bound
// O(F·log³N) without its constant.
func Theorem18GeneralRounds(n, f float64) float64 {
	lg := log2(n)
	return f * lg * lg * lg
}

// Lemma2Bound returns the Lemma 2 lower bound 2^{−s} on the probability
// that no bin receives exactly one ball, for s nontrivial bins.
func Lemma2Bound(s int) float64 {
	if s < 0 {
		s = 0
	}
	return math.Pow(2, -float64(s))
}
