package lowerbound

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"wsync/internal/rng"
	"wsync/internal/trapdoor"
)

func TestBoundEvaluators(t *testing.T) {
	// Theorem 1 grows with N and shrinks with F−t.
	if Theorem1Rounds(1024, 8, 2) <= Theorem1Rounds(64, 8, 2) {
		t.Error("Theorem1Rounds not increasing in N")
	}
	if Theorem1Rounds(64, 16, 2) >= Theorem1Rounds(64, 8, 2) {
		t.Error("Theorem1Rounds not decreasing in F")
	}
	if !math.IsInf(Theorem1Rounds(64, 2, 2), 1) {
		t.Error("Theorem1Rounds finite at F == t")
	}
	// Theorem 4 grows with t and with 1/ε.
	if Theorem4Rounds(8, 6, 0.01) <= Theorem4Rounds(8, 2, 0.01) {
		t.Error("Theorem4Rounds not increasing in t")
	}
	if Theorem4Rounds(8, 2, 0.001) <= Theorem4Rounds(8, 2, 0.1) {
		t.Error("Theorem4Rounds not increasing in 1/ε")
	}
	if !math.IsInf(Theorem4Rounds(8, 2, 0), 1) {
		t.Error("Theorem4Rounds finite at ε = 0")
	}
	// Theorem 5 dominates both parts.
	if Theorem5Rounds(64, 8, 2) < Theorem1Rounds(64, 8, 2) {
		t.Error("Theorem5Rounds below Theorem 1 part")
	}
	// Theorem 10 grows with t at fixed F.
	if Theorem10Rounds(64, 8, 6) <= Theorem10Rounds(64, 8, 1) {
		t.Error("Theorem10Rounds not increasing in t")
	}
	// Theorem 18: good-case linear in t'; general linear in F.
	if got := Theorem18GoodRounds(64, 4) / Theorem18GoodRounds(64, 2); math.Abs(got-2) > 1e-9 {
		t.Errorf("Theorem18GoodRounds ratio = %v, want 2", got)
	}
	if got := Theorem18GeneralRounds(64, 16) / Theorem18GeneralRounds(64, 8); math.Abs(got-2) > 1e-9 {
		t.Errorf("Theorem18GeneralRounds ratio = %v, want 2", got)
	}
	// Lemma 2 bound.
	if Lemma2Bound(0) != 1 || Lemma2Bound(3) != 0.125 || Lemma2Bound(-1) != 1 {
		t.Error("Lemma2Bound wrong")
	}
}

func TestNoSingletonEdges(t *testing.T) {
	r := rng.New(1)
	// Zero balls: vacuously no singleton bin.
	if !NoSingleton(0, []float64{0.5, 0.5}, r) {
		t.Fatal("m=0 should have no singleton")
	}
	// One ball: always exactly one singleton.
	for i := 0; i < 20; i++ {
		if NoSingleton(1, []float64{0.5, 0.5}, r) {
			t.Fatal("m=1 cannot avoid a singleton")
		}
	}
	// Two balls, one bin: both land together.
	if !NoSingleton(2, []float64{1}, r) {
		t.Fatal("two balls in one bin is not a singleton")
	}
}

func TestNoSingletonValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid distribution accepted")
		}
	}()
	NoSingleton(2, []float64{0.2, 0.2}, rng.New(1))
}

func TestLemma2Distribution(t *testing.T) {
	probs := Lemma2Distribution(4, 0.6, 0.5)
	if len(probs) != 5 {
		t.Fatalf("len = %d", len(probs))
	}
	sum := 0.0
	for i, p := range probs {
		sum += p
		if i > 0 && probs[i-1] > p+1e-12 {
			t.Fatalf("not ascending: %v", probs)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sums to %v", sum)
	}
	if probs[4] != 0.6 {
		t.Fatalf("last = %v", probs[4])
	}
	// s = 0 degenerates to a point mass.
	if got := Lemma2Distribution(0, 0.7, 1); got[0] != 1 {
		t.Fatalf("s=0 distribution = %v", got)
	}
}

// TestLemma2Inequality verifies the lemma empirically: the no-singleton
// probability is at least 2^{−s} for distributions satisfying the
// hypothesis.
func TestLemma2Inequality(t *testing.T) {
	cases := []struct {
		s     int
		pLast float64
		decay float64
		m     int
	}{
		{1, 0.5, 1, 4},
		{2, 0.5, 1, 8},
		{2, 0.7, 0.5, 16},
		{3, 0.5, 1, 32},
		{3, 0.9, 0.25, 8},
		{4, 0.6, 0.5, 64},
	}
	for _, c := range cases {
		probs := Lemma2Distribution(c.s, c.pLast, c.decay)
		got := EstimateNoSingleton(c.m, probs, 4000, 42)
		bound := Lemma2Bound(c.s)
		// Allow modest Monte-Carlo slack below the bound.
		if got < bound*0.85 {
			t.Errorf("s=%d pLast=%v decay=%v m=%d: P = %v below bound %v",
				c.s, c.pLast, c.decay, c.m, got, bound)
		}
	}
}

// Property: the Lemma 2 inequality holds across random hypothesis-satisfying
// distributions.
func TestQuickLemma2(t *testing.T) {
	f := func(sRaw, mRaw, decayRaw, pRaw uint8) bool {
		s := int(sRaw%4) + 1
		m := int(mRaw%32) + 2
		decay := 0.25 + float64(decayRaw%3)*0.25 // 0.25, 0.5, 0.75
		pLast := 0.5 + float64(pRaw%5)*0.1       // 0.5 .. 0.9
		probs := Lemma2Distribution(s, pLast, decay)
		got := EstimateNoSingleton(m, probs, 1500, uint64(sRaw)<<8|uint64(mRaw))
		return got >= Lemma2Bound(s)*0.7 // generous MC slack
	}
	// Fixed generator: the property is statistical (a Monte-Carlo estimate
	// against a slackened bound), so a time-seeded input stream makes the
	// test flaky in CI.
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTwoNodeGameMatchesScan is the differential contract behind the
// engine-backed TwoNodeGame: across schedules, offsets, budgets, and
// seeds, the rendezvous engine and the pre-engine scan loop report
// bit-identical results.
func TestTwoNodeGameMatchesScan(t *testing.T) {
	p := trapdoor.Params{N: 16, F: 8, T: 2}
	regs := []struct {
		name string
		u, v Regular
	}{
		{"uniform-4", UniformRegular{M: 4, P: 0.5}, UniformRegular{M: 4, P: 0.5}},
		{"uniform-asym", UniformRegular{M: 4, P: 0.5}, UniformRegular{M: 8, P: 0.25}},
		{"trapdoor", NewTrapdoorRegular(p), NewTrapdoorRegular(p)},
		{"unknown-t", UnknownT{F: 8, Dwell: 8}, UnknownT{F: 8, Dwell: 8}},
	}
	seeds := 25
	if testing.Short() {
		seeds = 6
	}
	// A modest round budget keeps the sweep fast; the never-met cells
	// (width <= t) exercise the truncation path on both implementations.
	for _, rc := range regs {
		for _, tJam := range []int{0, 2, 5} {
			for _, offset := range []uint64{0, 9} {
				for seed := uint64(0); seed < uint64(seeds); seed++ {
					got := TwoNodeGame(rc.u, rc.v, 8, tJam, offset, 1<<12, seed)
					want := TwoNodeGameScan(rc.u, rc.v, 8, tJam, offset, 1<<12, seed)
					if got != want {
						t.Fatalf("%s t=%d offset=%d seed=%d: engine %+v, scan %+v",
							rc.name, tJam, offset, seed, got, want)
					}
				}
			}
		}
	}
}

// TestTwoNodeGameEdges covers the parameter extremes that previously had
// no direct coverage; the engine and the scan oracle must agree on every
// one of them.
func TestTwoNodeGameEdges(t *testing.T) {
	cases := []struct {
		name      string
		reg       UniformRegular
		f, t      int
		offset    uint64
		maxRounds uint64
		wantMet   bool
	}{
		// Offset at and beyond the budget: the game still plays maxRounds
		// rounds, only the local clocks are shifted.
		{"offset == maxRounds", UniformRegular{M: 4, P: 0.5}, 4, 0, 1 << 12, 1 << 12, true},
		{"offset >> maxRounds", UniformRegular{M: 4, P: 0.5}, 4, 0, 1 << 40, 1 << 12, true},
		// No jamming: rendezvous on the open band.
		{"t = 0", UniformRegular{M: 8, P: 0.5}, 8, 0, 0, 1 << 12, true},
		// One channel, no budget: meet as soon as the roles differ.
		{"f = 1 open", UniformRegular{M: 1, P: 0.5}, 1, 0, 0, 1 << 12, true},
		// One channel, fully jammed: never.
		{"f = 1 jammed", UniformRegular{M: 1, P: 0.5}, 1, 1, 0, 1 << 10, false},
		// Zero budget of rounds: nothing happens.
		{"maxRounds = 0", UniformRegular{M: 4, P: 0.5}, 4, 1, 0, 0, false},
	}
	for _, c := range cases {
		for seed := uint64(0); seed < 5; seed++ {
			got := TwoNodeGame(c.reg, c.reg, c.f, c.t, c.offset, c.maxRounds, seed)
			want := TwoNodeGameScan(c.reg, c.reg, c.f, c.t, c.offset, c.maxRounds, seed)
			if got != want {
				t.Fatalf("%s seed %d: engine %+v, scan %+v", c.name, seed, got, want)
			}
			if got.Met != c.wantMet {
				t.Fatalf("%s seed %d: Met = %v, want %v (%+v)", c.name, seed, got.Met, c.wantMet, got)
			}
			if got.Met && got.Rounds > c.maxRounds {
				t.Fatalf("%s: met after the budget: %+v", c.name, got)
			}
		}
	}
}

// sampleDistScan is the retired per-ball linear scan, kept as the oracle
// for the CDF sampler.
func sampleDistScan(probs []float64, r *rng.Rand) int {
	x := r.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if x < acc {
			return i
		}
	}
	return len(probs) - 1
}

// TestSampleCDFMatchesScan pins the bit-identical replacement of the
// linear scan: same distribution, same stream, same draws.
func TestSampleCDFMatchesScan(t *testing.T) {
	dists := [][]float64{
		{1},
		{0.5, 0.5},
		{0.25, 0.25, 0.5},
		Lemma2Distribution(4, 0.6, 0.5),
		Lemma2Distribution(7, 0.5, 1),
		// Slightly deficient sum (within validateDist tolerance): the tail
		// fallback must agree too.
		{0.4995, 0.4995},
	}
	for di, probs := range dists {
		cdf := buildCDF(probs)
		ra, rb := rng.New(uint64(di)+1), rng.New(uint64(di)+1)
		for i := 0; i < 20000; i++ {
			got := sampleCDF(cdf, ra)
			want := sampleDistScan(probs, rb)
			if got != want {
				t.Fatalf("dist %d draw %d: cdf %d, scan %d", di, i, got, want)
			}
		}
	}
}

// TestEstimateNoSingletonUnchanged re-runs the estimate through the old
// NoSingleton-per-trial path and requires exact equality — the CDF hoist
// must not move a single draw.
func TestEstimateNoSingletonUnchanged(t *testing.T) {
	probs := Lemma2Distribution(3, 0.6, 0.5)
	const trials, seed = 3000, 42
	got := EstimateNoSingleton(16, probs, trials, seed)
	r := rng.New(seed)
	hit := 0
	for i := 0; i < trials; i++ {
		if NoSingleton(16, probs, r) {
			hit++
		}
	}
	want := float64(hit) / float64(trials)
	if got != want {
		t.Fatalf("EstimateNoSingleton = %v, per-trial path = %v", got, want)
	}
}

func TestUniformRegular(t *testing.T) {
	u := UniformRegular{M: 4, P: 0.25}
	if u.Dist(1).Max() != 4 || u.TxProb(99) != 0.25 {
		t.Fatal("UniformRegular misbehaves")
	}
}

func TestTrapdoorRegularRamp(t *testing.T) {
	p := trapdoor.Params{N: 16, F: 8, T: 2, CEpoch: 4, CFinal: 4}
	reg := NewTrapdoorRegular(p)
	le := p.EpochLen()
	// Round 1 is epoch 1; round le+1 is epoch 2; etc.
	if got, want := reg.TxProb(1), p.BroadcastProb(1); got != want {
		t.Fatalf("round 1 prob = %v, want %v", got, want)
	}
	if got, want := reg.TxProb(le+1), p.BroadcastProb(2); got != want {
		t.Fatalf("round le+1 prob = %v, want %v", got, want)
	}
	// Beyond all epochs: final probability 1/2.
	if got := reg.TxProb(1 << 40); got != 0.5 {
		t.Fatalf("late prob = %v, want 0.5", got)
	}
	if reg.Dist(1).Max() != p.FPrime() {
		t.Fatalf("dist max = %d, want F' = %d", reg.Dist(1).Max(), p.FPrime())
	}
}

func TestFirstClearQuick(t *testing.T) {
	// One node, half its rounds transmitting on [1..2], frequency 1 jammed:
	// a clear broadcast happens within a few rounds.
	res, err := FirstClear(UniformRegular{M: 2, P: 0.5}, 1, 2, 1, 10000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Happened {
		t.Fatal("no clear broadcast in 10000 rounds")
	}
	if res.Rounds > 200 {
		t.Fatalf("first clear at round %d, expected within ~4 on average", res.Rounds)
	}
}

func TestFirstClearNeverWhenAllJammed(t *testing.T) {
	// Width 1 with frequency 1 jammed: no clear broadcast ever.
	res, err := FirstClear(UniformRegular{M: 1, P: 0.5}, 2, 2, 1, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Happened {
		t.Fatal("clear broadcast on a fully jammed schedule")
	}
}

func TestFirstClearErrors(t *testing.T) {
	if _, err := FirstClear(UniformRegular{M: 2, P: 0.5}, 0, 2, 1, 10, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestTwoNodeGameMeets(t *testing.T) {
	res := TwoNodeGame(UniformRegular{M: 4, P: 0.5}, UniformRegular{M: 4, P: 0.5}, 4, 1, 0, 100000, 7)
	if !res.Met {
		t.Fatal("nodes never met")
	}
	if res.Rounds == 0 {
		t.Fatal("met at round 0")
	}
}

func TestTwoNodeGameOffset(t *testing.T) {
	res := TwoNodeGame(UniformRegular{M: 4, P: 0.5}, UniformRegular{M: 4, P: 0.5}, 4, 1, 500, 100000, 8)
	if !res.Met {
		t.Fatal("offset nodes never met")
	}
}

func TestTwoNodeGameBlockedWidth(t *testing.T) {
	// Width <= t: the greedy adversary covers the whole support.
	res := TwoNodeGame(UniformRegular{M: 2, P: 0.5}, UniformRegular{M: 2, P: 0.5}, 8, 2, 0, 2000, 9)
	if res.Met {
		t.Fatal("met despite fully jammed support")
	}
}

func TestTwoNodeGameHarderWithMoreJamming(t *testing.T) {
	mean := func(tJam int, seed uint64) float64 {
		total := 0.0
		const trials = 150
		for i := 0; i < trials; i++ {
			res := TwoNodeGame(UniformRegular{M: 8, P: 0.5}, UniformRegular{M: 8, P: 0.5},
				8, tJam, 0, 1<<20, seed+uint64(i))
			if !res.Met {
				total += float64(uint64(1) << 20)
				continue
			}
			total += float64(res.Rounds)
		}
		return total / trials
	}
	easy := mean(1, 100)
	hard := mean(6, 200)
	if hard <= easy {
		t.Fatalf("t=6 mean %.1f not harder than t=1 mean %.1f", hard, easy)
	}
}

// TestBestUniformWidth reproduces the Theorem 4 extremal structure: the
// optimal spreading width is near min(F, 2t), and in particular beats
// spreading across the whole band.
func TestBestUniformWidth(t *testing.T) {
	best, means := BestUniformWidth(8, 2, 250, 1<<16, 77, 4)
	if best <= 2 {
		t.Fatalf("best width %d within jammed region", best)
	}
	if means[4] >= means[8]*1.05 {
		t.Fatalf("width 4 (%.1f) should beat width 8 (%.1f)", means[4], means[8])
	}
	if best < 3 || best > 6 {
		t.Fatalf("best width = %d, want near min(F, 2t) = 4", best)
	}
}

func TestTrapdoorScheduleFirstClearGrowsWithN(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep")
	}
	mean := func(n int) float64 {
		p := trapdoor.Params{N: n, F: 8, T: 2}
		reg := NewTrapdoorRegular(p)
		total := 0.0
		const trials = 20
		for s := uint64(0); s < trials; s++ {
			res, err := FirstClear(reg, n, 8, 2, 1<<20, s)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Happened {
				t.Fatalf("N=%d seed %d: no clear broadcast", n, s)
			}
			total += float64(res.Rounds)
		}
		return total / trials
	}
	small := mean(16)
	large := mean(256)
	if large <= small {
		t.Fatalf("first-clear time not growing with N: N=16 → %.1f, N=256 → %.1f", small, large)
	}
}

func TestUnknownTWidthCycle(t *testing.T) {
	u := UnknownT{F: 16, Dwell: 3}
	// Widths cycle 2, 4, 8, 16 with 3 rounds each.
	want := []int{2, 2, 2, 4, 4, 4, 8, 8, 8, 16, 16, 16, 2}
	for i, w := range want {
		if got := u.phaseWidth(uint64(i + 1)); got != w {
			t.Fatalf("round %d width = %d, want %d", i+1, got, w)
		}
	}
	if u.TxProb(5) != 0.5 {
		t.Fatal("tx prob != 1/2")
	}
}

func TestUnknownTDefaultsDwell(t *testing.T) {
	u := UnknownT{F: 8}
	if got := u.phaseWidth(1); got != 2 {
		t.Fatalf("width = %d", got)
	}
	if got := u.phaseWidth(2); got != 4 {
		t.Fatalf("dwell default: width = %d, want 4", got)
	}
}

// TestUnknownTRendezvous: without knowing t, the cycling schedule still
// meets, paying a modest factor over the t-aware optimal width.
func TestUnknownTRendezvous(t *testing.T) {
	const f, tJam, trials = 8, 2, 200
	mean := func(reg Regular) float64 {
		total := 0.0
		for i := 0; i < trials; i++ {
			res := TwoNodeGame(reg, reg, f, tJam, 0, 1<<20, 500+uint64(i))
			if !res.Met {
				t.Fatal("never met")
			}
			total += float64(res.Rounds)
		}
		return total / trials
	}
	aware := mean(UniformRegular{M: 4, P: 0.5})
	unaware := mean(UnknownT{F: f, Dwell: 8})
	if unaware < aware {
		t.Fatalf("t-unaware (%.1f) beat t-aware (%.1f)?", unaware, aware)
	}
	// lg F = 3 widths; the overhead should be bounded by ~2·lgF.
	if unaware > aware*8 {
		t.Fatalf("t-unaware overhead %.1fx too large", unaware/aware)
	}
}
