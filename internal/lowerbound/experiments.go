package lowerbound

import (
	"fmt"

	"wsync/internal/adversary"
	"wsync/internal/pool"
	"wsync/internal/rendezvous"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

// FirstClearResult reports one Theorem 1 experiment run.
type FirstClearResult struct {
	// Rounds is the round of the first clear broadcast (a lone,
	// undisrupted transmitter), 0 if none occurred within the budget.
	Rounds uint64
	// Happened reports whether a clear broadcast occurred at all.
	Happened bool
}

// FirstClear runs the Theorem 1 setting: n nodes all activated in round 1
// run the regular schedule against the weak adversary disrupting
// frequencies 1..t forever; the run stops at the first clear broadcast.
// Any solution to wireless synchronization must produce this event, so its
// first occurrence lower-bounds synchronization time.
func FirstClear(reg Regular, n, f, t int, maxRounds uint64, seed uint64) (FirstClearResult, error) {
	cfg := &sim.Config{
		F:    f,
		T:    t,
		Seed: seed,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return NewAgent(reg, r)
		},
		Schedule:       sim.Simultaneous{Count: n},
		Adversary:      adversary.NewPrefix(f, t),
		MaxRounds:      maxRounds,
		RunToMaxRounds: true,
		StopWhen:       func(h *sim.History) bool { return h.EverClear },
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return FirstClearResult{}, fmt.Errorf("lowerbound: first-clear run: %w", err)
	}
	return FirstClearResult{Rounds: res.FirstClear, Happened: res.FirstClear != 0}, nil
}

// TwoNodeResult reports one Theorem 4 rendezvous game.
type TwoNodeResult struct {
	// Rounds counts rounds after the second node awakes until the first
	// successful rendezvous (one node transmits, the other listens, same
	// undisrupted frequency); 0 with Met == false if the budget ran out.
	Rounds uint64
	Met    bool
}

// TwoNodeGame plays the Theorem 4 game: nodes u and v follow regular
// schedules (v awakened offset rounds after u) against the greedy adversary
// that each round disrupts the t frequencies with the largest product
// p_j·q_j of the nodes' selection probabilities — the strategy from the
// Theorem 4 proof. The game ends at the first rendezvous.
//
// Since the rendezvous engine landed, TwoNodeGame is a two-party instance
// of rendezvous.Run with the Greedy product jammer; TwoNodeGameScan keeps
// the original private loop as the differential oracle. Both produce
// bit-identical meeting rounds (TestTwoNodeGameMatchesScan).
func TwoNodeGame(u, v Regular, f, t int, offset uint64, maxRounds uint64, seed uint64) TwoNodeResult {
	if maxRounds == 0 {
		return TwoNodeResult{}
	}
	res, err := rendezvous.Run(&rendezvous.Config{
		F: f,
		Parties: []rendezvous.Party{
			{Strategy: StrategyFromRegular(u), Head: offset},
			{Strategy: StrategyFromRegular(v)},
		},
		Jammer:    rendezvous.NewGreedy(f, t),
		MaxRounds: maxRounds,
		Seed:      seed,
	})
	if err != nil {
		// The wrapper constructs a valid config for every input the scan
		// loop accepted; a failure here is a programming error.
		panic(fmt.Sprintf("lowerbound: two-node game: %v", err))
	}
	return TwoNodeResult{Rounds: res.FirstMeet, Met: res.FirstMeet != 0}
}

// TwoNodeGameScan is the pre-engine implementation of TwoNodeGame, kept as
// the differential oracle for the shared rendezvous engine (the same role
// sim.MediumScan plays for the frequency-indexed medium). It must stay
// bit-identical to TwoNodeGame.
func TwoNodeGameScan(u, v Regular, f, t int, offset uint64, maxRounds uint64, seed uint64) TwoNodeResult {
	r := rng.New(seed)
	ru := r.Split(1)
	rv := r.Split(2)

	products := make([]float64, f+1)
	disrupted := make([]bool, f+1)

	for i := uint64(1); i <= maxRounds; i++ {
		uLocal := offset + i // u has been awake for offset rounds already
		vLocal := i

		du, dv := u.Dist(uLocal), v.Dist(vLocal)
		bu, bv := u.TxProb(uLocal), v.TxProb(vLocal)

		// Greedy adversary: block the t largest p_j·q_j products.
		for j := 1; j <= f; j++ {
			products[j] = du.Prob(j) * dv.Prob(j)
			disrupted[j] = false
		}
		for k := 0; k < t; k++ {
			best, bestVal := 0, -1.0
			for j := 1; j <= f; j++ {
				if !disrupted[j] && products[j] > bestVal {
					best, bestVal = j, products[j]
				}
			}
			if best == 0 {
				break
			}
			disrupted[best] = true
		}

		fu := du.Sample(ru)
		fv := dv.Sample(rv)
		txu := ru.Bernoulli(bu)
		txv := rv.Bernoulli(bv)
		if fu == fv && txu != txv && !disrupted[fu] {
			return TwoNodeResult{Rounds: i, Met: true}
		}
	}
	return TwoNodeResult{}
}

// BestUniformWidth plays the two-node game with UniformRegular{M, 1/2}
// schedules for every width M in [1..F] and returns the width minimizing
// the mean rendezvous time, along with the per-width means. It reproduces
// the Theorem 4 proof's extremal structure: the optimum is near min(F, 2t).
//
// The (width, trial) grid is fanned out across `workers` goroutines via
// the shared work-stealing scheduler (0 means one per CPU). Per-game
// seeds depend only on (seed, width, trial) and the per-width reduction
// sums in trial order, so the result is bit-identical at every worker
// count.
func BestUniformWidth(f, t int, trials int, maxRounds uint64, seed uint64, workers int) (best int, means []float64) {
	means = make([]float64, f+1)
	// Widths m <= t are fully jammable: rendezvous never happens, so they
	// cost the full budget and never enter the job grid.
	for m := 1; m <= t && m <= f; m++ {
		means[m] = float64(maxRounds)
	}
	playable := f - t // m in [t+1, f]
	if playable <= 0 {
		return 1, means
	}
	rounds := make([]float64, playable*trials) // rounds[(m-t-1)*trials + i]
	pool.Run(workers, playable*trials, func(_, job int) {
		m, i := t+1+job/trials, job%trials
		res := TwoNodeGame(UniformRegular{M: m, P: 0.5}, UniformRegular{M: m, P: 0.5},
			f, t, 0, maxRounds, seed+uint64(i)*7919+uint64(m))
		if res.Met {
			rounds[job] = float64(res.Rounds)
		} else {
			rounds[job] = float64(maxRounds)
		}
	})

	best = 1
	bestMean := -1.0
	for m := t + 1; m <= f; m++ {
		total := 0.0
		for i := 0; i < trials; i++ {
			total += rounds[(m-t-1)*trials+i]
		}
		means[m] = total / float64(trials)
		if bestMean < 0 || means[m] < bestMean {
			best, bestMean = m, means[m]
		}
	}
	return best, means
}
