// Package lowerbound implements the paper's lower-bound constructions as
// runnable experiments, plus closed-form evaluators for every bound in the
// paper. Three experiments live here:
//
//   - the Lemma 2 balls-in-bins process (no bin receives exactly one ball
//     with probability at least 2^{−s});
//   - the Theorem 1 setting: n nodes running a regular protocol against
//     the weak adversary that disrupts frequencies 1..t forever, measured
//     until the first clear broadcast;
//   - the Theorem 4 two-node rendezvous game against the greedy adversary
//     that disrupts the t frequencies with the largest p_j·q_j products.
package lowerbound
