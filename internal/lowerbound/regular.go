package lowerbound

import (
	"wsync/internal/freqdist"
	"wsync/internal/msg"
	"wsync/internal/rendezvous"
	"wsync/internal/rng"
	"wsync/internal/sim"
	"wsync/internal/trapdoor"
)

// Regular describes a regular protocol (Section 5): a fixed sequence of
// (frequency distribution, broadcast probability) pairs that a node follows
// until it receives its first message. Both of the paper's protocols are
// regular; the lower-bound experiments run directly against these
// schedules.
type Regular interface {
	// Dist returns the frequency distribution for the node's local round.
	Dist(local uint64) freqdist.Dist
	// TxProb returns the broadcast probability for the local round.
	TxProb(local uint64) float64
}

// UniformRegular is the simplest regular schedule: always uniform over
// [1..M], always transmitting with probability P. Sweeping M reproduces the
// Theorem 4 proof's insight that the optimal spreading width is min(F, 2t).
type UniformRegular struct {
	M int
	P float64
}

var _ Regular = UniformRegular{}

// Dist returns the uniform distribution over [1..M].
func (u UniformRegular) Dist(uint64) freqdist.Dist { return freqdist.NewUniform(1, u.M) }

// TxProb returns P.
func (u UniformRegular) TxProb(uint64) float64 { return u.P }

// TrapdoorRegular is the Trapdoor Protocol's pre-message behavior as a
// regular schedule: uniform over [1..F'] with the Figure 1 probability
// ramp. Rounds beyond the last epoch keep the final probability.
type TrapdoorRegular struct {
	P trapdoor.Params

	dist freqdist.Uniform
}

var _ Regular = (*TrapdoorRegular)(nil)

// NewTrapdoorRegular builds the schedule for the given parameters.
func NewTrapdoorRegular(p trapdoor.Params) *TrapdoorRegular {
	return &TrapdoorRegular{P: p, dist: freqdist.NewUniform(1, p.FPrime())}
}

// Dist returns the uniform distribution over [1..F'].
func (t *TrapdoorRegular) Dist(uint64) freqdist.Dist { return t.dist }

// TxProb returns the Figure 1 epoch probability for the local round.
func (t *TrapdoorRegular) TxProb(local uint64) float64 {
	lg := t.P.LgN()
	le := t.P.EpochLen()
	regular := uint64(lg-1) * le
	if local <= regular && le > 0 {
		e := int((local-1)/le) + 1
		return t.P.BroadcastProb(e)
	}
	return t.P.BroadcastProb(lg)
}

// UnknownT is a regular schedule for the setting of Meier et al.
// (discussed in Section 4) where the disruption budget t is NOT known: it
// cycles through spreading widths 2, 4, ..., F, spending `dwell` rounds on
// each before doubling, then restarting. Whatever the actual t, a constant
// fraction of each cycle is spent within a factor two of the optimal width
// min(F, 2t), so rendezvous costs only an O(lg F) factor over knowing t.
type UnknownT struct {
	F     int
	Dwell uint64 // rounds per width (>= 1)
}

var _ Regular = UnknownT{}

// phaseWidth returns the width used in the given local round.
func (u UnknownT) phaseWidth(local uint64) int {
	dwell := u.Dwell
	if dwell == 0 {
		dwell = 1
	}
	steps := 1
	for w := 2; w < u.F; w *= 2 {
		steps++
	}
	phase := int((local - 1) / dwell % uint64(steps))
	width := 2
	for i := 0; i < phase; i++ {
		width *= 2
	}
	if width > u.F {
		width = u.F
	}
	return width
}

// Dist returns the uniform distribution over the current width.
func (u UnknownT) Dist(local uint64) freqdist.Dist {
	return freqdist.NewUniform(1, u.phaseWidth(local))
}

// TxProb returns 1/2 (the two-node game's optimum).
func (u UnknownT) TxProb(uint64) float64 { return 0.5 }

// regularStrategy adapts a Regular schedule to the rendezvous engine: the
// channel draw comes first and the transmit coin second, the same stream
// order the two-node scan loop used, so engine games are bit-compatible
// with their pre-engine counterparts.
type regularStrategy struct {
	reg Regular
}

var _ rendezvous.Profiled = regularStrategy{}

// StrategyFromRegular wraps a Regular schedule as a rendezvous strategy.
// The result is Profiled (product jammers can inspect it) and stateless,
// so one value may serve several parties.
func StrategyFromRegular(reg Regular) rendezvous.Profiled {
	return regularStrategy{reg: reg}
}

// Pick samples the schedule's distribution, then the broadcast coin.
func (s regularStrategy) Pick(local uint64, r *rng.Rand) (int, bool) {
	f := s.reg.Dist(local).Sample(r)
	return f, r.Bernoulli(s.reg.TxProb(local))
}

// Prob returns the schedule's per-round channel probability.
func (s regularStrategy) Prob(local uint64, f int) float64 {
	return s.reg.Dist(local).Prob(f)
}

// Agent adapts a Regular schedule to sim.Agent: it follows the schedule
// forever, never reacts to deliveries, and never outputs. The Theorem 1
// experiment uses it to measure the time to the first clear broadcast.
type Agent struct {
	reg Regular
	r   *rng.Rand
}

var _ sim.Agent = (*Agent)(nil)

// NewAgent wraps the schedule for one node.
func NewAgent(reg Regular, r *rng.Rand) *Agent {
	return &Agent{reg: reg, r: r}
}

// Step implements sim.Agent.
func (a *Agent) Step(local uint64) sim.Action {
	f := a.reg.Dist(local).Sample(a.r)
	if a.r.Bernoulli(a.reg.TxProb(local)) {
		return sim.Action{
			Freq:     f,
			Transmit: true,
			Msg:      msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{Age: local}},
		}
	}
	return sim.Action{Freq: f}
}

// Deliver implements sim.Agent (regular pre-message behavior: ignore).
func (a *Agent) Deliver(msg.Message) {}

// Output implements sim.Agent: always ⊥.
func (a *Agent) Output() sim.Output { return sim.Output{} }
