package harness

import (
	"fmt"
	"sync/atomic"

	"wsync/internal/adversary"
	"wsync/internal/multihop"
	"wsync/internal/replog"
	"wsync/internal/rng"
	"wsync/internal/sim"
	"wsync/internal/trapdoor"
	"wsync/internal/unslotted"
)

// runX5 measures the slotted→unslotted transformation (Section 8,
// "Unsynchronized rounds"): the Trapdoor Protocol runs unchanged on
// phase-shifted clocks at a constant multiplicative cost.
func runX5(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "X5",
		Title:   "Unslotted transformation (Section 8)",
		Columns: []string{"n", "F", "t", "slotted median (rounds)", "unslotted median (rounds)", "round ratio", "wall-clock factor"},
	}
	p := trapdoor.Params{N: 16, F: 6, T: 2}
	const active = 4
	slotted, err := o.summarizeTrials(o.trials(), func(i int) (float64, error) {
		rr, err := trapdoorRun(p, active, adversary.NewPrefix(p.F, p.T), o.TrialSeed(pointKey(ptX5, 0), i), 1<<21)
		if err != nil {
			return 0, err
		}
		if !rr.res.AllSynced {
			return 0, checkFailf("X5: slotted trial %d did not synchronize", i)
		}
		return float64(rr.res.MaxSyncLocal), nil
	})
	if err != nil {
		return nil, err
	}
	unslottedSum, err := o.summarizeTrials(o.trials(), func(i int) (float64, error) {
		res, err := unslotted.Run(&unslotted.Config{
			F:    p.F,
			T:    p.T,
			Seed: o.TrialSeed(pointKey(ptX5, 1), i),
			N:    active,
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				return trapdoor.MustNew(p, r)
			},
			Phase:     unslotted.RandomPhases(active, o.TrialSeed(pointKey(ptX5, 2), i)),
			Adversary: adversary.NewPrefix(p.F, p.T),
			MaxRounds: 1 << 21,
		})
		if err != nil {
			return 0, err
		}
		if !res.AllSynced {
			return 0, checkFailf("X5: unslotted trial %d did not synchronize", i)
		}
		worst := uint64(0)
		for _, s := range res.SyncRound {
			if s > worst {
				worst = s
			}
		}
		return float64(worst), nil
	})
	if err != nil {
		return nil, err
	}
	sMed := slotted.Median
	uMed := unslottedSum.Median
	tbl.AddRow(active, p.F, p.T, sMed, uMed, uMed/sMed, 2*uMed/sMed)
	tbl.Notes = append(tbl.Notes,
		"unslotted: nodes have random half-slot phase offsets; each protocol round spans two half-slots, messages sent in both",
		"the protocol runs unchanged; the transformation costs a constant factor in wall-clock time (2x half-slots per round)",
		"this validates the paper's conjecture that slotted protocols transfer to non-slotted models à la ALOHA")
	return tbl, nil
}

// runX6 measures the replicated log built on synchronized rounds (Section
// 8, "Broader implications"): time to replicate and commit a command
// sequence under increasing jamming.
func runX6(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "X6",
		Title:   "Replicated log on synchronized rounds (Section 8)",
		Columns: []string{"members", "F", "t", "commands", "median rounds to full commit", "consistent prefixes"},
	}
	const members, f, cmds = 4, 8, 5
	commands := make([]uint64, cmds)
	for i := range commands {
		commands[i] = 100 * uint64(i+1)
	}
	ts := []int{0, 2, 3}
	if o.quick() {
		ts = []int{2}
	}
	for _, tJam := range ts {
		p := trapdoor.Params{N: 16, F: f, T: maxInt(tJam, 1)}
		var inconsistent atomic.Bool
		s, err := o.summarizeTrials(o.trials(), func(i int) (float64, error) {
			nodes := make([]*replog.Node, members)
			var adv sim.Adversary
			if tJam > 0 {
				adv = adversary.NewRandom(f, tJam, o.TrialSeed(pointKey(ptX6Adversary, uint64(tJam)), i))
			}
			cfg := &sim.Config{
				F:    f,
				T:    maxInt(tJam, 1),
				Seed: o.TrialSeed(pointKey(ptX6Sim, uint64(tJam)), i),
				NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
					n, err := replog.New(replog.Config{
						Members: members, F: f, Commands: commands, Settle: 200,
					}, trapdoor.MustNew(p, r), r)
					if err != nil {
						panic(err)
					}
					nodes[id] = n
					return n
				},
				Schedule:       sim.Simultaneous{Count: members},
				Adversary:      adv,
				MaxRounds:      200000,
				RunToMaxRounds: true,
				StopWhen: func(h *sim.History) bool {
					for _, n := range nodes {
						if n == nil || n.CommitIndex() < cmds {
							return false
						}
					}
					return true
				},
			}
			res, err := sim.Run(cfg)
			if err != nil {
				return 0, err
			}
			for _, n := range nodes {
				log := n.Log()
				for k, v := range log {
					if v != commands[k] {
						inconsistent.Store(true)
					}
				}
				if n.CommitIndex() < cmds {
					return 0, checkFailf("X6: t=%d trial %d committed %d/%d", tJam, i, n.CommitIndex(), cmds)
				}
			}
			return float64(res.Stats.Rounds), nil
		})
		if err != nil {
			return nil, err
		}
		verdict := "yes"
		if inconsistent.Load() {
			verdict = "NO"
		}
		tbl.AddRow(members, f, tJam, cmds, s.Median, verdict)
	}
	tbl.Notes = append(tbl.Notes,
		"pipeline: Trapdoor synchronization (electing the leader) → leader replicates entries → followers acknowledge → quorum commit",
		"committed prefixes were byte-identical across members in every round of every run (safety invariant)",
		"jamming only delays replication; retransmission over synchronized rounds is the sole recovery mechanism")
	return tbl, nil
}

// runX7 measures multi-hop synchronization (Section 8's closing open
// question) with the relay extension: convergence time grows with network
// diameter.
func runX7(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "X7",
		Title:   "Multi-hop relay synchronization (Section 8)",
		Columns: []string{"topology", "nodes", "diameter", "median rounds", "schemes merged to"},
	}
	type topoCase struct {
		name string
		topo *multihop.Topology
		p    trapdoor.Params
	}
	// Sparse shapes keep the historical participant bound; geometric
	// graphs have Θ(log n) neighborhoods, so their regional competitions
	// need a larger bound. The RGG radii sit ~1.5× above the connectivity
	// threshold √(ln n / (π n)), which keeps diameters growing while
	// RandomGeometricConnected nearly always accepts the first sample.
	sparse := trapdoor.Params{N: 8, F: 6, T: 2}
	geo := trapdoor.Params{N: 64, F: 6, T: 2}
	cases := []topoCase{
		{"line-4", multihop.Line(4), sparse},
		{"line-8", multihop.Line(8), sparse},
		{"line-16", multihop.Line(16), sparse},
		{"grid-4x4", multihop.Grid(4, 4), sparse},
		{"rgg-64", multihop.RandomGeometricConnected(64, 0.22, 41), geo},
	}
	if o.Full {
		// Full tier: random geometric graphs to N=4096 — the ad hoc
		// deployment sweep the frequency-indexed multi-hop medium makes
		// tractable. Point keys stay index-based, so appending here (and
		// only here) keeps the historical cases' trial seeds stable.
		cases = append(cases,
			topoCase{"rgg-256", multihop.RandomGeometricConnected(256, 0.125, 42), geo},
			topoCase{"rgg-1024", multihop.RandomGeometricConnected(1024, 0.07, 43), geo},
			topoCase{"rgg-4096", multihop.RandomGeometricConnected(4096, 0.04, 44), geo},
		)
	}
	if o.quick() {
		cases = cases[:2]
	}
	for ci, c := range cases {
		ci, c := ci, c
		p := c.p
		var conflicting atomic.Bool
		s, err := o.summarizeTrials(o.trials(), func(i int) (float64, error) {
			nodes := make([]*multihop.RelayNode, c.topo.N())
			// Stop at network-wide agreement: every node synced on the
			// same scheme with the same round value.
			agreed := func(uint64) bool {
				var scheme uint64
				var value uint64
				for idx, n := range nodes {
					if n == nil {
						return false
					}
					out := n.Output()
					if !out.Synced {
						return false
					}
					if idx == 0 {
						scheme, value = n.Scheme(), out.Value
						continue
					}
					if n.Scheme() != scheme || out.Value != value {
						return false
					}
				}
				return true
			}
			res, err := multihop.Run(&multihop.Config{
				F: p.F, T: p.T,
				Seed:     o.TrialSeed(pointKey(ptX7Sim, uint64(ci)), i),
				Topology: c.topo,
				NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
					n := multihop.MustNewRelay(p, r)
					nodes[id] = n
					return n
				},
				Adversary: adversary.NewRandom(p.F, p.T, o.TrialSeed(pointKey(ptX7Adversary, uint64(ci)), i)),
				MaxRounds: 4_000_000,
				RunToMax:  true,
				StopWhen:  agreed,
			})
			if err != nil {
				return 0, err
			}
			if res.HitMaxRounds || !agreed(res.Rounds) {
				conflicting.Store(true)
				return 0, checkFailf("X7: %s trial %d never agreed", c.name, i)
			}
			return float64(res.Rounds), nil
		})
		if err != nil {
			return nil, err
		}
		verdict := "single scheme"
		if conflicting.Load() {
			verdict = "CONFLICTING"
		}
		tbl.AddRow(c.name, c.topo.N(), c.topo.Diameter(), s.Median, verdict)
	}
	tbl.Notes = append(tbl.Notes,
		"relay extension: regional Trapdoor elections + relays that re-announce and merge schemes (larger id wins)",
		"synchronization time grows with the diameter — the wave of the winning numbering crosses the network hop by hop",
		"full multi-hop guarantees (no round-number step on scheme merge) remain the paper's open question")
	return tbl, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runX8 is the adversary gallery: Trapdoor synchronization time and
// correctness under every jammer in the library at the same budget. The
// protocol's guarantees are adversary-agnostic (the analysis assumes the
// worst case), so every row must succeed; the differences show which
// strategies actually hurt.
func runX8(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "X8",
		Title:   "Adversary gallery (model robustness)",
		Columns: []string{"adversary", "synced", "median rounds", "multi-leader runs", "violation runs"},
	}
	const nBound, active = 64, 8
	f, tJam := 8, 3
	maxRounds := uint64(1 << 21)
	key := uint64(0) // the historical shared ptCompare stream
	if o.Full {
		// Full tier: the whole gallery on the wide band, where a 37%
		// jammed fraction leaves F−t = 80 clear frequencies a round. The
		// indexed medium path keeps per-round cost independent of the 128
		// frequencies; the fresh point key gives the new grid its own
		// trial streams.
		f, tJam = 128, 48
		maxRounds = 1 << 22
		key = uint64(f)
	}
	names := adversary.Names()
	if o.quick() {
		names = []string{"none", "fixed", "reactive"}
	}
	tp := trapdoor.Params{N: nBound, F: f, T: tJam}
	for _, name := range names {
		name := name
		protos := []struct {
			name string
			mk   func(r *rng.Rand) sim.Agent
		}{{name, func(r *rng.Rand) sim.Agent { return trapdoor.MustNew(tp, r) }}}
		err := compareProtocols(o, tbl, key, f, tJam, active,
			sim.Staggered{Count: active, Gap: 5},
			func(seed uint64) sim.Adversary {
				adv, err := adversary.New(name, f, tJam, seed+17)
				if err != nil {
					panic(err)
				}
				return adv
			},
			protos, maxRounds)
		if err != nil {
			return nil, err
		}
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("same protocol, same budget t=%d on F=%d, different jammer strategies (staggered arrivals)", tJam, f),
		"reactive targets last round's transmitters; stalker targets last round's listeners",
		"the guarantee is worst-case: every strategy must leave the protocol live and safe")
	return tbl, nil
}
