package harness

import (
	"fmt"

	"wsync/internal/sim"
)

// Options tunes experiment size. The zero value means defaults.
type Options struct {
	// Trials is the number of repetitions per sweep point; 0 means
	// DefaultTrials.
	Trials int
	// Seed offsets all experiment seeds, for independent replications.
	Seed uint64
	// Quick shrinks sweeps to their smallest meaningful grids (used by CI
	// and -short benchmarks).
	Quick bool
	// Full expands sweeps to the large grids the frequency-indexed medium
	// path makes tractable: N up to 16384, F up to 128, and dense t
	// grids (the wexp -full tier). Experiments without a full grid run
	// their default one. Full and Quick are mutually exclusive; if both
	// are set, Full wins.
	Full bool
	// Parallelism is the number of worker goroutines the runner fans each
	// sweep point's trials out across; 0 means one per CPU. Results are
	// bit-identical at every parallelism level (see runner.go).
	Parallelism int
	// NoBatch disables the engines' devirtualized batch-stepping path,
	// forcing per-node virtual dispatch (sim.Config.NoBatch). Simulation
	// results are bit-identical either way; only wall time moves. The X10
	// dispatch-throughput experiments record the mode in their tables so a
	// benchdiff between a -nobatch report and a normal one reads as the
	// devirtualization speedup.
	NoBatch bool
}

// DefaultTrials is the per-point repetition count when Options.Trials is 0.
const DefaultTrials = 20

func (o Options) trials() int {
	if o.Trials > 0 {
		return o.Trials
	}
	if o.Quick && !o.Full {
		return 5
	}
	return DefaultTrials
}

// quick reports whether the shrunk grids should be used; Full overrides.
func (o Options) quick() bool { return o.Quick && !o.Full }

// EffectiveTrials returns the per-sweep-point repetition count the
// experiments will actually use after defaulting (some experiments scale
// it further, e.g. the agreement sweeps multiply it). Benchmark reports
// record it so artifacts remain comparable if the defaults ever change.
func (o Options) EffectiveTrials() int { return o.trials() }

// EffectiveParallelism returns the worker count the runner will actually
// use after defaulting.
func (o Options) EffectiveParallelism() int { return o.workers() }

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Table, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "F1", Title: "Trapdoor epoch schedule (Figure 1)", Run: runF1},
		{ID: "F2", Title: "Good Samaritan round structure (Figure 2)", Run: runF2},
		{ID: "L2", Title: "Balls-in-bins no-singleton bound (Lemma 2)", Run: runL2},
		{ID: "T1", Title: "Regular-protocol lower bound scaling (Theorem 1)", Run: runT1},
		{ID: "T4", Title: "Two-node rendezvous lower bound (Theorem 4)", Run: runT4},
		{ID: "T10a", Title: "Trapdoor synchronization time vs N (Theorem 10)", Run: runT10a},
		{ID: "T10b", Title: "Trapdoor synchronization time vs t (Theorem 10)", Run: runT10b},
		{ID: "T10c", Title: "Trapdoor agreement / leader uniqueness (Theorem 10)", Run: runT10c},
		{ID: "L9", Title: "Broadcast weight self-regulation (Lemma 9)", Run: runL9},
		{ID: "T18a", Title: "Good Samaritan adaptive runtime vs t' (Theorem 18)", Run: runT18a},
		{ID: "T18b", Title: "Good Samaritan fallback runtime (Theorem 18)", Run: runT18b},
		{ID: "X1", Title: "Crossover: Trapdoor vs Good Samaritan", Run: runX1},
		{ID: "X2", Title: "Baseline comparison under jamming", Run: runX2},
		{ID: "X3", Title: "Crash fault tolerance (Section 8)", Run: runX3},
		{ID: "X4", Title: "Ablations: knockout, samaritan help, constants", Run: runX4},
		{ID: "X5", Title: "Unslotted transformation (Section 8)", Run: runX5},
		{ID: "X6", Title: "Replicated log on synchronized rounds (Section 8)", Run: runX6},
		{ID: "X7", Title: "Multi-hop relay synchronization (Section 8)", Run: runX7},
		{ID: "X8", Title: "Adversary gallery (model robustness)", Run: runX8},
		{ID: "X9", Title: "Dynamic topologies: synchronization under churn (X9)", Run: runX9},
		{ID: "R1", Title: "Two-party rendezvous vs band size and blocked fraction (R1)", Run: runR1},
		{ID: "R2", Title: "k-party rendezvous scaling under churn (R2)", Run: runR2},
		{ID: "R3", Title: "Rendezvous strategy gallery vs jammer gallery (R3)", Run: runR3},
		{ID: "X10a", Title: "Dispatch throughput: Trapdoor, dense band (X10)", Run: runX10a},
		{ID: "X10b", Title: "Dispatch throughput: Good Samaritan, dense band (X10)", Run: runX10b},
		{ID: "X10c", Title: "Dispatch throughput: round-robin baseline, dense band (X10)", Run: runX10c},
	}
}

// IDs returns every experiment id in presentation order — the order an
// unselected run executes in, and the catalogue order sharded reports
// merge back into (internal/shard).
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// WeightObserver tracks the broadcast weight W(r) = Σ_u p_u^r over a run
// (Definition 7 / Lemma 9). Attach it together with Config.ProbeWeights.
type WeightObserver struct {
	Max      float64
	MaxRound uint64
	Sum      float64
	Rounds   uint64
}

var _ sim.Observer = (*WeightObserver)(nil)

// ObserveRound implements sim.Observer.
func (w *WeightObserver) ObserveRound(rec *sim.RoundRecord) {
	if rec.Weights == nil {
		return
	}
	total := 0.0
	for _, p := range rec.Weights {
		total += p
	}
	if total > w.Max {
		w.Max = total
		w.MaxRound = rec.Round
	}
	w.Sum += total
	w.Rounds++
}

// MeanWeight returns the average per-round broadcast weight.
func (w *WeightObserver) MeanWeight() float64 {
	if w.Rounds == 0 {
		return 0
	}
	return w.Sum / float64(w.Rounds)
}

// runResult bundles what the sweep experiments need from one simulation.
type runResult struct {
	res        *sim.Result
	violations int
	leaders    int
}

func checkFailf(format string, args ...any) error {
	return fmt.Errorf("harness: "+format, args...)
}
