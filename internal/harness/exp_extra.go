package harness

import (
	"fmt"

	"wsync/internal/adversary"
	"wsync/internal/baseline"
	"wsync/internal/props"
	"wsync/internal/rng"
	"wsync/internal/samaritan"
	"wsync/internal/sim"
	"wsync/internal/stats"
	"wsync/internal/trapdoor"
)

// protoStats accumulates one protocol's row for the comparison tables.
type protoStats struct {
	synced      int
	runs        int
	syncRounds  []float64
	multiLeader int
	violations  int
}

func (ps *protoStats) addRow(tbl *Table, name string) {
	med := 0.0
	if len(ps.syncRounds) > 0 {
		med = stats.Summarize(ps.syncRounds).Median
	}
	tbl.AddRow(name,
		fmt.Sprintf("%d/%d", ps.synced, ps.runs),
		med,
		ps.multiLeader,
		ps.violations,
	)
}

// compareProtocols runs each named agent factory under the same
// environment and collects the comparison statistics. key selects the
// sweep-point value under the shared ptCompare tag: the historical grids
// all pass 0 (deliberately sharing trial randomness across X2/X4/X8
// rows), new grids pass a distinguishing value for fresh streams.
func compareProtocols(o Options, tbl *Table, key uint64, f, tJam, active int,
	sched sim.Schedule, mkAdv func(seed uint64) sim.Adversary,
	protos []struct {
		name string
		mk   func(r *rng.Rand) sim.Agent
	}, maxRounds uint64) error {
	for _, proto := range protos {
		ps := protoStats{}
		results, err := o.parallelRuns(o.trials(), func(i int) (runResult, error) {
			// Every protocol sees the same per-trial seed so the comparison
			// holds the randomness fixed across rows.
			seed := o.TrialSeed(pointKey(ptCompare, key), i)
			check := props.NewChecker(active)
			cfg := &sim.Config{
				F:    f,
				T:    tJam,
				Seed: seed,
				NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
					return proto.mk(r)
				},
				Schedule:  sched,
				Adversary: mkAdv(seed),
				MaxRounds: maxRounds,
				Observers: []sim.Observer{check},
			}
			res, err := sim.Run(cfg)
			if err != nil {
				return runResult{}, err
			}
			return runResult{res: res, violations: check.Count(), leaders: res.Leaders}, nil
		})
		if err != nil {
			return err
		}
		for _, rr := range results {
			ps.runs++
			if rr.res.AllSynced {
				ps.synced++
				ps.syncRounds = append(ps.syncRounds, float64(rr.res.MaxSyncLocal))
			}
			if rr.leaders != 1 {
				ps.multiLeader++
			}
			if rr.violations > 0 {
				ps.violations++
			}
		}
		ps.addRow(tbl, proto.name)
	}
	return nil
}

// runX2 compares the paper's protocols against the baselines under the
// same jamming environment.
func runX2(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "X2",
		Title:   "Baseline comparison under jamming",
		Columns: []string{"protocol", "synced", "median rounds", "multi-leader runs", "violation runs"},
	}
	const nBound, f, tJam, active = 64, 8, 2, 8
	tp := trapdoor.Params{N: nBound, F: f, T: tJam}
	sp := samaritan.Params{N: nBound, F: f, T: tJam}
	protos := []struct {
		name string
		mk   func(r *rng.Rand) sim.Agent
	}{
		{"trapdoor", func(r *rng.Rand) sim.Agent { return trapdoor.MustNew(tp, r) }},
		{"samaritan", func(r *rng.Rand) sim.Agent { return samaritan.MustNew(sp, r) }},
		{"wakeup (no competition)", func(r *rng.Rand) sim.Agent { return baseline.NewWakeup(nBound, f, r) }},
		{"round-robin (deterministic)", func(r *rng.Rand) sim.Agent { return baseline.NewRoundRobin(nBound, f, r) }},
		{"single-frequency", func(r *rng.Rand) sim.Agent { return baseline.NewSingleFreq(nBound, r) }},
	}
	// Staggered activation: devices that self-commit at different ages
	// hold different numberings, so the baselines' agreement failures are
	// observable (with simultaneous starts their wrong outputs coincide).
	err := compareProtocols(o, tbl, 0, f, tJam, active,
		sim.Staggered{Count: active, Gap: 3},
		func(seed uint64) sim.Adversary { return adversary.NewPrefix(f, tJam) },
		protos, 1<<21)
	if err != nil {
		return nil, err
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("environment: N=%d, n=%d staggered arrivals, F=%d, adversary jams frequencies 1..%d forever", nBound, active, f, tJam),
		"'synced' counts nodes that output SOMETHING; the violation column shows whether the outputs were consistent",
		"wakeup is fast but elects multiple conflicting leaders (agreement failures)",
		"single-frequency cannot communicate at all while its channel is jammed: every node strands on its own numbering",
		"the paper's protocols are the only ones that are both live and safe")
	return tbl, nil
}

// funcObserver adapts a closure to sim.Observer.
type funcObserver struct {
	fn func(rec *sim.RoundRecord)
}

func (f funcObserver) ObserveRound(rec *sim.RoundRecord) { f.fn(rec) }

// runX3 exercises the Section 8 crash-tolerance extension: the elected
// leader crashes and the remaining nodes must detect the silence, restart
// the competition, and re-elect a leader that continues the numbering.
func runX3(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "X3",
		Title:   "Crash fault tolerance (Section 8)",
		Columns: []string{"runs", "recovered", "median re-election rounds", "mean restarts/node", "violations"},
	}
	const nBound, f, tJam, active = 16, 8, 2, 4
	p := trapdoor.Params{
		N: nBound, F: f, T: tJam,
		FaultTolerant:   true,
		CommitThreshold: 2,
	}
	crashAt := 3 * p.TotalRounds() // well after election and dissemination
	maxRounds := crashAt + 40*p.EffectiveLeaderTimeout() + 4*p.TotalRounds()

	runs := o.trials()
	recovered, violations := 0, 0
	var reelect []float64
	var restarts []float64
	for i := 0; i < runs; i++ {
		nodes := make([]*trapdoor.Node, active)
		var reelectedAt uint64
		check := props.NewChecker(active)
		scan := funcObserver{fn: func(rec *sim.RoundRecord) {
			if reelectedAt != 0 || rec.Round <= crashAt {
				return
			}
			for id := 1; id < active; id++ { // node 0 is the crashed one
				if nodes[id] != nil && nodes[id].IsLeader() {
					reelectedAt = rec.Round
					return
				}
			}
		}}
		cfg := &sim.Config{
			F:    f,
			T:    tJam,
			Seed: o.TrialSeed(pointKey(ptX3, 0), i),
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				n := trapdoor.MustNew(p, r)
				nodes[id] = n
				if id == 0 {
					// Node 0 is activated first (ties by id): it wins the
					// first election, then dies.
					return &adversary.CrashAgent{Inner: n, CrashAt: crashAt}
				}
				return n
			},
			Schedule:       sim.Staggered{Count: active, Gap: 2},
			Adversary:      adversary.NewPrefix(f, tJam),
			MaxRounds:      maxRounds,
			RunToMaxRounds: true,
			Observers:      []sim.Observer{scan, check},
		}
		if _, err := sim.Run(cfg); err != nil {
			return nil, err
		}
		if reelectedAt != 0 {
			recovered++
			reelect = append(reelect, float64(reelectedAt-crashAt))
		}
		totalRestarts := 0
		for id := 1; id < active; id++ {
			totalRestarts += nodes[id].Restarts()
		}
		restarts = append(restarts, float64(totalRestarts)/float64(active-1))
		// Exclude the crashed node's forced ⊥ reversion (it reports ⊥
		// after death by design); count only violations on survivors.
		for _, v := range check.Violations() {
			if v.Node != 0 {
				violations++
			}
		}
	}
	med := 0.0
	if len(reelect) > 0 {
		med = stats.Summarize(reelect).Median
	}
	tbl.AddRow(runs, fmt.Sprintf("%d/%d", recovered, runs), med,
		stats.Mean(restarts), violations)
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("leader (first-activated node) crashes at local round %d; timeout %d rounds", crashAt, p.EffectiveLeaderTimeout()),
		"recovered = some surviving node re-won the competition after the crash",
		"survivors keep their committed numbering across the restart (Synch Commit preserved)")
	return tbl, nil
}

// runX4 runs the ablations: remove the knockout rule, remove samaritan
// help, and sweep the epoch-length constant.
func runX4(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "X4",
		Title:   "Ablations: knockout, samaritan help, constants",
		Columns: []string{"variant", "synced", "median rounds", "multi-leader runs", "violation runs"},
	}
	const nBound, f, tJam, active = 64, 8, 2, 8
	tdProtos := []struct {
		name string
		mk   func(r *rng.Rand) sim.Agent
	}{
		{"trapdoor (paper)", func(r *rng.Rand) sim.Agent {
			return trapdoor.MustNew(trapdoor.Params{N: nBound, F: f, T: tJam}, r)
		}},
		{"trapdoor, no knockout", func(r *rng.Rand) sim.Agent {
			return trapdoor.MustNew(trapdoor.Params{N: nBound, F: f, T: tJam, AblationNoKnockout: true}, r)
		}},
		{"trapdoor, CEpoch=1 (short epochs)", func(r *rng.Rand) sim.Agent {
			return trapdoor.MustNew(trapdoor.Params{N: nBound, F: f, T: tJam, CEpoch: 1, CFinal: 1}, r)
		}},
		{"trapdoor, CEpoch=12 (long epochs)", func(r *rng.Rand) sim.Agent {
			return trapdoor.MustNew(trapdoor.Params{N: nBound, F: f, T: tJam, CEpoch: 12, CFinal: 6}, r)
		}},
	}
	err := compareProtocols(o, tbl, 0, f, tJam, active,
		sim.Staggered{Count: active, Gap: 3},
		func(seed uint64) sim.Adversary { return adversary.NewPrefix(f, tJam) },
		tdProtos, 1<<21)
	if err != nil {
		return nil, err
	}

	// Samaritan-help ablation in the good case: without reports, every
	// execution must ride the slow fallback.
	const gsN, gsF, gsT, gsActive = 16, 16, 8, 4
	gsProtos := []struct {
		name string
		mk   func(r *rng.Rand) sim.Agent
	}{
		{"samaritan (paper), t'=1", func(r *rng.Rand) sim.Agent {
			return samaritan.MustNew(samaritan.Params{N: gsN, F: gsF, T: gsT}, r)
		}},
		{"samaritan, no help, t'=1", func(r *rng.Rand) sim.Agent {
			return samaritan.MustNew(samaritan.Params{N: gsN, F: gsF, T: gsT, AblationNoHelp: true}, r)
		}},
	}
	err = compareProtocols(o, tbl, 0, gsF, gsT, gsActive,
		sim.Simultaneous{Count: gsActive},
		func(seed uint64) sim.Adversary { return adversary.NewLowPrefix(gsF, 1) },
		gsProtos, 1<<23)
	if err != nil {
		return nil, err
	}
	tbl.Notes = append(tbl.Notes,
		"no knockout → every survivor becomes leader: agreement collapses (why the trapdoor exists)",
		"short epochs are faster but raise the multi-leader rate; long epochs buy safety with time",
		"no samaritan help → the optimistic portion can never elect: good executions pay the full fallback cost")
	return tbl, nil
}
