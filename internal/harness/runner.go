package harness

import (
	"runtime"

	"wsync/internal/pool"
	"wsync/internal/rng"
	"wsync/internal/stats"
)

// runner.go is the experiment runner: it fans a sweep point's Monte-Carlo
// trials out across worker goroutines (the shared work-stealing scheduler
// in internal/pool) and aggregates their measurements through mergeable
// stats.Accumulators.
//
// Results are bit-identical at every parallelism level. Two invariants
// make that true:
//
//  1. Trial identity is fixed before execution: every trial's RNG seed is
//     derived from (Options.Seed, sweep-point key, trial index) alone via
//     rng splitting (TrialSeed), never from which worker runs it or when.
//  2. Aggregation is order-free: per-trial outputs land in slots indexed
//     by trial, and accumulator summaries are computed from the merged
//     value histogram in ascending order, so scheduling cannot reorder
//     any floating-point reduction.

// workers returns the effective worker count: Parallelism if set,
// otherwise one worker per CPU.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.NumCPU()
}

// TrialSeed derives the simulation seed for one trial of one sweep point.
// The derivation goes through two rng splits, so nearby point keys and
// trial indices yield statistically independent streams, and the result
// depends only on (Seed, point, trial) — the anchor of the runner's
// parallelism-independence guarantee.
func (o Options) TrialSeed(point uint64, trial int) uint64 {
	return rng.New(o.Seed).Split(point).Split(uint64(trial)).Uint64()
}

// pointKey namespaces a sweep-point key under a per-experiment tag so no
// two experiments (or two sweeps within one) can collide into the same
// TrialSeed stream, no matter how their local point values are computed.
// Experiments that deliberately share randomness across rows (the paired
// protocol comparisons) share a tag on purpose.
func pointKey(tag uint8, v uint64) uint64 {
	return uint64(tag)<<56 | v&(1<<56-1)
}

// Sweep-point tags, one per independent randomness consumer. Allocate new
// experiments the next free value and never reuse one: a reused tag gives
// two experiments seed-identical trials with no error anywhere.
const (
	ptT10a uint8 = 1 + iota
	ptT10b
	ptT10c
	ptL9
	ptT18a
	ptT18bAdversary
	ptT18bSim
	ptX1Trapdoor
	ptX1Samaritan
	ptT1
	ptT4
	ptCompare // shared by the paired protocol comparisons (X2, X4, X8)
	ptX3
	ptX5
	ptX6Adversary
	ptX6Sim
	ptX7Sim
	ptX7Adversary
	ptR1
	ptR2Sim
	ptR2Adversary
	ptR3Sim
	ptR3Adversary
	ptX9Sim
	ptX9Adversary
	ptX9Model
	// shared by X10a/b/c on purpose: the dispatch-throughput experiments
	// are a paired protocol comparison — per row, the three protocols see
	// the same engine seeds and the same adversary stream.
	ptX10Sim
	ptX10Adversary
)

// boolBit packs an ablation flag into a point key.
func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// mapTrials runs fn for i in [0, n) across o.workers() goroutines and
// collects the results in trial order. fn must be safe for concurrent
// invocation with distinct i. The first error by trial index wins,
// independent of scheduling.
func mapTrials[T any](o Options, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	pool.Run(o.workers(), n, func(_, i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// parallelMap is mapTrials for scalar measurements.
func (o Options) parallelMap(n int, fn func(i int) (float64, error)) ([]float64, error) {
	return mapTrials(o, n, fn)
}

// parallelRuns is mapTrials for full run results.
func (o Options) parallelRuns(n int, fn func(i int) (runResult, error)) ([]runResult, error) {
	return mapTrials(o, n, fn)
}

// summarizeTrials streams fn's per-trial measurements through one
// stats.Accumulator per worker and merges them into a single Summary,
// never materializing the per-trial result slice. Use it when an
// experiment needs only the summary statistics of a sweep point.
func (o Options) summarizeTrials(n int, fn func(i int) (float64, error)) (stats.Summary, error) {
	workers := o.workers()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	accs := make([]stats.Accumulator, workers)
	errs := make([]error, n)
	pool.Run(workers, n, func(w, i int) {
		x, err := fn(i)
		if err != nil {
			errs[i] = err
			return
		}
		accs[w].Add(x)
	})
	for _, err := range errs {
		if err != nil {
			return stats.Summary{}, err
		}
	}
	merged := &accs[0]
	for w := 1; w < workers; w++ {
		merged.Merge(&accs[w])
	}
	return merged.Summary(), nil
}
