package harness

import (
	"math"

	"wsync/internal/lowerbound"
	"wsync/internal/stats"
	"wsync/internal/trapdoor"
)

// runL2 verifies Lemma 2 empirically: for distributions with
// p_1 <= ... <= p_{s+1} and p_{s+1} >= 1/2, the probability that no bin
// receives exactly one ball is at least 2^{-s}.
func runL2(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "L2",
		Title:   "Balls-in-bins no-singleton bound (Lemma 2)",
		Columns: []string{"s", "balls m", "profile", "P[no singleton]", "bound 2^-s", "holds"},
	}
	trials := 6000
	if o.quick() {
		trials = 1500
	}
	cases := []struct {
		s     int
		m     int
		pLast float64
		decay float64
		name  string
	}{
		{1, 2, 0.5, 1, "uniform"},
		{2, 4, 0.5, 1, "uniform"},
		{3, 8, 0.5, 1, "uniform"},
		{4, 16, 0.5, 1, "uniform"},
		{3, 8, 0.8, 0.5, "geometric"},
		{4, 32, 0.6, 0.25, "geometric"},
	}
	for _, c := range cases {
		probs := lowerbound.Lemma2Distribution(c.s, c.pLast, c.decay)
		got := lowerbound.EstimateNoSingleton(c.m, probs, trials, 1000+o.Seed+uint64(c.s))
		bound := lowerbound.Lemma2Bound(c.s)
		holds := "yes"
		if got < bound*0.85 { // Monte-Carlo slack
			holds = "NO"
		}
		tbl.AddRow(c.s, c.m, c.name, got, bound, holds)
	}
	tbl.Notes = append(tbl.Notes,
		"the lemma lower-bounds the probability that a round produces no lone broadcaster",
		"'holds' allows 15% Monte-Carlo slack below the bound")
	return tbl, nil
}

// runT1 reproduces the Theorem 1 experiment. The proof's table argument
// shows that for any regular protocol there EXISTS a participant count n
// (unknown to the protocol, which only knows the bound N) whose first clear
// broadcast is slow. We therefore sweep n over powers of two up to N,
// measure the time to the first clear broadcast for each, and report the
// worst n — which should scale like log²N/((F−t)·loglogN) as N grows.
func runT1(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "T1",
		Title:   "Regular-protocol lower bound scaling (Theorem 1)",
		Columns: []string{"N", "F", "t", "worst n", "median rounds", "best n", "its median", "theory lg²N/((F−t)lglgN)", "ratio"},
	}
	ns := []int{64, 256, 1024, 4096}
	if o.quick() {
		ns = []int{16, 64}
	}
	if o.Full {
		// Full tier: one more quadrupling of the participant bound; the
		// lower-bound game sweeps n up to N, so the top point runs 16384
		// concurrent regular-protocol nodes.
		ns = []int{64, 256, 1024, 4096, 16384}
	}
	const f, tJam = 8, 2
	var theories, worsts []float64
	for _, nBound := range ns {
		reg := lowerbound.NewTrapdoorRegular(trapdoor.Params{N: nBound, F: f, T: tJam})
		worstN, bestN := 0, 0
		worstMed, bestMed := -1.0, -1.0
		for n := 2; n <= nBound; n *= 4 {
			n := n
			s, err := o.summarizeTrials(o.trials(), func(i int) (float64, error) {
				res, err := lowerbound.FirstClear(reg, n, f, tJam, 1<<21, o.TrialSeed(pointKey(ptT1, uint64(nBound)<<16|uint64(n)), i))
				if err != nil {
					return 0, err
				}
				if !res.Happened {
					return float64(uint64(1) << 21), nil
				}
				return float64(res.Rounds), nil
			})
			if err != nil {
				return nil, err
			}
			med := s.Median
			if med > worstMed {
				worstN, worstMed = n, med
			}
			if bestMed < 0 || med < bestMed {
				bestN, bestMed = n, med
			}
		}
		theory := lowerbound.Theorem1Rounds(float64(nBound), f, tJam)
		theories = append(theories, theory)
		worsts = append(worsts, worstMed)
		tbl.AddRow(nBound, f, tJam, worstN, worstMed, bestN, bestMed, theory, worstMed/theory)
	}
	ratio := stats.FitRatio(theories, worsts)
	tbl.Notes = append(tbl.Notes,
		"weak adversary jams frequencies 1..t every round; all n nodes activated together; schedule = Trapdoor ramp for bound N",
		"the proof shows SOME n is slow: we sweep n ∈ {2, 8, 32, ...} ≤ N and report the worst (small n is worst — the ramp must climb to ~1/n)",
		"the event measured (first lone undisrupted broadcaster) is necessary for synchronization",
		"this is a lower bound: the check is measured >= c·theory everywhere (it holds with large margin)",
		"the worst-n time tracks ℓE·(lgN − lg ℓE) = Θ(log²N) with a slowly-vanishing subtractive correction, so the ratio climbs toward its asymptote from below",
		"shape check: worst-n ratio trend over N; spread = "+formatFloat(stats.RelSpread(ratio)))
	return tbl, nil
}

// runT4 reproduces the Theorem 4 experiment: the two-node rendezvous game
// against the greedy p·q adversary, swept over t. The optimal spreading
// width min(F, 2t) from the proof is verified alongside.
func runT4(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "T4",
		Title:   "Two-node rendezvous lower bound (Theorem 4)",
		Columns: []string{"F", "t", "width min(F,2t)", "mean rounds", "theory Ft/(F−t)", "ratio", "bound holds", "best width k*"},
	}
	const f = 8
	ts := []int{1, 2, 3, 4, 5, 6}
	if o.quick() {
		ts = []int{1, 3}
	}
	trials := o.trials() * 10 // individual games are cheap
	var theories, means []float64
	for _, tJam := range ts {
		width := 2 * tJam
		if width > f {
			width = f
		}
		s, err := o.summarizeTrials(trials, func(i int) (float64, error) {
			reg := lowerbound.UniformRegular{M: width, P: 0.5}
			res := lowerbound.TwoNodeGame(reg, reg, f, tJam, 0, 1<<20, o.TrialSeed(pointKey(ptT4, uint64(tJam)), i))
			if !res.Met {
				return float64(uint64(1) << 20), nil
			}
			return float64(res.Rounds), nil
		})
		if err != nil {
			return nil, err
		}
		mean := s.Mean
		theory := lowerbound.Theorem4Rounds(f, float64(tJam), math.Exp(-1)) // log(1/ε) = 1
		best, _ := lowerbound.BestUniformWidth(f, tJam, 60, 1<<16, o.Seed+uint64(tJam), o.workers())
		theories = append(theories, theory)
		means = append(means, mean)
		holds := "yes"
		if mean < theory {
			holds = "NO"
		}
		tbl.AddRow(f, tJam, width, mean, theory, mean/theory, holds, best)
	}
	tbl.Notes = append(tbl.Notes,
		"greedy adversary disrupts the t frequencies with the largest p_j·q_j each round (Theorem 4 proof)",
		"this is a lower bound: the check is measured >= c·theory for a constant c >= 1 (the best protocol cannot beat it)",
		"the measured times grow ~8t (optimal width 2t achieves Θ(t) for t <= F/2, matching the bound's Θ(t) regime)",
		"k* is the empirically best uniform spreading width; the proof's extremal point is min(F, 2t)")
	return tbl, nil
}
