package harness

import (
	"wsync/internal/adversary"
	"wsync/internal/lowerbound"
	"wsync/internal/props"
	"wsync/internal/rng"
	"wsync/internal/samaritan"
	"wsync/internal/sim"
	"wsync/internal/stats"
	"wsync/internal/trapdoor"
)

// samaritanRun executes one Good Samaritan simulation.
func samaritanRun(p samaritan.Params, n int, sched sim.Schedule, adv sim.Adversary,
	seed uint64, maxRounds uint64) (runResult, error) {
	check := props.NewChecker(n)
	cfg := &sim.Config{
		F:    p.F,
		T:    p.T,
		Seed: seed,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return samaritan.MustNew(p, r)
		},
		Schedule:  sched,
		Adversary: adv,
		MaxRounds: maxRounds,
		Observers: []sim.Observer{check},
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return runResult{}, err
	}
	return runResult{res: res, violations: check.Count(), leaders: res.Leaders}, nil
}

// runT18a measures the Good Samaritan protocol's adaptive good-case
// runtime: all nodes activated together, only t' < t low frequencies
// jammed. Synchronization time should grow linearly in t' (times log³N).
func runT18a(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "T18a",
		Title:   "Good Samaritan adaptive runtime vs t' (Theorem 18)",
		Columns: []string{"N", "n", "F", "t", "t'", "median rounds", "p95", "theory t'·lg³N", "ratio"},
	}
	const nBound, f, tBudget, active = 16, 16, 8, 4
	tPrimes := []int{1, 2, 4}
	if o.quick() {
		tPrimes = []int{1, 2}
	}
	if o.Full {
		// Full tier: a dense t' grid (still strictly below the budget t,
		// so every point stays in the adaptive good case).
		tPrimes = []int{1, 2, 3, 4, 5, 6}
	}
	p := samaritan.Params{N: nBound, F: f, T: tBudget}
	var theories, medians []float64
	for _, tp := range tPrimes {
		s, err := o.summarizeTrials(o.trials(), func(i int) (float64, error) {
			rr, err := samaritanRun(p, active, sim.Simultaneous{Count: active},
				adversary.NewLowPrefix(f, tp), o.TrialSeed(pointKey(ptT18a, uint64(tp)), i), 1<<22)
			if err != nil {
				return 0, err
			}
			if !rr.res.AllSynced {
				return 0, checkFailf("T18a: t'=%d trial %d did not synchronize", tp, i)
			}
			return float64(rr.res.MaxSyncLocal), nil
		})
		if err != nil {
			return nil, err
		}
		theory := lowerbound.Theorem18GoodRounds(nBound, float64(tp))
		theories = append(theories, theory)
		medians = append(medians, s.Median)
		tbl.AddRow(nBound, active, f, tBudget, tp, s.Median, s.P95, theory, s.Median/theory)
	}
	ratio := stats.FitRatio(theories, medians)
	tbl.Notes = append(tbl.Notes,
		"good execution: simultaneous activation, adversary jams only the t' lowest frequencies",
		"the protocol adapts: runtime tracks actual disruption t', not the worst-case budget t",
		"runtime is quantized by super-epoch: finishing in super lg(2t') costs Σ_{k≤lg2t'} s(k)·(lgN+2) ≈ 4t'·lg³N — the geometric-sum overhead makes the ratio climb toward its asymptote at small t'",
		"shape check: ratio spread = "+formatFloat(stats.RelSpread(ratio)))
	return tbl, nil
}

// runT18b measures the general-case (fallback) bound: staggered activation
// and a full-budget adversary force the modified Trapdoor path; the
// runtime should track F·log³N.
func runT18b(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "T18b",
		Title:   "Good Samaritan fallback runtime (Theorem 18)",
		Columns: []string{"N", "n", "F", "t", "median rounds", "theory F·lg³N", "ratio"},
	}
	const nBound, active = 16, 4
	fs := []int{4, 8}
	if o.quick() {
		fs = []int{4}
	}
	if o.Full {
		// Full tier: one more doubling of the band; fallback runtime is
		// Θ(F·log³N), so F = 16 doubles the per-trial cost again.
		fs = []int{4, 8, 16}
	}
	var theories, medians []float64
	for _, f := range fs {
		tBudget := f / 2
		p := samaritan.Params{N: nBound, F: f, T: tBudget}
		s, err := o.summarizeTrials(o.trials(), func(i int) (float64, error) {
			rr, err := samaritanRun(p, active,
				sim.Staggered{Count: active, Gap: p.EpochLen(1)},
				adversary.NewRandom(f, tBudget, o.TrialSeed(pointKey(ptT18bAdversary, uint64(f)), i)),
				o.TrialSeed(pointKey(ptT18bSim, uint64(f)), i), 1<<23)
			if err != nil {
				return 0, err
			}
			if !rr.res.AllSynced {
				return 0, checkFailf("T18b: F=%d trial %d did not synchronize", f, i)
			}
			return float64(rr.res.MaxSyncLocal), nil
		})
		if err != nil {
			return nil, err
		}
		theory := lowerbound.Theorem18GeneralRounds(nBound, float64(f))
		theories = append(theories, theory)
		medians = append(medians, s.Median)
		tbl.AddRow(nBound, active, f, tBudget, s.Median, theory, s.Median/theory)
	}
	ratio := stats.FitRatio(theories, medians)
	tbl.Notes = append(tbl.Notes,
		"staggered activation and a full-budget random jammer defeat the optimistic portion",
		"every execution still terminates within O(F·log³N) (fallback modified Trapdoor)",
		"shape check: ratio spread = "+formatFloat(stats.RelSpread(ratio)))
	return tbl, nil
}

// runX1 compares the two protocols across actual disruption levels t': the
// Good Samaritan wins when t' is small, the Trapdoor when disruption
// approaches the budget — the paper's motivation for an adaptive protocol.
func runX1(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "X1",
		Title:   "Crossover: Trapdoor vs Good Samaritan",
		Columns: []string{"t'", "Trapdoor median", "Samaritan median", "winner"},
	}
	const nBound, f, tBudget, active = 16, 64, 32, 2
	tPrimes := []int{1, 2, 4, 8, 16}
	if o.quick() {
		tPrimes = []int{1, 8}
	}
	if o.Full {
		// Full tier: follow the crossover all the way to t' = t, where the
		// Good Samaritan has fully lost its adaptive advantage.
		tPrimes = []int{1, 2, 4, 8, 16, 24, 32}
	}
	tp := trapdoor.Params{N: nBound, F: f, T: tBudget}
	sp := samaritan.Params{N: nBound, F: f, T: tBudget}
	for _, prime := range tPrimes {
		tdSum, err := o.summarizeTrials(o.trials(), func(i int) (float64, error) {
			rr, err := trapdoorRun(tp, active, adversary.NewLowPrefix(f, prime),
				o.TrialSeed(pointKey(ptX1Trapdoor, uint64(prime)), i), 1<<22)
			if err != nil {
				return 0, err
			}
			if !rr.res.AllSynced {
				return 0, checkFailf("X1: trapdoor t'=%d trial %d did not synchronize", prime, i)
			}
			return float64(rr.res.MaxSyncLocal), nil
		})
		if err != nil {
			return nil, err
		}
		gsSum, err := o.summarizeTrials(o.trials(), func(i int) (float64, error) {
			rr, err := samaritanRun(sp, active, sim.Simultaneous{Count: active},
				adversary.NewLowPrefix(f, prime), o.TrialSeed(pointKey(ptX1Samaritan, uint64(prime)), i), 1<<23)
			if err != nil {
				return 0, err
			}
			if !rr.res.AllSynced {
				return 0, checkFailf("X1: samaritan t'=%d trial %d did not synchronize", prime, i)
			}
			return float64(rr.res.MaxSyncLocal), nil
		})
		if err != nil {
			return nil, err
		}
		td := tdSum.Median
		gs := gsSum.Median
		winner := "Trapdoor"
		if gs < td {
			winner = "Samaritan"
		}
		tbl.AddRow(prime, td, gs, winner)
	}
	tbl.Notes = append(tbl.Notes,
		"both protocols configured for worst-case budget t; the adversary actually jams t' low frequencies",
		"Trapdoor runtime is oblivious to t'; Good Samaritan adapts — it wins for small t' and loses as t' → t")
	return tbl, nil
}
