package harness

import (
	"fmt"

	"wsync/internal/adversary"
	"wsync/internal/lowerbound"
	"wsync/internal/props"
	"wsync/internal/rng"
	"wsync/internal/sim"
	"wsync/internal/stats"
	"wsync/internal/trapdoor"
)

// trapdoorRun executes one Trapdoor simulation and returns the maximum
// per-node synchronization time plus correctness accounting.
func trapdoorRun(p trapdoor.Params, n int, adv sim.Adversary, seed uint64, maxRounds uint64) (runResult, error) {
	check := props.NewChecker(n)
	cfg := &sim.Config{
		F:    p.F,
		T:    p.T,
		Seed: seed,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return trapdoor.MustNew(p, r)
		},
		Schedule:  sim.Simultaneous{Count: n},
		Adversary: adv,
		MaxRounds: maxRounds,
		Observers: []sim.Observer{check},
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return runResult{}, err
	}
	return runResult{res: res, violations: check.Count(), leaders: res.Leaders}, nil
}

// runT10a sweeps N at fixed F, t: Trapdoor synchronization time should
// scale like F/(F−t)·log²N + Ft/(F−t)·logN.
func runT10a(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "T10a",
		Title:   "Trapdoor synchronization time vs N (Theorem 10)",
		Columns: []string{"N", "n", "F", "t", "median rounds", "p95", "theory", "ratio"},
	}
	ns := []int{16, 64, 256, 1024}
	if o.quick() {
		ns = []int{16, 64}
	}
	if o.Full {
		// The full tier climbs to the participant bounds the log²N shape
		// needs room to show; tractable because the indexed medium path
		// makes per-round cost independent of N.
		ns = []int{16, 64, 256, 1024, 4096, 16384}
	}
	const f, tJam, active = 8, 2, 8
	var theories, medians []float64
	for _, n := range ns {
		p := trapdoor.Params{N: n, F: f, T: tJam}
		s, err := o.summarizeTrials(o.trials(), func(i int) (float64, error) {
			rr, err := trapdoorRun(p, active, adversary.NewPrefix(f, tJam), o.TrialSeed(pointKey(ptT10a, uint64(n)), i), 1<<21)
			if err != nil {
				return 0, err
			}
			if !rr.res.AllSynced {
				return 0, checkFailf("T10a: N=%d trial %d did not synchronize", n, i)
			}
			return float64(rr.res.MaxSyncLocal), nil
		})
		if err != nil {
			return nil, err
		}
		theory := lowerbound.Theorem10Rounds(float64(n), f, tJam)
		theories = append(theories, theory)
		medians = append(medians, s.Median)
		tbl.AddRow(n, active, f, tJam, s.Median, s.P95, theory, s.Median/theory)
	}
	ratio := stats.FitRatio(theories, medians)
	tbl.Notes = append(tbl.Notes,
		"weak adversary jams 1..t; time is the worst per-node local synchronization round",
		"shape check: ratio spread = "+formatFloat(stats.RelSpread(ratio)))
	return tbl, nil
}

// runT10b sweeps t at fixed F, N: the F/(F−t) and Ft/(F−t) factors should
// appear.
func runT10b(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "T10b",
		Title:   "Trapdoor synchronization time vs t (Theorem 10)",
		Columns: []string{"N", "F", "t", "F'", "median rounds", "theory", "ratio"},
	}
	ts := []int{1, 2, 3, 4, 5, 6, 7}
	f := 8
	if o.quick() {
		ts = []int{1, 4}
	}
	if o.Full {
		// Full tier: the wide band. A dense t grid climbing to near
		// saturation (t = 120 of F = 128) is where the F/(F−t) blow-up
		// stops being a constant; the indexed medium path keeps a round's
		// cost independent of the 128 frequencies.
		f = 128
		ts = []int{8, 16, 32, 48, 64, 80, 96, 112, 120}
	}
	const nBound, active = 64, 8
	var theories, medians []float64
	for _, tJam := range ts {
		// The default/quick tiers keep their historical seed key (bare
		// tJam) so T10b stays comparable across BENCH_*.json artifacts;
		// the full tier is new and mixes f in to get fresh streams.
		key := uint64(tJam)
		if o.Full {
			key = uint64(f)<<16 | uint64(tJam)
		}
		p := trapdoor.Params{N: nBound, F: f, T: tJam}
		s, err := o.summarizeTrials(o.trials(), func(i int) (float64, error) {
			rr, err := trapdoorRun(p, active, adversary.NewPrefix(f, tJam), o.TrialSeed(pointKey(ptT10b, key), i), 1<<22)
			if err != nil {
				return 0, err
			}
			if !rr.res.AllSynced {
				return 0, checkFailf("T10b: t=%d trial %d did not synchronize", tJam, i)
			}
			return float64(rr.res.MaxSyncLocal), nil
		})
		if err != nil {
			return nil, err
		}
		theory := lowerbound.Theorem10Rounds(nBound, float64(f), float64(tJam))
		theories = append(theories, theory)
		medians = append(medians, s.Median)
		tbl.AddRow(nBound, f, tJam, p.FPrime(), s.Median, theory, s.Median/theory)
	}
	ratio := stats.FitRatio(theories, medians)
	tbl.Notes = append(tbl.Notes,
		"runtime blows up as t approaches F, following F/(F−t) (who wins: more frequencies)",
		"Theorem 10 is an upper bound: the check is measured <= c·theory throughout; a falling ratio as t grows is consistent",
		"ratio max = "+formatFloat(ratio.Max)+", spread = "+formatFloat(stats.RelSpread(ratio)))
	return tbl, nil
}

// runT10c measures agreement: across many runs, how often does more than
// one leader emerge or any property violation occur? Theorem 10 promises
// w.h.p. (≥ 1 − 1/N) correctness.
func runT10c(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "T10c",
		Title:   "Trapdoor agreement / leader uniqueness (Theorem 10)",
		Columns: []string{"N", "n", "F", "t", "runs", "multi-leader", "violations", "failure rate", "target 1/N"},
	}
	configs := []struct {
		nBound, active, f, tJam int
	}{
		{64, 8, 8, 2},
		{64, 16, 8, 3},
		{256, 8, 8, 2},
	}
	if o.quick() {
		configs = configs[:1]
	}
	runs := o.trials() * 5
	for _, c := range configs {
		p := trapdoor.Params{N: c.nBound, F: c.f, T: c.tJam}
		multi, viol := 0, 0
		results, err := o.parallelMap(runs, func(i int) (float64, error) {
			rr, err := trapdoorRun(p, c.active, adversary.NewPrefix(c.f, c.tJam),
				o.TrialSeed(pointKey(ptT10c, uint64(c.nBound)<<16|uint64(c.active)), i), 1<<21)
			if err != nil {
				return 0, err
			}
			code := 0.0
			if rr.leaders != 1 {
				code += 1
			}
			if rr.violations > 0 {
				code += 2
			}
			return code, nil
		})
		if err != nil {
			return nil, err
		}
		for _, code := range results {
			if code == 1 || code == 3 {
				multi++
			}
			if code >= 2 {
				viol++
			}
		}
		fails := multi
		if viol > fails {
			fails = viol
		}
		tbl.AddRow(c.nBound, c.active, c.f, c.tJam, runs, multi, viol,
			float64(fails)/float64(runs), 1/float64(c.nBound))
	}
	tbl.Notes = append(tbl.Notes,
		"failure = more than one leader, or any commit/correctness/agreement violation",
		"theorem guarantees failure probability at most ~1/N")
	return tbl, nil
}

// runL9 measures the broadcast weight W(r) over Trapdoor executions and
// compares its maximum against the 6F' bound of Lemma 9. The knockout-off
// ablation rows show that the bound is the knockout feedback loop at work,
// not an accident of the probability ramp: without knockouts every node
// rides the ramp to 1/2 and the weight grows to n/2.
func runL9(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "L9",
		Title:   "Broadcast weight self-regulation (Lemma 9)",
		Columns: []string{"knockout", "n", "N", "F", "t", "F'", "max W(r)", "bound 6F'", "mean W(r)", "within bound"},
	}
	configs := []struct {
		active, nBound, f, tJam int
		noKnockout              bool
	}{
		{64, 64, 8, 2, false},
		{64, 64, 8, 2, true},
		{32, 32, 8, 3, false},
		{64, 64, 4, 1, false},
		{64, 64, 4, 1, true},
	}
	if o.quick() {
		configs = configs[:2]
	}
	trials := 3
	for _, c := range configs {
		p := trapdoor.Params{N: c.nBound, F: c.f, T: c.tJam, AblationNoKnockout: c.noKnockout}
		maxW, meanW := 0.0, 0.0
		for trial := 0; trial < trials; trial++ {
			w := &WeightObserver{}
			cfg := &sim.Config{
				F:    p.F,
				T:    p.T,
				Seed: o.TrialSeed(pointKey(ptL9, uint64(c.active)<<16|uint64(c.f)<<8|uint64(c.tJam)<<1|boolBit(c.noKnockout)), trial),
				NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
					return trapdoor.MustNew(p, r)
				},
				// Staggered arrival piles younger contenders onto older
				// ones — the load pattern the lemma is about.
				Schedule:       sim.Staggered{Count: c.active, Gap: 4},
				Adversary:      adversary.NewPrefix(c.f, c.tJam),
				MaxRounds:      p.TotalRounds() + uint64(c.active)*4 + 2000,
				RunToMaxRounds: true,
				Observers:      []sim.Observer{w},
				ProbeWeights:   true,
			}
			if _, err := sim.Run(cfg); err != nil {
				return nil, err
			}
			if w.Max > maxW {
				maxW = w.Max
			}
			meanW += w.MeanWeight() / float64(trials)
		}
		bound := 6 * float64(p.FPrime())
		within := "yes"
		if maxW > bound {
			within = "NO (expected for ablation)"
			if !c.noKnockout {
				within = "NO"
			}
		}
		knockout := "on"
		if c.noKnockout {
			knockout = "OFF"
		}
		tbl.AddRow(knockout, c.active, c.nBound, c.f, c.tJam, p.FPrime(),
			fmt.Sprintf("%.2f", maxW), bound, fmt.Sprintf("%.2f", meanW), within)
	}
	tbl.Notes = append(tbl.Notes,
		"W(r) = Σ_u P[u broadcasts in r] over active nodes (Definition 7); staggered arrivals, run past the competition",
		"Lemma 9: W(r) < 6F' w.h.p. while at most one leader exists — the knockout feedback loop keeps the medium uncongested",
		"knockout OFF rows: the same ramp without the feedback loop climbs toward n/2, far beyond the bound")
	return tbl, nil
}
