package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is an experiment's result: a titled grid with per-column alignment
// and free-form notes.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders floats compactly: integers without decimals, small
// values with sensible precision.
func formatFloat(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1 || v <= -1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown writes the table as a GitHub-flavored markdown table.
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	b.WriteByte('\n')
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "> %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// tableJSON is the wire form of a Table: lower-case keys, stable field
// order, no omitted grid fields, so CI tooling can diff reports across
// commits without schema guessing.
type tableJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// MarshalJSON renders the table in its machine-readable form.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{
		ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows, Notes: t.Notes,
	})
}

// JSON writes the table as one JSON object followed by a newline.
func (t *Table) JSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(t)
}

// CSV writes the table (header plus rows) in CSV form.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("harness: csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("harness: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
