package harness

import (
	"strconv"
	"strings"
	"testing"
)

// parseRatioColumn extracts a numeric column from a rendered table.
func parseColumn(t *testing.T, tbl *Table, name string) []float64 {
	t.Helper()
	col := -1
	for i, c := range tbl.Columns {
		if c == name {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("column %q not in %v", name, tbl.Columns)
	}
	var out []float64
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(strings.TrimSpace(row[col]), 64)
		if err != nil {
			t.Fatalf("column %q row value %q: %v", name, row[col], err)
		}
		out = append(out, v)
	}
	return out
}

// TestT10aShapeHolds is the automated version of the headline reproduction
// criterion: across the N sweep, measured synchronization time divided by
// the Theorem 10 bound must stay within a narrow band (the paper's shape,
// not its constants). Skipped under -short; this runs real sweeps.
func TestT10aShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	tbl, err := runT10a(Options{Trials: 10, Seed: 909})
	if err != nil {
		t.Fatal(err)
	}
	ratios := parseColumn(t, tbl, "ratio")
	if len(ratios) < 3 {
		t.Fatalf("only %d sweep points", len(ratios))
	}
	lo, hi := ratios[0], ratios[0]
	for _, r := range ratios {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	// Shape criterion: max/min ratio within a factor 1.6 across a 64x
	// sweep of N.
	if hi/lo > 1.6 {
		t.Fatalf("T10a ratio drifts %0.2fx across the sweep (%v)", hi/lo, ratios)
	}
}

// TestT18aShapeHolds asserts the adaptive protocol's defining property:
// synchronization time grows roughly linearly with the actual disruption
// t' (factor 1.5–4 per doubling, allowing the super-epoch quantization).
func TestT18aShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	tbl, err := runT18a(Options{Trials: 8, Seed: 909})
	if err != nil {
		t.Fatal(err)
	}
	medians := parseColumn(t, tbl, "median rounds")
	if len(medians) < 3 {
		t.Fatalf("only %d sweep points", len(medians))
	}
	for i := 1; i < len(medians); i++ {
		growth := medians[i] / medians[i-1]
		if growth < 1.2 || growth > 5 {
			t.Fatalf("t' doubling grew runtime by %0.2fx (want ~linear): %v", growth, medians)
		}
	}
}

// TestX1CrossoverHolds asserts the qualitative claim that motivates the
// Good Samaritan protocol: it beats the Trapdoor when the band is much
// calmer than the worst case, and loses when disruption approaches the
// budget.
func TestX1CrossoverHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	tbl, err := runX1(Options{Trials: 8, Seed: 909})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 2 {
		t.Fatal("too few rows")
	}
	winnerCol := len(tbl.Columns) - 1
	first := tbl.Rows[0][winnerCol]
	last := tbl.Rows[len(tbl.Rows)-1][winnerCol]
	if first != "Samaritan" {
		t.Fatalf("at minimal t' the Samaritan should win, got %q", first)
	}
	if last != "Trapdoor" {
		t.Fatalf("at t' near t the Trapdoor should win, got %q", last)
	}
}
