package harness

import (
	"fmt"
	"sync/atomic"

	"wsync/internal/adversary"
	"wsync/internal/churn"
	"wsync/internal/multihop"
	"wsync/internal/rng"
	"wsync/internal/sim"
	"wsync/internal/trapdoor"
)

// runX9 measures multi-hop relay synchronization when the graph itself is
// the adversary: random-waypoint mobility at increasing speed, i.i.d.
// link flips at increasing rate, partition-and-heal schedules of
// increasing outage, and min-cut-targeted sabotage. Convergence is not
// guaranteed under churn — the agreed column reports how many trials got
// there, and capped trials count at the cap rather than failing the run.
func runX9(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "X9",
		Title:   "Dynamic topologies: synchronization under churn (X9)",
		Columns: []string{"churn", "nodes", "median rounds", "agreed", "synced %", "churn rounds/run", "edge flux/round"},
	}
	sparse := trapdoor.Params{N: 8, F: 6, T: 2}
	geo := trapdoor.Params{N: 64, F: 6, T: 2}
	type churnCase struct {
		name      string
		n         int
		p         trapdoor.Params
		maxRounds uint64
		mk        func(seed uint64) churn.Model
	}
	// Order is load-bearing: quick runs the first two cases, the default
	// tier this whole list, and the full tier appends — point keys are
	// index-based, so only appending keeps historical trial seeds stable.
	cases := []churnCase{
		{"flip-grid-4x4-rate0.02", 16, sparse, 1 << 17,
			func(seed uint64) churn.Model { return churn.NewFlip(multihop.Grid(4, 4), 0.02, seed) }},
		{"partition-grid-4x4-down2", 16, sparse, 1 << 17,
			func(uint64) churn.Model { return churn.NewPartition(multihop.Grid(4, 4), 12, 2) }},
		{"flip-grid-4x4-rate0.10", 16, sparse, 1 << 17,
			func(seed uint64) churn.Model { return churn.NewFlip(multihop.Grid(4, 4), 0.10, seed) }},
		{"partition-grid-4x4-down6", 16, sparse, 1 << 17,
			func(uint64) churn.Model { return churn.NewPartition(multihop.Grid(4, 4), 12, 6) }},
		{"waypoint-64-speed0.005", 64, geo, 1 << 17,
			func(seed uint64) churn.Model { return churn.NewWaypoint(64, 0.22, 0.005, 8, seed) }},
		{"waypoint-64-speed0.02", 64, geo, 1 << 17,
			func(seed uint64) churn.Model { return churn.NewWaypoint(64, 0.22, 0.02, 8, seed) }},
		{"targeted-grid-4x4-budget2", 16, sparse, 1 << 17,
			func(uint64) churn.Model { return churn.NewTargetedCut(multihop.Grid(4, 4), 2, 8, 4) }},
	}
	if o.Full {
		// Full tier: mobile geometric graphs at scale. Relay agreement at
		// N=4096 takes thousands of rounds even on a static graph, so these
		// rows are fixed-horizon sweeps: run 384 churned rounds (stopping
		// early on the off chance full agreement lands) and report how far
		// synchronization penetrated. They deliberately keep the sparse
		// participant bound even though geometric neighborhoods oversubscribe
		// it — elections then finish inside the horizon (a majority of nodes
		// sync) and the penetration number measures scheme merging, the part
		// of the protocol mobility actually stresses. The point of the rows
		// is the sweep itself — per-round delta mutations on a 4096-node
		// geometric graph are what the incremental topology API keeps inside
		// the -full tier's wall-clock budget.
		cases = append(cases,
			churnCase{"waypoint-rgg-1024", 1024, sparse, 384,
				func(seed uint64) churn.Model { return churn.NewWaypoint(1024, 0.06, 0.003, 64, seed) }},
			churnCase{"waypoint-rgg-4096", 4096, sparse, 384,
				func(seed uint64) churn.Model { return churn.NewWaypoint(4096, 0.03, 0.003, 64, seed) }},
		)
	}
	if o.quick() {
		cases = cases[:2]
	}
	for ci, c := range cases {
		ci, c := ci, c
		p := c.p
		var agreedRuns, churnRounds, churnEdges, totalRounds, syncedNodes atomic.Uint64
		s, err := o.summarizeTrials(o.trials(), func(i int) (float64, error) {
			model := c.mk(o.TrialSeed(pointKey(ptX9Model, uint64(ci)), i))
			nodes := make([]*multihop.RelayNode, c.n)
			agreed := func(uint64) bool {
				var scheme, value uint64
				for idx, n := range nodes {
					if n == nil {
						return false
					}
					out := n.Output()
					if !out.Synced {
						return false
					}
					if idx == 0 {
						scheme, value = n.Scheme(), out.Value
						continue
					}
					if n.Scheme() != scheme || out.Value != value {
						return false
					}
				}
				return true
			}
			res, err := multihop.Run(&multihop.Config{
				F: p.F, T: p.T,
				Seed:     o.TrialSeed(pointKey(ptX9Sim, uint64(ci)), i),
				Topology: model.Topology(),
				Churn:    model,
				NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
					n := multihop.MustNewRelay(p, r)
					nodes[id] = n
					return n
				},
				Adversary: adversary.NewRandom(p.F, p.T, o.TrialSeed(pointKey(ptX9Adversary, uint64(ci)), i)),
				MaxRounds: c.maxRounds,
				RunToMax:  true,
				StopWhen:  agreed,
			})
			if err != nil {
				return 0, err
			}
			if !res.HitMaxRounds && agreed(res.Rounds) {
				agreedRuns.Add(1)
			}
			// Penetration: how many nodes ended the run synchronized onto
			// the plurality scheme. Converged trials score n by definition;
			// fixed-horizon trials report how far agreement spread.
			schemes := make(map[uint64]uint64, 8)
			for _, n := range nodes {
				if n != nil && n.Output().Synced {
					schemes[n.Scheme()]++
				}
			}
			var modal uint64
			for _, count := range schemes {
				if count > modal {
					modal = count
				}
			}
			syncedNodes.Add(modal)
			churnRounds.Add(res.ChurnRounds)
			churnEdges.Add(res.ChurnEdges)
			totalRounds.Add(res.Rounds)
			return float64(res.Rounds), nil
		})
		if err != nil {
			return nil, err
		}
		trials := uint64(o.trials())
		flux := float64(churnEdges.Load()) / float64(totalRounds.Load())
		synced := 100 * float64(syncedNodes.Load()) / float64(uint64(c.n)*trials)
		tbl.AddRow(c.name, c.n, s.Median,
			fmt.Sprintf("%d/%d", agreedRuns.Load(), trials),
			fmt.Sprintf("%.1f", synced),
			churnRounds.Load()/trials, fmt.Sprintf("%.2f", flux))
	}
	tbl.Notes = append(tbl.Notes,
		"relay agreement (X7's protocol) on graphs that move under it: waypoint mobility, link flips, partitions, targeted cuts",
		"the engine applies each round's edge deltas to sorted adjacency in place and swaps the graph into the resolver (SetGraph)",
		"capped trials report the round cap instead of failing: under churn, non-convergence is a measurement, not an error",
		"synced % is the plurality-scheme penetration at the end of the run; the full tier's fixed-horizon scale rows (384 rounds at N=1024/4096) measure it instead of waiting out full agreement")
	return tbl, nil
}
