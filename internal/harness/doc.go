// Package harness defines and runs the repository's experiments: one per
// paper artifact (every figure and theorem of the evaluation; see
// DESIGN.md §4 for the index). Each experiment produces a Table whose rows
// compare measured behavior against the paper's bound, and the cmd/wexp
// tool renders them into EXPERIMENTS.md and the wsync-bench/v1 JSON
// report (documented in docs/BENCH_FORMAT.md).
//
// Experiments run at one of three grid tiers selected by Options: Quick
// shrinks every sweep to its smallest meaningful grid (CI smoke tests),
// the default reproduces the paper-scale tables, and Full expands the
// Theorem 10 / Theorem 18 and lower-bound sweeps to N = 16384, F = 128,
// and dense t grids, plus the widened X-series (X7 random geometric
// graphs to N = 4096 swept by diameter, the X8 adversary gallery at
// F = 128) — affordable because the shared frequency-indexed medium
// path (internal/medium, under both the sim and multihop engines) makes
// a round's cost independent of F and N. Each sweep point's Monte-Carlo
// trials are fanned across worker goroutines by runner.go, with results
// bit-identical at every parallelism level.
package harness
