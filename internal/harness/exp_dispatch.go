package harness

import (
	"fmt"
	"sync/atomic"

	"wsync/internal/adversary"
	"wsync/internal/baseline"
	"wsync/internal/rng"
	"wsync/internal/samaritan"
	"wsync/internal/sim"
	"wsync/internal/trapdoor"
)

// exp_dispatch.go: the X10 dispatch-throughput experiments. Each runs a
// dense, all-awake, fixed-horizon workload on a wide band (F=128) with
// arena-built agents, so the single-hop engine advances the whole
// population through one StepBatch call per round — unless Options.NoBatch
// forces the per-node virtual fallback. The two modes are bit-identical in
// every simulation output (the engines' batch-dispatch contract; see
// TestBatchStepMatchesPerNode), so the tables differ only in the recorded
// dispatch column, node_rounds is deterministic (all n nodes awake for all
// rounds), and the report-level node_rounds_per_s axis isolates pure
// dispatch cost: `wexp benchdiff` between a -nobatch report and a normal
// one reads as the devirtualization speedup.

// dispatchLabel names the stepping mode an X10 table was measured under.
func dispatchLabel(o Options) string {
	if o.NoBatch {
		return "virtual"
	}
	return "batch"
}

// runDispatchSweep is the shared X10 body: a fixed-horizon dense sweep over
// population sizes for one arena-built protocol. The X10 experiments share
// sweep-point tags on purpose (paired protocol comparison): per row, every
// protocol sees the same engine seeds and the same adversary stream.
func runDispatchSweep(o Options, id, title string,
	mkArena func(n int) func(sim.NodeID, uint64, *rng.Rand) sim.Agent) (*Table, error) {
	const f, tJam = 128, 16
	tbl := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"dispatch", "nodes", "rounds", "node rounds/trial", "synced", "median collisions"},
	}
	type dispatchCase struct {
		n      int
		rounds uint64
	}
	// Order is load-bearing: point keys are index-based, so only appending
	// keeps historical trial seeds stable (quick runs the first case only,
	// the full tier appends).
	cases := []dispatchCase{{256, 4096}, {1024, 2048}}
	if o.Full {
		cases = append(cases, dispatchCase{4096, 1024})
	}
	if o.quick() {
		cases = cases[:1]
	}
	for ci, c := range cases {
		ci, c := ci, c
		var synced atomic.Uint64
		s, err := o.summarizeTrials(o.trials(), func(i int) (float64, error) {
			// One arena per trial: trials run concurrently and arena slots
			// are only single-run-safe (slot i belongs to node i of one
			// engine at a time).
			res, err := sim.Run(&sim.Config{
				F:              f,
				T:              tJam,
				Seed:           o.TrialSeed(pointKey(ptX10Sim, uint64(ci)), i),
				NewAgent:       mkArena(c.n),
				Schedule:       sim.Simultaneous{Count: c.n},
				Adversary:      adversary.NewRandom(f, tJam, o.TrialSeed(pointKey(ptX10Adversary, uint64(ci)), i)),
				MaxRounds:      c.rounds,
				RunToMaxRounds: true,
				NoBatch:        o.NoBatch,
			})
			if err != nil {
				return 0, err
			}
			if res.AllSynced {
				synced.Add(1)
			}
			return float64(res.Stats.Collisions), nil
		})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(dispatchLabel(o), c.n, c.rounds, uint64(c.n)*c.rounds,
			fmt.Sprintf("%d/%d", synced.Load(), o.trials()), s.Median)
	}
	tbl.Notes = append(tbl.Notes,
		"fixed-horizon dense workload: every node awake from round 1 on F=128, run to the cap, so node rounds/trial is exact and node_rounds_per_s isolates stepping cost",
		"dispatch records the stepping mode (batch = devirtualized StepBatch cohorts, virtual = per-node Step via -nobatch); simulation results are bit-identical between the modes",
		"median collisions is a determinism checksum: it must not move across dispatch modes, parallelism levels, or shardings")
	return tbl, nil
}

// runX10a measures dispatch throughput for the Trapdoor protocol.
func runX10a(o Options) (*Table, error) {
	return runDispatchSweep(o, "X10a", "Dispatch throughput: Trapdoor, dense band (X10)",
		func(n int) func(sim.NodeID, uint64, *rng.Rand) sim.Agent {
			return trapdoor.MustNewArena(trapdoor.Params{N: n, F: 128, T: 16}, n).NewAgent
		})
}

// runX10b measures dispatch throughput for the Good Samaritan protocol.
func runX10b(o Options) (*Table, error) {
	return runDispatchSweep(o, "X10b", "Dispatch throughput: Good Samaritan, dense band (X10)",
		func(n int) func(sim.NodeID, uint64, *rng.Rand) sim.Agent {
			return samaritan.MustNewArena(samaritan.Params{N: n, F: 128, T: 16}, n).NewAgent
		})
}

// runX10c measures dispatch throughput for the round-robin baseline — the
// cheapest per-step protocol, so the largest fraction of its round is
// dispatch overhead and the batch/virtual ratio is widest here.
func runX10c(o Options) (*Table, error) {
	return runDispatchSweep(o, "X10c", "Dispatch throughput: round-robin baseline, dense band (X10)",
		func(n int) func(sim.NodeID, uint64, *rng.Rand) sim.Agent {
			return baseline.NewRoundRobinArena(n, 128, n).NewAgent
		})
}
