package harness

import (
	"fmt"
	"math"

	"wsync/internal/adversary"
	"wsync/internal/lowerbound"
	"wsync/internal/rendezvous"
	"wsync/internal/stats"
)

// exp_rendezvous.go is the R-series: the whitespace rendezvous workload
// family (Azar et al.; Theorem 4's game generalized) running on the shared
// medium resolver through internal/rendezvous.
//
//	R1  two-party meeting time vs band size and blocked fraction
//	R2  k-party all-meet scaling under churn
//	R3  strategy gallery vs jammer gallery
//
// All three follow the tier convention: -quick shrinks to smoke grids,
// -full widens R1 to F=128, R2 to k=32, and R3 to the wide band.

// runR1 sweeps the two-party game over band size F and statically blocked
// fraction β (channels 1..⌊βF⌋ closed for both parties), with both parties
// spreading uniformly over the Azar-optimal width min(F, 2t). The measured
// meeting times track the Theorem 4 form Ft/(F−t).
func runR1(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "R1",
		Title:   "Two-party rendezvous vs band size and blocked fraction (R1)",
		Columns: []string{"F", "t", "blocked frac", "width", "mean rounds", "median", "theory Ft/(F−t)", "ratio"},
	}
	fs := []int{8, 16, 32}
	fracs := []float64{0.125, 0.25, 0.5}
	if o.quick() {
		fs = []int{8}
		fracs = []float64{0.25}
	}
	if o.Full {
		// Full tier: the wide band. Point keys encode (F, t) directly, so
		// widening the grid never disturbs the default points' trial seeds.
		fs = []int{8, 16, 32, 64, 128}
		fracs = []float64{0.125, 0.25, 0.5, 0.75}
	}
	trials := o.trials() * 10 // individual games are cheap
	const maxRounds = 1 << 20
	for _, f := range fs {
		for _, frac := range fracs {
			tJam := int(frac * float64(f))
			if tJam < 1 {
				tJam = 1
			}
			width := rendezvous.OptimalWidth(f, tJam)
			s, err := o.summarizeTrials(trials, func(i int) (float64, error) {
				res, err := rendezvous.Run(&rendezvous.Config{
					F: f,
					Parties: []rendezvous.Party{
						{Strategy: width},
						{Strategy: width},
					},
					Jammer:    rendezvous.NewPrefix(f, tJam),
					MaxRounds: maxRounds,
					Seed:      o.TrialSeed(pointKey(ptR1, uint64(f)<<16|uint64(tJam)), i),
				})
				if err != nil {
					return 0, err
				}
				if res.FirstMeet == 0 {
					return float64(uint64(maxRounds)), nil
				}
				return float64(res.FirstMeet), nil
			})
			if err != nil {
				return nil, err
			}
			theory := lowerbound.Theorem4Rounds(float64(f), float64(tJam), math.Exp(-1))
			tbl.AddRow(f, tJam, frac, width.M, s.Mean, s.Median, theory, s.Mean/theory)
		}
	}
	tbl.Notes = append(tbl.Notes,
		"static whitespace band: channels 1..t blocked for both parties (virtual jam nodes on the shared medium)",
		"both parties spread uniformly over the Azar-optimal width min(F, 2t), transmitting w.p. 1/2",
		"meeting = one party transmits, the other listens, same unblocked channel — a clean reception on the resolver")
	if o.Full {
		tbl.Notes = append(tbl.Notes, "full tier: two-party meeting time swept to F=128")
	}
	return tbl, nil
}

// runR2 scales the party count: k parties wake staggered onto a churning
// band (a fresh random t-subset blocked each round) and must all meet —
// pairwise clean receptions merge components until one remains.
func runR2(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "R2",
		Title:   "k-party rendezvous scaling under churn (R2)",
		Columns: []string{"k", "F", "t", "median all-met", "p95", "mean meetings"},
	}
	ks := []int{2, 4, 8, 16}
	if o.quick() {
		ks = []int{2, 4}
	}
	if o.Full {
		ks = []int{2, 4, 8, 16, 32}
	}
	const f, tJam = 16, 4
	const maxRounds = 1 << 20
	width := rendezvous.OptimalWidth(f, tJam)
	for _, k := range ks {
		k := k
		type trial struct {
			allMet   float64
			meetings float64
		}
		outs, err := mapTrials(o, o.trials(), func(i int) (trial, error) {
			parties := make([]rendezvous.Party, k)
			for p := range parties {
				parties[p] = rendezvous.Party{Strategy: width, Wake: uint64(1 + 3*p)}
			}
			res, err := rendezvous.Run(&rendezvous.Config{
				F:       f,
				Parties: parties,
				Jammer: rendezvous.NewChurn(f, adversary.NewRandom(f, tJam,
					o.TrialSeed(pointKey(ptR2Adversary, uint64(k)), i))),
				MaxRounds: maxRounds,
				Seed:      o.TrialSeed(pointKey(ptR2Sim, uint64(k)), i),
			})
			if err != nil {
				return trial{}, err
			}
			if res.AllMet == 0 {
				return trial{}, checkFailf("R2: k=%d trial %d never all met", k, i)
			}
			return trial{allMet: float64(res.AllMet), meetings: float64(res.Meetings)}, nil
		})
		if err != nil {
			return nil, err
		}
		allMet := make([]float64, len(outs))
		meetings := 0.0
		for i, tr := range outs {
			allMet[i] = tr.allMet
			meetings += tr.meetings
		}
		s := stats.Summarize(allMet)
		tbl.AddRow(k, f, tJam, s.Median, s.P95, meetings/float64(len(outs)))
	}
	tbl.Notes = append(tbl.Notes,
		"parties wake staggered (3-round gaps); a random t-subset of the band churns every round",
		"all-met = the pairwise meeting graph connects all k parties (union-find over clean receptions)",
		"all-met time grows slowly with k: later wakers join a band already dense with transmitters")
	if o.Full {
		tbl.Notes = append(tbl.Notes, "full tier: k-party scaling swept to k=32")
	}
	return tbl, nil
}

// runR3 is the gallery cross: every rendezvous strategy against every
// jammer at the same budget. Randomized strategies survive everything;
// deterministic hopping starves under product jammers and resonant
// sweepers, which the met-fraction column makes visible.
func runR3(o Options) (*Table, error) {
	tbl := &Table{
		ID:      "R3",
		Title:   "Rendezvous strategy gallery vs jammer gallery (R3)",
		Columns: []string{"strategy", "jammer", "met frac", "median rounds", "mean rounds"},
	}
	f, tJam := 8, 2
	key := uint64(0)
	if o.Full {
		// Full tier: the wide band, with its own trial streams (fresh key).
		f, tJam = 64, 24
		key = uint64(f)
	}
	const maxRounds = 1 << 14
	width := rendezvous.OptimalWidth(f, tJam)
	strategies := []struct {
		name string
		mk   func() [2]rendezvous.Strategy
	}{
		{"width-2t", func() [2]rendezvous.Strategy { return [2]rendezvous.Strategy{width, width} }},
		{"full-band", func() [2]rendezvous.Strategy {
			u := rendezvous.Uniform{M: f, P: 0.5}
			return [2]rendezvous.Strategy{u, u}
		}},
		{"stay-ramble", func() [2]rendezvous.Strategy {
			return [2]rendezvous.Strategy{
				&rendezvous.StayRamble{M: f, Dwell: 8, PStay: 0.5, P: 0.5},
				&rendezvous.StayRamble{M: f, Dwell: 8, PStay: 0.5, P: 0.5},
			}
		}},
		{"oblivious", func() [2]rendezvous.Strategy {
			return [2]rendezvous.Strategy{
				rendezvous.Oblivious{M: f, Start: f / 2, Stride: 0, P: 0.5},
				rendezvous.Oblivious{M: f, Start: 0, Stride: 1, P: 0.5},
			}
		}},
		{"unknown-t", func() [2]rendezvous.Strategy {
			s := lowerbound.StrategyFromRegular(lowerbound.UnknownT{F: f, Dwell: 8})
			return [2]rendezvous.Strategy{s, s}
		}},
	}
	jammers := []struct {
		name string
		mk   func(seed uint64) rendezvous.Jammer
	}{
		{"none", func(uint64) rendezvous.Jammer { return nil }},
		{"prefix", func(uint64) rendezvous.Jammer { return rendezvous.NewPrefix(f, tJam) }},
		{"random", func(seed uint64) rendezvous.Jammer {
			return rendezvous.NewChurn(f, adversary.NewRandom(f, tJam, seed))
		}},
		{"sweep", func(uint64) rendezvous.Jammer {
			return rendezvous.NewChurn(f, adversary.NewSweep(f, tJam, 1))
		}},
		{"greedy", func(uint64) rendezvous.Jammer { return rendezvous.NewGreedy(f, tJam) }},
	}
	if o.quick() {
		strategies = strategies[:2]
		jammers = []struct {
			name string
			mk   func(seed uint64) rendezvous.Jammer
		}{jammers[0], jammers[4]}
	}
	trials := o.trials() * 3
	for si, sc := range strategies {
		for ji, jc := range jammers {
			sc, jc := sc, jc
			point := pointKey(ptR3Sim, key<<16|uint64(si)<<8|uint64(ji))
			jamPoint := pointKey(ptR3Adversary, key<<16|uint64(si)<<8|uint64(ji))
			rounds, err := o.parallelMap(trials, func(i int) (float64, error) {
				pair := sc.mk()
				res, err := rendezvous.Run(&rendezvous.Config{
					F: f,
					Parties: []rendezvous.Party{
						{Strategy: pair[0]},
						{Strategy: pair[1]},
					},
					Jammer:    jc.mk(o.TrialSeed(jamPoint, i)),
					MaxRounds: maxRounds,
					Seed:      o.TrialSeed(point, i),
				})
				if err != nil {
					return 0, err
				}
				if res.FirstMeet == 0 {
					return -1, nil // starved within the budget
				}
				return float64(res.FirstMeet), nil
			})
			if err != nil {
				return nil, err
			}
			met := 0
			clamped := make([]float64, len(rounds))
			for i, v := range rounds {
				if v < 0 {
					clamped[i] = float64(uint64(maxRounds))
					continue
				}
				met++
				clamped[i] = v
			}
			s := stats.Summarize(clamped)
			tbl.AddRow(sc.name, jc.name, fmt.Sprintf("%.2f", float64(met)/float64(trials)), s.Median, s.Mean)
		}
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("every cell: the same band F=%d, budget t=%d, round cap %d", f, tJam, maxRounds),
		"unmet trials count the full round cap in the mean/median columns",
		"deterministic hopping (oblivious) starves under the greedy product jammer and resonates with the sweeper: its alignment channel is periodic, so the sweep window either never or always covers it",
		"unknown-t cycles spreading widths 2,4,...,F (Meier et al.), paying an O(lg F) factor over the t-aware width")
	if o.Full {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("full tier: gallery on the wide band F=%d, t=%d", f, tJam))
	}
	return tbl, nil
}
