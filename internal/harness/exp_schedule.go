package harness

import (
	"fmt"

	"wsync/internal/freqdist"
	"wsync/internal/samaritan"
	"wsync/internal/trapdoor"
)

// refTrapdoorParams is the reference configuration used for the schedule
// figure; N=64, F=8, t=2 is also the base configuration for the Theorem 10
// sweeps.
func refTrapdoorParams() trapdoor.Params {
	return trapdoor.Params{N: 64, F: 8, T: 2}
}

// runF1 reproduces Figure 1: the Trapdoor Protocol's epoch lengths and
// broadcast probabilities.
func runF1(o Options) (*Table, error) {
	p := refTrapdoorParams()
	tbl := &Table{
		ID:      "F1",
		Title:   "Trapdoor epoch schedule (Figure 1)",
		Columns: []string{"epoch", "length (rounds)", "broadcast prob"},
	}
	for _, row := range p.Schedule() {
		tbl.AddRow(row.Epoch, row.Length, fmt.Sprintf("%d/%d = %.4f",
			1<<uint(row.Epoch), 2*p.N, row.Prob))
	}
	fp := p.FPrime()
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("config: N=%d F=%d t=%d, F'=min(F,2t)=%d", p.N, p.F, p.T, fp),
		fmt.Sprintf("regular epochs: CEpoch·⌈F'/(F'−t)⌉·lgN = %d·%d·%d = %d rounds",
			trapdoor.DefaultCEpoch, (fp+fp-p.T-1)/(fp-p.T), p.LgN(), p.EpochLen()),
		fmt.Sprintf("final epoch: CFinal·⌈F'²/(F'−t)⌉·lgN = %d rounds (paper: Θ(F'²/(F'−t)·logN))",
			p.FinalEpochLen()),
		"probabilities follow Figure 1 exactly: 1/N, 2/N, ..., 1/4, 1/2",
	)
	return tbl, nil
}

// runF2 reproduces Figure 2: the Good Samaritan round structure, including
// the special-round frequency distribution.
func runF2(o Options) (*Table, error) {
	p := samaritan.Params{N: 16, F: 8, T: 2}
	tbl := &Table{
		ID:      "F2",
		Title:   "Good Samaritan round structure (Figure 2)",
		Columns: []string{"super-epoch", "epoch", "length (rounds)", "broadcast prob", "narrow band", "special rounds"},
	}
	for _, row := range p.Schedule() {
		special := "no"
		if row.Special {
			special = "half of rounds"
		}
		tbl.AddRow(row.Super, row.Epoch, row.Length, row.Prob,
			fmt.Sprintf("[1..%d]", row.NarrowBand), special)
	}
	// The special-round distribution in closed form.
	sp := freqdist.NewSpecial(p.F)
	dist := "special-round P[f]: "
	for f := 1; f <= p.F; f++ {
		dist += fmt.Sprintf("f=%d:%.3f ", f, sp.Prob(f))
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("config: N=%d F=%d t=%d; lgN=%d epochs + 2 per super-epoch, lgF=%d super-epochs",
			p.N, p.F, p.T, p.LgN(), p.LgF()),
		fmt.Sprintf("epoch length s(k) = CEpoch·2^k·lg²N (see DESIGN.md on the paper's log³N inconsistency); fallback epoch = %d rounds", p.FallbackEpochLen()),
		fmt.Sprintf("success threshold s(k)/2^(k+6): k=1 → %d", p.SuccessThreshold(1)),
		dist,
	)
	return tbl, nil
}
