package harness

import (
	"bytes"
	"reflect"
	"testing"

	"wsync/internal/adversary"
	"wsync/internal/rng"
	"wsync/internal/sim"
	"wsync/internal/stats"
	"wsync/internal/trapdoor"
)

// TestRunnerDeterminism is the runner's headline guarantee: sequential
// (Parallelism 1) and parallel (Parallelism 8) runs of the same experiment
// produce byte-identical tables. One trapdoor and one samaritan experiment
// cover both protocol families' trial loops.
func TestRunnerDeterminism(t *testing.T) {
	for _, id := range []string{"T10a", "T18a"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s not found", id)
			}
			render := func(parallelism int) []byte {
				opt := Options{Quick: true, Trials: 4, Seed: 7, Parallelism: parallelism}
				tbl, err := e.Run(opt)
				if err != nil {
					t.Fatalf("%s (parallelism %d): %v", id, parallelism, err)
				}
				var buf bytes.Buffer
				if err := tbl.Render(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			seq := render(1)
			par := render(8)
			if !bytes.Equal(seq, par) {
				t.Errorf("%s differs between P=1 and P=8:\n--- P=1 ---\n%s--- P=8 ---\n%s", id, seq, par)
			}
		})
	}
}

// TestTrialSeedProperties pins the seed derivation: pure in its inputs,
// sensitive to every input, and collision-free across a realistic grid.
func TestTrialSeedProperties(t *testing.T) {
	o := Options{Seed: 42}
	if o.TrialSeed(7, 3) != o.TrialSeed(7, 3) {
		t.Fatal("TrialSeed is not a pure function")
	}
	seen := map[uint64]string{}
	for _, point := range []uint64{0, 1, 7, 7000, 9000} {
		for trial := 0; trial < 100; trial++ {
			s := o.TrialSeed(point, trial)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%d) vs %s", point, trial, prev)
			}
			seen[s] = "earlier trial"
		}
	}
	if o.TrialSeed(1, 2) == (Options{Seed: 43}).TrialSeed(1, 2) {
		t.Error("TrialSeed ignores Options.Seed")
	}
}

// TestSummarizeTrialsMatchesSummarize checks that the streaming
// accumulator path produces exactly the Summary the collect-then-sort
// path would, at every parallelism level.
func TestSummarizeTrialsMatchesSummarize(t *testing.T) {
	const n = 500
	xs := make([]float64, n)
	r := rng.New(5)
	for i := range xs {
		// Integer-heavy with repeats, like round counts.
		xs[i] = float64(r.Intn(40))
	}
	want := stats.Summarize(xs)
	for _, par := range []int{1, 2, 7, 16} {
		o := Options{Parallelism: par}
		got, err := o.summarizeTrials(n, func(i int) (float64, error) { return xs[i], nil })
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("parallelism %d: summary %+v != %+v", par, got, want)
		}
	}
	// Errors surface, and deterministically prefer the lowest trial index.
	o := Options{Parallelism: 8}
	_, err := o.summarizeTrials(64, func(i int) (float64, error) {
		if i >= 32 {
			return 0, checkFailf("trial %d failed", i)
		}
		return 1, nil
	})
	if err == nil || err.Error() != "harness: trial 32 failed" {
		t.Fatalf("err = %v, want deterministic first-by-index error", err)
	}
}

// TestRunAgreesWithRunConcurrentUnderTrialSeeds drives both sim engines
// with runner-derived per-trial seeds and requires identical results —
// the property that lets the parallel runner host either engine.
func TestRunAgreesWithRunConcurrentUnderTrialSeeds(t *testing.T) {
	o := Options{Seed: 3}
	p := trapdoor.Params{N: 32, F: 8, T: 2}
	for trial := 0; trial < 3; trial++ {
		mkCfg := func() *sim.Config {
			return &sim.Config{
				F:    p.F,
				T:    p.T,
				Seed: o.TrialSeed(12345, trial),
				NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
					return trapdoor.MustNew(p, r)
				},
				Schedule:  sim.Staggered{Count: 6, Gap: 3},
				Adversary: adversary.NewPrefix(p.F, p.T),
				MaxRounds: 1 << 21,
				Workers:   3,
			}
		}
		seq, err := sim.Run(mkCfg())
		if err != nil {
			t.Fatal(err)
		}
		conc, err := sim.RunConcurrent(mkCfg())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, conc) {
			t.Fatalf("trial %d: Run and RunConcurrent disagree:\nseq:  %+v\nconc: %+v", trial, seq, conc)
		}
	}
}
