package harness

import (
	"bytes"
	"strings"
	"testing"

	"wsync/internal/sim"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "T0",
		Title:   "demo",
		Columns: []string{"a", "bbbb"},
		Notes:   []string{"hello"},
	}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("x", 1234.0)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"T0", "demo", "a", "bbbb", "2.50", "1234", "note: hello"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestTableMarkdownAndCSV(t *testing.T) {
	tbl := &Table{ID: "T0", Title: "demo", Columns: []string{"a", "b"}}
	tbl.AddRow(1, 2)
	var md bytes.Buffer
	if err := tbl.Markdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| a | b |") {
		t.Errorf("markdown header missing:\n%s", md.String())
	}
	var csvBuf bytes.Buffer
	if err := tbl.CSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if got := csvBuf.String(); got != "a,b\n1,2\n" {
		t.Errorf("csv = %q", got)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		1234:    "1234",
		250.7:   "251",
		2.5:     "2.50",
		0.125:   "0.1250",
		-3:      "-3",
		-250.72: "-251",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestParallelMapOrderAndErrors(t *testing.T) {
	for _, par := range []int{1, 4, 32} {
		o := Options{Parallelism: par}
		xs, err := o.parallelMap(32, func(i int) (float64, error) { return float64(i * i), nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range xs {
			if x != float64(i*i) {
				t.Fatalf("parallelism %d: xs[%d] = %v", par, i, x)
			}
		}
		_, err = o.parallelMap(8, func(i int) (float64, error) {
			if i == 5 {
				return 0, checkFailf("boom")
			}
			return 0, nil
		})
		if err == nil {
			t.Fatal("error swallowed")
		}
	}
}

func TestWeightObserver(t *testing.T) {
	w := &WeightObserver{}
	w.ObserveRound(&sim.RoundRecord{Round: 1, Weights: []float64{0.25, 0.25}})
	w.ObserveRound(&sim.RoundRecord{Round: 2, Weights: []float64{0.5, 0.75}})
	w.ObserveRound(&sim.RoundRecord{Round: 3, Weights: nil}) // probing off
	if w.Max != 1.25 || w.MaxRound != 2 {
		t.Fatalf("max = %v at %d", w.Max, w.MaxRound)
	}
	if got := w.MeanWeight(); got != (0.5+1.25)/2 {
		t.Fatalf("mean = %v", got)
	}
	empty := &WeightObserver{}
	if empty.MeanWeight() != 0 {
		t.Fatal("empty mean != 0")
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("T10a"); !ok {
		t.Fatal("T10a not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus id found")
	}
	// IDs are unique.
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

// TestAllExperimentsQuick runs every experiment on its smallest grid and
// validates the resulting tables. This is the harness's integration test;
// it intentionally runs everything end to end.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness sweep")
	}
	opt := Options{Quick: true, Trials: 3, Seed: 1}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tbl, err := e.Run(opt)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tbl.ID != e.ID {
				t.Errorf("table id %q != experiment id %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Errorf("%s produced no rows", e.ID)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Errorf("%s: row width %d != %d columns", e.ID, len(row), len(tbl.Columns))
				}
			}
			var buf bytes.Buffer
			if err := tbl.Render(&buf); err != nil {
				t.Errorf("%s: render: %v", e.ID, err)
			}
		})
	}
}
