// Package obs is the dependency-free observability layer: a metrics
// registry (counters, gauges, histograms, and their labelled vector
// forms) with Prometheus text exposition, built for the wsyncd service
// stack.
//
// Design constraints, in order:
//
//   - No dependencies. The repository's rule is that nothing gets
//     installed; the exposition format is simple enough to emit by hand
//     and the Prometheus text format (version 0.0.4) is a stable,
//     universally scraped target.
//   - Cheap on the writer side. Counters and gauges are single atomics;
//     histograms are an atomic per bucket plus a CAS loop for the sum.
//     None of them lock on the hot path, so instrumented code (the
//     wsyncd server handlers, the worker loop) never serializes on the
//     registry mutex — that mutex guards only registration and
//     exposition.
//   - Deterministic exposition. Families render in registration order
//     and labelled children in sorted label order, so scraping the same
//     state twice yields byte-identical documents — the property the
//     golden test in obs_test.go pins, and what makes /metrics output
//     diffable in CI logs.
//
// The engine hot paths are deliberately NOT instrumented through this
// package: internal/sim, internal/multihop, and internal/rendezvous keep
// their existing process-global atomic node-round counters
// (sim.TotalNodeRounds etc.), and the service layer samples deltas of
// those around each experiment. The zero-allocation round-loop contract
// (TestSteadyStateAllocs, TestActivationRoundAllocs) is therefore
// untouched by observability.
//
// Typical use:
//
//	reg := obs.NewRegistry()
//	jobs := reg.Counter("wsync_jobs_submitted_total", "Jobs accepted by POST /v1/jobs.")
//	lat := reg.Histogram("wsync_push_latency_seconds", "Push handler latency.", obs.DefTimeBuckets)
//	inflight := reg.GaugeVec("wsync_worker_inflight", "Leased experiments per worker.", "worker")
//
//	jobs.Inc()
//	lat.Observe(0.0042)
//	inflight.With("w1").Set(3)
//
//	mux.Handle("GET /metrics", reg.Handler())
//
// docs/OBSERVABILITY.md catalogues every metric the service stack
// registers.
package obs
