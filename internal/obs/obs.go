package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefTimeBuckets is the default latency histogram layout, in seconds:
// 1ms to 10s in roughly half-decade steps. It suits the service-layer
// latencies this package was built for (HTTP handlers, experiment wall
// times); callers with other ranges pass their own bounds.
var DefTimeBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an int64 metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
// Observe is lock-free: one atomic increment plus a CAS loop for the sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metricKind tags a family for exposition and re-registration checks.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one metric name: either a single unlabelled series or a set
// of labelled children (a "vec").
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string // nil for unlabelled families
	bounds []float64

	mu       sync.Mutex
	single   any            // *Counter / *Gauge / *Histogram when labels == nil
	children map[string]any // joined label values -> metric
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds or revalidates a family. Registering the same name twice
// with an identical shape returns the existing family (so package-level
// helpers can be idempotent); a shape mismatch panics — two call sites
// disagreeing about a metric is a programming error worth dying for.
func (r *Registry) register(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	if name == "" || !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("obs: %q re-registered as %s%v, was %s%v", name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, bounds: bounds}
	if labels != nil {
		f.children = make(map[string]any)
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

func validName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}

// Counter registers (or returns) the unlabelled counter name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = &Counter{}
	}
	return f.single.(*Counter)
}

// Gauge registers (or returns) the unlabelled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = &Gauge{}
	}
	return f.single.(*Gauge)
}

// Histogram registers (or returns) the unlabelled histogram name with
// the given ascending bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: histogram %q buckets are not ascending", name))
	}
	bounds := append([]float64(nil), buckets...)
	f := r.register(name, help, kindHistogram, nil, bounds)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		f.single = newHistogram(f.bounds)
	}
	return f.single.(*Histogram)
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct{ f *family }

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct{ f *family }

// CounterVec registers (or returns) the labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: CounterVec %q needs labels (use Counter)", name))
	}
	return &CounterVec{f: r.register(name, help, kindCounter, append([]string(nil), labels...), nil)}
}

// GaugeVec registers (or returns) the labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: GaugeVec %q needs labels (use Gauge)", name))
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, append([]string(nil), labels...), nil)}
}

// With returns the child counter for the given label values (created on
// first use). The value count must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// With returns the child gauge for the given label values (created on
// first use). The value count must match the registered label names.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// childKey joins label values with an unprintable separator so distinct
// value tuples never collide.
func childKey(values []string) string { return strings.Join(values, "\x00") }

func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	m := mk()
	f.children[key] = m
	return m
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4). Families appear in
// registration order and labelled children in sorted label-value order,
// so identical registry state always renders identical bytes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) render(b *strings.Builder) {
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)

	if f.labels == nil {
		f.mu.Lock()
		m := f.single
		f.mu.Unlock()
		if m != nil {
			renderMetric(b, f, m, "")
		}
		return
	}

	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()

	for i, k := range keys {
		renderMetric(b, f, children[i], labelString(f.labels, strings.Split(k, "\x00")))
	}
}

// labelString renders {name="value",...} with Prometheus escaping.
func labelString(names, values []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func renderMetric(b *strings.Builder, f *family, m any, labels string) {
	switch v := m.(type) {
	case *Counter:
		fmt.Fprintf(b, "%s%s %d\n", f.name, labels, v.Value())
	case *Gauge:
		fmt.Fprintf(b, "%s%s %d\n", f.name, labels, v.Value())
	case *Histogram:
		// Cumulative bucket counts, one snapshot: load each bucket once so
		// _count equals the +Inf bucket even under concurrent Observes.
		cum := uint64(0)
		for i, bound := range v.bounds {
			cum += v.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, bucketLabels(labels, formatFloat(bound)), cum)
		}
		cum += v.counts[len(v.bounds)].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, bucketLabels(labels, "+Inf"), cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labels, formatFloat(v.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, labels, cum)
	}
}

// bucketLabels splices le="bound" into an existing (possibly empty)
// label set.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the exposition — mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
