package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exposition byte for byte: family order
// is registration order, labelled children sort by label value, and
// histogram buckets are cumulative with the synthetic +Inf tail.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	jobs := reg.Counter("wsync_jobs_submitted_total", "Jobs accepted.")
	running := reg.Gauge("wsync_jobs_running", "Jobs in state running.")
	lat := reg.Histogram("wsync_push_latency_seconds", "Push handler latency.", []float64{0.01, 0.1, 1})
	inflight := reg.GaugeVec("wsync_worker_inflight", "Leased experiments per worker.", "worker")

	jobs.Add(3)
	running.Set(2)
	running.Dec()
	lat.Observe(0.004)
	lat.Observe(0.05)
	lat.Observe(7)
	inflight.With("wB").Set(4)
	inflight.With("wA").Set(1)

	want := strings.Join([]string{
		"# HELP wsync_jobs_submitted_total Jobs accepted.",
		"# TYPE wsync_jobs_submitted_total counter",
		"wsync_jobs_submitted_total 3",
		"# HELP wsync_jobs_running Jobs in state running.",
		"# TYPE wsync_jobs_running gauge",
		"wsync_jobs_running 1",
		"# HELP wsync_push_latency_seconds Push handler latency.",
		"# TYPE wsync_push_latency_seconds histogram",
		`wsync_push_latency_seconds_bucket{le="0.01"} 1`,
		`wsync_push_latency_seconds_bucket{le="0.1"} 2`,
		`wsync_push_latency_seconds_bucket{le="1"} 2`,
		`wsync_push_latency_seconds_bucket{le="+Inf"} 3`,
		"wsync_push_latency_seconds_sum 7.054",
		"wsync_push_latency_seconds_count 3",
		"# HELP wsync_worker_inflight Leased experiments per worker.",
		"# TYPE wsync_worker_inflight gauge",
		`wsync_worker_inflight{worker="wA"} 1`,
		`wsync_worker_inflight{worker="wB"} 4`,
		"",
	}, "\n")

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}

	// Scraping twice yields identical bytes — the determinism contract.
	var again strings.Builder
	if err := reg.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != b.String() {
		t.Error("two scrapes of identical state differ")
	}
}

// TestHandler checks the HTTP front end and its content type.
func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total", "Requests.").Inc()
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(rec.Body)
	if !strings.Contains(string(body), "requests_total 1") {
		t.Errorf("body missing counter:\n%s", body)
	}
}

// TestIdempotentRegistration pins that re-registering an identical shape
// returns the same underlying metric, and a shape mismatch panics.
func TestIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c_total", "x")
	b := reg.Counter("c_total", "x")
	if a != b {
		t.Error("identical re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("re-registered counter does not share state")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind mismatch did not panic")
			}
		}()
		reg.Gauge("c_total", "x")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("label mismatch did not panic")
			}
		}()
		reg.CounterVec("c_total", "x", "worker")
	}()
}

// TestLabelEscaping pins quote/backslash/newline escaping in label
// values.
func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("esc_total", "x", "v").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}

// TestInvalidRegistrations pins the registration-time panics.
func TestInvalidRegistrations(t *testing.T) {
	reg := NewRegistry()
	for name, fn := range map[string]func(){
		"bad metric name":     func() { reg.Counter("9bad", "x") },
		"bad label name":      func() { reg.CounterVec("ok_total", "x", "bad-label") },
		"empty histogram":     func() { reg.Histogram("h", "x", nil) },
		"unsorted histogram":  func() { reg.Histogram("h2", "x", []float64{1, 0.5}) },
		"vec without labels":  func() { reg.CounterVec("v_total", "x") },
		"gauge vec no labels": func() { reg.GaugeVec("g_total", "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestWithArityMismatch pins the label-value count check.
func TestWithArityMismatch(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("arity_total", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

// TestConcurrentUse hammers every metric kind from many goroutines while
// scraping — run under -race in CI — and checks the final totals.
func TestConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("cc_total", "x")
	g := reg.Gauge("cg", "x")
	h := reg.Histogram("ch_seconds", "x", []float64{0.5})
	v := reg.CounterVec("cv_total", "x", "w")

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w%4))
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
				v.With(name).Inc()
			}
		}(w)
	}
	for i := 0; i < 10; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if want := 0.25 * workers * per; h.Sum() != want {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), want)
	}
}
