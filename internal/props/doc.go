// Package props verifies, over a running execution, the five correctness
// properties of the wireless synchronization problem (Section 3 of the
// paper):
//
//  1. Validity — every activated node outputs a value in N⊥ each round.
//     This holds structurally in the simulator (outputs are (uint64, ⊥)),
//     so the checker records it implicitly.
//  2. Synch Commit — once a node outputs a non-⊥ value it never outputs ⊥
//     again.
//  3. Correctness — a node outputting i in round r outputs i+1 in round
//     r+1.
//  4. Agreement — all non-⊥ outputs in a round are equal.
//  5. Liveness — eventually every active node stops outputting ⊥; the
//     checker reports it from the run's final state.
//
// The Checker is a sim.Observer: attach it to a Config and inspect it after
// the run. It verifies streams without retaining the execution, so it is
// cheap enough to attach to every experiment.
package props
