package props

import (
	"strings"
	"testing"

	"wsync/internal/sim"
)

// feed runs the checker over a matrix of outputs: rounds[r][i] is node i's
// output in round r+1.
func feed(c *Checker, rounds [][]sim.Output) {
	for r, outs := range rounds {
		c.ObserveRound(&sim.RoundRecord{Round: uint64(r + 1), Outputs: outs})
	}
}

func o(v uint64) sim.Output { return sim.Output{Value: v, Synced: true} }
func bot() sim.Output       { return sim.Output{} }

func TestCleanExecution(t *testing.T) {
	c := NewChecker(2)
	feed(c, [][]sim.Output{
		{bot(), bot()},
		{o(10), bot()},
		{o(11), o(11)},
		{o(12), o(12)},
	})
	if !c.OK() {
		t.Fatalf("clean execution flagged: %v", c.Violations())
	}
	if !c.Live() {
		t.Fatal("liveness not detected")
	}
	if c.SyncedCount() != 2 {
		t.Fatalf("SyncedCount = %d", c.SyncedCount())
	}
	if !strings.Contains(c.Summary(), "OK") {
		t.Fatalf("Summary = %q", c.Summary())
	}
}

func TestCommitViolation(t *testing.T) {
	c := NewChecker(1)
	feed(c, [][]sim.Output{
		{o(5)},
		{bot()},
	})
	if c.OK() {
		t.Fatal("revert to ⊥ not flagged")
	}
	vs := c.Violations()
	if len(vs) != 1 || vs[0].Kind != KindCommit {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].Round != 2 || vs[0].Node != 0 {
		t.Fatalf("violation location = %+v", vs[0])
	}
}

func TestCorrectnessViolation(t *testing.T) {
	c := NewChecker(1)
	feed(c, [][]sim.Output{
		{o(5)},
		{o(7)}, // skipped 6
	})
	if c.OK() {
		t.Fatal("skip not flagged")
	}
	if got := c.Violations()[0].Kind; got != KindCorrectness {
		t.Fatalf("kind = %v", got)
	}
	// Stalling is also a violation.
	c2 := NewChecker(1)
	feed(c2, [][]sim.Output{{o(5)}, {o(5)}})
	if c2.OK() {
		t.Fatal("stall not flagged")
	}
}

func TestAgreementViolation(t *testing.T) {
	c := NewChecker(3)
	feed(c, [][]sim.Output{
		{o(4), bot(), o(9)},
	})
	if c.OK() {
		t.Fatal("disagreement not flagged")
	}
	v := c.Violations()[0]
	if v.Kind != KindAgreement || v.Node != 2 {
		t.Fatalf("violation = %+v", v)
	}
}

func TestAgreementIgnoresBottom(t *testing.T) {
	c := NewChecker(3)
	feed(c, [][]sim.Output{
		{bot(), o(4), bot()},
		{bot(), o(5), o(5)},
	})
	if !c.OK() {
		t.Fatalf("⊥ treated as disagreement: %v", c.Violations())
	}
}

func TestLivenessNegative(t *testing.T) {
	c := NewChecker(2)
	feed(c, [][]sim.Output{
		{o(1), bot()},
	})
	if c.Live() {
		t.Fatal("liveness reported with an unsynced node")
	}
}

func TestViolationCap(t *testing.T) {
	c := NewChecker(1)
	rounds := make([][]sim.Output, 200)
	for i := range rounds {
		rounds[i] = []sim.Output{o(uint64(1000 - i))} // decrements: always wrong
	}
	feed(c, rounds)
	if c.Count() != 199 {
		t.Fatalf("Count = %d, want 199", c.Count())
	}
	if len(c.Violations()) > maxViolations {
		t.Fatalf("retained %d violations, cap is %d", len(c.Violations()), maxViolations)
	}
	if !strings.Contains(c.Summary(), "violations") {
		t.Fatalf("Summary = %q", c.Summary())
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindCommit:      "synch-commit",
		KindCorrectness: "correctness",
		KindAgreement:   "agreement",
		Kind(42):        "kind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: KindAgreement, Round: 7, Node: 3, Detail: "x"}
	s := v.String()
	for _, frag := range []string{"round 7", "node 3", "agreement", "x"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}
