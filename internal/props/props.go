package props

import (
	"fmt"

	"wsync/internal/sim"
)

// Kind classifies a property violation.
type Kind uint8

// Violation kinds.
const (
	KindCommit Kind = iota + 1
	KindCorrectness
	KindAgreement
)

// String names the violation kind.
func (k Kind) String() string {
	switch k {
	case KindCommit:
		return "synch-commit"
	case KindCorrectness:
		return "correctness"
	case KindAgreement:
		return "agreement"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Violation describes one observed property violation.
type Violation struct {
	Kind   Kind
	Round  uint64
	Node   sim.NodeID
	Detail string
}

// String renders the violation for logs.
func (v Violation) String() string {
	return fmt.Sprintf("round %d node %d: %s: %s", v.Round, v.Node, v.Kind, v.Detail)
}

// maxViolations bounds retained violations so a badly broken protocol does
// not exhaust memory; the count keeps incrementing past the cap.
const maxViolations = 64

// Checker is a streaming verifier of the synchronization properties.
// Attach with Config.Observers; not safe for concurrent use by multiple
// engines.
type Checker struct {
	last       []sim.Output
	have       []bool
	violations []Violation
	count      int

	lastRound     uint64
	everSynced    bool
	syncedCount   int
	observedNodes int
}

var _ sim.Observer = (*Checker)(nil)

// NewChecker returns a checker for an n-node simulation.
func NewChecker(n int) *Checker {
	return &Checker{
		last: make([]sim.Output, n),
		have: make([]bool, n),
	}
}

func (c *Checker) record(v Violation) {
	c.count++
	if len(c.violations) < maxViolations {
		c.violations = append(c.violations, v)
	}
}

// ObserveRound checks the round's outputs against the previous round's.
func (c *Checker) ObserveRound(rec *sim.RoundRecord) {
	c.lastRound = rec.Round
	agreeSet := false
	var agreeVal uint64
	var agreeNode sim.NodeID
	synced := 0
	for i, out := range rec.Outputs {
		id := sim.NodeID(i)
		if out.Synced {
			synced++
			c.everSynced = true
			// Agreement: all non-⊥ outputs equal within the round.
			if !agreeSet {
				agreeSet = true
				agreeVal = out.Value
				agreeNode = id
			} else if out.Value != agreeVal {
				c.record(Violation{
					Kind: KindAgreement, Round: rec.Round, Node: id,
					Detail: fmt.Sprintf("outputs %d but node %d outputs %d", out.Value, agreeNode, agreeVal),
				})
			}
		}
		if c.have[i] {
			prev := c.last[i]
			if prev.Synced && !out.Synced {
				c.record(Violation{
					Kind: KindCommit, Round: rec.Round, Node: id,
					Detail: fmt.Sprintf("reverted to ⊥ after outputting %d", prev.Value),
				})
			}
			if prev.Synced && out.Synced && out.Value != prev.Value+1 {
				c.record(Violation{
					Kind: KindCorrectness, Round: rec.Round, Node: id,
					Detail: fmt.Sprintf("output %d follows %d, want %d", out.Value, prev.Value, prev.Value+1),
				})
			}
		}
		c.last[i] = out
		c.have[i] = true
	}
	c.syncedCount = synced
	c.observedNodes = len(rec.Outputs)
}

// OK reports whether no violation has been observed.
func (c *Checker) OK() bool { return c.count == 0 }

// Count returns the total number of violations observed (including those
// beyond the retention cap).
func (c *Checker) Count() int { return c.count }

// Violations returns the retained violations (up to an internal cap).
func (c *Checker) Violations() []Violation {
	out := make([]Violation, len(c.violations))
	copy(out, c.violations)
	return out
}

// Live reports the liveness outcome: whether every node had a non-⊥ output
// in the final observed round.
func (c *Checker) Live() bool {
	return c.observedNodes > 0 && c.syncedCount == c.observedNodes
}

// SyncedCount returns how many nodes were synced in the final round.
func (c *Checker) SyncedCount() int { return c.syncedCount }

// Summary renders a one-line verdict for CLI output.
func (c *Checker) Summary() string {
	if c.OK() {
		return fmt.Sprintf("properties OK through round %d (%d/%d nodes synced)",
			c.lastRound, c.syncedCount, c.observedNodes)
	}
	return fmt.Sprintf("%d violations through round %d (first: %s)",
		c.count, c.lastRound, c.violations[0])
}
