// Package stats provides the summary statistics and curve-fitting helpers
// the experiment harness uses to compare measured synchronization times
// against the paper's asymptotic bounds (Theorems 1, 4, 10, and 18).
//
// Summarize condenses a sample into the quantiles the experiment tables
// report; FitRatio and RelSpread quantify how closely a measured curve
// tracks a theory curve's shape. Accumulator is the streaming, mergeable
// counterpart of Summarize used by the parallel runner: per-worker
// accumulators merge into one summary whose floating-point reductions are
// computed in a scheduling-independent order, anchoring the runner's
// bit-identical-at-any-parallelism guarantee.
package stats
