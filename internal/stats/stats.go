package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	Max    float64
}

// Summarize computes summary statistics of xs. An empty sample yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))
	ss := 0.0
	for _, x := range sorted {
		d := x - mean
		ss += d * d
	}
	sd := 0.0
	if len(sorted) > 1 {
		sd = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		StdDev: sd,
		Min:    sorted[0],
		P25:    Percentile(sorted, 0.25),
		Median: Percentile(sorted, 0.50),
		P75:    Percentile(sorted, 0.75),
		P95:    Percentile(sorted, 0.95),
		Max:    sorted[len(sorted)-1],
	}
}

// Percentile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// sample using linear interpolation. It panics on an empty sample.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI95 returns the normal-approximation 95% confidence interval for the
// mean.
func (s Summary) CI95() (lo, hi float64) {
	if s.N < 2 {
		return s.Mean, s.Mean
	}
	half := 1.96 * s.StdDev / math.Sqrt(float64(s.N))
	return s.Mean - half, s.Mean + half
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f sd=%.1f min=%.0f med=%.1f p95=%.1f max=%.0f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P95, s.Max)
}

// LinearFit computes the least-squares line y = slope·x + intercept and the
// coefficient of determination R². Fewer than two points yield zeros.
func LinearFit(xs, ys []float64) (slope, intercept, r2 float64) {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0, 0, 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return slope, intercept, r2
}

// FitRatio reports how well ys ≈ c·theory fits by returning the per-point
// ratios' summary. A reproduction "matches the shape" when the ratio is
// near-constant across the sweep (small relative spread).
func FitRatio(theory, ys []float64) Summary {
	n := len(theory)
	if n > len(ys) {
		n = len(ys)
	}
	ratios := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if theory[i] != 0 {
			ratios = append(ratios, ys[i]/theory[i])
		}
	}
	return Summarize(ratios)
}

// RelSpread returns (max-min)/median of the sample, a scale-free measure of
// how constant a ratio series is. Returns +Inf when the median is zero.
func RelSpread(s Summary) float64 {
	if s.Median == 0 {
		return math.Inf(1)
	}
	return (s.Max - s.Min) / s.Median
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// FromUint64 converts measurement slices for the summary helpers.
func FromUint64(xs []uint64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
