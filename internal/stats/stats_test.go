package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Median != 42 || s.Min != 42 || s.Max != 42 || s.StdDev != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{4, 2, 6, 8, 10})
	if s.N != 5 {
		t.Fatalf("N = %d", s.N)
	}
	if !almost(s.Mean, 6, 1e-12) {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.Median != 6 || s.Min != 2 || s.Max != 10 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample sd of {2,4,6,8,10} = sqrt(40/4) = sqrt(10).
	if !almost(s.StdDev, math.Sqrt(10), 1e-12) {
		t.Fatalf("StdDev = %v", s.StdDev)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {-1, 10}, {2, 40},
		{0.5, 25}, {0.25, 17.5}, {1.0 / 3, 20},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.q); !almost(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestPercentilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty sample")
		}
	}()
	Percentile(nil, 0.5)
}

func TestCI95(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	lo, hi := s.CI95()
	if lo >= s.Mean || hi <= s.Mean {
		t.Fatalf("CI [%v, %v] does not bracket mean %v", lo, hi, s.Mean)
	}
	one := Summarize([]float64{5})
	lo, hi = one.CI95()
	if lo != 5 || hi != 5 {
		t.Fatalf("single-point CI = [%v, %v]", lo, hi)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, intercept, r2 := LinearFit(xs, ys)
	if !almost(slope, 2, 1e-12) || !almost(intercept, 3, 1e-12) || !almost(r2, 1, 1e-12) {
		t.Fatalf("fit = (%v, %v, %v)", slope, intercept, r2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if s, _, _ := LinearFit([]float64{1}, []float64{1}); s != 0 {
		t.Fatal("fit on one point")
	}
	// Constant x: slope 0, intercept mean(y).
	s, b, _ := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if s != 0 || !almost(b, 2, 1e-12) {
		t.Fatalf("constant-x fit = (%v, %v)", s, b)
	}
	// Constant y: perfect fit with slope 0.
	s, b, r2 := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if !almost(s, 0, 1e-12) || !almost(b, 4, 1e-12) || !almost(r2, 1, 1e-12) {
		t.Fatalf("constant-y fit = (%v, %v, %v)", s, b, r2)
	}
}

func TestFitRatio(t *testing.T) {
	theory := []float64{10, 20, 40}
	measured := []float64{30, 60, 120} // constant ratio 3
	s := FitRatio(theory, measured)
	if !almost(s.Mean, 3, 1e-12) || !almost(s.Min, 3, 1e-12) || !almost(s.Max, 3, 1e-12) {
		t.Fatalf("ratio summary = %+v", s)
	}
	if got := RelSpread(s); !almost(got, 0, 1e-12) {
		t.Fatalf("RelSpread = %v", got)
	}
	// Zero theory entries are skipped.
	s2 := FitRatio([]float64{0, 10}, []float64{5, 20})
	if s2.N != 1 || !almost(s2.Mean, 2, 1e-12) {
		t.Fatalf("ratio with zero theory = %+v", s2)
	}
}

func TestRelSpreadInf(t *testing.T) {
	if !math.IsInf(RelSpread(Summary{}), 1) {
		t.Fatal("RelSpread of zero median should be +Inf")
	}
}

func TestMeanAndFromUint64(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	xs := FromUint64([]uint64{1, 2, 3})
	if !almost(Mean(xs), 2, 1e-12) {
		t.Fatalf("Mean = %v", Mean(xs))
	}
}

// Property: Min <= P25 <= Median <= P75 <= P95 <= Max and Min <= Mean <= Max.
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 &&
			s.P75 <= s.P95 && s.P95 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: LinearFit recovers exact linear relationships.
func TestQuickLinearFitRecovery(t *testing.T) {
	f := func(slopeRaw, interceptRaw int8, n uint8) bool {
		m := int(n%20) + 2
		slope := float64(slopeRaw) / 4
		intercept := float64(interceptRaw)
		xs := make([]float64, m)
		ys := make([]float64, m)
		for i := 0; i < m; i++ {
			xs[i] = float64(i)
			ys[i] = slope*xs[i] + intercept
		}
		gotS, gotI, _ := LinearFit(xs, ys)
		return almost(gotS, slope, 1e-9) && almost(gotI, intercept, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
