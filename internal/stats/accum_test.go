package stats

import (
	"math"
	"testing"
)

// testSample returns a deterministic sample with heavy repetition
// (round-count-like) plus fractional values.
func testSample(n int) []float64 {
	xs := make([]float64, n)
	state := uint64(88172645463325252)
	for i := range xs {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		if i%5 == 0 {
			xs[i] = float64(state%97) / 8
		} else {
			xs[i] = float64(state % 23)
		}
	}
	return xs
}

// TestAccumulatorMatchesSummarize is the accumulator's core contract: for
// any partition of the sample across accumulators, the merged Summary is
// bit-identical to Summarize of the whole sample.
func TestAccumulatorMatchesSummarize(t *testing.T) {
	xs := testSample(400)
	want := Summarize(xs)
	for _, parts := range []int{1, 2, 3, 8, 31} {
		accs := make([]Accumulator, parts)
		for i, x := range xs {
			accs[i%parts].Add(x)
		}
		var merged Accumulator
		for i := range accs {
			merged.Merge(&accs[i])
		}
		if merged.N() != len(xs) {
			t.Fatalf("%d parts: N = %d", parts, merged.N())
		}
		if got := merged.Summary(); got != want {
			t.Errorf("%d parts: summary %+v != %+v", parts, got, want)
		}
	}
}

func TestAccumulatorEdgeCases(t *testing.T) {
	var a Accumulator
	if a.Summary() != (Summary{}) {
		t.Error("empty accumulator summary not zero")
	}
	a.Merge(&Accumulator{}) // merging empties is a no-op
	a.Merge(nil)
	if a.N() != 0 {
		t.Error("merge of empties added samples")
	}
	a.Add(3)
	s := a.Summary()
	if s.N != 1 || s.Mean != 3 || s.Median != 3 || s.StdDev != 0 {
		t.Errorf("singleton summary = %+v", s)
	}
	if got := a.Values(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Values = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Add(NaN) did not panic")
		}
	}()
	a.Add(math.NaN())
}

func TestAccumulatorValuesSorted(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{5, 1, 3, 1, 5, 5} {
		a.Add(x)
	}
	got := a.Values()
	want := []float64{1, 1, 3, 5, 5, 5}
	if len(got) != len(want) {
		t.Fatalf("Values = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
}
