package stats

import (
	"math"
	"sort"
)

// Accumulator is a mergeable, streaming collector of measurements. The
// experiment runner gives each worker goroutine its own Accumulator and
// merges them once the sweep point finishes, so a sweep never materializes
// the full per-trial result slice.
//
// Internally the accumulator keeps an exact value histogram. Measurements
// in this repository are round counts (integers stored as float64), so the
// number of distinct values is far below the number of trials and the
// histogram stays small; arbitrary float64 values are still handled
// correctly, just without compression.
//
// Summary output is bit-identical regardless of how samples were
// partitioned across accumulators: all derived statistics are computed
// from the merged histogram in ascending value order, exactly as Summarize
// computes them from a sorted sample.
type Accumulator struct {
	n      int
	counts map[float64]int
}

// Add records one measurement. NaN values are rejected by panic: a NaN
// measurement is a harness bug and must not silently poison quantiles.
func (a *Accumulator) Add(x float64) {
	if math.IsNaN(x) {
		panic("stats: Accumulator.Add(NaN)")
	}
	if a.counts == nil {
		a.counts = make(map[float64]int)
	}
	a.counts[x]++
	a.n++
}

// Merge folds b's samples into a. b is left unchanged.
func (a *Accumulator) Merge(b *Accumulator) {
	if b == nil || b.n == 0 {
		return
	}
	if a.counts == nil {
		a.counts = make(map[float64]int, len(b.counts))
	}
	for x, c := range b.counts {
		a.counts[x] += c
	}
	a.n += b.n
}

// N returns the number of samples recorded so far.
func (a *Accumulator) N() int { return a.n }

// Values returns the recorded sample expanded to a sorted slice. It is
// intended for callers that need the raw sample (fits, plots); the size is
// the trial count, so this is only used off the streaming path.
func (a *Accumulator) Values() []float64 {
	keys := a.sortedKeys()
	out := make([]float64, 0, a.n)
	for _, k := range keys {
		for c := a.counts[k]; c > 0; c-- {
			out = append(out, k)
		}
	}
	return out
}

// Summary computes the same statistics Summarize would produce for the
// recorded multiset of samples. An empty accumulator yields the zero
// Summary.
func (a *Accumulator) Summary() Summary {
	if a.n == 0 {
		return Summary{}
	}
	keys := a.sortedKeys()

	// Sum and squared deviations are accumulated value-by-value in
	// ascending order — the exact association Summarize uses on its sorted
	// sample — so the two paths agree to the last bit.
	sum := 0.0
	for _, k := range keys {
		for c := a.counts[k]; c > 0; c-- {
			sum += k
		}
	}
	mean := sum / float64(a.n)
	ss := 0.0
	for _, k := range keys {
		d := k - mean
		for c := a.counts[k]; c > 0; c-- {
			ss += d * d
		}
	}
	sd := 0.0
	if a.n > 1 {
		sd = math.Sqrt(ss / float64(a.n-1))
	}
	return Summary{
		N:      a.n,
		Mean:   mean,
		StdDev: sd,
		Min:    keys[0],
		P25:    a.quantile(keys, 0.25),
		Median: a.quantile(keys, 0.50),
		P75:    a.quantile(keys, 0.75),
		P95:    a.quantile(keys, 0.95),
		Max:    keys[len(keys)-1],
	}
}

func (a *Accumulator) sortedKeys() []float64 {
	keys := make([]float64, 0, len(a.counts))
	for k := range a.counts {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	return keys
}

// at returns the i-th smallest sample (0-based) from the histogram.
func (a *Accumulator) at(keys []float64, i int) float64 {
	for _, k := range keys {
		i -= a.counts[k]
		if i < 0 {
			return k
		}
	}
	return keys[len(keys)-1]
}

// quantile mirrors Percentile's linear interpolation over the histogram.
func (a *Accumulator) quantile(keys []float64, q float64) float64 {
	if q <= 0 {
		return keys[0]
	}
	if q >= 1 {
		return keys[len(keys)-1]
	}
	pos := q * float64(a.n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	vlo := a.at(keys, lo)
	if lo == hi {
		return vlo
	}
	vhi := a.at(keys, hi)
	frac := pos - float64(lo)
	return vlo*(1-frac) + vhi*frac
}
