package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs in 100 draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	var all uint64
	for i := 0; i < 100; i++ {
		all |= r.Uint64()
	}
	if all == 0 {
		t.Fatal("zero seed produced all-zero output")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split(1)
	b := parent.Split(2)
	a2 := New(7).Split(1)
	// Same parent seed and key reproduce the stream.
	for i := 0; i < 100; i++ {
		if a.Uint64() != a2.Uint64() {
			t.Fatalf("split stream not reproducible at step %d", i)
		}
	}
	// Different keys give different streams.
	c := New(7).Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split keys 1 and 2 produced %d identical outputs in 100 draws", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(5)
	_ = a.Split(6)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestNearbySplitKeysUncorrelated(t *testing.T) {
	parent := New(3)
	streams := make([]*Rand, 8)
	for i := range streams {
		streams[i] = parent.Split(uint64(i))
	}
	// Means of each stream's Float64 should all be near 0.5.
	for i, s := range streams {
		sum := 0.0
		const draws = 4000
		for j := 0; j < draws; j++ {
			sum += s.Float64()
		}
		mean := sum / draws
		if math.Abs(mean-0.5) > 0.03 {
			t.Errorf("stream %d mean = %.4f, want ~0.5", i, mean)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(11)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(13)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) = %d", v)
		}
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Fatalf("IntRange(4,4) = %d, want 4", got)
	}
}

func TestIntRangePanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntRange(2,1) did not panic")
		}
	}()
	New(1).IntRange(2, 1)
}

func TestFloat64Bounds(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(23)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(29)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		const draws = 50000
		for i := 0; i < draws; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / draws
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) rate = %v", p, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for _, n := range []int{0, 1, 2, 5, 33} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(37)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("Shuffle duplicated %d: %v", v, xs)
		}
		seen[v] = true
	}
}

func TestSampleK(t *testing.T) {
	r := New(41)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(50)
		k := r.Intn(n + 1)
		s := r.SampleK(n, k)
		if len(s) != k {
			t.Fatalf("SampleK(%d,%d) returned %d values", n, k, len(s))
		}
		for i, v := range s {
			if v < 0 || v >= n {
				t.Fatalf("SampleK(%d,%d) value %d out of range", n, k, v)
			}
			if i > 0 && s[i-1] >= v {
				t.Fatalf("SampleK(%d,%d) = %v not strictly increasing", n, k, s)
			}
		}
	}
}

func TestSampleKFull(t *testing.T) {
	s := New(43).SampleK(5, 5)
	for i, v := range s {
		if v != i {
			t.Fatalf("SampleK(5,5) = %v, want [0 1 2 3 4]", s)
		}
	}
}

func TestSampleKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleK(3,4) did not panic")
		}
	}()
	New(1).SampleK(3, 4)
}

// Property: Intn over the full uint64-derived path stays in range for
// arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds yield identical streams regardless of the seed
// value.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SampleK returns k strictly increasing in-range values.
func TestQuickSampleK(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%64) + 1
		k := int(kRaw) % (n + 1)
		s := New(seed).SampleK(n, k)
		if len(s) != k {
			return false
		}
		for i, v := range s {
			if v < 0 || v >= n {
				return false
			}
			if i > 0 && s[i-1] >= v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(48)
	}
	_ = sink
}
