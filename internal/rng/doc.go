// Package rng provides a small, fast, deterministic pseudo-random number
// generator with support for splitting independent streams.
//
// Simulations in this repository must be exactly reproducible from a single
// master seed, including when node agents run concurrently. To achieve this,
// every node and every adversary receives its own Rand, derived from the
// master seed with Split. Streams derived with distinct split keys are
// statistically independent for simulation purposes.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64, the construction recommended by its authors. It is not
// cryptographically secure; it is a simulation PRNG.
package rng
