package rng

import "math/bits"

// Rand is a deterministic pseudo-random number generator. It is not safe for
// concurrent use; derive one Rand per goroutine with Split.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used to expand seeds into full generator state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Rand seeded from seed. Any seed value, including zero, is
// valid: the state is expanded with splitmix64 and never all-zero.
func New(seed uint64) *Rand {
	r := &Rand{}
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	return r
}

// Split derives a new independent Rand from r and the given key. Two splits
// of the same Rand with different keys produce independent streams; the
// parent stream is not advanced, so Split is safe to call at setup time in
// any order.
func (r *Rand) Split(key uint64) *Rand {
	child := &Rand{}
	r.SplitInto(key, child)
	return child
}

// SplitInto is Split writing the derived state into dst instead of
// allocating, so callers splitting once per node can lay the children out in
// one contiguous slab. The stream is identical to Split's.
func (r *Rand) SplitInto(key uint64, dst *Rand) {
	// Mix the key into the parent state through splitmix64 so that nearby
	// keys (0, 1, 2, ...) yield unrelated streams.
	st := r.s[0] ^ bits.RotateLeft64(r.s[1], 13) ^ key*0x9e3779b97f4a7c15
	for i := range dst.s {
		dst.s[i] = splitmix64(&st)
	}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, mirroring
// math/rand; callers control n and a non-positive value is a programming
// error.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.uint64n(uint64(n)))
}

// IntRange returns a uniform integer in [lo, hi]. It panics if lo > hi.
func (r *Rand) IntRange(lo, hi int) int {
	if lo > hi {
		panic("rng: IntRange called with lo > hi")
	}
	return lo + r.Intn(hi-lo+1)
}

// uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method.
func (r *Rand) uint64n(n uint64) uint64 {
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bernoulli returns true with probability p. Values of p <= 0 always return
// false and values >= 1 always return true.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes xs uniformly at random in place.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleK returns k distinct uniform values from [0, n) in increasing order.
// It panics if k > n or k < 0.
func (r *Rand) SampleK(n, k int) []int {
	return r.SampleKInto(n, k, nil)
}

// SampleKInto is SampleK reusing dst's backing storage (growing it when
// needed), so a caller drawing a sample every round allocates only once.
// The draws, and therefore the generator stream consumed, are identical to
// SampleK's: duplicate detection by linear scan over the chosen values
// answers exactly the membership queries the historical map answered.
func (r *Rand) SampleKInto(n, k int, dst []int) []int {
	if k < 0 || k > n {
		panic("rng: SampleK called with k out of range")
	}
	// Floyd's algorithm: O(k²) worst case with the scan, but k is small in
	// all our uses and the constant beats a map rebuilt per call.
	out := dst[:0]
	for j := n - k; j < n; j++ {
		v := r.Intn(j + 1)
		dup := false
		for _, c := range out {
			if c == v {
				dup = true
				break
			}
		}
		if dup {
			v = j
		}
		out = append(out, v)
	}
	// Insertion sort; k is small in all our uses.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
