// Package pool is the repository's work-stealing index scheduler: it
// executes fn(worker, i) for every index i in [0, n) across a fixed set
// of worker goroutines. The experiment harness fans Monte-Carlo trials
// through it, and the lower-bound sweeps fan (width, trial) grids.
//
// Workers own contiguous index spans; a worker that drains its span
// steals the upper half of another worker's remaining span. Indices of
// the same batch can vary enormously in cost (a simulation runs until
// synchronization), so static chunking alone leaves workers idle behind
// one slow index; stealing keeps them busy without the channel-per-index
// overhead of a shared queue.
//
// The scheduler only decides WHERE an index executes — callers that need
// deterministic results must make outputs a pure function of the index
// (the harness derives per-trial RNG seeds from trial identity alone).
package pool
