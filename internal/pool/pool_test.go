package pool

import (
	"sync/atomic"
	"testing"
)

// TestRunEveryIndexOnce checks the scheduler's contract: every index
// executes exactly once, worker ids stay in range, and wildly uneven
// per-index costs (the trigger for stealing) don't break either property.
func TestRunEveryIndexOnce(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 17}, {4, 4}, {4, 64}, {8, 3}, {16, 1000}, {3, 0}, {0, 5},
	} {
		counts := make([]atomic.Int32, tc.n)
		var badWorker atomic.Bool
		Run(tc.workers, tc.n, func(w, i int) {
			if w < 0 || (tc.workers > 0 && w >= tc.workers) {
				badWorker.Store(true)
			}
			counts[i].Add(1)
			if i%7 == 0 { // lopsided work to force steals
				x := uint64(i + 1)
				for k := 0; k < 20000; k++ {
					x ^= x << 13
					x ^= x >> 7
				}
				if x == 0 {
					t.Error("unreachable, defeats dead-code elimination")
				}
			}
		})
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d n=%d: index %d ran %d times", tc.workers, tc.n, i, got)
			}
		}
		if badWorker.Load() {
			t.Fatalf("workers=%d n=%d: worker id out of range", tc.workers, tc.n)
		}
	}
}

// TestSpanOps pins the packed-span primitives the scheduler races on.
func TestSpanOps(t *testing.T) {
	var s span
	s.bits.Store(packSpan(3, 7))
	if i, ok := s.pop(); !ok || i != 3 {
		t.Fatalf("pop = %d, %v", i, ok)
	}
	stolen, ok := s.stealHalf() // remaining [4,7) -> keep [4,5), steal [5,7)
	if !ok {
		t.Fatal("stealHalf failed on span of 3")
	}
	if lo, hi := unpackSpan(stolen); lo != 5 || hi != 7 {
		t.Fatalf("stolen [%d,%d), want [5,7)", lo, hi)
	}
	if i, ok := s.pop(); !ok || i != 4 {
		t.Fatalf("pop after steal = %d, %v", i, ok)
	}
	if _, ok := s.pop(); ok {
		t.Fatal("pop on empty span succeeded")
	}
	if _, ok := s.stealHalf(); ok {
		t.Fatal("stealHalf on empty span succeeded")
	}
	s.bits.Store(packSpan(9, 10))
	if _, ok := s.stealHalf(); ok {
		t.Fatal("stole a singleton span (owner should finish it)")
	}
}
