package pool

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// span is a half-open index interval [lo, hi) packed into one uint64
// (lo in the high 32 bits) so owners and thieves can race on it with CAS.
type span struct{ bits atomic.Uint64 }

func packSpan(lo, hi uint32) uint64 { return uint64(lo)<<32 | uint64(hi) }

func unpackSpan(v uint64) (lo, hi uint32) { return uint32(v >> 32), uint32(v) }

// pop claims the owner's next index, or reports an empty span.
func (s *span) pop() (int, bool) {
	for {
		v := s.bits.Load()
		lo, hi := unpackSpan(v)
		if lo >= hi {
			return 0, false
		}
		if s.bits.CompareAndSwap(v, packSpan(lo+1, hi)) {
			return int(lo), true
		}
	}
}

// stealHalf removes and returns the upper half of the span. Spans with
// fewer than two remaining indices are not worth a steal: the owner
// finishes them faster than a thief can take them.
func (s *span) stealHalf() (stolen uint64, ok bool) {
	for {
		v := s.bits.Load()
		lo, hi := unpackSpan(v)
		if hi-lo < 2 {
			return 0, false
		}
		mid := lo + (hi-lo)/2
		if s.bits.CompareAndSwap(v, packSpan(lo, mid)) {
			return packSpan(mid, hi), true
		}
	}
}

// steal refills worker w's span from the first victim with stealable work,
// scanning from w's right neighbor so concurrent thieves spread out over
// victims instead of contending on one.
func steal(spans []span, w int) bool {
	for off := 1; off < len(spans); off++ {
		if stolen, ok := spans[(w+off)%len(spans)].stealHalf(); ok {
			spans[w].bits.Store(stolen)
			return true
		}
	}
	return false
}

// Run executes fn(worker, i) for every i in [0, n) across `workers`
// goroutines (0 or negative means one per CPU; capped at n; an effective
// count of 1 runs inline). Every index runs exactly once; the worker
// argument identifies the executing goroutine (0 <= worker < effective
// worker count) so callers can keep per-worker accumulators. fn must be
// safe for concurrent invocation with distinct i. n must fit in uint32;
// batches here are trial counts, far below it.
func Run(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if uint64(n) > math.MaxUint32 {
		// Span packing holds indices in 32 bits; wrapping would silently
		// run some indices twice and skip others. Fail loudly instead.
		panic(fmt.Sprintf("pool: batch of %d exceeds the uint32 index space", n))
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	spans := make([]span, workers)
	lo, chunk, rem := 0, n/workers, n%workers
	for w := range spans {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		spans[w].bits.Store(packSpan(uint32(lo), uint32(hi)))
		lo = hi
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i, ok := spans[w].pop()
				if !ok {
					if !steal(spans, w) {
						return
					}
					continue
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
