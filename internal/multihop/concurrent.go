package multihop

import (
	"fmt"
	"sync"

	"wsync/internal/sim"
)

// concurrentPhase identifies the two barrier-separated parts of a round
// executed by worker goroutines, mirroring the single-hop engine's
// round-barrier structure.
type concurrentPhase int

const (
	concurrentStep concurrentPhase = iota + 1
	concurrentDeliver
)

type concurrentCmd struct {
	phase concurrentPhase
	round uint64
}

// RunConcurrent executes the simulation with agent stepping and message
// delivery striped across worker goroutines (c.Workers of them; 0 means
// one per node). It produces exactly the same Result as Run for the same
// Config: workers only ever touch per-node state (worker w owns nodes i
// with i % workers == w), and everything with cross-node extent —
// medium resolution, the adversary, observers via StopWhen, and
// crucially topology churn — runs on the coordinating goroutine between
// the two barriers.
//
// Churned configs are explicitly supported: the per-round delta apply
// and the SetGraph swap are serialized behind the round barrier, before
// any worker steps an agent for that round, so the resolver never
// changes graphs while a worker is in flight. A concurrent churned run
// is byte-identical to the serial one (TestRunConcurrentMatchesRun pins
// Results across churn models, schedules, and adversaries).
//
// c.NewAgent may be invoked from worker goroutines, concurrently for
// distinct node IDs — the same factory contract sim.RunConcurrent
// documents. Cohort batch-stepping does not apply here (workers step per
// node); per-node and batch dispatch are bit-identical, so this is
// observationally invisible.
func RunConcurrent(c *Config) (*Result, error) {
	e, err := newEngine(c)
	if err != nil {
		return nil, err
	}
	workers := c.Workers
	if workers <= 0 || workers > e.n {
		workers = e.n
	}
	maxRounds := c.MaxRounds
	if maxRounds == 0 {
		maxRounds = sim.DefaultMaxRounds
	}
	res := e.res

	cmds := make([]chan concurrentCmd, workers)
	done := make(chan struct{}, workers)
	var wg sync.WaitGroup

	runWorker := func(w int, cmdC chan concurrentCmd) {
		defer wg.Done()
		// All slices are indexed per node, so writes are disjoint across
		// workers; the channel operations order them against the
		// coordinator's reads.
		for cmd := range cmdC {
			switch cmd.phase {
			case concurrentStep:
				for i := w; i < e.n; i += workers {
					if !e.active[i] {
						if e.activation[i] != cmd.round {
							continue
						}
						e.active[i] = true
						e.agents[i] = e.cfg.NewAgent(sim.NodeID(i), cmd.round, &e.agentRNG[i])
					}
					a := e.agents[i].Step(cmd.round - e.activation[i] + 1)
					e.actFreq[i] = int32(a.Freq)
					e.actTx[i] = a.Transmit
					if a.Transmit {
						e.actMsg[i] = a.Msg
					}
				}
			case concurrentDeliver:
				for i := w; i < e.n; i += workers {
					if e.hasPending[i] {
						e.agents[i].Deliver(e.pending[i])
					}
				}
			}
			done <- struct{}{}
		}
	}

	for w := 0; w < workers; w++ {
		cmds[w] = make(chan concurrentCmd)
		wg.Add(1)
		go runWorker(w, cmds[w])
	}
	stopWorkers := func() {
		for _, c := range cmds {
			close(c)
		}
		wg.Wait()
	}
	defer stopWorkers()

	barrier := func(cmd concurrentCmd) {
		for _, c := range cmds {
			c <- cmd
		}
		for range cmds {
			<-done
		}
	}

	for r := uint64(1); r <= maxRounds; r++ {
		if e.runRoundConcurrent(r, barrier) {
			break
		}
	}
	res.AllSynced = e.synced == e.n
	res.HitMaxRounds = res.Rounds == maxRounds && !res.AllSynced
	for i := 0; i < e.n; i++ {
		if e.agents[i] != nil {
			if lr, ok := e.agents[i].(sim.LeaderReporter); ok && lr.IsLeader() {
				res.Leaders++
			}
		}
	}
	totalNodeRounds.Add(res.NodeRounds)
	return res, nil
}

// runRoundConcurrent is runRound with the per-node loops delegated to
// the workers behind barrier. Coordinator-side order is identical to the
// serial path: churn, activation bookkeeping, the adversary, then (step
// barrier), validation and resolution, then (deliver barrier), and the
// output sweep — so every observable value is computed in the same
// sequence as Run.
func (e *engine) runRoundConcurrent(r uint64, barrier func(concurrentCmd)) (stop bool) {
	c := e.cfg
	res := e.res
	e.beginObserve(r)
	if c.Churn != nil {
		// Serialized graph mutation: no worker is in flight here, so the
		// delta apply and SetGraph swap cannot race agent stepping.
		e.churnRound(r)
	}
	// Activation bookkeeping happens here so the adversary's history view
	// and the resolver's awake list are current; the active flags and
	// agent construction happen in the workers.
	for _, i := range e.act.Wake(r) {
		e.hist.Activated[i] = r
		e.activatedCount++
	}
	disrupted := e.disruptedSet(r)
	barrier(concurrentCmd{phase: concurrentStep, round: r})

	for _, i := range e.act.Active() {
		if f := int(e.actFreq[i]); f < 1 || f > c.F {
			panic(fmt.Sprintf("multihop: node %d chose frequency %d", i, f))
		}
	}
	res.NodeRounds += uint64(len(e.act.Active()))

	for _, i := range e.pendingList {
		e.hasPending[i] = false
	}
	e.pendingList = e.pendingList[:0]

	if c.Medium == sim.MediumScan {
		e.resolveScan(disrupted)
	} else {
		e.resolveIndexed(disrupted)
	}

	barrier(concurrentCmd{phase: concurrentDeliver, round: r})
	for _, i := range e.act.Active() {
		if res.SyncRound[i] == 0 {
			if out := e.agents[i].Output(); out.Synced {
				res.SyncRound[i] = r
				e.synced++
			}
		}
	}
	e.hist.Completed = r
	res.Rounds = r
	e.endObserve(disrupted)
	if c.StopWhen != nil && c.StopWhen(r) {
		return true
	}
	return !c.RunToMax && e.activatedCount == e.n && e.synced == e.n
}
