package multihop

import (
	"wsync/internal/core"
	"wsync/internal/freqdist"
	"wsync/internal/msg"
	"wsync/internal/rng"
	"wsync/internal/sim"
	"wsync/internal/trapdoor"
)

// RelayNode extends the Trapdoor Protocol across hops. It behaves exactly
// like a single-hop Trapdoor node until it holds a numbering (by winning
// its regional competition or adopting a neighbor's), then turns into a
// relay: each round it re-announces the numbering with probability 1/2 on
// a random competition channel. Because distant regions can elect
// independent leaders, relays merge conflicting schemes by adopting the
// numerically larger scheme identifier; the connected component therefore
// converges on a single numbering in time proportional to its diameter
// (experiment X7).
type RelayNode struct {
	inner *trapdoor.Node
	r     *rng.Rand
	dist  freqdist.Uniform
	age   uint64
	uid   uint64

	relaying bool
	out      core.OutputState
	scheme   uint64
}

var (
	_ sim.Agent          = (*RelayNode)(nil)
	_ sim.LeaderReporter = (*RelayNode)(nil)
)

// NewRelay builds a multi-hop relay node over Trapdoor parameters.
func NewRelay(p trapdoor.Params, r *rng.Rand) (*RelayNode, error) {
	inner, err := trapdoor.New(p, r)
	if err != nil {
		return nil, err
	}
	return &RelayNode{
		inner: inner,
		r:     r,
		dist:  freqdist.NewUniform(1, p.FPrime()),
		uid:   inner.UID(),
	}, nil
}

// MustNewRelay panics on invalid parameters.
func MustNewRelay(p trapdoor.Params, r *rng.Rand) *RelayNode {
	n, err := NewRelay(p, r)
	if err != nil {
		panic(err)
	}
	return n
}

// Scheme returns the numbering scheme currently followed.
func (n *RelayNode) Scheme() uint64 {
	if n.relaying {
		return n.scheme
	}
	return n.inner.Scheme()
}

// IsLeader reports whether this node's own competition victory created the
// numbering it follows.
func (n *RelayNode) IsLeader() bool { return n.inner.IsLeader() }

// Step implements sim.Agent.
func (n *RelayNode) Step(local uint64) sim.Action {
	n.age = local
	if !n.relaying {
		act := n.inner.Step(local)
		if out := n.inner.Output(); out.Synced {
			// Graduate to relaying; carry the numbering over.
			n.relaying = true
			n.scheme = n.inner.Scheme()
			n.out.Adopt(out.Value)
		}
		return act
	}
	n.out.Tick()
	f := n.dist.Sample(n.r)
	if n.r.Bool() {
		return sim.Action{
			Freq:     f,
			Transmit: true,
			Msg: msg.Message{
				Kind:   msg.KindLeader,
				TS:     msg.Timestamp{Age: n.age, UID: n.uid},
				Round:  n.out.Value(),
				Scheme: n.scheme,
			},
		}
	}
	return sim.Action{Freq: f}
}

// Deliver implements sim.Agent: before relaying, the inner protocol rules
// apply; afterwards, leader announcements with a larger scheme identifier
// replace the current numbering (the merge rule).
func (n *RelayNode) Deliver(m msg.Message) {
	if !n.relaying {
		n.inner.Deliver(m)
		return
	}
	if m.Kind == msg.KindLeader && m.Scheme > n.scheme {
		n.scheme = m.Scheme
		n.out.Adopt(m.Round)
	}
}

// Output implements sim.Agent.
func (n *RelayNode) Output() sim.Output {
	if !n.relaying {
		return n.inner.Output()
	}
	return sim.Output{Value: n.out.Value(), Synced: true}
}
