package multihop

import (
	"sort"
	"testing"
)

// FuzzGraphDelta drives the incremental topology mutation API with
// arbitrary insert/delete streams and cross-checks every step against a
// naive set-based oracle: return values must match oracle membership, and
// the final adjacency must be sorted, symmetric, and exactly the oracle's
// edge set through HasEdge, EdgeCount, AppendEdges, and Clone.
func FuzzGraphDelta(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2})
	// n=4: insert (0,1), delete (0,1), re-insert (0,1).
	f.Add([]byte{4, 0, 0, 1, 1, 0, 1, 0, 0, 1})
	// n=3: duplicate inserts and a delete of an absent edge.
	f.Add([]byte{3, 0, 1, 2, 0, 1, 2, 1, 0, 2})
	// n=16: a longer mixed stream touching high indices.
	f.Add([]byte{16, 0, 14, 15, 0, 0, 15, 0, 7, 8, 1, 0, 15, 0, 15, 7, 1, 14, 15})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		n := 2 + int(data[0]%15)
		data = data[1:]
		topo := NewTopologyFromEdges(n, nil)
		oracle := make(map[[2]int]bool)
		for len(data) >= 3 {
			del := data[0]%2 == 1
			a, b := int(data[1])%n, int(data[2])%n
			data = data[3:]
			if a == b {
				b = (a + 1) % n // self-loops are a documented panic, not a fuzz target
			}
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			key := [2]int{lo, hi}
			if del {
				if got, want := topo.DeleteEdge(a, b), oracle[key]; got != want {
					t.Fatalf("DeleteEdge(%d, %d) = %v, oracle has edge: %v", a, b, got, want)
				}
				delete(oracle, key)
			} else {
				if got, want := topo.InsertEdge(a, b), !oracle[key]; got != want {
					t.Fatalf("InsertEdge(%d, %d) = %v, oracle lacks edge: %v", a, b, got, want)
				}
				oracle[key] = true
			}
		}
		for _, g := range []*Topology{topo, topo.Clone()} {
			if got := g.EdgeCount(); got != len(oracle) {
				t.Fatalf("EdgeCount = %d, oracle has %d", got, len(oracle))
			}
			degSum := 0
			for i := 0; i < n; i++ {
				nbrs := g.Neighbors(i)
				degSum += len(nbrs)
				if !sort.IntsAreSorted(nbrs) {
					t.Fatalf("node %d adjacency not sorted: %v", i, nbrs)
				}
				for _, j := range nbrs {
					if !g.HasEdge(j, i) {
						t.Fatalf("edge (%d, %d) present but not symmetric", i, j)
					}
				}
			}
			if degSum != 2*len(oracle) {
				t.Fatalf("degree sum %d, want %d", degSum, 2*len(oracle))
			}
			for a := 0; a < n; a++ {
				for b := a + 1; b < n; b++ {
					if got, want := g.HasEdge(a, b), oracle[[2]int{a, b}]; got != want {
						t.Fatalf("HasEdge(%d, %d) = %v, oracle: %v", a, b, got, want)
					}
				}
			}
			edges := g.AppendEdges(nil)
			for i := 1; i < len(edges); i++ {
				if e, p := edges[i], edges[i-1]; p.A > e.A || (p.A == e.A && p.B >= e.B) {
					t.Fatalf("AppendEdges not strictly ascending at %d: %v then %v", i, p, e)
				}
			}
		}
	})
}
