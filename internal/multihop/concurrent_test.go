package multihop

import (
	"testing"

	"wsync/internal/rng"
	"wsync/internal/sim"
)

// concurrent_test.go differentially tests RunConcurrent against Run:
// identical configs must produce bit-identical Results and delivery logs
// at every worker count — including churned configs, where the engine
// serializes delta application and the SetGraph swap on the coordinator
// behind the round barrier. The churn model here is defined locally
// (internal/churn imports multihop, so its models cannot appear in this
// package's tests).

// testChurn is a seeded random churn model: each round it toggles up to
// three node pairs, tracking the live edge set so every emitted delta
// honors the engine's strict present/absent contract. Deterministic per
// seed, so a fresh instance replays identically for each run.
type testChurn struct {
	r     *rng.Rand
	n     int
	edges map[uint64]struct{}
	add   []Edge
	rem   []Edge
}

func newTestChurn(topo *Topology, seed uint64) *testChurn {
	c := &testChurn{r: rng.New(seed), n: topo.N(), edges: map[uint64]struct{}{}}
	for _, e := range topo.AppendEdges(nil) {
		c.edges[edgeKey(e.A, e.B)] = struct{}{}
	}
	return c
}

func (c *testChurn) Deltas(r uint64) (add, remove []Edge) {
	c.add, c.rem = c.add[:0], c.rem[:0]
	k := c.r.IntRange(0, 3)
draw:
	for i := 0; i < k; i++ {
		a, b := c.r.Intn(c.n), c.r.Intn(c.n)
		if a == b {
			continue
		}
		key := edgeKey(a, b)
		// Toggling the same pair twice in one round would emit an add and
		// a remove for one edge; the engine applies removes first, so the
		// pair must appear at most once per round.
		for _, e := range c.add {
			if edgeKey(e.A, e.B) == key {
				continue draw
			}
		}
		for _, e := range c.rem {
			if edgeKey(e.A, e.B) == key {
				continue draw
			}
		}
		if _, ok := c.edges[key]; ok {
			delete(c.edges, key)
			c.rem = append(c.rem, Edge{A: a, B: b})
		} else {
			c.edges[key] = struct{}{}
			c.add = append(c.add, Edge{A: a, B: b})
		}
	}
	return c.add, c.rem
}

// concurrentDiffRun executes one configuration through Run or
// RunConcurrent and returns the result plus every agent's reception log.
// Stateful collaborators (adversary, churn model) are constructed fresh
// per run via the factories.
func concurrentDiffRun(t *testing.T, cfg Config, mkAdv func() sim.Adversary,
	mkChurn func() ChurnModel, concurrent bool) (*Result, [][]uint64) {
	t.Helper()
	agents := make([]*diffAgent, cfg.Topology.N())
	if mkAdv != nil {
		cfg.Adversary = mkAdv()
	}
	if mkChurn != nil {
		cfg.Churn = mkChurn()
	}
	cfg.NewAgent = func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
		a := newDiffAgent(r, cfg.F)
		agents[id] = a
		return a
	}
	var (
		res *Result
		err error
	)
	if concurrent {
		res, err = RunConcurrent(&cfg)
	} else {
		res, err = Run(&cfg)
	}
	if err != nil {
		t.Fatal(err)
	}
	heard := make([][]uint64, len(agents))
	for i, a := range agents {
		if a != nil {
			heard[i] = a.heard
		}
	}
	return res, heard
}

// TestRunConcurrentMatchesRun is the concurrent runner's differential
// pin: over randomized topologies, schedules, adversaries, worker
// counts, and churn models, RunConcurrent must reproduce Run's Result —
// every field including the churn counters — and every agent's exact
// reception log. Churned cases exercise the serialized SetGraph path
// specifically: before this runner existed, concurrent stepping with
// mid-run graph mutation was unsupported.
func TestRunConcurrentMatchesRun(t *testing.T) {
	master := rng.New(0x636372)
	cases := 60
	if testing.Short() {
		cases = 20
	}
	churned := 0
	for c := 0; c < cases; c++ {
		r := master.Split(uint64(c))
		topo := diffTopology(r)
		f := r.IntRange(2, 16)
		tBudget := r.IntRange(0, f-1)
		mkAdv := diffAdversary(r, f, tBudget)
		var mkChurn func() ChurnModel
		if r.Bool() {
			churned++
			seed := r.Uint64()
			base := topo
			mkChurn = func() ChurnModel { return newTestChurn(base, seed) }
		}
		workers := []int{0, 1, 2, 3, 5}[r.IntRange(0, 4)]
		cfg := Config{
			F:         f,
			T:         tBudget,
			Seed:      r.Uint64(),
			Topology:  topo,
			Schedule:  diffSchedule(r, topo.N()),
			MaxRounds: uint64(r.IntRange(50, 250)),
			RunToMax:  r.Bool(),
			Medium:    []sim.MediumPath{sim.MediumIndexed, sim.MediumScan}[r.IntRange(0, 1)],
			Workers:   workers,
		}
		serRes, serHeard := concurrentDiffRun(t, cfg, mkAdv, mkChurn, false)
		conRes, conHeard := concurrentDiffRun(t, cfg, mkAdv, mkChurn, true)
		if d := diffResults(serRes, conRes, serHeard, conHeard); d != "" {
			t.Fatalf("case %d (%v F=%d t=%d workers=%d churn=%v): divergence: %s",
				c, topo, f, tBudget, workers, mkChurn != nil, d)
		}
		if serRes.ChurnRounds != conRes.ChurnRounds || serRes.ChurnEdges != conRes.ChurnEdges {
			t.Fatalf("case %d: churn counters diverge: (%d, %d) vs (%d, %d)",
				c, serRes.ChurnRounds, serRes.ChurnEdges, conRes.ChurnRounds, conRes.ChurnEdges)
		}
	}
	if churned == 0 {
		t.Fatal("randomization produced no churned cases; the serialized SetGraph path went unexercised")
	}
}

// TestRunConcurrentChurnLine is a deterministic spot check of the
// serialized-churn contract on a fixed config (no randomized inputs), so
// a regression here localizes immediately.
func TestRunConcurrentChurnLine(t *testing.T) {
	topo := Line(12)
	mkChurn := func() ChurnModel { return newTestChurn(topo, 99) }
	cfg := Config{
		F: 4, T: 1, Seed: 7,
		Topology:  topo,
		Schedule:  sim.Staggered{Count: 12, Gap: 2},
		MaxRounds: 120,
		RunToMax:  true,
		Workers:   3,
	}
	serRes, serHeard := concurrentDiffRun(t, cfg, nil, mkChurn, false)
	conRes, conHeard := concurrentDiffRun(t, cfg, nil, mkChurn, true)
	if d := diffResults(serRes, conRes, serHeard, conHeard); d != "" {
		t.Fatalf("divergence: %s", d)
	}
	if serRes.ChurnRounds == 0 {
		t.Fatal("fixed churn seed applied no deltas; the test lost its subject")
	}
}
