package multihop

import (
	"errors"
	"fmt"

	"wsync/internal/freqset"
	"wsync/internal/msg"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

// Config describes one multi-hop simulation. It reuses the single-hop
// model's agents, schedules, and adversaries; only medium resolution
// changes.
type Config struct {
	// F is the number of frequencies; T the adversary's per-round budget.
	F int
	T int
	// Seed drives all randomness.
	Seed uint64
	// Topology is the communication graph (its N is the node count).
	Topology *Topology
	// NewAgent constructs node i's protocol instance.
	NewAgent func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent
	// Schedule determines activation rounds; nil means all in round 1.
	Schedule sim.Schedule
	// Adversary jams frequencies network-wide; nil means none.
	Adversary sim.Adversary
	// MaxRounds bounds the run (0 = sim default).
	MaxRounds uint64
	// RunToMax disables the all-synced stop rule.
	RunToMax bool
	// StopWhen, if non-nil, ends the run when it returns true (checked
	// after every round, in addition to the default rule). Closures
	// typically inspect retained agent references.
	StopWhen func(round uint64) bool
}

// Result reports a multi-hop run.
type Result struct {
	Rounds       uint64
	AllSynced    bool
	SyncRound    []uint64 // global round of first non-⊥ output per node
	Leaders      int
	Deliveries   uint64
	Collisions   uint64 // per (receiver, round): >= 2 transmitting neighbors on its frequency
	HitMaxRounds bool
}

func (c *Config) validate() error {
	switch {
	case c.F < 1:
		return fmt.Errorf("multihop: F = %d", c.F)
	case c.T < 0 || c.T >= c.F:
		return fmt.Errorf("multihop: T = %d out of [0, F)", c.T)
	case c.Topology == nil || c.Topology.N() < 1:
		return errors.New("multihop: topology required")
	case c.NewAgent == nil:
		return errors.New("multihop: NewAgent required")
	}
	if c.Schedule != nil && c.Schedule.N() != c.Topology.N() {
		return fmt.Errorf("multihop: schedule covers %d nodes, topology has %d",
			c.Schedule.N(), c.Topology.N())
	}
	return nil
}

// Run executes the simulation. Semantics per round: every active node
// picks (frequency, transmit/listen); a listener u receives iff exactly
// one neighbor of u transmitted on u's frequency and the adversary did not
// jam it.
func Run(c *Config) (*Result, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	n := c.Topology.N()
	maxRounds := c.MaxRounds
	if maxRounds == 0 {
		maxRounds = sim.DefaultMaxRounds
	}

	master := rng.New(c.Seed)
	agents := make([]sim.Agent, n)
	activation := make([]uint64, n)
	active := make([]bool, n)
	actions := make([]sim.Action, n)
	pending := make([]msg.Message, n)
	hasPending := make([]bool, n)
	for i := 0; i < n; i++ {
		activation[i] = 1
		if c.Schedule != nil {
			activation[i] = c.Schedule.ActivationRound(i)
			if activation[i] < 1 {
				return nil, fmt.Errorf("multihop: node %d activation %d", i, activation[i])
			}
		}
	}

	res := &Result{SyncRound: make([]uint64, n)}
	hist := &sim.History{F: c.F, Activated: make([]uint64, n), Received: make([]bool, n)}
	empty := freqset.New(c.F)
	synced := 0

	for r := uint64(1); r <= maxRounds; r++ {
		for i := 0; i < n; i++ {
			if !active[i] && activation[i] == r {
				active[i] = true
				agents[i] = c.NewAgent(sim.NodeID(i), r, master.Split(uint64(i)))
				hist.Activated[i] = r
			}
		}
		disrupted := empty
		if c.Adversary != nil {
			if s := c.Adversary.Disrupt(r, hist); s != nil {
				if s.Len() > c.T {
					panic(fmt.Sprintf("multihop: adversary jammed %d > %d", s.Len(), c.T))
				}
				disrupted = s
			}
		}
		for i := 0; i < n; i++ {
			if active[i] {
				actions[i] = agents[i].Step(r - activation[i] + 1)
				if actions[i].Freq < 1 || actions[i].Freq > c.F {
					panic(fmt.Sprintf("multihop: node %d chose frequency %d", i, actions[i].Freq))
				}
			}
		}

		// Per-receiver resolution over neighborhoods.
		for i := 0; i < n; i++ {
			hasPending[i] = false
			if !active[i] || actions[i].Transmit {
				continue
			}
			f := actions[i].Freq
			txNeighbor := -1
			txCount := 0
			for _, w := range c.Topology.Neighbors(i) {
				if active[w] && actions[w].Transmit && actions[w].Freq == f {
					txCount++
					txNeighbor = w
				}
			}
			switch {
			case txCount == 0:
			case txCount >= 2:
				res.Collisions++
			case disrupted.Contains(f):
				// jammed: nothing heard
			default:
				pending[i] = actions[txNeighbor].Msg
				hasPending[i] = true
				hist.Received[i] = true
				res.Deliveries++
			}
		}
		for i := 0; i < n; i++ {
			if hasPending[i] {
				agents[i].Deliver(pending[i])
			}
		}
		allUp := true
		for i := 0; i < n; i++ {
			if !active[i] {
				allUp = false
				continue
			}
			if res.SyncRound[i] == 0 {
				if out := agents[i].Output(); out.Synced {
					res.SyncRound[i] = r
					synced++
				}
			}
		}
		hist.Completed = r
		res.Rounds = r
		if c.StopWhen != nil && c.StopWhen(r) {
			break
		}
		if !c.RunToMax && allUp && synced == n {
			break
		}
	}
	res.AllSynced = synced == n
	res.HitMaxRounds = res.Rounds == maxRounds && !res.AllSynced
	for i := 0; i < n; i++ {
		if agents[i] != nil {
			if lr, ok := agents[i].(sim.LeaderReporter); ok && lr.IsLeader() {
				res.Leaders++
			}
		}
	}
	return res, nil
}
