package multihop

import (
	"errors"
	"fmt"
	"sync/atomic"

	"wsync/internal/freqset"
	"wsync/internal/medium"
	"wsync/internal/msg"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

// totalNodeRounds accumulates active node-rounds over every completed
// multi-hop run in this process; wexp samples TotalNodeRounds around each
// experiment to derive the node-rounds/s figure in the benchmark report.
var totalNodeRounds atomic.Uint64

// TotalNodeRounds returns the process-wide count of active node-rounds
// executed by completed multi-hop runs. Deterministic for a deterministic
// workload — it never depends on scheduling or parallelism.
func TotalNodeRounds() uint64 { return totalNodeRounds.Load() }

// Edge is an undirected edge between two node indices. Churn models emit
// deltas as normalized (A < B) edges; the engine's delta applier accepts
// either orientation.
type Edge struct {
	A, B int
}

// ChurnModel drives per-round topology evolution — the dynamic-topology
// hook the churn workloads (internal/churn) plug into. Round 1 runs on
// Config.Topology unchanged; for every later round r the engine asks the
// model for the edge deltas that transform the round r−1 graph into the
// round r graph, applies them to its private topology clone, and swaps
// the result into the medium resolver via SetGraph.
//
// The contract is strict so model bugs surface instead of skewing
// results: every added edge must be absent and every removed edge present
// at the time it is applied, or the engine panics. The returned slices
// are only read before the next Deltas call, so models may reuse them.
type ChurnModel interface {
	Deltas(r uint64) (add, remove []Edge)
}

// Config describes one multi-hop simulation. It reuses the single-hop
// model's agents, schedules, and adversaries; only medium resolution
// changes.
type Config struct {
	// F is the number of frequencies; T the adversary's per-round budget.
	F int
	T int
	// Seed drives all randomness.
	Seed uint64
	// Topology is the communication graph (its N is the node count).
	Topology *Topology
	// NewAgent constructs node i's protocol instance.
	NewAgent func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent
	// Schedule determines activation rounds; nil means all in round 1.
	Schedule sim.Schedule
	// Adversary jams frequencies network-wide; nil means none.
	Adversary sim.Adversary
	// MaxRounds bounds the run (0 = sim default).
	MaxRounds uint64
	// RunToMax disables the all-synced stop rule.
	RunToMax bool
	// StopWhen, if non-nil, ends the run when it returns true (checked
	// after every round, in addition to the default rule). Closures
	// typically inspect retained agent references.
	StopWhen func(round uint64) bool
	// Observers are notified after each round with the same
	// sim.RoundRecord the single-hop engine produces (Clear stays empty:
	// "clear broadcast" is a single-hop, shared-medium notion), so
	// observers like trace.Recorder work on churned multi-hop runs
	// unchanged. Record storage is reused between rounds — the
	// sim.Observer contract. With no observers the engine skips all
	// record building, preserving the zero-allocation round loop.
	Observers []sim.Observer
	// Medium selects the medium-resolution path, mirroring sim.Config.
	// The zero value (sim.MediumIndexed) is the frequency-indexed fast
	// path: per-round work is O(active), with each listener's reception
	// resolved by intersecting its frequency's transmitter bucket with
	// its neighborhood. sim.MediumScan forces the legacy per-receiver
	// full neighbor scan, retained as the differential-testing oracle
	// (TestMultihopMediumDifferential asserts the two paths produce
	// bit-identical Results).
	Medium sim.MediumPath
	// NoBatch disables cohort batch-stepping (sim.BatchAgent), forcing
	// every agent through the per-node Step fallback; results are
	// bit-identical either way. Mirrors sim.Config.NoBatch.
	NoBatch bool
	// Churn, if non-nil, evolves the topology between rounds. The engine
	// clones Config.Topology (the caller's graph is never mutated) and
	// applies the model's per-round deltas to the clone in place —
	// O(delta) per round and allocation-free at steady state — before
	// swapping it into the resolver with SetGraph.
	Churn ChurnModel
	// ChurnRebuild forces the delta-application oracle: instead of
	// patching sorted adjacency in place, each churned round rebuilds a
	// fresh Topology from the accumulated edge set and swaps it in whole.
	// O(E) per round and allocating — kept only for differential testing
	// (TestChurnDeltaMatchesRebuild pins the two paths byte-identical).
	ChurnRebuild bool
	// Workers sets the goroutine count for RunConcurrent (0 = one per
	// node); Run ignores it. Churned configs are safe under RunConcurrent:
	// delta application and the SetGraph swap happen on the coordinating
	// goroutine behind the round barrier, never concurrently with agent
	// stepping.
	Workers int
}

// Result reports a multi-hop run.
type Result struct {
	Rounds uint64
	// NodeRounds counts active node-rounds (Σ over rounds of awake
	// nodes) — the throughput denominator of BenchmarkMultihopThroughput.
	NodeRounds   uint64
	AllSynced    bool
	SyncRound    []uint64 // global round of first non-⊥ output per node
	Leaders      int
	Deliveries   uint64
	Collisions   uint64 // per (receiver, round): >= 2 transmitting neighbors on its frequency
	HitMaxRounds bool
	// ChurnRounds counts the rounds whose topology differed from the
	// previous round's; ChurnEdges totals the edge inserts and removes
	// applied. Both are zero without Config.Churn and identical across
	// the delta and rebuild paths (part of the differential contract).
	ChurnRounds uint64
	ChurnEdges  uint64
}

func (c *Config) validate() error {
	switch {
	case c.F < 1:
		return fmt.Errorf("multihop: F = %d", c.F)
	case c.T < 0 || c.T >= c.F:
		return fmt.Errorf("multihop: T = %d out of [0, F)", c.T)
	case c.Topology == nil || c.Topology.N() < 1:
		return errors.New("multihop: topology required")
	case c.NewAgent == nil:
		return errors.New("multihop: NewAgent required")
	}
	if c.Schedule != nil && c.Schedule.N() != c.Topology.N() {
		return fmt.Errorf("multihop: schedule covers %d nodes, topology has %d",
			c.Schedule.N(), c.Topology.N())
	}
	return nil
}

// engine is the multi-hop run state. It shares the activation and
// frequency-indexing machinery with the single-hop engine through
// internal/medium; only reception resolution differs (per-neighborhood
// instead of global).
type engine struct {
	cfg  *Config
	n    int
	topo *Topology

	agents     []sim.Agent
	activation []uint64
	agentRNG   []rng.Rand // one contiguous slab, pre-split at build
	active     []bool

	// batch groups awake nodes into same-constructor cohorts
	// (sim.BatchAgent) so the round loop can advance each with one
	// devirtualized StepBatch call, falling back to per-node Step.
	batch *sim.BatchCohorts

	// Per-node action state in struct-of-arrays layout, mirroring the
	// single-hop engine: reception resolution touches only the packed
	// frequency and transmit-flag arrays, and message payloads are copied
	// only for transmitters (stale actMsg entries are never read — relay
	// delivery consults them only for this round's transmitters).
	actFreq []int32
	actTx   []bool
	actMsg  []msg.Message

	act *medium.Activation
	med *medium.Resolver

	// pending delivery per node for the current round; pendingList names
	// the nodes with hasPending set, in ascending order.
	pending     []msg.Message
	hasPending  []bool
	pendingList []int

	hist           *sim.History
	res            *Result
	empty          *freqset.Set
	synced         int
	activatedCount int

	// rec is the reusable observer record; observe gates every record
	// write so unobserved runs (all benchmarks, the zero-alloc pins) pay
	// only dead branch checks.
	rec     sim.RoundRecord
	observe bool

	// churnEdges is the rebuild oracle's edge set (normalized lo<<32|hi
	// keys), maintained only under Config.ChurnRebuild.
	churnEdges map[uint64]struct{}
}

func newEngine(c *Config) (*engine, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	n := c.Topology.N()
	e := &engine{
		cfg:        c,
		n:          n,
		topo:       c.Topology,
		agents:     make([]sim.Agent, n),
		activation: make([]uint64, n),
		agentRNG:   make([]rng.Rand, n),
		active:     make([]bool, n),
		batch:      sim.NewBatchCohorts(n, c.NoBatch),
		actFreq:    make([]int32, n),
		actTx:      make([]bool, n),
		actMsg:     make([]msg.Message, n),
		pending:    make([]msg.Message, n),
		hasPending: make([]bool, n),
		hist:       &sim.History{F: c.F, Activated: make([]uint64, n), Received: make([]bool, n)},
		res:        &Result{SyncRound: make([]uint64, n)},
		empty:      freqset.New(c.F),
	}
	if len(c.Observers) > 0 {
		e.observe = true
		e.rec = sim.RoundRecord{
			Actions:    make([]sim.ActionRecord, 0, n),
			Deliveries: make([]sim.Delivery, 0, n),
			Outputs:    make([]sim.Output, n),
		}
	}
	if c.Churn != nil {
		// Delta mutations must never reach the caller's topology, which
		// experiments share across trials.
		e.topo = c.Topology.Clone()
		if c.ChurnRebuild {
			e.churnEdges = make(map[uint64]struct{}, e.topo.EdgeCount())
			for _, ed := range e.topo.AppendEdges(nil) {
				e.churnEdges[edgeKey(ed.A, ed.B)] = struct{}{}
			}
		}
	}
	master := rng.New(c.Seed)
	for i := 0; i < n; i++ {
		e.activation[i] = 1
		if c.Schedule != nil {
			e.activation[i] = c.Schedule.ActivationRound(i)
			if e.activation[i] < 1 {
				return nil, fmt.Errorf("multihop: node %d activation %d", i, e.activation[i])
			}
		}
		master.SplitInto(uint64(i), &e.agentRNG[i])
	}
	e.act = medium.NewActivation(e.activation)
	e.med = medium.NewResolver(c.F, n, e.topo)
	return e, nil
}

// edgeKey normalizes an undirected edge into a comparable map key.
func edgeKey(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// churnRound advances the topology to round r: it pulls the model's edge
// deltas and applies them, either in place (the delta fast path) or via
// the rebuild oracle, then swaps the result into the resolver. Round 1 is
// the configured topology; churn starts at round 2.
func (e *engine) churnRound(r uint64) {
	if r < 2 {
		return
	}
	add, remove := e.cfg.Churn.Deltas(r)
	if len(add) == 0 && len(remove) == 0 {
		return
	}
	if e.cfg.ChurnRebuild {
		e.rebuildTopology(r, add, remove)
		return
	}
	for _, ed := range remove {
		if !e.topo.DeleteEdge(ed.A, ed.B) {
			panic(fmt.Sprintf("multihop: churn removed absent edge (%d, %d) in round %d", ed.A, ed.B, r))
		}
	}
	for _, ed := range add {
		if !e.topo.InsertEdge(ed.A, ed.B) {
			panic(fmt.Sprintf("multihop: churn added present edge (%d, %d) in round %d", ed.A, ed.B, r))
		}
	}
	e.med.SetGraph(e.topo)
	e.res.ChurnEdges += uint64(len(add) + len(remove))
	e.res.ChurnRounds++
}

// rebuildTopology is the oracle path: the deltas update a plain edge set,
// and a fresh Topology is constructed from scratch and swapped in whole.
func (e *engine) rebuildTopology(r uint64, add, remove []Edge) {
	for _, ed := range remove {
		key := edgeKey(ed.A, ed.B)
		if _, ok := e.churnEdges[key]; !ok {
			panic(fmt.Sprintf("multihop: churn removed absent edge (%d, %d) in round %d", ed.A, ed.B, r))
		}
		delete(e.churnEdges, key)
	}
	for _, ed := range add {
		key := edgeKey(ed.A, ed.B)
		if _, ok := e.churnEdges[key]; ok {
			panic(fmt.Sprintf("multihop: churn added present edge (%d, %d) in round %d", ed.A, ed.B, r))
		}
		e.churnEdges[key] = struct{}{}
	}
	fresh := newTopology(e.n)
	for key := range e.churnEdges {
		fresh.addEdge(int(key>>32), int(key&(1<<32-1)))
	}
	e.topo = fresh.finish()
	e.med.SetGraph(e.topo)
	e.res.ChurnEdges += uint64(len(add) + len(remove))
	e.res.ChurnRounds++
}

// disruptedSet obtains and validates the adversary's choice for round r.
func (e *engine) disruptedSet(r uint64) *freqset.Set {
	if e.cfg.Adversary == nil {
		return e.empty
	}
	s := e.cfg.Adversary.Disrupt(r, e.hist)
	if s == nil {
		return e.empty
	}
	if s.Len() > e.cfg.T {
		panic(fmt.Sprintf("multihop: adversary jammed %d > %d", s.Len(), e.cfg.T))
	}
	return s
}

// queueDelivery records listener i's clean reception of node from's
// transmission.
func (e *engine) queueDelivery(i, from int) {
	e.pending[i] = e.actMsg[from]
	e.hasPending[i] = true
	e.pendingList = append(e.pendingList, i)
	e.hist.Received[i] = true
	e.res.Deliveries++
	if e.observe {
		e.rec.Deliveries = append(e.rec.Deliveries,
			sim.Delivery{From: sim.NodeID(from), To: sim.NodeID(i), Freq: int(e.actFreq[i])})
	}
}

// beginObserve resets the reusable record for round r. No-op without
// observers.
func (e *engine) beginObserve(r uint64) {
	if !e.observe {
		return
	}
	e.rec.Round = r
	e.rec.Actions = e.rec.Actions[:0]
	e.rec.Deliveries = e.rec.Deliveries[:0]
}

// endObserve completes the round's record — actions of the awake nodes,
// every node's post-round output (⊥ for inactive ones) — and notifies
// the observers. Output() is a pure getter on every agent in this
// repository, so reading it for already-synced nodes does not perturb
// the run. No-op without observers.
func (e *engine) endObserve(disrupted *freqset.Set) {
	if !e.observe {
		return
	}
	e.rec.Disrupted = disrupted
	for _, i := range e.act.Active() {
		e.rec.Actions = append(e.rec.Actions,
			sim.ActionRecord{Node: sim.NodeID(i), Freq: int(e.actFreq[i]), Transmit: e.actTx[i]})
	}
	for i := 0; i < e.n; i++ {
		if e.active[i] {
			e.rec.Outputs[i] = e.agents[i].Output()
		} else {
			e.rec.Outputs[i] = sim.Output{}
		}
	}
	for _, ob := range e.cfg.Observers {
		ob.ObserveRound(&e.rec)
	}
}

// resolveScan is the legacy per-receiver resolver: every listener walks
// its full neighbor list counting same-frequency transmitters. It is kept
// verbatim as the differential-testing oracle for the indexed path.
func (e *engine) resolveScan(disrupted *freqset.Set) {
	for i := 0; i < e.n; i++ {
		if !e.active[i] || e.actTx[i] {
			continue
		}
		f := int(e.actFreq[i])
		txNeighbor := -1
		txCount := 0
		for _, w := range e.topo.Neighbors(i) {
			if e.active[w] && e.actTx[w] && int(e.actFreq[w]) == f {
				txCount++
				txNeighbor = w
			}
		}
		switch {
		case txCount == 0:
		case txCount >= 2:
			e.res.Collisions++
		case disrupted.Contains(f):
			// jammed: nothing heard
		default:
			e.queueDelivery(i, txNeighbor)
		}
	}
}

// resolveIndexed is the frequency-indexed fast path: one pass over the
// awake nodes builds per-frequency transmitter buckets, then each
// listener's reception is resolved by intersecting its frequency's bucket
// with its neighborhood (bucket-walk or neighbor-walk, whichever side is
// smaller). Listeners whose frequency nobody transmitted on cost O(1).
func (e *engine) resolveIndexed(disrupted *freqset.Set) {
	med := e.med
	for _, i := range e.act.Active() {
		if e.actTx[i] {
			med.Transmit(i, int(e.actFreq[i]))
		} else {
			med.Listen(i)
		}
	}
	for _, i := range med.Listeners() {
		f := int(e.actFreq[i])
		from, count := med.Receive(i, f)
		switch {
		case count == 0:
		case count >= 2:
			e.res.Collisions++
		case disrupted.Contains(f):
			// jammed: nothing heard
		default:
			e.queueDelivery(i, from)
		}
	}
	med.Reset()
}

// runRound executes one round end to end — activation, the adversary,
// agent steps, reception resolution, deliveries, and sync bookkeeping —
// and reports whether the run should stop. After warm-up a round performs
// zero heap allocations; TestSteadyStateAllocs pins this.
func (e *engine) runRound(r uint64) (stop bool) {
	c := e.cfg
	res := e.res
	e.beginObserve(r)
	if c.Churn != nil {
		e.churnRound(r)
	}
	for _, i := range e.act.Wake(r) {
		e.active[i] = true
		a := c.NewAgent(sim.NodeID(i), r, &e.agentRNG[i])
		e.agents[i] = a
		e.batch.Add(i, a)
		e.hist.Activated[i] = r
		e.activatedCount++
	}
	disrupted := e.disruptedSet(r)
	e.batch.StepBatches(r, e.activation, e.actFreq, e.actTx, e.actMsg)
	for _, i := range e.batch.Solo() {
		a := e.agents[i].Step(r - e.activation[i] + 1)
		e.actFreq[i] = int32(a.Freq)
		e.actTx[i] = a.Transmit
		if a.Transmit {
			e.actMsg[i] = a.Msg
		}
	}
	// One validation sweep over the awake nodes, covering batched and solo
	// steps alike — equivalent to the per-step check it replaces.
	for _, i := range e.act.Active() {
		if f := int(e.actFreq[i]); f < 1 || f > c.F {
			panic(fmt.Sprintf("multihop: node %d chose frequency %d", i, f))
		}
	}
	res.NodeRounds += uint64(len(e.act.Active()))

	// Only nodes on pendingList can have hasPending set, so clearing
	// them is equivalent to the legacy full sweep over all N.
	for _, i := range e.pendingList {
		e.hasPending[i] = false
	}
	e.pendingList = e.pendingList[:0]

	if c.Medium == sim.MediumScan {
		e.resolveScan(disrupted)
	} else {
		e.resolveIndexed(disrupted)
	}

	for _, i := range e.pendingList {
		e.agents[i].Deliver(e.pending[i])
	}
	for _, i := range e.act.Active() {
		if res.SyncRound[i] == 0 {
			if out := e.agents[i].Output(); out.Synced {
				res.SyncRound[i] = r
				e.synced++
			}
		}
	}
	e.hist.Completed = r
	res.Rounds = r
	e.endObserve(disrupted)
	if c.StopWhen != nil && c.StopWhen(r) {
		return true
	}
	return !c.RunToMax && e.activatedCount == e.n && e.synced == e.n
}

// Run executes the simulation. Semantics per round: every active node
// picks (frequency, transmit/listen); a listener u receives iff exactly
// one neighbor of u transmitted on u's frequency and the adversary did not
// jam it.
func Run(c *Config) (*Result, error) {
	e, err := newEngine(c)
	if err != nil {
		return nil, err
	}
	maxRounds := c.MaxRounds
	if maxRounds == 0 {
		maxRounds = sim.DefaultMaxRounds
	}
	res := e.res

	for r := uint64(1); r <= maxRounds; r++ {
		if e.runRound(r) {
			break
		}
	}
	res.AllSynced = e.synced == e.n
	res.HitMaxRounds = res.Rounds == maxRounds && !res.AllSynced
	for i := 0; i < e.n; i++ {
		if e.agents[i] != nil {
			if lr, ok := e.agents[i].(sim.LeaderReporter); ok && lr.IsLeader() {
				res.Leaders++
			}
		}
	}
	totalNodeRounds.Add(res.NodeRounds)
	return res, nil
}
