package multihop

import (
	"testing"

	"wsync/internal/adversary"
	"wsync/internal/msg"
	"wsync/internal/rng"
	"wsync/internal/sim"
	"wsync/internal/trapdoor"
)

func TestLineTopology(t *testing.T) {
	l := Line(5)
	if l.N() != 5 || !l.Connected() {
		t.Fatal("bad line")
	}
	if l.Degree(0) != 1 || l.Degree(2) != 2 || l.Degree(4) != 1 {
		t.Fatal("bad line degrees")
	}
	if got := l.Diameter(); got != 4 {
		t.Fatalf("line diameter = %d, want 4", got)
	}
	if Line(1).Diameter() != 0 {
		t.Fatal("singleton diameter != 0")
	}
}

func TestGridTopology(t *testing.T) {
	g := Grid(3, 3)
	if g.N() != 9 || !g.Connected() {
		t.Fatal("bad grid")
	}
	if g.Degree(4) != 4 { // center
		t.Fatalf("center degree = %d", g.Degree(4))
	}
	if g.Degree(0) != 2 { // corner
		t.Fatalf("corner degree = %d", g.Degree(0))
	}
	if got := g.Diameter(); got != 4 {
		t.Fatalf("3x3 grid diameter = %d, want 4", got)
	}
}

func TestCliqueTopology(t *testing.T) {
	c := Clique(6)
	for i := 0; i < 6; i++ {
		if c.Degree(i) != 5 {
			t.Fatalf("degree(%d) = %d", i, c.Degree(i))
		}
	}
	if c.Diameter() != 1 {
		t.Fatal("clique diameter != 1")
	}
}

func TestRandomGeometric(t *testing.T) {
	a := RandomGeometric(30, 0.4, 7)
	b := RandomGeometric(30, 0.4, 7)
	for i := 0; i < 30; i++ {
		na, nb := a.Neighbors(i), b.Neighbors(i)
		if len(na) != len(nb) {
			t.Fatal("not deterministic")
		}
	}
	// A tiny radius yields fewer edges than a large one.
	sparse := RandomGeometric(30, 0.05, 7)
	se, de := 0, 0
	for i := 0; i < 30; i++ {
		se += sparse.Degree(i)
		de += a.Degree(i)
	}
	if se >= de {
		t.Fatalf("sparse degrees %d >= dense %d", se, de)
	}
}

func TestRandomGeometricConnected(t *testing.T) {
	// Deterministic in seed, and always connected even when plain
	// RandomGeometric frequently is not at this radius.
	a := RandomGeometricConnected(40, 0.25, 3)
	if !a.Connected() {
		t.Fatal("not connected")
	}
	b := RandomGeometricConnected(40, 0.25, 3)
	for i := 0; i < 40; i++ {
		na, nb := a.Neighbors(i), b.Neighbors(i)
		if len(na) != len(nb) {
			t.Fatal("not deterministic")
		}
		for j := range na {
			if na[j] != nb[j] {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestRandomGeometricConnectedPanicsBelowThreshold(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RandomGeometricConnected(64, 0.001, 1)
}

// TestNeighborsSortedDeduped pins the topology invariant the indexed
// medium resolver binary-searches on: every adjacency list is strictly
// ascending (sorted, no duplicates, no self-loops).
func TestNeighborsSortedDeduped(t *testing.T) {
	topos := map[string]*Topology{
		"line": Line(17),
		"grid": Grid(5, 4),
		"cliq": Clique(9),
		"rgg":  RandomGeometric(50, 0.3, 5),
		"conn": RandomGeometricConnected(30, 0.4, 6),
	}
	for name, topo := range topos {
		for i := 0; i < topo.N(); i++ {
			nbrs := topo.Neighbors(i)
			for j := range nbrs {
				if nbrs[j] == i {
					t.Fatalf("%s: self-loop at %d", name, i)
				}
				if j > 0 && nbrs[j-1] >= nbrs[j] {
					t.Fatalf("%s: Neighbors(%d) = %v not strictly ascending", name, i, nbrs)
				}
			}
		}
	}
}

func TestDiameterPanicsDisconnected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RandomGeometric(40, 0.01, 1).Diameter()
}

// planAgent replays fixed actions (index by local round, repeating last).
type planAgent struct {
	plan []sim.Action
	got  []msg.Message
}

func (a *planAgent) Step(local uint64) sim.Action {
	idx := int(local) - 1
	if idx >= len(a.plan) {
		idx = len(a.plan) - 1
	}
	return a.plan[idx]
}
func (a *planAgent) Deliver(m msg.Message) { a.got = append(a.got, m.Clone()) }
func (a *planAgent) Output() sim.Output    { return sim.Output{} }

func tx(f int, uid uint64) sim.Action {
	return sim.Action{Freq: f, Transmit: true, Msg: msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{UID: uid}}}
}
func listen(f int) sim.Action { return sim.Action{Freq: f} }

func runPlans(t *testing.T, topo *Topology, plans [][]sim.Action, adv sim.Adversary, tBudget int) (*Result, []*planAgent) {
	t.Helper()
	agents := make([]*planAgent, len(plans))
	res, err := Run(&Config{
		F:        4,
		T:        tBudget,
		Seed:     1,
		Topology: topo,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			a := &planAgent{plan: plans[id]}
			agents[id] = a
			return a
		},
		Adversary: adv,
		MaxRounds: 1,
		RunToMax:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, agents
}

func TestHiddenTerminalCollision(t *testing.T) {
	// 0—1—2: the ends transmit on the same frequency; the middle hears a
	// collision even though the ends cannot hear each other.
	res, agents := runPlans(t, Line(3), [][]sim.Action{
		{tx(2, 10)},
		{listen(2)},
		{tx(2, 20)},
	}, nil, 0)
	if len(agents[1].got) != 0 {
		t.Fatal("middle node received through a hidden-terminal collision")
	}
	if res.Collisions != 1 {
		t.Fatalf("collisions = %d, want 1", res.Collisions)
	}
}

func TestNonNeighborIsolation(t *testing.T) {
	// 0—1—2—3: node 0 transmits; node 3 (two hops away) hears nothing,
	// node 1 (adjacent) hears it.
	_, agents := runPlans(t, Line(4), [][]sim.Action{
		{tx(2, 10)},
		{listen(2)},
		{listen(2)},
		{listen(2)},
	}, nil, 0)
	if len(agents[1].got) != 1 {
		t.Fatal("adjacent node missed the transmission")
	}
	if len(agents[2].got) != 0 || len(agents[3].got) != 0 {
		t.Fatal("distant node received across hops")
	}
}

func TestSpatialReuse(t *testing.T) {
	// 0—1—2—3—4: transmitters 0 and 4 are far apart; listeners 1 and 3
	// each hear their own neighbor on the same frequency simultaneously.
	_, agents := runPlans(t, Line(5), [][]sim.Action{
		{tx(2, 10)},
		{listen(2)},
		{listen(2)},
		{listen(2)},
		{tx(2, 40)},
	}, nil, 0)
	if len(agents[1].got) != 1 || agents[1].got[0].TS.UID != 10 {
		t.Fatal("listener 1 missed its neighbor")
	}
	if len(agents[3].got) != 1 || agents[3].got[0].TS.UID != 40 {
		t.Fatal("listener 3 missed its neighbor")
	}
	// The middle node neighbors neither transmitter... it neighbors 1 and
	// 3, which listen; it hears nothing.
	if len(agents[2].got) != 0 {
		t.Fatal("middle node heard a non-neighbor")
	}
}

func TestJammingAppliesNetworkWide(t *testing.T) {
	_, agents := runPlans(t, Line(3), [][]sim.Action{
		{tx(2, 10)},
		{listen(2)},
		{listen(2)},
	}, adversary.NewFixed(4, []int{2}), 1)
	if len(agents[1].got) != 0 {
		t.Fatal("delivery on jammed frequency")
	}
}

// TestCliqueMatchesSingleHop: on the complete graph the multi-hop engine
// must reproduce the single-hop engine's execution exactly (same seeds,
// same agents, same deliveries, same synchronization rounds).
func TestCliqueMatchesSingleHop(t *testing.T) {
	p := trapdoor.Params{N: 16, F: 6, T: 2}
	const n = 4
	single, err := sim.Run(&sim.Config{
		F: p.F, T: p.T, Seed: 5,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return trapdoor.MustNew(p, r)
		},
		Schedule:  sim.Simultaneous{Count: n},
		Adversary: adversary.NewPrefix(p.F, p.T),
		MaxRounds: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(&Config{
		F: p.F, T: p.T, Seed: 5,
		Topology: Clique(n),
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return trapdoor.MustNew(p, r)
		},
		Adversary: adversary.NewPrefix(p.F, p.T),
		MaxRounds: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !multi.AllSynced {
		t.Fatal("clique run did not sync")
	}
	for i := 0; i < n; i++ {
		if single.SyncRound[i] != multi.SyncRound[i] {
			t.Fatalf("node %d synced at %d (single-hop) vs %d (clique)",
				i, single.SyncRound[i], multi.SyncRound[i])
		}
	}
	if single.Stats.Deliveries != multi.Deliveries {
		t.Fatalf("deliveries %d vs %d", single.Stats.Deliveries, multi.Deliveries)
	}
}

func TestRelayMergeRule(t *testing.T) {
	p := trapdoor.Params{N: 4, F: 4, T: 1}
	n := MustNewRelay(p, rng.New(3))
	n.Step(1)
	// Adopt a numbering: now relaying.
	n.Deliver(msg.Message{Kind: msg.KindLeader, TS: msg.Timestamp{Age: 99, UID: 7}, Round: 500, Scheme: 7})
	n.Step(2)
	if !n.Output().Synced || n.Scheme() != 7 {
		t.Fatalf("not relaying scheme 7: %v %d", n.Output(), n.Scheme())
	}
	// Smaller scheme: ignored.
	n.Deliver(msg.Message{Kind: msg.KindLeader, TS: msg.Timestamp{Age: 1, UID: 3}, Round: 900, Scheme: 3})
	if n.Scheme() != 7 || n.Output().Value != 501 {
		t.Fatalf("merged downward: scheme=%d value=%d", n.Scheme(), n.Output().Value)
	}
	// Larger scheme: adopted.
	n.Deliver(msg.Message{Kind: msg.KindLeader, TS: msg.Timestamp{Age: 1, UID: 9}, Round: 900, Scheme: 9})
	if n.Scheme() != 9 || n.Output().Value != 900 {
		t.Fatalf("did not merge upward: scheme=%d value=%d", n.Scheme(), n.Output().Value)
	}
	// Relays announce (statistically).
	transmitted := false
	for r := uint64(3); r < 60; r++ {
		if act := n.Step(r); act.Transmit {
			transmitted = true
			if act.Msg.Scheme != 9 {
				t.Fatalf("announced scheme %d, want 9", act.Msg.Scheme)
			}
		}
	}
	if !transmitted {
		t.Fatal("relay never announced")
	}
}

// TestRelaySynchronizesLine is the multi-hop headline: a line network
// converges to one scheme with consistent round numbers, in time that
// grows with the diameter.
func TestRelaySynchronizesLine(t *testing.T) {
	p := trapdoor.Params{N: 8, F: 6, T: 2}
	for _, length := range []int{3, 6} {
		nodes := make([]*RelayNode, length)
		res, err := Run(&Config{
			F: p.F, T: p.T, Seed: uint64(10 + length),
			Topology: Line(length),
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				n := MustNewRelay(p, r)
				nodes[id] = n
				return n
			},
			Adversary: adversary.NewRandom(p.F, p.T, uint64(length)),
			MaxRounds: 2_000_000,
			RunToMax:  false,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllSynced {
			t.Fatalf("line %d: not synced in %d rounds", length, res.Rounds)
		}
		// Let the merge finish: run is stopped at all-synced, but schemes
		// may still differ; drive a convergence check by verifying that
		// after additional rounds all schemes agree. Instead, re-run to a
		// fixed horizon and check final agreement.
		nodes2 := make([]*RelayNode, length)
		_, err = Run(&Config{
			F: p.F, T: p.T, Seed: uint64(10 + length),
			Topology: Line(length),
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				n := MustNewRelay(p, r)
				nodes2[id] = n
				return n
			},
			Adversary: adversary.NewRandom(p.F, p.T, uint64(length)),
			MaxRounds: res.Rounds + 20000,
			RunToMax:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		scheme := nodes2[0].Scheme()
		value := nodes2[0].Output().Value
		for i, n := range nodes2 {
			if n.Scheme() != scheme {
				t.Fatalf("line %d: node %d scheme %d != %d", length, i, n.Scheme(), scheme)
			}
			if n.Output().Value != value {
				t.Fatalf("line %d: node %d value %d != %d", length, i, n.Output().Value, value)
			}
		}
	}
}

func TestEngineValidation(t *testing.T) {
	ok := func() *Config {
		return &Config{
			F: 4, Topology: Line(2),
			NewAgent: func(sim.NodeID, uint64, *rng.Rand) sim.Agent { return &planAgent{plan: []sim.Action{listen(1)}} },
		}
	}
	cases := []func(*Config){
		func(c *Config) { c.F = 0 },
		func(c *Config) { c.T = 4 },
		func(c *Config) { c.Topology = nil },
		func(c *Config) { c.NewAgent = nil },
		func(c *Config) { c.Schedule = sim.Simultaneous{Count: 5} },
	}
	for i, mutate := range cases {
		cfg := ok()
		mutate(cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestRelayOnGeometricGraph runs the relay protocol on a connected random
// geometric graph — the realistic ad hoc deployment shape.
func TestRelayOnGeometricGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	topo := RandomGeometricConnected(12, 0.55, 0)
	p := trapdoor.Params{N: 16, F: 6, T: 2}
	nodes := make([]*RelayNode, topo.N())
	res, err := Run(&Config{
		F: p.F, T: p.T, Seed: 9,
		Topology: topo,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			n := MustNewRelay(p, r)
			nodes[id] = n
			return n
		},
		Adversary: adversary.NewRandom(p.F, p.T, 99),
		MaxRounds: 2_000_000,
		RunToMax:  true,
		StopWhen: func(uint64) bool {
			var scheme uint64
			for i, n := range nodes {
				if n == nil || !n.Output().Synced {
					return false
				}
				if i == 0 {
					scheme = n.Scheme()
				} else if n.Scheme() != scheme {
					return false
				}
			}
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HitMaxRounds {
		t.Fatalf("geometric graph never agreed (rounds=%d)", res.Rounds)
	}
}

// Property: random geometric graphs have symmetric adjacency and respect
// the radius.
func TestQuickGeometricAdjacency(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		topo := RandomGeometric(15, 0.3, seed)
		for i := 0; i < topo.N(); i++ {
			for _, j := range topo.Neighbors(i) {
				found := false
				for _, k := range topo.Neighbors(j) {
					if k == i {
						found = true
					}
				}
				if !found {
					t.Fatalf("seed %d: edge (%d,%d) not symmetric", seed, i, j)
				}
				if i == j {
					t.Fatalf("seed %d: self-loop at %d", seed, i)
				}
			}
		}
	}
}
