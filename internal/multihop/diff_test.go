package multihop

import (
	"fmt"
	"testing"

	"wsync/internal/adversary"
	"wsync/internal/msg"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

// diff_test.go differentially tests the two multi-hop medium resolvers:
// the legacy per-receiver neighbor scan (sim.MediumScan) is the oracle,
// the frequency-indexed bucket intersection (sim.MediumIndexed, the
// default) the implementation under test. Every Result field and every
// delivered message must be bit-identical over randomized topologies,
// schedules, and adversaries.

// diffAgent takes random actions, synchronizes after a drawn number of
// receptions, and logs everything it hears. Its behavior is a pure
// function of its private rng stream and the messages delivered to it, so
// identical deliveries imply identical executions.
type diffAgent struct {
	r      *rng.Rand
	f      int
	needed int
	leader bool
	heard  []uint64
}

func newDiffAgent(r *rng.Rand, f int) *diffAgent {
	return &diffAgent{r: r, f: f, needed: 1 + r.Intn(4), leader: r.Bool()}
}

func (a *diffAgent) Step(local uint64) sim.Action {
	freq := 1 + a.r.Intn(a.f)
	if a.r.Bool() {
		return sim.Action{Freq: freq, Transmit: true,
			Msg: msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{Age: local, UID: a.r.Uint64() % 1024}}}
	}
	return sim.Action{Freq: freq}
}

func (a *diffAgent) Deliver(m msg.Message) { a.heard = append(a.heard, m.TS.UID) }

func (a *diffAgent) Output() sim.Output {
	if len(a.heard) >= a.needed {
		return sim.Output{Value: uint64(len(a.heard)), Synced: true}
	}
	return sim.Output{}
}

func (a *diffAgent) IsLeader() bool { return a.leader }

// diffTopology draws a randomized communication graph, including
// disconnected geometric samples (the medium semantics do not require
// connectivity).
func diffTopology(r *rng.Rand) *Topology {
	switch r.IntRange(0, 3) {
	case 0:
		return Line(r.IntRange(2, 24))
	case 1:
		return Grid(r.IntRange(2, 6), r.IntRange(2, 6))
	case 2:
		return Clique(r.IntRange(2, 12))
	default:
		return RandomGeometric(r.IntRange(8, 48), 0.05+r.Float64()*0.45, r.Uint64())
	}
}

// diffSchedule draws an activation schedule over n nodes (nil = all wake
// in round 1).
func diffSchedule(r *rng.Rand, n int) sim.Schedule {
	switch r.IntRange(0, 2) {
	case 0:
		return nil
	case 1:
		return sim.Staggered{Count: n, Gap: uint64(r.IntRange(1, 4))}
	default:
		return sim.RandomWindow(n, uint64(r.IntRange(1, 30)), r.Uint64())
	}
}

// diffAdversary draws a jammer factory (or nil) for the given budget.
// Adversaries are stateful, so each run constructs its own instance.
func diffAdversary(r *rng.Rand, f, tBudget int) func() sim.Adversary {
	if tBudget == 0 {
		return nil
	}
	switch r.IntRange(0, 2) {
	case 0:
		return nil
	case 1:
		return func() sim.Adversary { return adversary.NewPrefix(f, tBudget) }
	default:
		seed := r.Uint64()
		return func() sim.Adversary { return adversary.NewRandom(f, tBudget, seed) }
	}
}

// diffRun executes one configuration under the given medium path and
// returns the result plus every agent's reception log.
func diffRun(t *testing.T, cfg Config, mkAdv func() sim.Adversary, medium sim.MediumPath) (*Result, [][]uint64) {
	t.Helper()
	agents := make([]*diffAgent, cfg.Topology.N())
	cfg.Medium = medium
	if mkAdv != nil {
		cfg.Adversary = mkAdv()
	}
	cfg.NewAgent = func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
		a := newDiffAgent(r, cfg.F)
		agents[id] = a
		return a
	}
	res, err := Run(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	heard := make([][]uint64, len(agents))
	for i, a := range agents {
		if a != nil {
			heard[i] = a.heard
		}
	}
	return res, heard
}

// diffResults describes the first divergence between two runs, or "".
func diffResults(a, b *Result, heardA, heardB [][]uint64) string {
	switch {
	case a.Rounds != b.Rounds:
		return fmt.Sprintf("Rounds %d vs %d", a.Rounds, b.Rounds)
	case a.NodeRounds != b.NodeRounds:
		return fmt.Sprintf("NodeRounds %d vs %d", a.NodeRounds, b.NodeRounds)
	case a.AllSynced != b.AllSynced:
		return fmt.Sprintf("AllSynced %v vs %v", a.AllSynced, b.AllSynced)
	case a.Leaders != b.Leaders:
		return fmt.Sprintf("Leaders %d vs %d", a.Leaders, b.Leaders)
	case a.Deliveries != b.Deliveries:
		return fmt.Sprintf("Deliveries %d vs %d", a.Deliveries, b.Deliveries)
	case a.Collisions != b.Collisions:
		return fmt.Sprintf("Collisions %d vs %d", a.Collisions, b.Collisions)
	case a.HitMaxRounds != b.HitMaxRounds:
		return fmt.Sprintf("HitMaxRounds %v vs %v", a.HitMaxRounds, b.HitMaxRounds)
	}
	for i := range a.SyncRound {
		if a.SyncRound[i] != b.SyncRound[i] {
			return fmt.Sprintf("SyncRound[%d] %d vs %d", i, a.SyncRound[i], b.SyncRound[i])
		}
	}
	for i := range heardA {
		if len(heardA[i]) != len(heardB[i]) {
			return fmt.Sprintf("node %d heard %d vs %d messages", i, len(heardA[i]), len(heardB[i]))
		}
		for j := range heardA[i] {
			if heardA[i][j] != heardB[i][j] {
				return fmt.Sprintf("node %d reception %d: uid %d vs %d", i, j, heardA[i][j], heardB[i][j])
			}
		}
	}
	return ""
}

// TestMultihopMediumDifferential runs the per-receiver scan oracle and the
// frequency-indexed fast path over randomized configurations and asserts
// bit-identical results.
func TestMultihopMediumDifferential(t *testing.T) {
	master := rng.New(0x4d48)
	cases := 80
	if testing.Short() {
		cases = 25
	}
	for c := 0; c < cases; c++ {
		r := master.Split(uint64(c))
		topo := diffTopology(r)
		f := r.IntRange(2, 16)
		tBudget := r.IntRange(0, f-1)
		mkAdv := diffAdversary(r, f, tBudget)
		cfg := Config{
			F:         f,
			T:         tBudget,
			Seed:      r.Uint64(),
			Topology:  topo,
			Schedule:  diffSchedule(r, topo.N()),
			MaxRounds: uint64(r.IntRange(50, 250)),
			RunToMax:  r.Bool(),
		}
		scanRes, scanHeard := diffRun(t, cfg, mkAdv, sim.MediumScan)
		idxRes, idxHeard := diffRun(t, cfg, mkAdv, sim.MediumIndexed)
		if d := diffResults(scanRes, idxRes, scanHeard, idxHeard); d != "" {
			t.Fatalf("case %d (%v F=%d t=%d sched=%T): divergence: %s",
				c, topo, f, tBudget, cfg.Schedule, d)
		}
		if scanRes.NodeRounds == 0 {
			t.Fatalf("case %d: NodeRounds not counted", c)
		}
	}
}

// TestMultihopCliqueMatchesSimIndexed pins the clique special case of the
// indexed multi-hop resolver against the single-hop engine's own indexed
// path: identical deliveries and collision counts on the complete graph.
func TestMultihopCliqueMatchesSimIndexed(t *testing.T) {
	const n, f, tBudget = 6, 5, 2
	multiAgents := make([]*diffAgent, n)
	multi, err := Run(&Config{
		F: f, T: tBudget, Seed: 77,
		Topology: Clique(n),
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			a := newDiffAgent(r, f)
			multiAgents[id] = a
			return a
		},
		Adversary: adversary.NewPrefix(f, tBudget),
		MaxRounds: 300,
		RunToMax:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	singleAgents := make([]*diffAgent, n)
	single, err := sim.Run(&sim.Config{
		F: f, T: tBudget, Seed: 77,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			a := newDiffAgent(r, f)
			singleAgents[id] = a
			return a
		},
		Schedule:       sim.Simultaneous{Count: n},
		Adversary:      adversary.NewPrefix(f, tBudget),
		MaxRounds:      300,
		RunToMaxRounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Deliveries != single.Stats.Deliveries {
		t.Fatalf("deliveries %d (multihop clique) vs %d (single-hop)", multi.Deliveries, single.Stats.Deliveries)
	}
	if multi.NodeRounds != single.Stats.NodeRounds {
		t.Fatalf("node-rounds %d vs %d", multi.NodeRounds, single.Stats.NodeRounds)
	}
	for i := 0; i < n; i++ {
		if multi.SyncRound[i] != single.SyncRound[i] {
			t.Fatalf("node %d synced at %d vs %d", i, multi.SyncRound[i], single.SyncRound[i])
		}
	}
	for i := 0; i < n; i++ {
		a, b := multiAgents[i], singleAgents[i]
		if len(a.heard) != len(b.heard) {
			t.Fatalf("node %d heard %d vs %d", i, len(a.heard), len(b.heard))
		}
	}
}
