package multihop

import (
	"fmt"
	"math"
	"sort"

	"wsync/internal/rng"
)

// Topology is an undirected communication graph over nodes 0..N-1. Every
// constructor returns adjacency lists in ascending neighbor order — the
// deterministic order engine traces depend on and the sorted invariant
// the indexed medium resolver binary-searches on its bucket-walk path.
type Topology struct {
	n   int
	adj [][]int
	// seen guards against duplicate edges during construction in O(1)
	// per insertion (the old per-edge linear scan of adj[a] made dense
	// builds like geometric graphs quadratic in degree); finish drops it.
	seen map[uint64]struct{}
}

// N returns the node count.
func (t *Topology) N() int { return t.n }

// Neighbors returns node i's neighbor list (shared slice; do not mutate).
func (t *Topology) Neighbors(i int) []int { return t.adj[i] }

// Degree returns node i's degree.
func (t *Topology) Degree(i int) int { return len(t.adj[i]) }

// newTopology allocates an empty graph under construction.
func newTopology(n int) *Topology {
	return &Topology{n: n, adj: make([][]int, n), seen: make(map[uint64]struct{})}
}

// addEdge inserts the undirected edge (a, b) once, in O(1) via the
// seen-edge set.
func (t *Topology) addEdge(a, b int) {
	if a == b {
		panic("multihop: self-loop")
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	key := uint64(lo)<<32 | uint64(hi)
	if _, dup := t.seen[key]; dup {
		return
	}
	t.seen[key] = struct{}{}
	t.adj[a] = append(t.adj[a], b)
	t.adj[b] = append(t.adj[b], a)
}

// finish seals a constructed graph: it drops the construction-time edge
// set and sorts every adjacency list ascending, establishing the neighbor
// order the medium resolver's binary search requires.
func (t *Topology) finish() *Topology {
	t.seen = nil
	for i := range t.adj {
		sort.Ints(t.adj[i])
	}
	return t
}

// HasEdge reports whether the undirected edge (a, b) is present in a
// sealed topology.
func (t *Topology) HasEdge(a, b int) bool {
	if a == b {
		return false
	}
	// Search from the lower-degree endpoint.
	if len(t.adj[a]) > len(t.adj[b]) {
		a, b = b, a
	}
	i := sort.SearchInts(t.adj[a], b)
	return i < len(t.adj[a]) && t.adj[a][i] == b
}

// InsertEdge adds the undirected edge (a, b) to a sealed topology in
// place, keeping both adjacency lists sorted — the delta half of the
// dynamic-topology API. It reports whether the edge was absent (and is now
// present); inserting a present edge is a no-op returning false. Amortized
// cost is O(degree) per endpoint with no allocation once the adjacency
// slices have grown to their working capacity, which is what keeps churned
// rounds on the engines' zero-alloc steady-state path.
func (t *Topology) InsertEdge(a, b int) bool {
	if a == b {
		panic("multihop: self-loop")
	}
	if a < 0 || a >= t.n || b < 0 || b >= t.n {
		panic(fmt.Sprintf("multihop: InsertEdge(%d, %d) outside [0, %d)", a, b, t.n))
	}
	i := sort.SearchInts(t.adj[a], b)
	if i < len(t.adj[a]) && t.adj[a][i] == b {
		return false
	}
	t.adj[a] = insertSortedAt(t.adj[a], i, b)
	t.adj[b] = insertSortedAt(t.adj[b], sort.SearchInts(t.adj[b], a), a)
	return true
}

// DeleteEdge removes the undirected edge (a, b) from a sealed topology in
// place. It reports whether the edge was present (and is now absent);
// deleting an absent edge is a no-op returning false. Like InsertEdge it
// never allocates and preserves the sorted-adjacency invariant.
func (t *Topology) DeleteEdge(a, b int) bool {
	if a == b {
		panic("multihop: self-loop")
	}
	if a < 0 || a >= t.n || b < 0 || b >= t.n {
		panic(fmt.Sprintf("multihop: DeleteEdge(%d, %d) outside [0, %d)", a, b, t.n))
	}
	i := sort.SearchInts(t.adj[a], b)
	if i >= len(t.adj[a]) || t.adj[a][i] != b {
		return false
	}
	t.adj[a] = removeSortedAt(t.adj[a], i)
	t.adj[b] = removeSortedAt(t.adj[b], sort.SearchInts(t.adj[b], a))
	return true
}

// insertSortedAt inserts x at position i, shifting the tail right. The
// append grows capacity only until the slice reaches its working size.
func insertSortedAt(s []int, i, x int) []int {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// removeSortedAt deletes position i, shifting the tail left. Capacity is
// retained for future inserts.
func removeSortedAt(s []int, i int) []int {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// Clone deep-copies a sealed topology. Engines that churn edges clone the
// configured topology so per-round delta mutations never reach the
// caller's graph (which may be shared across trials).
func (t *Topology) Clone() *Topology {
	c := &Topology{n: t.n, adj: make([][]int, t.n)}
	for i, nbrs := range t.adj {
		c.adj[i] = append([]int(nil), nbrs...)
	}
	return c
}

// EdgeCount returns the number of undirected edges.
func (t *Topology) EdgeCount() int {
	total := 0
	for i := range t.adj {
		total += len(t.adj[i])
	}
	return total / 2
}

// AppendEdges appends every undirected edge as a normalized (lo, hi) pair
// in lexicographic order and returns the extended slice — the snapshot the
// churn rebuild oracle and the mobility models diff against.
func (t *Topology) AppendEdges(dst []Edge) []Edge {
	for a := 0; a < t.n; a++ {
		for _, b := range t.adj[a] {
			if b > a {
				dst = append(dst, Edge{A: a, B: b})
			}
		}
	}
	return dst
}

// NewTopologyFromEdges builds a sealed topology over n nodes from an
// explicit undirected edge list. Duplicate edges (in either orientation)
// collapse; self-loops and out-of-range endpoints panic. Churn models use
// it to materialize layered or snapshot edge sets as real topologies.
func NewTopologyFromEdges(n int, edges []Edge) *Topology {
	if n < 1 {
		panic("multihop: NewTopologyFromEdges needs n >= 1")
	}
	t := newTopology(n)
	for _, e := range edges {
		if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n {
			panic(fmt.Sprintf("multihop: edge (%d, %d) outside [0, %d)", e.A, e.B, n))
		}
		t.addEdge(e.A, e.B)
	}
	return t.finish()
}

// Line returns the path topology 0—1—…—n−1 (diameter n−1).
func Line(n int) *Topology {
	if n < 1 {
		panic("multihop: Line needs n >= 1")
	}
	t := newTopology(n)
	for i := 0; i+1 < n; i++ {
		t.addEdge(i, i+1)
	}
	return t.finish()
}

// Grid returns the w×h grid topology with 4-neighborhoods.
func Grid(w, h int) *Topology {
	if w < 1 || h < 1 {
		panic("multihop: Grid needs positive dimensions")
	}
	t := newTopology(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				t.addEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				t.addEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return t.finish()
}

// Clique returns the complete graph — the single-hop special case, used to
// validate the engine against the single-hop simulator's semantics.
func Clique(n int) *Topology {
	if n < 1 {
		panic("multihop: Clique needs n >= 1")
	}
	t := newTopology(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t.addEdge(i, j)
		}
	}
	return t.finish()
}

// RandomGeometric places n nodes uniformly in the unit square and connects
// pairs within the given radius. Deterministic in seed.
func RandomGeometric(n int, radius float64, seed uint64) *Topology {
	if n < 1 || radius <= 0 {
		panic("multihop: RandomGeometric needs n >= 1 and radius > 0")
	}
	r := rng.New(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	t := newTopology(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if math.Sqrt(dx*dx+dy*dy) <= radius {
				t.addEdge(i, j)
			}
		}
	}
	return t.finish()
}

// RandomGeometricConnected samples RandomGeometric graphs from seeds
// derived deterministically from seed until one is connected, and returns
// it. Above the connectivity threshold radius ≈ √(ln n / (π n)) almost
// every sample connects, so the loop nearly always returns on the first
// draw; it panics if 256 consecutive samples are disconnected (the radius
// is far below threshold — a configuration error).
func RandomGeometricConnected(n int, radius float64, seed uint64) *Topology {
	r := rng.New(seed)
	for attempt := 0; attempt < 256; attempt++ {
		t := RandomGeometric(n, radius, r.Uint64())
		if t.Connected() {
			return t
		}
	}
	panic(fmt.Sprintf("multihop: no connected RandomGeometric(n=%d, radius=%v) within 256 samples of seed %d",
		n, radius, seed))
}

// Connected reports whether the graph has a single connected component.
func (t *Topology) Connected() bool {
	if t.n == 0 {
		return true
	}
	seen := make([]bool, t.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range t.adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == t.n
}

// Diameter returns the longest shortest path in hops (0 for a single node;
// it panics on disconnected graphs, which have no diameter).
func (t *Topology) Diameter() int {
	if !t.Connected() {
		panic("multihop: Diameter of disconnected graph")
	}
	best := 0
	dist := make([]int, t.n)
	queue := make([]int, 0, t.n)
	for s := 0; s < t.n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range t.adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					if dist[w] > best {
						best = dist[w]
					}
					queue = append(queue, w)
				}
			}
		}
	}
	return best
}

// String summarizes the topology.
func (t *Topology) String() string {
	edges := 0
	for i := range t.adj {
		edges += len(t.adj[i])
	}
	return fmt.Sprintf("topology(n=%d, edges=%d)", t.n, edges/2)
}
