// Package multihop extends the disrupted radio network model to multi-hop
// topologies, exploring the paper's closing open question ("how our
// results can be adapted to multiple hops").
//
// The medium generalizes Section 2 per receiver: a node u listening on
// frequency f receives a message iff exactly one of u's NEIGHBORS
// transmits on f and f is not disrupted. Non-neighbors neither deliver nor
// interfere; two transmitting neighbors collide at u even if they cannot
// hear each other (the hidden-terminal effect). The adversary jams up to t
// frequencies per round network-wide.
//
// The engine shares its activation and frequency-indexing machinery with
// the single-hop simulator through internal/medium. On the default path
// (Config.Medium zero value) each round costs O(active): one pass over
// the awake nodes builds per-frequency transmitter buckets, and a
// listener's reception is resolved by intersecting its frequency's bucket
// with its neighborhood — bucket-walk or neighbor-walk, whichever side is
// smaller. The complete graph (Clique) is exactly the single-hop model,
// which TestCliqueMatchesSingleHop pins against internal/sim. The legacy
// per-receiver full neighbor scan survives behind sim.MediumScan as the
// differential-testing oracle (TestMultihopMediumDifferential), mirroring
// the single-hop engine's resolver pair.
//
// Topologies cover lines, grids, cliques, and random geometric graphs
// (RandomGeometric, with RandomGeometricConnected retrying samples until
// connected); Diameter reports the hop-count diameter by BFS, the
// x-axis of the X7 convergence sweep, which climbs geometric graphs to
// N=4096 under the -full tier.
//
// On top of the engine, RelayNode extends the Trapdoor Protocol across
// hops: nodes compete locally exactly as in the single-hop protocol, and
// every node that adopts a numbering becomes a relay that re-announces it.
// Conflicting schemes from independent regional elections are merged by
// adopting the scheme with the larger identifier, so the whole connected
// component converges to one numbering; time grows with network diameter
// (measured in experiment X7). Scheme switches can step a node's round
// number — genuine multi-hop synchronization with the paper's full
// guarantees remains the open problem; see the package tests for what is
// and is not promised.
package multihop
