package multihop

import (
	"testing"

	"wsync/internal/adversary"
	"wsync/internal/msg"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

// allocAgent transmits with probability 1/2 on a random frequency and
// never syncs, so driven rounds exercise the step, resolve, relay-deliver,
// and sync-check paths indefinitely without allocating on its own account.
type allocAgent struct {
	r     *rng.Rand
	f     int
	heard uint64
}

func (a *allocAgent) Step(local uint64) sim.Action {
	act := sim.Action{Freq: a.r.IntRange(1, a.f)}
	if a.r.Bool() {
		act.Transmit = true
		act.Msg = msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{Age: local}}
	}
	return act
}

func (a *allocAgent) Deliver(msg.Message) { a.heard++ }
func (a *allocAgent) Output() sim.Output  { return sim.Output{} }

// TestSteadyStateAllocs drives the multi-hop round loop past warm-up on
// both medium paths and requires exactly zero allocations per round — the
// multi-hop half of the zero-alloc hot-path contract (the single-hop half
// lives in internal/sim). Unlike sim's test this one can use the real
// adversary package (no import cycle from here).
func TestSteadyStateAllocs(t *testing.T) {
	for _, path := range []struct {
		name string
		m    sim.MediumPath
	}{{"indexed", sim.MediumIndexed}, {"scan", sim.MediumScan}} {
		t.Run(path.name, func(t *testing.T) {
			const f, jam = 16, 4
			cfg := &Config{
				F:        f,
				T:        jam,
				Seed:     7,
				Topology: Grid(8, 8),
				NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
					return &allocAgent{r: r, f: f}
				},
				Adversary: adversary.NewRandom(f, jam, 99),
				RunToMax:  true,
				Medium:    path.m,
			}
			e, err := newEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := uint64(0)
			for ; r < 64; r++ {
				e.runRound(r + 1)
			}
			allocs := testing.AllocsPerRun(100, func() {
				r++
				e.runRound(r)
			})
			if allocs != 0 {
				t.Fatalf("steady-state round allocates %.1f objects, want 0", allocs)
			}
		})
	}
}
