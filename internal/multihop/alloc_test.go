package multihop

import (
	"testing"

	"wsync/internal/adversary"
	"wsync/internal/msg"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

// allocAgent transmits with probability 1/2 on a random frequency and
// never syncs, so driven rounds exercise the step, resolve, relay-deliver,
// and sync-check paths indefinitely without allocating on its own account.
type allocAgent struct {
	r     *rng.Rand
	f     int
	heard uint64
	arena *allocArena
}

func (a *allocAgent) step(local uint64, m *msg.Message) (int32, bool) {
	f := int32(a.r.IntRange(1, a.f))
	if a.r.Bool() {
		*m = msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{Age: local}}
		return f, true
	}
	return f, false
}

func (a *allocAgent) Step(local uint64) sim.Action {
	var act sim.Action
	f, tx := a.step(local, &act.Msg)
	act.Freq, act.Transmit = int(f), tx
	return act
}

func (a *allocAgent) Deliver(msg.Message) { a.heard++ }
func (a *allocAgent) Output() sim.Output  { return sim.Output{} }

func (a *allocAgent) Cohort() any {
	if a.arena == nil {
		return nil
	}
	return a.arena
}

func (a *allocAgent) StepBatch(ids []int, locals []uint64, actFreq []int32, actTx []bool, actMsg []msg.Message) {
	nodes := a.arena.nodes
	for j, id := range ids {
		f, tx := nodes[id].step(locals[j], &actMsg[id])
		actFreq[id] = f
		actTx[id] = tx
	}
}

// allocArena mirrors the protocol arenas: slab construction with no
// per-activation allocation.
type allocArena struct {
	f     int
	nodes []allocAgent
}

func (a *allocArena) NewAgent(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
	nd := &a.nodes[id]
	*nd = allocAgent{r: r, f: a.f, arena: a}
	return nd
}

// allocSchedule activates node i in round s[i].
type allocSchedule []uint64

func (s allocSchedule) N() int                       { return len(s) }
func (s allocSchedule) ActivationRound(i int) uint64 { return s[i] }

// allocFlip is churn.Flip re-implemented without the import cycle
// (internal/churn imports this package): every base edge independently
// toggles presence each round, deltas emitted into reused buffers. Degree
// never exceeds the base graph's, so once the engine's adjacency slices
// warm up to base capacity a churned round patches them in place.
type allocFlip struct {
	edges       []Edge
	on          []bool
	rate        float64
	r           *rng.Rand
	add, remove []Edge
}

func newAllocFlip(base *Topology, rate float64, seed uint64) *allocFlip {
	edges := base.AppendEdges(nil)
	on := make([]bool, len(edges))
	for i := range on {
		on[i] = true
	}
	return &allocFlip{edges: edges, on: on, rate: rate, r: rng.New(seed)}
}

func (m *allocFlip) Deltas(uint64) (add, remove []Edge) {
	m.add, m.remove = m.add[:0], m.remove[:0]
	for i, e := range m.edges {
		if !m.r.Bernoulli(m.rate) {
			continue
		}
		if m.on[i] {
			m.remove = append(m.remove, e)
		} else {
			m.add = append(m.add, e)
		}
		m.on[i] = !m.on[i]
	}
	return m.add, m.remove
}

// TestSteadyStateAllocs drives the multi-hop round loop past warm-up on
// both medium paths and requires exactly zero allocations per round — the
// multi-hop half of the zero-alloc hot-path contract (the single-hop half
// lives in internal/sim). Unlike sim's test this one can use the real
// adversary package (no import cycle from here).
func TestSteadyStateAllocs(t *testing.T) {
	for _, path := range []struct {
		name  string
		m     sim.MediumPath
		churn bool
	}{{name: "indexed", m: sim.MediumIndexed}, {name: "scan", m: sim.MediumScan},
		{name: "churned", m: sim.MediumIndexed, churn: true}} {
		t.Run(path.name, func(t *testing.T) {
			const f, jam = 16, 4
			cfg := &Config{
				F:        f,
				T:        jam,
				Seed:     7,
				Topology: Grid(8, 8),
				NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
					return &allocAgent{r: r, f: f}
				},
				Adversary: adversary.NewRandom(f, jam, 99),
				RunToMax:  true,
				Medium:    path.m,
			}
			if path.churn {
				// A churned round must also be allocation-free: the delta
				// mutations patch warmed adjacency in place and the
				// SetGraph swap reuses every resolver buffer.
				cfg.Churn = newAllocFlip(cfg.Topology, 0.2, 123)
			}
			e, err := newEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := uint64(0)
			for ; r < 64; r++ {
				e.runRound(r + 1)
			}
			allocs := testing.AllocsPerRun(100, func() {
				r++
				e.runRound(r)
			})
			if allocs != 0 {
				t.Fatalf("steady-state round allocates %.1f objects, want 0", allocs)
			}
			if path.churn && e.res.ChurnRounds == 0 {
				t.Fatal("churned subtest never applied a delta; the alloc check ran vacuously")
			}
		})
	}
}

// TestActivationRoundAllocs extends the zero-alloc contract to activation
// rounds on the multi-hop engine: with arena-built agents, a round that
// wakes new nodes (Wake, arena construction, cohort insertion) allocates
// nothing. Four stragglers activate inside the measured window.
func TestActivationRoundAllocs(t *testing.T) {
	const f, jam = 16, 4
	topo := Grid(8, 8)
	n := topo.N()
	sched := make(allocSchedule, n)
	for i := range sched {
		sched[i] = 1
	}
	// Stragglers activate at rounds 72..102, inside the window.
	sched[n-4], sched[n-3], sched[n-2], sched[n-1] = 72, 82, 92, 102
	arena := &allocArena{f: f, nodes: make([]allocAgent, n)}
	cfg := &Config{
		F:         f,
		T:         jam,
		Seed:      7,
		Topology:  topo,
		NewAgent:  arena.NewAgent,
		Schedule:  sched,
		Adversary: adversary.NewRandom(f, jam, 99),
		RunToMax:  true,
	}
	e, err := newEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := uint64(0)
	for ; r < 64; r++ {
		e.runRound(r + 1)
	}
	allocs := testing.AllocsPerRun(100, func() {
		r++
		e.runRound(r)
	})
	if allocs != 0 {
		t.Fatalf("activation-inclusive round allocates %.1f objects, want 0", allocs)
	}
	if got := len(e.act.Active()); got != n {
		t.Fatalf("only %d of %d nodes activated; the window missed the stragglers", got, n)
	}
}
