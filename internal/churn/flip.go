package churn

import (
	"fmt"

	"wsync/internal/multihop"
	"wsync/internal/rng"
)

// Flip is i.i.d. per-round link churn: every edge of the base graph
// independently toggles its presence with probability Rate each round.
// Round 1 is the full base graph. Degree never exceeds the base graph's,
// so once the engine's adjacency slices reach base capacity a flipped
// round patches them allocation-free — the model the churned
// TestSteadyStateAllocs subtest pins at 0 allocs/round.
type Flip struct {
	base  *multihop.Topology
	edges []multihop.Edge
	on    []bool
	rate  float64
	r     *rng.Rand

	add, remove []multihop.Edge
}

var _ Model = (*Flip)(nil)

// NewFlip builds the flip model over the base graph's edge set.
func NewFlip(base *multihop.Topology, rate float64, seed uint64) *Flip {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("churn: flip rate %v outside [0, 1]", rate))
	}
	edges := base.AppendEdges(nil)
	on := make([]bool, len(edges))
	for i := range on {
		on[i] = true
	}
	return &Flip{base: base, edges: edges, on: on, rate: rate, r: rng.New(seed)}
}

// Topology returns the round-1 graph: the base with every edge up.
func (m *Flip) Topology() *multihop.Topology { return m.base }

// Deltas implements multihop.ChurnModel: one Bernoulli draw per base
// edge, in the fixed lexicographic edge order, toggling the losers.
func (m *Flip) Deltas(r uint64) (add, remove []multihop.Edge) {
	m.add, m.remove = m.add[:0], m.remove[:0]
	for i, e := range m.edges {
		if !m.r.Bernoulli(m.rate) {
			continue
		}
		if m.on[i] {
			m.remove = append(m.remove, e)
		} else {
			m.add = append(m.add, e)
		}
		m.on[i] = !m.on[i]
	}
	return m.add, m.remove
}
