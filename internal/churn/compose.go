package churn

import (
	"fmt"
	"sort"

	"wsync/internal/multihop"
)

// Compose layers independent churn models over the same node universe: an
// edge is up iff at least one layer holds it. Each layer evolves its own
// edge set obliviously; Compose keeps per-edge reference counts and emits
// a delta only when a count crosses zero (0→1 surfaces the edge, 1→0
// sinks it). Touched edges are replayed in ascending key order, so the
// merged delta stream is as deterministic as its layers.
type Compose struct {
	models []Model
	topo   *multihop.Topology
	refs   map[uint64]int

	add, remove []multihop.Edge
	touched     map[uint64]int
	keys        []uint64
}

var _ Model = (*Compose)(nil)

// NewCompose unions the layers' round-1 graphs. All layers must agree on
// the node count.
func NewCompose(models ...Model) *Compose {
	if len(models) < 2 {
		panic("churn: Compose needs at least two layers")
	}
	n := models[0].Topology().N()
	refs := make(map[uint64]int)
	var scratch []multihop.Edge
	for _, sub := range models {
		t := sub.Topology()
		if t.N() != n {
			panic(fmt.Sprintf("churn: Compose layers disagree on node count (%d vs %d)", n, t.N()))
		}
		scratch = t.AppendEdges(scratch[:0])
		for _, e := range scratch {
			refs[edgeKey(e.A, e.B)]++
		}
	}
	union := make([]multihop.Edge, 0, len(refs))
	for k := range refs {
		union = append(union, keyEdge(k))
	}
	return &Compose{
		models:  models,
		topo:    multihop.NewTopologyFromEdges(n, union),
		refs:    refs,
		touched: make(map[uint64]int),
	}
}

// Topology returns the round-1 union graph.
func (m *Compose) Topology() *multihop.Topology { return m.topo }

// Deltas implements multihop.ChurnModel: pull every layer's deltas,
// adjust reference counts, and emit the edges whose count crossed zero.
func (m *Compose) Deltas(r uint64) (add, remove []multihop.Edge) {
	m.add, m.remove = m.add[:0], m.remove[:0]
	m.keys = m.keys[:0]
	clear(m.touched)
	touch := func(e multihop.Edge) uint64 {
		k := edgeKey(e.A, e.B)
		if _, ok := m.touched[k]; !ok {
			m.touched[k] = m.refs[k]
			m.keys = append(m.keys, k)
		}
		return k
	}
	for _, sub := range m.models {
		a, rm := sub.Deltas(r)
		for _, e := range rm {
			k := touch(e)
			m.refs[k]--
			if m.refs[k] < 0 {
				panic(fmt.Sprintf("churn: Compose layer removed edge (%d,%d) no layer holds", e.A, e.B))
			}
		}
		for _, e := range a {
			m.refs[touch(e)]++
		}
	}
	sort.Slice(m.keys, func(i, j int) bool { return m.keys[i] < m.keys[j] })
	for _, k := range m.keys {
		before, after := m.touched[k], m.refs[k]
		switch {
		case before == 0 && after > 0:
			m.add = append(m.add, keyEdge(k))
		case before > 0 && after == 0:
			m.remove = append(m.remove, keyEdge(k))
		}
	}
	return m.add, m.remove
}
