package churn

import (
	"fmt"

	"wsync/internal/rendezvous"
	"wsync/internal/rng"
)

// MaskFlip churns rendezvous party masks: every (party, channel) slot
// independently toggles between open and blocked with probability Rate
// each round, starting fully open. It is the rendezvous-side sibling of
// Flip, plugged into rendezvous.Config.Masks.
type MaskFlip struct {
	k, f    int
	rate    float64
	r       *rng.Rand
	blocked []bool

	block, unblock [][2]int
}

var _ rendezvous.MaskModel = (*MaskFlip)(nil)

// NewMaskFlip builds the model for k parties over channels 1..f.
func NewMaskFlip(k, f int, rate float64, seed uint64) *MaskFlip {
	if k < 1 || f < 1 || rate < 0 || rate > 1 {
		panic(fmt.Sprintf("churn: MaskFlip needs k >= 1, f >= 1, rate in [0, 1] (k=%d f=%d rate=%v)", k, f, rate))
	}
	return &MaskFlip{k: k, f: f, rate: rate, r: rng.New(seed), blocked: make([]bool, k*f)}
}

// MaskDeltas implements rendezvous.MaskModel: one Bernoulli draw per
// slot in (party, channel) order, toggling the losers.
func (m *MaskFlip) MaskDeltas(r uint64) (block, unblock [][2]int) {
	m.block, m.unblock = m.block[:0], m.unblock[:0]
	for p := 0; p < m.k; p++ {
		for ch := 1; ch <= m.f; ch++ {
			idx := p*m.f + ch - 1
			if !m.r.Bernoulli(m.rate) {
				continue
			}
			if m.blocked[idx] {
				m.unblock = append(m.unblock, [2]int{p, ch})
			} else {
				m.block = append(m.block, [2]int{p, ch})
			}
			m.blocked[idx] = !m.blocked[idx]
		}
	}
	return m.block, m.unblock
}
