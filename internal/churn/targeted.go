package churn

import (
	"fmt"

	"wsync/internal/multihop"
)

// TargetedCut is an adversary that aims link cuts at the current minimum
// cut. Every Every rounds it severs up to Budget edges: bridges first
// (the size-1 cuts, found by Tarjan's lowlink pass), then edges of the
// minimum-degree vertex — whose degree upper-bounds the global edge
// min-cut — lowest neighbor first. Cut edges heal after Heal rounds. The
// model is fully deterministic: no randomness, only the evolving graph.
type TargetedCut struct {
	base   *multihop.Topology
	topo   *multihop.Topology
	budget int
	every  uint64
	heal   uint64

	pending []healEntry

	add, remove []multihop.Edge

	// bridge-finding scratch, reused across strikes
	disc, low []int
	stack     []bridgeFrame
	scratch   []multihop.Edge
	nbrs      []int
}

type healEntry struct {
	at uint64
	e  multihop.Edge
}

type bridgeFrame struct {
	u, parent, next int
}

var _ Model = (*TargetedCut)(nil)

// NewTargetedCut builds the adversary over base: strikes every `every`
// rounds (the first at round 2), cutting up to budget edges that each
// heal after heal rounds of outage.
func NewTargetedCut(base *multihop.Topology, budget int, every, heal uint64) *TargetedCut {
	if budget < 1 || every < 1 || heal < 1 {
		panic(fmt.Sprintf("churn: TargetedCut needs budget >= 1, every >= 1, heal >= 1 (budget=%d every=%d heal=%d)", budget, every, heal))
	}
	n := base.N()
	return &TargetedCut{
		base:   base,
		topo:   base.Clone(),
		budget: budget,
		every:  every,
		heal:   heal,
		disc:   make([]int, n),
		low:    make([]int, n),
	}
}

// Topology returns the round-1 graph (nothing cut yet).
func (m *TargetedCut) Topology() *multihop.Topology { return m.base }

// bridges appends every bridge of the current graph to dst, normalized
// and sorted lexicographically (iterative Tarjan lowlink).
func (m *TargetedCut) bridges(dst []multihop.Edge) []multihop.Edge {
	n := m.topo.N()
	for i := range m.disc {
		m.disc[i] = 0
	}
	timer := 0
	for root := 0; root < n; root++ {
		if m.disc[root] != 0 {
			continue
		}
		m.stack = append(m.stack[:0], bridgeFrame{u: root, parent: -1})
		timer++
		m.disc[root], m.low[root] = timer, timer
		for len(m.stack) > 0 {
			f := &m.stack[len(m.stack)-1]
			nbrs := m.topo.Neighbors(f.u)
			if f.next < len(nbrs) {
				v := nbrs[f.next]
				f.next++
				if v == f.parent {
					// Skip one edge back to the parent; simple graphs
					// have exactly one, so mark it consumed.
					f.parent = -1
					continue
				}
				if m.disc[v] != 0 {
					if m.low[f.u] > m.disc[v] {
						m.low[f.u] = m.disc[v]
					}
					continue
				}
				timer++
				m.disc[v], m.low[v] = timer, timer
				m.stack = append(m.stack, bridgeFrame{u: v, parent: f.u})
				continue
			}
			u := f.u
			m.stack = m.stack[:len(m.stack)-1]
			if len(m.stack) > 0 {
				p := m.stack[len(m.stack)-1].u
				if m.low[p] > m.low[u] {
					m.low[p] = m.low[u]
				}
				if m.low[u] > m.disc[p] {
					if p < u {
						dst = append(dst, multihop.Edge{A: p, B: u})
					} else {
						dst = append(dst, multihop.Edge{A: u, B: p})
					}
				}
			}
		}
	}
	sortEdges(dst)
	return dst
}

// healedThisRound reports whether e was just re-added (strikes skip those
// so a round's add and remove sets stay disjoint).
func (m *TargetedCut) healedThisRound(e multihop.Edge) bool {
	for _, h := range m.add {
		if h == e {
			return true
		}
	}
	return false
}

// cut severs e now, schedules its heal, and spends one budget unit.
func (m *TargetedCut) cut(e multihop.Edge, r uint64, budget *int) {
	m.remove = append(m.remove, e)
	m.topo.DeleteEdge(e.A, e.B)
	m.pending = append(m.pending, healEntry{at: r + m.heal, e: e})
	*budget--
}

// Deltas implements multihop.ChurnModel: heal due edges, then on strike
// rounds aim the budget at the thinnest part of the healed graph.
func (m *TargetedCut) Deltas(r uint64) (add, remove []multihop.Edge) {
	m.add, m.remove = m.add[:0], m.remove[:0]
	if len(m.pending) > 0 {
		kept := m.pending[:0]
		for _, h := range m.pending {
			if h.at == r {
				m.add = append(m.add, h.e)
				m.topo.InsertEdge(h.e.A, h.e.B)
			} else {
				kept = append(kept, h)
			}
		}
		m.pending = kept
	}
	if r >= 2 && (r-2)%m.every == 0 {
		budget := m.budget
		m.scratch = m.bridges(m.scratch[:0])
		for _, e := range m.scratch {
			if budget == 0 {
				break
			}
			if m.healedThisRound(e) {
				continue
			}
			m.cut(e, r, &budget)
		}
		if budget > 0 {
			v, vd := -1, 0
			for i := 0; i < m.topo.N(); i++ {
				if d := m.topo.Degree(i); d > 0 && (v < 0 || d < vd) {
					v, vd = i, d
				}
			}
			if v >= 0 {
				m.nbrs = append(m.nbrs[:0], m.topo.Neighbors(v)...)
				for _, j := range m.nbrs {
					if budget == 0 {
						break
					}
					e := multihop.Edge{A: v, B: j}
					if j < v {
						e = multihop.Edge{A: j, B: v}
					}
					if m.healedThisRound(e) {
						continue
					}
					m.cut(e, r, &budget)
				}
			}
		}
	}
	return m.add, m.remove
}
