package churn

import (
	"fmt"
	"math"

	"wsync/internal/multihop"
	"wsync/internal/rng"
)

// Waypoint is random-waypoint mobility over a geometric graph: n nodes in
// the unit square, each walking toward a uniformly drawn waypoint at a
// fixed per-round speed and drawing a fresh waypoint on arrival; an edge
// exists iff two nodes sit within the connection radius.
//
// Movers bounds how many nodes relocate per round (round-robin over node
// indices; 0 means all of them — classic synchronized mobility). A
// spatial grid of radius-sized cells makes each round O(movers · local
// density): only a mover's 3×3 cell neighborhood is re-examined, and only
// edges incident to a mover can change. That incremental shape — not the
// full O(n²) pair scan — is what keeps N=4096 mobile sweeps inside the
// -full tier's wall-clock budget.
type Waypoint struct {
	n      int
	radius float64
	speed  float64
	movers int
	r      *rng.Rand

	x, y   []float64
	wx, wy []float64
	topo   *multihop.Topology

	gw       int
	cellSize float64
	cellOf   []int
	cells    [][]int

	next      int
	moved     []int
	movedFlag []bool

	add, remove []multihop.Edge
	cand        []int
}

var _ Model = (*Waypoint)(nil)

// NewWaypoint draws the initial placement and waypoints. movers <= 0 (or
// >= n) moves every node every round. Deterministic in seed.
func NewWaypoint(n int, radius, speed float64, movers int, seed uint64) *Waypoint {
	if n < 1 || radius <= 0 || speed <= 0 {
		panic(fmt.Sprintf("churn: Waypoint needs n >= 1, radius > 0, speed > 0 (n=%d radius=%v speed=%v)", n, radius, speed))
	}
	if movers <= 0 || movers > n {
		movers = n
	}
	m := &Waypoint{
		n:         n,
		radius:    radius,
		speed:     speed,
		movers:    movers,
		r:         rng.New(seed),
		x:         make([]float64, n),
		y:         make([]float64, n),
		wx:        make([]float64, n),
		wy:        make([]float64, n),
		cellOf:    make([]int, n),
		movedFlag: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		m.x[i] = m.r.Float64()
		m.y[i] = m.r.Float64()
	}
	for i := 0; i < n; i++ {
		m.wx[i] = m.r.Float64()
		m.wy[i] = m.r.Float64()
	}
	m.gw = int(1 / radius)
	if m.gw < 1 {
		m.gw = 1
	}
	m.cellSize = 1 / float64(m.gw)
	m.cells = make([][]int, m.gw*m.gw)
	for i := 0; i < n; i++ {
		c := m.cellIndex(m.x[i], m.y[i])
		m.cellOf[i] = c
		m.cells[c] = append(m.cells[c], i)
	}
	var edges []multihop.Edge
	for i := 0; i < n; i++ {
		m.gatherNeighbors(i)
		for _, j := range m.cand {
			if j > i {
				edges = append(edges, multihop.Edge{A: i, B: j})
			}
		}
	}
	m.topo = multihop.NewTopologyFromEdges(n, edges)
	return m
}

// Topology returns the round-1 geometric graph. Call it before the first
// Deltas — the model patches its own copy as rounds advance.
func (m *Waypoint) Topology() *multihop.Topology { return m.topo }

// cellIndex maps a position to its grid cell.
func (m *Waypoint) cellIndex(x, y float64) int {
	cx := int(x / m.cellSize)
	if cx >= m.gw {
		cx = m.gw - 1
	}
	cy := int(y / m.cellSize)
	if cy >= m.gw {
		cy = m.gw - 1
	}
	return cy*m.gw + cx
}

// inRange reports whether nodes i and j sit within the connection radius
// (squared comparison; the model's own consistent link predicate).
func (m *Waypoint) inRange(i, j int) bool {
	dx, dy := m.x[i]-m.x[j], m.y[i]-m.y[j]
	return dx*dx+dy*dy <= m.radius*m.radius
}

// gatherNeighbors fills m.cand with every node in range of i, ascending,
// by scanning i's 3×3 cell neighborhood.
func (m *Waypoint) gatherNeighbors(i int) {
	m.cand = m.cand[:0]
	cy, cx := m.cellOf[i]/m.gw, m.cellOf[i]%m.gw
	for yy := cy - 1; yy <= cy+1; yy++ {
		if yy < 0 || yy >= m.gw {
			continue
		}
		for xx := cx - 1; xx <= cx+1; xx++ {
			if xx < 0 || xx >= m.gw {
				continue
			}
			for _, j := range m.cells[yy*m.gw+xx] {
				if j != i && m.inRange(i, j) {
					m.cand = append(m.cand, j)
				}
			}
		}
	}
	// Cell membership order is arbitrary (swap-removes); restore the
	// ascending order diffs and the topology invariant need. Local
	// neighborhoods are small, so insertion sort beats the libraries.
	for a := 1; a < len(m.cand); a++ {
		for b := a; b > 0 && m.cand[b-1] > m.cand[b]; b-- {
			m.cand[b-1], m.cand[b] = m.cand[b], m.cand[b-1]
		}
	}
}

// stepNode advances node i toward its waypoint, drawing a fresh one on
// arrival, and updates its grid cell.
func (m *Waypoint) stepNode(i int) {
	dx, dy := m.wx[i]-m.x[i], m.wy[i]-m.y[i]
	d := math.Sqrt(dx*dx + dy*dy)
	if d <= m.speed {
		m.x[i], m.y[i] = m.wx[i], m.wy[i]
		m.wx[i], m.wy[i] = m.r.Float64(), m.r.Float64()
	} else {
		m.x[i] += dx / d * m.speed
		m.y[i] += dy / d * m.speed
	}
	if c := m.cellIndex(m.x[i], m.y[i]); c != m.cellOf[i] {
		old := m.cells[m.cellOf[i]]
		for k, j := range old {
			if j == i {
				old[k] = old[len(old)-1]
				m.cells[m.cellOf[i]] = old[:len(old)-1]
				break
			}
		}
		m.cells[c] = append(m.cells[c], i)
		m.cellOf[i] = c
	}
}

// diffNode compares node i's post-move neighborhood with its current
// adjacency and emits the delta edges. An edge between two movers is
// emitted by the lower-indexed one only — both compute the same verdict,
// so the guard is pure deduplication.
func (m *Waypoint) diffNode(i int) {
	m.gatherNeighbors(i)
	old := m.topo.Neighbors(i)
	cand := m.cand
	oi, ci := 0, 0
	for oi < len(old) || ci < len(cand) {
		var j int
		var inOld, inNew bool
		switch {
		case oi == len(old):
			j, inNew = cand[ci], true
			ci++
		case ci == len(cand):
			j, inOld = old[oi], true
			oi++
		case old[oi] == cand[ci]:
			oi, ci = oi+1, ci+1
			continue
		case old[oi] < cand[ci]:
			j, inOld = old[oi], true
			oi++
		default:
			j, inNew = cand[ci], true
			ci++
		}
		if m.movedFlag[j] && j < i {
			continue // the other mover already emitted this edge
		}
		e := multihop.Edge{A: i, B: j}
		if j < i {
			e = multihop.Edge{A: j, B: i}
		}
		if inOld && !inNew {
			m.remove = append(m.remove, e)
		} else if inNew && !inOld {
			m.add = append(m.add, e)
		}
	}
}

// Deltas implements multihop.ChurnModel: move this round's mover quota,
// re-derive only their neighborhoods, and patch the model's own topology
// with the same deltas it hands the engine.
func (m *Waypoint) Deltas(r uint64) (add, remove []multihop.Edge) {
	m.add, m.remove = m.add[:0], m.remove[:0]
	m.moved = m.moved[:0]
	for j := 0; j < m.movers; j++ {
		i := m.next
		if m.next++; m.next == m.n {
			m.next = 0
		}
		m.stepNode(i)
		m.movedFlag[i] = true
		m.moved = append(m.moved, i)
	}
	for _, i := range m.moved {
		m.diffNode(i)
	}
	for _, i := range m.moved {
		m.movedFlag[i] = false
	}
	for _, e := range m.remove {
		m.topo.DeleteEdge(e.A, e.B)
	}
	for _, e := range m.add {
		m.topo.InsertEdge(e.A, e.B)
	}
	return m.add, m.remove
}
