// Package churn models dynamic communication topologies: devices that
// move, links that flicker, networks that partition and heal, and
// adversaries that cut the weakest links. The paper's bounds assume a
// fixed graph, but its target deployments — unlicensed-band devices that
// join, fail, and relocate — do not; this package is the workload layer
// that measures how the protocols behave when the graph itself is the
// adversary (experiment family X9).
//
// Every model implements Model: it owns a round-1 topology (Topology) and
// emits per-round edge deltas (Deltas, the multihop.ChurnModel contract).
// The multihop engine applies those deltas to its private topology clone
// in place — O(delta) sorted-adjacency patches via Topology.InsertEdge
// and DeleteEdge, allocation-free at steady state — and swaps the result
// into the medium resolver with SetGraph. The rebuild oracle
// (multihop.Config.ChurnRebuild) instead reconstructs the graph from
// scratch every churned round; TestChurnDeltaMatchesRebuild pins the two
// paths byte-identical across randomized mobility traces, which is the
// family's headline correctness invariant.
//
// The gallery:
//
//   - Waypoint: random-waypoint motion over a geometric graph. Nodes walk
//     toward uniformly drawn waypoints at a fixed speed; links exist
//     below the connection radius. A spatial grid plus a movers-per-round
//     budget keeps each step O(movers · local density), which is what
//     holds N=4096 mobile sweeps inside the -full tier's wall-clock
//     budget.
//   - Flip: i.i.d. per-round link flips — every edge of the base graph
//     independently toggles presence at a configurable rate. Degree never
//     exceeds the base graph's, so churned rounds stay on the engines'
//     zero-alloc path (TestSteadyStateAllocs covers a flipped round).
//   - Partition: a deterministic partition-and-heal schedule — the edges
//     crossing the index bipartition vanish for the last Down rounds of
//     every Period-round cycle, then heal at once.
//   - TargetedCut: adversarially targeted link cuts aimed at the current
//     minimum cut — bridges (the size-1 cuts) first, then the edges of
//     the minimum-degree vertex (whose degree upper-bounds the global
//     min-cut); cut links heal after a fixed outage.
//   - Compose: layered union of models. An edge is up iff any layer holds
//     it, so independent hazards (mobility plus a saboteur, flips plus
//     partitions) stack without coordinating.
//
// MaskFlip is the rendezvous-side sibling: it churns the parties'
// per-channel masks through the rendezvous engine's MaskModel hook, which
// drives the same SetGraph swap path on the game graph.
//
// All models are deterministic in their seed and construction arguments,
// and a model instance drives exactly one run — trials construct fresh
// instances from per-trial seeds, preserving the harness's
// parallelism-independence guarantee.
package churn
