package churn

import (
	"sort"

	"wsync/internal/multihop"
)

// Model is a churn workload: a round-1 topology plus the per-round edge
// deltas that evolve it (the multihop.ChurnModel contract). Use both
// halves of the same instance together:
//
//	m := churn.NewFlip(multihop.Grid(8, 8), 0.05, seed)
//	cfg := multihop.Config{Topology: m.Topology(), Churn: m, ...}
//
// A model instance drives exactly one run; construct a fresh instance per
// trial from the trial's seed.
type Model interface {
	multihop.ChurnModel
	// Topology returns the model's round-1 graph. The engine clones it,
	// so the model's own copy (where it keeps one) stays authoritative
	// for computing later deltas.
	Topology() *multihop.Topology
}

// sortEdges orders normalized edges lexicographically — the deterministic
// emission order models use when deltas are collected out of order.
func sortEdges(edges []multihop.Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
}

// edgeKey packs a normalized undirected edge into a comparable key.
func edgeKey(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// keyEdge unpacks edgeKey.
func keyEdge(key uint64) multihop.Edge {
	return multihop.Edge{A: int(key >> 32), B: int(key & (1<<32 - 1))}
}
