package churn

import (
	"fmt"
	"testing"

	"wsync/internal/msg"
	"wsync/internal/multihop"
	"wsync/internal/rendezvous"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

// churnAgent takes random actions, synchronizes after a drawn number of
// receptions, and logs everything it hears — a pure function of its rng
// stream and deliveries, so identical deliveries imply identical runs.
type churnAgent struct {
	r      *rng.Rand
	f      int
	needed int
	leader bool
	heard  []uint64
}

func newChurnAgent(r *rng.Rand, f int) *churnAgent {
	return &churnAgent{r: r, f: f, needed: 1 + r.Intn(4), leader: r.Bool()}
}

func (a *churnAgent) Step(local uint64) sim.Action {
	freq := 1 + a.r.Intn(a.f)
	if a.r.Bool() {
		return sim.Action{Freq: freq, Transmit: true,
			Msg: msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{Age: local, UID: a.r.Uint64() % 1024}}}
	}
	return sim.Action{Freq: freq}
}

func (a *churnAgent) Deliver(m msg.Message) { a.heard = append(a.heard, m.TS.UID) }

func (a *churnAgent) Output() sim.Output {
	if len(a.heard) >= a.needed {
		return sim.Output{Value: uint64(len(a.heard)), Synced: true}
	}
	return sim.Output{}
}

func (a *churnAgent) IsLeader() bool { return a.leader }

// recordingModel forwards a Model's deltas while folding them into its
// own edge-set oracle, re-checking the strict delta contract with test
// context. After a run the set is the evolved graph, independently
// derived on the delta and rebuild runs and compared between them.
type recordingModel struct {
	t     *testing.T
	inner Model
	set   map[uint64]struct{}
}

func newRecording(t *testing.T, inner Model) *recordingModel {
	set := make(map[uint64]struct{})
	for _, e := range inner.Topology().AppendEdges(nil) {
		set[edgeKey(e.A, e.B)] = struct{}{}
	}
	return &recordingModel{t: t, inner: inner, set: set}
}

func (m *recordingModel) Deltas(r uint64) (add, remove []multihop.Edge) {
	add, remove = m.inner.Deltas(r)
	for _, e := range remove {
		key := edgeKey(e.A, e.B)
		if _, ok := m.set[key]; !ok {
			m.t.Fatalf("round %d: model removed absent edge (%d, %d)", r, e.A, e.B)
		}
		delete(m.set, key)
	}
	for _, e := range add {
		key := edgeKey(e.A, e.B)
		if _, ok := m.set[key]; ok {
			m.t.Fatalf("round %d: model added present edge (%d, %d)", r, e.A, e.B)
		}
		m.set[key] = struct{}{}
	}
	return add, remove
}

// runChurned executes one churned run and returns the Result, every
// node's reception log, and the independently folded final edge set.
func runChurned(t *testing.T, mk func() Model, f int, seed, maxRounds uint64, runToMax, rebuild bool) (*multihop.Result, [][]uint64, map[uint64]struct{}) {
	t.Helper()
	model := mk()
	rec := newRecording(t, model)
	topo := model.Topology()
	agents := make([]*churnAgent, topo.N())
	res, err := multihop.Run(&multihop.Config{
		F:        f,
		Seed:     seed,
		Topology: topo,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			a := newChurnAgent(r, f)
			agents[id] = a
			return a
		},
		MaxRounds:    maxRounds,
		RunToMax:     runToMax,
		Churn:        rec,
		ChurnRebuild: rebuild,
	})
	if err != nil {
		t.Fatal(err)
	}
	heard := make([][]uint64, len(agents))
	for i, a := range agents {
		if a != nil {
			heard[i] = a.heard
		}
	}
	return res, heard, rec.set
}

// diffChurn describes the first divergence between the two runs, or "".
func diffChurn(a, b *multihop.Result, heardA, heardB [][]uint64, setA, setB map[uint64]struct{}) string {
	switch {
	case a.Rounds != b.Rounds:
		return fmt.Sprintf("Rounds %d vs %d", a.Rounds, b.Rounds)
	case a.NodeRounds != b.NodeRounds:
		return fmt.Sprintf("NodeRounds %d vs %d", a.NodeRounds, b.NodeRounds)
	case a.AllSynced != b.AllSynced:
		return fmt.Sprintf("AllSynced %v vs %v", a.AllSynced, b.AllSynced)
	case a.Leaders != b.Leaders:
		return fmt.Sprintf("Leaders %d vs %d", a.Leaders, b.Leaders)
	case a.Deliveries != b.Deliveries:
		return fmt.Sprintf("Deliveries %d vs %d", a.Deliveries, b.Deliveries)
	case a.Collisions != b.Collisions:
		return fmt.Sprintf("Collisions %d vs %d", a.Collisions, b.Collisions)
	case a.HitMaxRounds != b.HitMaxRounds:
		return fmt.Sprintf("HitMaxRounds %v vs %v", a.HitMaxRounds, b.HitMaxRounds)
	case a.ChurnRounds != b.ChurnRounds:
		return fmt.Sprintf("ChurnRounds %d vs %d", a.ChurnRounds, b.ChurnRounds)
	case a.ChurnEdges != b.ChurnEdges:
		return fmt.Sprintf("ChurnEdges %d vs %d", a.ChurnEdges, b.ChurnEdges)
	case len(setA) != len(setB):
		return fmt.Sprintf("final edge count %d vs %d", len(setA), len(setB))
	}
	for i := range a.SyncRound {
		if a.SyncRound[i] != b.SyncRound[i] {
			return fmt.Sprintf("SyncRound[%d] %d vs %d", i, a.SyncRound[i], b.SyncRound[i])
		}
	}
	for key := range setA {
		if _, ok := setB[key]; !ok {
			e := keyEdge(key)
			return fmt.Sprintf("final edge (%d, %d) only in delta run", e.A, e.B)
		}
	}
	for i := range heardA {
		if len(heardA[i]) != len(heardB[i]) {
			return fmt.Sprintf("node %d heard %d vs %d messages", i, len(heardA[i]), len(heardB[i]))
		}
		for j := range heardA[i] {
			if heardA[i][j] != heardB[i][j] {
				return fmt.Sprintf("node %d reception %d: uid %d vs %d", i, j, heardA[i][j], heardB[i][j])
			}
		}
	}
	return ""
}

// drawCase picks a randomized churn workload: a label and a factory that
// builds identical fresh model instances (one per run — models are
// stateful and drive exactly one run each).
func drawCase(r *rng.Rand) (string, func() Model) {
	switch r.IntRange(0, 5) {
	case 0:
		w, h := r.IntRange(2, 6), r.IntRange(2, 6)
		rate, seed := 0.02+r.Float64()*0.3, r.Uint64()
		return fmt.Sprintf("flip-grid-%dx%d", w, h),
			func() Model { return NewFlip(multihop.Grid(w, h), rate, seed) }
	case 1:
		n, radius := r.IntRange(8, 48), 0.1+r.Float64()*0.4
		rate, gseed, seed := 0.02+r.Float64()*0.3, r.Uint64(), r.Uint64()
		return fmt.Sprintf("flip-rgg-%d", n),
			func() Model { return NewFlip(multihop.RandomGeometric(n, radius, gseed), rate, seed) }
	case 2:
		n := r.IntRange(16, 160)
		radius, speed := 0.1+r.Float64()*0.3, 0.005+r.Float64()*0.05
		movers, seed := r.IntRange(0, n), r.Uint64()
		return fmt.Sprintf("waypoint-%d", n),
			func() Model { return NewWaypoint(n, radius, speed, movers, seed) }
	case 3:
		w, h := r.IntRange(2, 6), r.IntRange(2, 6)
		period := uint64(r.IntRange(4, 20))
		down := uint64(r.IntRange(1, int(period)-1))
		return fmt.Sprintf("partition-grid-%dx%d", w, h),
			func() Model { return NewPartition(multihop.Grid(w, h), period, down) }
	case 4:
		n, radius, gseed := r.IntRange(8, 48), 0.2+r.Float64()*0.3, r.Uint64()
		budget := r.IntRange(1, 4)
		every, heal := uint64(r.IntRange(1, 6)), uint64(r.IntRange(1, 8))
		return fmt.Sprintf("targeted-rgg-%d", n),
			func() Model { return NewTargetedCut(multihop.RandomGeometric(n, radius, gseed), budget, every, heal) }
	default:
		w, h := r.IntRange(2, 5), r.IntRange(2, 5)
		rate, fseed := 0.02+r.Float64()*0.3, r.Uint64()
		period := uint64(r.IntRange(4, 16))
		down := uint64(r.IntRange(1, int(period)-1))
		return fmt.Sprintf("compose-grid-%dx%d", w, h),
			func() Model {
				base := multihop.Grid(w, h)
				return NewCompose(NewFlip(base, rate, fseed), NewPartition(base, period, down))
			}
	}
}

// TestChurnDeltaMatchesRebuild is the family's headline invariant: a
// churned run must be byte-identical whether the engine evolves the graph
// via in-place delta mutations or rebuilds it from scratch every churned
// round. Randomized mobility traces, seeds, and model kinds; the heavy
// subcase pushes a waypoint sweep to N=1024.
func TestChurnDeltaMatchesRebuild(t *testing.T) {
	master := rng.New(0x6368)
	cases := 40
	if testing.Short() {
		cases = 12
	}
	var churned uint64
	for c := 0; c < cases; c++ {
		r := master.Split(uint64(c))
		label, mk := drawCase(r)
		f := r.IntRange(2, 12)
		seed := r.Uint64()
		maxRounds := uint64(r.IntRange(40, 120))
		runToMax := r.Bool()
		deltaRes, deltaHeard, deltaSet := runChurned(t, mk, f, seed, maxRounds, runToMax, false)
		rebRes, rebHeard, rebSet := runChurned(t, mk, f, seed, maxRounds, runToMax, true)
		if d := diffChurn(deltaRes, rebRes, deltaHeard, rebHeard, deltaSet, rebSet); d != "" {
			t.Fatalf("case %d (%s F=%d rounds=%d): delta vs rebuild divergence: %s",
				c, label, f, maxRounds, d)
		}
		churned += deltaRes.ChurnRounds
	}
	if churned == 0 {
		t.Fatal("no case churned a single round; the differential ran vacuously")
	}
	if testing.Short() {
		return
	}
	mk := func() Model { return NewWaypoint(1024, 0.06, 0.01, 128, 0xbeef) }
	deltaRes, deltaHeard, deltaSet := runChurned(t, mk, 8, 0xfeed, 60, true, false)
	rebRes, rebHeard, rebSet := runChurned(t, mk, 8, 0xfeed, 60, true, true)
	if d := diffChurn(deltaRes, rebRes, deltaHeard, rebHeard, deltaSet, rebSet); d != "" {
		t.Fatalf("waypoint-1024: delta vs rebuild divergence: %s", d)
	}
	if deltaRes.ChurnRounds == 0 {
		t.Fatal("waypoint-1024 never churned")
	}
}

// TestFlipRateOneTogglesEverything pins Flip's semantics at the boundary:
// rate 1 removes every edge in round 2, restores every edge in round 3.
func TestFlipRateOneTogglesEverything(t *testing.T) {
	base := multihop.Grid(3, 3)
	m := NewFlip(base, 1, 7)
	add, remove := m.Deltas(2)
	if len(add) != 0 || len(remove) != base.EdgeCount() {
		t.Fatalf("round 2: add=%d remove=%d, want 0/%d", len(add), len(remove), base.EdgeCount())
	}
	add, remove = m.Deltas(3)
	if len(add) != base.EdgeCount() || len(remove) != 0 {
		t.Fatalf("round 3: add=%d remove=%d, want %d/0", len(add), len(remove), base.EdgeCount())
	}
}

// TestPartitionSchedule checks the cut opens exactly for the last down
// rounds of each period and replays the precomputed crossing set.
func TestPartitionSchedule(t *testing.T) {
	base := multihop.Grid(4, 4)
	m := NewPartition(base, 6, 2)
	if m.CrossingEdges() == 0 {
		t.Fatal("grid bipartition severed no edges")
	}
	cut := false
	for r := uint64(2); r <= 20; r++ {
		add, remove := m.Deltas(r)
		wantCut := (r-1)%6 >= 4
		switch {
		case wantCut && !cut:
			if len(remove) != m.CrossingEdges() || len(add) != 0 {
				t.Fatalf("round %d: expected full cut, got add=%d remove=%d", r, len(add), len(remove))
			}
			cut = true
		case !wantCut && cut:
			if len(add) != m.CrossingEdges() || len(remove) != 0 {
				t.Fatalf("round %d: expected full heal, got add=%d remove=%d", r, len(add), len(remove))
			}
			cut = false
		default:
			if len(add) != 0 || len(remove) != 0 {
				t.Fatalf("round %d: expected quiet round, got add=%d remove=%d", r, len(add), len(remove))
			}
		}
	}
	if !cut && (uint64(20)-1)%6 >= 4 {
		t.Fatal("schedule state diverged from oracle")
	}
}

// TestWaypointMatchesBruteForce cross-checks the grid-accelerated
// incremental diff against a brute-force O(n²) recomputation of the
// geometric graph from the model's own positions, every round.
func TestWaypointMatchesBruteForce(t *testing.T) {
	m := NewWaypoint(64, 0.25, 0.03, 17, 42)
	check := func(r uint64) {
		for i := 0; i < m.n; i++ {
			for j := i + 1; j < m.n; j++ {
				want := m.inRange(i, j)
				if got := m.topo.HasEdge(i, j); got != want {
					t.Fatalf("round %d: edge (%d, %d) present=%v, geometry says %v", r, i, j, got, want)
				}
			}
		}
	}
	check(1)
	for r := uint64(2); r <= 50; r++ {
		m.Deltas(r)
		check(r)
	}
}

// TestTargetedCutStrikesBridge builds a barbell — two triangles joined by
// one bridge — and checks the first strike severs exactly the bridge and
// the heal restores it on schedule.
func TestTargetedCutStrikesBridge(t *testing.T) {
	// Nodes 0-2 and 3-5 are triangles; (2,3) is the bridge.
	base := multihop.NewTopologyFromEdges(6, []multihop.Edge{
		{A: 0, B: 1}, {A: 0, B: 2}, {A: 1, B: 2},
		{A: 3, B: 4}, {A: 3, B: 5}, {A: 4, B: 5},
		{A: 2, B: 3},
	})
	m := NewTargetedCut(base, 1, 10, 3)
	add, remove := m.Deltas(2)
	if len(add) != 0 || len(remove) != 1 || (remove[0] != multihop.Edge{A: 2, B: 3}) {
		t.Fatalf("first strike: add=%v remove=%v, want the (2, 3) bridge cut", add, remove)
	}
	for r := uint64(3); r <= 4; r++ {
		if add, remove = m.Deltas(r); len(add) != 0 || len(remove) != 0 {
			t.Fatalf("round %d: outage should be quiet, got add=%v remove=%v", r, add, remove)
		}
	}
	add, remove = m.Deltas(5)
	if len(remove) != 0 || len(add) != 1 || (add[0] != multihop.Edge{A: 2, B: 3}) {
		t.Fatalf("heal round: add=%v remove=%v, want the (2, 3) bridge back", add, remove)
	}
}

// TestTargetedCutMinDegreeFallback checks that on a bridgeless graph the
// budget lands on the minimum-degree vertex's edges, lowest neighbor
// first.
func TestTargetedCutMinDegreeFallback(t *testing.T) {
	// A 4-cycle plus a chord at (0,2): vertices 1 and 3 have degree 2,
	// vertex 1 is the lowest-index minimum; no bridges anywhere.
	base := multihop.NewTopologyFromEdges(4, []multihop.Edge{
		{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3}, {A: 0, B: 3}, {A: 0, B: 2},
	})
	m := NewTargetedCut(base, 2, 10, 5)
	add, remove := m.Deltas(2)
	if len(add) != 0 {
		t.Fatalf("first strike healed %v", add)
	}
	want := []multihop.Edge{{A: 0, B: 1}, {A: 1, B: 2}}
	if len(remove) != 2 || remove[0] != want[0] || remove[1] != want[1] {
		t.Fatalf("first strike removed %v, want %v (vertex 1's edges, lowest neighbor first)", remove, want)
	}
}

// TestComposeRefcounts checks layered-union semantics: an edge held by
// two layers survives one layer dropping it and vanishes only when the
// last holder lets go.
func TestComposeRefcounts(t *testing.T) {
	base := multihop.Grid(2, 2)
	// Rate-1 flips toggle every base edge every round, in lockstep across
	// both layers: counts go 2 -> 0 -> 2, so the union deltas match a
	// single layer's.
	c := NewCompose(NewFlip(base, 1, 1), NewFlip(base, 1, 2))
	if got := c.Topology().EdgeCount(); got != base.EdgeCount() {
		t.Fatalf("union of identical layers has %d edges, want %d", got, base.EdgeCount())
	}
	add, remove := c.Deltas(2)
	if len(add) != 0 || len(remove) != base.EdgeCount() {
		t.Fatalf("round 2: add=%d remove=%d, want 0/%d", len(add), len(remove), base.EdgeCount())
	}
	add, remove = c.Deltas(3)
	if len(add) != base.EdgeCount() || len(remove) != 0 {
		t.Fatalf("round 3: add=%d remove=%d, want %d/0", len(add), len(remove), base.EdgeCount())
	}
	// Desynchronize the layers: now one layer always holds every edge, so
	// the union never changes.
	c2 := NewCompose(NewFlip(base, 1, 1), NewFlip(base, 0, 2))
	for r := uint64(2); r <= 6; r++ {
		if a, rm := c2.Deltas(r); len(a) != 0 || len(rm) != 0 {
			t.Fatalf("round %d: union changed (add=%d remove=%d) while one layer holds everything", r, len(a), len(rm))
		}
	}
}

// TestMaskFlipDrivesGame runs a rendezvous game under mask churn end to
// end: the flickering masks delay but do not prevent the meeting.
func TestMaskFlipDrivesGame(t *testing.T) {
	res, err := rendezvous.Run(&rendezvous.Config{
		F: 4,
		Parties: []rendezvous.Party{
			{Strategy: rendezvous.Uniform{M: 4, P: 0.5}},
			{Strategy: rendezvous.Uniform{M: 4, P: 0.5}},
		},
		Masks:     NewMaskFlip(2, 4, 0.3, 5),
		MaxRounds: 5000,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AllMet == 0 {
		t.Fatalf("mask-churned game never met: %+v", res)
	}
}

// TestMaskFlipTogglesSlots pins MaskFlip at rate 1: every slot blocks in
// round 2 and unblocks in round 3, in (party, channel) order.
func TestMaskFlipTogglesSlots(t *testing.T) {
	m := NewMaskFlip(2, 3, 1, 9)
	block, unblock := m.MaskDeltas(2)
	if len(unblock) != 0 || len(block) != 6 {
		t.Fatalf("round 2: block=%d unblock=%d, want 6/0", len(block), len(unblock))
	}
	if block[0] != [2]int{0, 1} || block[5] != [2]int{1, 3} {
		t.Fatalf("round 2 block order %v", block)
	}
	block, unblock = m.MaskDeltas(3)
	if len(block) != 0 || len(unblock) != 6 {
		t.Fatalf("round 3: block=%d unblock=%d, want 0/6", len(block), len(unblock))
	}
}
