package churn

import (
	"fmt"

	"wsync/internal/multihop"
)

// Partition is a deterministic partition-and-heal schedule: the network
// splits into its two index halves (node < n/2 vs the rest) for the last
// Down rounds of every Period-round cycle, then heals in one round. All
// edges crossing the bipartition vanish together — the worst-case outage
// for a protocol whose numbering must span the whole component — and the
// deltas are the precomputed crossing set replayed in both directions, so
// churned rounds stay allocation-free.
type Partition struct {
	base   *multihop.Topology
	period uint64
	down   uint64
	cross  []multihop.Edge
	cut    bool
}

var _ Model = (*Partition)(nil)

// NewPartition builds the schedule: every period rounds, the bipartition
// cut opens for the final down rounds of the cycle (cycles start at round
// 1, so the first outage begins at round period−down+1).
func NewPartition(base *multihop.Topology, period, down uint64) *Partition {
	if period < 2 || down < 1 || down >= period {
		panic(fmt.Sprintf("churn: partition schedule period=%d down=%d needs 1 <= down < period", period, down))
	}
	half := base.N() / 2
	var cross []multihop.Edge
	for _, e := range base.AppendEdges(nil) {
		if (e.A < half) != (e.B < half) {
			cross = append(cross, e)
		}
	}
	return &Partition{base: base, period: period, down: down, cross: cross}
}

// Topology returns the round-1 graph (healed).
func (m *Partition) Topology() *multihop.Topology { return m.base }

// CrossingEdges returns the number of edges the outage severs.
func (m *Partition) CrossingEdges() int { return len(m.cross) }

// Deltas implements multihop.ChurnModel.
func (m *Partition) Deltas(r uint64) (add, remove []multihop.Edge) {
	want := (r-1)%m.period >= m.period-m.down
	switch {
	case want && !m.cut:
		m.cut = true
		return nil, m.cross
	case !want && m.cut:
		m.cut = false
		return m.cross, nil
	}
	return nil, nil
}
