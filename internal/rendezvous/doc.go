// Package rendezvous hosts whitespace-style rendezvous games on the shared
// frequency-indexed medium resolver (internal/medium).
//
// The setting is the one of "Optimal whitespace synchronization strategies"
// (Azar et al.) and the energy-constrained regime of "Near-Optimal Radio
// Use For Wireless Network Synchronization" (Bradonjić–Kohler–Ostrovsky):
// k parties must meet on a common channel of a band [1..F] on which an
// adversary blocks channels, statically (a whitespace availability map) or
// per round (a churning jammer). A meeting is a clean radio event — one
// party transmits, another listens, same channel, no interference — so the
// game runs on the same medium resolution the synchronization engines use
// rather than on a private loop.
//
// The pieces:
//
//   - Strategy decides one party's (channel, transmit?) choice per local
//     round. The gallery covers uniform spreading at a chosen width
//     (Uniform, with the Azar-optimal width min(F, 2t) via OptimalWidth),
//     stay/ramble block strategies (StayRamble), deterministic hop
//     sequences (Oblivious), and per-party channel-availability relabeling
//     (Restricted). Strategies that can report their per-round marginal
//     distribution implement Profiled; product-form jammers need it.
//     lowerbound.StrategyFromRegular adapts any lowerbound.Regular
//     schedule, so the paper's protocols play unchanged.
//
//   - Jammer picks the blocked channels each round: Static sets, the
//     Theorem 4 greedy product jammer (Greedy), and Churn, which reuses
//     the whole internal/adversary gallery by replaying the previous
//     round's party actions to the adversary as history.
//
// The engine (Run) expresses all blocking through the medium.Graph
// interface instead of special-casing it: blocked channels become
// transmissions by virtual jammer nodes, and per-party masks become graph
// adjacency — a mask node neighbors only the party it blocks, a global
// jammer node neighbors every party. A listener on a blocked channel then
// observes a collision through the ordinary Resolver.Receive intersection,
// and the rendezvous medium is literally "one more Graph" over the
// resolver, not a new engine.
//
// lowerbound.TwoNodeGame is this engine with two parties and the greedy
// jammer; the pre-engine loop survives as lowerbound.TwoNodeGameScan, the
// differential oracle (TestRendezvousMatchesTwoNodeGame pins bit-for-bit
// equality of meeting rounds).
package rendezvous
