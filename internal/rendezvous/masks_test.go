package rendezvous

import (
	"strings"
	"testing"
)

// scriptedMasks replays a fixed per-round delta script (nil entries are
// quiet rounds) — the deterministic harness for the dynamic-mask path.
type scriptedMasks struct {
	script map[uint64][2][][2]int // round -> {block, unblock}
}

func (m *scriptedMasks) MaskDeltas(r uint64) (block, unblock [][2]int) {
	d := m.script[r]
	return d[0], d[1]
}

// TestDynamicMasksConstantMatchesStatic pins the dynamic path against the
// static one: blocking a fixed (party, channel) set at round 2 while the
// parties wake at round 2 must reproduce the static Party.Mask game
// byte for byte — same graph semantics, different machinery.
func TestDynamicMasksConstantMatchesStatic(t *testing.T) {
	const f = 5
	masks := [][]int{{1, 2}, {4}}
	var block [][2]int
	for p, chans := range masks {
		for _, ch := range chans {
			block = append(block, [2]int{p, ch})
		}
	}
	for seed := uint64(1); seed <= 8; seed++ {
		static, err := Run(&Config{
			F: f,
			Parties: []Party{
				{Strategy: Uniform{M: f, P: 0.5}, Wake: 2, Mask: masks[0]},
				{Strategy: Uniform{M: f, P: 0.5}, Wake: 2, Mask: masks[1]},
			},
			MaxRounds: 400,
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		dynamic, err := Run(&Config{
			F: f,
			Parties: []Party{
				{Strategy: Uniform{M: f, P: 0.5}, Wake: 2},
				{Strategy: Uniform{M: f, P: 0.5}, Wake: 2},
			},
			Masks:     &scriptedMasks{script: map[uint64][2][][2]int{2: {block, nil}}},
			MaxRounds: 400,
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if *static != *dynamic {
			t.Fatalf("seed %d: static %+v vs dynamic %+v", seed, static, dynamic)
		}
	}
}

// TestDynamicMasksBlockAllStarves blocks every channel for every party
// from round 2 on (parties wake at round 2): no clean reception can ever
// happen, so the game runs to MaxRounds without a meeting.
func TestDynamicMasksBlockAllStarves(t *testing.T) {
	const f, k = 3, 2
	var block [][2]int
	for p := 0; p < k; p++ {
		for ch := 1; ch <= f; ch++ {
			block = append(block, [2]int{p, ch})
		}
	}
	res, err := Run(&Config{
		F: f,
		Parties: []Party{
			{Strategy: Uniform{M: f, P: 0.5}, Wake: 2},
			{Strategy: Uniform{M: f, P: 0.5}, Wake: 2},
		},
		Masks:     &scriptedMasks{script: map[uint64][2][][2]int{2: {block, nil}}},
		MaxRounds: 200,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstMeet != 0 || res.AllMet != 0 || res.Meetings != 0 {
		t.Fatalf("fully masked game still met: %+v", res)
	}
	if res.Rounds != 200 {
		t.Fatalf("fully masked game stopped early at round %d", res.Rounds)
	}
}

// TestDynamicMasksChurn toggles one slot on and off across rounds — the
// add/remove/re-add path through repeated SetGraph swaps — and expects a
// clean finish.
func TestDynamicMasksChurn(t *testing.T) {
	res, err := Run(&Config{
		F: 3,
		Parties: []Party{
			{Strategy: Uniform{M: 3, P: 0.5}},
			{Strategy: Uniform{M: 3, P: 0.5}},
		},
		Masks: &scriptedMasks{script: map[uint64][2][][2]int{
			2: {[][2]int{{0, 1}}, nil},
			3: {nil, [][2]int{{0, 1}}},
			4: {[][2]int{{0, 1}, {1, 2}}, nil},
			6: {nil, [][2]int{{1, 2}}},
		}},
		MaxRounds: 500,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AllMet == 0 {
		t.Fatalf("briefly masked game never met: %+v", res)
	}
}

// TestDynamicMaskErrors drives every validation branch of the delta
// applier.
func TestDynamicMaskErrors(t *testing.T) {
	cases := []struct {
		name   string
		script map[uint64][2][][2]int
		want   string
	}{
		{"party-negative", map[uint64][2][][2]int{2: {[][2]int{{-1, 1}}, nil}}, "party -1"},
		{"party-high", map[uint64][2][][2]int{2: {[][2]int{{2, 1}}, nil}}, "party 2"},
		{"channel-zero", map[uint64][2][][2]int{2: {[][2]int{{0, 0}}, nil}}, "channel 0"},
		{"channel-high", map[uint64][2][][2]int{2: {[][2]int{{0, 4}}, nil}}, "channel 4"},
		{"double-block", map[uint64][2][][2]int{
			2: {[][2]int{{0, 1}}, nil},
			3: {[][2]int{{0, 1}}, nil},
		}, "twice"},
		{"unblock-unblocked", map[uint64][2][][2]int{2: {nil, [][2]int{{0, 1}}}}, "not blocked"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// P = 1 keeps both parties transmitting, so the game cannot
			// meet and stop before the scripted round fires.
			_, err := Run(&Config{
				F: 3,
				Parties: []Party{
					{Strategy: Uniform{M: 3, P: 1}},
					{Strategy: Uniform{M: 3, P: 1}},
				},
				Masks:     &scriptedMasks{script: tc.script},
				MaxRounds: 10,
				Seed:      1,
			})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}
