package rendezvous

import (
	"fmt"

	"wsync/internal/freqset"
	"wsync/internal/sim"
)

// Round is the read-only per-round view the engine hands to jammers before
// the parties act.
type Round struct {
	// Global is the 1-based global round about to be played.
	Global uint64
	// F is the band size.
	F int
	// Locals[p] is party p's local round this round; 0 while p is asleep.
	Locals []uint64
	// Strategies[p] is party p's strategy (jamming strategies from the
	// Theorem 4 proof inspect the parties' distributions through Profiled).
	Strategies []Strategy
	// Last holds the previous round's party actions (asleep parties have
	// Freq 0); nil before the first round completes.
	Last []Action
}

// Action records one party's choice in a completed round.
type Action struct {
	Freq     int
	Transmit bool
}

// Jammer chooses the globally blocked channels each round. Block is called
// once per round, before party actions are drawn; nil means no channel is
// blocked. The returned set is read during the round only and may be
// reused across calls.
type Jammer interface {
	Block(rd *Round) *freqset.Set
}

// Static blocks the same channel set every round — a whitespace
// availability map shared by all parties.
type Static struct {
	set *freqset.Set
}

var _ Jammer = (*Static)(nil)

// NewStatic returns a jammer that always blocks the given channels (each
// in [1..f]).
func NewStatic(f int, freqs []int) *Static {
	return &Static{set: freqset.FromSlice(f, freqs)}
}

// NewPrefix returns the static jammer blocking channels 1..t. On parties
// playing equal-width uniform strategies it coincides with Greedy, which
// breaks its product ties toward low channels.
func NewPrefix(f, t int) *Static {
	freqs := make([]int, t)
	for i := range freqs {
		freqs[i] = i + 1
	}
	return NewStatic(f, freqs)
}

// Block returns the fixed set.
func (s *Static) Block(*Round) *freqset.Set { return s.set }

// Greedy is the Theorem 4 product jammer generalized to k parties: each
// round it blocks the T channels with the largest product Π_p p_p(j) of
// the awake parties' selection probabilities, ties broken toward lower
// channels — the adversary from the Theorem 4 proof. Every party's
// strategy must implement Profiled; Block panics otherwise, as jammer and
// strategies are paired by experiment code.
type Greedy struct {
	T int

	set      *freqset.Set
	products []float64
}

var _ Jammer = (*Greedy)(nil)

// NewGreedy returns a greedy product jammer over [1..f] blocking t
// channels per round.
func NewGreedy(f, t int) *Greedy {
	return &Greedy{T: t, set: freqset.New(f), products: make([]float64, f+1)}
}

// Block recomputes the products and blocks the T largest. The selection
// replays the historical two-node scan loop exactly: products scanned
// ascending, strict improvement, stop once no candidate channel remains.
// Parties multiply into the product row in index order, so the per-channel
// float multiplication sequence — and hence the blocked set — is
// bit-identical to the channel-outer formulation the scan loop used.
func (g *Greedy) Block(rd *Round) *freqset.Set {
	g.set.Clear()
	for j := 1; j <= rd.F; j++ {
		g.products[j] = 1
	}
	for p, s := range rd.Strategies {
		if rd.Locals[p] == 0 {
			continue
		}
		prof, ok := s.(Profiled)
		if !ok {
			panic(fmt.Sprintf("rendezvous: Greedy needs Profiled strategies; party %d has %T", p, s))
		}
		local := rd.Locals[p]
		for j := 1; j <= rd.F; j++ {
			g.products[j] *= prof.Prob(local, j)
		}
	}
	for k := 0; k < g.T; k++ {
		best, bestVal := 0, -1.0
		for j := 1; j <= rd.F; j++ {
			if !g.set.Contains(j) && g.products[j] > bestVal {
				best, bestVal = j, g.products[j]
			}
		}
		if best == 0 {
			break
		}
		g.set.Add(best)
	}
	return g.set
}

// Churn adapts a sim.Adversary (the internal/adversary gallery) to the
// rendezvous band: the adversary's per-round disruption set becomes the
// blocked set. Adaptive adversaries (reactive, stalker) see a synthetic
// history carrying the previous round's party actions, so they target the
// parties' actual transmissions and listens; the virtual jam nodes are
// invisible to them.
type Churn struct {
	adv  sim.Adversary
	hist sim.History
	rec  sim.RoundRecord
}

var _ Jammer = (*Churn)(nil)

// NewChurn wraps the adversary for a band of f channels.
func NewChurn(f int, adv sim.Adversary) *Churn {
	c := &Churn{adv: adv}
	c.hist.F = f
	return c
}

// Block rebuilds the synthetic history and delegates to the adversary.
func (c *Churn) Block(rd *Round) *freqset.Set {
	if rd.Last == nil {
		c.hist.Last = nil
	} else {
		c.rec.Round = rd.Global - 1
		c.rec.Actions = c.rec.Actions[:0]
		for p, a := range rd.Last {
			if a.Freq == 0 {
				continue
			}
			c.rec.Actions = append(c.rec.Actions, sim.ActionRecord{
				Node: sim.NodeID(p), Freq: a.Freq, Transmit: a.Transmit,
			})
		}
		c.hist.Last = &c.rec
	}
	c.hist.Completed = rd.Global - 1
	return c.adv.Disrupt(rd.Global, &c.hist)
}
