package rendezvous_test

import (
	"testing"

	"wsync/internal/lowerbound"
	"wsync/internal/rendezvous"
)

// TestRendezvousMatchesTwoNodeGame is the engine's differential anchor:
// two parties with uniform regular strategies against a static prefix
// jammer must reproduce the historical two-node scan loop's meeting rounds
// bit for bit across seeds. The prefix jammer stands in for the greedy
// product jammer because equal-width uniform strategies tie every product
// and greedy breaks ties toward low channels — TestGreedyMatchesPrefixOnUniform
// pins that identity inside the package.
func TestRendezvousMatchesTwoNodeGame(t *testing.T) {
	cases := []struct {
		f, t, width int
		offset      uint64
	}{
		{4, 1, 2, 0},
		{8, 2, 4, 0},
		{8, 2, 4, 17},
		{8, 5, 8, 0},
		{16, 3, 6, 1000},
		{16, 0, 1, 0},
	}
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for _, c := range cases {
		for seed := uint64(0); seed < uint64(seeds); seed++ {
			res, err := rendezvous.Run(&rendezvous.Config{
				F: c.f,
				Parties: []rendezvous.Party{
					{Strategy: rendezvous.Uniform{M: c.width, P: 0.5}, Head: c.offset},
					{Strategy: rendezvous.Uniform{M: c.width, P: 0.5}},
				},
				Jammer:    rendezvous.NewPrefix(c.f, c.t),
				MaxRounds: 1 << 16,
				Seed:      seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			reg := lowerbound.UniformRegular{M: c.width, P: 0.5}
			want := lowerbound.TwoNodeGameScan(reg, reg, c.f, c.t, c.offset, 1<<16, seed)
			got := lowerbound.TwoNodeResult{Rounds: res.FirstMeet, Met: res.FirstMeet != 0}
			if got != want {
				t.Fatalf("F=%d t=%d width=%d offset=%d seed=%d: engine %+v, scan oracle %+v",
					c.f, c.t, c.width, c.offset, seed, got, want)
			}
		}
	}
}

// TestRegularStrategyGallery runs the engine with every Regular schedule
// adapted through StrategyFromRegular against the greedy jammer and checks
// it against the scan oracle — the full TwoNodeGame replacement contract,
// not just the uniform special case.
func TestRegularStrategyGallery(t *testing.T) {
	regs := []struct {
		name string
		reg  lowerbound.Regular
	}{
		{"uniform", lowerbound.UniformRegular{M: 4, P: 0.5}},
		{"unknown-t", lowerbound.UnknownT{F: 8, Dwell: 4}},
	}
	for _, rc := range regs {
		for seed := uint64(0); seed < 25; seed++ {
			got := lowerbound.TwoNodeGame(rc.reg, rc.reg, 8, 2, 3, 1<<16, seed)
			want := lowerbound.TwoNodeGameScan(rc.reg, rc.reg, 8, 2, 3, 1<<16, seed)
			if got != want {
				t.Fatalf("%s seed %d: engine %+v, scan %+v", rc.name, seed, got, want)
			}
		}
	}
}
