package rendezvous

import (
	"fmt"
	"sync/atomic"

	"wsync/internal/freqset"
	"wsync/internal/medium"
	"wsync/internal/rng"
)

// totalNodeRounds accumulates awake party-rounds over every completed game
// in this process; wexp samples TotalNodeRounds around each experiment to
// derive the node-rounds/s figure in the benchmark report.
var totalNodeRounds atomic.Uint64

// TotalNodeRounds returns the process-wide count of awake party-rounds
// executed by completed games. Deterministic for a deterministic workload —
// it never depends on scheduling or parallelism.
func TotalNodeRounds() uint64 { return totalNodeRounds.Load() }

// Party configures one participant of the game.
type Party struct {
	// Strategy decides the party's per-round behavior. Stateful strategies
	// must not be shared between parties.
	Strategy Strategy
	// Wake is the global round the party enters the game; 0 and 1 both
	// mean it plays from round 1.
	Wake uint64
	// Head offsets the party's local clock: the number of rounds it had
	// already been playing elsewhere when the game starts (Theorem 4's
	// activation offset). Local round at global round g is
	// Head + (g − Wake + 1).
	Head uint64
	// Mask statically blocks channels for this party alone: a reception by
	// this party on a masked channel is jammed, while other parties'
	// receptions are untouched. Expressed as per-party graph adjacency to
	// mask nodes, not as engine special cases.
	Mask []int
}

// MaskModel evolves per-party channel masks between rounds — the
// rendezvous-side dynamic-topology hook. MaskDeltas is called once per
// round from round 2 on (round 1 plays on the initial, fully unblocked
// mask state) and returns the (party, channel) pairs to block and
// unblock this round. Blocking an already-blocked pair, unblocking an
// unblocked one, or naming a party or channel out of range fails the run.
// Returned slices are only read before the next call, so models may
// reuse their buffers.
type MaskModel interface {
	MaskDeltas(r uint64) (block, unblock [][2]int)
}

// Config configures a rendezvous game.
type Config struct {
	// F is the band size (channels 1..F).
	F int
	// Parties lists the k >= 2 participants.
	Parties []Party
	// Jammer blocks channels globally each round; nil means none.
	Jammer Jammer
	// Masks churns per-party channel masks between rounds; nil means the
	// static Party.Mask sets are the whole story. Dynamic masks
	// materialize as k·F dedicated virtual transmitters whose adjacency
	// to their party toggles per round, swapped into the resolver with
	// SetGraph — the same mechanism the multihop engine uses for edge
	// churn.
	Masks MaskModel
	// MaxRounds bounds the game length.
	MaxRounds uint64
	// Seed drives all party randomness; party p's stream is
	// rng.New(Seed).Split(p+1), matching the historical two-node game.
	Seed uint64
}

// Result reports one game.
type Result struct {
	// FirstMeet is the global round of the first meeting — a clean
	// reception of one party's transmission by another party — or 0 if
	// none happened within MaxRounds.
	FirstMeet uint64
	// AllMet is the global round at which the meeting graph first
	// connected all k parties (pairwise meetings merge components), or 0.
	// For k = 2 it equals FirstMeet.
	AllMet uint64
	// Meetings counts every clean pairwise reception, including repeats.
	Meetings uint64
	// Rounds is the number of rounds simulated (the game stops at AllMet).
	Rounds uint64
	// NodeRounds counts awake party-rounds, the engine's throughput unit.
	NodeRounds uint64
}

// gameGraph is the medium.Graph the engine resolves receptions against:
// parties are mutually adjacent, each mask node neighbors only its party,
// and each global jam node neighbors every party.
type gameGraph struct {
	adj [][]int
}

func (g *gameGraph) N() int                { return len(g.adj) }
func (g *gameGraph) Neighbors(i int) []int { return g.adj[i] }

// Run plays the game. The k parties occupy node indices 0..k−1 of the
// medium; blocked channels materialize as transmissions by virtual nodes
// above k (per-party mask nodes first, then one global jam node per
// channel), so the resolver's ordinary neighborhood intersection — not
// engine special cases — decides what is jammed for whom.
func Run(cfg *Config) (*Result, error) {
	k := len(cfg.Parties)
	if cfg.F < 1 {
		return nil, fmt.Errorf("rendezvous: F = %d, need >= 1", cfg.F)
	}
	if k < 2 {
		return nil, fmt.Errorf("rendezvous: %d parties, need >= 2", k)
	}
	if cfg.MaxRounds < 1 {
		return nil, fmt.Errorf("rendezvous: MaxRounds = %d, need >= 1", cfg.MaxRounds)
	}
	for p, pt := range cfg.Parties {
		if pt.Strategy == nil {
			return nil, fmt.Errorf("rendezvous: party %d has no strategy", p)
		}
		for _, f := range pt.Mask {
			if f < 1 || f > cfg.F {
				return nil, fmt.Errorf("rendezvous: party %d masks channel %d outside [1..%d]", p, f, cfg.F)
			}
		}
	}

	// Node layout: parties, then mask nodes, then jam nodes.
	type maskNode struct{ owner, freq int }
	var masks []maskNode
	for p, pt := range cfg.Parties {
		for _, f := range pt.Mask {
			masks = append(masks, maskNode{p, f})
		}
	}
	maskBase := k
	jamBase := maskBase + len(masks)
	jamNodes := 0
	if cfg.Jammer != nil {
		jamNodes = cfg.F // one virtual transmitter per blockable channel
	}
	// Dynamic masks get one dedicated node per (party, channel) slot so a
	// block/unblock is a pure adjacency toggle, never a node re-layout.
	dynBase := jamBase + jamNodes
	dynNodes := 0
	if cfg.Masks != nil {
		dynNodes = k * cfg.F
	}
	adj := make([][]int, dynBase+dynNodes)
	for p := 0; p < k; p++ {
		for q := 0; q < k; q++ {
			if q != p {
				adj[p] = append(adj[p], q)
			}
		}
		for m, mn := range masks {
			if mn.owner == p {
				adj[p] = append(adj[p], maskBase+m)
			}
		}
		for j := 0; j < jamNodes; j++ {
			adj[p] = append(adj[p], jamBase+j)
		}
	}
	for m, mn := range masks {
		adj[maskBase+m] = []int{mn.owner}
	}
	if jamNodes > 0 {
		// Every jam node neighbors exactly the parties; share one slice.
		parties := make([]int, k)
		for p := range parties {
			parties[p] = p
		}
		for j := 0; j < jamNodes; j++ {
			adj[jamBase+j] = parties
		}
	}
	graph := &gameGraph{adj: adj}
	res := medium.NewResolver(cfg.F, len(adj), graph)
	var dynBlocked []bool
	if dynNodes > 0 {
		dynBlocked = make([]bool, dynNodes)
	}

	wakes := make([]uint64, k)
	strategies := make([]Strategy, k)
	rands := make([]*rng.Rand, k)
	root := rng.New(cfg.Seed)
	for p, pt := range cfg.Parties {
		wakes[p] = pt.Wake
		if wakes[p] == 0 {
			wakes[p] = 1
		}
		strategies[p] = pt.Strategy
		rands[p] = root.Split(uint64(p) + 1)
	}
	act := medium.NewActivation(wakes)

	// Union-find over parties; the game ends when one component remains.
	parent := make([]int, k)
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps := k

	rd := &Round{F: cfg.F, Locals: make([]uint64, k), Strategies: strategies}
	cur := make([]Action, k)
	prev := make([]Action, k)
	out := &Result{}
	for g := uint64(1); g <= cfg.MaxRounds; g++ {
		if cfg.Masks != nil && g >= 2 {
			block, unblock := cfg.Masks.MaskDeltas(g)
			if len(block)+len(unblock) > 0 {
				if err := applyMaskDeltas(adj, dynBlocked, block, unblock, k, cfg.F, dynBase, g); err != nil {
					return nil, err
				}
				res.SetGraph(graph)
			}
		}
		act.Wake(g)
		rd.Global = g
		for p := 0; p < k; p++ {
			if wakes[p] <= g {
				rd.Locals[p] = cfg.Parties[p].Head + (g - wakes[p] + 1)
			} else {
				rd.Locals[p] = 0
			}
		}
		var blocked *freqset.Set
		if cfg.Jammer != nil {
			blocked = cfg.Jammer.Block(rd)
		}

		// Parties register in ascending index order (the active list is
		// sorted), then mask nodes, then jam nodes — every frequency
		// bucket is born sorted, as the resolver requires.
		for _, p := range act.Active() {
			f, tx := strategies[p].Pick(rd.Locals[p], rands[p])
			if f < 1 || f > cfg.F {
				return nil, fmt.Errorf("rendezvous: party %d picked channel %d outside [1..%d] in round %d", p, f, cfg.F, g)
			}
			cur[p] = Action{Freq: f, Transmit: tx}
			if tx {
				res.Transmit(p, f)
			} else {
				res.Listen(p)
			}
			out.NodeRounds++
		}
		for m, mn := range masks {
			res.Transmit(maskBase+m, mn.freq)
		}
		if blocked != nil {
			j := jamBase
			for f := 1; f <= cfg.F; f++ {
				if blocked.Contains(f) {
					res.Transmit(j, f)
					j++
				}
			}
		}
		// Dynamic mask slots scan in (party, channel) order, so node
		// indices stay ascending as the buckets require.
		for idx, on := range dynBlocked {
			if on {
				res.Transmit(dynBase+idx, idx%cfg.F+1)
			}
		}

		for _, v := range res.Listeners() {
			from, count := res.Receive(v, cur[v].Freq)
			if count != 1 || from >= k {
				continue // silence, collision, or a bare jam carrier
			}
			out.Meetings++
			if out.FirstMeet == 0 {
				out.FirstMeet = g
			}
			if rv, rf := find(v), find(from); rv != rf {
				parent[rv] = rf
				if comps--; comps == 1 {
					out.AllMet = g
				}
			}
		}
		res.Reset()
		out.Rounds = g
		if out.AllMet != 0 {
			break
		}
		copy(prev, cur)
		rd.Last = prev
	}
	totalNodeRounds.Add(out.NodeRounds)
	return out, nil
}

// applyMaskDeltas patches the game graph for one round of mask churn:
// blocking (p, ch) attaches dyn node dynBase + p·F + ch − 1 to party p,
// unblocking detaches it. Party adjacency stays sorted (dyn nodes are the
// highest indices, laid out in slot order), so the resolver's binary
// searches keep working on the swapped graph. Unblocks apply first so a
// model may retire and re-impose the same slot across rounds.
func applyMaskDeltas(adj [][]int, dynBlocked []bool, block, unblock [][2]int, k, f, dynBase int, g uint64) error {
	for _, pc := range unblock {
		idx, err := maskSlot(pc, k, f, g)
		if err != nil {
			return err
		}
		if !dynBlocked[idx] {
			return fmt.Errorf("rendezvous: round %d unblocks channel %d for party %d, which is not blocked", g, pc[1], pc[0])
		}
		dynBlocked[idx] = false
		node := dynBase + idx
		adj[node] = adj[node][:0]
		adj[pc[0]] = removeSortedInt(adj[pc[0]], node)
	}
	for _, pc := range block {
		idx, err := maskSlot(pc, k, f, g)
		if err != nil {
			return err
		}
		if dynBlocked[idx] {
			return fmt.Errorf("rendezvous: round %d blocks channel %d for party %d twice", g, pc[1], pc[0])
		}
		dynBlocked[idx] = true
		node := dynBase + idx
		adj[node] = append(adj[node][:0], pc[0])
		adj[pc[0]] = insertSortedInt(adj[pc[0]], node)
	}
	return nil
}

// maskSlot validates a (party, channel) pair and returns its dyn slot.
func maskSlot(pc [2]int, k, f int, g uint64) (int, error) {
	if pc[0] < 0 || pc[0] >= k {
		return 0, fmt.Errorf("rendezvous: round %d mask delta names party %d outside [0..%d]", g, pc[0], k-1)
	}
	if pc[1] < 1 || pc[1] > f {
		return 0, fmt.Errorf("rendezvous: round %d mask delta names channel %d outside [1..%d]", g, pc[1], f)
	}
	return pc[0]*f + pc[1] - 1, nil
}

// insertSortedInt inserts x into ascending s, assuming it is absent.
func insertSortedInt(s []int, x int) []int {
	i := len(s)
	for i > 0 && s[i-1] > x {
		i--
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// removeSortedInt deletes x from ascending s, assuming it is present.
func removeSortedInt(s []int, x int) []int {
	for i, v := range s {
		if v == x {
			copy(s[i:], s[i+1:])
			return s[:len(s)-1]
		}
	}
	panic(fmt.Sprintf("rendezvous: mask node %d missing from adjacency", x))
}
