package rendezvous

import (
	"fmt"

	"wsync/internal/rng"
)

// Strategy decides one party's behavior. Pick is called once per round the
// party is awake, with the party's local round (1-based) and its private
// random stream, and returns the channel to use and whether to transmit on
// it (false = listen). Stateful strategies are allowed — the engine gives
// every party its own Strategy value and calls it from a single goroutine —
// but they must draw all randomness from the supplied stream so runs stay
// reproducible.
type Strategy interface {
	Pick(local uint64, r *rng.Rand) (freq int, transmit bool)
}

// Profiled is implemented by strategies that can report the marginal
// probability of picking each channel in a given local round. Product-form
// jammers (Greedy) require every party's strategy to be Profiled.
type Profiled interface {
	Strategy
	// Prob returns the probability that Pick chooses freq in the given
	// local round, marginalized over the strategy's randomness.
	Prob(local uint64, freq int) float64
}

// Uniform spreads uniformly over [1..M] and transmits with probability P —
// the regular schedule of the Theorem 4 game. Its draws (channel first,
// then the transmit coin) are bit-compatible with
// lowerbound.UniformRegular under the two-node scan loop.
type Uniform struct {
	M int
	P float64
}

var _ Profiled = Uniform{}

// Pick draws a channel uniformly from [1..M], then the transmit coin.
func (u Uniform) Pick(_ uint64, r *rng.Rand) (int, bool) {
	f := r.IntRange(1, u.M)
	return f, r.Bernoulli(u.P)
}

// Prob returns 1/M on [1..M] and 0 outside.
func (u Uniform) Prob(_ uint64, f int) float64 {
	if f < 1 || f > u.M {
		return 0
	}
	return 1 / float64(u.M)
}

// OptimalWidth returns the Azar-style optimal-width uniform strategy for a
// band of f channels with t blocked per round: uniform over min(f, 2t)
// channels (clamped to [1..f]), transmitting with probability 1/2 — the
// extremal point of the Theorem 4 proof.
func OptimalWidth(f, t int) Uniform {
	w := 2 * t
	if w > f {
		w = f
	}
	if w < 1 {
		w = 1
	}
	return Uniform{M: w, P: 0.5}
}

// StayRamble is the classic symmetric-rendezvous block strategy: time is
// cut into blocks of Dwell rounds, and at each block start the party flips
// a coin — with probability PStay it camps on one uniformly chosen channel
// for the block ("stay"), otherwise it hops to a fresh uniform channel
// every round of the block ("ramble"). It transmits with probability P
// each round. The marginal channel distribution is uniform over [1..M], so
// StayRamble is Profiled. Stateful: use one instance per party.
type StayRamble struct {
	M     int
	Dwell uint64 // block length; 0 means 1
	PStay float64
	P     float64

	stay   bool
	anchor int
}

var _ Profiled = (*StayRamble)(nil)

// Pick re-draws the block mode and anchor at block starts, then plays the
// block: the anchor when staying, a fresh uniform channel when rambling.
func (s *StayRamble) Pick(local uint64, r *rng.Rand) (int, bool) {
	dwell := s.Dwell
	if dwell == 0 {
		dwell = 1
	}
	if (local-1)%dwell == 0 {
		s.stay = r.Bernoulli(s.PStay)
		s.anchor = r.IntRange(1, s.M)
	}
	f := s.anchor
	if !s.stay {
		f = r.IntRange(1, s.M)
	}
	return f, r.Bernoulli(s.P)
}

// Prob returns the marginal 1/M on [1..M]: both block modes choose their
// channels uniformly.
func (s *StayRamble) Prob(_ uint64, f int) float64 {
	if f < 1 || f > s.M {
		return 0
	}
	return 1 / float64(s.M)
}

// Oblivious is a deterministic hop sequence: in local round l it uses
// channel ((Start + (l−1)·Stride) mod M) + 1 and transmits with
// probability P (role randomness only). Stride 0 camps on one channel.
// Deterministic hopping is the gallery's fragile entry: a product jammer
// or a resonant sweeper can starve it forever, which the R3 experiment
// makes visible.
type Oblivious struct {
	M      int
	Start  int // in [0..M)
	Stride int // in [0..M)
	P      float64
}

var _ Profiled = Oblivious{}

// channel returns the deterministic channel for the local round.
func (o Oblivious) channel(local uint64) int {
	return int((uint64(o.Start) + (local-1)*uint64(o.Stride)) % uint64(o.M))
}

// Pick returns the scheduled channel and the transmit coin.
func (o Oblivious) Pick(local uint64, r *rng.Rand) (int, bool) {
	return o.channel(local) + 1, r.Bernoulli(o.P)
}

// Prob is 1 on the scheduled channel and 0 elsewhere.
func (o Oblivious) Prob(local uint64, f int) float64 {
	if f == o.channel(local)+1 {
		return 1
	}
	return 0
}

// Restricted relabels a strategy's picks onto an explicit allowed-channel
// list, modeling the Azar-style setting where each party can only use its
// own whitespace: the inner strategy plays [1..len(Allowed)] (wider inner
// picks wrap around) and pick i maps to Allowed[i−1]. Combine with
// Party.Mask to also jam stray receptions on the complement.
type Restricted struct {
	S       Strategy
	Allowed []int
}

var _ Strategy = Restricted{}

// Pick relabels the inner strategy's pick.
func (rs Restricted) Pick(local uint64, r *rng.Rand) (int, bool) {
	if len(rs.Allowed) == 0 {
		panic("rendezvous: Restricted with empty Allowed list")
	}
	f, tx := rs.S.Pick(local, r)
	if f < 1 {
		panic(fmt.Sprintf("rendezvous: inner strategy picked channel %d", f))
	}
	return rs.Allowed[(f-1)%len(rs.Allowed)], tx
}
