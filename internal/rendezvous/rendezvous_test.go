package rendezvous

import (
	"strings"
	"testing"

	"wsync/internal/adversary"
	"wsync/internal/rng"
)

func TestUniformStrategy(t *testing.T) {
	u := Uniform{M: 4, P: 0.5}
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		f, _ := u.Pick(uint64(i+1), r)
		if f < 1 || f > 4 {
			t.Fatalf("pick %d outside [1..4]", f)
		}
	}
	if u.Prob(1, 0) != 0 || u.Prob(1, 5) != 0 || u.Prob(1, 3) != 0.25 {
		t.Fatal("Uniform.Prob wrong")
	}
}

func TestOptimalWidthClamps(t *testing.T) {
	if w := OptimalWidth(8, 2); w.M != 4 || w.P != 0.5 {
		t.Fatalf("OptimalWidth(8,2) = %+v", w)
	}
	if w := OptimalWidth(8, 6); w.M != 8 {
		t.Fatalf("width not clamped to F: %+v", w)
	}
	if w := OptimalWidth(8, 0); w.M != 1 {
		t.Fatalf("t=0 width = %d, want 1", w.M)
	}
}

func TestStayRambleBlocks(t *testing.T) {
	// PStay = 1: the channel is constant within each dwell block.
	s := &StayRamble{M: 8, Dwell: 4, PStay: 1, P: 0.5}
	r := rng.New(7)
	var first int
	for l := uint64(1); l <= 12; l++ {
		f, _ := s.Pick(l, r)
		if f < 1 || f > 8 {
			t.Fatalf("pick %d outside band", f)
		}
		if (l-1)%4 == 0 {
			first = f
		} else if f != first {
			t.Fatalf("stay block changed channel at local %d: %d != %d", l, f, first)
		}
	}
	if s.Prob(3, 2) != 0.125 || s.Prob(3, 9) != 0 {
		t.Fatal("StayRamble.Prob wrong")
	}
	// Dwell 0 defaults to 1 (a fresh draw every round) without panicking.
	z := &StayRamble{M: 2, PStay: 0.5, P: 0.5}
	for l := uint64(1); l <= 8; l++ {
		if f, _ := z.Pick(l, r); f < 1 || f > 2 {
			t.Fatalf("dwell-0 pick %d", f)
		}
	}
}

func TestObliviousSchedule(t *testing.T) {
	o := Oblivious{M: 4, Start: 1, Stride: 3, P: 1}
	r := rng.New(1)
	want := []int{2, 1, 4, 3, 2} // (1 + 3(l-1)) mod 4, 1-based
	for i, w := range want {
		f, tx := o.Pick(uint64(i+1), r)
		if f != w {
			t.Fatalf("local %d channel = %d, want %d", i+1, f, w)
		}
		if !tx {
			t.Fatal("P=1 did not transmit")
		}
	}
	if o.Prob(3, 4) != 1 || o.Prob(3, 1) != 0 {
		t.Fatal("Oblivious.Prob not a point mass on the schedule")
	}
}

func TestRestrictedRelabels(t *testing.T) {
	rs := Restricted{S: Oblivious{M: 4, Stride: 1, P: 1}, Allowed: []int{5, 7}}
	r := rng.New(1)
	want := []int{5, 7, 5, 7} // inner 1,2,3,4 wraps onto {5,7}
	for i, w := range want {
		if f, _ := rs.Pick(uint64(i+1), r); f != w {
			t.Fatalf("local %d relabeled to %d, want %d", i+1, f, w)
		}
	}
}

func TestStaticPrefix(t *testing.T) {
	j := NewPrefix(8, 3)
	set := j.Block(&Round{F: 8})
	for f := 1; f <= 8; f++ {
		if set.Contains(f) != (f <= 3) {
			t.Fatalf("prefix jam wrong at %d", f)
		}
	}
}

// TestGreedyMatchesPrefixOnUniform pins the tie-breaking that makes the
// differential tests work: on equal-width uniform strategies every product
// ties, and the greedy jammer resolves ties toward low channels — exactly
// the static prefix.
func TestGreedyMatchesPrefixOnUniform(t *testing.T) {
	g := NewGreedy(8, 3)
	rd := &Round{
		Global:     1,
		F:          8,
		Locals:     []uint64{5, 1},
		Strategies: []Strategy{Uniform{M: 6, P: 0.5}, Uniform{M: 6, P: 0.5}},
	}
	set := g.Block(rd)
	for f := 1; f <= 8; f++ {
		if set.Contains(f) != (f <= 3) {
			t.Fatalf("greedy != prefix at channel %d", f)
		}
	}
	// Asleep parties are excluded from the product: party 1 asleep leaves
	// party 0's uniform alone, same prefix outcome.
	rd.Locals = []uint64{5, 0}
	set = g.Block(rd)
	if !set.Contains(1) || set.Contains(4) {
		t.Fatalf("asleep-party product wrong: %v", set.Slice())
	}
}

func TestGreedyNeedsProfiled(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("greedy accepted an unprofiled strategy")
		}
		if !strings.Contains(r.(string), "Profiled") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	g := NewGreedy(4, 1)
	g.Block(&Round{F: 4, Locals: []uint64{1}, Strategies: []Strategy{Restricted{S: Uniform{M: 2, P: 0.5}, Allowed: []int{1, 2}}}})
}

// TestChurnFeedsHistory checks that adaptive adversaries see the parties'
// previous-round actions: a reactive jammer chases the only transmitter's
// channel.
func TestChurnFeedsHistory(t *testing.T) {
	c := NewChurn(8, adversary.NewReactive(8, 1))
	rd := &Round{Global: 1, F: 8}
	set := c.Block(rd) // no history: reactive jams the low prefix
	if !set.Contains(1) || set.Len() != 1 {
		t.Fatalf("round 1 jam = %v", set.Slice())
	}
	rd.Global = 2
	rd.Last = []Action{{Freq: 5, Transmit: true}, {Freq: 3, Transmit: false}}
	set = c.Block(rd)
	if !set.Contains(5) || set.Len() != 1 {
		t.Fatalf("reactive did not chase the transmitter: %v", set.Slice())
	}
	// Asleep parties (Freq 0) are filtered from the synthetic history.
	rd.Global = 3
	rd.Last = []Action{{}, {Freq: 2, Transmit: true}}
	set = c.Block(rd)
	if !set.Contains(2) {
		t.Fatalf("asleep filter broke the history: %v", set.Slice())
	}
}

func TestRunValidation(t *testing.T) {
	two := []Party{{Strategy: Uniform{M: 2, P: 0.5}}, {Strategy: Uniform{M: 2, P: 0.5}}}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no channels", Config{F: 0, Parties: two, MaxRounds: 1}},
		{"one party", Config{F: 2, Parties: two[:1], MaxRounds: 1}},
		{"zero rounds", Config{F: 2, Parties: two}},
		{"nil strategy", Config{F: 2, Parties: []Party{{}, {Strategy: Uniform{M: 2, P: 0.5}}}, MaxRounds: 1}},
		{"mask out of band", Config{F: 2, Parties: []Party{{Strategy: Uniform{M: 2, P: 0.5}, Mask: []int{3}}, {Strategy: Uniform{M: 2, P: 0.5}}}, MaxRounds: 1}},
	}
	for _, c := range cases {
		if _, err := Run(&c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

type badStrategy struct{}

func (badStrategy) Pick(uint64, *rng.Rand) (int, bool) { return 0, true }

func TestRunRejectsOutOfBandPick(t *testing.T) {
	_, err := Run(&Config{
		F:         2,
		Parties:   []Party{{Strategy: badStrategy{}}, {Strategy: Uniform{M: 2, P: 0.5}}},
		MaxRounds: 4,
	})
	if err == nil {
		t.Fatal("out-of-band pick accepted")
	}
}

func TestTwoPartyOpenBand(t *testing.T) {
	res, err := Run(&Config{
		F:         4,
		Parties:   []Party{{Strategy: Uniform{M: 4, P: 0.5}}, {Strategy: Uniform{M: 4, P: 0.5}}},
		MaxRounds: 1 << 16,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstMeet == 0 || res.FirstMeet != res.AllMet {
		t.Fatalf("two-party meet/all-met mismatch: %+v", res)
	}
	if res.Rounds != res.AllMet || res.Meetings == 0 {
		t.Fatalf("bookkeeping wrong: %+v", res)
	}
	if res.NodeRounds != 2*res.Rounds {
		t.Fatalf("node rounds = %d over %d rounds", res.NodeRounds, res.Rounds)
	}
}

// TestMaskIsPerParty pins the graph encoding of masks: A transmits on a
// channel that only C masks, so B meets A every round while C never does.
func TestMaskIsPerParty(t *testing.T) {
	res, err := Run(&Config{
		F: 4,
		Parties: []Party{
			{Strategy: Oblivious{M: 4, Start: 1, Stride: 0, P: 1}}, // tx channel 2 forever
			{Strategy: Oblivious{M: 4, Start: 1, Stride: 0, P: 0}}, // listen channel 2
			{Strategy: Oblivious{M: 4, Start: 1, Stride: 0, P: 0}, Mask: []int{2}},
		},
		MaxRounds: 50,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstMeet != 1 {
		t.Fatalf("B should hear A in round 1: %+v", res)
	}
	if res.AllMet != 0 {
		t.Fatalf("masked C met anyway: %+v", res)
	}
	// Only B's receptions count: one meeting per round.
	if res.Meetings != res.Rounds {
		t.Fatalf("meetings = %d over %d rounds, want equal", res.Meetings, res.Rounds)
	}
}

func TestGlobalJamBlocksEveryone(t *testing.T) {
	res, err := Run(&Config{
		F: 4,
		Parties: []Party{
			{Strategy: Oblivious{M: 4, Start: 1, Stride: 0, P: 1}},
			{Strategy: Oblivious{M: 4, Start: 1, Stride: 0, P: 0}},
		},
		Jammer:    NewStatic(4, []int{2}),
		MaxRounds: 50,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstMeet != 0 || res.Meetings != 0 {
		t.Fatalf("met through a jammed channel: %+v", res)
	}
}

// TestWakeAndHead checks late activation and the local-clock offset: B
// wakes at round 5 with a head start of 2, so its first pick is local
// round 3.
func TestWakeAndHead(t *testing.T) {
	// A camps on channel 1 transmitting; B's oblivious schedule hits
	// channel 1 exactly at local round 3 ((2 + (3-1)·1) mod 4 = 0).
	res, err := Run(&Config{
		F: 4,
		Parties: []Party{
			{Strategy: Oblivious{M: 4, Start: 0, Stride: 0, P: 1}},
			{Strategy: Oblivious{M: 4, Start: 2, Stride: 1, P: 0}, Wake: 5, Head: 2},
		},
		MaxRounds: 20,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstMeet != 5 {
		t.Fatalf("FirstMeet = %d, want 5 (B wakes at 5 on channel 1)", res.FirstMeet)
	}
}

func TestKPartyAllMet(t *testing.T) {
	k := 5
	parties := make([]Party, k)
	for i := range parties {
		parties[i] = Party{Strategy: Uniform{M: 6, P: 0.5}, Wake: uint64(1 + 2*i)}
	}
	res, err := Run(&Config{
		F:         8,
		Parties:   parties,
		Jammer:    NewPrefix(8, 2),
		MaxRounds: 1 << 18,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AllMet == 0 {
		t.Fatalf("%d parties never all met: %+v", k, res)
	}
	if res.FirstMeet == 0 || res.FirstMeet > res.AllMet {
		t.Fatalf("meet ordering wrong: %+v", res)
	}
	if uint64(res.Meetings) < uint64(k-1) {
		t.Fatalf("all-met with only %d meetings", res.Meetings)
	}
}

// TestDeterminism: identical configs give identical results; different
// seeds diverge.
func TestDeterminism(t *testing.T) {
	run := func(seed uint64) *Result {
		parties := []Party{
			{Strategy: &StayRamble{M: 8, Dwell: 4, PStay: 0.5, P: 0.5}},
			{Strategy: Uniform{M: 8, P: 0.5}},
			{Strategy: Uniform{M: 8, P: 0.5}, Wake: 3},
		}
		res, err := Run(&Config{
			F:         8,
			Parties:   parties,
			Jammer:    NewChurn(8, adversary.NewSweep(8, 2, 1)),
			MaxRounds: 1 << 16,
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(5), run(5)
	if *a != *b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if c := run(6); *a == *c {
		t.Fatal("different seeds agreed exactly (suspicious)")
	}
}

// TestJamNodesInvisibleInResult: a round where only the jammer transmits
// must not count as a meeting even though the listener receives cleanly
// from the jam node.
func TestJamNodesInvisibleInResult(t *testing.T) {
	res, err := Run(&Config{
		F: 2,
		Parties: []Party{
			{Strategy: Oblivious{M: 2, Start: 0, Stride: 0, P: 0}}, // listen ch 1
			{Strategy: Oblivious{M: 2, Start: 1, Stride: 0, P: 0}}, // listen ch 2
		},
		Jammer:    NewStatic(2, []int{1, 2}),
		MaxRounds: 10,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Meetings != 0 || res.FirstMeet != 0 {
		t.Fatalf("bare jam carrier counted as a meeting: %+v", res)
	}
}

func BenchmarkRendezvousThroughput(b *testing.B) {
	for _, bench := range []struct {
		name string
		jam  func() Jammer
	}{
		{"static", func() Jammer { return NewPrefix(16, 4) }},
		{"churn", func() Jammer { return NewChurn(16, adversary.NewRandom(16, 4, 99)) }},
		{"greedy", func() Jammer { return NewGreedy(16, 4) }},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			nodeRounds := uint64(0)
			for i := 0; i < b.N; i++ {
				parties := make([]Party, 8)
				for p := range parties {
					parties[p] = Party{Strategy: Uniform{M: 8, P: 0.5}, Wake: uint64(1 + p)}
				}
				res, err := Run(&Config{
					F:         16,
					Parties:   parties,
					Jammer:    bench.jam(),
					MaxRounds: 1 << 14,
					Seed:      uint64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				nodeRounds += res.NodeRounds
			}
			b.ReportMetric(float64(nodeRounds)/b.Elapsed().Seconds(), "node-rounds/s")
		})
	}
}
