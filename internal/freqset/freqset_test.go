package freqset

import (
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	s := New(10)
	if s.Len() != 0 {
		t.Fatalf("new set has Len %d", s.Len())
	}
	if s.Universe() != 10 {
		t.Fatalf("Universe = %d", s.Universe())
	}
	for f := 1; f <= 10; f++ {
		if s.Contains(f) {
			t.Fatalf("empty set contains %d", f)
		}
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130) // spans multiple words
	for _, f := range []int{1, 64, 65, 128, 129, 130} {
		s.Add(f)
		if !s.Contains(f) {
			t.Fatalf("Contains(%d) false after Add", f)
		}
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) true after Remove")
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(5)
	s.Add(3)
	s.Add(3)
	if s.Len() != 1 {
		t.Fatalf("Len = %d after double Add", s.Len())
	}
}

func TestContainsOutOfRange(t *testing.T) {
	s := New(5)
	s.Add(5)
	if s.Contains(0) || s.Contains(6) || s.Contains(-1) {
		t.Fatal("Contains reported membership outside universe")
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(6) on universe 5 did not panic")
		}
	}()
	New(5).Add(6)
}

func TestFromSliceAndSlice(t *testing.T) {
	s := FromSlice(10, []int{7, 2, 9, 2})
	got := s.Slice()
	want := []int{2, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestClear(t *testing.T) {
	s := FromSlice(100, []int{1, 50, 100})
	s.Clear()
	if s.Len() != 0 {
		t.Fatalf("Len = %d after Clear", s.Len())
	}
}

func TestCloneIndependent(t *testing.T) {
	s := FromSlice(10, []int{1, 2})
	c := s.Clone()
	c.Add(3)
	if s.Contains(3) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Contains(1) || !c.Contains(2) {
		t.Fatal("clone missing original members")
	}
}

func TestUnionIntersect(t *testing.T) {
	a := FromSlice(10, []int{1, 2, 3})
	b := FromSlice(10, []int{3, 4})
	a.Union(b)
	for _, f := range []int{1, 2, 3, 4} {
		if !a.Contains(f) {
			t.Fatalf("union missing %d", f)
		}
	}
	a.Intersect(b)
	if a.Len() != 2 || !a.Contains(3) || !a.Contains(4) {
		t.Fatalf("intersect = %v", a.Slice())
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Union with mismatched universe did not panic")
		}
	}()
	New(5).Union(New(6))
}

func TestComplement(t *testing.T) {
	s := FromSlice(67, []int{1, 66})
	c := s.Complement()
	if c.Len() != 65 {
		t.Fatalf("complement Len = %d, want 65", c.Len())
	}
	if c.Contains(1) || c.Contains(66) {
		t.Fatal("complement contains original members")
	}
	if !c.Contains(67) || !c.Contains(2) {
		t.Fatal("complement missing expected members")
	}
	// No bits beyond the universe.
	if c.Contains(68) {
		t.Fatal("complement contains out-of-universe member")
	}
}

func TestEqual(t *testing.T) {
	a := FromSlice(10, []int{1, 5})
	b := FromSlice(10, []int{5, 1})
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
	b.Add(6)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	if a.Equal(New(11)) {
		t.Fatal("different universes reported equal")
	}
}

func TestString(t *testing.T) {
	if got := FromSlice(10, []int{3, 1}).String(); got != "{1, 3}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(3).String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

// Property: complement of complement is the original set.
func TestQuickComplementInvolution(t *testing.T) {
	f := func(members []uint8) bool {
		const universe = 200
		s := New(universe)
		for _, m := range members {
			s.Add(int(m)%universe + 1)
		}
		return s.Complement().Complement().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Len(s) + Len(complement(s)) == universe.
func TestQuickComplementLen(t *testing.T) {
	f := func(members []uint8) bool {
		const universe = 150
		s := New(universe)
		for _, m := range members {
			s.Add(int(m)%universe + 1)
		}
		return s.Len()+s.Complement().Len() == universe
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Slice round-trips through FromSlice.
func TestQuickSliceRoundTrip(t *testing.T) {
	f := func(members []uint8) bool {
		const universe = 100
		s := New(universe)
		for _, m := range members {
			s.Add(int(m)%universe + 1)
		}
		return FromSlice(universe, s.Slice()).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
