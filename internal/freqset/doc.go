// Package freqset provides a compact set of frequency indices.
//
// Frequencies throughout this repository are 1-based, matching the paper's
// notation f ∈ [1..F]. A Set stores membership for frequencies 1..F in a
// bitset; the simulator uses it for per-round disruption sets and the
// protocols use it to reason about available frequencies.
package freqset
