package freqset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a set of frequencies drawn from [1..F] for the F fixed at New. The
// zero value is an empty set over zero frequencies; most callers should use
// New.
type Set struct {
	f     int
	words []uint64
}

// New returns an empty set over frequencies [1..f]. It panics if f < 0.
func New(f int) *Set {
	if f < 0 {
		panic("freqset: negative universe size")
	}
	return &Set{f: f, words: make([]uint64, (f+63)/64)}
}

// FromSlice returns a set over [1..f] containing the given frequencies.
// Frequencies outside [1..f] cause a panic, as they indicate a programming
// error in adversary or protocol code.
func FromSlice(f int, freqs []int) *Set {
	s := New(f)
	for _, fr := range freqs {
		s.Add(fr)
	}
	return s
}

// Universe returns F, the number of frequencies the set ranges over.
func (s *Set) Universe() int { return s.f }

func (s *Set) check(freq int) {
	if freq < 1 || freq > s.f {
		panic(fmt.Sprintf("freqset: frequency %d out of universe [1..%d]", freq, s.f))
	}
}

// Add inserts freq into the set.
func (s *Set) Add(freq int) {
	s.check(freq)
	s.words[(freq-1)/64] |= 1 << uint((freq-1)%64)
}

// Remove deletes freq from the set.
func (s *Set) Remove(freq int) {
	s.check(freq)
	s.words[(freq-1)/64] &^= 1 << uint((freq-1)%64)
}

// Contains reports whether freq is in the set. Frequencies outside the
// universe are reported as absent rather than panicking, because the
// simulator probes arbitrary frequencies during delivery resolution.
func (s *Set) Contains(freq int) bool {
	if freq < 1 || freq > s.f {
		return false
	}
	return s.words[(freq-1)/64]&(1<<uint((freq-1)%64)) != 0
}

// Len returns the number of frequencies in the set.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clear removes all frequencies.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{f: s.f, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Slice returns the members in increasing order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Len())
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, i*64+b+1)
			w &= w - 1
		}
	}
	return out
}

// Union adds every member of other to s. The universes must match.
func (s *Set) Union(other *Set) {
	if s.f != other.f {
		panic("freqset: universe mismatch in Union")
	}
	for i := range s.words {
		s.words[i] |= other.words[i]
	}
}

// Intersect removes every member of s not in other. The universes must
// match.
func (s *Set) Intersect(other *Set) {
	if s.f != other.f {
		panic("freqset: universe mismatch in Intersect")
	}
	for i := range s.words {
		s.words[i] &= other.words[i]
	}
}

// Complement returns the set of frequencies in [1..F] not in s.
func (s *Set) Complement() *Set {
	c := New(s.f)
	for i := range s.words {
		c.words[i] = ^s.words[i]
	}
	// Mask tail bits beyond F.
	if rem := s.f % 64; rem != 0 && len(c.words) > 0 {
		c.words[len(c.words)-1] &= (1 << uint(rem)) - 1
	}
	return c
}

// Equal reports whether the two sets have identical universes and members.
func (s *Set) Equal(other *Set) bool {
	if s.f != other.f {
		return false
	}
	for i := range s.words {
		if s.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// String renders the set as {f1, f2, ...} for diagnostics.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, fr := range s.Slice() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", fr)
	}
	b.WriteByte('}')
	return b.String()
}
