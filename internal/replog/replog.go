package replog

import (
	"encoding/binary"
	"fmt"

	"wsync/internal/core"
	"wsync/internal/freqdist"
	"wsync/internal/msg"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

// Config describes one replicated-log node.
type Config struct {
	// Members is the group size n; the leader commits an entry once the
	// other Members−1 nodes acknowledged it.
	Members int
	// F is the number of frequencies.
	F int
	// Commands is the command sequence to replicate; every node carries
	// it, and whichever node wins the election replicates it. (Values are
	// opaque to the protocol.)
	Commands []uint64
	// Settle is the number of local rounds a node stays quiet after its
	// own synchronization before joining replication; it gives the rest
	// of the group time to synchronize. Zero means DefaultSettle.
	Settle uint64
	// AckProb is a follower's per-round acknowledgement probability; zero
	// means min(1/2, 2/Members).
	AckProb float64
	// Quorum is the number of distinct follower acknowledgements required
	// to commit an entry; zero means Members−1 (full replication). Crash-
	// tolerant deployments choose a majority instead, trading durability
	// on the slowest members for progress despite their failure. Because
	// every member carries the same command sequence, committed prefixes
	// remain consistent under any quorum.
	Quorum int
}

// DefaultSettle is the post-synchronization quiet period.
const DefaultSettle = 400

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Settle == 0 {
		c.Settle = DefaultSettle
	}
	if c.AckProb == 0 {
		c.AckProb = 2 / float64(c.Members)
		if c.AckProb > 0.5 {
			c.AckProb = 0.5
		}
	}
	if c.Quorum == 0 {
		c.Quorum = c.Members - 1
	}
	return c
}

// Validate reports configuration problems.
func (c Config) Validate() error {
	if c.Members < 2 {
		return fmt.Errorf("replog: Members = %d, need >= 2", c.Members)
	}
	if c.F < 1 {
		return fmt.Errorf("replog: F = %d", c.F)
	}
	if len(c.Commands) == 0 {
		return fmt.Errorf("replog: no commands to replicate")
	}
	if c.AckProb < 0 || c.AckProb > 1 {
		return fmt.Errorf("replog: AckProb = %v", c.AckProb)
	}
	if c.Quorum < 0 || c.Quorum > c.Members-1 {
		return fmt.Errorf("replog: Quorum = %d out of [0, Members-1]", c.Quorum)
	}
	return nil
}

// Node is one group member. It implements sim.Agent.
type Node struct {
	cfg  Config
	sync sim.Agent
	r    *rng.Rand
	uid  uint64
	dist freqdist.Uniform

	syncedAt uint64 // local round of own synchronization (0 = not yet)

	// log state (all nodes)
	log         []uint64
	commitIndex int

	// leader state
	acks map[int]map[uint64]bool // index -> follower uids that acked
}

var _ sim.Agent = (*Node)(nil)

// New builds a node around the given synchronization agent.
func New(cfg Config, syncAgent sim.Agent, r *rng.Rand) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Node{
		cfg:  cfg,
		sync: syncAgent,
		r:    r,
		uid:  core.NewUID(r, cfg.Members*16),
		dist: freqdist.NewUniform(1, cfg.F),
		acks: make(map[int]map[uint64]bool),
	}, nil
}

// Log returns a copy of the committed prefix.
func (n *Node) Log() []uint64 {
	out := make([]uint64, n.commitIndex)
	copy(out, n.log[:n.commitIndex])
	return out
}

// CommitIndex returns the highest committed index (0 = none).
func (n *Node) CommitIndex() int { return n.commitIndex }

// isLeader reports whether the embedded synchronization agent won.
func (n *Node) isLeader() bool {
	lr, ok := n.sync.(sim.LeaderReporter)
	return ok && lr.IsLeader()
}

// IsLeader re-exports leadership for experiment accounting.
func (n *Node) IsLeader() bool { return n.isLeader() }

// Step implements sim.Agent.
func (n *Node) Step(local uint64) sim.Action {
	act := n.sync.Step(local)
	out := n.sync.Output()
	if !out.Synced {
		return act
	}
	if n.syncedAt == 0 {
		n.syncedAt = local
	}
	if local-n.syncedAt < n.cfg.Settle {
		return act // let the group finish synchronizing
	}
	if act.Transmit {
		// The synchronization layer needs the air: leader announcements,
		// or — in the fault-tolerant variant — a re-election after a
		// leader crash. Replication always yields to it.
		return act
	}

	f := n.dist.Sample(n.r)
	if n.isLeader() {
		// Leader: everything proposed, nothing left? Keep broadcasting
		// entries so late followers catch up (the commit tag rides along).
		if n.r.Bool() {
			idx := n.pickIndex(out.Value)
			return sim.Action{Freq: f, Transmit: true, Msg: n.entryMessage(idx)}
		}
		return sim.Action{Freq: f}
	}
	// Follower: mostly listen, occasionally acknowledge.
	if len(n.log) > 0 && n.r.Bernoulli(n.cfg.AckProb) {
		return sim.Action{Freq: f, Transmit: true, Msg: n.ackMessage()}
	}
	return sim.Action{Freq: f}
}

// pickIndex chooses which entry to broadcast: cycle over indexes not yet
// acknowledged by all followers, falling back to cycling the whole log.
func (n *Node) pickIndex(round uint64) int {
	// The leader's log is the full command list.
	if len(n.log) != len(n.cfg.Commands) {
		n.log = append([]uint64(nil), n.cfg.Commands...)
	}
	var pending []int
	for i := 1; i <= len(n.log); i++ {
		if len(n.acks[i]) < n.cfg.Quorum {
			pending = append(pending, i)
		}
	}
	if len(pending) > 0 {
		return pending[int(round)%len(pending)]
	}
	return 1 + int(round)%len(n.log)
}

// wire format tags
const (
	tagEntry = 'E'
	tagAck   = 'A'
)

// entryMessage encodes entry idx with the current commit index.
func (n *Node) entryMessage(idx int) msg.Message {
	payload := make([]byte, 1+4+8+4)
	payload[0] = tagEntry
	binary.BigEndian.PutUint32(payload[1:], uint32(idx))
	binary.BigEndian.PutUint64(payload[5:], n.log[idx-1])
	binary.BigEndian.PutUint32(payload[13:], uint32(n.commitIndex))
	return msg.Message{Kind: msg.KindData, Payload: payload}
}

// ackMessage encodes the follower's contiguous log length.
func (n *Node) ackMessage() msg.Message {
	payload := make([]byte, 1+8+4)
	payload[0] = tagAck
	binary.BigEndian.PutUint64(payload[1:], n.uid)
	binary.BigEndian.PutUint32(payload[9:], uint32(len(n.log)))
	return msg.Message{Kind: msg.KindData, Payload: payload}
}

// Deliver implements sim.Agent.
func (n *Node) Deliver(m msg.Message) {
	if m.Kind != msg.KindData {
		n.sync.Deliver(m)
		return
	}
	if len(m.Payload) == 0 {
		return
	}
	switch m.Payload[0] {
	case tagEntry:
		if n.isLeader() || len(m.Payload) != 17 {
			return
		}
		idx := int(binary.BigEndian.Uint32(m.Payload[1:]))
		value := binary.BigEndian.Uint64(m.Payload[5:])
		commit := int(binary.BigEndian.Uint32(m.Payload[13:]))
		// In-order append; duplicates and gaps are ignored (the leader
		// retransmits until everything is acknowledged).
		if idx == len(n.log)+1 {
			n.log = append(n.log, value)
		}
		// Commit index advances monotonically, clamped to our log: if the
		// leader committed past what we hold, everything we hold is
		// committed.
		if commit > len(n.log) {
			commit = len(n.log)
		}
		if commit > n.commitIndex {
			n.commitIndex = commit
		}
	case tagAck:
		if !n.isLeader() || len(m.Payload) != 13 {
			return
		}
		uid := binary.BigEndian.Uint64(m.Payload[1:])
		upTo := int(binary.BigEndian.Uint32(m.Payload[9:]))
		if upTo > len(n.log) {
			upTo = len(n.log)
		}
		for i := 1; i <= upTo; i++ {
			set := n.acks[i]
			if set == nil {
				set = make(map[uint64]bool)
				n.acks[i] = set
			}
			set[uid] = true
		}
		// Advance the commit index over quorum-acknowledged prefixes.
		for n.commitIndex < len(n.log) && len(n.acks[n.commitIndex+1]) >= n.cfg.Quorum {
			n.commitIndex++
		}
	}
}

// Output forwards the synchronization layer's round numbering.
func (n *Node) Output() sim.Output { return n.sync.Output() }
