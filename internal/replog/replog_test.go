package replog

import (
	"testing"

	"wsync/internal/adversary"
	"wsync/internal/msg"
	"wsync/internal/props"
	"wsync/internal/rng"
	"wsync/internal/sim"
	"wsync/internal/trapdoor"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Members: 3, F: 8, Commands: []uint64{1}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Members: 1, F: 8, Commands: []uint64{1}},
		{Members: 3, F: 0, Commands: []uint64{1}},
		{Members: 3, F: 8},
		{Members: 3, F: 8, Commands: []uint64{1}, AckProb: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

// stubSync is a pre-synchronized sync layer for unit tests.
type stubSync struct {
	leader bool
	value  uint64
}

func (s *stubSync) Step(local uint64) sim.Action {
	s.value++
	return sim.Action{Freq: 1}
}
func (s *stubSync) Deliver(msg.Message) {}
func (s *stubSync) Output() sim.Output  { return sim.Output{Value: s.value, Synced: true} }
func (s *stubSync) IsLeader() bool      { return s.leader }

var unitSeed uint64

func newUnitNode(t *testing.T, leader bool, cmds []uint64) *Node {
	t.Helper()
	unitSeed++ // distinct streams => distinct replication-layer uids
	n, err := New(Config{Members: 3, F: 4, Commands: cmds, Settle: 1},
		&stubSync{leader: leader}, rng.New(unitSeed))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestFollowerAppendsInOrder(t *testing.T) {
	n := newUnitNode(t, false, []uint64{10, 20, 30})
	leader := newUnitNode(t, true, []uint64{10, 20, 30})
	// Materialize the leader's log.
	for i := uint64(1); i < 10; i++ {
		leader.Step(i)
	}

	// Out-of-order entry is dropped.
	n.Deliver(leader.entryMessage(2))
	if len(n.log) != 0 {
		t.Fatal("gap entry appended")
	}
	// In-order entries append.
	n.Deliver(leader.entryMessage(1))
	n.Deliver(leader.entryMessage(2))
	if len(n.log) != 2 || n.log[0] != 10 || n.log[1] != 20 {
		t.Fatalf("log = %v", n.log)
	}
	// Duplicate is ignored.
	n.Deliver(leader.entryMessage(1))
	if len(n.log) != 2 {
		t.Fatal("duplicate appended")
	}
}

func TestCommitRidesOnEntries(t *testing.T) {
	leader := newUnitNode(t, true, []uint64{10, 20})
	for i := uint64(1); i < 10; i++ {
		leader.Step(i)
	}
	n := newUnitNode(t, false, []uint64{10, 20})
	n.Deliver(leader.entryMessage(1))
	n.Deliver(leader.entryMessage(2))
	if n.CommitIndex() != 0 {
		t.Fatal("committed without leader commit")
	}
	leader.commitIndex = 2
	n.Deliver(leader.entryMessage(1))
	if n.CommitIndex() != 2 {
		t.Fatalf("commitIndex = %d, want 2", n.CommitIndex())
	}
	// Commit index never exceeds the local log.
	short := newUnitNode(t, false, []uint64{10, 20})
	short.Deliver(leader.entryMessage(1)) // log length 1, commit tag 2
	if short.CommitIndex() != 1 {
		t.Fatalf("commitIndex = %d, want clamp to log length 1", short.CommitIndex())
	}
}

func TestLeaderCommitsOnQuorum(t *testing.T) {
	leader := newUnitNode(t, true, []uint64{10, 20})
	for i := uint64(1); i < 10; i++ {
		leader.Step(i)
	}
	f1 := newUnitNode(t, false, []uint64{10, 20})
	f2 := newUnitNode(t, false, []uint64{10, 20})
	f1.log = []uint64{10, 20}
	f2.log = []uint64{10}

	leader.Deliver(f1.ackMessage())
	if leader.CommitIndex() != 0 {
		t.Fatal("committed with one of two acks")
	}
	leader.Deliver(f2.ackMessage())
	if leader.CommitIndex() != 1 {
		t.Fatalf("commitIndex = %d, want 1 (both acked index 1)", leader.CommitIndex())
	}
	f2.log = []uint64{10, 20}
	leader.Deliver(f2.ackMessage())
	if leader.CommitIndex() != 2 {
		t.Fatalf("commitIndex = %d, want 2", leader.CommitIndex())
	}
}

func TestMalformedPayloadsIgnored(t *testing.T) {
	n := newUnitNode(t, false, []uint64{1})
	n.Deliver(msg.Message{Kind: msg.KindData})
	n.Deliver(msg.Message{Kind: msg.KindData, Payload: []byte{tagEntry, 1}})
	n.Deliver(msg.Message{Kind: msg.KindData, Payload: []byte{'Z', 0, 0}})
	if len(n.log) != 0 || n.CommitIndex() != 0 {
		t.Fatal("malformed payload mutated state")
	}
}

// TestReplicationEndToEnd runs the full stack: Trapdoor synchronization
// under jamming, then replication of a command sequence, asserting the
// safety invariant (identical committed prefixes) every round and eventual
// full commitment.
func TestReplicationEndToEnd(t *testing.T) {
	const members, f, tJam = 4, 8, 2
	commands := []uint64{100, 200, 300, 400, 500}
	p := trapdoor.Params{N: 16, F: f, T: tJam}

	for seed := uint64(0); seed < 3; seed++ {
		nodes := make([]*Node, members)
		check := props.NewChecker(members)
		safety := funcObserver{fn: func(rec *sim.RoundRecord) {
			// Safety: all committed prefixes agree, all commit indexes
			// monotone (checked implicitly by prefix equality each round).
			for i := 0; i < members; i++ {
				for j := i + 1; j < members; j++ {
					a, b := nodes[i], nodes[j]
					if a == nil || b == nil {
						continue
					}
					m := a.CommitIndex()
					if b.CommitIndex() < m {
						m = b.CommitIndex()
					}
					for k := 0; k < m; k++ {
						if a.log[k] != b.log[k] {
							t.Fatalf("round %d: committed prefix mismatch at %d: %d vs %d",
								rec.Round, k, a.log[k], b.log[k])
						}
					}
				}
			}
		}}
		cfg := &sim.Config{
			F:    f,
			T:    tJam,
			Seed: seed,
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				n, err := New(Config{Members: members, F: f, Commands: commands, Settle: 200},
					trapdoor.MustNew(p, r), r)
				if err != nil {
					t.Fatal(err)
				}
				nodes[id] = n
				return n
			},
			Schedule:       sim.Simultaneous{Count: members},
			Adversary:      adversary.NewRandom(f, tJam, seed+31),
			MaxRounds:      60000,
			WireFidelity:   true, // replication payloads must fit a radio slot
			RunToMaxRounds: true, // the sync-completion stop rule would end the run before replication
			Observers:      []sim.Observer{check, safety},
			StopWhen: func(h *sim.History) bool {
				for _, n := range nodes {
					if n == nil || n.CommitIndex() < len(commands) {
						return false
					}
				}
				return true
			},
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !check.OK() {
			t.Fatalf("seed %d: sync violations: %v", seed, check.Violations())
		}
		for i, n := range nodes {
			if n.CommitIndex() != len(commands) {
				t.Fatalf("seed %d: node %d committed %d/%d (rounds=%d)",
					seed, i, n.CommitIndex(), len(commands), res.Stats.Rounds)
			}
			log := n.Log()
			for k, v := range log {
				if v != commands[k] {
					t.Fatalf("seed %d: node %d log[%d] = %d, want %d", seed, i, k, v, commands[k])
				}
			}
		}
	}
}

type funcObserver struct{ fn func(rec *sim.RoundRecord) }

func (f funcObserver) ObserveRound(rec *sim.RoundRecord) { f.fn(rec) }

// TestReplicationSurvivesLeaderCrash composes the Section 8 pieces: the
// fault-tolerant Trapdoor under a crashing leader, with replication riding
// on top. After the crash, a surviving node re-wins the election and
// finishes replicating the same command list; committed prefixes stay
// consistent throughout.
func TestReplicationSurvivesLeaderCrash(t *testing.T) {
	const members, f, tJam = 4, 8, 2
	commands := []uint64{11, 22, 33, 44, 55, 66}
	p := trapdoor.Params{
		N: 16, F: f, T: tJam,
		FaultTolerant: true,
		LeaderTimeout: 400,
	}
	crashAt := 3 * p.TotalRounds()

	nodes := make([]*Node, members)
	cfg := &sim.Config{
		F:    f,
		T:    tJam,
		Seed: 5,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			// Majority quorum: commitment must survive a dead member.
			n, err := New(Config{Members: members, F: f, Commands: commands, Settle: 150, Quorum: 2},
				trapdoor.MustNew(p, r), r)
			if err != nil {
				t.Fatal(err)
			}
			nodes[id] = n
			if id == 0 {
				// Node 0 activates first, wins, replicates a while, dies.
				return &adversary.CrashAgent{Inner: n, CrashAt: crashAt}
			}
			return n
		},
		Schedule:       sim.Staggered{Count: members, Gap: 2},
		Adversary:      adversary.NewPrefix(f, tJam),
		MaxRounds:      crashAt + 200000,
		RunToMaxRounds: true,
		StopWhen: func(h *sim.History) bool {
			if h.Completed <= crashAt {
				return false
			}
			for id := 1; id < members; id++ {
				if nodes[id] == nil || nodes[id].CommitIndex() < len(commands) {
					return false
				}
			}
			return true
		},
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitMaxRounds {
		t.Fatalf("survivors never finished replication after the crash (rounds=%d)", res.Stats.Rounds)
	}
	// A survivor must have taken over leadership.
	newLeader := false
	for id := 1; id < members; id++ {
		if nodes[id].IsLeader() {
			newLeader = true
		}
		if got := nodes[id].Log(); len(got) != len(commands) {
			t.Fatalf("node %d committed %d/%d", id, len(got), len(commands))
		}
		for k, v := range nodes[id].Log() {
			if v != commands[k] {
				t.Fatalf("node %d log[%d] = %d, want %d", id, k, v, commands[k])
			}
		}
	}
	if !newLeader {
		t.Fatal("no surviving node took over leadership")
	}
}
