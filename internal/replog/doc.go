// Package replog maintains a replicated log over the disrupted radio
// network, demonstrating the paper's Section 8 claim that "a leader
// combined with a common round view simplifies consensus [and] maintaining
// replicated state".
//
// Every node embeds a synchronization protocol (the Trapdoor Protocol by
// default). Once rounds are synchronized and a unique leader exists, the
// leader replicates a fixed command sequence: each round it broadcasts,
// with probability 1/2, one log entry (cycling across indexes not yet
// quorum-acknowledged) tagged with the current commit index. Followers
// append entries in order and, with small probability, broadcast
// cumulative acknowledgements. The leader commits an index once Quorum
// distinct followers acknowledged it (default: all of them); commit
// indexes ride on subsequent entries. Jamming and collisions only delay replication — retransmission
// is the protocol's only tool, exactly like the synchronization layer
// below it.
//
// Safety invariant (tested): committed prefixes are identical across all
// nodes at all times, and commit indexes are monotone.
package replog
