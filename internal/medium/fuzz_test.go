package medium

import (
	"testing"
)

// FuzzResolverReceive drives the resolver through fuzz-chosen topologies
// and multi-round transmit/listen/reset sequences and checks every
// listener × frequency reception against a naive per-receiver scan oracle.
// It is the resolver's differential anchor: both intersection strategies
// (neighbor-walk and bucket-walk), the complete-graph fast path, and the
// touched-only Reset bookkeeping must agree with the oracle on every
// input.
//
// Input layout (all quantities reduced modulo their range, so every byte
// string is valid):
//
//	byte 0       node count n in [1..8]
//	byte 1       frequency count F in [1..8]
//	byte 2       graph mode: even = complete graph (nil Graph), odd = the
//	             adjacency bits that follow
//	adjacency    n(n−1)/2 bits for the i<j pairs, graph mode only
//	rounds       n bytes per round, one per node:
//	             0 = asleep, 1 = listen, else transmit on 1+(b−2)%F
//
// Each decoded round registers actions in ascending node order (the
// resolver's contract), checks receptions, then Resets — so later rounds
// also verify that Reset cleared exactly the dirtied state.
func FuzzResolverReceive(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{5, 4, 0, 1, 2, 3, 0, 7})
	f.Add([]byte{3, 2, 1, 0b011, 2, 1, 1})
	f.Add(fuzzSeedStar())
	f.Add(fuzzSeedCollisions())
	f.Add(fuzzSeedMultiRound())
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		n := 1 + int(data[0]%8)
		freqs := 1 + int(data[1]%8)
		graphMode := data[2]%2 == 1
		data = data[3:]

		var g Graph
		var adj [][]int
		if graphMode {
			adj = make([][]int, n)
			bit := 0
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					var b byte
					if bit/8 < len(data) {
						b = data[bit/8]
					}
					if b>>(uint(bit)%8)&1 == 1 {
						adj[i] = append(adj[i], j)
						adj[j] = append(adj[j], i)
					}
					bit++
				}
			}
			consumed := (bit + 7) / 8
			if consumed > len(data) {
				consumed = len(data)
			}
			data = data[consumed:]
			g = &testGraph{adj: adj}
		}

		r := NewResolver(freqs, n, g)
		listen := make([]bool, n)
		txOn := make([]int, n) // 0 = not transmitting
		for len(data) >= n {
			round := data[:n]
			data = data[n:]
			for i := 0; i < n; i++ {
				listen[i], txOn[i] = false, 0
				switch {
				case round[i] == 0:
				case round[i] == 1:
					listen[i] = true
					r.Listen(i)
				default:
					txOn[i] = 1 + int(round[i]-2)%freqs
					r.Transmit(i, txOn[i])
				}
			}

			// TouchedAscending must list exactly the transmitted-on
			// frequencies, ascending.
			touched := r.TouchedAscending()
			seen := make(map[int]bool)
			for _, q := range touched {
				seen[q] = true
			}
			for i, q := range touched {
				if i > 0 && touched[i-1] >= q {
					t.Fatalf("touched not strictly ascending: %v", touched)
				}
			}
			for q := 1; q <= freqs; q++ {
				want := 0
				for i := 0; i < n; i++ {
					if txOn[i] == q {
						want++
					}
				}
				if seen[q] != (want > 0) {
					t.Fatalf("touched/%d mismatch: touched=%v want count %d", q, touched, want)
				}
				if got := r.Count(q); got != want {
					t.Fatalf("Count(%d) = %d, oracle %d", q, got, want)
				}
			}

			// Every listener × every frequency against the scan oracle.
			for u := 0; u < n; u++ {
				if !listen[u] {
					continue
				}
				for q := 1; q <= freqs; q++ {
					gotFrom, gotCount := r.Receive(u, q)
					wantFrom, wantCount := oracleReceive(u, q, n, adj, graphMode, txOn)
					if gotCount != wantCount {
						t.Fatalf("Receive(%d,%d) count = %d, oracle %d (n=%d F=%d graph=%v tx=%v adj=%v)",
							u, q, gotCount, wantCount, n, freqs, graphMode, txOn, adj)
					}
					if wantCount == 1 && gotFrom != wantFrom {
						t.Fatalf("Receive(%d,%d) from = %d, oracle %d (tx=%v adj=%v)",
							u, q, gotFrom, wantFrom, txOn, adj)
					}
				}
			}
			r.Reset()
		}
	})
}

// oracleReceive is the naive per-receiver scan: walk every node, count the
// ones transmitting on q that u can hear (everyone in complete-graph mode,
// adjacency otherwise), saturating at 2; from is the unique transmitter
// when the count is 1.
func oracleReceive(u, q, n int, adj [][]int, graphMode bool, txOn []int) (from, count int) {
	from = -1
	hears := func(w int) bool {
		if !graphMode {
			return true
		}
		for _, x := range adj[u] {
			if x == w {
				return true
			}
		}
		return false
	}
	for w := 0; w < n; w++ {
		if txOn[w] != q || !hears(w) {
			continue
		}
		from = w
		if count++; count >= 2 {
			return from, 2
		}
	}
	return from, count
}

// fuzzSeedStar encodes a star graph (hub 0 of 1..4) with leaf and
// detached transmissions — the bucket-walk vs neighbor-walk split.
func fuzzSeedStar() []byte {
	// n=5, F=3, graph mode; adjacency bits for pairs (0,1)(0,2)(0,3)(0,4)
	// (1,2)(1,3)(1,4)(2,3)(2,4)(3,4): star = first four bits set.
	return []byte{5, 3, 1, 0b00001111, 0b00,
		1, 2, 2, 1, 0, // hub listens, leaves 1-2 transmit on F=1, leaf 3 listens
		1, 1, 1, 1, 1, // everyone listens (silence)
	}
}

// fuzzSeedCollisions encodes a complete-graph round with a three-way
// collision and a clean singleton on another frequency.
func fuzzSeedCollisions() []byte {
	return []byte{4, 4, 0,
		2, 2, 2, 1, // nodes 0-2 collide on frequency 1, node 3 listens
		3, 1, 1, 1, // node 0 alone on frequency 2, the rest listen
	}
}

// fuzzSeedMultiRound exercises Reset: a busy round followed by a sparse
// one on different frequencies.
func fuzzSeedMultiRound() []byte {
	return []byte{6, 5, 1, 0b10110101, 0b1101010,
		2, 3, 4, 5, 6, 1,
		1, 1, 0, 0, 2, 1,
		6, 1, 6, 1, 6, 1,
	}
}
