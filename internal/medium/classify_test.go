package medium

import (
	"testing"

	"wsync/internal/freqset"
	"wsync/internal/rng"
)

// classifyReference is the per-frequency switch ClassifyTouched replaced;
// kept here as its oracle.
func classifyReference(r *Resolver, disrupted *freqset.Set, dst []int) (clear []int, collisions, jammed int) {
	for _, f := range r.TouchedAscending() {
		switch {
		case r.Count(f) >= 2:
			collisions++
		case disrupted.Contains(f):
			jammed++
		default:
			dst = append(dst, f)
		}
	}
	return dst, collisions, jammed
}

// TestClassifyTouchedMatchesSwitch drives randomized rounds through two
// identically fed resolvers and checks the branch-free classify against the
// switch reference: same clear list, same collision and jam counts.
func TestClassifyTouchedMatchesSwitch(t *testing.T) {
	const f, n = 32, 64
	r := rng.New(0xc1a551f7)
	a := NewResolver(f, n, nil)
	b := NewResolver(f, n, nil)
	for round := 0; round < 500; round++ {
		disrupted := freqset.New(f)
		for k := 0; k < r.Intn(6); k++ {
			disrupted.Add(1 + r.Intn(f))
		}
		for i := 0; i < n; i++ {
			if r.Bernoulli(0.4) {
				freq := 1 + r.Intn(f)
				a.Transmit(i, freq)
				b.Transmit(i, freq)
			}
		}
		gotClear, gotCol, gotJam := a.ClassifyTouched(disrupted, nil)
		wantClear, wantCol, wantJam := classifyReference(b, disrupted, nil)
		if gotCol != wantCol || gotJam != wantJam {
			t.Fatalf("round %d: counts (%d, %d), want (%d, %d)", round, gotCol, gotJam, wantCol, wantJam)
		}
		if len(gotClear) != len(wantClear) {
			t.Fatalf("round %d: clear %v, want %v", round, gotClear, wantClear)
		}
		for i := range gotClear {
			if gotClear[i] != wantClear[i] {
				t.Fatalf("round %d: clear %v, want %v", round, gotClear, wantClear)
			}
		}
		a.Reset()
		b.Reset()
	}
}

// TestClassifyTouchedAppendsToDst checks that clear frequencies are appended
// after dst's existing contents, which the engine relies on (it passes its
// round record's Clear slice truncated to zero length).
func TestClassifyTouchedAppendsToDst(t *testing.T) {
	r := NewResolver(8, 4, nil)
	r.Transmit(0, 3)
	r.Transmit(1, 5)
	r.Transmit(2, 5) // collision
	r.Transmit(3, 7) // jammed below
	disrupted := freqset.FromSlice(8, []int{7})
	clear, col, jam := r.ClassifyTouched(disrupted, []int{-1})
	if len(clear) != 2 || clear[0] != -1 || clear[1] != 3 {
		t.Fatalf("clear = %v, want [-1 3]", clear)
	}
	if col != 1 || jam != 1 {
		t.Fatalf("collisions, jammed = %d, %d, want 1, 1", col, jam)
	}
}
