// Package medium is the shared frequency-indexed medium resolver under
// both simulation engines: the single-hop engine in internal/sim and the
// multi-hop engine in internal/multihop resolve each round's radio
// activity through the same machinery, parameterized by topology.
//
// The package has two pieces. Activation turns a schedule's per-node
// activation rounds into per-round wake buckets and a sorted active list,
// so per-round activation and iteration over awake nodes cost O(awake),
// not O(N). Resolver indexes one round of activity by frequency: a single
// pass over the awake nodes builds per-frequency transmitter buckets and
// the listener list, classification visits only the frequencies actually
// touched this round, and Reset re-zeroes only what the round dirtied —
// per-round cost is O(active · log active), independent of F and N.
//
// Topology enters through the Graph interface. A nil Graph is the
// complete graph — the single-hop model, where a listener's reception
// depends only on the global per-frequency transmitter count, so the
// resolver skips transmitter buckets and per-node transmit state
// entirely. With a Graph, Receive intersects a listener's frequency
// bucket with its neighborhood, choosing bucket-walk or neighbor-walk by
// comparing degree against bucket size: low-degree listeners probe their
// neighbors' transmit state, high-degree listeners binary-search the
// (smaller) transmitter bucket against their sorted neighbor list.
//
// Topology may also change while a resolver lives: SetGraph swaps the
// Graph between rounds — invalidating any per-node transmit state
// registered under the old one — which is the hook dynamic-topology
// experiments (nodes moving, edges churning per round) build on.
//
// Both engines keep their legacy full-scan resolvers as differential
// oracles (sim.MediumScan, multihop's Config.Medium knob); the indexed
// path must stay bit-identical to them in every observable, which
// TestMediumDifferential (internal/sim) and TestMultihopMediumDifferential
// (internal/multihop) assert over randomized topologies, schedules, and
// adversaries.
package medium
