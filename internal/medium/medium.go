package medium

import (
	"fmt"

	"wsync/internal/freqset"
)

// Graph is the read-only topology view the resolver resolves receptions
// against: an undirected communication graph over dense node indices
// 0..N-1. Implementations must list each node's neighbors in ascending
// order — the resolver binary-searches neighbor lists on the bucket-walk
// path. A nil Graph means the complete graph (the single-hop model):
// every node neighbors every other node.
type Graph interface {
	// N returns the node count.
	N() int
	// Neighbors returns node i's neighbor list in ascending order. The
	// resolver never mutates the returned slice.
	Neighbors(i int) []int
}

// Activation tracks which nodes are awake. Nodes never deactivate, so the
// active list only ever grows; it is kept in ascending index order, which
// is the iteration order both medium resolvers and the engines' bookkeeping
// loops depend on. Buckets map an activation round to the nodes it wakes,
// so waking a round's nodes costs O(|bucket|), not O(N).
type Activation struct {
	rounds  []uint64
	buckets map[uint64][]int
	active  []int
	scratch []int // spare buffer the out-of-order merge swaps with active
	max     uint64
}

// NewActivation indexes the given per-node activation rounds (as read from
// a schedule). The slice is retained; callers must not mutate it.
func NewActivation(rounds []uint64) *Activation {
	a := &Activation{
		rounds:  rounds,
		buckets: make(map[uint64][]int),
		active:  make([]int, 0, len(rounds)),
		scratch: make([]int, 0, len(rounds)),
	}
	for i, r := range rounds {
		// Range over the slice visits nodes in ascending index order, so
		// each bucket is born sorted.
		a.buckets[r] = append(a.buckets[r], i)
		if r > a.max {
			a.max = r
		}
	}
	return a
}

// Round returns node i's activation round.
func (a *Activation) Round(i int) uint64 { return a.rounds[i] }

// Max returns the latest activation round of any node.
func (a *Activation) Max() uint64 { return a.max }

// Active returns the awake nodes in ascending index order. The slice is
// valid until the next Wake call.
func (a *Activation) Active() []int { return a.active }

// Wake merges round r's activation bucket into the active list and returns
// the bucket (nil if the round wakes nobody) so callers can run their own
// per-node bookkeeping over exactly the newly woken nodes.
func (a *Activation) Wake(r uint64) []int {
	bucket := a.buckets[r]
	if len(bucket) == 0 {
		return nil
	}
	old := a.active
	// Schedules usually activate in index order, so the append fast path
	// covers almost every round; the general merge handles explicit
	// schedules that wake a low index after a high one.
	if len(old) == 0 || old[len(old)-1] < bucket[0] {
		a.active = append(old, bucket...)
		return bucket
	}
	// Merge into the spare buffer and swap it with the active list; both
	// were preallocated at capacity len(rounds), so no round allocates.
	merged := a.scratch[:0]
	i, j := 0, 0
	for i < len(old) && j < len(bucket) {
		if old[i] < bucket[j] {
			merged = append(merged, old[i])
			i++
		} else {
			merged = append(merged, bucket[j])
			j++
		}
	}
	merged = append(merged, old[i:]...)
	merged = append(merged, bucket[j:]...)
	a.active, a.scratch = merged, old[:0]
	return bucket
}

// Resolver indexes one round of radio activity by frequency: per-frequency
// transmitter buckets and a listener list, built from one pass over the
// awake nodes, with only the frequencies actually touched this round
// classified and re-zeroed. Per-round cost is O(active · log active),
// independent of F and N.
//
// Usage per round: Transmit/Listen for every awake node, then
// TouchedAscending and Receive to classify, then Reset. The zero frequency
// is reserved (frequencies are 1-based).
type Resolver struct {
	f     int
	n     int
	graph Graph

	txCount   []int // per frequency: transmitter count
	txLast    []int // per frequency: the most recently registered transmitter
	txNodes   [][]int
	touched   []int
	listeners []int

	// txFreq[i] is the frequency node i transmits on this round (0 when
	// listening or asleep). Only maintained in graph mode, where the
	// neighbor-walk needs O(1) "is w transmitting on f" queries.
	txFreq []int
}

// NewResolver builds a resolver for frequencies 1..f over n nodes. A nil
// graph selects the complete-graph (single-hop) fast path, which never
// materializes transmitter buckets or per-node transmit state.
func NewResolver(f int, n int, graph Graph) *Resolver {
	r := &Resolver{
		f:       f,
		n:       n,
		graph:   graph,
		txCount: make([]int, f+1),
		txLast:  make([]int, f+1),
	}
	if graph != nil {
		r.txNodes = make([][]int, f+1)
		r.txFreq = make([]int, n)
	}
	return r
}

// Transmit registers node i as transmitting on frequency f this round.
// Nodes must be registered in ascending index order (iterate the active
// list), so each frequency's bucket is born sorted.
func (r *Resolver) Transmit(i, f int) {
	if r.txCount[f] == 0 {
		r.touched = append(r.touched, f)
	}
	r.txCount[f]++
	r.txLast[f] = i
	if r.graph != nil {
		r.txNodes[f] = append(r.txNodes[f], i)
		r.txFreq[i] = f
	}
}

// Listen registers node i as listening this round. Like Transmit, calls
// must come in ascending index order.
func (r *Resolver) Listen(i int) {
	r.listeners = append(r.listeners, i)
}

// Listeners returns this round's listeners in registration (ascending
// node) order. Valid until Reset.
func (r *Resolver) Listeners() []int { return r.listeners }

// TouchedAscending returns the frequencies at least one node transmitted
// on this round, in ascending order — matching the legacy scan resolvers'
// [1..F] sweep order bit for bit. Valid until Reset.
//
// Sparse rounds (few distinct frequencies) insertion-sort the touched list
// in place; dense rounds batch the pass instead, rebuilding the list by a
// single branch-predictable sweep of the count array, which is cheaper
// than comparison sorting once a meaningful fraction of the band is in
// play. Both paths are allocation-free and produce the identical list.
func (r *Resolver) TouchedAscending() []int {
	m := len(r.touched)
	if m < 2 {
		return r.touched
	}
	if m >= r.f/8 {
		// Dense: r.touched holds exactly the frequencies with a nonzero
		// count, so sweeping [1..F] for nonzero counts rebuilds the same
		// set already ordered.
		r.touched = r.touched[:0]
		for f := 1; f <= r.f; f++ {
			if r.txCount[f] != 0 {
				r.touched = append(r.touched, f)
			}
		}
		return r.touched
	}
	for i := 1; i < m; i++ {
		for j := i; j > 0 && r.touched[j-1] > r.touched[j]; j-- {
			r.touched[j-1], r.touched[j] = r.touched[j], r.touched[j-1]
		}
	}
	return r.touched
}

// Count returns the number of transmitters on frequency f this round.
func (r *Resolver) Count(f int) int { return r.txCount[f] }

// From returns the transmitter on frequency f; meaningful when Count(f)
// is exactly 1.
func (r *Resolver) From(f int) int { return r.txLast[f] }

// b2i converts a predicate to 0/1; the compiler lowers it to SETcc, so the
// classify loop below carries no data-dependent branches.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ClassifyTouched classifies every frequency at least one node transmitted
// on this round, in ascending order, into exactly one of three outcomes:
// collision (two or more transmitters), jammed (a single transmitter on a
// frequency in disrupted), or clear (a single undisrupted transmitter).
// Clear frequencies are appended to dst, which is returned alongside the
// collision and jammed counts.
//
// The classification is the branch-free equivalent of the per-frequency
// switch the engines historically ran: each outcome is a packed 0/1
// predicate, and the clear list is maintained by appending unconditionally
// and retracting the slot when either predicate fired. Only the
// TouchedAscending ordering pass has data-dependent control flow.
func (r *Resolver) ClassifyTouched(disrupted *freqset.Set, dst []int) (clear []int, collisions, jammed int) {
	for _, f := range r.TouchedAscending() {
		multi := b2i(r.txCount[f] >= 2)
		dis := b2i(disrupted.Contains(f)) &^ multi
		collisions += multi
		jammed += dis
		dst = append(dst, f)
		dst = dst[:len(dst)-multi-dis]
	}
	return dst, collisions, jammed
}

// Receive resolves what listener u hears on frequency f: the number of
// transmitters in u's neighborhood on f, and one of them (the unique one
// when count is 1). The count saturates at 2 — callers only distinguish
// silence, a clean reception, and a collision.
//
// With a nil graph every transmitter is a neighbor and the answer is the
// global per-frequency count. With a graph, the resolver intersects the
// frequency's transmitter bucket with u's neighborhood, walking whichever
// side is smaller: the neighbor-walk probes per-node transmit state for
// each neighbor of u, the bucket-walk binary-searches u's sorted neighbor
// list for each transmitter on f.
func (r *Resolver) Receive(u, f int) (from, count int) {
	if r.graph == nil {
		count = r.txCount[f]
		if count > 2 {
			count = 2
		}
		return r.txLast[f], count
	}
	bucket := r.txNodes[f]
	if len(bucket) == 0 {
		return -1, 0
	}
	nbrs := r.graph.Neighbors(u)
	from = -1
	if len(nbrs) <= len(bucket) {
		for _, w := range nbrs {
			if r.txFreq[w] == f {
				from = w
				if count++; count >= 2 {
					return from, 2
				}
			}
		}
		return from, count
	}
	for _, w := range bucket {
		if containsSorted(nbrs, w) {
			from = w
			if count++; count >= 2 {
				return from, 2
			}
		}
	}
	return from, count
}

// SetGraph swaps the topology the resolver resolves against — the
// dynamic-topology hook: engines that churn edges between rounds swap in
// the new Graph here instead of rebuilding the resolver (which would
// reallocate every per-frequency bucket). Any transmit or listen state
// registered under the old graph is invalidated, exactly as if Reset had
// run, so a mid-round swap can never leak one topology's per-node
// transmit state into another's receptions. A nil graph switches to the
// complete-graph fast path; per-node state grows as needed if the new
// graph covers more nodes than the resolver was built for.
//
// The node universe only ever grows: swapping in a graph with fewer nodes
// than the resolver currently covers panics. Nodes at or above the new
// graph's count may already be registered (or active in the caller's
// bookkeeping), and resolving them would index past the new adjacency —
// shrinking silently was a latent out-of-range read. Callers that truly
// want a smaller universe build a fresh resolver.
func (r *Resolver) SetGraph(g Graph) {
	if g != nil && g.N() < r.n {
		panic(fmt.Sprintf("medium: SetGraph shrinks the node universe from %d to %d; build a new resolver instead",
			r.n, g.N()))
	}
	// Reset while the old graph is still installed: in graph mode it is
	// what clears the per-node txFreq entries this round dirtied.
	r.Reset()
	r.graph = g
	if g == nil {
		return
	}
	if n := g.N(); n > r.n {
		r.n = n
	}
	if r.txNodes == nil {
		r.txNodes = make([][]int, r.f+1)
	}
	if len(r.txFreq) < r.n {
		// Reset above left every entry zero, so a fresh zeroed slice is
		// equivalent to growing the old one.
		r.txFreq = make([]int, r.n)
	}
}

// containsSorted reports whether x occurs in the ascending slice s.
func containsSorted(s []int, x int) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == x
}

// Reset re-zeroes only what this round dirtied, preparing the resolver for
// the next round in O(touched + transmitters + listeners).
func (r *Resolver) Reset() {
	for _, f := range r.touched {
		r.txCount[f] = 0
		if r.graph != nil {
			for _, i := range r.txNodes[f] {
				r.txFreq[i] = 0
			}
			r.txNodes[f] = r.txNodes[f][:0]
		}
	}
	r.touched = r.touched[:0]
	r.listeners = r.listeners[:0]
}
