package medium

import (
	"testing"
)

// testGraph is a minimal Graph over explicit ascending adjacency lists.
type testGraph struct {
	adj [][]int
}

func (g *testGraph) N() int                { return len(g.adj) }
func (g *testGraph) Neighbors(i int) []int { return g.adj[i] }

func TestActivationWakeInOrder(t *testing.T) {
	a := NewActivation([]uint64{1, 1, 3, 3, 5})
	if a.Max() != 5 {
		t.Fatalf("Max = %d, want 5", a.Max())
	}
	if got := a.Wake(1); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("round 1 bucket = %v", got)
	}
	if got := a.Wake(2); got != nil {
		t.Fatalf("round 2 bucket = %v, want nil", got)
	}
	a.Wake(3)
	a.Wake(5)
	want := []int{0, 1, 2, 3, 4}
	if got := a.Active(); len(got) != len(want) {
		t.Fatalf("active = %v", got)
	}
	for i, v := range want {
		if a.Active()[i] != v {
			t.Fatalf("active = %v, want %v", a.Active(), want)
		}
	}
}

// TestActivationWakeOutOfOrder exercises the merge path: a high index
// wakes before a low one, and the active list must stay ascending.
func TestActivationWakeOutOfOrder(t *testing.T) {
	a := NewActivation([]uint64{3, 1, 2})
	a.Wake(1) // node 1
	a.Wake(2) // node 2
	a.Wake(3) // node 0 — must merge in front
	want := []int{0, 1, 2}
	got := a.Active()
	if len(got) != len(want) {
		t.Fatalf("active = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("active = %v, want ascending %v", got, want)
		}
	}
	// Rounds survive for local-round arithmetic.
	if a.Round(0) != 3 || a.Round(2) != 2 {
		t.Fatal("Round() lost the schedule")
	}
}

// TestActivationEdgeCases covers the wake-bookkeeping paths that had no
// direct coverage: duplicate wake rounds, everyone awake at round zero, a
// single node, and Wake probes past Max.
func TestActivationEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		rounds  []uint64
		wake    []uint64 // Wake calls, in order
		buckets []int    // expected bucket size per Wake call
		active  []int
		max     uint64
	}{
		{
			name:    "duplicate wake rounds",
			rounds:  []uint64{2, 2, 2},
			wake:    []uint64{1, 2},
			buckets: []int{0, 3}, // one shared bucket wakes all three
			active:  []int{0, 1, 2},
			max:     2,
		},
		{
			name:    "all awake at zero",
			rounds:  []uint64{0, 0, 0, 0},
			wake:    []uint64{0},
			buckets: []int{4},
			active:  []int{0, 1, 2, 3},
			max:     0,
		},
		{
			name:    "single node",
			rounds:  []uint64{7},
			wake:    []uint64{6, 7},
			buckets: []int{0, 1},
			active:  []int{0},
			max:     7,
		},
		{
			name:    "wake past max",
			rounds:  []uint64{1, 3},
			wake:    []uint64{1, 3, 4, 1 << 40},
			buckets: []int{1, 1, 0, 0},
			active:  []int{0, 1},
			max:     3,
		},
		{
			name:    "no wake calls",
			rounds:  []uint64{5, 6},
			wake:    nil,
			buckets: nil,
			active:  nil,
			max:     6,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := NewActivation(c.rounds)
			if a.Max() != c.max {
				t.Fatalf("Max = %d, want %d", a.Max(), c.max)
			}
			for i, r := range c.wake {
				if got := len(a.Wake(r)); got != c.buckets[i] {
					t.Fatalf("Wake(%d) bucket size = %d, want %d", r, got, c.buckets[i])
				}
			}
			got := a.Active()
			if len(got) != len(c.active) {
				t.Fatalf("active = %v, want %v", got, c.active)
			}
			for i := range c.active {
				if got[i] != c.active[i] {
					t.Fatalf("active = %v, want %v", got, c.active)
				}
			}
			for i, r := range c.rounds {
				if a.Round(i) != r {
					t.Fatalf("Round(%d) = %d, want %d", i, a.Round(i), r)
				}
			}
		})
	}
}

// TestResolverCompleteGraph checks the single-hop (nil graph) path:
// Receive answers from the global per-frequency counters.
func TestResolverCompleteGraph(t *testing.T) {
	r := NewResolver(4, 5, nil)
	r.Transmit(0, 2)
	r.Transmit(1, 3)
	r.Transmit(2, 3)
	r.Listen(3)
	r.Listen(4)
	touched := r.TouchedAscending()
	if len(touched) != 2 || touched[0] != 2 || touched[1] != 3 {
		t.Fatalf("touched = %v", touched)
	}
	if r.Count(2) != 1 || r.From(2) != 0 {
		t.Fatalf("freq 2: count=%d from=%d", r.Count(2), r.From(2))
	}
	if from, count := r.Receive(3, 2); count != 1 || from != 0 {
		t.Fatalf("Receive(3,2) = %d,%d", from, count)
	}
	if _, count := r.Receive(3, 3); count != 2 {
		t.Fatalf("Receive(3,3) count = %d, want saturated 2", count)
	}
	if _, count := r.Receive(4, 1); count != 0 {
		t.Fatalf("Receive(4,1) count = %d, want 0", count)
	}
	if l := r.Listeners(); len(l) != 2 || l[0] != 3 || l[1] != 4 {
		t.Fatalf("listeners = %v", l)
	}
	r.Reset()
	if r.Count(2) != 0 || r.Count(3) != 0 || len(r.Listeners()) != 0 {
		t.Fatal("Reset did not clear the round")
	}
}

// TestResolverGraphWalks exercises both intersection strategies on a star
// graph: the hub has high degree (bucket-walk), the leaves degree one
// (neighbor-walk).
func TestResolverGraphWalks(t *testing.T) {
	// Star: 0 is the hub of 1..6; plus the detached edge 7—8.
	g := &testGraph{adj: [][]int{
		{1, 2, 3, 4, 5, 6}, {0}, {0}, {0}, {0}, {0}, {0}, {8}, {7},
	}}
	r := NewResolver(3, g.N(), g)
	r.Transmit(2, 1) // leaf 2 on freq 1
	r.Transmit(8, 1) // detached node 8 on freq 1
	r.Listen(0)
	r.Listen(1)
	r.Listen(7)

	// Hub: bucket {2, 8} is smaller than degree 6 — bucket-walk finds
	// only neighbor 2.
	if from, count := r.Receive(0, 1); count != 1 || from != 2 {
		t.Fatalf("hub Receive = %d,%d, want 2,1", from, count)
	}
	// Leaf 1: degree 1 — neighbor-walk; its only neighbor 0 listens.
	if _, count := r.Receive(1, 1); count != 0 {
		t.Fatalf("leaf Receive count = %d, want 0", count)
	}
	// Node 7 neighbors only 8, which transmits on 1.
	if from, count := r.Receive(7, 1); count != 1 || from != 8 {
		t.Fatalf("detached Receive = %d,%d, want 8,1", from, count)
	}

	// A second hub transmitter makes the hub collide; leaves still hear
	// only their own neighbor.
	r.Transmit(5, 1)
	if _, count := r.Receive(0, 1); count != 2 {
		t.Fatalf("hub collision count = %d, want 2", count)
	}
	if from, count := r.Receive(7, 1); count != 1 || from != 8 {
		t.Fatalf("spatial reuse broken: %d,%d", from, count)
	}

	// Reset clears per-node transmit state too.
	r.Reset()
	r.Listen(0)
	if _, count := r.Receive(0, 1); count != 0 {
		t.Fatalf("after Reset, hub hears count = %d, want 0", count)
	}
}

// TestResolverSetGraph covers the dynamic-topology hook: swapping the
// Graph between (or even mid-) rounds invalidates per-node transmit
// state and behaves exactly like a resolver freshly built on the new
// topology.
func TestResolverSetGraph(t *testing.T) {
	line := &testGraph{adj: [][]int{{1}, {0, 2}, {1}}}           // 0—1—2
	triangle := &testGraph{adj: [][]int{{1, 2}, {0, 2}, {0, 1}}} // complete on 3

	// round registers the same activity on any resolver: 0 and 2
	// transmit on frequency 1, node 1 listens.
	round := func(r *Resolver) {
		r.Transmit(0, 1)
		r.Listen(1)
		r.Transmit(2, 1)
	}

	t.Run("graph to graph matches fresh resolver", func(t *testing.T) {
		r := NewResolver(2, 3, line)
		round(r)
		// On the line, listener 1 neighbors both transmitters: collision.
		if _, count := r.Receive(1, 1); count != 2 {
			t.Fatalf("line Receive count = %d, want 2", count)
		}
		r.SetGraph(&testGraph{adj: [][]int{{1}, {0}, {}}}) // 0—1, 2 isolated
		round(r)
		fresh := NewResolver(2, 3, &testGraph{adj: [][]int{{1}, {0}, {}}})
		round(fresh)
		gf, gc := r.Receive(1, 1)
		wf, wc := fresh.Receive(1, 1)
		if gf != wf || gc != wc {
			t.Fatalf("swapped Receive = %d,%d; fresh = %d,%d", gf, gc, wf, wc)
		}
		// Isolated node 2's transmission is now invisible: clean reception
		// from 0 only.
		if gc != 1 || gf != 0 {
			t.Fatalf("Receive = %d,%d, want 0,1", gf, gc)
		}
	})

	t.Run("mid-round swap invalidates transmit state", func(t *testing.T) {
		r := NewResolver(2, 3, line)
		round(r) // never resolved or Reset
		r.SetGraph(triangle)
		if got := len(r.Listeners()); got != 0 {
			t.Fatalf("listeners survived the swap: %d", got)
		}
		if r.Count(1) != 0 {
			t.Fatalf("Count(1) = %d after swap, want 0", r.Count(1))
		}
		r.Listen(1)
		if _, count := r.Receive(1, 1); count != 0 {
			t.Fatalf("stale transmission heard after swap: count = %d", count)
		}
	})

	t.Run("nil to graph and back", func(t *testing.T) {
		r := NewResolver(2, 3, nil)
		round(r)
		// Complete graph: global count, collision.
		if _, count := r.Receive(1, 1); count != 2 {
			t.Fatalf("complete-graph count = %d, want 2", count)
		}
		r.SetGraph(&testGraph{adj: [][]int{{1}, {0}, {}}})
		round(r)
		if from, count := r.Receive(1, 1); count != 1 || from != 0 {
			t.Fatalf("after nil→graph swap Receive = %d,%d, want 0,1", from, count)
		}
		r.SetGraph(nil)
		round(r)
		if _, count := r.Receive(1, 1); count != 2 {
			t.Fatalf("after graph→nil swap count = %d, want 2", count)
		}
	})

	t.Run("new graph may grow the node count", func(t *testing.T) {
		r := NewResolver(2, 2, &testGraph{adj: [][]int{{1}, {0}}})
		r.Transmit(0, 1)
		r.Reset()
		big := &testGraph{adj: [][]int{{3}, {2}, {1}, {0}}} // 0—3, 1—2
		r.SetGraph(big)
		r.Transmit(3, 1)
		r.Listen(0)
		r.Listen(1)
		if from, count := r.Receive(0, 1); count != 1 || from != 3 {
			t.Fatalf("grown Receive(0) = %d,%d, want 3,1", from, count)
		}
		if _, count := r.Receive(1, 1); count != 0 {
			t.Fatalf("grown Receive(1) count = %d, want 0", count)
		}
	})
}

// TestSetGraphShrink pins the node-universe rule: the universe only ever
// grows. Swapping in a graph with fewer nodes than the resolver currently
// covers must panic — nodes at or above the new count may already be
// registered, and resolving them would index past the new adjacency (the
// latent out-of-range read this rule exists to forbid).
func TestSetGraphShrink(t *testing.T) {
	mk := func(n int) Graph {
		adj := make([][]int, n)
		for i := 1; i < n; i++ { // star on node 0, any shape works
			adj[0] = append(adj[0], i)
			adj[i] = []int{0}
		}
		return &testGraph{adj: adj}
	}
	cases := []struct {
		name      string
		start     Graph // nil = complete-graph mode over startN nodes
		startN    int
		swaps     []Graph // applied in order; the last one is under test
		wantPanic bool
	}{
		{"same size is fine", mk(3), 3, []Graph{mk(3)}, false},
		{"growing is fine", mk(2), 2, []Graph{mk(4)}, false},
		{"swap to nil is fine", mk(3), 3, []Graph{nil}, false},
		{"nil to equal graph is fine", nil, 3, []Graph{mk(3)}, false},
		{"shrink panics", mk(3), 3, []Graph{mk(2)}, true},
		{"shrink below the nil-mode universe panics", nil, 4, []Graph{mk(3)}, true},
		{"shrink after growth panics", mk(2), 2, []Graph{mk(4), mk(3)}, true},
		{"nil does not reset the grown universe", mk(2), 2, []Graph{mk(4), nil, mk(2)}, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := NewResolver(2, tc.startN, tc.start)
			for _, g := range tc.swaps[:len(tc.swaps)-1] {
				r.SetGraph(g)
			}
			last := tc.swaps[len(tc.swaps)-1]
			defer func() {
				if got := recover() != nil; got != tc.wantPanic {
					t.Fatalf("panic = %v, want %v", got, tc.wantPanic)
				}
			}()
			r.SetGraph(last)
		})
	}
}

func TestContainsSorted(t *testing.T) {
	s := []int{1, 4, 7, 9, 30}
	for _, x := range s {
		if !containsSorted(s, x) {
			t.Fatalf("missing %d", x)
		}
	}
	for _, x := range []int{0, 2, 8, 31} {
		if containsSorted(s, x) {
			t.Fatalf("phantom %d", x)
		}
	}
	if containsSorted(nil, 1) {
		t.Fatal("phantom in empty")
	}
}
