// Package msg defines the messages exchanged by the synchronization
// protocols and their compact binary wire format.
//
// The paper's protocols exchange three message classes: contender messages
// carrying a timestamp (used for the Trapdoor knockout rule), samaritan
// messages carrying success reports (used by the Good Samaritan protocol),
// and leader messages carrying the round numbering scheme. A fourth kind,
// Data, is used by the example applications that build on synchronized
// rounds.
//
// Messages are value types; the simulator copies them by value between
// sender and receiver, so protocols never share mutable state through the
// ether. Reports and Payload slices are defensively copied by Clone when a
// receiver needs to retain them.
package msg
