package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Kind identifies the class of a message.
type Kind uint8

// Message kinds. They start at one so that the zero Message is recognizably
// invalid.
const (
	KindContender Kind = iota + 1
	KindSamaritan
	KindLeader
	KindData
)

// String returns the kind's name for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindContender:
		return "contender"
	case KindSamaritan:
		return "samaritan"
	case KindLeader:
		return "leader"
	case KindData:
		return "data"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Timestamp is the pair (ra, uid) from Section 6: Age is the number of
// rounds the sender has been active and UID its random unique identifier.
// Timestamps are ordered lexicographically; an older node (larger Age) has
// the larger timestamp.
type Timestamp struct {
	Age uint64
	UID uint64
}

// Compare returns -1, 0, or +1 as t is lexicographically smaller than,
// equal to, or larger than o.
func (t Timestamp) Compare(o Timestamp) int {
	switch {
	case t.Age < o.Age:
		return -1
	case t.Age > o.Age:
		return 1
	case t.UID < o.UID:
		return -1
	case t.UID > o.UID:
		return 1
	default:
		return 0
	}
}

// Less reports whether t orders strictly before o.
func (t Timestamp) Less(o Timestamp) bool { return t.Compare(o) < 0 }

// String renders the timestamp as (age, uid).
func (t Timestamp) String() string { return fmt.Sprintf("(ra=%d, uid=%d)", t.Age, t.UID) }

// Report is one samaritan success tally: the samaritan observed Count
// successful non-special critical-epoch rounds for the contender with the
// given UID.
type Report struct {
	UID   uint64
	Count uint32
}

// Message is a single radio transmission payload.
type Message struct {
	Kind Kind

	// TS is the sender's timestamp, present on every protocol message.
	TS Timestamp

	// Round and Scheme describe a leader's numbering: Scheme identifies
	// the numbering scheme (the leader's UID) and Round is the scheme's
	// round number for the round in which the message is sent. Only
	// meaningful when Kind == KindLeader.
	Round  uint64
	Scheme uint64

	// Special marks a Good Samaritan special round; Fallback marks a
	// sender executing the modified-Trapdoor fallback; Epoch and Super
	// locate the sender inside the Good Samaritan schedule.
	Special  bool
	Fallback bool
	Epoch    uint16
	Super    uint8

	// Reports carries a samaritan's success tallies. Only meaningful when
	// Kind == KindSamaritan.
	Reports []Report

	// Payload is application data for KindData messages.
	Payload []byte
}

// Clone returns a deep copy of m; receivers that retain a message beyond the
// delivery callback should clone it.
func (m Message) Clone() Message {
	c := m
	if m.Reports != nil {
		c.Reports = make([]Report, len(m.Reports))
		copy(c.Reports, m.Reports)
	}
	if m.Payload != nil {
		c.Payload = make([]byte, len(m.Payload))
		copy(c.Payload, m.Payload)
	}
	return c
}

// Wire format constants.
const (
	flagSpecial  = 1 << 0
	flagFallback = 1 << 1

	// MaxReports bounds the reports carried by one samaritan message; the
	// protocol keeps only the highest tallies. A radio slot is narrowband,
	// so the message must stay small.
	MaxReports = 8

	// MaxPayload bounds application data per slot.
	MaxPayload = 1 << 10
)

// Encoding errors.
var (
	ErrTruncated   = errors.New("msg: truncated message")
	ErrBadKind     = errors.New("msg: unknown message kind")
	ErrBadFlags    = errors.New("msg: unknown flag bits")
	ErrTooManyRep  = errors.New("msg: too many reports")
	ErrPayloadSize = errors.New("msg: payload too large")
	ErrTrailing    = errors.New("msg: trailing bytes after message")
)

// Encode serializes m to a compact binary representation. It returns an
// error if the message violates the wire-format bounds.
func Encode(m Message) ([]byte, error) {
	switch m.Kind {
	case KindContender, KindSamaritan, KindLeader, KindData:
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadKind, uint8(m.Kind))
	}
	if len(m.Reports) > MaxReports {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyRep, len(m.Reports), MaxReports)
	}
	if len(m.Payload) > MaxPayload {
		return nil, fmt.Errorf("%w: %d > %d", ErrPayloadSize, len(m.Payload), MaxPayload)
	}

	var flags byte
	if m.Special {
		flags |= flagSpecial
	}
	if m.Fallback {
		flags |= flagFallback
	}

	// kind(1) flags(1) age(8) uid(8) epoch(2) super(1) = 21 fixed bytes,
	// then kind-specific fields.
	buf := make([]byte, 0, 21+16+1+len(m.Reports)*12+2+len(m.Payload))
	buf = append(buf, byte(m.Kind), flags)
	buf = binary.BigEndian.AppendUint64(buf, m.TS.Age)
	buf = binary.BigEndian.AppendUint64(buf, m.TS.UID)
	buf = binary.BigEndian.AppendUint16(buf, m.Epoch)
	buf = append(buf, m.Super)

	switch m.Kind {
	case KindLeader:
		buf = binary.BigEndian.AppendUint64(buf, m.Round)
		buf = binary.BigEndian.AppendUint64(buf, m.Scheme)
	case KindSamaritan:
		buf = append(buf, byte(len(m.Reports)))
		for _, r := range m.Reports {
			buf = binary.BigEndian.AppendUint64(buf, r.UID)
			buf = binary.BigEndian.AppendUint32(buf, r.Count)
		}
	case KindData:
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Payload)))
		buf = append(buf, m.Payload...)
	}
	return buf, nil
}

// Decode parses a message previously produced by Encode. It rejects
// truncated input, unknown kinds, and trailing garbage.
func Decode(data []byte) (Message, error) {
	var m Message
	if len(data) < 21 {
		return m, ErrTruncated
	}
	m.Kind = Kind(data[0])
	flags := data[1]
	if flags&^(flagSpecial|flagFallback) != 0 {
		return Message{}, ErrBadFlags
	}
	m.Special = flags&flagSpecial != 0
	m.Fallback = flags&flagFallback != 0
	m.TS.Age = binary.BigEndian.Uint64(data[2:])
	m.TS.UID = binary.BigEndian.Uint64(data[10:])
	m.Epoch = binary.BigEndian.Uint16(data[18:])
	m.Super = data[20]
	rest := data[21:]

	switch m.Kind {
	case KindContender:
	case KindLeader:
		if len(rest) < 16 {
			return Message{}, ErrTruncated
		}
		m.Round = binary.BigEndian.Uint64(rest[0:])
		m.Scheme = binary.BigEndian.Uint64(rest[8:])
		rest = rest[16:]
	case KindSamaritan:
		if len(rest) < 1 {
			return Message{}, ErrTruncated
		}
		n := int(rest[0])
		rest = rest[1:]
		if n > MaxReports {
			return Message{}, ErrTooManyRep
		}
		if len(rest) < n*12 {
			return Message{}, ErrTruncated
		}
		if n > 0 {
			m.Reports = make([]Report, n)
			for i := 0; i < n; i++ {
				m.Reports[i].UID = binary.BigEndian.Uint64(rest[i*12:])
				m.Reports[i].Count = binary.BigEndian.Uint32(rest[i*12+8:])
			}
		}
		rest = rest[n*12:]
	case KindData:
		if len(rest) < 2 {
			return Message{}, ErrTruncated
		}
		n := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) < n {
			return Message{}, ErrTruncated
		}
		if n > 0 {
			m.Payload = make([]byte, n)
			copy(m.Payload, rest[:n])
		}
		rest = rest[n:]
	default:
		return Message{}, fmt.Errorf("%w: %d", ErrBadKind, data[0])
	}
	if len(rest) != 0 {
		return Message{}, ErrTrailing
	}
	return m, nil
}

// Equal reports whether two messages are semantically identical, including
// reports and payload contents.
func Equal(a, b Message) bool {
	if a.Kind != b.Kind || a.TS != b.TS || a.Round != b.Round || a.Scheme != b.Scheme ||
		a.Special != b.Special || a.Fallback != b.Fallback || a.Epoch != b.Epoch || a.Super != b.Super {
		return false
	}
	if len(a.Reports) != len(b.Reports) {
		return false
	}
	for i := range a.Reports {
		if a.Reports[i] != b.Reports[i] {
			return false
		}
	}
	if len(a.Payload) != len(b.Payload) {
		return false
	}
	for i := range a.Payload {
		if a.Payload[i] != b.Payload[i] {
			return false
		}
	}
	return true
}
