//go:build ignore

// gen_corpus.go regenerates the committed seed corpus for
// FuzzDecodeRoundTrip. Run from the repository root:
//
//	go run ./internal/msg/testdata/gen_corpus.go
//
// The corpus mirrors the f.Add seeds in fuzz_test.go so that CI fuzzing
// (go test -fuzz) starts from every message kind and boundary shape even
// before the in-process seeds are merged.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"wsync/internal/msg"
)

func main() {
	full := make([]msg.Report, msg.MaxReports)
	for i := range full {
		full[i] = msg.Report{UID: uint64(i) * 7919, Count: uint32(i)}
	}
	msgs := []msg.Message{
		{Kind: msg.KindContender, TS: msg.Timestamp{Age: 1, UID: 42}},
		{Kind: msg.KindContender, TS: msg.Timestamp{Age: ^uint64(0), UID: ^uint64(0)},
			Special: true, Fallback: true, Epoch: 65535, Super: 255},
		{Kind: msg.KindLeader, TS: msg.Timestamp{Age: 9, UID: 3}, Round: 1 << 40, Scheme: 77},
		{Kind: msg.KindSamaritan, TS: msg.Timestamp{Age: 5, UID: 8},
			Reports: []msg.Report{{UID: 1, Count: 2}}, Special: true, Epoch: 3, Super: 1},
		{Kind: msg.KindSamaritan, TS: msg.Timestamp{Age: 6, UID: 9}, Reports: full},
		{Kind: msg.KindData, TS: msg.Timestamp{Age: 2, UID: 4}},
		{Kind: msg.KindData, TS: msg.Timestamp{Age: 2, UID: 4}, Payload: bytes.Repeat([]byte{0xAB}, msg.MaxPayload)},
	}
	dir := filepath.Join("internal", "msg", "testdata", "fuzz", "FuzzDecodeRoundTrip")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	for i, m := range msgs {
		data, err := msg.Encode(m)
		if err != nil {
			log.Fatalf("seed %d: %v", i, err)
		}
		write(fmt.Sprintf("seed-%s-%d", m.Kind, i), data)
	}
	write("seed-empty", nil)
	write("seed-short", []byte{1})
	fmt.Println("corpus written to", dir)
}
