package msg

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindContender: "contender",
		KindSamaritan: "samaritan",
		KindLeader:    "leader",
		KindData:      "data",
		Kind(99):      "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", uint8(k), got, want)
		}
	}
}

func TestTimestampOrder(t *testing.T) {
	cases := []struct {
		a, b Timestamp
		cmp  int
	}{
		{Timestamp{1, 1}, Timestamp{1, 1}, 0},
		{Timestamp{1, 1}, Timestamp{2, 1}, -1},
		{Timestamp{2, 1}, Timestamp{1, 9}, 1},
		{Timestamp{5, 3}, Timestamp{5, 4}, -1},
		{Timestamp{5, 4}, Timestamp{5, 3}, 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.cmp {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.cmp)
		}
		if got := c.a.Less(c.b); got != (c.cmp < 0) {
			t.Errorf("Less(%v, %v) = %v", c.a, c.b, got)
		}
	}
}

// Property: Compare is antisymmetric and total.
func TestQuickTimestampAntisymmetry(t *testing.T) {
	f := func(a1, u1, a2, u2 uint64) bool {
		a := Timestamp{a1, u1}
		b := Timestamp{a2, u2}
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is transitive on a sampled triple.
func TestQuickTimestampTransitivity(t *testing.T) {
	f := func(a1, u1, a2, u2, a3, u3 uint8) bool {
		// Small domain so that equal and ordered triples both occur.
		a := Timestamp{uint64(a1 % 4), uint64(u1 % 4)}
		b := Timestamp{uint64(a2 % 4), uint64(u2 % 4)}
		c := Timestamp{uint64(a3 % 4), uint64(u3 % 4)}
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 {
			return a.Compare(c) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func sampleMessages() []Message {
	return []Message{
		{Kind: KindContender, TS: Timestamp{Age: 17, UID: 12345}},
		{Kind: KindContender, TS: Timestamp{Age: 0, UID: 0}, Special: true, Epoch: 3, Super: 2},
		{Kind: KindLeader, TS: Timestamp{Age: 900, UID: 77}, Round: 1234, Scheme: 77},
		{Kind: KindSamaritan, TS: Timestamp{Age: 55, UID: 3}, Reports: []Report{{UID: 9, Count: 4}, {UID: 11, Count: 2}}},
		{Kind: KindSamaritan, TS: Timestamp{Age: 55, UID: 3}, Reports: nil, Fallback: true},
		{Kind: KindData, TS: Timestamp{Age: 1, UID: 2}, Payload: []byte("hello radio")},
		{Kind: KindData, TS: Timestamp{Age: 1, UID: 2}, Payload: []byte{}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for i, m := range sampleMessages() {
		data, err := Encode(m)
		if err != nil {
			t.Fatalf("message %d: Encode: %v", i, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("message %d: Decode: %v", i, err)
		}
		// Empty and nil slices are equivalent on the wire.
		if !Equal(got, m) {
			t.Fatalf("message %d: round trip mismatch:\n got %+v\nwant %+v", i, got, m)
		}
	}
}

func TestEncodeRejectsBadKind(t *testing.T) {
	_, err := Encode(Message{Kind: Kind(0)})
	if !errors.Is(err, ErrBadKind) {
		t.Fatalf("err = %v, want ErrBadKind", err)
	}
}

func TestEncodeRejectsTooManyReports(t *testing.T) {
	m := Message{Kind: KindSamaritan, Reports: make([]Report, MaxReports+1)}
	if _, err := Encode(m); !errors.Is(err, ErrTooManyRep) {
		t.Fatalf("err = %v, want ErrTooManyRep", err)
	}
}

func TestEncodeRejectsHugePayload(t *testing.T) {
	m := Message{Kind: KindData, Payload: make([]byte, MaxPayload+1)}
	if _, err := Encode(m); !errors.Is(err, ErrPayloadSize) {
		t.Fatalf("err = %v, want ErrPayloadSize", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	for _, m := range sampleMessages() {
		data, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(data); cut++ {
			if _, err := Decode(data[:cut]); err == nil {
				t.Fatalf("Decode accepted %d/%d bytes of %v", cut, len(data), m.Kind)
			}
		}
	}
}

func TestDecodeRejectsTrailing(t *testing.T) {
	data, err := Encode(Message{Kind: KindContender, TS: Timestamp{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(data, 0xFF)); !errors.Is(err, ErrTrailing) {
		t.Fatalf("err = %v, want ErrTrailing", err)
	}
}

func TestDecodeRejectsUnknownFlags(t *testing.T) {
	data, err := Encode(Message{Kind: KindContender})
	if err != nil {
		t.Fatal(err)
	}
	data[1] |= 0x80
	if _, err := Decode(data); !errors.Is(err, ErrBadFlags) {
		t.Fatalf("err = %v, want ErrBadFlags", err)
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	data, err := Encode(Message{Kind: KindContender})
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 200
	if _, err := Decode(data); !errors.Is(err, ErrBadKind) {
		t.Fatalf("err = %v, want ErrBadKind", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := Message{
		Kind:    KindSamaritan,
		Reports: []Report{{UID: 1, Count: 1}},
		Payload: []byte{1, 2, 3},
	}
	c := m.Clone()
	c.Reports[0].Count = 99
	c.Payload[0] = 99
	if m.Reports[0].Count == 99 || m.Payload[0] == 99 {
		t.Fatal("Clone shares backing arrays with original")
	}
}

func TestEqual(t *testing.T) {
	a := Message{Kind: KindLeader, Round: 5, Scheme: 6}
	b := a
	if !Equal(a, b) {
		t.Fatal("identical messages unequal")
	}
	b.Round = 7
	if Equal(a, b) {
		t.Fatal("different rounds equal")
	}
	c := Message{Kind: KindSamaritan, Reports: []Report{{1, 2}}}
	d := Message{Kind: KindSamaritan, Reports: []Report{{1, 3}}}
	if Equal(c, d) {
		t.Fatal("different reports equal")
	}
}

// Property: any message built from arbitrary small fields round-trips.
func TestQuickRoundTrip(t *testing.T) {
	f := func(kindSel uint8, age, uid, round, scheme uint64, special, fallback bool,
		epoch uint16, super uint8, repUIDs []uint64, payload []byte) bool {
		kinds := []Kind{KindContender, KindSamaritan, KindLeader, KindData}
		m := Message{
			Kind:     kinds[int(kindSel)%len(kinds)],
			TS:       Timestamp{Age: age, UID: uid},
			Special:  special,
			Fallback: fallback,
			Epoch:    epoch,
			Super:    super,
		}
		switch m.Kind {
		case KindLeader:
			m.Round, m.Scheme = round, scheme
		case KindSamaritan:
			if len(repUIDs) > MaxReports {
				repUIDs = repUIDs[:MaxReports]
			}
			for i, u := range repUIDs {
				m.Reports = append(m.Reports, Report{UID: u, Count: uint32(i)})
			}
		case KindData:
			if len(payload) > MaxPayload {
				payload = payload[:MaxPayload]
			}
			m.Payload = payload
		}
		data, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return Equal(got, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeContender(b *testing.B) {
	m := Message{Kind: KindContender, TS: Timestamp{Age: 100, UID: 424242}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSamaritan(b *testing.B) {
	m := Message{Kind: KindSamaritan, Reports: []Report{{1, 2}, {3, 4}, {5, 6}}}
	data, err := Encode(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
