package msg

import (
	"bytes"
	"testing"
	"testing/quick"
)

// corpusMessages are the seed inputs for FuzzDecodeRoundTrip: one
// well-formed message per kind plus boundary shapes (max reports, empty
// and max payload). The committed corpus under testdata/fuzz mirrors
// their encodings so CI fuzzing starts from structured inputs.
func corpusMessages() []Message {
	full := make([]Report, MaxReports)
	for i := range full {
		full[i] = Report{UID: uint64(i) * 7919, Count: uint32(i)}
	}
	return []Message{
		{Kind: KindContender, TS: Timestamp{Age: 1, UID: 42}},
		{Kind: KindContender, TS: Timestamp{Age: ^uint64(0), UID: ^uint64(0)},
			Special: true, Fallback: true, Epoch: 65535, Super: 255},
		{Kind: KindLeader, TS: Timestamp{Age: 9, UID: 3}, Round: 1 << 40, Scheme: 77},
		{Kind: KindSamaritan, TS: Timestamp{Age: 5, UID: 8},
			Reports: []Report{{UID: 1, Count: 2}}, Special: true, Epoch: 3, Super: 1},
		{Kind: KindSamaritan, TS: Timestamp{Age: 6, UID: 9}, Reports: full},
		{Kind: KindData, TS: Timestamp{Age: 2, UID: 4}},
		{Kind: KindData, TS: Timestamp{Age: 2, UID: 4}, Payload: bytes.Repeat([]byte{0xAB}, MaxPayload)},
	}
}

// FuzzDecodeRoundTrip is the native fuzz target CI runs: Decode must never
// panic, and any bytes it accepts must re-encode to exactly the input
// (so the codec has one canonical form and no parser differentials).
func FuzzDecodeRoundTrip(f *testing.F) {
	for _, m := range corpusMessages() {
		data, err := Encode(m)
		if err != nil {
			f.Fatalf("corpus message unencodable: %v", err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(KindContender)})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		out, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v (%+v)", err, m)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip changed bytes:\nin:  %x\nout: %x", data, out)
		}
		if !Equal(m, m.Clone()) {
			t.Fatalf("clone not equal: %+v", m)
		}
	})
}

// Property: Decode never panics and never fabricates success on random
// bytes — it either errors or returns a message that re-encodes to the
// same bytes.
func TestQuickDecodeArbitraryBytes(t *testing.T) {
	f := func(data []byte) bool {
		m, err := Decode(data)
		if err != nil {
			return true
		}
		out, err := Encode(m)
		if err != nil {
			return false
		}
		if len(out) != len(data) {
			return false
		}
		for i := range out {
			if out[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode of a truncation of a valid encoding never succeeds with
// different content than the original.
func TestQuickDecodePrefixSafety(t *testing.T) {
	f := func(age, uid uint64, round uint64, cut uint8) bool {
		m := Message{Kind: KindLeader, TS: Timestamp{Age: age, UID: uid}, Round: round, Scheme: uid}
		data, err := Encode(m)
		if err != nil {
			return false
		}
		n := int(cut) % (len(data) + 1)
		got, err := Decode(data[:n])
		if n == len(data) {
			return err == nil && Equal(got, m)
		}
		return err != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single byte of an encoding either errors or
// decodes to a well-formed message that still round-trips.
func TestQuickDecodeBitFlips(t *testing.T) {
	base := Message{
		Kind:    KindSamaritan,
		TS:      Timestamp{Age: 42, UID: 99},
		Reports: []Report{{UID: 1, Count: 2}, {UID: 3, Count: 4}},
	}
	data, err := Encode(base)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos, val uint8) bool {
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[int(pos)%len(mut)] ^= val | 1
		m, err := Decode(mut)
		if err != nil {
			return true
		}
		re, err := Encode(m)
		if err != nil {
			return false
		}
		return len(re) == len(mut)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
