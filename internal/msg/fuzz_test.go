package msg

import (
	"testing"
	"testing/quick"
)

// Property: Decode never panics and never fabricates success on random
// bytes — it either errors or returns a message that re-encodes to the
// same bytes.
func TestQuickDecodeArbitraryBytes(t *testing.T) {
	f := func(data []byte) bool {
		m, err := Decode(data)
		if err != nil {
			return true
		}
		out, err := Encode(m)
		if err != nil {
			return false
		}
		if len(out) != len(data) {
			return false
		}
		for i := range out {
			if out[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode of a truncation of a valid encoding never succeeds with
// different content than the original.
func TestQuickDecodePrefixSafety(t *testing.T) {
	f := func(age, uid uint64, round uint64, cut uint8) bool {
		m := Message{Kind: KindLeader, TS: Timestamp{Age: age, UID: uid}, Round: round, Scheme: uid}
		data, err := Encode(m)
		if err != nil {
			return false
		}
		n := int(cut) % (len(data) + 1)
		got, err := Decode(data[:n])
		if n == len(data) {
			return err == nil && Equal(got, m)
		}
		return err != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single byte of an encoding either errors or
// decodes to a well-formed message that still round-trips.
func TestQuickDecodeBitFlips(t *testing.T) {
	base := Message{
		Kind:    KindSamaritan,
		TS:      Timestamp{Age: 42, UID: 99},
		Reports: []Report{{UID: 1, Count: 2}, {UID: 3, Count: 4}},
	}
	data, err := Encode(base)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pos, val uint8) bool {
		mut := make([]byte, len(data))
		copy(mut, data)
		mut[int(pos)%len(mut)] ^= val | 1
		m, err := Decode(mut)
		if err != nil {
			return true
		}
		re, err := Encode(m)
		if err != nil {
			return false
		}
		return len(re) == len(mut)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
