package samaritan

import (
	"reflect"
	"testing"

	"wsync/internal/rng"
	"wsync/internal/sim"
)

// TestArenaMatchesDirectConstruction pins the arena contract: an arena-built
// run (which also exercises the batch-stepping path) is bit-identical to a
// MustNew-built run (which steps per node), and to an arena-built run with
// batching disabled. The shared narrow-band table and the reused tally maps
// must be observationally invisible.
func TestArenaMatchesDirectConstruction(t *testing.T) {
	p := Params{N: 8, F: 8, T: 2}
	run := func(seed uint64, newAgent func(sim.NodeID, uint64, *rng.Rand) sim.Agent, noBatch bool) *sim.Result {
		res, err := sim.Run(&sim.Config{
			F:         8,
			T:         2,
			Seed:      seed,
			NewAgent:  newAgent,
			Schedule:  sim.Simultaneous{Count: 8},
			MaxRounds: 200000,
			NoBatch:   noBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for seed := uint64(1); seed <= 2; seed++ {
		direct := run(seed, func(id sim.NodeID, act uint64, r *rng.Rand) sim.Agent {
			return MustNew(p, r)
		}, false)
		pooled := run(seed, MustNewArena(p, 8).NewAgent, false)
		pooledNoBatch := run(seed, MustNewArena(p, 8).NewAgent, true)
		if !reflect.DeepEqual(direct, pooled) {
			t.Fatalf("seed %d: arena result differs from direct construction", seed)
		}
		if !reflect.DeepEqual(direct, pooledNoBatch) {
			t.Fatalf("seed %d: NoBatch arena result differs from direct construction", seed)
		}
	}
}
