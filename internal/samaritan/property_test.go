package samaritan

import (
	"testing"
	"testing/quick"

	"wsync/internal/adversary"
	"wsync/internal/core"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

// Property: for arbitrary valid parameters the Figure 2 schedule is well
// formed — lgF super-epochs of lgN+2 epochs, epoch length doubling per
// super-epoch, probability ramp capped at 1/2, and positive thresholds.
func TestQuickScheduleWellFormed(t *testing.T) {
	prop := func(nRaw uint16, fRaw, tRaw uint8) bool {
		n := int(nRaw%512) + 2
		f := int(fRaw%32) + 1
		tj := int(tRaw) % (f/2 + 1)
		if tj >= f {
			tj = 0
		}
		p := Params{N: n, F: f, T: tj}
		if err := p.Validate(); err != nil {
			return false
		}
		rows := p.Schedule()
		if len(rows) != p.LgF()*p.EpochsPerSuper() {
			return false
		}
		for _, row := range rows {
			if row.Length < 1 || row.Prob <= 0 || row.Prob > 0.5 {
				return false
			}
			if row.NarrowBand < 1 || row.NarrowBand > f {
				return false
			}
		}
		for k := 1; k <= p.LgF(); k++ {
			if p.EpochLen(k) < 1 || p.SuccessThreshold(k) < 1 {
				return false
			}
			if k > 1 && p.EpochLen(k) != 2*p.EpochLen(k-1) {
				return false
			}
		}
		return p.FallbackEpochLen() >= 4*p.EpochLen(p.LgF())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// contenderCensus tracks the protocol invariant that drives liveness: the
// population always contains at least one node still competing (contender,
// fallback contender, or leader) or already synced. A transmitting
// contender cannot be downgraded in the round it transmits, samaritan
// messages never downgrade contenders, and fallback contenders are only
// knocked out by larger timestamps — so the competition can never empty
// out.
func TestCompetitionNeverEmpties(t *testing.T) {
	configs := []struct {
		n, f, tj int
		gap      uint64
		seed     uint64
	}{
		{3, 4, 2, 0, 1},
		{4, 8, 4, 0, 2},
		{4, 4, 2, 700, 3},
		{2, 8, 4, 2500, 4},
	}
	for _, c := range configs {
		p := Params{N: 8, F: c.f, T: c.tj, CEpoch: 2}
		nodes := make([]*Node, c.n)
		violated := uint64(0)
		census := funcObserver{fn: func(rec *sim.RoundRecord) {
			alive := false
			for _, n := range nodes {
				if n == nil {
					continue
				}
				switch n.Role() {
				case core.RoleContender, core.RoleFallback, core.RoleLeader, core.RoleSynced:
					alive = true
				}
			}
			// Only meaningful once at least one node is active.
			anyActive := false
			for _, n := range nodes {
				if n != nil {
					anyActive = true
				}
			}
			if anyActive && !alive && violated == 0 {
				violated = rec.Round
			}
		}}
		var sched sim.Schedule = sim.Simultaneous{Count: c.n}
		if c.gap > 0 {
			sched = sim.Staggered{Count: c.n, Gap: c.gap}
		}
		cfg := &sim.Config{
			F:    c.f,
			T:    c.tj,
			Seed: c.seed,
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				n := MustNew(p, r)
				nodes[id] = n
				return n
			},
			Schedule:  sched,
			Adversary: adversary.NewRandom(c.f, c.tj, c.seed+5),
			MaxRounds: 2_000_000,
			Observers: []sim.Observer{census},
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if violated != 0 {
			t.Fatalf("config %+v: competition emptied at round %d", c, violated)
		}
		if !res.AllSynced {
			t.Fatalf("config %+v: not synced after %d rounds", c, res.Stats.Rounds)
		}
	}
}

type funcObserver struct{ fn func(rec *sim.RoundRecord) }

func (f funcObserver) ObserveRound(rec *sim.RoundRecord) { f.fn(rec) }

// Property: BroadcastProb stays within [0, 1] and silent roles stay silent
// throughout a full protocol lifetime.
func TestQuickBroadcastProbBounds(t *testing.T) {
	prop := func(seed uint64) bool {
		p := Params{N: 4, F: 4, T: 2, CEpoch: 1, EpochLogPower: 1}
		n := MustNew(p, rng.New(seed))
		horizon := p.OptimisticRounds() + uint64(p.LgN())*p.FallbackEpochLen() + 100
		for r := uint64(1); r <= horizon; r++ {
			prob := n.BroadcastProb()
			if prob < 0 || prob > 1 {
				return false
			}
			act := n.Step(r)
			if prob == 0 && act.Transmit {
				return false
			}
		}
		return n.IsLeader() // a lone node must win via the fallback
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
