package samaritan

import (
	"testing"

	"wsync/internal/rng"
)

// BenchmarkNodeStep measures the per-round cost of one contender across
// the optimistic schedule.
func BenchmarkNodeStep(b *testing.B) {
	n := MustNew(Params{N: 64, F: 16, T: 8}, rng.New(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Step(uint64(i) + 1)
	}
}
