package samaritan

import (
	"fmt"
	"sort"

	"wsync/internal/core"
	"wsync/internal/freqdist"
	"wsync/internal/msg"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

// Params configures the Good Samaritan Protocol.
type Params struct {
	// N is the known bound on participants (>= 2, rounded to a power of
	// two); F the frequency count; T the adversary budget. The protocol
	// assumes T <= F/2 (Section 7).
	N int
	F int
	T int

	// CEpoch scales the epoch length s(k) = CEpoch·2^k·(lg N)^EpochLogPower;
	// 0 means DefaultCEpoch.
	CEpoch int
	// EpochLogPower is the exponent on lg N in s(k): 2 (default; consistent
	// with Theorem 18) or 3 (Figure 2 as printed).
	EpochLogPower int
	// ThresholdShift is the paper's 6 in the success threshold
	// s(k)/2^(k+ThresholdShift); 0 means DefaultThresholdShift.
	ThresholdShift int
	// FallbackFactor multiplies the longest Good Samaritan epoch to give
	// the fallback Trapdoor epoch length ("at least four times as long");
	// 0 means 4.
	FallbackFactor int
	// LeaderTxProb is the leader announcement probability; 0 means 1/2.
	LeaderTxProb float64

	// AblationNoHelp makes contenders ignore samaritan reports, disabling
	// the optimistic promotion path entirely; every execution then takes
	// the fallback. It quantifies the samaritans' contribution
	// (experiment X4).
	AblationNoHelp bool
}

// Defaults for the Θ-constants (see EXPERIMENTS.md for how they were
// chosen).
const (
	DefaultCEpoch         = 8
	DefaultEpochLogPower  = 2
	DefaultThresholdShift = 6
	DefaultFallbackFactor = 4
)

// withDefaults fills zero fields.
func (p Params) withDefaults() Params {
	if p.CEpoch == 0 {
		p.CEpoch = DefaultCEpoch
	}
	if p.EpochLogPower == 0 {
		p.EpochLogPower = DefaultEpochLogPower
	}
	if p.ThresholdShift == 0 {
		p.ThresholdShift = DefaultThresholdShift
	}
	if p.FallbackFactor == 0 {
		p.FallbackFactor = DefaultFallbackFactor
	}
	if p.LeaderTxProb == 0 {
		p.LeaderTxProb = 0.5
	}
	if p.N < 2 {
		p.N = 2
	}
	p.N = freqdist.NextPow2(p.N)
	return p
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.F < 1 {
		return fmt.Errorf("samaritan: F = %d, need >= 1", p.F)
	}
	if p.T < 0 || p.T >= p.F {
		return fmt.Errorf("samaritan: T = %d, need 0 <= T < F = %d", p.T, p.F)
	}
	if 2*p.T > p.F {
		return fmt.Errorf("samaritan: T = %d exceeds F/2 = %d, outside the protocol's assumption", p.T, p.F/2)
	}
	if p.EpochLogPower < 0 || p.EpochLogPower > 4 {
		return fmt.Errorf("samaritan: EpochLogPower = %d out of [0..4]", p.EpochLogPower)
	}
	if p.LeaderTxProb < 0 || p.LeaderTxProb > 1 {
		return fmt.Errorf("samaritan: LeaderTxProb = %v out of [0,1]", p.LeaderTxProb)
	}
	return nil
}

// LgN returns lg of the power-of-two participant bound, at least 1.
func (p Params) LgN() int {
	lg := freqdist.CeilLog2(freqdist.NextPow2(p.N))
	if lg < 1 {
		lg = 1
	}
	return lg
}

// LgF returns the number of super-epochs, at least 1.
func (p Params) LgF() int {
	lg := freqdist.CeilLog2(p.F)
	if lg < 1 {
		lg = 1
	}
	return lg
}

// logPow returns (lg N)^EpochLogPower.
func (p Params) logPow() uint64 {
	q := p.withDefaults()
	v := uint64(1)
	for i := 0; i < q.EpochLogPower; i++ {
		v *= uint64(q.LgN())
	}
	return v
}

// EpochLen returns s(k), the length of every epoch in super-epoch k.
func (p Params) EpochLen(k int) uint64 {
	q := p.withDefaults()
	if k < 1 {
		k = 1
	}
	return uint64(q.CEpoch) * (uint64(1) << uint(k)) * q.logPow()
}

// EpochsPerSuper returns lg N + 2.
func (p Params) EpochsPerSuper() int { return p.LgN() + 2 }

// BroadcastProb returns the epoch-e broadcast probability: 2^e/(2N) for
// e <= lgN, and 1/2 for the last two epochs.
func (p Params) BroadcastProb(e int) float64 {
	q := p.withDefaults()
	lg := q.LgN()
	if e < 1 {
		e = 1
	}
	if e > lg {
		return 0.5
	}
	return float64(uint64(1)<<uint(e)) / (2 * float64(q.N))
}

// SuccessThreshold returns the number of recorded successes in super-epoch
// k's critical epoch that promotes a contender to leader:
// s(k)/2^(k+ThresholdShift), at least 1.
func (p Params) SuccessThreshold(k int) uint32 {
	q := p.withDefaults()
	th := q.EpochLen(k) >> uint(k+q.ThresholdShift)
	if th < 1 {
		th = 1
	}
	return uint32(th)
}

// FallbackEpochLen returns the modified Trapdoor epoch length:
// FallbackFactor times the longest Good Samaritan epoch.
func (p Params) FallbackEpochLen() uint64 {
	q := p.withDefaults()
	return uint64(q.FallbackFactor) * q.EpochLen(q.LgF())
}

// OptimisticRounds returns the total length of all lg F super-epochs — the
// point at which a node enters the fallback.
func (p Params) OptimisticRounds() uint64 {
	total := uint64(0)
	for k := 1; k <= p.LgF(); k++ {
		total += uint64(p.EpochsPerSuper()) * p.EpochLen(k)
	}
	return total
}

// ScheduleRow describes one epoch of one super-epoch for the Figure 2
// table.
type ScheduleRow struct {
	Super      int
	Epoch      int
	Length     uint64
	Prob       float64
	NarrowBand int // the [1..2^k] band used with probability 1/2
	Special    bool
}

// Schedule reproduces the Figure 2 structure as a table.
func (p Params) Schedule() []ScheduleRow {
	q := p.withDefaults()
	rows := make([]ScheduleRow, 0, q.LgF()*q.EpochsPerSuper())
	for k := 1; k <= q.LgF(); k++ {
		narrow := 1 << uint(k)
		if narrow > q.F {
			narrow = q.F
		}
		for e := 1; e <= q.EpochsPerSuper(); e++ {
			rows = append(rows, ScheduleRow{
				Super:      k,
				Epoch:      e,
				Length:     q.EpochLen(k),
				Prob:       q.BroadcastProb(e),
				NarrowBand: narrow,
				Special:    e > q.LgN(),
			})
		}
	}
	return rows
}

// Node is one Good Samaritan Protocol participant. It implements
// sim.Agent, sim.BroadcastProber and sim.LeaderReporter.
type Node struct {
	p Params
	r *rng.Rand

	uid  uint64
	age  uint64
	role core.Role
	out  core.OutputState

	// Optimistic-portion position.
	super      int
	epoch      int
	epochRound uint64

	// narrow[k-1] is the uniform distribution over [1..min(2^k, F)].
	narrow  []freqdist.Uniform
	wide    freqdist.Uniform
	special freqdist.Special

	// thisSpecial marks the current round as a special round; thisListen
	// marks that the node is listening this round (needed for samaritan
	// recording conditions).
	thisSpecial bool

	// tallies are the samaritan's per-super-epoch success counts.
	tallies map[uint64]uint32

	// Fallback modified-Trapdoor state.
	fbEpoch      int
	fbEpochRound uint64

	scheme uint64

	// arena is non-nil for arena-built nodes and doubles as the batch
	// cohort key: one slab, one cohort.
	arena *Arena
}

var (
	_ sim.Agent           = (*Node)(nil)
	_ sim.BatchAgent      = (*Node)(nil)
	_ sim.BroadcastProber = (*Node)(nil)
	_ sim.LeaderReporter  = (*Node)(nil)
)

// New returns a fresh contender. It returns an error for invalid
// parameters.
func New(p Params, r *rng.Rand) (*Node, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	n := &Node{
		p:       p,
		r:       r,
		uid:     core.NewUID(r, p.N),
		role:    core.RoleContender,
		super:   1,
		epoch:   1,
		wide:    freqdist.NewUniform(1, p.F),
		special: freqdist.NewSpecial(p.F),
		tallies: make(map[uint64]uint32),
	}
	n.narrow = make([]freqdist.Uniform, p.LgF())
	for k := 1; k <= p.LgF(); k++ {
		hi := 1 << uint(k)
		if hi > p.F {
			hi = p.F
		}
		n.narrow[k-1] = freqdist.NewUniform(1, hi)
	}
	return n, nil
}

// MustNew is New for static parameters; it panics on error.
func MustNew(p Params, r *rng.Rand) *Node {
	n, err := New(p, r)
	if err != nil {
		panic(err)
	}
	return n
}

// Arena pools Node construction for one engine run: count slots in one
// contiguous slab, the narrow-band distribution table (a pure function of
// the parameters) shared across all slots, and each slot's samaritan tally
// map preallocated once at build. NewAgent draws exactly what New draws
// from the node's rng stream, so arena-built runs are bit-identical to
// MustNew-built runs; slot i is only ever touched by node i. Arena-built
// nodes form one batch cohort (the arena pointer is the cohort key).
type Arena struct {
	p      Params
	narrow []freqdist.Uniform
	nodes  []Node
}

// NewArena returns an arena with count slots for parameters p. It returns
// an error for invalid parameters.
func NewArena(p Params, count int) (*Arena, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	a := &Arena{
		p:      p,
		narrow: make([]freqdist.Uniform, p.LgF()),
		nodes:  make([]Node, count),
	}
	for k := 1; k <= p.LgF(); k++ {
		hi := 1 << uint(k)
		if hi > p.F {
			hi = p.F
		}
		a.narrow[k-1] = freqdist.NewUniform(1, hi)
	}
	for i := range a.nodes {
		a.nodes[i].tallies = make(map[uint64]uint32)
	}
	return a, nil
}

// MustNewArena is NewArena for callers with static parameters.
func MustNewArena(p Params, count int) *Arena {
	a, err := NewArena(p, count)
	if err != nil {
		panic(err)
	}
	return a
}

// NewAgent constructs node id in its arena slot, reusing the slot's tally
// map; it has the signature of sim.Config.NewAgent and performs no
// allocation.
func (a *Arena) NewAgent(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
	nd := &a.nodes[id]
	t := nd.tallies
	clear(t)
	*nd = Node{
		p:       a.p,
		r:       r,
		uid:     core.NewUID(r, a.p.N),
		role:    core.RoleContender,
		super:   1,
		epoch:   1,
		narrow:  a.narrow,
		wide:    freqdist.NewUniform(1, a.p.F),
		special: freqdist.NewSpecial(a.p.F),
		tallies: t,
		arena:   a,
	}
	return nd
}

// UID returns the node's identifier.
func (n *Node) UID() uint64 { return n.uid }

// Role returns the node's current role.
func (n *Node) Role() core.Role { return n.role }

// Super returns the node's current super-epoch (meaningful in the
// optimistic portion).
func (n *Node) Super() int { return n.super }

// InFallback reports whether the node is executing the modified Trapdoor.
func (n *Node) InFallback() bool { return n.role == core.RoleFallback }

// IsLeader reports whether the node won the competition.
func (n *Node) IsLeader() bool { return n.role == core.RoleLeader }

func (n *Node) timestamp() msg.Timestamp {
	return msg.Timestamp{Age: n.age, UID: n.uid}
}

// BroadcastProb reports the probability the upcoming Step transmits.
func (n *Node) BroadcastProb() float64 {
	switch n.role {
	case core.RoleContender, core.RoleSamaritan:
		return n.p.BroadcastProb(n.epoch)
	case core.RoleFallback:
		// Half the rounds are Trapdoor rounds with prob p_e, half are
		// special rounds with prob 1/2.
		return 0.5*n.p.BroadcastProb(n.fbEpoch) + 0.25
	case core.RoleLeader:
		return n.p.LeaderTxProb
	default:
		return 0
	}
}

// advanceOptimistic moves the (super, epoch, epochRound) position forward
// by one round, handling epoch and super-epoch boundaries. It returns false
// when the optimistic portion is exhausted (the node enters fallback).
func (n *Node) advanceOptimistic() bool {
	for n.epochRound >= n.p.EpochLen(n.super) {
		n.epochRound = 0
		n.epoch++
		if n.epoch > n.p.EpochsPerSuper() {
			n.epoch = 1
			n.super++
			// Tallies pertain to one super-epoch only.
			clear(n.tallies)
			if n.super > n.p.LgF() {
				n.role = core.RoleFallback
				n.fbEpoch = 1
				n.fbEpochRound = 0
				return false
			}
		}
	}
	n.epochRound++
	return true
}

// Step implements sim.Agent. It is a thin wrapper over the packed step —
// the single implementation both dispatch paths share, which is what makes
// batch and per-node stepping byte-identical by construction.
func (n *Node) Step(local uint64) sim.Action {
	var a sim.Action
	f, tx := n.step(local, &a.Msg)
	a.Freq, a.Transmit = int(f), tx
	return a
}

// Cohort implements sim.BatchAgent: arena-built nodes batch per arena;
// directly constructed nodes opt out.
func (n *Node) Cohort() any {
	if n.arena == nil {
		return nil
	}
	return n.arena
}

// StepBatch implements sim.BatchAgent: one devirtualized loop over the
// cohort's slab, writing straight into the engine's action arrays. Message
// payloads are written only for transmitters.
func (n *Node) StepBatch(ids []int, locals []uint64, actFreq []int32, actTx []bool, actMsg []msg.Message) {
	nodes := n.arena.nodes
	for j, id := range ids {
		f, tx := nodes[id].step(locals[j], &actMsg[id])
		actFreq[id] = f
		actTx[id] = tx
	}
}

// step advances the node one local round, writing the outgoing message via
// m only when it transmits.
func (n *Node) step(local uint64, m *msg.Message) (freq int32, transmit bool) {
	n.age = local
	n.out.Tick()
	n.thisSpecial = false

	switch n.role {
	case core.RoleContender, core.RoleSamaritan:
		if !n.advanceOptimistic() {
			return n.fallbackStep(m)
		}
		return n.optimisticStep(m)
	case core.RoleFallback:
		return n.fallbackStep(m)
	case core.RoleLeader:
		return n.leaderStep(m)
	default: // passive or synced: listen on a robust mixture
		return n.passiveStep(), false
	}
}

// optimisticStep implements the Figure 2 round behavior for contenders
// and samaritans.
func (n *Node) optimisticStep(m *msg.Message) (int32, bool) {
	lgN := n.p.LgN()
	kDist := n.narrow[n.super-1]

	if n.epoch <= lgN {
		// Regular epoch: half narrow band, half full band.
		var f int
		if n.r.Bool() {
			f = kDist.Sample(n.r)
		} else {
			f = n.wide.Sample(n.r)
		}
		if n.r.Bernoulli(n.p.BroadcastProb(n.epoch)) {
			*m = n.protocolMessage()
			return int32(f), true
		}
		return int32(f), false
	}

	// Last two epochs: half normal narrow-band rounds, half special rounds.
	if n.r.Bool() {
		f := kDist.Sample(n.r)
		if n.r.Bernoulli(n.p.BroadcastProb(n.epoch)) {
			*m = n.protocolMessage()
			return int32(f), true
		}
		return int32(f), false
	}
	n.thisSpecial = true
	f := n.special.Sample(n.r)
	if n.r.Bool() {
		*m = n.protocolMessage()
		m.Special = true
		return int32(f), true
	}
	return int32(f), false
}

// protocolMessage builds the node's contender or samaritan message for the
// current round.
func (n *Node) protocolMessage() msg.Message {
	m := msg.Message{
		TS:    n.timestamp(),
		Epoch: uint16(n.epoch),
		Super: uint8(n.super),
	}
	if n.role == core.RoleSamaritan {
		m.Kind = msg.KindSamaritan
		m.Reports = n.topReports()
	} else {
		m.Kind = msg.KindContender
	}
	return m
}

// topReports returns the samaritan's highest tallies, bounded by the wire
// format.
func (n *Node) topReports() []msg.Report {
	if len(n.tallies) == 0 {
		return nil
	}
	reports := make([]msg.Report, 0, len(n.tallies))
	for uid, count := range n.tallies {
		reports = append(reports, msg.Report{UID: uid, Count: count})
	}
	sort.Slice(reports, func(i, j int) bool {
		if reports[i].Count != reports[j].Count {
			return reports[i].Count > reports[j].Count
		}
		return reports[i].UID < reports[j].UID
	})
	if len(reports) > msg.MaxReports {
		reports = reports[:msg.MaxReports]
	}
	return reports
}

// fallbackStep implements the modified Trapdoor portion: a fair coin
// decides between a Trapdoor round (full-band competition, probability
// ramp, timestamps honored) and a Good Samaritan special round.
func (n *Node) fallbackStep(m *msg.Message) (int32, bool) {
	// Epoch bookkeeping advances every round.
	for n.fbEpochRound >= n.p.FallbackEpochLen() {
		n.fbEpochRound = 0
		n.fbEpoch++
		if n.fbEpoch > n.p.LgN() {
			n.becomeLeader()
			return n.leaderStep(m)
		}
	}
	n.fbEpochRound++

	if n.r.Bool() {
		// Trapdoor round on the full band.
		f := n.wide.Sample(n.r)
		if n.r.Bernoulli(n.p.BroadcastProb(n.fbEpoch)) {
			*m = msg.Message{Kind: msg.KindContender, TS: n.timestamp(), Fallback: true}
			return int32(f), true
		}
		return int32(f), false
	}
	// Special round.
	n.thisSpecial = true
	f := n.special.Sample(n.r)
	if n.r.Bool() {
		*m = msg.Message{Kind: msg.KindContender, TS: n.timestamp(), Fallback: true, Special: true}
		return int32(f), true
	}
	return int32(f), false
}

// becomeLeader promotes the node and fixes the numbering scheme.
func (n *Node) becomeLeader() {
	n.role = core.RoleLeader
	if !n.out.Synced() {
		n.scheme = n.uid
		n.out.Adopt(n.age)
	}
}

// leaderStep announces the numbering on the special-round distribution.
func (n *Node) leaderStep(m *msg.Message) (int32, bool) {
	f := int32(n.special.Sample(n.r))
	if n.r.Bernoulli(n.p.LeaderTxProb) {
		*m = msg.Message{
			Kind:   msg.KindLeader,
			TS:     n.timestamp(),
			Round:  n.out.Value(),
			Scheme: n.scheme,
		}
		return f, true
	}
	return f, false
}

// passiveStep listens on a mixture of the full band and the special
// distribution, which meets the leader's announcement distribution often
// enough on undisrupted frequencies.
func (n *Node) passiveStep() int32 {
	if n.r.Bool() {
		return int32(n.wide.Sample(n.r))
	}
	return int32(n.special.Sample(n.r))
}

// Deliver implements sim.Agent.
func (n *Node) Deliver(m msg.Message) {
	switch m.Kind {
	case msg.KindLeader:
		n.deliverLeader(m)
	case msg.KindContender:
		n.deliverContender(m)
	case msg.KindSamaritan:
		n.deliverSamaritan(m)
	}
}

func (n *Node) deliverLeader(m msg.Message) {
	if n.role == core.RoleLeader && !n.timestamp().Less(m.TS) {
		return
	}
	n.role = core.RoleSynced
	n.scheme = m.Scheme
	n.out.Adopt(m.Round)
}

func (n *Node) deliverContender(m msg.Message) {
	switch n.role {
	case core.RoleContender:
		// Downgrade, ignoring timestamps (Section 7.1).
		n.role = core.RoleSamaritan
	case core.RoleSamaritan:
		n.maybeRecordSuccess(m)
	case core.RoleFallback:
		// Timestamps are honored again in the fallback.
		if n.timestamp().Less(m.TS) {
			n.role = core.RolePassive
		}
	}
}

// maybeRecordSuccess applies the three conditions of Section 7.1 for a
// samaritan to record a successful round for contender u: (a) the round is
// part of epoch lgN+1, (b) it is not special for either party, and (c) both
// were awakened in the same round.
func (n *Node) maybeRecordSuccess(m msg.Message) {
	critical := n.p.LgN() + 1
	if n.epoch != critical || int(m.Epoch) != critical {
		return
	}
	if m.Special || n.thisSpecial || m.Fallback {
		return
	}
	if m.TS.Age != n.age {
		return
	}
	n.tallies[m.TS.UID]++
}

func (n *Node) deliverSamaritan(m msg.Message) {
	switch n.role {
	case core.RoleContender:
		// Check the reports: have we succeeded often enough this
		// super-epoch? (Condition (c) keeps counts aligned: only
		// same-activation samaritans record us.)
		if n.p.AblationNoHelp || int(m.Super) != n.super {
			return
		}
		for _, rep := range m.Reports {
			if rep.UID == n.uid && rep.Count >= n.p.SuccessThreshold(n.super) {
				n.becomeLeader()
				return
			}
		}
	case core.RoleSamaritan:
		// Samaritan hears samaritan: knocked out (Section 7.1).
		n.role = core.RolePassive
	}
}

// Output implements sim.Agent.
func (n *Node) Output() sim.Output {
	if !n.out.Synced() {
		return sim.Output{}
	}
	return sim.Output{Value: n.out.Value(), Synced: true}
}
