package samaritan

import (
	"fmt"
	"testing"

	"wsync/internal/adversary"
	"wsync/internal/props"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

// TestSoakGrid runs the Good Samaritan Protocol across good-case and
// fallback-case combinations, asserting liveness (probability 1) as a hard
// requirement and budgeting the w.h.p. agreement failures. Skipped under
// -short.
func TestSoakGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("soak grid")
	}
	type grid struct {
		nBound, active, f, tBudget, tPrime int
		sched                              string
	}
	var cases []grid
	for _, band := range []struct{ f, tBudget int }{{8, 4}, {16, 8}} {
		for _, tp := range []int{1, band.tBudget / 2, band.tBudget} {
			for _, sched := range []string{"simultaneous", "staggered"} {
				for _, active := range []int{2, 4} {
					cases = append(cases, grid{16, active, band.f, band.tBudget, tp, sched})
				}
			}
		}
	}
	expectedFailures := 0.0
	for _, c := range cases {
		expectedFailures += 1 / float64(c.nBound)
	}
	budget := int(3*expectedFailures) + 1

	type outcome struct {
		name string
		bad  bool
	}
	results := make([]outcome, len(cases))
	for i, c := range cases {
		i, c := i, c
		name := fmt.Sprintf("F%d_t%d_tp%d_n%d_%s", c.f, c.tBudget, c.tPrime, c.active, c.sched)
		results[i].name = name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := Params{N: c.nBound, F: c.f, T: c.tBudget}
			var sched sim.Schedule = sim.Simultaneous{Count: c.active}
			if c.sched == "staggered" {
				sched = sim.Staggered{Count: c.active, Gap: p.EpochLen(1) / 2}
			}
			check := props.NewChecker(c.active)
			cfg := &sim.Config{
				F:    c.f,
				T:    c.tBudget,
				Seed: uint64(4000 + i),
				NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
					return MustNew(p, r)
				},
				Schedule:     sched,
				Adversary:    adversary.NewLowPrefix(c.f, c.tPrime),
				MaxRounds:    1 << 23,
				Observers:    []sim.Observer{check},
				WireFidelity: true,
			}
			res, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllSynced {
				t.Fatalf("not synced after %d rounds (liveness is probability 1)", res.Stats.Rounds)
			}
			if !check.OK() || res.Leaders != 1 {
				results[i].bad = true
				t.Logf("w.h.p. failure: leaders=%d violations=%d", res.Leaders, check.Count())
			}
		})
	}
	t.Cleanup(func() {
		failures := 0
		for _, r := range results {
			if r.bad {
				failures++
				t.Logf("grid failure at %s", r.name)
			}
		}
		if failures > budget {
			t.Errorf("%d w.h.p. failures across %d grid points, budget %d (expected ~%.1f)",
				failures, len(cases), budget, expectedFailures)
		}
	})
}
