package samaritan

import (
	"testing"

	"wsync/internal/adversary"
	"wsync/internal/core"
	"wsync/internal/msg"
	"wsync/internal/props"
	"wsync/internal/rng"
	"wsync/internal/sim"
)

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{N: 8, F: 0, T: 0},
		{N: 8, F: 4, T: -1},
		{N: 8, F: 4, T: 4},
		{N: 8, F: 4, T: 3},                   // T > F/2
		{N: 8, F: 4, T: 1, LeaderTxProb: 2},  // bad prob
		{N: 8, F: 4, T: 1, EpochLogPower: 9}, // absurd exponent
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
	if err := (Params{N: 8, F: 4, T: 2}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

// TestScheduleMatchesFigure2 checks the generated structure against
// Figure 2: lgF super-epochs of lgN+2 epochs each, epoch length
// Θ(2^k·log^P N) growing geometrically in k, probability ramp 1/N..1/2
// then 1/2 for the two extra epochs, narrow band [1..2^k].
func TestScheduleMatchesFigure2(t *testing.T) {
	p := Params{N: 16, F: 8, T: 2, CEpoch: 2, EpochLogPower: 2}
	rows := p.Schedule()
	lgN, lgF := p.LgN(), p.LgF()
	if lgN != 4 || lgF != 3 {
		t.Fatalf("lgN=%d lgF=%d", lgN, lgF)
	}
	if len(rows) != lgF*(lgN+2) {
		t.Fatalf("rows = %d, want %d", len(rows), lgF*(lgN+2))
	}
	// Epoch lengths double per super-epoch: s(k) = 2·2^k·16.
	for _, row := range rows {
		want := uint64(2) * (1 << uint(row.Super)) * 16
		if row.Length != want {
			t.Errorf("s(%d) = %d, want %d", row.Super, row.Length, want)
		}
		wantBand := 1 << uint(row.Super)
		if wantBand > 8 {
			wantBand = 8
		}
		if row.NarrowBand != wantBand {
			t.Errorf("super %d band = %d, want %d", row.Super, row.NarrowBand, wantBand)
		}
		if row.Special != (row.Epoch > lgN) {
			t.Errorf("super %d epoch %d special flag = %v", row.Super, row.Epoch, row.Special)
		}
	}
	// Probability ramp within a super-epoch: 1/16, 2/16, 4/16, 8/16, 1/2, 1/2.
	want := []float64{1.0 / 16, 2.0 / 16, 4.0 / 16, 8.0 / 16, 0.5, 0.5}
	for e := 1; e <= lgN+2; e++ {
		if got := rows[e-1].Prob; got != want[e-1] {
			t.Errorf("epoch %d prob = %v, want %v", e, got, want[e-1])
		}
	}
}

func TestSuccessThreshold(t *testing.T) {
	p := Params{N: 16, F: 8, T: 2, CEpoch: 16, EpochLogPower: 2, ThresholdShift: 6}
	// s(k) = 16·2^k·16 = 256·2^k; threshold = s(k)/2^(k+6) = 256/64 = 4.
	for k := 1; k <= 3; k++ {
		if got := p.SuccessThreshold(k); got != 4 {
			t.Errorf("threshold(%d) = %d, want 4", k, got)
		}
	}
	// Tiny parameters floor at 1.
	small := Params{N: 4, F: 4, T: 1, CEpoch: 1, EpochLogPower: 1}
	if got := small.SuccessThreshold(1); got < 1 {
		t.Errorf("threshold = %d, want >= 1", got)
	}
}

func TestFallbackEpochLen(t *testing.T) {
	p := Params{N: 16, F: 8, T: 2, CEpoch: 2, EpochLogPower: 2}
	// Longest epoch: s(lgF) = 2·8·16 = 256; fallback = 4×256 = 1024.
	if got := p.FallbackEpochLen(); got != 1024 {
		t.Fatalf("FallbackEpochLen = %d, want 1024", got)
	}
}

func TestOptimisticRounds(t *testing.T) {
	p := Params{N: 16, F: 8, T: 2, CEpoch: 2, EpochLogPower: 2}
	// Σ_k (lgN+2)·s(k) = 6·(64+128+256)·... s(k)=2·2^k·16: 64,128,256 → 6·448 = 2688.
	if got := p.OptimisticRounds(); got != 2688 {
		t.Fatalf("OptimisticRounds = %d, want 2688", got)
	}
}

func TestDowngradeIgnoresTimestamps(t *testing.T) {
	p := Params{N: 8, F: 8, T: 2}
	n := MustNew(p, rng.New(1))
	n.Step(100) // age 100: larger than the sender's
	n.Deliver(msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{Age: 1, UID: 1}, Epoch: 1, Super: 1})
	if n.Role() != core.RoleSamaritan {
		t.Fatalf("role = %v, want samaritan despite larger own timestamp", n.Role())
	}
}

func TestSamaritanKnockout(t *testing.T) {
	p := Params{N: 8, F: 8, T: 2}
	n := MustNew(p, rng.New(1))
	n.Step(1)
	n.Deliver(msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{Age: 1, UID: 1}})
	if n.Role() != core.RoleSamaritan {
		t.Fatal("setup: not samaritan")
	}
	n.Deliver(msg.Message{Kind: msg.KindSamaritan, TS: msg.Timestamp{Age: 1, UID: 2}})
	if n.Role() != core.RolePassive {
		t.Fatalf("role = %v, want passive after samaritan message", n.Role())
	}
	// Passive nodes only listen.
	for r := uint64(2); r < 50; r++ {
		if a := n.Step(r); a.Transmit {
			t.Fatal("passive node transmitted")
		}
	}
}

// driveToEpoch advances a node to the given super-epoch and epoch by
// stepping it; it requires the node to still be contender/samaritan.
func driveToEpoch(t *testing.T, n *Node, super, epoch int) uint64 {
	t.Helper()
	r := uint64(0)
	for n.super != super || n.epoch != epoch {
		r++
		n.Step(r)
		if r > 10_000_000 {
			t.Fatalf("never reached super %d epoch %d (at %d/%d)", super, epoch, n.super, n.epoch)
		}
	}
	return r
}

func TestSamaritanRecordingConditions(t *testing.T) {
	p := Params{N: 4, F: 4, T: 1, CEpoch: 2, EpochLogPower: 1}
	critical := p.LgN() + 1

	mk := func() (*Node, uint64) {
		n := MustNew(p, rng.New(3))
		n.Step(1)
		n.Deliver(msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{Age: 1, UID: 1}})
		if n.Role() != core.RoleSamaritan {
			t.Fatal("setup: not samaritan")
		}
		age := driveToEpoch(t, n, 1, critical)
		// Make sure this round is non-special for the samaritan.
		for n.thisSpecial {
			age++
			n.Step(age)
			if n.epoch != critical {
				t.Fatal("left critical epoch while searching for non-special round")
			}
		}
		return n, age
	}

	good := func(age uint64) msg.Message {
		return msg.Message{
			Kind:  msg.KindContender,
			TS:    msg.Timestamp{Age: age, UID: 42},
			Epoch: uint16(critical),
			Super: 1,
		}
	}

	// Recording happens under the right conditions.
	n, age := mk()
	n.Deliver(good(age))
	if n.tallies[42] != 1 {
		t.Fatalf("tally = %d, want 1", n.tallies[42])
	}
	// Wrong sender epoch: ignored.
	n, age = mk()
	m := good(age)
	m.Epoch = uint16(critical - 1)
	n.Deliver(m)
	if n.tallies[42] != 0 {
		t.Fatal("recorded despite wrong sender epoch")
	}
	// Special sender round: ignored.
	n, age = mk()
	m = good(age)
	m.Special = true
	n.Deliver(m)
	if n.tallies[42] != 0 {
		t.Fatal("recorded despite special sender round")
	}
	// Different activation (age mismatch): ignored.
	n, age = mk()
	m = good(age + 7)
	n.Deliver(m)
	if n.tallies[42] != 0 {
		t.Fatal("recorded despite age mismatch")
	}
	// Fallback sender: ignored.
	n, age = mk()
	m = good(age)
	m.Fallback = true
	n.Deliver(m)
	if n.tallies[42] != 0 {
		t.Fatal("recorded despite fallback sender")
	}
}

func TestContenderPromotedByReport(t *testing.T) {
	p := Params{N: 4, F: 4, T: 1}
	n := MustNew(p, rng.New(5))
	n.Step(1)
	th := p.SuccessThreshold(1)
	// Below threshold: stays contender.
	n.Deliver(msg.Message{
		Kind: msg.KindSamaritan, TS: msg.Timestamp{Age: 1, UID: 7}, Super: 1,
		Reports: []msg.Report{{UID: n.UID(), Count: th - 1}},
	})
	if n.IsLeader() {
		t.Fatal("promoted below threshold")
	}
	// Wrong super-epoch: ignored.
	n.Deliver(msg.Message{
		Kind: msg.KindSamaritan, TS: msg.Timestamp{Age: 1, UID: 7}, Super: 2,
		Reports: []msg.Report{{UID: n.UID(), Count: th + 5}},
	})
	if n.IsLeader() {
		t.Fatal("promoted by report from another super-epoch")
	}
	// Someone else's report: ignored.
	n.Deliver(msg.Message{
		Kind: msg.KindSamaritan, TS: msg.Timestamp{Age: 1, UID: 7}, Super: 1,
		Reports: []msg.Report{{UID: n.UID() + 1, Count: th + 5}},
	})
	if n.IsLeader() {
		t.Fatal("promoted by another contender's tally")
	}
	// Meeting the threshold promotes.
	n.Deliver(msg.Message{
		Kind: msg.KindSamaritan, TS: msg.Timestamp{Age: 1, UID: 7}, Super: 1,
		Reports: []msg.Report{{UID: n.UID(), Count: th}},
	})
	if !n.IsLeader() {
		t.Fatal("not promoted at threshold")
	}
	if !n.Output().Synced {
		t.Fatal("leader not synced")
	}
}

func TestFallbackEntryAndLeadership(t *testing.T) {
	p := Params{N: 4, F: 4, T: 1, CEpoch: 1, EpochLogPower: 1}
	n := MustNew(p, rng.New(6))
	opt := p.OptimisticRounds()
	for r := uint64(1); r <= opt+1; r++ {
		n.Step(r)
	}
	if !n.InFallback() {
		t.Fatalf("role = %v, want fallback after %d rounds", n.Role(), opt+1)
	}
	// A lone fallback contender wins after lgN fallback epochs.
	fbTotal := uint64(p.LgN()) * p.FallbackEpochLen()
	for r := opt + 2; r <= opt+fbTotal+2; r++ {
		n.Step(r)
	}
	if !n.IsLeader() {
		t.Fatalf("role = %v, want leader after fallback epochs", n.Role())
	}
}

func TestFallbackKnockoutUsesTimestamps(t *testing.T) {
	p := Params{N: 4, F: 4, T: 1, CEpoch: 1, EpochLogPower: 1}
	n := MustNew(p, rng.New(6))
	opt := p.OptimisticRounds()
	for r := uint64(1); r <= opt+1; r++ {
		n.Step(r)
	}
	if !n.InFallback() {
		t.Fatal("setup: not in fallback")
	}
	// Smaller timestamp: survives.
	n.Deliver(msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{Age: 1, UID: 1}, Fallback: true})
	if n.Role() != core.RoleFallback {
		t.Fatal("fallback node knocked out by smaller timestamp")
	}
	// Larger timestamp: knocked out.
	n.Deliver(msg.Message{Kind: msg.KindContender, TS: msg.Timestamp{Age: 1 << 40, UID: 1}, Fallback: true})
	if n.Role() != core.RolePassive {
		t.Fatalf("role = %v, want passive", n.Role())
	}
}

func TestLeaderAdoptionAndDeferral(t *testing.T) {
	p := Params{N: 4, F: 4, T: 1}
	n := MustNew(p, rng.New(8))
	n.Step(1)
	n.Deliver(msg.Message{Kind: msg.KindLeader, TS: msg.Timestamp{Age: 10, UID: 2}, Round: 900, Scheme: 2})
	if n.Role() != core.RoleSynced {
		t.Fatalf("role = %v, want synced", n.Role())
	}
	out := n.Output()
	if !out.Synced || out.Value != 900 {
		t.Fatalf("output = %+v", out)
	}
	n.Step(2)
	if got := n.Output().Value; got != 901 {
		t.Fatalf("output = %d, want 901", got)
	}
}

// goodCaseConfig is the Theorem 18 optimistic setting: all nodes start
// together, adversary jams only tPrime < T low frequencies.
func goodCaseConfig(p Params, n int, tPrime int, seed uint64) *sim.Config {
	return &sim.Config{
		F:    p.F,
		T:    p.T,
		Seed: seed,
		NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return MustNew(p, r)
		},
		Schedule:  sim.Simultaneous{Count: n},
		Adversary: adversary.NewLowPrefix(p.F, tPrime),
		MaxRounds: 3_000_000,
		// Every protocol message must survive the radio wire format.
		WireFidelity: true,
	}
}

func TestGoodCaseTwoNodes(t *testing.T) {
	p := Params{N: 16, F: 8, T: 4}
	ok := 0
	for seed := uint64(0); seed < 3; seed++ {
		cfg := goodCaseConfig(p, 2, 1, seed)
		check := props.NewChecker(2)
		cfg.Observers = []sim.Observer{check}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllSynced {
			t.Fatalf("seed %d: not synced in %d rounds", seed, res.Stats.Rounds)
		}
		if !check.OK() {
			t.Fatalf("seed %d: violations: %v", seed, check.Violations())
		}
		if res.Leaders == 1 {
			ok++
		}
		// The good case should finish inside the optimistic portion.
		if res.MaxSyncLocal > p.OptimisticRounds() {
			t.Fatalf("seed %d: sync took %d rounds, beyond the optimistic portion %d",
				seed, res.MaxSyncLocal, p.OptimisticRounds())
		}
	}
	if ok < 3 {
		t.Fatalf("unique leader in only %d/3 runs", ok)
	}
}

func TestGoodCaseSeveralNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	p := Params{N: 16, F: 8, T: 4}
	for seed := uint64(0); seed < 3; seed++ {
		cfg := goodCaseConfig(p, 6, 2, seed)
		check := props.NewChecker(6)
		cfg.Observers = []sim.Observer{check}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllSynced {
			t.Fatalf("seed %d: not synced in %d rounds", seed, res.Stats.Rounds)
		}
		if !check.OK() {
			t.Fatalf("seed %d: violations: %v", seed, check.Violations())
		}
	}
}

func TestGeneralCaseStaggeredFallsBackAndSyncs(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	p := Params{N: 8, F: 4, T: 2, CEpoch: 2}
	for seed := uint64(0); seed < 3; seed++ {
		cfg := &sim.Config{
			F:    p.F,
			T:    p.T,
			Seed: seed,
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				return MustNew(p, r)
			},
			Schedule:  sim.Staggered{Count: 4, Gap: 500},
			Adversary: adversary.NewRandom(p.F, p.T, seed+77),
			MaxRounds: 3_000_000,
		}
		check := props.NewChecker(4)
		cfg.Observers = []sim.Observer{check}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllSynced {
			t.Fatalf("seed %d: not synced in %d rounds", seed, res.Stats.Rounds)
		}
		if !check.OK() {
			t.Fatalf("seed %d: violations: %v", seed, check.Violations())
		}
	}
}

// Property-style invariant: a transmitting node cannot be downgraded in the
// same round it transmits (it is not listening), so at least one contender
// always remains among nodes that have not entered fallback or leadership.
// We verify the weaker observable: in good-case runs some node always
// becomes leader, never zero.
func TestLeaderAlwaysEmerges(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	p := Params{N: 8, F: 4, T: 2, CEpoch: 2}
	for seed := uint64(10); seed < 13; seed++ {
		cfg := goodCaseConfig(p, 3, 1, seed)
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Leaders < 1 {
			t.Fatalf("seed %d: no leader emerged", seed)
		}
	}
}

// TestLiteralFigure2EpochLength runs the protocol with EpochLogPower=3 —
// Figure 2 exactly as printed — and verifies the good case still works
// (total becomes Θ(t'·log⁴N); see DESIGN.md on the paper's internal
// inconsistency).
func TestLiteralFigure2EpochLength(t *testing.T) {
	if testing.Short() {
		t.Skip("long literal-figure run")
	}
	p := Params{N: 8, F: 8, T: 4, EpochLogPower: 3, CEpoch: 2}
	cfg := goodCaseConfig(p, 2, 1, 1)
	cfg.MaxRounds = 5_000_000
	check := props.NewChecker(2)
	cfg.Observers = []sim.Observer{check}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSynced {
		t.Fatalf("literal Figure 2 config did not sync in %d rounds", res.Stats.Rounds)
	}
	if !check.OK() {
		t.Fatalf("violations: %v", check.Violations())
	}
	// Epoch lengths grow by lgN over the default exponent.
	def := Params{N: 8, F: 8, T: 4, CEpoch: 2}
	if p.EpochLen(1) != def.EpochLen(1)*uint64(p.LgN()) {
		t.Fatalf("s(1) = %d, want %d × lgN", p.EpochLen(1), def.EpochLen(1))
	}
}
