// Package samaritan implements the Good Samaritan Protocol of Section 7 of
// the paper: an optimistic, adaptive solution to the wireless
// synchronization problem.
//
// In good executions — all nodes activated in the same round, at most
// t' < t frequencies disrupted per round — every node synchronizes within
// O(t'·log³N) rounds; in all executions it synchronizes within
// O(F·log³N) rounds (Theorem 18).
//
// Structure (Figure 2): each node walks through lg F super-epochs; in
// super-epoch k nodes concentrate half their energy on the narrow band
// [1..2^k]. Each super-epoch consists of lg N + 2 epochs with the Trapdoor
// probability ramp 2^e/(2N) capped at 1/2. Contenders are not knocked out
// by other contenders: they are downgraded to good samaritans, whose job is
// to tell the surviving contender whether its broadcasts succeed. In the
// critical epoch (lg N + 1) a samaritan tallies successful non-special
// receptions from contenders activated in the same round; in the reporting
// epoch (lg N + 2) it broadcasts the tallies. A contender that learns it
// succeeded at least s(k)/2^(k+6) times becomes leader. Samaritans that
// hear other samaritans become passive. A node that exhausts all lg F
// super-epochs falls back to a modified Trapdoor Protocol (epochs at least
// four times the longest Good Samaritan epoch, timestamps honored again),
// interleaved coin-flip-wise with Good Samaritan special rounds so that an
// optimistic leader can still knock out fallback contenders.
//
// The paper states Figure 2's epoch length as Θ(2^k·log³N), which together
// with lg N+2 epochs per super-epoch would give a total of Θ(t'·log⁴N),
// contradicting Theorem 18's O(t'·log³N). We default to s(k) =
// CEpoch·2^k·lg²N, which makes totals match the theorem; EpochLogPower
// restores the literal Figure 2 exponent if desired (see DESIGN.md).
package samaritan
