package wsync_test

import (
	"fmt"
	"log"

	"wsync"
)

// ExampleRun synchronizes eight devices on a jammed band with the Trapdoor
// Protocol.
func ExampleRun() {
	res, err := wsync.Run(wsync.Config{
		Protocol:  wsync.Trapdoor,
		Nodes:     8,
		N:         64,
		F:         8,
		T:         2,
		Adversary: "fixed", // jam frequencies 1..t forever
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.AllSynced, res.Leaders, res.PropertiesOK)
	// Output: true 1 true
}

// ExampleRun_goodSamaritan uses the adaptive protocol when the band is
// calmer than the worst case.
func ExampleRun_goodSamaritan() {
	res, err := wsync.Run(wsync.Config{
		Protocol:     wsync.GoodSamaritan,
		Nodes:        2,
		N:            16,
		F:            8,
		T:            4, // budget the protocol must survive
		Adversary:    "fixed",
		JammedPrefix: 1, // ... but only one frequency is actually jammed
		Seed:         5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.AllSynced, res.PropertiesOK)
	// Output: true true
}

// ExampleRun_customAgent shows the extension point for applications built
// on synchronized rounds: wrap a protocol node inside your own agent.
func ExampleRun_customAgent() {
	received := 0
	res, err := wsync.Run(wsync.Config{
		Nodes: 2,
		F:     4,
		Seed:  7,
		NewAgent: func(id int, activation uint64, r *wsync.Rand) wsync.Agent {
			node, err := wsync.NewTrapdoorNode(
				wsync.TrapdoorParams{N: 16, F: 4, T: 0}, r)
			if err != nil {
				log.Fatal(err)
			}
			return &countingAgent{Agent: node, hits: &received}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.AllSynced, received > 0)
	// Output: true true
}

// countingAgent forwards to an embedded protocol node and counts
// deliveries.
type countingAgent struct {
	wsync.Agent
	hits *int
}

func (c *countingAgent) Deliver(m wsync.Message) {
	*c.hits++
	c.Agent.Deliver(m)
}
