// Benchmarks: one per paper artifact (see DESIGN.md §4 for the experiment
// index). Each benchmark exercises the code path that regenerates the
// corresponding table or figure and reports the headline quantity (usually
// synchronization rounds) as a custom metric, so
//
//	go test -bench=. -benchmem
//
// doubles as a quick reproduction pass. The full sweeps with statistics
// live in cmd/wexp (see EXPERIMENTS.md).
package wsync

import (
	"runtime"
	"sync/atomic"
	"testing"

	"wsync/internal/adversary"
	"wsync/internal/baseline"
	"wsync/internal/harness"
	"wsync/internal/lowerbound"
	"wsync/internal/multihop"
	"wsync/internal/props"
	"wsync/internal/replog"
	"wsync/internal/rng"
	"wsync/internal/samaritan"
	"wsync/internal/sim"
	"wsync/internal/trapdoor"
	"wsync/internal/unslotted"
)

// reportRounds attaches the measured synchronization time to the bench.
func reportRounds(b *testing.B, total uint64, n int) {
	b.Helper()
	if n > 0 {
		b.ReportMetric(float64(total)/float64(n), "rounds/run")
	}
}

// BenchmarkF1TrapdoorSchedule regenerates the Figure 1 epoch table.
func BenchmarkF1TrapdoorSchedule(b *testing.B) {
	p := trapdoor.Params{N: 64, F: 8, T: 2}
	for i := 0; i < b.N; i++ {
		rows := p.Schedule()
		if len(rows) != p.LgN() {
			b.Fatal("bad schedule")
		}
	}
}

// BenchmarkF2SamaritanSchedule regenerates the Figure 2 structure table.
func BenchmarkF2SamaritanSchedule(b *testing.B) {
	p := samaritan.Params{N: 16, F: 8, T: 2}
	for i := 0; i < b.N; i++ {
		rows := p.Schedule()
		if len(rows) != p.LgF()*p.EpochsPerSuper() {
			b.Fatal("bad schedule")
		}
	}
}

// BenchmarkL2BallsInBins runs the Lemma 2 process.
func BenchmarkL2BallsInBins(b *testing.B) {
	probs := lowerbound.Lemma2Distribution(3, 0.5, 1)
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		lowerbound.NoSingleton(8, probs, r)
	}
}

// BenchmarkT1RegularLowerBound measures time-to-first-clear-broadcast for
// the Theorem 1 setting.
func BenchmarkT1RegularLowerBound(b *testing.B) {
	const n, f, t = 256, 8, 2
	reg := lowerbound.NewTrapdoorRegular(trapdoor.Params{N: n, F: f, T: t})
	var total uint64
	for i := 0; i < b.N; i++ {
		res, err := lowerbound.FirstClear(reg, n, f, t, 1<<21, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		total += res.Rounds
	}
	reportRounds(b, total, b.N)
}

// BenchmarkT4TwoNodeGame plays the Theorem 4 rendezvous game against the
// greedy adversary.
func BenchmarkT4TwoNodeGame(b *testing.B) {
	reg := lowerbound.UniformRegular{M: 4, P: 0.5}
	var total uint64
	for i := 0; i < b.N; i++ {
		res := lowerbound.TwoNodeGame(reg, reg, 8, 2, 0, 1<<20, uint64(i))
		total += res.Rounds
	}
	reportRounds(b, total, b.N)
}

// trapdoorBench runs one Trapdoor simulation.
func trapdoorBench(b *testing.B, p trapdoor.Params, n int, adv func(seed uint64) sim.Adversary) {
	b.Helper()
	var total uint64
	for i := 0; i < b.N; i++ {
		cfg := &sim.Config{
			F:    p.F,
			T:    p.T,
			Seed: uint64(i),
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				return trapdoor.MustNew(p, r)
			},
			Schedule:  sim.Simultaneous{Count: n},
			Adversary: adv(uint64(i)),
			MaxRounds: 1 << 22,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllSynced {
			b.Fatal("did not synchronize")
		}
		total += res.MaxSyncLocal
	}
	reportRounds(b, total, b.N)
}

// BenchmarkT10TrapdoorVsN sweeps the participant bound (Theorem 10,
// log²N shape).
func BenchmarkT10TrapdoorVsN(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024} {
		n := n
		b.Run(benchName("N", n), func(b *testing.B) {
			trapdoorBench(b, trapdoor.Params{N: n, F: 8, T: 2}, 8,
				func(uint64) sim.Adversary { return adversary.NewPrefix(8, 2) })
		})
	}
}

// BenchmarkT10TrapdoorVsT sweeps the disruption budget (Theorem 10,
// F/(F−t) blow-up).
func BenchmarkT10TrapdoorVsT(b *testing.B) {
	for _, t := range []int{1, 3, 5, 7} {
		t := t
		b.Run(benchName("t", t), func(b *testing.B) {
			trapdoorBench(b, trapdoor.Params{N: 64, F: 8, T: t}, 8,
				func(uint64) sim.Adversary { return adversary.NewPrefix(8, t) })
		})
	}
}

// BenchmarkT10Agreement runs the leader-uniqueness check (Theorem 10,
// agreement w.h.p.).
func BenchmarkT10Agreement(b *testing.B) {
	p := trapdoor.Params{N: 64, F: 8, T: 2}
	bad := 0
	for i := 0; i < b.N; i++ {
		check := props.NewChecker(8)
		cfg := &sim.Config{
			F:    p.F,
			T:    p.T,
			Seed: uint64(i),
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				return trapdoor.MustNew(p, r)
			},
			Schedule:  sim.Simultaneous{Count: 8},
			Adversary: adversary.NewPrefix(8, 2),
			MaxRounds: 1 << 21,
			Observers: []sim.Observer{check},
		}
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Leaders != 1 || !check.OK() {
			bad++
		}
	}
	b.ReportMetric(float64(bad)/float64(b.N), "failures/run")
}

// BenchmarkL9BroadcastWeight probes the broadcast weight W(r) (Lemma 9).
func BenchmarkL9BroadcastWeight(b *testing.B) {
	p := trapdoor.Params{N: 64, F: 8, T: 2}
	maxW := 0.0
	for i := 0; i < b.N; i++ {
		w := &harness.WeightObserver{}
		cfg := &sim.Config{
			F:    p.F,
			T:    p.T,
			Seed: uint64(i),
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				return trapdoor.MustNew(p, r)
			},
			Schedule:     sim.Simultaneous{Count: 64},
			Adversary:    adversary.NewPrefix(8, 2),
			MaxRounds:    1 << 21,
			Observers:    []sim.Observer{w},
			ProbeWeights: true,
		}
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
		if w.Max > maxW {
			maxW = w.Max
		}
	}
	b.ReportMetric(maxW, "maxW")
	b.ReportMetric(6*float64(p.FPrime()), "bound6F'")
}

// samaritanBench runs one Good Samaritan simulation.
func samaritanBench(b *testing.B, p samaritan.Params, n int, sched sim.Schedule,
	adv func(seed uint64) sim.Adversary) {
	b.Helper()
	var total uint64
	for i := 0; i < b.N; i++ {
		cfg := &sim.Config{
			F:    p.F,
			T:    p.T,
			Seed: uint64(i),
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				return samaritan.MustNew(p, r)
			},
			Schedule:  sched,
			Adversary: adv(uint64(i)),
			MaxRounds: 1 << 23,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllSynced {
			b.Fatal("did not synchronize")
		}
		total += res.MaxSyncLocal
	}
	reportRounds(b, total, b.N)
}

// BenchmarkT18SamaritanVsTprime sweeps the actual disruption t' in good
// executions (Theorem 18, adaptive bound).
func BenchmarkT18SamaritanVsTprime(b *testing.B) {
	p := samaritan.Params{N: 16, F: 16, T: 8}
	for _, tp := range []int{1, 2, 4} {
		tp := tp
		b.Run(benchName("tprime", tp), func(b *testing.B) {
			samaritanBench(b, p, 4, sim.Simultaneous{Count: 4},
				func(uint64) sim.Adversary { return adversary.NewLowPrefix(16, tp) })
		})
	}
}

// BenchmarkT18SamaritanFallback forces the fallback path (Theorem 18,
// general bound).
func BenchmarkT18SamaritanFallback(b *testing.B) {
	p := samaritan.Params{N: 16, F: 4, T: 2}
	samaritanBench(b, p, 4, sim.Staggered{Count: 4, Gap: p.EpochLen(1)},
		func(seed uint64) sim.Adversary { return adversary.NewRandom(4, 2, seed+99) })
}

// BenchmarkX1Crossover runs both protocols in the calm-band setting where
// the Good Samaritan wins.
func BenchmarkX1Crossover(b *testing.B) {
	b.Run("trapdoor", func(b *testing.B) {
		trapdoorBench(b, trapdoor.Params{N: 16, F: 64, T: 32}, 2,
			func(uint64) sim.Adversary { return adversary.NewLowPrefix(64, 1) })
	})
	b.Run("samaritan", func(b *testing.B) {
		samaritanBench(b, samaritan.Params{N: 16, F: 64, T: 32}, 2,
			sim.Simultaneous{Count: 2},
			func(uint64) sim.Adversary { return adversary.NewLowPrefix(64, 1) })
	})
}

// BenchmarkX2Baselines compares against the baselines under the X2
// environment.
func BenchmarkX2Baselines(b *testing.B) {
	mk := map[string]func(r *rng.Rand) sim.Agent{
		"trapdoor":   func(r *rng.Rand) sim.Agent { return trapdoor.MustNew(trapdoor.Params{N: 64, F: 8, T: 2}, r) },
		"wakeup":     func(r *rng.Rand) sim.Agent { return baseline.NewWakeup(64, 8, r) },
		"roundrobin": func(r *rng.Rand) sim.Agent { return baseline.NewRoundRobin(64, 8, r) },
	}
	for name, factory := range mk {
		factory := factory
		b.Run(name, func(b *testing.B) {
			var total uint64
			for i := 0; i < b.N; i++ {
				cfg := &sim.Config{
					F:    8,
					T:    2,
					Seed: uint64(i),
					NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
						return factory(r)
					},
					Schedule:  sim.Simultaneous{Count: 8},
					Adversary: adversary.NewPrefix(8, 2),
					MaxRounds: 1 << 20,
				}
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				total += res.Stats.Rounds
			}
			reportRounds(b, total, b.N)
		})
	}
}

// BenchmarkX3CrashRecovery exercises the fault-tolerant Trapdoor variant
// with a crashing leader.
func BenchmarkX3CrashRecovery(b *testing.B) {
	p := trapdoor.Params{N: 16, F: 8, T: 2, FaultTolerant: true, CommitThreshold: 2}
	crashAt := 3 * p.TotalRounds()
	maxRounds := crashAt + 40*p.EffectiveLeaderTimeout() + 4*p.TotalRounds()
	recovered := 0
	for i := 0; i < b.N; i++ {
		var survivors []*trapdoor.Node
		cfg := &sim.Config{
			F:    p.F,
			T:    p.T,
			Seed: uint64(i),
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				n := trapdoor.MustNew(p, r)
				if id == 0 {
					return &adversary.CrashAgent{Inner: n, CrashAt: crashAt}
				}
				survivors = append(survivors, n)
				return n
			},
			Schedule:       sim.Staggered{Count: 4, Gap: 2},
			Adversary:      adversary.NewPrefix(8, 2),
			MaxRounds:      maxRounds,
			RunToMaxRounds: true,
		}
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
		for _, n := range survivors {
			if n.IsLeader() {
				recovered++
				break
			}
		}
	}
	b.ReportMetric(float64(recovered)/float64(b.N), "recovered/run")
}

// BenchmarkX4Ablations runs the no-knockout ablation (agreement collapses).
func BenchmarkX4Ablations(b *testing.B) {
	p := trapdoor.Params{N: 64, F: 8, T: 2, AblationNoKnockout: true}
	leaders := 0
	for i := 0; i < b.N; i++ {
		cfg := &sim.Config{
			F:    p.F,
			T:    p.T,
			Seed: uint64(i),
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				return trapdoor.MustNew(p, r)
			},
			Schedule:  sim.Simultaneous{Count: 8},
			Adversary: adversary.NewPrefix(8, 2),
			MaxRounds: 1 << 20,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		leaders += res.Leaders
	}
	b.ReportMetric(float64(leaders)/float64(b.N), "leaders/run")
}

// BenchmarkX5Unslotted runs the phase-shifted transformation (Section 8).
func BenchmarkX5Unslotted(b *testing.B) {
	p := trapdoor.Params{N: 16, F: 6, T: 2}
	var total uint64
	for i := 0; i < b.N; i++ {
		res, err := unslotted.Run(&unslotted.Config{
			F:    p.F,
			T:    p.T,
			Seed: uint64(i),
			N:    4,
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				return trapdoor.MustNew(p, r)
			},
			Phase:     unslotted.RandomPhases(4, uint64(i)+9),
			Adversary: adversary.NewPrefix(p.F, p.T),
			MaxRounds: 1 << 21,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllSynced {
			b.Fatal("did not synchronize")
		}
		total += res.Rounds
	}
	reportRounds(b, total, b.N)
}

// BenchmarkX6ReplicatedLog replicates a command sequence over synchronized
// rounds (Section 8).
func BenchmarkX6ReplicatedLog(b *testing.B) {
	const members, f = 4, 8
	commands := []uint64{1, 2, 3, 4, 5}
	p := trapdoor.Params{N: 16, F: f, T: 2}
	var total uint64
	for i := 0; i < b.N; i++ {
		nodes := make([]*replog.Node, members)
		cfg := &sim.Config{
			F:    f,
			T:    2,
			Seed: uint64(i),
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				n, err := replog.New(replog.Config{
					Members: members, F: f, Commands: commands, Settle: 200,
				}, trapdoor.MustNew(p, r), r)
				if err != nil {
					b.Fatal(err)
				}
				nodes[id] = n
				return n
			},
			Schedule:       sim.Simultaneous{Count: members},
			Adversary:      adversary.NewRandom(f, 2, uint64(i)),
			MaxRounds:      200000,
			RunToMaxRounds: true,
			StopWhen: func(h *sim.History) bool {
				for _, n := range nodes {
					if n == nil || n.CommitIndex() < len(commands) {
						return false
					}
				}
				return true
			},
		}
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total += res.Stats.Rounds
	}
	reportRounds(b, total, b.N)
}

// BenchmarkX7Multihop runs relay synchronization on a line network
// (Section 8).
func BenchmarkX7Multihop(b *testing.B) {
	p := trapdoor.Params{N: 8, F: 6, T: 2}
	topo := multihop.Line(8)
	var total uint64
	for i := 0; i < b.N; i++ {
		res, err := multihop.Run(&multihop.Config{
			F: p.F, T: p.T,
			Seed:     uint64(i),
			Topology: topo,
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				return multihop.MustNewRelay(p, r)
			},
			Adversary: adversary.NewRandom(p.F, p.T, uint64(i)+3),
			MaxRounds: 4_000_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllSynced {
			b.Fatal("did not synchronize")
		}
		total += res.Rounds
	}
	reportRounds(b, total, b.N)
}

// BenchmarkMultihopThroughput measures the multi-hop engine in node-rounds
// per second over the X7 topology shapes, each workload once under the
// frequency-indexed medium path (the Config.Medium zero value) and once
// under the legacy per-receiver neighbor scan, so the indexed/scan ratio
// per shape IS the speedup. The schedule trickles the nodes in (the -full
// sweep tier's shape): the scan path walks all N schedule slots and every
// listener's full neighborhood each round, while the indexed path touches
// only awake nodes and intersects frequency buckets with neighborhoods —
// the acceptance bar is a measurable node-rounds/s win on RGG at N ≥ 1024.
func BenchmarkMultihopThroughput(b *testing.B) {
	p := trapdoor.Params{N: 64, F: 24, T: 2}
	shapes := []struct {
		name string
		topo *multihop.Topology
	}{
		{"line-1024", multihop.Line(1024)},
		{"grid-32x32", multihop.Grid(32, 32)},
		{"rgg-1024", multihop.RandomGeometricConnected(1024, 0.07, 7)},
		{"rgg-4096", multihop.RandomGeometricConnected(4096, 0.04, 7)},
	}
	mediums := []struct {
		name   string
		medium sim.MediumPath
	}{
		{"indexed", sim.MediumIndexed},
		{"scan", sim.MediumScan},
	}
	for _, c := range shapes {
		c := c
		for _, m := range mediums {
			m := m
			b.Run(m.name+"/"+c.name, func(b *testing.B) {
				b.ReportAllocs()
				var nodeRounds uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := multihop.Run(&multihop.Config{
						F: p.F, T: p.T,
						Seed:     uint64(i),
						Topology: c.topo,
						NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
							return multihop.MustNewRelay(p, r)
						},
						Schedule:  sim.Staggered{Count: c.topo.N(), Gap: 2},
						Adversary: adversary.NewRandom(p.F, p.T, uint64(i)+3),
						MaxRounds: 2048,
						RunToMax:  true,
						Medium:    m.medium,
					})
					if err != nil {
						b.Fatal(err)
					}
					nodeRounds += res.NodeRounds
				}
				b.StopTimer()
				b.ReportMetric(float64(nodeRounds)/b.Elapsed().Seconds(), "node-rounds/s")
			})
		}
	}
}

// BenchmarkRunnerScaling measures the experiment runner's trial
// throughput as the worker count grows: the same T10a sweep at
// Parallelism 1, 2, 4, and NumCPU. The tables are bit-identical at every
// level (TestRunnerDeterminism asserts this); only the wall clock moves,
// so sub-benchmark ratios ARE the runner's scaling curve.
func BenchmarkRunnerScaling(b *testing.B) {
	exp, ok := harness.ByID("T10a")
	if !ok {
		b.Fatal("T10a not found")
	}
	levels := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		levels = append(levels, n)
	}
	for _, par := range levels {
		par := par
		b.Run(benchName("workers", par), func(b *testing.B) {
			b.ReportAllocs()
			opt := harness.Options{Quick: true, Trials: 16, Seed: 1, Parallelism: par}
			for i := 0; i < b.N; i++ {
				if _, err := exp.Run(opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(opt.Trials), "trials/point")
		})
	}
	// Saturation probe: many concurrent sequential runners (one per
	// goroutine, multiplied by SetParallelism) stress the scheduler the
	// way a CI box running several sweeps at once does.
	b.Run("saturated", func(b *testing.B) {
		b.SetParallelism(2)
		var trial atomic.Uint64
		b.RunParallel(func(pb *testing.PB) {
			opt := harness.Options{Quick: true, Trials: 4, Parallelism: 1}
			for pb.Next() {
				opt.Seed = trial.Add(1)
				if _, err := exp.Run(opt); err != nil {
					// Fatal/FailNow must not run on RunParallel workers.
					b.Error(err)
					return
				}
			}
		})
	})
}

// BenchmarkEngineThroughput measures raw simulator speed in node-rounds
// per second (node-rounds = Σ over rounds of awake nodes, counted by the
// engine). It is the tracked regression metric of the medium resolvers:
// each workload runs once under the frequency-indexed fast path
// (Config.Medium zero value) and once under the legacy O(F + N) scan
// oracle, so the indexed/scan ratio per workload IS the speedup.
//
//   - dense/F=8: the historical workload — every node awake from round 1
//     on a narrow band. The indexed path's win here is skipping the
//     per-round frequency sweep and schedule-slot scans.
//   - sparse/F=128: the -full sweep tier's shape — a wide band and a large
//     schedule whose nodes trickle in, so the awake population is a small
//     fraction of N and F. This is where O(active) resolution separates
//     from O(F + N) scanning (the acceptance bar is ≥ 2× at F=128).
func BenchmarkEngineThroughput(b *testing.B) {
	cases := []struct {
		name     string
		f, t     int
		schedule sim.Schedule
		rounds   uint64
	}{
		{"dense/F=8", 8, 2, sim.Simultaneous{Count: 128}, 2000},
		{"sparse/F=128", 128, 2, sim.Staggered{Count: 8192, Gap: 64}, 4096},
	}
	mediums := []struct {
		name   string
		medium sim.MediumPath
	}{
		{"indexed", sim.MediumIndexed},
		{"scan", sim.MediumScan},
	}
	for _, c := range cases {
		c := c
		for _, m := range mediums {
			m := m
			b.Run(m.name+"/"+c.name, func(b *testing.B) {
				b.ReportAllocs()
				var nodeRounds uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cfg := &sim.Config{
						F:    c.f,
						T:    c.t,
						Seed: uint64(i),
						NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
							return baseline.NewWakeup(256, c.f, r)
						},
						Schedule:       c.schedule,
						Adversary:      adversary.NewRandom(c.f, c.t, uint64(i)),
						MaxRounds:      c.rounds,
						RunToMaxRounds: true,
						Medium:         m.medium,
					}
					res, err := sim.Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					nodeRounds += res.Stats.NodeRounds
				}
				b.StopTimer()
				b.ReportMetric(float64(nodeRounds)/b.Elapsed().Seconds(), "node-rounds/s")
			})
		}
	}
}

// BenchmarkStepDispatch measures devirtualized batch stepping against
// per-node virtual dispatch (Config.NoBatch) on both engines. The
// populations are arena-built, so the batch variant advances each cohort
// with one StepBatch call per round while the virtual variant forces the
// per-node Step fallback on the identical workload — the batch/virtual
// ratio per sub-benchmark IS the devirtualization win, and the two
// variants produce bit-identical results (TestBatchStepMatchesPerNode).
//
//   - dense: the acceptance workload — F=128, every node awake from round
//     1, so stepping dominates and the cohort loop's locality shows.
//   - sparse: a trickling schedule, so cohort bookkeeping (activation
//     inserts, growing locals) is exercised alongside stepping.
func BenchmarkStepDispatch(b *testing.B) {
	const f, tBudget = 128, 2
	dispatches := []struct {
		name    string
		noBatch bool
	}{{"batch", false}, {"virtual", true}}
	b.Run("sim", func(b *testing.B) {
		cases := []struct {
			name     string
			n        int
			schedule sim.Schedule
			rounds   uint64
		}{
			{"dense", 512, sim.Simultaneous{Count: 512}, 2000},
			{"sparse", 2048, sim.Staggered{Count: 2048, Gap: 8}, 4096},
		}
		for _, c := range cases {
			c := c
			for _, d := range dispatches {
				d := d
				b.Run(d.name+"/"+c.name, func(b *testing.B) {
					b.ReportAllocs()
					arena := baseline.NewWakeupArena(256, f, c.n)
					var nodeRounds uint64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err := sim.Run(&sim.Config{
							F:              f,
							T:              tBudget,
							Seed:           uint64(i),
							NewAgent:       arena.NewAgent,
							Schedule:       c.schedule,
							Adversary:      adversary.NewRandom(f, tBudget, uint64(i)),
							MaxRounds:      c.rounds,
							RunToMaxRounds: true,
							NoBatch:        d.noBatch,
						})
						if err != nil {
							b.Fatal(err)
						}
						nodeRounds += res.Stats.NodeRounds
					}
					b.StopTimer()
					b.ReportMetric(float64(nodeRounds)/b.Elapsed().Seconds(), "node-rounds/s")
				})
			}
		}
	})
	b.Run("multihop", func(b *testing.B) {
		topo := multihop.Grid(32, 32)
		n := topo.N()
		cases := []struct {
			name     string
			schedule sim.Schedule
			rounds   uint64
		}{
			{"dense", sim.Simultaneous{Count: n}, 1024},
			{"sparse", sim.Staggered{Count: n, Gap: 4}, 4096},
		}
		for _, c := range cases {
			c := c
			for _, d := range dispatches {
				d := d
				b.Run(d.name+"/"+c.name, func(b *testing.B) {
					b.ReportAllocs()
					arena := baseline.NewRoundRobinArena(n, f, n)
					var nodeRounds uint64
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err := multihop.Run(&multihop.Config{
							F:         f,
							T:         tBudget,
							Seed:      uint64(i),
							Topology:  topo,
							NewAgent:  arena.NewAgent,
							Schedule:  c.schedule,
							Adversary: adversary.NewRandom(f, tBudget, uint64(i)),
							MaxRounds: c.rounds,
							RunToMax:  true,
							NoBatch:   d.noBatch,
						})
						if err != nil {
							b.Fatal(err)
						}
						nodeRounds += res.NodeRounds
					}
					b.StopTimer()
					b.ReportMetric(float64(nodeRounds)/b.Elapsed().Seconds(), "node-rounds/s")
				})
			}
		}
	})
}

// BenchmarkEngineConcurrent measures the goroutine-per-agent engine on the
// same workload.
func BenchmarkEngineConcurrent(b *testing.B) {
	const n = 128
	var rounds uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := &sim.Config{
			F:    8,
			T:    2,
			Seed: uint64(i),
			NewAgent: func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
				return baseline.NewWakeup(256, 8, r)
			},
			Schedule:       sim.Simultaneous{Count: n},
			Adversary:      adversary.NewRandom(8, 2, uint64(i)),
			MaxRounds:      2000,
			RunToMaxRounds: true,
			Workers:        8,
		}
		res, err := sim.RunConcurrent(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rounds += res.Stats.Rounds
	}
	b.StopTimer()
	nodeRounds := float64(rounds) * n
	b.ReportMetric(nodeRounds/b.Elapsed().Seconds(), "node-rounds/s")
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
