// Command wsyncd is the always-on sweep service: an HTTP/JSON job
// server (internal/svc) that accepts benchmark sweeps, carves them
// across registered workers with the shard planner, retries and
// re-plans work lost to dead workers, and serves repeated sweeps from a
// content-addressed result cache.
//
// Server mode:
//
//	wsyncd -listen 127.0.0.1:8080
//	wsyncd -listen :8080 -heartbeat 30s -retry-base 2s -max-attempts 5
//	wsyncd -listen :8080 -debug-addr 127.0.0.1:6060   # pprof + /metrics
//
// Worker mode (run one per machine or core pool; each polls the server
// for assignments and pushes wsync-bench/v1 entries back):
//
//	wsyncd -worker http://127.0.0.1:8080 -name w1 -parallel 2
//
// Both modes log structured records (log/slog text format) to stderr
// and, with -debug-addr, serve net/http/pprof plus a Prometheus
// /metrics endpoint on a separate listener. The server mode also
// mounts /metrics and GET /v1/jobs/{id}/events (SSE job-state
// streaming) on the job API itself; see docs/OBSERVABILITY.md.
//
// Submit sweeps and collect merged reports with `wexp -submit`; the
// wire protocol and cache key are documented in docs/BENCH_FORMAT.md
// ("The wsyncd job service").
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wsync/internal/obs"
	"wsync/internal/svc"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// debugServer serves pprof and /metrics on addr, off the job-API mux so
// profiling traffic cannot contend with (or accidentally expose) the
// control plane. Returns a shutdown func.
func debugServer(addr string, reg *obs.Registry, log *slog.Logger) (shutdown func(context.Context), err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /metrics", reg.Handler())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: mux}
	go hs.Serve(ln)
	log.Info("debug listener up", "addr", ln.Addr().String(), "endpoints", "/debug/pprof/ /metrics")
	return func(ctx context.Context) { hs.Shutdown(ctx) }, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wsyncd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen      = fs.String("listen", "", "serve the job API on this address (server mode)")
		worker      = fs.String("worker", "", "poll this wsyncd base URL for work (worker mode)")
		name        = fs.String("name", "", "worker name (default host:pid)")
		parallel    = fs.Int("parallel", 0, "worker mode: trial-runner goroutines per experiment (0 = one per CPU)")
		poll        = fs.Duration("poll", 500*time.Millisecond, "worker mode: base idle poll interval (backs off exponentially with jitter while idle)")
		heartbeat   = fs.Duration("heartbeat", 15*time.Second, "server mode: deadline for a worker to check in before its work is re-planned")
		retryBase   = fs.Duration("retry-base", time.Second, "server mode: backoff unit for re-planned experiments (doubles per attempt)")
		maxAttempts = fs.Int("max-attempts", 3, "server mode: assignment attempts per experiment before the job fails")
		debugAddr   = fs.String("debug-addr", "", "serve net/http/pprof and /metrics on this separate address (both modes)")
		logLevel    = fs.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *listen == "" && *worker == "":
		fmt.Fprintln(stderr, "wsyncd: one of -listen (server) or -worker (worker) is required")
		return 2
	case *listen != "" && *worker != "":
		fmt.Fprintln(stderr, "wsyncd: -listen and -worker are mutually exclusive")
		return 2
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(stderr, "wsyncd: bad -log-level %q: %v\n", *logLevel, err)
		return 2
	}
	log := slog.New(slog.NewTextHandler(stderr, &slog.HandlerOptions{Level: level}))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := obs.NewRegistry()
	if *debugAddr != "" {
		shutdown, err := debugServer(*debugAddr, reg, log)
		if err != nil {
			log.Error("debug listener failed", "error", err)
			return 1
		}
		defer func() {
			dctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			shutdown(dctx)
		}()
	}

	if *worker != "" {
		wname := *name
		if wname == "" {
			host, _ := os.Hostname()
			wname = fmt.Sprintf("%s:%d", host, os.Getpid())
		}
		log.Info("worker polling", "worker", wname, "server", *worker)
		if err := svc.RunWorker(ctx, svc.WorkerOptions{
			Server:       *worker,
			Name:         wname,
			PollInterval: *poll,
			Parallelism:  *parallel,
			Log:          log,
			Metrics:      reg,
		}); err != nil {
			log.Error("worker failed", "worker", wname, "error", err)
			return 1
		}
		log.Info("worker stopped", "worker", wname)
		return 0
	}

	server := svc.NewServer(svc.Options{
		HeartbeatTimeout: *heartbeat,
		RetryBase:        *retryBase,
		MaxAttempts:      *maxAttempts,
		Log:              log,
		Metrics:          reg,
	})
	defer server.Close()

	// Bind before announcing readiness so a script can start submitting
	// the moment the log line appears (and :0 reports its real port).
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Error("listen failed", "addr", *listen, "error", err)
		return 1
	}
	hs := &http.Server{Handler: server.Handler()}
	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()
	log.Info("listening", "addr", ln.Addr().String())

	select {
	case err := <-served:
		log.Error("serve failed", "error", err)
		return 1
	case <-ctx.Done():
	}
	// Flip healthz to 503 and end event streams first, so load balancers
	// stop routing here and Shutdown is not blocked by open SSE
	// subscribers; in-flight polls and pushes still complete.
	server.BeginDrain()
	log.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		log.Error("shutdown failed", "error", err)
		return 1
	}
	return 0
}
