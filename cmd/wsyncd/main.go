// Command wsyncd is the always-on sweep service: an HTTP/JSON job
// server (internal/svc) that accepts benchmark sweeps, carves them
// across registered workers with the shard planner, retries and
// re-plans work lost to dead workers, and serves repeated sweeps from a
// content-addressed result cache.
//
// Server mode:
//
//	wsyncd -listen 127.0.0.1:8080
//	wsyncd -listen :8080 -heartbeat 30s -retry-base 2s -max-attempts 5
//
// Worker mode (run one per machine or core pool; each polls the server
// for assignments and pushes wsync-bench/v1 entries back):
//
//	wsyncd -worker http://127.0.0.1:8080 -name w1 -parallel 2
//
// Submit sweeps and collect merged reports with `wexp -submit`; the
// wire protocol and cache key are documented in docs/BENCH_FORMAT.md
// ("The wsyncd job service").
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wsync/internal/svc"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wsyncd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen      = fs.String("listen", "", "serve the job API on this address (server mode)")
		worker      = fs.String("worker", "", "poll this wsyncd base URL for work (worker mode)")
		name        = fs.String("name", "", "worker name (default host:pid)")
		parallel    = fs.Int("parallel", 0, "worker mode: trial-runner goroutines per experiment (0 = one per CPU)")
		poll        = fs.Duration("poll", 500*time.Millisecond, "worker mode: idle poll interval")
		heartbeat   = fs.Duration("heartbeat", 15*time.Second, "server mode: deadline for a worker to check in before its work is re-planned")
		retryBase   = fs.Duration("retry-base", time.Second, "server mode: backoff unit for re-planned experiments (doubles per attempt)")
		maxAttempts = fs.Int("max-attempts", 3, "server mode: assignment attempts per experiment before the job fails")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *listen == "" && *worker == "":
		fmt.Fprintln(stderr, "wsyncd: one of -listen (server) or -worker (worker) is required")
		return 2
	case *listen != "" && *worker != "":
		fmt.Fprintln(stderr, "wsyncd: -listen and -worker are mutually exclusive")
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logf := func(format string, args ...any) {
		fmt.Fprintf(stderr, format+"\n", args...)
	}

	if *worker != "" {
		wname := *name
		if wname == "" {
			host, _ := os.Hostname()
			wname = fmt.Sprintf("%s:%d", host, os.Getpid())
		}
		logf("wsyncd: worker %s polling %s", wname, *worker)
		if err := svc.RunWorker(ctx, svc.WorkerOptions{
			Server:       *worker,
			Name:         wname,
			PollInterval: *poll,
			Parallelism:  *parallel,
			Logf:         logf,
		}); err != nil {
			logf("wsyncd: %v", err)
			return 1
		}
		logf("wsyncd: worker %s stopped", wname)
		return 0
	}

	server := svc.NewServer(svc.Options{
		HeartbeatTimeout: *heartbeat,
		RetryBase:        *retryBase,
		MaxAttempts:      *maxAttempts,
		Logf:             logf,
	})
	defer server.Close()

	// Bind before announcing readiness so a script can start submitting
	// the moment the log line appears (and :0 reports its real port).
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logf("wsyncd: %v", err)
		return 1
	}
	hs := &http.Server{Handler: server.Handler()}
	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()
	logf("wsyncd: listening on %s", ln.Addr())

	select {
	case err := <-served:
		logf("wsyncd: %v", err)
		return 1
	case <-ctx.Done():
	}
	logf("wsyncd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		logf("wsyncd: shutdown: %v", err)
		return 1
	}
	return 0
}
