package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestModeValidation pins the mode flags: exactly one of -listen and
// -worker must be given.
func TestModeValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{nil, "one of -listen (server) or -worker (worker) is required"},
		{[]string{"-listen", ":0", "-worker", "http://x"}, "mutually exclusive"},
	}
	for _, c := range cases {
		var out, errBuf bytes.Buffer
		if code := run(c.args, &out, &errBuf); code != 2 {
			t.Errorf("run(%v) = %d, want 2", c.args, code)
		}
		if !strings.Contains(errBuf.String(), c.want) {
			t.Errorf("run(%v) stderr %q does not mention %q", c.args, errBuf.String(), c.want)
		}
	}
}
