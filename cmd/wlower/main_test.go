package main

import "testing"

func TestRunSubcommands(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"unknown", []string{"nope"}, 2},
		{"balls", []string{"balls", "-s", "2", "-m", "4", "-trials", "500"}, 0},
		{"width", []string{"width", "-F", "6", "-t", "2", "-trials", "30"}, 0},
		{"twonode", []string{"twonode", "-F", "6", "-t", "2", "-trials", "30"}, 0},
		{"firstclear", []string{"firstclear", "-N", "16", "-F", "6", "-t", "2", "-trials", "5"}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := run(c.args); got != c.want {
				t.Fatalf("run(%v) = %d, want %d", c.args, got, c.want)
			}
		})
	}
}
