// Command wlower runs the paper's lower-bound experiments standalone.
//
// Subcommands:
//
//	wlower firstclear -N 256 -F 8 -t 2 -trials 50
//	    Theorem 1 setting: rounds until the first clear broadcast for n=N
//	    nodes on the Trapdoor regular schedule under the weak adversary.
//
//	wlower twonode -F 8 -t 2 -offset 100 -trials 200
//	    Theorem 4 game: two-node rendezvous against the greedy adversary.
//
//	wlower width -F 8 -t 2 -trials 200
//	    Sweep the uniform spreading width; the optimum is near min(F, 2t).
//
//	wlower balls -s 3 -m 8 -trials 10000
//	    Lemma 2 balls-in-bins estimate against the 2^-s bound.
package main

import (
	"flag"
	"fmt"
	"os"

	"wsync/internal/lowerbound"
	"wsync/internal/stats"
	"wsync/internal/trapdoor"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	switch args[0] {
	case "firstclear":
		return firstClear(args[1:])
	case "twonode":
		return twoNode(args[1:])
	case "width":
		return width(args[1:])
	case "balls":
		return balls(args[1:])
	default:
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: wlower {firstclear|twonode|width|balls} [flags]")
}

func firstClear(args []string) int {
	fs := flag.NewFlagSet("firstclear", flag.ExitOnError)
	nBound := fs.Int("N", 256, "participant bound (and node count)")
	f := fs.Int("F", 8, "frequencies")
	t := fs.Int("t", 2, "jammed prefix size")
	trials := fs.Int("trials", 50, "repetitions")
	seed := fs.Uint64("seed", 1, "seed")
	_ = fs.Parse(args)

	reg := lowerbound.NewTrapdoorRegular(trapdoor.Params{N: *nBound, F: *f, T: *t})
	xs := make([]float64, 0, *trials)
	for i := 0; i < *trials; i++ {
		res, err := lowerbound.FirstClear(reg, *nBound, *f, *t, 1<<22, *seed+uint64(i))
		if err != nil {
			fmt.Fprintf(os.Stderr, "wlower: %v\n", err)
			return 1
		}
		if res.Happened {
			xs = append(xs, float64(res.Rounds))
		}
	}
	s := stats.Summarize(xs)
	theory := lowerbound.Theorem1Rounds(float64(*nBound), float64(*f), float64(*t))
	fmt.Printf("first clear broadcast: %s\n", s)
	fmt.Printf("theory lg²N/((F−t)lglgN) = %.2f, median/theory = %.2f\n", theory, s.Median/theory)
	return 0
}

func twoNode(args []string) int {
	fs := flag.NewFlagSet("twonode", flag.ExitOnError)
	f := fs.Int("F", 8, "frequencies")
	t := fs.Int("t", 2, "adversary budget")
	offset := fs.Uint64("offset", 0, "activation offset of the second node")
	trials := fs.Int("trials", 200, "repetitions")
	seed := fs.Uint64("seed", 1, "seed")
	_ = fs.Parse(args)

	m := 2 * *t
	if m > *f {
		m = *f
	}
	if m <= *t {
		m = *t + 1
	}
	reg := lowerbound.UniformRegular{M: m, P: 0.5}
	xs := make([]float64, 0, *trials)
	misses := 0
	for i := 0; i < *trials; i++ {
		res := lowerbound.TwoNodeGame(reg, reg, *f, *t, *offset, 1<<20, *seed+uint64(i))
		if res.Met {
			xs = append(xs, float64(res.Rounds))
		} else {
			misses++
		}
	}
	s := stats.Summarize(xs)
	fmt.Printf("two-node rendezvous (width %d): %s (misses: %d)\n", m, s, misses)
	fmt.Printf("theory Ft/(F−t) = %.2f\n",
		lowerbound.Theorem4Rounds(float64(*f), float64(*t), 1/2.718281828459045))
	return 0
}

func width(args []string) int {
	fs := flag.NewFlagSet("width", flag.ExitOnError)
	f := fs.Int("F", 8, "frequencies")
	t := fs.Int("t", 2, "adversary budget")
	trials := fs.Int("trials", 200, "repetitions per width")
	seed := fs.Uint64("seed", 1, "seed")
	parallel := fs.Int("parallel", 0, "worker goroutines (0 = one per CPU)")
	_ = fs.Parse(args)

	best, means := lowerbound.BestUniformWidth(*f, *t, *trials, 1<<16, *seed, *parallel)
	fmt.Printf("width  mean rendezvous rounds\n")
	for m := 1; m <= *f; m++ {
		marker := ""
		if m == best {
			marker = "  <- best"
		}
		if m == 2**t || (2**t > *f && m == *f) {
			marker += "  (min(F,2t))"
		}
		fmt.Printf("%5d  %.1f%s\n", m, means[m], marker)
	}
	return 0
}

func balls(args []string) int {
	fs := flag.NewFlagSet("balls", flag.ExitOnError)
	s := fs.Int("s", 3, "nontrivial bins")
	m := fs.Int("m", 8, "balls")
	pLast := fs.Float64("plast", 0.5, "probability of the heavy bin (>= 0.5)")
	decay := fs.Float64("decay", 1, "geometric profile decay in (0, 1]")
	trials := fs.Int("trials", 10000, "repetitions")
	seed := fs.Uint64("seed", 1, "seed")
	_ = fs.Parse(args)

	probs := lowerbound.Lemma2Distribution(*s, *pLast, *decay)
	got := lowerbound.EstimateNoSingleton(*m, probs, *trials, *seed)
	bound := lowerbound.Lemma2Bound(*s)
	fmt.Printf("distribution: %v\n", probs)
	fmt.Printf("P[no singleton] = %.4f, Lemma 2 bound 2^-s = %.4f, holds: %v\n",
		got, bound, got >= bound*0.9)
	return 0
}
