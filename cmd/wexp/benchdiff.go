package main

import (
	"flag"
	"fmt"
	"io"

	"wsync/internal/benchdiff"
	"wsync/internal/shard"
)

// runBenchdiff implements `wexp benchdiff [-threshold pct] [-min-ms ms]
// old.json new.json`: it compares two wsync-bench/v1 artifacts experiment
// by experiment on elapsed_ms and node_rounds_per_s and prints a
// p50/p95-annotated delta table (docs/BENCH_FORMAT.md, "Comparing
// artifacts: benchdiff"). Exit codes follow the wexp convention: 0 when
// the new artifact is acceptable, 1 when any experiment regressed beyond
// the threshold or is missing from the new artifact, 2 on usage or
// decoding errors.
func runBenchdiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wexp benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold = fs.Float64("threshold", benchdiff.DefaultThresholdPct,
			"regression gate in percent: fail when elapsed_ms grows or node-rounds/s falls by more than this")
		minMS = fs.Int64("min-ms", benchdiff.DefaultMinElapsedMS,
			"noise floor in milliseconds: entries below it on both sides are reported but never gated")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "wexp benchdiff: need exactly two artifacts (usage: wexp benchdiff [-threshold pct] [-min-ms ms] old.json new.json)")
		return 2
	}
	if *threshold <= 0 {
		fmt.Fprintln(stderr, "wexp benchdiff: -threshold must be positive")
		return 2
	}

	oldRep, err := shard.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "wexp benchdiff: %v\n", err)
		return 2
	}
	newRep, err := shard.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "wexp benchdiff: %v\n", err)
		return 2
	}

	opt := benchdiff.Options{ThresholdPct: *threshold, MinElapsedMS: *minMS}
	res := benchdiff.Compare(oldRep, newRep, opt)
	res.Format(stdout, opt)
	if res.Failed() {
		return 1
	}
	return 0
}
