// Command wexp regenerates the paper's experiment tables (every figure and
// theorem; see DESIGN.md §4 for the index).
//
// Usage:
//
//	wexp                         # run all experiments, text tables to stdout
//	wexp -run T10a,T10b          # run selected experiments
//	wexp -quick                  # smallest grids (seconds, for smoke tests)
//	wexp -trials 50 -seed 7      # more repetitions / different seeds
//	wexp -format markdown        # markdown tables (EXPERIMENTS.md bodies)
//	wexp -format csv -out dir/   # one CSV file per experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"wsync/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout *os.File) int {
	fs := flag.NewFlagSet("wexp", flag.ContinueOnError)
	var (
		runIDs  = fs.String("run", "", "comma-separated experiment ids (default: all)")
		trials  = fs.Int("trials", 0, "trials per sweep point (0 = default)")
		seed    = fs.Uint64("seed", 0, "seed offset for all experiments")
		quick   = fs.Bool("quick", false, "smallest grids (smoke test)")
		format  = fs.String("format", "text", "output format: text, markdown, csv")
		outDir  = fs.String("out", "", "write per-experiment files to this directory instead of stdout")
		listAll = fs.Bool("list", false, "list experiment ids and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listAll {
		for _, e := range harness.All() {
			fmt.Fprintf(stdout, "%-5s %s\n", e.ID, e.Title)
		}
		return 0
	}

	opt := harness.Options{Trials: *trials, Seed: *seed, Quick: *quick}

	var selected []harness.Experiment
	if *runIDs == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "wexp: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "wexp: %v\n", err)
			return 1
		}
	}

	for _, e := range selected {
		start := time.Now()
		tbl, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wexp: %s: %v\n", e.ID, err)
			return 1
		}
		elapsed := time.Since(start).Round(time.Millisecond)

		var out *os.File
		if *outDir == "" {
			out = stdout
		} else {
			ext := map[string]string{"text": "txt", "markdown": "md", "csv": "csv"}[*format]
			if ext == "" {
				ext = "txt"
			}
			f, err := os.Create(filepath.Join(*outDir, e.ID+"."+ext))
			if err != nil {
				fmt.Fprintf(os.Stderr, "wexp: %v\n", err)
				return 1
			}
			out = f
		}

		switch *format {
		case "markdown":
			err = tbl.Markdown(out)
		case "csv":
			err = tbl.CSV(out)
		default:
			err = tbl.Render(out)
			if err == nil {
				_, err = fmt.Fprintf(out, "(%s)\n\n", elapsed)
			}
		}
		if out != stdout {
			if cerr := out.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "wexp: %s: %v\n", e.ID, err)
			return 1
		}
	}
	return 0
}
