// Command wexp regenerates the paper's experiment tables (every figure and
// theorem; see DESIGN.md §4 for the index).
//
// Usage:
//
//	wexp                         # run all experiments, text tables to stdout
//	wexp -run T10a,T10b          # run selected experiments
//	wexp -run R1,R2,R3           # the rendezvous workload family
//	wexp -quick                  # smallest grids (seconds, for smoke tests)
//	wexp -full                   # large grids: N to 16384, F to 128, multihop RGGs to 4096, rendezvous to F=128
//	wexp -trials 50 -seed 7      # more repetitions / different seeds
//	wexp -parallel 4             # trial-runner worker count (0 = one per CPU)
//	wexp -run X10a -nobatch      # per-node dispatch (benchdiff baseline for the batch-stepping speedup)
//	wexp -format markdown        # markdown tables (EXPERIMENTS.md bodies)
//	wexp -format csv -out dir/   # one CSV file per experiment
//	wexp -json                   # one machine-readable report on stdout
//	wexp -list                   # list experiment ids and exit
//	wexp -cpuprofile cpu.pprof -memprofile mem.pprof -full
//	                             # profile the run (go tool pprof reads the outputs)
//
// Artifact comparison (docs/BENCH_FORMAT.md, "Comparing artifacts:
// benchdiff") diffs two -json reports experiment by experiment on wall
// time and node-rounds/s, exiting non-zero on regressions past the
// threshold — the CI bench-regression gate:
//
//	wexp benchdiff -threshold 30 -min-ms 100 old.json new.json
//
// Sharded sweeps (docs/BENCH_FORMAT.md, "Sharding") split the selection
// across workers at experiment granularity and merge the artifacts back
// into the report an unsharded run would have produced:
//
//	wexp -shards 3 -shard-index 1 -json     # run the second of three partitions
//	wexp -shards 3 -shard-index 1 -plan-costs prior.json
//	                                        # balance the partition by a prior run's wall times
//	wexp merge -out all.json s0.json s1.json s2.json
//	                                        # union shard artifacts (envelopes must agree)
//	wexp merge -zero-volatile a.json        # normalize for byte comparison
//	wexp -dispatch 3 -json                  # fork 3 shard subprocesses locally and merge
//
// Served sweeps (docs/BENCH_FORMAT.md, "The wsyncd job service") hand
// the selection to a wsyncd server, which shards it across registered
// workers, retries work lost to dead workers, serves repeats from its
// content-addressed cache, and returns the same merged report:
//
//	wexp -submit http://127.0.0.1:8080 -json
//
// The -json report is the benchmark artifact CI uploads on every build:
// it bundles the rendered tables with the options and per-experiment wall
// times and node-rounds throughput, so the performance trajectory of the
// runner is diffable across commits. Results are bit-identical for a
// given (seed, trials, quick) regardless of -parallel, and — after
// zeroing the volatile wall-time, throughput, and parallelism fields —
// regardless of how the run was sharded.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"wsync/internal/harness"
	"wsync/internal/multihop"
	"wsync/internal/obs"
	"wsync/internal/rendezvous"
	"wsync/internal/shard"
	"wsync/internal/sim"
)

// reportSchema names the JSON layout; bump on incompatible changes so CI
// consumers can detect drift. It must stay equal to shard.Schema (the
// merge engine's side of the contract) — CI's docs job checks both
// literals and TestReportSchemaMatchesShardPackage pins them.
const reportSchema = "wsync-bench/v1"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// nodeRoundsTotal sums the per-engine node-round counters. Sampled before
// and after each experiment, the delta is the experiment's deterministic
// work measure; divided by wall time it yields node-rounds/s.
func nodeRoundsTotal() uint64 {
	return sim.TotalNodeRounds() + multihop.TotalNodeRounds() + rendezvous.TotalNodeRounds()
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "merge" {
		return runMerge(args[1:], stdout, stderr)
	}
	if len(args) > 0 && args[0] == "benchdiff" {
		return runBenchdiff(args[1:], stdout, stderr)
	}

	fs := flag.NewFlagSet("wexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runIDs    = fs.String("run", "", "comma-separated experiment ids (default: all)")
		trials    = fs.Int("trials", 0, "trials per sweep point (0 = default)")
		seed      = fs.Uint64("seed", 0, "seed offset for all experiments")
		quick     = fs.Bool("quick", false, "smallest grids (smoke test)")
		full      = fs.Bool("full", false, "large grids: N up to 16384, F up to 128, multihop RGGs up to 4096, rendezvous up to F=128")
		parallel  = fs.Int("parallel", 0, "trial-runner worker goroutines (0 = one per CPU)")
		noBatch   = fs.Bool("nobatch", false, "disable devirtualized batch stepping (per-node dispatch; results are bit-identical, only wall time moves)")
		format    = fs.String("format", "text", "output format: text, markdown, csv, json")
		jsonOut   = fs.Bool("json", false, "shorthand for -format json")
		outDir    = fs.String("out", "", "write per-experiment files to this directory instead of stdout")
		listAll   = fs.Bool("list", false, "list experiment ids and exit")
		shards    = fs.Int("shards", 0, "split the selection into this many shards and run one of them (requires -shard-index)")
		shardIdx  = fs.Int("shard-index", -1, "which shard of -shards to run, in [0, shards)")
		dispatch  = fs.Int("dispatch", 0, "fork this many local shard subprocesses and merge their reports")
		submit    = fs.String("submit", "", "submit the sweep to this wsyncd base URL and write its merged report")
		planCosts = fs.String("plan-costs", "", "prior wsync-bench/v1 report whose elapsed_ms values balance the shard partition")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = fs.String("memprofile", "", "write an end-of-run allocation profile to this file")
		metricsRt = fs.String("metrics-out", "", "write a Prometheus text snapshot of the run's metrics to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	formatSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "format" {
			formatSet = true
		}
	})
	if *jsonOut {
		*format = "json"
	}
	if *quick && *full {
		fmt.Fprintln(stderr, "wexp: -quick and -full are mutually exclusive")
		return 2
	}
	switch *format {
	case "text", "markdown", "csv", "json":
	default:
		fmt.Fprintf(stderr, "wexp: unknown format %q (text, markdown, csv, json)\n", *format)
		return 2
	}
	switch {
	case *shards < 0 || *dispatch < 0:
		fmt.Fprintln(stderr, "wexp: -shards and -dispatch must be positive")
		return 2
	case *shards > 0 && *dispatch > 0:
		fmt.Fprintln(stderr, "wexp: -shards and -dispatch are mutually exclusive")
		return 2
	case *submit != "" && (*shards > 0 || *dispatch > 0):
		fmt.Fprintln(stderr, "wexp: -submit is mutually exclusive with -shards and -dispatch")
		return 2
	case *shards > 0 && (*shardIdx < 0 || *shardIdx >= *shards):
		fmt.Fprintf(stderr, "wexp: -shard-index must be in [0, %d)\n", *shards)
		return 2
	case *shards == 0 && *shardIdx >= 0:
		fmt.Fprintln(stderr, "wexp: -shard-index requires -shards")
		return 2
	case *planCosts != "" && *shards == 0 && *dispatch == 0:
		fmt.Fprintln(stderr, "wexp: -plan-costs requires -shards or -dispatch (wsyncd keeps its own cost table)")
		return 2
	}

	if *listAll {
		for _, e := range harness.All() {
			fmt.Fprintf(stdout, "%-5s %s\n", e.ID, e.Title)
		}
		return 0
	}

	// The run's own metric registry — the offline counterpart of wsyncd's
	// /metrics endpoint, snapshotted to a file on every exit path so even
	// a failed run leaves its partial counts behind.
	reg := obs.NewRegistry()
	if *metricsRt != "" {
		defer func() {
			f, err := os.Create(*metricsRt)
			if err != nil {
				fmt.Fprintf(stderr, "wexp: -metrics-out: %v\n", err)
				return
			}
			werr := reg.WritePrometheus(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintf(stderr, "wexp: -metrics-out: %v\n", werr)
			}
		}()
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(stderr, "wexp: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "wexp: -cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(stderr, "wexp: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush accumulated allocation stats before snapshotting
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(stderr, "wexp: -memprofile: %v\n", err)
			}
		}()
	}

	if *dispatch > 0 {
		// Explicitly requesting any non-JSON format is an error; the
		// defaulted "text" simply upgrades to the merged JSON report.
		if (formatSet && *format != "json") || *outDir != "" {
			fmt.Fprintln(stderr, "wexp: -dispatch emits the merged JSON report to stdout (only -format json, no -out)")
			return 2
		}
		// Split the trial-worker budget across the children — K children
		// each defaulting to one worker per CPU would oversubscribe the
		// machine K-fold. Results are bit-identical at any parallelism,
		// so the split never changes the merged report.
		totalWorkers := *parallel
		if totalWorkers <= 0 {
			totalWorkers = runtime.NumCPU()
		}
		childWorkers := (totalWorkers + *dispatch - 1) / *dispatch
		// Forward the sweep-identity flags verbatim; each child adds its
		// own -shards/-shard-index pair.
		childArgs := []string{
			"-trials", fmt.Sprint(*trials),
			"-seed", fmt.Sprint(*seed),
			"-parallel", fmt.Sprint(childWorkers),
		}
		if *quick {
			childArgs = append(childArgs, "-quick")
		}
		if *full {
			childArgs = append(childArgs, "-full")
		}
		if *noBatch {
			childArgs = append(childArgs, "-nobatch")
		}
		if *runIDs != "" {
			childArgs = append(childArgs, "-run", *runIDs)
		}
		if *planCosts != "" {
			childArgs = append(childArgs, "-plan-costs", *planCosts)
		}
		return runDispatch(*dispatch, childArgs, reg, stdout, stderr)
	}

	if *submit != "" {
		// Like -dispatch: the merged JSON report goes to stdout, so any
		// explicitly requested non-JSON format or -out is an error.
		if (formatSet && *format != "json") || *outDir != "" {
			fmt.Fprintln(stderr, "wexp: -submit emits the merged JSON report to stdout (only -format json, no -out)")
			return 2
		}
		return runSubmit(*submit, svcSubmitRequest(*seed, *trials, *quick, *full, *runIDs),
			200*time.Millisecond, stdout, stderr)
	}

	opt := harness.Options{Trials: *trials, Seed: *seed, Quick: *quick, Full: *full, Parallelism: *parallel, NoBatch: *noBatch}

	var selected []harness.Experiment
	if *runIDs == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(stderr, "wexp: unknown experiment %q (valid: %s)\n", id, strings.Join(harness.IDs(), ", "))
				return 2
			}
			selected = append(selected, e)
		}
	}

	var shardMeta *shard.Meta
	if *shards > 0 {
		ids := make([]string, len(selected))
		for i, e := range selected {
			ids[i] = e.ID
		}
		var costs map[string]int64
		if *planCosts != "" {
			prior, err := shard.ReadFile(*planCosts)
			if err != nil {
				fmt.Fprintf(stderr, "wexp: -plan-costs: %v\n", err)
				return 1
			}
			costs = shard.CostsFromReport(prior)
		}
		plan, err := shard.Plan(ids, *shards, costs)
		if err != nil {
			fmt.Fprintf(stderr, "wexp: %v\n", err)
			return 1
		}
		mine := plan[*shardIdx]
		keep := make(map[string]bool, len(mine))
		for _, id := range mine {
			keep[id] = true
		}
		kept := selected[:0:0]
		for _, e := range selected {
			if keep[e.ID] {
				kept = append(kept, e)
			}
		}
		selected = kept
		shardMeta = &shard.Meta{Count: *shards, Index: *shardIdx, IDs: mine, Selection: ids}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "wexp: %v\n", err)
			return 1
		}
	}

	rep := shard.Report{
		Schema:               reportSchema,
		Trials:               *trials,
		EffectiveTrials:      opt.EffectiveTrials(),
		Seed:                 *seed,
		Quick:                *quick,
		Full:                 *full,
		Parallelism:          *parallel,
		EffectiveParallelism: opt.EffectiveParallelism(),
		Shard:                shardMeta,
		Experiments:          []shard.Entry{},
	}

	// Serial-run counters, mirrors of the wsync_worker_* set: node-rounds
	// are sampled as deltas of the engines' process-global atomics, never
	// instrumenting the round loops themselves (see internal/obs doc).
	metExperiments := reg.Counter("wsync_run_experiments_total", "Experiments run to completion by this invocation.")
	metNodeRounds := reg.Counter("wsync_run_node_rounds_total", "Engine node-rounds executed (delta-sampled; docs/BENCH_FORMAT.md).")
	metExpSeconds := reg.Histogram("wsync_run_experiment_seconds", "Wall time per experiment.", obs.DefTimeBuckets)

	for _, e := range selected {
		nrBefore := nodeRoundsTotal()
		start := time.Now()
		tbl, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(stderr, "wexp: %s: %v\n", e.ID, err)
			return 1
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		// Experiments run serially, so the counter delta is exactly this
		// experiment's work even though trials within it run in parallel.
		nodeRounds := nodeRoundsTotal() - nrBefore
		metExperiments.Inc()
		metNodeRounds.Add(nodeRounds)
		metExpSeconds.Observe(time.Since(start).Seconds())
		var nrPerSec float64
		if s := time.Since(start).Seconds(); s > 0 {
			nrPerSec = float64(nodeRounds) / s
		}

		if *format == "json" && *outDir == "" {
			// Stdout JSON is one report for all experiments, emitted after
			// the loop so the document stays a single valid value.
			rep.Experiments = append(rep.Experiments, shard.Entry{
				Table: tbl, ElapsedMS: elapsed.Milliseconds(),
				NodeRounds: nodeRounds, NodeRoundsPerSec: nrPerSec,
			})
			continue
		}

		var out io.Writer = stdout
		var file *os.File
		if *outDir != "" {
			ext := map[string]string{"text": "txt", "markdown": "md", "csv": "csv", "json": "json"}[*format]
			file, err = os.Create(filepath.Join(*outDir, e.ID+"."+ext))
			if err != nil {
				fmt.Fprintf(stderr, "wexp: %v\n", err)
				return 1
			}
			out = file
		}

		switch *format {
		case "markdown":
			err = tbl.Markdown(out)
		case "csv":
			err = tbl.CSV(out)
		case "json":
			err = tbl.JSON(out)
		default:
			err = tbl.Render(out)
			if err == nil {
				_, err = fmt.Fprintf(out, "(%s)\n\n", elapsed)
			}
		}
		if file != nil {
			if cerr := file.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "wexp: %s: %v\n", e.ID, err)
			return 1
		}
	}

	if *format == "json" && *outDir == "" {
		if err := rep.Encode(stdout); err != nil {
			fmt.Fprintf(stderr, "wexp: %v\n", err)
			return 1
		}
	}
	return 0
}
