// Command wexp regenerates the paper's experiment tables (every figure and
// theorem; see DESIGN.md §4 for the index).
//
// Usage:
//
//	wexp                         # run all experiments, text tables to stdout
//	wexp -run T10a,T10b          # run selected experiments
//	wexp -run R1,R2,R3           # the rendezvous workload family
//	wexp -quick                  # smallest grids (seconds, for smoke tests)
//	wexp -full                   # large grids: N to 16384, F to 128, multihop RGGs to 4096, rendezvous to F=128
//	wexp -trials 50 -seed 7      # more repetitions / different seeds
//	wexp -parallel 4             # trial-runner worker count (0 = one per CPU)
//	wexp -format markdown        # markdown tables (EXPERIMENTS.md bodies)
//	wexp -format csv -out dir/   # one CSV file per experiment
//	wexp -json                   # one machine-readable report on stdout
//	wexp -list                   # list experiment ids and exit
//
// The -json report is the benchmark artifact CI uploads on every build:
// it bundles the rendered tables with the options and per-experiment wall
// times, so the performance trajectory of the runner is diffable across
// commits. Results are bit-identical for a given (seed, trials, quick)
// regardless of -parallel.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"wsync/internal/harness"
)

// report is the envelope of the -json output. It records both the raw
// flag values and the effective (post-default) ones, so two artifacts
// produced with the same flags but different baked-in defaults remain
// distinguishable.
type report struct {
	Schema               string        `json:"schema"`
	Trials               int           `json:"trials"`
	EffectiveTrials      int           `json:"effective_trials"`
	Seed                 uint64        `json:"seed"`
	Quick                bool          `json:"quick"`
	Full                 bool          `json:"full"`
	Parallelism          int           `json:"parallelism"`
	EffectiveParallelism int           `json:"effective_parallelism"`
	Experiments          []reportEntry `json:"experiments"`
}

// reportEntry pairs one experiment's table with its wall time.
type reportEntry struct {
	Table     *harness.Table `json:"table"`
	ElapsedMS int64          `json:"elapsed_ms"`
}

// reportSchema names the JSON layout; bump on incompatible changes so CI
// consumers can detect drift.
const reportSchema = "wsync-bench/v1"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout *os.File) int {
	fs := flag.NewFlagSet("wexp", flag.ContinueOnError)
	var (
		runIDs   = fs.String("run", "", "comma-separated experiment ids (default: all)")
		trials   = fs.Int("trials", 0, "trials per sweep point (0 = default)")
		seed     = fs.Uint64("seed", 0, "seed offset for all experiments")
		quick    = fs.Bool("quick", false, "smallest grids (smoke test)")
		full     = fs.Bool("full", false, "large grids: N up to 16384, F up to 128, multihop RGGs up to 4096, rendezvous up to F=128")
		parallel = fs.Int("parallel", 0, "trial-runner worker goroutines (0 = one per CPU)")
		format   = fs.String("format", "text", "output format: text, markdown, csv, json")
		jsonOut  = fs.Bool("json", false, "shorthand for -format json")
		outDir   = fs.String("out", "", "write per-experiment files to this directory instead of stdout")
		listAll  = fs.Bool("list", false, "list experiment ids and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut {
		*format = "json"
	}
	if *quick && *full {
		fmt.Fprintln(os.Stderr, "wexp: -quick and -full are mutually exclusive")
		return 2
	}
	switch *format {
	case "text", "markdown", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "wexp: unknown format %q (text, markdown, csv, json)\n", *format)
		return 2
	}

	if *listAll {
		for _, e := range harness.All() {
			fmt.Fprintf(stdout, "%-5s %s\n", e.ID, e.Title)
		}
		return 0
	}

	opt := harness.Options{Trials: *trials, Seed: *seed, Quick: *quick, Full: *full, Parallelism: *parallel}

	var selected []harness.Experiment
	if *runIDs == "" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, ok := harness.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "wexp: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "wexp: %v\n", err)
			return 1
		}
	}

	rep := report{
		Schema:               reportSchema,
		Trials:               *trials,
		EffectiveTrials:      opt.EffectiveTrials(),
		Seed:                 *seed,
		Quick:                *quick,
		Full:                 *full,
		Parallelism:          *parallel,
		EffectiveParallelism: opt.EffectiveParallelism(),
		Experiments:          []reportEntry{},
	}

	for _, e := range selected {
		start := time.Now()
		tbl, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wexp: %s: %v\n", e.ID, err)
			return 1
		}
		elapsed := time.Since(start).Round(time.Millisecond)

		if *format == "json" && *outDir == "" {
			// Stdout JSON is one report for all experiments, emitted after
			// the loop so the document stays a single valid value.
			rep.Experiments = append(rep.Experiments, reportEntry{
				Table: tbl, ElapsedMS: elapsed.Milliseconds(),
			})
			continue
		}

		var out *os.File
		if *outDir == "" {
			out = stdout
		} else {
			ext := map[string]string{"text": "txt", "markdown": "md", "csv": "csv", "json": "json"}[*format]
			f, err := os.Create(filepath.Join(*outDir, e.ID+"."+ext))
			if err != nil {
				fmt.Fprintf(os.Stderr, "wexp: %v\n", err)
				return 1
			}
			out = f
		}

		switch *format {
		case "markdown":
			err = tbl.Markdown(out)
		case "csv":
			err = tbl.CSV(out)
		case "json":
			err = tbl.JSON(out)
		default:
			err = tbl.Render(out)
			if err == nil {
				_, err = fmt.Fprintf(out, "(%s)\n\n", elapsed)
			}
		}
		if out != stdout {
			if cerr := out.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "wexp: %s: %v\n", e.ID, err)
			return 1
		}
	}

	if *format == "json" && *outDir == "" {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "wexp: %v\n", err)
			return 1
		}
	}
	return 0
}
