package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"time"

	"wsync/internal/obs"
	"wsync/internal/shard"
)

// runDispatch is the local dispatcher behind `wexp -dispatch K`: it forks
// K shard subprocesses of this same binary (`-shards K -shard-index i`
// for i in [0, K)), collects their wsync-bench/v1 artifacts from a temp
// directory, merges them, and writes the merged report to stdout. It is
// the single-machine proof of the distributed path: the subprocesses
// share nothing but flags, exactly like workers on K machines, and the
// merged output is byte-identical (modulo the volatile wall-time and
// parallelism fields) to an unsharded run.
//
// Interrupting the dispatcher (SIGINT/SIGTERM) must not orphan the K
// children or race the temp-dir cleanup against their writes: the
// children run under a signal-cancelled context, so the first signal
// kills them all, every goroutine joins, and only then does the deferred
// RemoveAll run. TestDispatchInterruptKillsChildren pins this with a
// deliberately slow child.
func runDispatch(k int, childArgs []string, reg *obs.Registry, stdout, stderr io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Dispatcher-side counters, snapshotted by -metrics-out: how many
	// shard subprocesses ran, how long each took, and what the merge saw.
	metShards := reg.Counter("wsync_dispatch_shards_total", "Shard subprocesses spawned.")
	metShardFailures := reg.Counter("wsync_dispatch_shard_failures_total", "Shard subprocesses that exited non-zero or left a bad artifact.")
	metEntries := reg.Counter("wsync_dispatch_entries_merged_total", "Experiment entries folded into the merged report.")
	metShardSeconds := reg.Histogram("wsync_dispatch_shard_seconds", "Wall time per shard subprocess.", obs.DefTimeBuckets)

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "wexp: -dispatch: %v\n", err)
		return 1
	}
	dir, err := os.MkdirTemp("", "wexp-dispatch-")
	if err != nil {
		fmt.Fprintf(stderr, "wexp: -dispatch: %v\n", err)
		return 1
	}
	defer os.RemoveAll(dir)

	// Create every output file before spawning anything: once a child is
	// running, the only exits below are through wg.Wait(), so no error
	// path can abandon a live subprocess.
	paths := make([]string, k)
	files := make([]*os.File, k)
	for i := 0; i < k; i++ {
		paths[i] = filepath.Join(dir, "shard_"+strconv.Itoa(i)+".json")
		f, err := os.Create(paths[i])
		if err != nil {
			for _, open := range files[:i] {
				open.Close()
			}
			fmt.Fprintf(stderr, "wexp: -dispatch: %v\n", err)
			return 1
		}
		files[i] = f
	}

	// Children run concurrently — each is an independent worker; their
	// stderr streams interleave through one locked writer. CommandContext
	// kills them when the signal context fires.
	childErr := &lockedWriter{w: stderr}
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		args := append(append([]string{}, childArgs...),
			"-shards", strconv.Itoa(k), "-shard-index", strconv.Itoa(i), "-json")
		cmd := exec.CommandContext(ctx, exe, args...)
		cmd.Stdout = files[i]
		cmd.Stderr = childErr
		// The variable lets the test binary reroute itself into run();
		// the real wexp binary ignores it.
		cmd.Env = append(os.Environ(), "WEXP_DISPATCH_CHILD=1")
		wg.Add(1)
		metShards.Inc()
		go func(i int, cmd *exec.Cmd, f *os.File) {
			defer wg.Done()
			start := time.Now()
			err := cmd.Run()
			metShardSeconds.Observe(time.Since(start).Seconds())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			errs[i] = err
		}(i, cmd, files[i])
	}
	wg.Wait()
	if ctx.Err() != nil {
		fmt.Fprintf(stderr, "wexp: -dispatch: interrupted; killed %d shard subprocesses\n", k)
		return 1
	}

	// Report every failing shard, not just the first: with K independent
	// workers, the shard that crashed last is as diagnostic as the one
	// that crashed first, and a single message would hide K-1 of them.
	failed := false
	for i, err := range errs {
		if err != nil {
			fmt.Fprintf(stderr, "wexp: -dispatch: shard %d: %v\n", i, err)
			metShardFailures.Inc()
			failed = true
		}
	}
	if failed {
		return 1
	}

	reps := make([]*shard.Report, k)
	for i, p := range paths {
		r, err := readShardArtifact(p, i)
		if err != nil {
			fmt.Fprintf(stderr, "wexp: -dispatch: %v\n", err)
			metShardFailures.Inc()
			failed = true
			continue
		}
		reps[i] = r
	}
	if failed {
		return 1
	}
	merged, err := shard.Merge(reps)
	if err != nil {
		fmt.Fprintf(stderr, "wexp: -dispatch: %v\n", err)
		return 1
	}
	metEntries.Add(uint64(len(merged.Experiments)))
	if err := merged.Encode(stdout); err != nil {
		fmt.Fprintf(stderr, "wexp: %v\n", err)
		return 1
	}
	return 0
}

// readShardArtifact decodes shard i's artifact, mapping the two shapes a
// crashed child leaves behind — an empty file (exited before its first
// write) and a truncated JSON document (killed mid-write) — to
// diagnostics that name the real failure instead of surfacing a raw
// decode error.
func readShardArtifact(path string, i int) (*shard.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", i, err)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("shard %d exited before writing its artifact", i)
	}
	r, err := shard.Decode(data)
	if err != nil {
		if !json.Valid(data) {
			return nil, fmt.Errorf("shard %d exited before finishing its artifact (truncated after %d bytes)", i, len(data))
		}
		return nil, fmt.Errorf("shard %d: %w", i, err)
	}
	return r, nil
}

// lockedWriter serializes concurrent writes from the shard subprocesses'
// stderr pipes onto one underlying writer.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
