package main

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"

	"wsync/internal/shard"
)

// runDispatch is the local dispatcher behind `wexp -dispatch K`: it forks
// K shard subprocesses of this same binary (`-shards K -shard-index i`
// for i in [0, K)), collects their wsync-bench/v1 artifacts from a temp
// directory, merges them, and writes the merged report to stdout. It is
// the single-machine proof of the distributed path: the subprocesses
// share nothing but flags, exactly like workers on K machines, and the
// merged output is byte-identical (modulo the volatile wall-time and
// parallelism fields) to an unsharded run.
func runDispatch(k int, childArgs []string, stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "wexp: -dispatch: %v\n", err)
		return 1
	}
	dir, err := os.MkdirTemp("", "wexp-dispatch-")
	if err != nil {
		fmt.Fprintf(stderr, "wexp: -dispatch: %v\n", err)
		return 1
	}
	defer os.RemoveAll(dir)

	// Create every output file before spawning anything: once a child is
	// running, the only exits below are through wg.Wait(), so no error
	// path can abandon a live subprocess.
	paths := make([]string, k)
	files := make([]*os.File, k)
	for i := 0; i < k; i++ {
		paths[i] = filepath.Join(dir, "shard_"+strconv.Itoa(i)+".json")
		f, err := os.Create(paths[i])
		if err != nil {
			for _, open := range files[:i] {
				open.Close()
			}
			fmt.Fprintf(stderr, "wexp: -dispatch: %v\n", err)
			return 1
		}
		files[i] = f
	}

	// Children run concurrently — each is an independent worker; their
	// stderr streams interleave through one locked writer.
	childErr := &lockedWriter{w: stderr}
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		args := append(append([]string{}, childArgs...),
			"-shards", strconv.Itoa(k), "-shard-index", strconv.Itoa(i), "-json")
		cmd := exec.Command(exe, args...)
		cmd.Stdout = files[i]
		cmd.Stderr = childErr
		// The variable lets the test binary reroute itself into run();
		// the real wexp binary ignores it.
		cmd.Env = append(os.Environ(), "WEXP_DISPATCH_CHILD=1")
		wg.Add(1)
		go func(i int, cmd *exec.Cmd, f *os.File) {
			defer wg.Done()
			err := cmd.Run()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			errs[i] = err
		}(i, cmd, files[i])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			fmt.Fprintf(stderr, "wexp: -dispatch: shard %d: %v\n", i, err)
			return 1
		}
	}

	reps := make([]*shard.Report, k)
	for i, p := range paths {
		r, err := shard.ReadFile(p)
		if err != nil {
			fmt.Fprintf(stderr, "wexp: -dispatch: shard %d: %v\n", i, err)
			return 1
		}
		reps[i] = r
	}
	merged, err := shard.Merge(reps)
	if err != nil {
		fmt.Fprintf(stderr, "wexp: -dispatch: %v\n", err)
		return 1
	}
	if err := merged.Encode(stdout); err != nil {
		fmt.Fprintf(stderr, "wexp: %v\n", err)
		return 1
	}
	return 0
}

// lockedWriter serializes concurrent writes from the shard subprocesses'
// stderr pipes onto one underlying writer.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
