package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"wsync/internal/shard"
)

// TestMain reroutes the test binary into run() when it is re-executed as
// a -dispatch shard subprocess (dispatch.go sets the variable on every
// child; the real wexp binary ignores it). WEXP_TEST_CHILD_MODE makes a
// shard child misbehave on purpose — hang, exit without writing, or
// truncate its artifact — so the dispatcher's failure handling can be
// tested end to end (see dispatch_test.go); it only ever affects
// processes that carry -shard-index, so the dispatching parent itself
// runs normally under the same environment.
func TestMain(m *testing.M) {
	if os.Getenv("WEXP_DISPATCH_CHILD") == "1" {
		if mode := os.Getenv("WEXP_TEST_CHILD_MODE"); mode != "" && isShardChild(os.Args[1:]) {
			os.Exit(dispatchChildStub(mode))
		}
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// isShardChild reports whether this invocation is a -dispatch shard
// worker (the dispatcher always appends -shard-index to child args).
func isShardChild(args []string) bool {
	for _, a := range args {
		if a == "-shard-index" {
			return true
		}
	}
	return false
}

// dispatchChildStub implements the WEXP_TEST_CHILD_MODE behaviors a
// dispatch regression test can request from a shard subprocess: "hang"
// parks the child until it is killed (announcing its pid through
// WEXP_TEST_PID_DIR so the test can probe liveness), "exit-silent"
// exits 0 without writing a byte of artifact, and "truncate" exits 0
// mid-document, like a child crashing inside the JSON encoder.
func dispatchChildStub(mode string) int {
	switch mode {
	case "hang":
		if dir := os.Getenv("WEXP_TEST_PID_DIR"); dir != "" {
			pid := strconv.Itoa(os.Getpid())
			os.WriteFile(filepath.Join(dir, "pid_"+pid), []byte(pid), 0o644)
		}
		time.Sleep(time.Hour)
		return 0
	case "exit-silent":
		return 0
	case "truncate":
		fmt.Print(`{"schema":"wsync-bench/v1","trials":2,"experimen`)
		return 0
	}
	fmt.Fprintf(os.Stderr, "unknown WEXP_TEST_CHILD_MODE %q\n", mode)
	return 3
}

// capture runs run() with stdout and stderr buffered and returns
// (exit code, stdout, stderr).
func capture(t *testing.T, args []string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestList(t *testing.T) {
	code, out, _ := capture(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, id := range []string{"F1", "T10a", "T18a", "X7"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s", id)
		}
	}
}

// TestUnknownExperiment pins the error contract: an unknown -run id fails
// with the full list of valid ids, instead of silently running nothing.
func TestUnknownExperiment(t *testing.T) {
	code, _, errOut := capture(t, []string{"-run", "ZZZ"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, `"ZZZ"`) {
		t.Errorf("error does not name the bad id: %q", errOut)
	}
	for _, id := range []string{"F1", "T10a", "X7", "R3"} {
		if !strings.Contains(errOut, id) {
			t.Errorf("error does not list valid id %s: %q", id, errOut)
		}
	}
}

func TestBadFlag(t *testing.T) {
	code, _, _ := capture(t, []string{"-definitely-not-a-flag"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestRunSingleExperimentText(t *testing.T) {
	code, out, _ := capture(t, []string{"-quick", "-trials", "2", "-run", "F1"})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "Trapdoor epoch schedule") || !strings.Contains(out, "note:") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunMarkdown(t *testing.T) {
	code, out, _ := capture(t, []string{"-quick", "-trials", "2", "-run", "F2", "-format", "markdown"})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "| super-epoch |") {
		t.Fatalf("markdown table missing:\n%s", out)
	}
}

// TestRunJSONReport checks the machine-readable report CI consumes: valid
// JSON, schema-tagged, one entry per requested experiment.
func TestRunJSONReport(t *testing.T) {
	code, out, _ := capture(t, []string{"-quick", "-trials", "2", "-parallel", "4", "-json", "-run", "F1,L2"})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	var rep shard.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.Schema != reportSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, reportSchema)
	}
	if rep.Parallelism != 4 || rep.Trials != 2 || !rep.Quick {
		t.Errorf("options not echoed: %+v", rep)
	}
	if rep.EffectiveTrials != 2 || rep.EffectiveParallelism != 4 {
		t.Errorf("effective options not recorded: %+v", rep)
	}
	if rep.Shard != nil {
		t.Errorf("unsharded run stamped shard metadata: %+v", rep.Shard)
	}
	if len(rep.Experiments) != 2 {
		t.Fatalf("got %d experiments, want 2", len(rep.Experiments))
	}
	for i, want := range []string{"F1", "L2"} {
		e := rep.Experiments[i]
		if e.Table == nil || e.Table.ID != want {
			t.Errorf("experiment %d = %+v, want id %s", i, e.Table, want)
		}
		if e.Table != nil && (len(e.Table.Columns) == 0 || len(e.Table.Rows) == 0) {
			t.Errorf("%s table empty: %+v", want, e.Table)
		}
	}
}

// TestReportSchemaMatchesShardPackage pins the two schema literals (the
// emitter's and the merge engine's) together; CI's docs job checks the
// same from outside the build.
func TestReportSchemaMatchesShardPackage(t *testing.T) {
	if reportSchema != shard.Schema {
		t.Fatalf("reportSchema %q != shard.Schema %q", reportSchema, shard.Schema)
	}
}

// TestRunJSONToDir checks per-experiment JSON files under -out.
func TestRunJSONToDir(t *testing.T) {
	dir := t.TempDir()
	code, _, _ := capture(t, []string{"-quick", "-trials", "2", "-run", "F1", "-format", "json", "-out", dir})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	data, err := os.ReadFile(filepath.Join(dir, "F1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var tbl map[string]any
	if err := json.Unmarshal(data, &tbl); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if tbl["id"] != "F1" {
		t.Fatalf("id = %v", tbl["id"])
	}
}

// TestParallelFlagDeterminism asserts the CLI contract behind the CI
// benchmark job: the same options at different -parallel values produce
// identical tables (only elapsed times may differ).
func TestParallelFlagDeterminism(t *testing.T) {
	strip := func(out string) string {
		var rep shard.Report
		if err := json.Unmarshal([]byte(out), &rep); err != nil {
			t.Fatalf("invalid JSON: %v", err)
		}
		rep.ZeroVolatile()
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	args := []string{"-quick", "-trials", "3", "-seed", "11", "-json", "-run", "T10a,T4"}
	code, seq, _ := capture(t, append([]string{"-parallel", "1"}, args...))
	if code != 0 {
		t.Fatalf("sequential exit = %d", code)
	}
	code, par, _ := capture(t, append([]string{"-parallel", "8"}, args...))
	if code != 0 {
		t.Fatalf("parallel exit = %d", code)
	}
	if strip(seq) != strip(par) {
		t.Fatalf("-parallel changed results:\nP=1: %s\nP=8: %s", seq, par)
	}
}

// TestFullFlagConflictsWithQuick pins the tier flags' mutual exclusion.
func TestFullFlagConflictsWithQuick(t *testing.T) {
	code, _, _ := capture(t, []string{"-quick", "-full", "-run", "F1"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestFullFlagReport checks that the -full tier is recorded in the
// wsync-bench/v1 report (on a grid-less experiment, so the test stays
// fast; the full sweep grids themselves run in CI's bench job).
func TestFullFlagReport(t *testing.T) {
	code, out, _ := capture(t, []string{"-full", "-trials", "2", "-json", "-run", "F1"})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	var rep shard.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if !rep.Full || rep.Quick {
		t.Errorf("tier not echoed: %+v", rep)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Table == nil || rep.Experiments[0].Table.ID != "F1" {
		t.Errorf("experiment entry malformed: %+v", rep.Experiments)
	}
	// ElapsedMS legitimately rounds to 0 for a grid-less experiment, so
	// assert the field's presence in the raw document instead.
	if !strings.Contains(out, `"elapsed_ms"`) {
		t.Errorf("wall time missing from report:\n%s", out)
	}
}

func TestBadFormat(t *testing.T) {
	code, _, _ := capture(t, []string{"-format", "yaml"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestRunCSVToDir(t *testing.T) {
	dir := t.TempDir()
	code, _, _ := capture(t, []string{"-quick", "-trials", "2", "-run", "L2", "-format", "csv", "-out", dir})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	data, err := os.ReadFile(filepath.Join(dir, "L2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "s,") {
		t.Fatalf("csv = %q", string(data)[:20])
	}
}

// TestShardFlagValidation pins the shard CLI's usage errors.
func TestShardFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"shards without index", []string{"-shards", "3", "-run", "F1"}},
		{"index without shards", []string{"-shard-index", "0", "-run", "F1"}},
		{"index out of range", []string{"-shards", "3", "-shard-index", "3", "-run", "F1"}},
		{"negative index", []string{"-shards", "3", "-shard-index", "-2", "-run", "F1"}},
		{"negative shards", []string{"-shards", "-1", "-shard-index", "0", "-run", "F1"}},
		{"shards with dispatch", []string{"-dispatch", "2", "-shards", "2", "-shard-index", "0"}},
		{"plan-costs without shards", []string{"-plan-costs", "x.json", "-run", "F1"}},
		{"dispatch with csv", []string{"-dispatch", "2", "-format", "csv"}},
		{"dispatch with explicit text", []string{"-dispatch", "2", "-format", "text"}},
		{"dispatch with out dir", []string{"-dispatch", "2", "-out", "somewhere"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if code, _, _ := capture(t, c.args); code != 2 {
				t.Fatalf("exit = %d, want 2", code)
			}
		})
	}
}

// TestShardWorkerMetadata checks the worker path: a -shards run executes
// exactly its partition and stamps the artifact with shard metadata.
func TestShardWorkerMetadata(t *testing.T) {
	ran := map[string]bool{}
	var metas []*shard.Meta
	for i := 0; i < 2; i++ {
		code, out, errOut := capture(t, []string{
			"-quick", "-trials", "2", "-run", "F1,L2,T4",
			"-shards", "2", "-shard-index", fmt.Sprint(i), "-json"})
		if code != 0 {
			t.Fatalf("shard %d exit = %d: %s", i, code, errOut)
		}
		var rep shard.Report
		if err := json.Unmarshal([]byte(out), &rep); err != nil {
			t.Fatalf("shard %d: invalid JSON: %v", i, err)
		}
		if rep.Shard == nil || rep.Shard.Count != 2 || rep.Shard.Index != i {
			t.Fatalf("shard %d metadata = %+v", i, rep.Shard)
		}
		if strings.Join(rep.Shard.Selection, ",") != "F1,L2,T4" {
			t.Fatalf("shard %d selection = %v, want the full -run list", i, rep.Shard.Selection)
		}
		if len(rep.Experiments) != len(rep.Shard.IDs) {
			t.Fatalf("shard %d ran %d experiments, metadata says %v", i, len(rep.Experiments), rep.Shard.IDs)
		}
		for j, e := range rep.Experiments {
			if e.Table.ID != rep.Shard.IDs[j] {
				t.Fatalf("shard %d order: ran %s at %d, plan says %s", i, e.Table.ID, j, rep.Shard.IDs[j])
			}
			if ran[e.Table.ID] {
				t.Fatalf("experiment %s ran on two shards", e.Table.ID)
			}
			ran[e.Table.ID] = true
		}
		metas = append(metas, rep.Shard)
	}
	for _, id := range []string{"F1", "L2", "T4"} {
		if !ran[id] {
			t.Errorf("experiment %s ran on no shard (metas: %+v)", id, metas)
		}
	}
}

// writeTemp writes one captured artifact to a temp file for the merge CLI.
func writeTemp(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// mergeNormalize runs the merge CLI with -zero-volatile over the given
// artifacts and returns the normalized document.
func mergeNormalize(t *testing.T, paths ...string) string {
	t.Helper()
	code, out, errOut := capture(t, append([]string{"merge", "-zero-volatile"}, paths...))
	if code != 0 {
		t.Fatalf("merge exit = %d: %s", code, errOut)
	}
	return out
}

// TestShardMergeIdentity is the subsystem's headline invariant: for
// K ∈ {1, 2, 5}, merging the K shard artifacts of a default-tier run is
// byte-identical to the unsharded report once both sides pass through
// `merge -zero-volatile` (which zeroes only the fields BENCH_FORMAT.md
// documents as volatile). CI's shard-smoke job enforces the same with
// the real binary on every push.
func TestShardMergeIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("default-tier sweeps are too slow for -short")
	}
	dir := t.TempDir()
	base := []string{"-trials", "2", "-json"}

	code, out, errOut := capture(t, base)
	if code != 0 {
		t.Fatalf("unsharded exit = %d: %s", code, errOut)
	}
	unsharded := writeTemp(t, dir, "unsharded.json", out)
	want := mergeNormalize(t, unsharded)
	if !strings.Contains(want, `"T10a"`) {
		t.Fatalf("normalized unsharded report looks empty:\n%.400s", want)
	}

	for _, k := range []int{1, 2, 5} {
		var paths []string
		for i := 0; i < k; i++ {
			args := append([]string{"-shards", fmt.Sprint(k), "-shard-index", fmt.Sprint(i)}, base...)
			code, out, errOut := capture(t, args)
			if code != 0 {
				t.Fatalf("K=%d shard %d exit = %d: %s", k, i, code, errOut)
			}
			paths = append(paths, writeTemp(t, dir, fmt.Sprintf("k%d_s%d.json", k, i), out))
		}
		if got := mergeNormalize(t, paths...); got != want {
			t.Fatalf("K=%d merged report differs from unsharded (lens %d vs %d)", k, len(got), len(want))
		}
	}
}

// TestMergeRejectsEnvelopeMismatch checks the merge CLI refuses
// artifacts from different sweeps.
func TestMergeRejectsEnvelopeMismatch(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i, seed := range []string{"1", "2"} {
		code, out, _ := capture(t, []string{"-quick", "-trials", "2", "-seed", seed, "-json", "-run", "F1"})
		if code != 0 {
			t.Fatalf("exit = %d", code)
		}
		paths = append(paths, writeTemp(t, dir, fmt.Sprintf("seed%d.json", i), out))
	}
	code, _, errOut := capture(t, append([]string{"merge"}, paths...))
	if code != 1 {
		t.Fatalf("merge exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "seed") {
		t.Fatalf("error does not name the mismatched field: %q", errOut)
	}
}

// TestMergeCollapsesDuplicates: merging an artifact with itself is the
// artifact (identical duplicate ids collapse).
func TestMergeCollapsesDuplicates(t *testing.T) {
	dir := t.TempDir()
	code, out, _ := capture(t, []string{"-quick", "-trials", "2", "-json", "-run", "F1,L2"})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	p := writeTemp(t, dir, "rep.json", out)
	if mergeNormalize(t, p, p) != mergeNormalize(t, p) {
		t.Fatal("self-merge is not idempotent")
	}
}

// TestMergeUsage pins the merge subcommand's usage and I/O errors.
func TestMergeUsage(t *testing.T) {
	if code, _, _ := capture(t, []string{"merge"}); code != 2 {
		t.Fatalf("no inputs: exit = %d, want 2", code)
	}
	if code, _, _ := capture(t, []string{"merge", "/definitely/not/a/file.json"}); code != 1 {
		t.Fatalf("missing file: exit = %d, want 1", code)
	}
	bad := writeTemp(t, t.TempDir(), "bad.json", `{"schema":"wsync-bench/v999"}`)
	if code, _, errOut := capture(t, []string{"merge", bad}); code != 1 || !strings.Contains(errOut, "schema") {
		t.Fatalf("wrong schema: exit = %d, stderr = %q", code, errOut)
	}
}

// TestMergeOutFile checks -out writes the merged report to a file.
func TestMergeOutFile(t *testing.T) {
	dir := t.TempDir()
	code, out, _ := capture(t, []string{"-quick", "-trials", "2", "-json", "-run", "F1"})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	in := writeTemp(t, dir, "in.json", out)
	dst := filepath.Join(dir, "merged.json")
	code, stdout, errOut := capture(t, []string{"merge", "-out", dst, in})
	if code != 0 {
		t.Fatalf("merge exit = %d: %s", code, errOut)
	}
	if stdout != "" {
		t.Fatalf("merge -out still wrote to stdout: %q", stdout)
	}
	data, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.Decode(data); err != nil {
		t.Fatalf("merged file invalid: %v", err)
	}
}

// TestPlanCostsFlag checks the cost-balanced worker path end to end: a
// prior artifact feeds -plan-costs and the sharded run still covers the
// selection exactly.
func TestPlanCostsFlag(t *testing.T) {
	dir := t.TempDir()
	code, out, _ := capture(t, []string{"-quick", "-trials", "2", "-json", "-run", "F1,L2,T4"})
	if code != 0 {
		t.Fatalf("prior run exit = %d", code)
	}
	prior := writeTemp(t, dir, "prior.json", out)
	ran := map[string]bool{}
	for i := 0; i < 2; i++ {
		code, out, errOut := capture(t, []string{
			"-quick", "-trials", "2", "-run", "F1,L2,T4",
			"-shards", "2", "-shard-index", fmt.Sprint(i), "-plan-costs", prior, "-json"})
		if code != 0 {
			t.Fatalf("shard %d exit = %d: %s", i, code, errOut)
		}
		var rep shard.Report
		if err := json.Unmarshal([]byte(out), &rep); err != nil {
			t.Fatal(err)
		}
		for _, e := range rep.Experiments {
			if ran[e.Table.ID] {
				t.Fatalf("experiment %s ran twice", e.Table.ID)
			}
			ran[e.Table.ID] = true
		}
	}
	if len(ran) != 3 {
		t.Fatalf("cost-balanced shards covered %d of 3 experiments", len(ran))
	}
	// A bad prior report is a hard error, not a silent uniform fallback.
	code, _, errOut := capture(t, []string{
		"-run", "F1", "-shards", "2", "-shard-index", "0",
		"-plan-costs", filepath.Join(dir, "nope.json"), "-json"})
	if code != 1 || !strings.Contains(errOut, "-plan-costs") {
		t.Fatalf("missing costs file: exit = %d, stderr = %q", code, errOut)
	}
}

// TestDispatchMatchesUnsharded proves the local dispatcher end to end:
// forked shard subprocesses plus merge produce the same normalized
// report as a direct run.
func TestDispatchMatchesUnsharded(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	dir := t.TempDir()
	args := []string{"-quick", "-trials", "2", "-run", "F1,L2,T4,T10a"}

	code, out, errOut := capture(t, append([]string{"-json"}, args...))
	if code != 0 {
		t.Fatalf("direct exit = %d: %s", code, errOut)
	}
	direct := writeTemp(t, dir, "direct.json", out)

	code, out, errOut = capture(t, append([]string{"-dispatch", "3"}, args...))
	if code != 0 {
		t.Fatalf("dispatch exit = %d: %s", code, errOut)
	}
	dispatched := writeTemp(t, dir, "dispatched.json", out)

	if mergeNormalize(t, dispatched) != mergeNormalize(t, direct) {
		t.Fatal("dispatched report differs from direct run")
	}
}
