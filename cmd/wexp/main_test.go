package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs run() with stdout redirected to a temp file and returns
// (exit code, output).
func capture(t *testing.T, args []string) (int, string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "wexp-out")
	if err != nil {
		t.Fatal(err)
	}
	code := run(args, f)
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

func TestList(t *testing.T) {
	code, out := capture(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, id := range []string{"F1", "T10a", "T18a", "X7"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _ := capture(t, []string{"-run", "ZZZ"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestBadFlag(t *testing.T) {
	code, _ := capture(t, []string{"-definitely-not-a-flag"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestRunSingleExperimentText(t *testing.T) {
	code, out := capture(t, []string{"-quick", "-trials", "2", "-run", "F1"})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "Trapdoor epoch schedule") || !strings.Contains(out, "note:") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunMarkdown(t *testing.T) {
	code, out := capture(t, []string{"-quick", "-trials", "2", "-run", "F2", "-format", "markdown"})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "| super-epoch |") {
		t.Fatalf("markdown table missing:\n%s", out)
	}
}

func TestRunCSVToDir(t *testing.T) {
	dir := t.TempDir()
	code, _ := capture(t, []string{"-quick", "-trials", "2", "-run", "L2", "-format", "csv", "-out", dir})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	data, err := os.ReadFile(filepath.Join(dir, "L2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "s,") {
		t.Fatalf("csv = %q", string(data)[:20])
	}
}
