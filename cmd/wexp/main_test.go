package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs run() with stdout redirected to a temp file and returns
// (exit code, output).
func capture(t *testing.T, args []string) (int, string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "wexp-out")
	if err != nil {
		t.Fatal(err)
	}
	code := run(args, f)
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

func TestList(t *testing.T) {
	code, out := capture(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, id := range []string{"F1", "T10a", "T18a", "X7"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _ := capture(t, []string{"-run", "ZZZ"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestBadFlag(t *testing.T) {
	code, _ := capture(t, []string{"-definitely-not-a-flag"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestRunSingleExperimentText(t *testing.T) {
	code, out := capture(t, []string{"-quick", "-trials", "2", "-run", "F1"})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "Trapdoor epoch schedule") || !strings.Contains(out, "note:") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunMarkdown(t *testing.T) {
	code, out := capture(t, []string{"-quick", "-trials", "2", "-run", "F2", "-format", "markdown"})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "| super-epoch |") {
		t.Fatalf("markdown table missing:\n%s", out)
	}
}

// TestRunJSONReport checks the machine-readable report CI consumes: valid
// JSON, schema-tagged, one entry per requested experiment.
func TestRunJSONReport(t *testing.T) {
	code, out := capture(t, []string{"-quick", "-trials", "2", "-parallel", "4", "-json", "-run", "F1,L2"})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	var rep report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.Schema != reportSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, reportSchema)
	}
	if rep.Parallelism != 4 || rep.Trials != 2 || !rep.Quick {
		t.Errorf("options not echoed: %+v", rep)
	}
	if rep.EffectiveTrials != 2 || rep.EffectiveParallelism != 4 {
		t.Errorf("effective options not recorded: %+v", rep)
	}
	if len(rep.Experiments) != 2 {
		t.Fatalf("got %d experiments, want 2", len(rep.Experiments))
	}
	for i, want := range []string{"F1", "L2"} {
		e := rep.Experiments[i]
		if e.Table == nil || e.Table.ID != want {
			t.Errorf("experiment %d = %+v, want id %s", i, e.Table, want)
		}
		if e.Table != nil && (len(e.Table.Columns) == 0 || len(e.Table.Rows) == 0) {
			t.Errorf("%s table empty: %+v", want, e.Table)
		}
	}
}

// TestRunJSONToDir checks per-experiment JSON files under -out.
func TestRunJSONToDir(t *testing.T) {
	dir := t.TempDir()
	code, _ := capture(t, []string{"-quick", "-trials", "2", "-run", "F1", "-format", "json", "-out", dir})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	data, err := os.ReadFile(filepath.Join(dir, "F1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var tbl map[string]any
	if err := json.Unmarshal(data, &tbl); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if tbl["id"] != "F1" {
		t.Fatalf("id = %v", tbl["id"])
	}
}

// TestParallelFlagDeterminism asserts the CLI contract behind the CI
// benchmark job: the same options at different -parallel values produce
// identical tables (only elapsed times may differ).
func TestParallelFlagDeterminism(t *testing.T) {
	strip := func(out string) string {
		var rep report
		if err := json.Unmarshal([]byte(out), &rep); err != nil {
			t.Fatalf("invalid JSON: %v", err)
		}
		rep.Parallelism = 0
		rep.EffectiveParallelism = 0
		for i := range rep.Experiments {
			rep.Experiments[i].ElapsedMS = 0
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	args := []string{"-quick", "-trials", "3", "-seed", "11", "-json", "-run", "T10a,T4"}
	code, seq := capture(t, append([]string{"-parallel", "1"}, args...))
	if code != 0 {
		t.Fatalf("sequential exit = %d", code)
	}
	code, par := capture(t, append([]string{"-parallel", "8"}, args...))
	if code != 0 {
		t.Fatalf("parallel exit = %d", code)
	}
	if strip(seq) != strip(par) {
		t.Fatalf("-parallel changed results:\nP=1: %s\nP=8: %s", seq, par)
	}
}

// TestFullFlagConflictsWithQuick pins the tier flags' mutual exclusion.
func TestFullFlagConflictsWithQuick(t *testing.T) {
	code, _ := capture(t, []string{"-quick", "-full", "-run", "F1"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestFullFlagReport checks that the -full tier is recorded in the
// wsync-bench/v1 report (on a grid-less experiment, so the test stays
// fast; the full sweep grids themselves run in CI's bench job).
func TestFullFlagReport(t *testing.T) {
	code, out := capture(t, []string{"-full", "-trials", "2", "-json", "-run", "F1"})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	var rep report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if !rep.Full || rep.Quick {
		t.Errorf("tier not echoed: %+v", rep)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Table == nil || rep.Experiments[0].Table.ID != "F1" {
		t.Errorf("experiment entry malformed: %+v", rep.Experiments)
	}
	// ElapsedMS legitimately rounds to 0 for a grid-less experiment, so
	// assert the field's presence in the raw document instead.
	if !strings.Contains(out, `"elapsed_ms"`) {
		t.Errorf("wall time missing from report:\n%s", out)
	}
}

func TestBadFormat(t *testing.T) {
	code, _ := capture(t, []string{"-format", "yaml"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestRunCSVToDir(t *testing.T) {
	dir := t.TempDir()
	code, _ := capture(t, []string{"-quick", "-trials", "2", "-run", "L2", "-format", "csv", "-out", dir})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	data, err := os.ReadFile(filepath.Join(dir, "L2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "s,") {
		t.Fatalf("csv = %q", string(data)[:20])
	}
}
