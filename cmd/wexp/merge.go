package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"wsync/internal/shard"
)

// runMerge implements `wexp merge [-out file] [-zero-volatile] a.json
// b.json ...`: it unions shard artifacts of one sweep back into the
// report an unsharded run would have produced (docs/BENCH_FORMAT.md,
// "Merge semantics"). With a single input it acts as a normalizer —
// decode, canonically re-order, re-encode — which is how CI byte-compares
// a merged sharded run against the unsharded artifact: pass both sides
// through `merge -zero-volatile` and cmp the outputs.
func runMerge(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wexp merge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		outPath      = fs.String("out", "", "write the merged report to this file instead of stdout")
		zeroVolatile = fs.Bool("zero-volatile", false, "zero elapsed_ms, node_rounds_per_s, and the parallelism fields, for byte comparison across runs")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "wexp merge: no input reports (usage: wexp merge [-out file] [-zero-volatile] a.json b.json ...)")
		return 2
	}

	reps := make([]*shard.Report, len(paths))
	for i, p := range paths {
		r, err := shard.ReadFile(p)
		if err != nil {
			fmt.Fprintf(stderr, "wexp merge: %v\n", err)
			return 1
		}
		reps[i] = r
	}

	merged, err := shard.Merge(reps)
	if err != nil {
		fmt.Fprintf(stderr, "wexp merge: %v\n", err)
		return 1
	}
	if *zeroVolatile {
		merged.ZeroVolatile()
	}

	out := stdout
	var file *os.File
	if *outPath != "" {
		file, err = os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "wexp merge: %v\n", err)
			return 1
		}
		out = file
	}
	err = merged.Encode(out)
	if file != nil {
		if cerr := file.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "wexp merge: %v\n", err)
		return 1
	}
	return 0
}
