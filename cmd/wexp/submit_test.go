package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wsync/internal/shard"
	"wsync/internal/svc"
)

// TestSubmitServedSweep drives the -submit client end to end against an
// in-process wsyncd: a first sweep computed by a worker, then the same
// sweep resubmitted and answered entirely from the server's cache, with
// the greppable cache line on stderr.
func TestSubmitServedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	server := svc.NewServer(svc.Options{})
	defer server.Close()
	hs := httptest.NewServer(server.Handler())
	defer hs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- svc.RunWorker(ctx, svc.WorkerOptions{
			Server: hs.URL, Name: "w1", PollInterval: 10 * time.Millisecond, Parallelism: 1,
		})
	}()
	defer func() {
		cancel()
		if err := <-workerDone; err != nil {
			t.Errorf("worker: %v", err)
		}
	}()

	args := []string{"-submit", hs.URL, "-quick", "-trials", "1", "-run", "F1,L2", "-json"}
	var out, errBuf bytes.Buffer
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("wexp -submit exited %d:\n%s", code, errBuf.String())
	}
	rep, err := shard.Decode(out.Bytes())
	if err != nil {
		t.Fatalf("served output is not a report: %v", err)
	}
	if len(rep.Experiments) != 2 || rep.Experiments[0].Table.ID != "F1" {
		t.Fatalf("served report has wrong experiments: %+v", rep.Experiments)
	}
	if strings.Contains(errBuf.String(), "served entirely from cache") {
		t.Fatalf("first serving claimed a full cache hit:\n%s", errBuf.String())
	}

	out.Reset()
	errBuf.Reset()
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("resubmission exited %d:\n%s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "served entirely from cache") {
		t.Fatalf("resubmission did not report the cache hit:\n%s", errBuf.String())
	}
	if _, err := shard.Decode(out.Bytes()); err != nil {
		t.Fatalf("cache-served output is not a report: %v", err)
	}
}

// TestSubmitFlagValidation pins -submit's flag exclusions.
func TestSubmitFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-submit", "http://x", "-shards", "2", "-shard-index", "0"},
		{"-submit", "http://x", "-dispatch", "2"},
		{"-submit", "http://x", "-format", "csv"},
		{"-submit", "http://x", "-out", "dir"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code != 2 {
			t.Errorf("run(%v) = %d, want usage error 2 (stderr: %s)", args, code, errBuf.String())
		}
	}
}
