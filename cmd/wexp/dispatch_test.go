//go:build unix

package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"wsync/internal/obs"
)

// TestDispatchReportsAllFailures pins the every-shard error contract:
// when all K children fail, the dispatcher names each one instead of
// returning after the first.
func TestDispatchReportsAllFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	var stdout, stderr bytes.Buffer
	// Every child rejects the unknown experiment id and exits 2.
	code := runDispatch(3, []string{"-run", "ZZZ"}, obs.NewRegistry(), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	for i := 0; i < 3; i++ {
		if !strings.Contains(stderr.String(), fmt.Sprintf("shard %d:", i)) {
			t.Errorf("stderr does not report shard %d:\n%s", i, stderr.String())
		}
	}
}

// TestDispatchEmptyArtifactDiagnostic maps a child that exited cleanly
// without writing its artifact to the "exited before writing" message —
// not a raw JSON decode error — and reports every such shard.
func TestDispatchEmptyArtifactDiagnostic(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	t.Setenv("WEXP_TEST_CHILD_MODE", "exit-silent")
	var stdout, stderr bytes.Buffer
	code := runDispatch(2, []string{"-quick", "-trials", "1", "-run", "F1,L2"}, obs.NewRegistry(), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	for i := 0; i < 2; i++ {
		want := fmt.Sprintf("shard %d exited before writing its artifact", i)
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr.String())
		}
	}
	if strings.Contains(stderr.String(), "decoding report") {
		t.Errorf("raw decode error leaked through:\n%s", stderr.String())
	}
}

// TestDispatchTruncatedArtifactDiagnostic maps a child that died
// mid-write (invalid JSON on disk) to the truncation diagnostic.
func TestDispatchTruncatedArtifactDiagnostic(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	t.Setenv("WEXP_TEST_CHILD_MODE", "truncate")
	var stdout, stderr bytes.Buffer
	code := runDispatch(2, []string{"-quick", "-trials", "1", "-run", "F1,L2"}, obs.NewRegistry(), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "shard 0 exited before finishing its artifact (truncated after") {
		t.Errorf("stderr missing the truncation diagnostic:\n%s", stderr.String())
	}
}

// TestReadShardArtifact unit-tests the diagnostic mapping directly:
// empty and truncated files get the crashed-child messages, while a
// well-formed document with the wrong schema keeps the decoder's error.
func TestReadShardArtifact(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	if _, err := readShardArtifact(filepath.Join(dir, "missing.json"), 0); err == nil {
		t.Error("missing file: want error")
	}
	if _, err := readShardArtifact(write("empty.json", ""), 1); err == nil ||
		!strings.Contains(err.Error(), "shard 1 exited before writing its artifact") {
		t.Errorf("empty file: err = %v", err)
	}
	if _, err := readShardArtifact(write("trunc.json", `{"schema":"wsync-`), 2); err == nil ||
		!strings.Contains(err.Error(), "truncated after 17 bytes") {
		t.Errorf("truncated file: err = %v", err)
	}
	if _, err := readShardArtifact(write("schema.json", `{"schema":"wsync-bench/v999"}`), 3); err == nil ||
		!strings.Contains(err.Error(), "unsupported schema") {
		t.Errorf("wrong schema: err = %v", err)
	}
	good := `{"schema":"wsync-bench/v1","experiments":[]}`
	if r, err := readShardArtifact(write("good.json", good), 4); err != nil || r == nil {
		t.Errorf("valid artifact: r = %v, err = %v", r, err)
	}
}

// TestDispatchInterruptKillsChildren is the SIGINT regression test: a
// dispatching parent with two deliberately hung children is interrupted,
// and must (1) exit non-zero reporting the interruption, (2) leave no
// live shard subprocesses behind, and (3) have removed its temp
// directory despite the children never finishing — the leak the
// pre-signal-handling dispatcher exhibited.
func TestDispatchInterruptKillsChildren(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	pidDir := t.TempDir()
	tmpDir := t.TempDir()

	// Re-exec this test binary as the dispatching parent: the
	// WEXP_DISPATCH_CHILD reroute sends it into run() (it has no
	// -shard-index, so the child stub does not trigger), and its own
	// children inherit the hang mode.
	parent := exec.Command(exe, "-dispatch", "2", "-quick", "-trials", "1", "-run", "F1,L2")
	var stderr bytes.Buffer
	parent.Stderr = &stderr
	parent.Env = append(os.Environ(),
		"WEXP_DISPATCH_CHILD=1",
		"WEXP_TEST_CHILD_MODE=hang",
		"WEXP_TEST_PID_DIR="+pidDir,
		"TMPDIR="+tmpDir,
	)
	if err := parent.Start(); err != nil {
		t.Fatal(err)
	}
	defer parent.Process.Kill()

	// Wait for both children to announce themselves.
	pids := waitForPids(t, pidDir, 2, 15*time.Second)

	if err := parent.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- parent.Wait() }()
	select {
	case err := <-waitErr:
		if err == nil {
			t.Error("interrupted dispatcher exited 0")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("dispatcher did not exit after SIGINT")
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("stderr does not report the interruption:\n%s", stderr.String())
	}

	// The children must be gone (their parent reaped them before
	// exiting, so signal 0 probes must fail).
	deadline := time.Now().Add(10 * time.Second)
	for _, pid := range pids {
		for {
			if err := syscall.Kill(pid, 0); err != nil {
				break // ESRCH: process gone
			}
			if time.Now().After(deadline) {
				t.Fatalf("shard child %d is still alive after the dispatcher exited", pid)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// And the dispatch temp directory must have been cleaned up.
	leftovers, err := filepath.Glob(filepath.Join(tmpDir, "wexp-dispatch-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Errorf("dispatch temp dirs leaked: %v", leftovers)
	}
}

// waitForPids polls dir until want pid files exist and returns the pids.
func waitForPids(t *testing.T, dir string, want int, timeout time.Duration) []int {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) >= want {
			pids := make([]int, 0, len(entries))
			for _, e := range entries {
				pid, err := strconv.Atoi(strings.TrimPrefix(e.Name(), "pid_"))
				if err != nil {
					t.Fatalf("bad pid file %q", e.Name())
				}
				pids = append(pids, pid)
			}
			return pids
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d shard children appeared", len(entries), want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
