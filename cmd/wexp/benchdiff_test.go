package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wsync/internal/harness"
	"wsync/internal/shard"
)

// writeArtifact encodes a minimal wsync-bench/v1 report to dir.
func writeArtifact(t *testing.T, dir, name string, entries []shard.Entry) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := &shard.Report{Schema: shard.Schema, Experiments: entries}
	if err := rep.Encode(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchEntry(id string, elapsedMS int64, nrs float64) shard.Entry {
	return shard.Entry{
		Table:            &harness.Table{ID: id, Columns: []string{"c"}, Rows: [][]string{{"v"}}},
		ElapsedMS:        elapsedMS,
		NodeRoundsPerSec: nrs,
	}
}

// TestBenchdiffIdenticalExitsZero pins the pass path end to end: identical
// artifacts exit 0 with an all-ok delta table.
func TestBenchdiffIdenticalExitsZero(t *testing.T) {
	dir := t.TempDir()
	entries := []shard.Entry{benchEntry("T1", 500, 1e6), benchEntry("X1", 900, 2e6)}
	a := writeArtifact(t, dir, "a.json", entries)
	b := writeArtifact(t, dir, "b.json", entries)
	code, out, errOut := capture(t, []string{"benchdiff", a, b})
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if strings.Contains(out, "REGRESSED") || strings.Contains(out, "MISSING") {
		t.Fatalf("identical artifacts reported a problem:\n%s", out)
	}
}

// TestBenchdiffRegressionExitsNonzero pins the gate end to end: a
// synthetically regressed artifact exits non-zero and the output names
// the offending experiment id.
func TestBenchdiffRegressionExitsNonzero(t *testing.T) {
	dir := t.TempDir()
	a := writeArtifact(t, dir, "old.json", []shard.Entry{benchEntry("T1", 500, 1e6), benchEntry("X1", 900, 2e6)})
	b := writeArtifact(t, dir, "new.json", []shard.Entry{benchEntry("T1", 2000, 2.5e5), benchEntry("X1", 900, 2e6)})
	code, out, _ := capture(t, []string{"benchdiff", a, b})
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "T1") {
		t.Fatalf("output does not name the regressed id:\n%s", out)
	}
}

// TestBenchdiffMissingIDFails: an experiment dropping out of the sweep is
// a failure, not a silent shrink.
func TestBenchdiffMissingIDFails(t *testing.T) {
	dir := t.TempDir()
	a := writeArtifact(t, dir, "old.json", []shard.Entry{benchEntry("T1", 500, 1e6), benchEntry("X1", 900, 2e6)})
	b := writeArtifact(t, dir, "new.json", []shard.Entry{benchEntry("T1", 500, 1e6)})
	code, out, _ := capture(t, []string{"benchdiff", a, b})
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "X1") {
		t.Fatalf("output does not name the missing id:\n%s", out)
	}
}

// TestBenchdiffThresholdFlag: -threshold widens the gate.
func TestBenchdiffThresholdFlag(t *testing.T) {
	dir := t.TempDir()
	a := writeArtifact(t, dir, "old.json", []shard.Entry{benchEntry("T1", 500, 1e6)})
	b := writeArtifact(t, dir, "new.json", []shard.Entry{benchEntry("T1", 650, 1e6)}) // +30%
	if code, out, _ := capture(t, []string{"benchdiff", "-threshold", "50", a, b}); code != 0 {
		t.Fatalf("+30%% failed under -threshold 50: exit %d\n%s", code, out)
	}
	if code, _, _ := capture(t, []string{"benchdiff", "-threshold", "10", a, b}); code != 1 {
		t.Fatalf("+30%% passed under -threshold 10: exit %d", code)
	}
}

// TestBenchdiffUsageErrors pin exit code 2 for bad invocations.
func TestBenchdiffUsageErrors(t *testing.T) {
	dir := t.TempDir()
	a := writeArtifact(t, dir, "a.json", []shard.Entry{benchEntry("T1", 500, 1e6)})
	for _, args := range [][]string{
		{"benchdiff"},
		{"benchdiff", a},
		{"benchdiff", "-threshold", "-5", a, a},
		{"benchdiff", a, filepath.Join(dir, "nope.json")},
	} {
		if code, _, _ := capture(t, args); code != 2 {
			t.Errorf("%v: exit = %d, want 2", args, code)
		}
	}
}
