package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wsync/internal/svc"
)

// runSubmit is the client side of the wsyncd job service: it submits
// the sweep described by the flags, polls until the job completes, and
// writes the merged wsync-bench/v1 report to stdout — the same document
// an unsharded `wexp -json` run (or `wexp -dispatch`) would produce,
// modulo the volatile fields. Progress goes to stderr; a sweep answered
// entirely by the server's content-addressed cache says so there.
func runSubmit(base string, req svc.SubmitRequest, pollEvery time.Duration, stdout, stderr io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := &svc.Client{Base: base}
	sub, err := client.Submit(req)
	if err != nil {
		fmt.Fprintf(stderr, "wexp: -submit: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "wexp: -submit: job %s: %d experiments, %d from cache\n", sub.JobID, sub.Total, sub.Cached)

	lastDone := -1
	for {
		st, err := client.Status(sub.JobID)
		if err != nil {
			fmt.Fprintf(stderr, "wexp: -submit: %v\n", err)
			return 1
		}
		if st.Done != lastDone {
			lastDone = st.Done
			fmt.Fprintf(stderr, "wexp: -submit: job %s: %d/%d done, %d retries\n", st.JobID, st.Done, st.Total, st.Retries)
		}
		switch st.State {
		case svc.StateDone:
			if st.Cached == st.Total {
				fmt.Fprintf(stderr, "wexp: -submit: job %s served entirely from cache\n", st.JobID)
			}
			if err := st.Report.Encode(stdout); err != nil {
				fmt.Fprintf(stderr, "wexp: %v\n", err)
				return 1
			}
			return 0
		case svc.StateFailed:
			fmt.Fprintf(stderr, "wexp: -submit: job %s failed: %s\n", st.JobID, st.Error)
			return 1
		}
		select {
		case <-ctx.Done():
			fmt.Fprintf(stderr, "wexp: -submit: interrupted; job %s keeps running on the server\n", st.JobID)
			return 1
		case <-time.After(pollEvery):
		}
	}
}

// svcSubmitRequest assembles the submit body from the sweep-identity
// flags. Unknown experiment ids are the server's to reject — it owns
// the catalogue version being served.
func svcSubmitRequest(seed uint64, trials int, quick, full bool, runIDs string) svc.SubmitRequest {
	return svc.SubmitRequest{Seed: seed, Trials: trials, Quick: quick, Full: full, Run: splitRunIDs(runIDs)}
}

// splitRunIDs turns the -run flag value into the selection list the
// submit API expects (nil for the full catalogue).
func splitRunIDs(runIDs string) []string {
	if runIDs == "" {
		return nil
	}
	var ids []string
	for _, id := range strings.Split(runIDs, ",") {
		ids = append(ids, strings.TrimSpace(id))
	}
	return ids
}
