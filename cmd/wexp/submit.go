package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wsync/internal/svc"
)

// runSubmit is the client side of the wsyncd job service: it submits
// the sweep described by the flags, follows the job's event stream
// (SSE, with long-poll and finally plain status-poll fallbacks) until
// the job completes, and writes the merged wsync-bench/v1 report to
// stdout — the same document an unsharded `wexp -json` run (or `wexp
// -dispatch`) would produce, modulo the volatile fields. Progress goes
// to stderr; a sweep answered entirely by the server's
// content-addressed cache says so there.
func runSubmit(base string, req svc.SubmitRequest, pollEvery time.Duration, stdout, stderr io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := &svc.Client{Base: base}
	sub, err := client.Submit(req)
	if err != nil {
		fmt.Fprintf(stderr, "wexp: -submit: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "wexp: -submit: job %s: %d experiments, %d from cache\n", sub.JobID, sub.Total, sub.Cached)

	// One progress line per observed change, whatever transport
	// delivered it. Returns whether anything changed, so the polling
	// fallback can reset its backoff on movement.
	lastDone, lastRetries := -1, -1
	progress := func(jobID string, done, total, retries int) bool {
		if done == lastDone && retries == lastRetries {
			return false
		}
		lastDone, lastRetries = done, retries
		fmt.Fprintf(stderr, "wexp: -submit: job %s: %d/%d done, %d retries\n", jobID, done, total, retries)
		return true
	}

	// Watch prefers the SSE stream and falls back to long-polling by
	// itself; only a server without the events endpoint at all (a 4xx)
	// drops us to the classic fixed-status loop, jittered.
	werr := client.Watch(ctx, sub.JobID, func(ev svc.JobEvent) {
		progress(ev.JobID, ev.Done, ev.Total, ev.Retries)
	})
	if werr != nil && ctx.Err() == nil {
		fmt.Fprintf(stderr, "wexp: -submit: event stream unavailable (%v); falling back to status polling\n", werr)
		werr = pollToCompletion(ctx, client, sub.JobID, pollEvery, progress)
	}
	if ctx.Err() != nil {
		fmt.Fprintf(stderr, "wexp: -submit: interrupted; job %s keeps running on the server\n", sub.JobID)
		return 1
	}
	if werr != nil {
		fmt.Fprintf(stderr, "wexp: -submit: %v\n", werr)
		return 1
	}

	// Terminal state reached; the report travels once, via Status.
	st, err := client.Status(sub.JobID)
	if err != nil {
		fmt.Fprintf(stderr, "wexp: -submit: %v\n", err)
		return 1
	}
	switch st.State {
	case svc.StateDone:
		if st.Cached == st.Total {
			fmt.Fprintf(stderr, "wexp: -submit: job %s served entirely from cache\n", st.JobID)
		}
		if err := st.Report.Encode(stdout); err != nil {
			fmt.Fprintf(stderr, "wexp: %v\n", err)
			return 1
		}
		return 0
	case svc.StateFailed:
		fmt.Fprintf(stderr, "wexp: -submit: job %s failed: %s\n", st.JobID, st.Error)
		return 1
	default:
		fmt.Fprintf(stderr, "wexp: -submit: job %s still %s after its event stream ended\n", st.JobID, st.State)
		return 1
	}
}

// pollToCompletion is the last-resort transport: fixed Status polling
// against a server without the events endpoint, with jittered
// exponential backoff that resets whenever the job moves.
func pollToCompletion(ctx context.Context, client *svc.Client, jobID string, pollEvery time.Duration, progress func(string, int, int, int) bool) error {
	backoff := svc.Backoff{Base: pollEvery, Max: 16 * pollEvery}
	for {
		st, err := client.Status(jobID)
		if err != nil {
			return err
		}
		if progress(st.JobID, st.Done, st.Total, st.Retries) {
			backoff.Reset()
		}
		if st.State != svc.StateRunning {
			return nil
		}
		t := time.NewTimer(backoff.Next())
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// svcSubmitRequest assembles the submit body from the sweep-identity
// flags. Unknown experiment ids are the server's to reject — it owns
// the catalogue version being served.
func svcSubmitRequest(seed uint64, trials int, quick, full bool, runIDs string) svc.SubmitRequest {
	return svc.SubmitRequest{Seed: seed, Trials: trials, Quick: quick, Full: full, Run: splitRunIDs(runIDs)}
}

// splitRunIDs turns the -run flag value into the selection list the
// submit API expects (nil for the full catalogue).
func splitRunIDs(runIDs string) []string {
	if runIDs == "" {
		return nil
	}
	var ids []string
	for _, id := range strings.Split(runIDs, ",") {
		ids = append(ids, strings.TrimSpace(id))
	}
	return ids
}
