// Command wsim runs one simulation of a synchronization protocol on the
// disrupted radio network and reports per-node synchronization times,
// medium statistics, and the property-checker verdict.
//
// Usage examples:
//
//	wsim -protocol trapdoor -n 8 -N 64 -F 8 -t 2 -adversary fixed
//	wsim -protocol samaritan -n 4 -N 16 -F 16 -t 8 -adversary fixed -tprime 1
//	wsim -protocol wakeup -n 8 -activation staggered -gap 50 -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"wsync/internal/adversary"
	"wsync/internal/baseline"
	"wsync/internal/props"
	"wsync/internal/rng"
	"wsync/internal/samaritan"
	"wsync/internal/sim"
	"wsync/internal/trace"
	"wsync/internal/trapdoor"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("wsim", flag.ContinueOnError)
	var (
		protocol   = fs.String("protocol", "trapdoor", "trapdoor | samaritan | wakeup | roundrobin | singlefreq")
		n          = fs.Int("n", 8, "number of activated nodes")
		nBound     = fs.Int("N", 64, "known upper bound on participants")
		f          = fs.Int("F", 8, "number of frequencies")
		t          = fs.Int("t", 2, "adversary disruption budget per round")
		tPrime     = fs.Int("tprime", -1, "actual frequencies jammed (fixed adversary only; -1 = t)")
		advName    = fs.String("adversary", "fixed", "none | fixed | random | sweep | bursty | reactive | stalker")
		activation = fs.String("activation", "simultaneous", "simultaneous | staggered | random")
		gap        = fs.Uint64("gap", 50, "staggered activation gap (rounds)")
		window     = fs.Uint64("window", 1000, "random activation window (rounds)")
		seed       = fs.Uint64("seed", 1, "random seed")
		maxRounds  = fs.Uint64("rounds", 1<<22, "round budget")
		concurrent = fs.Bool("concurrent", false, "run node agents on goroutines")
		ft         = fs.Bool("ft", false, "fault-tolerant trapdoor variant")
		traceLast  = fs.Int("trace", 0, "print an ASCII timeline of the last N rounds")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	newAgent, err := agentFactory(*protocol, *nBound, *f, *t, *ft)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsim: %v\n", err)
		return 2
	}

	var sched sim.Schedule
	switch *activation {
	case "simultaneous":
		sched = sim.Simultaneous{Count: *n}
	case "staggered":
		sched = sim.Staggered{Count: *n, Gap: *gap}
	case "random":
		sched = sim.RandomWindow(*n, *window, *seed+999)
	default:
		fmt.Fprintf(os.Stderr, "wsim: unknown activation %q\n", *activation)
		return 2
	}

	var adv sim.Adversary
	if *advName == "fixed" && *tPrime >= 0 {
		adv = adversary.NewLowPrefix(*f, *tPrime)
	} else {
		adv, err = adversary.New(*advName, *f, *t, *seed+4242)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wsim: %v\n", err)
			return 2
		}
	}

	check := props.NewChecker(*n)
	cfg := &sim.Config{
		F:         *f,
		T:         *t,
		Seed:      *seed,
		NewAgent:  newAgent,
		Schedule:  sched,
		Adversary: adv,
		MaxRounds: *maxRounds,
		Observers: []sim.Observer{check},
	}
	var recorder *trace.Recorder
	if *traceLast > 0 {
		recorder = trace.NewRecorder(*traceLast)
		cfg.Observers = append(cfg.Observers, recorder)
	}

	var res *sim.Result
	if *concurrent {
		res, err = sim.RunConcurrent(cfg)
	} else {
		res, err = sim.Run(cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsim: %v\n", err)
		return 1
	}

	fmt.Fprintf(stdout, "protocol=%s n=%d N=%d F=%d t=%d adversary=%s seed=%d\n",
		*protocol, *n, *nBound, *f, *t, *advName, *seed)
	fmt.Fprintf(stdout, "rounds executed: %d (hit budget: %v)\n", res.Stats.Rounds, res.HitMaxRounds)
	fmt.Fprintf(stdout, "all synced: %v, leaders: %d, max local sync time: %d rounds\n",
		res.AllSynced, res.Leaders, res.MaxSyncLocal)
	fmt.Fprintf(stdout, "medium: %d transmissions, %d deliveries, %d collisions, %d jammed losses, %d clear broadcasts\n",
		res.Stats.Transmissions, res.Stats.Deliveries, res.Stats.Collisions,
		res.Stats.DisruptedLosses, res.Stats.ClearBroadcasts)
	fmt.Fprintln(stdout, "per-node: id activated syncedAt localTime")
	for i := range res.SyncRound {
		local := "-"
		syncAt := "-"
		if res.SyncRound[i] != 0 {
			syncAt = fmt.Sprintf("%d", res.SyncRound[i])
			local = fmt.Sprintf("%d", res.SyncLocal(i))
		}
		fmt.Fprintf(stdout, "  %2d  %6d  %8s  %8s\n", i, res.Activated[i], syncAt, local)
	}
	fmt.Fprintln(stdout, check.Summary())
	if recorder != nil {
		if err := recorder.Render(stdout, *n); err != nil {
			fmt.Fprintf(os.Stderr, "wsim: trace: %v\n", err)
		}
	}
	if !check.OK() {
		for _, v := range check.Violations() {
			fmt.Fprintf(stdout, "  %s\n", v)
		}
		return 1
	}
	return 0
}

// agentFactory builds the protocol constructor for the engine.
func agentFactory(protocol string, nBound, f, t int, ft bool) (func(sim.NodeID, uint64, *rng.Rand) sim.Agent, error) {
	switch protocol {
	case "trapdoor":
		p := trapdoor.Params{N: nBound, F: f, T: t, FaultTolerant: ft}
		if ft {
			p.CommitThreshold = 2
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return trapdoor.MustNew(p, r)
		}, nil
	case "samaritan":
		p := samaritan.Params{N: nBound, F: f, T: t}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return samaritan.MustNew(p, r)
		}, nil
	case "wakeup":
		return func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return baseline.NewWakeup(nBound, f, r)
		}, nil
	case "roundrobin":
		return func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return baseline.NewRoundRobin(nBound, f, r)
		}, nil
	case "singlefreq":
		return func(id sim.NodeID, activation uint64, r *rng.Rand) sim.Agent {
			return baseline.NewSingleFreq(nBound, r)
		}, nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", protocol)
	}
}
