package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args []string) (int, string) {
	t.Helper()
	var buf bytes.Buffer
	code := run(args, &buf)
	return code, buf.String()
}

func TestTrapdoorRun(t *testing.T) {
	code, out := runCapture(t, []string{
		"-protocol", "trapdoor", "-n", "3", "-N", "16", "-F", "6", "-t", "2",
		"-adversary", "fixed", "-seed", "4",
	})
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	for _, frag := range []string{"all synced: true", "leaders: 1", "properties OK"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestSamaritanRun(t *testing.T) {
	code, out := runCapture(t, []string{
		"-protocol", "samaritan", "-n", "2", "-N", "16", "-F", "8", "-t", "4",
		"-adversary", "fixed", "-tprime", "1", "-seed", "3",
	})
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "all synced: true") {
		t.Fatalf("samaritan did not sync:\n%s", out)
	}
}

func TestTraceFlag(t *testing.T) {
	code, out := runCapture(t, []string{
		"-protocol", "trapdoor", "-n", "2", "-N", "8", "-F", "4", "-t", "1",
		"-trace", "4", "-seed", "5",
	})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "trace: last") {
		t.Fatalf("trace missing:\n%s", out)
	}
}

func TestActivationsAndEngines(t *testing.T) {
	for _, extra := range [][]string{
		{"-activation", "staggered", "-gap", "10"},
		{"-activation", "random", "-window", "50"},
		{"-concurrent"},
		{"-ft"},
		{"-adversary", "random"},
		{"-adversary", "sweep"},
	} {
		args := append([]string{
			"-protocol", "trapdoor", "-n", "2", "-N", "8", "-F", "4", "-t", "1", "-seed", "6",
		}, extra...)
		if code, out := runCapture(t, args); code != 0 {
			t.Errorf("args %v: exit %d\n%s", extra, code, out)
		}
	}
}

func TestBadInputs(t *testing.T) {
	cases := [][]string{
		{"-protocol", "nope"},
		{"-activation", "nope"},
		{"-adversary", "nope"},
		{"-not-a-flag"},
		{"-protocol", "trapdoor", "-F", "0"},
		{"-protocol", "samaritan", "-F", "4", "-t", "3"},
	}
	for _, args := range cases {
		if code, _ := runCapture(t, args); code == 0 {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestBaselineProtocols(t *testing.T) {
	for _, proto := range []string{"wakeup", "roundrobin", "singlefreq"} {
		code, _ := runCapture(t, []string{
			"-protocol", proto, "-n", "2", "-N", "8", "-F", "4", "-t", "0",
			"-adversary", "none", "-rounds", "30000", "-seed", "7",
		})
		if code != 0 {
			t.Errorf("%s: exit %d", proto, code)
		}
	}
}
