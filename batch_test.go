package wsync

import (
	"reflect"
	"testing"

	"wsync/internal/adversary"
	"wsync/internal/baseline"
	"wsync/internal/churn"
	"wsync/internal/multihop"
	"wsync/internal/rng"
	"wsync/internal/samaritan"
	"wsync/internal/sim"
	"wsync/internal/trapdoor"
)

// roundLog is a deep copy of one round's record, retained past the
// observer call (the engine reuses the record's backing storage).
type roundLog struct {
	actions    []sim.ActionRecord
	deliveries []sim.Delivery
	clear      []int
}

// historyRecorder captures the full per-round history of a run so two runs
// can be compared record for record.
type historyRecorder struct {
	logs []roundLog
}

func (h *historyRecorder) ObserveRound(rec *sim.RoundRecord) {
	h.logs = append(h.logs, roundLog{
		actions:    append([]sim.ActionRecord(nil), rec.Actions...),
		deliveries: append([]sim.Delivery(nil), rec.Deliveries...),
		clear:      append([]int(nil), rec.Clear...),
	})
}

// TestBatchStepMatchesPerNode is the batch-dispatch differential oracle:
// over randomized schedules, adversaries, and seeds, an engine stepping
// arena-built cohorts through StepBatch must produce byte-identical Results
// AND byte-identical per-round histories (actions, deliveries, clear lists)
// to the same engine with batching disabled (per-node Step fallback), for
// all three batch protocols.
func TestBatchStepMatchesPerNode(t *testing.T) {
	const f, tBudget, n = 16, 4, 48
	mkAdv := []func(seed uint64) sim.Adversary{
		func(uint64) sim.Adversary { return nil },
		func(seed uint64) sim.Adversary { return adversary.NewRandom(f, tBudget, seed) },
		func(uint64) sim.Adversary { return adversary.NewSweep(f, tBudget, 1) },
	}
	mkSched := []func(r *rng.Rand) sim.Schedule{
		func(*rng.Rand) sim.Schedule { return sim.Simultaneous{Count: n} },
		func(r *rng.Rand) sim.Schedule {
			return sim.Staggered{Count: n, Gap: uint64(1 + r.Intn(4))}
		},
	}
	protos := []struct {
		name  string
		arena func() func(sim.NodeID, uint64, *rng.Rand) sim.Agent
	}{
		{"trapdoor", func() func(sim.NodeID, uint64, *rng.Rand) sim.Agent {
			return trapdoor.MustNewArena(trapdoor.Params{N: n, F: f, T: tBudget}, n).NewAgent
		}},
		{"samaritan", func() func(sim.NodeID, uint64, *rng.Rand) sim.Agent {
			return samaritan.MustNewArena(samaritan.Params{N: n, F: f, T: tBudget}, n).NewAgent
		}},
		{"wakeup", func() func(sim.NodeID, uint64, *rng.Rand) sim.Agent {
			return baseline.NewWakeupArena(n, f, n).NewAgent
		}},
		{"roundrobin", func() func(sim.NodeID, uint64, *rng.Rand) sim.Agent {
			return baseline.NewRoundRobinArena(n, f, n).NewAgent
		}},
	}
	for _, proto := range protos {
		t.Run(proto.name, func(t *testing.T) {
			pick := rng.New(0xba7c4 ^ uint64(len(proto.name)))
			for trial := 0; trial < 6; trial++ {
				seed := pick.Uint64()
				sched := mkSched[pick.Intn(len(mkSched))](pick)
				advIdx := pick.Intn(len(mkAdv))
				run := func(noBatch bool) (*sim.Result, *historyRecorder) {
					rec := &historyRecorder{}
					res, err := sim.Run(&sim.Config{
						F:         f,
						T:         tBudget,
						Seed:      seed,
						NewAgent:  proto.arena(),
						Schedule:  sched,
						Adversary: mkAdv[advIdx](seed),
						MaxRounds: 30000,
						Observers: []sim.Observer{rec},
						NoBatch:   noBatch,
					})
					if err != nil {
						t.Fatal(err)
					}
					return res, rec
				}
				batched, batchedHist := run(false)
				perNode, perNodeHist := run(true)
				if !reflect.DeepEqual(batched, perNode) {
					t.Fatalf("trial %d (seed %#x, adv %d): results differ\nbatch:    %+v\nper-node: %+v",
						trial, seed, advIdx, batched, perNode)
				}
				if !reflect.DeepEqual(batchedHist, perNodeHist) {
					t.Fatalf("trial %d (seed %#x, adv %d): histories differ across %d vs %d rounds",
						trial, seed, advIdx, len(batchedHist.logs), len(perNodeHist.logs))
				}
			}
		})
	}
}

// TestMultihopBatchStepMatchesPerNode runs the same oracle on the multihop
// engine, with churn in the mix: batch and per-node runs over a churned
// grid must agree on the full Result (sync rounds, deliveries, collisions,
// churn counters) for each batch protocol.
func TestMultihopBatchStepMatchesPerNode(t *testing.T) {
	const f, tBudget = 16, 4
	topo := multihop.Grid(6, 6)
	n := topo.N()
	protos := []struct {
		name  string
		arena func() func(sim.NodeID, uint64, *rng.Rand) sim.Agent
	}{
		{"trapdoor", func() func(sim.NodeID, uint64, *rng.Rand) sim.Agent {
			return trapdoor.MustNewArena(trapdoor.Params{N: n, F: f, T: tBudget}, n).NewAgent
		}},
		{"samaritan", func() func(sim.NodeID, uint64, *rng.Rand) sim.Agent {
			return samaritan.MustNewArena(samaritan.Params{N: n, F: f, T: tBudget}, n).NewAgent
		}},
		{"roundrobin", func() func(sim.NodeID, uint64, *rng.Rand) sim.Agent {
			return baseline.NewRoundRobinArena(n, f, n).NewAgent
		}},
	}
	for _, proto := range protos {
		t.Run(proto.name, func(t *testing.T) {
			for trial, seed := range []uint64{7, 99, 4242} {
				run := func(noBatch bool) *multihop.Result {
					res, err := multihop.Run(&multihop.Config{
						F:         f,
						T:         tBudget,
						Seed:      seed,
						Topology:  topo,
						NewAgent:  proto.arena(),
						Schedule:  sim.Staggered{Count: n, Gap: 1},
						Adversary: adversary.NewRandom(f, tBudget, seed),
						Churn:     churn.NewFlip(topo, 0.02, seed),
						MaxRounds: 5000,
						RunToMax:  true,
						NoBatch:   noBatch,
					})
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				batched := run(false)
				perNode := run(true)
				if !reflect.DeepEqual(batched, perNode) {
					t.Fatalf("trial %d (seed %d): results differ\nbatch:    %+v\nper-node: %+v",
						trial, seed, batched, perNode)
				}
				if batched.ChurnRounds == 0 {
					t.Fatalf("trial %d: churn never fired; the differential is vacuous", trial)
				}
			}
		})
	}
}

// TestBatchCohortsFallback checks the grouping rules directly: non-batch
// agents and opted-out batch agents go solo, distinct cohort keys split
// cohorts, and mixed populations step through both paths in one run.
func TestBatchCohortsFallback(t *testing.T) {
	const f, n = 8, 24
	wakeA := baseline.NewWakeupArena(n, f, n)
	wakeB := baseline.NewWakeupArena(n, f, n)
	mixed := func(id sim.NodeID, act uint64, r *rng.Rand) sim.Agent {
		switch id % 3 {
		case 0:
			return wakeA.NewAgent(id, act, r)
		case 1:
			return wakeB.NewAgent(id, act, r)
		default:
			return baseline.NewWakeup(n, f, r) // opts out: solo fallback
		}
	}
	res, err := sim.Run(&sim.Config{
		F: f, Seed: 11, NewAgent: mixed,
		Schedule:  sim.Staggered{Count: n, Gap: 2},
		MaxRounds: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	wakeA = baseline.NewWakeupArena(n, f, n)
	wakeB = baseline.NewWakeupArena(n, f, n)
	ref, err := sim.Run(&sim.Config{
		F: f, Seed: 11, NewAgent: mixed,
		Schedule:  sim.Staggered{Count: n, Gap: 2},
		MaxRounds: 20000,
		NoBatch:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatalf("mixed-population batch run differs from per-node run:\n%+v\nvs\n%+v", res, ref)
	}
}

// TestBatchStepMatchesPerNodeConcurrent pins that RunConcurrent (always
// per-node inside workers) agrees with the sequential batch path.
func TestBatchStepMatchesPerNodeConcurrent(t *testing.T) {
	const f, tBudget, n = 16, 4, 32
	arena := trapdoor.MustNewArena(trapdoor.Params{N: n, F: f, T: tBudget}, n)
	cfg := func() *sim.Config {
		return &sim.Config{
			F: f, T: tBudget, Seed: 17,
			NewAgent:  arena.NewAgent,
			Schedule:  sim.Staggered{Count: n, Gap: 2},
			Adversary: adversary.NewSweep(f, tBudget, 1),
		}
	}
	seq, err := sim.Run(cfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		c := cfg()
		c.Workers = workers
		conc, err := sim.RunConcurrent(c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, conc) {
			t.Fatalf("workers=%d: concurrent result differs from sequential batch result", workers)
		}
	}
}
