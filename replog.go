package wsync

import (
	"wsync/internal/replog"
	"wsync/internal/trapdoor"
)

// ReplicatedLogConfig configures a replicated-log node (the Section 8
// application: a leader plus a common round view make replicated state
// straightforward).
type ReplicatedLogConfig struct {
	// Members is the group size; commitment requires acknowledgements
	// from all other members.
	Members int
	// F is the number of frequencies.
	F int
	// Commands is the command sequence the elected leader replicates.
	Commands []uint64
	// Settle is the quiet period after a node's own synchronization
	// before it joins replication (0 = default).
	Settle uint64
}

// ReplicatedLogNode replicates a command log on top of a synchronization
// protocol. It implements Agent; inspect CommitIndex and Log after a run.
type ReplicatedLogNode = replog.Node

// NewReplicatedLogNode builds a replicated-log node around the given
// synchronization agent (use NewTrapdoorNode or NewGoodSamaritanNode).
func NewReplicatedLogNode(cfg ReplicatedLogConfig, syncAgent Agent, r *Rand) (*ReplicatedLogNode, error) {
	return replog.New(replog.Config{
		Members:  cfg.Members,
		F:        cfg.F,
		Commands: cfg.Commands,
		Settle:   cfg.Settle,
	}, syncAgent, r)
}

// NewReplicatedTrapdoorNode is the common composition: a replicated-log
// node over a Trapdoor synchronization layer.
func NewReplicatedTrapdoorNode(cfg ReplicatedLogConfig, p TrapdoorParams, r *Rand) (*ReplicatedLogNode, error) {
	syncNode, err := trapdoor.New(p, r)
	if err != nil {
		return nil, err
	}
	return NewReplicatedLogNode(cfg, syncNode, r)
}
