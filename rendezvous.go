package wsync

import (
	"fmt"

	"wsync/internal/adversary"
	"wsync/internal/rendezvous"
)

// RendezvousConfig configures a k-party whitespace rendezvous game: the
// parties must meet on a common channel of a band on which an adversary
// blocks channels. This is the setting of the Theorem 4 lower bound (and
// of Azar et al.'s whitespace synchronization strategies), hosted on the
// same shared medium the synchronization engines use.
type RendezvousConfig struct {
	// Parties is the number of participants k (0 = 2).
	Parties int
	// F is the band size (0 = 8).
	F int
	// Width is the uniform spreading width every party plays
	// (0 = the Azar-optimal min(F, 2T)).
	Width int
	// T is the jammer's per-round budget of blocked channels.
	T int
	// Jammer names the band model: "" or "none", "greedy" (the Theorem 4
	// product jammer), or any internal/adversary gallery name — "fixed",
	// "random", "sweep", "bursty", "reactive", "stalker".
	Jammer string
	// Masks optionally jams receptions per party: party p cannot hear
	// anything on the channels in Masks[p], while everyone else is
	// unaffected (local interference). To restrict which channels a party
	// USES, see rendezvous.Restricted.
	Masks [][]int
	// Stagger is the wake gap between consecutive parties in rounds
	// (0 = all wake together).
	Stagger uint64
	// MaxRounds bounds the game (0 = 1<<20).
	MaxRounds uint64
	// Seed makes the run reproducible.
	Seed uint64
}

// RendezvousResult reports a rendezvous game: the first pairwise meeting
// round, the round all parties connected, and meeting/throughput counters.
type RendezvousResult = rendezvous.Result

// RunRendezvous plays the configured rendezvous game and reports when the
// parties met.
func RunRendezvous(c RendezvousConfig) (*RendezvousResult, error) {
	if c.Parties == 0 {
		c.Parties = 2
	}
	if c.F == 0 {
		c.F = 8
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 1 << 20
	}
	strat := rendezvous.OptimalWidth(c.F, c.T)
	if c.Width > 0 {
		strat = rendezvous.Uniform{M: c.Width, P: 0.5}
	}
	if strat.M > c.F {
		return nil, fmt.Errorf("wsync: rendezvous width %d exceeds band size %d", strat.M, c.F)
	}
	if len(c.Masks) > c.Parties {
		return nil, fmt.Errorf("wsync: %d masks for %d parties", len(c.Masks), c.Parties)
	}
	var jam rendezvous.Jammer
	switch c.Jammer {
	case "", "none":
	case "greedy":
		jam = rendezvous.NewGreedy(c.F, c.T)
	default:
		adv, err := adversary.New(c.Jammer, c.F, c.T, c.Seed^0x9e3779b97f4a7c15)
		if err != nil {
			return nil, fmt.Errorf("wsync: rendezvous jammer: %w", err)
		}
		jam = rendezvous.NewChurn(c.F, adv)
	}
	parties := make([]rendezvous.Party, c.Parties)
	for p := range parties {
		parties[p] = rendezvous.Party{
			Strategy: strat,
			Wake:     1 + uint64(p)*c.Stagger,
		}
		if p < len(c.Masks) {
			parties[p].Mask = c.Masks[p]
		}
	}
	res, err := rendezvous.Run(&rendezvous.Config{
		F:         c.F,
		Parties:   parties,
		Jammer:    jam,
		MaxRounds: c.MaxRounds,
		Seed:      c.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("wsync: rendezvous: %w", err)
	}
	return res, nil
}
